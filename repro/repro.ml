open Dvs_lp
open Dvs_milp

let () =
  (* max x + y  s.t.  2x + 2y <= 7,  x,y integer in [0,10].
     True optimum: x + y = 3. Forces re-branching on the same variable. *)
  let m = Model.create () in
  let x = Model.add_var ~integer:true ~lb:0.0 ~ub:10.0 m in
  let y = Model.add_var ~integer:true ~lb:0.0 ~ub:10.0 m in
  Model.add_constraint m
    Expr.(add (scale 2.0 (var x)) (scale 2.0 (var y)))
    Model.Le 7.0;
  Model.set_objective m Model.Maximize Expr.(add (var x) (var y));
  let config = Solver.Config.make ~jobs:1 ~max_nodes:10_000 () in
  let r = Solver.solve ~config m in
  Format.printf "outcome: %a@.bound: %g@.nodes: %d@."
    Solver.pp_outcome r.Solver.outcome r.Solver.bound r.Solver.stats.Solver.nodes;
  (match r.Solver.solution with
   | Some s -> Format.printf "obj: %g x=%g y=%g@." s.Simplex.objective s.Simplex.values.(x) s.Simplex.values.(y)
   | None -> Format.printf "no solution@.")
