(* dvstool: command-line front end for the compile-time DVS toolkit.

   Subcommands:
     list                          workloads and their inputs
     simulate  <workload>          pinned simulation at each mode
     profile   <workload>          profile + measured Table-7 parameters
     optimize  <workload>          MILP schedule for a deadline
     reproduce <workload>          pipeline across the Table-4 deadline set
     stats                         pretty-print --trace/--metrics files
     bench-diff                    gate LP work counters vs a baseline
     analyze                       analytical model on given parameters
     compile   <file.mc>           compile MiniC; dump the CFG (or DOT)

   simulate, optimize and reproduce accept --trace FILE (dvs-trace/v1
   JSONL) and --metrics FILE (dvs-metrics/v1 snapshot); stats reads
   both back. *)

open Cmdliner

let machine ~capacitance ~levels =
  let mode_table =
    match levels with
    | None -> Dvs_power.Mode.xscale3
    | Some n ->
      Dvs_power.Mode.levels
        ~v_lo:(Dvs_power.Alpha_power.voltage Dvs_power.Alpha_power.default 200e6)
        ~v_hi:1.65 n
  in
  Dvs_workloads.Workload.eval_config ~mode_table
    ~regulator:(Dvs_power.Switch_cost.regulator ~capacitance ())
    ()

(* ---------------- common args ---------------- *)

(* Levenshtein distance, for near-miss suggestions on workload names. *)
let edit_distance a b =
  let la = String.length a and lb = String.length b in
  let prev = Array.init (lb + 1) Fun.id in
  let cur = Array.make (lb + 1) 0 in
  for i = 1 to la do
    cur.(0) <- i;
    for j = 1 to lb do
      let cost = if a.[i - 1] = b.[j - 1] then 0 else 1 in
      cur.(j) <-
        Int.min (Int.min (cur.(j - 1) + 1) (prev.(j) + 1)) (prev.(j - 1) + cost)
    done;
    Array.blit cur 0 prev 0 (lb + 1)
  done;
  prev.(lb)

let nearest_workload s =
  let lower = String.lowercase_ascii s in
  List.fold_left
    (fun best (w : Dvs_workloads.Workload.t) ->
      let d = edit_distance lower w.name in
      match best with
      | Some (_, d0) when d0 <= d -> best
      | _ -> Some (w.name, d))
    None Dvs_workloads.Workload.all

let workload_arg =
  let parse s =
    match Dvs_workloads.Workload.find s with
    | w -> Ok w
    | exception Not_found ->
      let suggestion =
        match nearest_workload s with
        | Some (name, d) when d <= Int.max 2 (String.length s / 3) ->
          Printf.sprintf " (did you mean `%s'?)" name
        | _ -> " (try `dvstool list')"
      in
      Error (`Msg (Printf.sprintf "unknown workload %s%s" s suggestion))
  in
  let print ppf (w : Dvs_workloads.Workload.t) =
    Format.pp_print_string ppf w.name
  in
  Arg.conv (parse, print)

let workload_pos =
  Arg.(
    required
    & pos 0 (some workload_arg) None
    & info [] ~docv:"WORKLOAD" ~doc:"Benchmark name (see $(b,dvstool list)).")

let input_opt =
  Arg.(
    value
    & opt (some string) None
    & info [ "i"; "input" ] ~docv:"INPUT" ~doc:"Input variant.")

let capacitance_opt =
  Arg.(
    value
    & opt float 0.4e-6
    & info [ "c"; "capacitance" ] ~docv:"FARADS"
        ~doc:
          "Voltage-regulator capacitance (default 0.4uF, the\n\
          \          paper-equivalent of 10uF at this dynamic scale).")

let levels_opt =
  Arg.(
    value
    & opt (some int) None
    & info [ "levels" ] ~docv:"N"
        ~doc:"Use N evenly spaced voltage levels instead of the XScale-3 \
              table.")

let input_of w = function
  | Some i -> i
  | None -> Dvs_workloads.Workload.default_input w

(* ---------------- observability plumbing ---------------- *)

let trace_out_opt =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:"Write a dvs-trace/v1 JSONL event log to FILE (inspect with \
              $(b,dvstool stats)).")

let metrics_out_opt =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics" ] ~docv:"FILE"
        ~doc:"Write a dvs-metrics/v1 snapshot to FILE (inspect with \
              $(b,dvstool stats)).")

let obs_for ~trace ~metrics =
  if trace = None && metrics = None then Dvs_obs.disabled
  else Dvs_obs.create ()

let export_obs obs ~trace ~metrics ~meta =
  (match trace with
  | Some file ->
    let oc = open_out file in
    Dvs_obs.Trace.write_jsonl (Dvs_obs.trace obs) oc;
    close_out oc;
    Format.eprintf "trace written to %s@." file
  | None -> ());
  match metrics with
  | Some file ->
    let oc = open_out file in
    Dvs_obs.Json.to_channel oc
      (Dvs_obs.Metrics.snapshot ~meta (Dvs_obs.metrics obs));
    output_char oc '\n';
    close_out oc;
    Format.eprintf "metrics written to %s@." file
  | None -> ()

(* ---------------- list ---------------- *)

let list_cmd =
  let run () =
    List.iter
      (fun (w : Dvs_workloads.Workload.t) ->
        Printf.printf "%-12s %s\n             inputs: %s\n" w.name
          w.description
          (String.concat ", " w.inputs))
      Dvs_workloads.Workload.all
  in
  Cmd.v (Cmd.info "list" ~doc:"List benchmarks and input variants")
    Term.(const run $ const ())

(* ---------------- simulate ---------------- *)

let ooo_opt =
  Arg.(
    value & flag
    & info [ "ooo" ]
        ~doc:"Use the 4-wide out-of-order core model instead of the \
              in-order one.")

let simulate_cmd =
  let run w input capacitance levels ooo trace metrics =
    let input = input_of w input in
    let cfg, _, mem = Dvs_workloads.Workload.load w ~input in
    let machine = machine ~capacitance ~levels in
    let obs = obs_for ~trace ~metrics in
    let n = Dvs_power.Mode.size machine.Dvs_machine.Config.mode_table in
    for m = 0 to n - 1 do
      let r =
        if ooo then
          Dvs_machine.Cpu_ooo.run
            ~rc:(Dvs_machine.Cpu.Run_config.make ~initial_mode:m ())
            machine cfg ~memory:mem
        else
          Dvs_machine.Cpu.run
            ~rc:(Dvs_machine.Cpu.Run_config.make ~initial_mode:m ~obs ())
            machine cfg ~memory:mem
      in
      Format.printf
        "mode %d (%a): %.3f ms, %.1f uJ, %d instrs, L1 miss %.2f%%, L2 \
         miss %.2f%%@."
        m Dvs_power.Mode.pp
        (Dvs_power.Mode.get machine.Dvs_machine.Config.mode_table m)
        (r.Dvs_machine.Cpu.time *. 1e3)
        (r.Dvs_machine.Cpu.energy *. 1e6)
        r.Dvs_machine.Cpu.dyn_instrs
        (100.0
        *. float_of_int r.Dvs_machine.Cpu.l1.Dvs_machine.Cache.misses
        /. float_of_int (Int.max 1 r.Dvs_machine.Cpu.l1.Dvs_machine.Cache.accesses))
        (100.0
        *. float_of_int r.Dvs_machine.Cpu.l2.Dvs_machine.Cache.misses
        /. float_of_int (Int.max 1 r.Dvs_machine.Cpu.l2.Dvs_machine.Cache.accesses))
    done;
    export_obs obs ~trace ~metrics
      ~meta:
        [ ("command", Dvs_obs.Json.String "simulate");
          ("workload", Dvs_obs.Json.String w.Dvs_workloads.Workload.name);
          ("input", Dvs_obs.Json.String input);
          ("capacitance", Dvs_obs.Json.Float capacitance);
          ("modes", Dvs_obs.Json.Int n) ]
  in
  Cmd.v
    (Cmd.info "simulate" ~doc:"Run a workload pinned at each DVS mode")
    Term.(
      const run $ workload_pos $ input_opt $ capacitance_opt $ levels_opt
      $ ooo_opt $ trace_out_opt $ metrics_out_opt)

(* ---------------- profile ---------------- *)

let profile_cmd =
  let run w input capacitance levels =
    let input = input_of w input in
    let cfg, _, mem = Dvs_workloads.Workload.load w ~input in
    let machine = machine ~capacitance ~levels in
    let p = Dvs_profile.Profile.collect machine cfg ~memory:mem in
    Format.printf "%a@." Dvs_profile.Profile.pp_summary p;
    let params =
      Dvs_profile.Categorize.of_profile p
        ~deadline:(Dvs_workloads.Deadlines.of_profile p).(2)
    in
    Format.printf "measured parameters: %a (%a)@." Dvs_analytical.Params.pp
      params Dvs_analytical.Params.pp_case
      (Dvs_analytical.Params.classify params);
    Format.printf "deadline set (ms):";
    Array.iter
      (fun d -> Format.printf " %.3f" (d *. 1e3))
      (Dvs_workloads.Deadlines.of_profile p);
    Format.printf "@."
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:"Profile a workload and print its Table-7-style parameters")
    Term.(const run $ workload_pos $ input_opt $ capacitance_opt $ levels_opt)

(* ---------------- optimize ---------------- *)

let deadline_frac_opt =
  Arg.(
    value
    & opt float 0.5
    & info [ "deadline-frac" ] ~docv:"F"
        ~doc:
          "Deadline position in the feasible range: 0 = fastest-mode \
           time, 1 = slowest-mode time.")

let no_filter_opt =
  Arg.(
    value & flag
    & info [ "no-filter" ] ~doc:"Disable Section 5.2 edge filtering.")

let save_opt =
  Arg.(
    value
    & opt (some string) None
    & info [ "save" ] ~docv:"FILE"
        ~doc:"Write the chosen schedule to FILE (reload with \
              $(b,dvstool apply)).")

let jobs_opt =
  let pos_int =
    let parse s =
      match Arg.conv_parser Arg.int s with
      | Ok n when n >= 1 -> Ok n
      | Ok n -> Error (`Msg (Printf.sprintf "JOBS must be >= 1, got %d" n))
      | Error _ as e -> e
    in
    Arg.conv (parse, Arg.conv_printer Arg.int)
  in
  Arg.(
    value
    & opt (some pos_int) None
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Worker domains for the MILP search (default: the recommended \
           domain count of this machine).")

let store_opt =
  Arg.(
    value
    & opt (some string) None
    & info [ "store" ] ~docv:"DIR"
        ~doc:
          "Consult (and fill) the content-addressed experiment store \
           rooted at DIR: profile simulations and solves whose inputs \
           are unchanged are rehydrated from disk instead of re-run \
           (see $(b,dvstool store)).")

let strict_opt =
  Arg.(
    value & flag
    & info [ "strict" ]
        ~doc:
          "Refuse degraded results: exit nonzero unless the schedule is \
           the verified MILP optimum (exit 3 = time-limit-degraded, 4 = \
           worker-crash-degraded, 5 = verify-reject-degraded).")

(* Exit codes come from the one table shared with the service client
   commands (see README and lib/service/protocol.mli): 0 ok (degraded
   results still exit 0 unless --strict), 1 infeasible or unbounded, 2
   no schedule from any rung, 3/4/5/6 degraded under --strict, 7/8/9
   service failures (always nonzero). *)
let exit_code ~strict cls =
  Dvs_service.Protocol.exit_code ~strict
    (Dvs_service.Protocol.class_of_pipeline cls)

let no_continuous_bound_opt =
  Arg.(
    value & flag
    & info [ "no-continuous-bound" ]
        ~doc:
          "Ablation: skip the exact continuous-schedule relaxation — no \
           root dual bound, no rounded incumbent seed, no sweep \
           pre-pruning, no continuous-rounded ladder rung.")

let lp_basis_opt =
  Arg.(
    value
    & opt (enum [ ("lu", Dvs_lp.Simplex.Lu); ("dense", Dvs_lp.Simplex.Dense) ])
        Dvs_lp.Simplex.Lu
    & info [ "lp-basis" ] ~docv:"BACKEND"
        ~doc:
          "Simplex basis backend: $(b,lu) (sparse LU factorization + \
           eta-file updates, the default) or $(b,dense) (explicit dense \
           inverse — the correctness oracle and ablation leg).  Both \
           backends find the same schedules; only the linear-algebra \
           cost differs.")

let lp_basis_name = function
  | Dvs_lp.Simplex.Lu -> "lu"
  | Dvs_lp.Simplex.Dense -> "dense"

let optimize_cmd =
  let run w input capacitance levels frac no_filter save jobs strict
      no_continuous_bound lp_basis store_root trace metrics =
    let input = input_of w input in
    let cfg, _, mem = Dvs_workloads.Workload.load w ~input in
    let machine = machine ~capacitance ~levels in
    let obs = obs_for ~trace ~metrics in
    let store =
      Option.map
        (fun root -> Dvs_store.Store.open_ ~obs ~root ())
        store_root
    in
    let p =
      Dvs_store.Exec.profile ?store
        ~source:(w.Dvs_workloads.Workload.name ^ ":" ^ input) machine cfg
        ~memory:mem
    in
    let n = Dvs_power.Mode.size machine.Dvs_machine.Config.mode_table in
    let t_fast = Dvs_profile.Profile.pinned_time p ~mode:(n - 1) in
    let t_slow = Dvs_profile.Profile.pinned_time p ~mode:0 in
    let deadline = t_fast +. (frac *. (t_slow -. t_fast)) in
    let solver = Dvs_milp.Solver.Config.make ?jobs ~basis:lp_basis () in
    let config =
      Dvs_core.Pipeline.Config.make ~filter:(not no_filter) ~solver
        ~continuous_bound:(not no_continuous_bound) ()
      |> Dvs_core.Pipeline.Config.with_obs obs
    in
    let r =
      Dvs_store.Exec.optimize_multi ?store ~config ~verify_config:machine
        ~regulator:machine.Dvs_machine.Config.regulator ~memory:mem
        [ { Dvs_core.Formulation.profile = p; weight = 1.0; deadline } ]
    in
    (* Export before any of the exit paths below. *)
    export_obs obs ~trace ~metrics
      ~meta:
        [ ("command", Dvs_obs.Json.String "optimize");
          ("workload", Dvs_obs.Json.String w.Dvs_workloads.Workload.name);
          ("input", Dvs_obs.Json.String input);
          ("jobs", Dvs_obs.Json.Int solver.Dvs_milp.Solver.Config.jobs);
          ("lp_basis", Dvs_obs.Json.String (lp_basis_name lp_basis));
          ("deadline", Dvs_obs.Json.Float deadline);
          ("deadline_frac", Dvs_obs.Json.Float frac);
          ("capacitance", Dvs_obs.Json.Float capacitance) ];
    let milp = r.Dvs_core.Pipeline.milp in
    Format.printf "deadline: %.3f ms (range %.3f..%.3f)@." (deadline *. 1e3)
      (t_fast *. 1e3) (t_slow *. 1e3);
    Format.printf "MILP: %a, %d binaries@." Dvs_milp.Solver.pp_outcome
      milp.Dvs_milp.Solver.outcome
      r.Dvs_core.Pipeline.formulation.Dvs_core.Formulation.n_binaries;
    Format.printf "solver: %a@." Dvs_milp.Solver.pp_stats
      milp.Dvs_milp.Solver.stats;
    (match r.Dvs_core.Pipeline.continuous_bound with
    | Some b -> Format.printf "continuous bound: %.1f uJ@." (b *. 1e6)
    | None -> ());
    List.iter
      (fun d ->
        Format.printf "ladder: %a@." Dvs_core.Pipeline.pp_descent d)
      r.Dvs_core.Pipeline.descents;
    (match r.Dvs_core.Pipeline.rung with
    | Some rung ->
      Format.printf "schedule source: %a@." Dvs_core.Pipeline.pp_rung rung
    | None -> ());
    let cls = Dvs_core.Pipeline.classify r in
    (match cls with
    | Dvs_core.Pipeline.Problem_infeasible ->
      Format.eprintf
        "error: no schedule can meet this deadline on this machine@.";
      exit (exit_code ~strict cls)
    | Dvs_core.Pipeline.No_schedule ->
      Format.eprintf
        "error: every rung of the degradation ladder failed (%a); retry \
         with a higher budget (--jobs, larger limits) or a laxer \
         deadline@."
        Dvs_milp.Solver.pp_outcome milp.Dvs_milp.Solver.outcome;
      exit (exit_code ~strict cls)
    | Dvs_core.Pipeline.Full | Dvs_core.Pipeline.Time_degraded
    | Dvs_core.Pipeline.Crash_degraded
    | Dvs_core.Pipeline.Verify_degraded -> ());
    (match r.Dvs_core.Pipeline.verification with
    | Some v ->
      Format.printf
        "verified: %.3f ms, %.1f uJ, %d mode transitions, deadline %s, \
         model error %.1f%%@."
        (v.Dvs_core.Verify.stats.Dvs_machine.Cpu.time *. 1e3)
        (v.Dvs_core.Verify.stats.Dvs_machine.Cpu.energy *. 1e6)
        v.Dvs_core.Verify.stats.Dvs_machine.Cpu.mode_transitions
        (if v.Dvs_core.Verify.meets_deadline then "met" else "MISSED")
        (100.0 *. v.Dvs_core.Verify.energy_error)
    | None -> ());
    (match Dvs_core.Baselines.best_single_mode p ~deadline with
    | Some (m, base) ->
      let saved =
        match r.Dvs_core.Pipeline.predicted_energy with
        | Some e -> 100.0 *. (1.0 -. (e /. base))
        | None -> 0.0
      in
      Format.printf "best single mode %d: %.1f uJ -> savings %.1f%%@." m
        (base *. 1e6) saved
    | None -> Format.printf "no single mode meets the deadline@.");
    (match (save, r.Dvs_core.Pipeline.schedule) with
    | Some file, Some schedule ->
      let oc = open_out file in
      output_string oc (Dvs_core.Schedule.to_string schedule);
      close_out oc;
      Format.printf "schedule saved to %s@." file
    | Some _, None -> Format.printf "no schedule to save@."
    | None, _ -> ());
    (match cls with
    | Dvs_core.Pipeline.Full -> ()
    | _ when strict ->
      Format.eprintf "error: --strict refuses a %a result@."
        Dvs_core.Pipeline.pp_class cls
    | _ ->
      Format.printf "warning: %a result (rerun with --strict to refuse)@."
        Dvs_core.Pipeline.pp_class cls);
    exit (exit_code ~strict cls)
  in
  Cmd.v
    (Cmd.info "optimize"
       ~doc:"Place DVS mode-set instructions by MILP and verify them")
    Term.(
      const run $ workload_pos $ input_opt $ capacitance_opt $ levels_opt
      $ deadline_frac_opt $ no_filter_opt $ save_opt $ jobs_opt
      $ strict_opt $ no_continuous_bound_opt $ lp_basis_opt $ store_opt
      $ trace_out_opt $ metrics_out_opt)

(* ---------------- apply ---------------- *)

let apply_cmd =
  let schedule_file =
    Arg.(
      required
      & opt (some file) None
      & info [ "schedule" ] ~docv:"FILE"
          ~doc:"Schedule file produced by $(b,dvstool optimize --save).")
  in
  let run w input capacitance levels file =
    let input = input_of w input in
    let cfg, _, mem = Dvs_workloads.Workload.load w ~input in
    let machine = machine ~capacitance ~levels in
    let ic = open_in file in
    let text = really_input_string ic (in_channel_length ic) in
    close_in ic;
    match Dvs_core.Schedule.of_string text with
    | Error msg ->
      Format.eprintf "bad schedule file: %s@." msg;
      exit 1
    | Ok schedule ->
      if Array.length schedule.Dvs_core.Schedule.edge_mode
         <> Array.length (Dvs_ir.Cfg.edges cfg)
      then begin
        Format.eprintf "schedule has %d edges, workload has %d@."
          (Array.length schedule.Dvs_core.Schedule.edge_mode)
          (Array.length (Dvs_ir.Cfg.edges cfg));
        exit 1
      end;
      let r =
        Dvs_machine.Cpu.run
          ~rc:
            (Dvs_machine.Cpu.Run_config.make
               ~initial_mode:schedule.Dvs_core.Schedule.entry_mode
               ~edge_modes:(Dvs_core.Schedule.edge_modes schedule cfg) ())
          machine cfg ~memory:mem
      in
      Format.printf
        "ran with schedule: %.3f ms, %.1f uJ, %d mode transitions@."
        (r.Dvs_machine.Cpu.time *. 1e3)
        (r.Dvs_machine.Cpu.energy *. 1e6)
        r.Dvs_machine.Cpu.mode_transitions
  in
  Cmd.v
    (Cmd.info "apply" ~doc:"Run a workload under a saved DVS schedule")
    Term.(
      const run $ workload_pos $ input_opt $ capacitance_opt $ levels_opt
      $ schedule_file)

(* ---------------- reproduce ---------------- *)

let cold_opt =
  Arg.(
    value & flag
    & info [ "cold" ]
        ~doc:
          "Solve each deadline independently instead of through the \
           parametric sweep engine (shared cut pool, warm incumbent \
           lifting, cross-point basis reuse).")

let cold_verify_opt =
  Arg.(
    value & flag
    & info [ "cold-verify" ]
        ~doc:
          "Verify every point with a fresh cycle-accurate simulation \
           instead of summarized tape replay (the CI leg that keeps the \
           exact fallback path alive).")

let reproduce_cmd =
  let run w input capacitance levels jobs cold cold_verify
      no_continuous_bound lp_basis store_root trace metrics =
    let input = input_of w input in
    let cfg, _, mem = Dvs_workloads.Workload.load w ~input in
    let machine = machine ~capacitance ~levels in
    let obs = obs_for ~trace ~metrics in
    let store =
      Option.map
        (fun root -> Dvs_store.Store.open_ ~obs ~root ())
        store_root
    in
    let p =
      Dvs_store.Exec.profile ?store
        ~source:(w.Dvs_workloads.Workload.name ^ ":" ^ input) machine cfg
        ~memory:mem
    in
    let deadlines = Dvs_workloads.Deadlines.sweep_of_profile p in
    let solver = Dvs_milp.Solver.Config.make ?jobs ~basis:lp_basis () in
    let config =
      Dvs_core.Pipeline.Config.make ~solver ~cold_verify
        ~continuous_bound:(not no_continuous_bound) ()
      |> Dvs_core.Pipeline.Config.with_obs obs
    in
    let results =
      if cold then
        Array.map
          (fun deadline ->
            Dvs_store.Exec.optimize_multi ?store ~config
              ~verify_config:machine
              ~regulator:machine.Dvs_machine.Config.regulator ~memory:mem
              [ { Dvs_core.Formulation.profile = p; weight = 1.0; deadline } ])
          deadlines
      else begin
        let sw =
          Dvs_store.Exec.optimize_sweep ?store ~config ~verify_config:machine
            ~profile:p machine cfg ~memory:mem ~deadlines
        in
        let st = sw.Dvs_core.Pipeline.sweep in
        Format.printf
          "sweep: %d/%d points warm-started, %d pruned by continuous \
           bound, %d cuts applied (%d pool hits, pool size %d)@."
          st.Dvs_milp.Sweep.instances_warm_started (Array.length deadlines)
          st.Dvs_milp.Sweep.points_pruned_by_bound
          st.Dvs_milp.Sweep.cuts_applied st.Dvs_milp.Sweep.cut_pool_hits
          st.Dvs_milp.Sweep.pool_size;
        sw.Dvs_core.Pipeline.results
      end
    in
    Format.printf "%-12s %-10s %-28s %10s %10s %8s@." "deadline(ms)"
      "rung" "class" "pred(uJ)" "sim(uJ)" "save(%)";
    Array.iteri
      (fun i deadline ->
        let r = results.(i) in
        let rung =
          match r.Dvs_core.Pipeline.rung with
          | Some rg -> Format.asprintf "%a" Dvs_core.Pipeline.pp_rung rg
          | None -> "-"
        in
        let cls =
          Format.asprintf "%a" Dvs_core.Pipeline.pp_class
            (Dvs_core.Pipeline.classify r)
        in
        let pred =
          match r.Dvs_core.Pipeline.predicted_energy with
          | Some e -> Printf.sprintf "%.1f" (e *. 1e6)
          | None -> "-"
        in
        let sim =
          match r.Dvs_core.Pipeline.verification with
          | Some v ->
            Printf.sprintf "%.1f"
              (v.Dvs_core.Verify.stats.Dvs_machine.Cpu.energy *. 1e6)
          | None -> "-"
        in
        let save =
          match
            ( r.Dvs_core.Pipeline.predicted_energy,
              Dvs_core.Baselines.best_single_mode p ~deadline )
          with
          | Some e, Some (_, base) when base > 0.0 ->
            Printf.sprintf "%.1f" (100.0 *. (1.0 -. (e /. base)))
          | _ -> "-"
        in
        Format.printf "%-12.3f %-10s %-28s %10s %10s %8s@."
          (deadline *. 1e3) rung cls pred sim save)
      deadlines;
    export_obs obs ~trace ~metrics
      ~meta:
        [ ("command", Dvs_obs.Json.String "reproduce");
          ("workload", Dvs_obs.Json.String w.Dvs_workloads.Workload.name);
          ("input", Dvs_obs.Json.String input);
          ("jobs", Dvs_obs.Json.Int solver.Dvs_milp.Solver.Config.jobs);
          ("engine", Dvs_obs.Json.String (if cold then "cold" else "sweep"));
          ( "verify",
            Dvs_obs.Json.String (if cold_verify then "cold" else "summary") );
          ( "continuous_bound",
            Dvs_obs.Json.Bool (not no_continuous_bound) );
          ("lp_basis", Dvs_obs.Json.String (lp_basis_name lp_basis));
          ("deadlines", Dvs_obs.Json.Int (Array.length deadlines));
          ("capacitance", Dvs_obs.Json.Float capacitance) ]
  in
  Cmd.v
    (Cmd.info "reproduce"
       ~doc:
         "Run the full pipeline across the paper's Table-4 deadline set \
          for one workload (through the parametric sweep engine unless \
          $(b,--cold))")
    Term.(
      const run $ workload_pos $ input_opt $ capacitance_opt $ levels_opt
      $ jobs_opt $ cold_opt $ cold_verify_opt $ no_continuous_bound_opt
      $ lp_basis_opt $ store_opt $ trace_out_opt $ metrics_out_opt)

(* ---------------- stats ---------------- *)

let stats_cmd =
  let metrics_in =
    Arg.(
      value
      & opt (some file) None
      & info [ "metrics" ] ~docv:"FILE"
          ~doc:"dvs-metrics/v1 snapshot to pretty-print.")
  in
  let trace_in =
    Arg.(
      value
      & opt (some file) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:"dvs-trace/v1 JSONL event log to summarize.")
  in
  let check =
    Arg.(
      value & flag
      & info [ "check" ]
          ~doc:
            "Validate the files against their documented schemas; exit 1 \
             on the first violation.")
  in
  let read_file file =
    let ic = open_in file in
    let s = really_input_string ic (in_channel_length ic) in
    close_in ic;
    s
  in
  let fail fmt = Format.kasprintf (fun s -> Format.eprintf "%s@." s; exit 1) fmt in
  let show_metrics file check =
    let j =
      match Dvs_obs.Json.of_string (read_file file) with
      | Ok j -> j
      | Error e -> fail "%s: not JSON: %s" file e
    in
    (match Dvs_obs.Schema.validate_metrics j with
    | Ok () -> ()
    | Error e ->
      if check then fail "%s: schema violation: %s" file e
      else Format.eprintf "warning: %s: %s@." file e);
    let open Dvs_obs.Json in
    (match member "meta" j with
    | Some (Obj kvs) when kvs <> [] ->
      Format.printf "meta:@.";
      List.iter
        (fun (k, v) -> Format.printf "  %-24s %s@." k (to_string v))
        kvs
    | _ -> ());
    let section name pr =
      match member name j with
      | Some (Obj kvs) when kvs <> [] ->
        Format.printf "%s:@." name;
        List.iter (fun (k, v) -> pr k v) kvs
      | _ -> ()
    in
    section "counters" (fun k v ->
        let total = Option.bind (member "total" v) to_int in
        let stab = Option.bind (member "stability" v) to_string_opt in
        Format.printf "  %-28s %12d  (%s)@." k
          (Option.value ~default:0 total)
          (Option.value ~default:"?" stab));
    section "gauges" (fun k v ->
        let value = Option.bind (member "value" v) to_float in
        Format.printf "  %-28s %12g@." k
          (Option.value ~default:Float.nan value));
    section "histograms" (fun k v ->
        let count = Option.bind (member "count" v) to_int in
        let sum = Option.bind (member "sum" v) to_float in
        Format.printf "  %-28s count %-8d sum %g@." k
          (Option.value ~default:0 count)
          (Option.value ~default:0.0 sum))
  in
  let show_trace file check =
    let text = read_file file in
    let lines =
      String.split_on_char '\n' text
      |> List.filter (fun l -> String.trim l <> "")
    in
    (* name -> (count, span seconds) in first-seen order *)
    let tbl : (string, int ref * float ref) Hashtbl.t = Hashtbl.create 32 in
    let order = ref [] in
    let dropped = ref 0 in
    List.iteri
      (fun i line ->
        match Dvs_obs.Json.of_string line with
        | Error e -> fail "%s:%d: not JSON: %s" file (i + 1) e
        | Ok j ->
          (match Dvs_obs.Schema.validate_trace_line j with
          | Ok () -> ()
          | Error e ->
            if check then fail "%s:%d: schema violation: %s" file (i + 1) e
            else Format.eprintf "warning: %s:%d: %s@." file (i + 1) e);
          let open Dvs_obs.Json in
          let name =
            Option.value ~default:"?"
              (Option.bind (member "name" j) to_string_opt)
          in
          if name = "trace.summary" then
            dropped :=
              Option.value ~default:0
                (Option.bind (member "attrs" j) (fun a ->
                     Option.bind (member "dropped" a) to_int))
          else begin
            let c, d =
              match Hashtbl.find_opt tbl name with
              | Some slot -> slot
              | None ->
                let slot = (ref 0, ref 0.0) in
                Hashtbl.add tbl name slot;
                order := name :: !order;
                slot
            in
            incr c;
            match Option.bind (member "dur" j) to_float with
            | Some s -> d := !d +. s
            | None -> ()
          end)
      lines;
    Format.printf "trace: %d entries, %d dropped@."
      (List.length lines - 1) !dropped;
    List.iter
      (fun name ->
        let c, d = Hashtbl.find tbl name in
        if !d > 0.0 then
          Format.printf "  %-28s %8d  (%.3fs in spans)@." name !c !d
        else Format.printf "  %-28s %8d@." name !c)
      (List.rev !order)
  in
  let show_service file check =
    let j =
      match Dvs_obs.Json.of_string (read_file file) with
      | Ok j -> j
      | Error e -> fail "%s: not JSON: %s" file e
    in
    (match Dvs_obs.Schema.validate_service j with
    | Ok () -> ()
    | Error e ->
      if check then fail "%s: schema violation: %s" file e
      else Format.eprintf "warning: %s: %s@." file e);
    let open Dvs_obs.Json in
    let str k = Option.bind (member k j) to_string_opt in
    let num ?(in_ = j) k = Option.bind (member k in_) to_float in
    let int k = Option.bind (member k j) to_int in
    Format.printf "leg %s: %d requests in %.2fs@."
      (Option.value ~default:"?" (str "leg"))
      (Option.value ~default:0 (int "requests"))
      (Option.value ~default:Float.nan (num "wall_seconds"));
    (match member "latency_ms" j with
    | Some lat ->
      Format.printf
        "latency ms: mean %.1f  p50 %.1f  p90 %.1f  p99 %.1f@."
        (Option.value ~default:Float.nan (num ~in_:lat "mean"))
        (Option.value ~default:Float.nan (num ~in_:lat "p50"))
        (Option.value ~default:Float.nan (num ~in_:lat "p90"))
        (Option.value ~default:Float.nan (num ~in_:lat "p99"))
    | None -> ());
    Format.printf "shed rate %.3f, batched %.0f%%, %d retries@."
      (Option.value ~default:Float.nan (num "shed_rate"))
      (100.0 *. Option.value ~default:Float.nan (num "batched_fraction"))
      (Option.value ~default:0 (int "retries"));
    (match num "savings_pct_mean" with
    | Some v when Float.is_nan v |> not ->
      Format.printf "mean savings %.1f%%@." v
    | _ -> ());
    match member "classes" j with
    | Some (Obj kvs) ->
      List.iter
        (fun (k, v) ->
          match to_int v with
          | Some n when n > 0 -> Format.printf "  %-18s %d@." k n
          | _ -> ())
        kvs
    | _ -> ()
  in
  let show_store file check =
    let j =
      match Dvs_obs.Json.of_string (read_file file) with
      | Ok j -> j
      | Error e -> fail "%s: not JSON: %s" file e
    in
    (match Dvs_obs.Schema.validate_store j with
    | Ok () -> ()
    | Error e ->
      if check then fail "%s: schema violation: %s" file e
      else Format.eprintf "warning: %s: %s@." file e);
    let open Dvs_obs.Json in
    let str k =
      Option.value ~default:"?" (Option.bind (member k j) to_string_opt)
    in
    let payload = member "payload" j in
    (* The envelope's checksum is FNV-1a over the rendered payload, the
       same function the store itself applies on every read. *)
    let computed =
      Option.map (fun p -> Dvs_store.Key.hash_hex (to_string p)) payload
    in
    let checksum_ok = computed = Some (str "checksum") in
    Format.printf "store entry: kind %s, epoch %d@." (str "kind")
      (Option.value ~default:0 (Option.bind (member "epoch" j) to_int));
    Format.printf "  key       %s@." (str "key");
    Format.printf "  checksum  %s (%s)@." (str "checksum")
      (if checksum_ok then "ok" else "MISMATCH");
    (match payload with
    | Some (Obj kvs) ->
      Format.printf "  payload   %d members: %s@." (List.length kvs)
        (String.concat ", " (List.map fst kvs))
    | _ -> ());
    if check && not checksum_ok then
      fail "%s: payload checksum mismatch" file
  in
  let run metrics trace service store check =
    if metrics = None && trace = None && service = None && store = None
    then begin
      Format.eprintf
        "nothing to do: pass --metrics, --trace, --service and/or \
         --store FILE@.";
      exit 2
    end;
    Option.iter (fun f -> show_metrics f check) metrics;
    Option.iter (fun f -> show_trace f check) trace;
    Option.iter (fun f -> show_service f check) service;
    Option.iter (fun f -> show_store f check) store
  in
  let service_in =
    Arg.(
      value
      & opt (some file) None
      & info [ "service" ] ~docv:"FILE"
          ~doc:"dvs-service/v1 loadgen report to pretty-print.")
  in
  let store_in =
    Arg.(
      value
      & opt (some file) None
      & info [ "store" ] ~docv:"FILE"
          ~doc:
            "dvs-store/v1 experiment-store entry to pretty-print; \
             $(b,--check) also recomputes its payload checksum.")
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:
         "Pretty-print (and with $(b,--check) validate) metrics / trace \
          / service-report / store-entry files written by \
          $(b,--metrics) / $(b,--trace) / $(b,loadgen --report) / the \
          experiment store")
    Term.(const run $ metrics_in $ trace_in $ service_in $ store_in $ check)

(* ---------------- bench-diff ---------------- *)

let bench_diff_cmd =
  let baseline_in =
    Arg.(
      required
      & opt (some file) None
      & info [ "baseline" ] ~docv:"FILE"
          ~doc:
            "Committed dvs-bench/v2 summary to compare against \
             (bench/BENCH_baseline.json in CI).")
  in
  let current_in =
    Arg.(
      required
      & opt (some file) None
      & info [ "current" ] ~docv:"FILE"
          ~doc:
            "Freshly generated dvs-bench/v2 summary \
             ($(b,bench/main.exe --emit-bench)).")
  in
  let max_regression_opt =
    Arg.(
      value
      & opt float 0.10
      & info [ "max-regression" ] ~docv:"FRAC"
          ~doc:
            "Allowed fractional growth of each work counter before the \
             diff fails (default 0.10 = 10%).")
  in
  let shed_tolerance_opt =
    Arg.(
      value
      & opt float 0.25
      & info [ "shed-tolerance" ] ~docv:"ABS"
          ~doc:
            "Allowed absolute drift of the service experiment's overload \
             shed rate before the diff fails (default 0.25); only \
             checked when both summaries carry a service section.")
  in
  let read_file file =
    let ic = open_in file in
    let s = really_input_string ic (in_channel_length ic) in
    close_in ic;
    s
  in
  let fail fmt =
    Format.kasprintf (fun s -> Format.eprintf "%s@." s; exit 2) fmt
  in
  let load file =
    let j =
      match Dvs_obs.Json.of_string (read_file file) with
      | Ok j -> j
      | Error e -> fail "%s: not JSON: %s" file e
    in
    (match Dvs_obs.Schema.validate_bench j with
    | Ok () -> ()
    | Error e -> fail "%s: not a dvs-bench/v2 summary: %s" file e);
    j
  in
  let counter file j k =
    match Option.bind (Dvs_obs.Json.member k j) Dvs_obs.Json.to_int with
    | Some n -> n
    | None -> fail "%s: missing integer field %s" file k
  in
  let run baseline current max_regression shed_tolerance same_stable =
    let bj = load baseline and cj = load current in
    (* A summary pair that did not run the same experiments compares
       apples to oranges: every counter diff below is suspect.  Warn
       loudly (one line per missing experiment) instead of silently
       skipping the rows that cannot be compared. *)
    let experiments file j =
      match Dvs_obs.Json.member "experiments" j with
      | Some (Dvs_obs.Json.List xs) ->
        List.filter_map Dvs_obs.Json.to_string_opt xs
      | _ -> fail "%s: missing experiments list" file
    in
    let bex = experiments baseline bj and cex = experiments current cj in
    List.iter
      (fun e ->
        if not (List.mem e cex) then
          Format.eprintf
            "warning: experiment %S ran in the baseline but not in the \
             current summary; its work is missing from every counter \
             below@."
            e)
      bex;
    List.iter
      (fun e ->
        if not (List.mem e bex) then
          Format.eprintf
            "warning: experiment %S ran in the current summary but not \
             in the baseline; its work inflates every counter below@."
            e)
      cex;
    (* Deterministic work counters gate the diff; wall-clock numbers are
       printed for context only (CI machines are too noisy to gate on). *)
    let gated = [ "lp_pivots"; "lp_solves"; "lp_flops"; "bb_nodes" ] in
    let informational = [ "solves" ] in
    let delta k =
      let b = counter baseline bj k and c = counter current cj k in
      let growth =
        if b > 0 then (float_of_int c -. float_of_int b) /. float_of_int b
        else if c > 0 then infinity
        else 0.0
      in
      (k, b, c, growth)
    in
    let print_row (k, b, c, growth) verdict =
      Format.printf "%-12s %12d -> %12d  %+7.2f%%%s@." k b c
        (100.0 *. growth) verdict
    in
    let rows = List.map delta gated in
    let regressed =
      List.filter (fun (_, _, _, growth) -> growth > max_regression) rows
    in
    List.iter
      (fun ((_, _, _, growth) as row) ->
        print_row row
          (if growth > max_regression then "  REGRESSION" else ""))
      rows;
    List.iter (fun k -> print_row (delta k) "  (informational)")
      informational;
    let print_wall k b c =
      Format.printf "%-12s %12.2f -> %12.2f  %+7.2f%%  (informational)@." k
        b c
        (if b > 0.0 then 100.0 *. ((c -. b) /. b) else 0.0)
    in
    (match
       ( Option.bind (Dvs_obs.Json.member "wall_seconds" bj)
           Dvs_obs.Json.to_float,
         Option.bind (Dvs_obs.Json.member "wall_seconds" cj)
           Dvs_obs.Json.to_float )
     with
    | Some b, Some c -> print_wall "wall_seconds" b c
    | _ -> ());
    (* The `reproduce' experiment's wall time graduates from
       informational to gated when both summaries ran it with either
       acceleration layer active — summarized verification
       (sim_summary_hits > 0) or the experiment store (store hits > 0).
       Tape replay / store rehydration make its runtime deterministic
       enough to hold to the same budget as the work counters, and it
       is the row that guards those layers' raison d'etre.  (A warm
       store run never creates a session at all, so its
       sim_summary_hits is 0: the store clause is what keeps the gate
       engaged there.) *)
    let summary_hits j =
      Option.value ~default:0
        (Option.bind (Dvs_obs.Json.member "sim_summary_hits" j)
           Dvs_obs.Json.to_int)
    in
    let store_hits j =
      match Dvs_obs.Json.member "store" j with
      | Some s ->
        List.fold_left
          (fun acc k ->
            acc
            + Option.value ~default:0
                (Option.bind (Dvs_obs.Json.member k s) Dvs_obs.Json.to_int))
          0
          [ "sim_hits"; "solve_hits"; "sweep_hits" ]
      | None -> 0
    in
    let warm j = summary_hits j > 0 || store_hits j > 0 in
    let gate_wall = warm bj && warm cj in
    let wall_regressed = ref false in
    (* Per-experiment wall times where both sides ran the experiment. *)
    (match
       ( Dvs_obs.Json.member "experiment_wall_seconds" bj,
         Dvs_obs.Json.member "experiment_wall_seconds" cj )
     with
    | Some (Dvs_obs.Json.Obj bw), Some (Dvs_obs.Json.Obj _ as cw) ->
      List.iter
        (fun (e, bv) ->
          match
            ( Dvs_obs.Json.to_float bv,
              Option.bind (Dvs_obs.Json.member e cw) Dvs_obs.Json.to_float )
          with
          | Some b, Some c ->
            if e = "reproduce" && gate_wall && b > 0.0 then begin
              let growth = (c -. b) /. b in
              if growth > max_regression then wall_regressed := true;
              Format.printf "%-12s %12.2f -> %12.2f  %+7.2f%%%s@."
                ("wall:" ^ e) b c (100.0 *. growth)
                (if growth > max_regression then "  REGRESSION"
                 else "  (gated)")
            end
            else print_wall ("wall:" ^ e) b c
          | _ -> ())
        bw
    | _ -> ());
    (* Service columns (PR 7): present only when both summaries ran the
       `service' experiment.  The clean-leg p99 is wall-clock and stays
       informational; the overload-leg shed rate is a stable property of
       admission control (bounded queue vs 12 impatient clients), so it
       is gated — with an *absolute* tolerance, because a shed-rate
       collapse means the bounded queue stopped shedding, which is the
       regression that matters. *)
    let service_field j k =
      Option.bind (Dvs_obs.Json.member "service" j) (fun s ->
          Option.bind (Dvs_obs.Json.member k s) Dvs_obs.Json.to_float)
    in
    let shed_regressed = ref false in
    (match
       (service_field bj "p99_seconds", service_field cj "p99_seconds")
     with
    | Some b, Some c -> print_wall "service:p99" b c
    | _ -> ());
    (match (service_field bj "shed_rate", service_field cj "shed_rate") with
    | Some b, Some c ->
      let drift = Float.abs (c -. b) in
      if drift > shed_tolerance then shed_regressed := true;
      Format.printf "%-12s %12.3f -> %12.3f  drift %.3f%s@."
        "service:shed" b c drift
        (if drift > shed_tolerance then "  REGRESSION"
         else
           Printf.sprintf "  (gated, tolerance %.2f)" shed_tolerance)
    | _ -> ());
    (* Continuous-bound pre-pruning (PR 9): when the baseline shows the
       sweep pruning points off the exact continuous certificate, the
       current run must still prune at least one — a silent fall to zero
       means the bound engine stopped certifying and every point went
       back to paying for a full solve.  Only checked when both
       summaries carry the field (so pre-PR 9 baselines stay diffable)
       and the current run did live sweep work: a warm run that answered
       its sweeps from the store honestly reports zero pruned points —
       volatile counters are not replayed — and that is a store hit, not
       a dead engine. *)
    let pruned_regressed = ref false in
    let sweep_store_hits j =
      match Dvs_obs.Json.member "store" j with
      | Some s ->
        Option.value ~default:0
          (Option.bind (Dvs_obs.Json.member "sweep_hits" s) Dvs_obs.Json.to_int)
      | None -> 0
    in
    (match
       ( Option.bind (Dvs_obs.Json.member "points_pruned_by_bound" bj)
           Dvs_obs.Json.to_int,
         Option.bind (Dvs_obs.Json.member "points_pruned_by_bound" cj)
           Dvs_obs.Json.to_int )
     with
    | Some b, Some c ->
      let live = sweep_store_hits cj = 0 in
      if b > 0 && c = 0 && live then pruned_regressed := true;
      Format.printf "%-12s %12d -> %12d%s@." "pruned" b c
        (if b > 0 && c = 0 && live then "  REGRESSION (pruning engine dead)"
         else if not live then "  (not gated: sweeps replayed from store)"
         else if b > 0 then "  (gated: must stay > 0)"
         else "  (informational)")
    | _ -> ());
    (* --same-stable: the cold-vs-warm store equivalence gate.  A store
       hit replays the cold run's captured stable counters, so the two
       summaries' deterministic metric subsets must be bit-identical —
       any drift means the store rehydrated something the live pipeline
       would not have produced. *)
    let stable_diff =
      if not same_stable then []
      else begin
        let subset file j =
          match Dvs_obs.Json.member "metrics" j with
          | Some m -> Dvs_obs.Metrics.stable_subset m
          | None -> fail "%s: missing metrics section" file
        in
        let bs = subset baseline bj and cs = subset current cj in
        if Dvs_obs.Json.to_string bs = Dvs_obs.Json.to_string cs then begin
          Format.printf "stable metrics: bit-identical@.";
          []
        end
        else begin
          (* Name the differing instruments so the failure is
             actionable from the CI log alone. *)
          let members section j =
            match Dvs_obs.Json.member section j with
            | Some (Dvs_obs.Json.Obj kvs) -> kvs
            | _ -> []
          in
          let names =
            List.concat_map
              (fun section ->
                let b = members section bs and c = members section cs in
                List.filter_map
                  (fun name ->
                    if List.assoc_opt name b = List.assoc_opt name c then
                      None
                    else Some (section ^ "." ^ name))
                  (List.sort_uniq compare
                     (List.map fst b @ List.map fst c)))
              [ "counters"; "gauges"; "histograms" ]
          in
          let names = if names = [] then [ "(structure)" ] else names in
          List.iter
            (fun n -> Format.printf "stable metrics differ: %s@." n)
            names;
          names
        end
      end
    in
    match
      (regressed, !wall_regressed, !shed_regressed, !pruned_regressed,
       stable_diff)
    with
    | [], false, false, false, [] ->
      Format.printf "bench-diff: ok (max allowed regression %.0f%%)@."
        (100.0 *. max_regression)
    | _ ->
      Format.eprintf
        "bench-diff: %d counter(s)%s%s%s%s regressed; if the growth is \
         intended, regenerate the baseline with `bench/main.exe -- \
         resilience fig18 reproduce service --emit-bench \
         bench/BENCH_baseline.json'@."
        (List.length regressed)
        (if !wall_regressed then " + the reproduce wall" else "")
        (if !shed_regressed then " + the service shed rate" else "")
        (if !pruned_regressed then " + the sweep pre-pruning count" else "")
        (if stable_diff <> [] then " + the stable metrics subset" else "");
      exit 1
  in
  let same_stable_opt =
    Arg.(
      value & flag
      & info [ "same-stable" ]
          ~doc:
            "Additionally require the two summaries' stable metrics \
             subsets ($(b,Metrics.stable_subset): wall-clock stripped, \
             volatile instruments dropped) to be bit-identical — the \
             cold-vs-warm experiment-store equivalence gate.")
  in
  Cmd.v
    (Cmd.info "bench-diff"
       ~doc:
         "Compare two dvs-bench/v2 summaries; fail on LP work-counter \
          (and service shed-rate) regressions, and with \
          $(b,--same-stable) on any stable-metric drift")
    Term.(
      const run $ baseline_in $ current_in $ max_regression_opt
      $ shed_tolerance_opt $ same_stable_opt)

(* ---------------- store: stats / gc / verify ---------------- *)

let store_cmd =
  let root_opt =
    Arg.(
      value
      & opt string Dvs_store.Store.default_root
      & info [ "root" ] ~docv:"DIR"
          ~doc:"Experiment-store root directory (default $(b,_store)).")
  in
  let stats_c =
    let run root =
      let s = Dvs_store.Store.open_ ~root () in
      let d = Dvs_store.Store.disk_stats s in
      Format.printf "%s: %d entries, %d bytes (epoch %d)@." root
        d.Dvs_store.Store.entries d.Dvs_store.Store.bytes
        (Dvs_store.Store.epoch s);
      List.iter
        (fun (kind, n) -> Format.printf "  %-8s %d@." kind n)
        d.Dvs_store.Store.by_kind
    in
    Cmd.v
      (Cmd.info "stats" ~doc:"Entry and byte counts of the on-disk store")
      Term.(const run $ root_opt)
  in
  let gc_c =
    let max_entries_opt =
      Arg.(
        value
        & opt (some int) None
        & info [ "max-entries" ] ~docv:"N"
            ~doc:"LRU entry bound to enforce (default 4096).")
    in
    let max_bytes_opt =
      Arg.(
        value
        & opt (some int) None
        & info [ "max-bytes" ] ~docv:"N"
            ~doc:"LRU byte bound to enforce (default 256 MiB).")
    in
    let run root max_entries max_bytes =
      let s =
        Dvs_store.Store.open_ ?max_entries ?max_bytes ~root ()
      in
      let r = Dvs_store.Store.gc s in
      Format.printf
        "gc %s: scanned %d, kept %d (dropped %d stale, %d corrupt, %d \
         over the LRU bound)@."
        root r.Dvs_store.Store.gc_scanned r.Dvs_store.Store.gc_kept
        r.Dvs_store.Store.gc_stale r.Dvs_store.Store.gc_corrupt
        r.Dvs_store.Store.gc_evicted
    in
    Cmd.v
      (Cmd.info "gc"
         ~doc:
           "Drop stale and corrupt entries, then enforce the LRU bounds")
      Term.(const run $ root_opt $ max_entries_opt $ max_bytes_opt)
  in
  let verify_c =
    let run root =
      let s = Dvs_store.Store.open_ ~root () in
      let r = Dvs_store.Store.verify s in
      Format.printf "verify %s: %d checked, %d ok, %d stale, %d corrupt@."
        root r.Dvs_store.Store.vr_checked r.Dvs_store.Store.vr_ok
        r.Dvs_store.Store.vr_stale
        (List.length r.Dvs_store.Store.vr_corrupt);
      List.iter
        (fun (file, reason) -> Format.printf "  %s: %s@." file reason)
        r.Dvs_store.Store.vr_corrupt;
      if r.Dvs_store.Store.vr_corrupt <> [] then exit 1
    in
    Cmd.v
      (Cmd.info "verify"
         ~doc:
           "Read-only integrity scan: parse and checksum every entry, \
            touching nothing; exit 1 if any entry is corrupt")
      Term.(const run $ root_opt)
  in
  Cmd.group
    (Cmd.info "store"
       ~doc:
         "Inspect and maintain the content-addressed experiment store \
          (see $(b,reproduce --store), $(b,serve --store) and the \
          $(b,DVS_STORE) variable read by the bench harness)")
    [ stats_c; gc_c; verify_c ]

(* ---------------- service: serve / request / loadgen ---------------- *)

let socket_opt =
  Arg.(
    value
    & opt string "/tmp/dvsd.sock"
    & info [ "socket" ] ~docv:"PATH"
        ~doc:"Unix-domain socket the daemon listens on.")

(* "name" or "name:input" *)
let parse_workload_spec s =
  match String.index_opt s ':' with
  | Some i ->
    (String.sub s 0 i, Some (String.sub s (i + 1) (String.length s - i - 1)))
  | None -> (s, None)

let serve_cmd =
  let workers =
    Arg.(
      value & opt int 2
      & info [ "workers" ] ~docv:"N" ~doc:"Worker domains serving requests.")
  in
  let queue_depth =
    Arg.(
      value & opt int 64
      & info [ "queue-depth" ] ~docv:"N"
          ~doc:
            "Admission-queue bound; a submit against a full queue is shed \
             with a typed overloaded rejection instead of buffered.")
  in
  let budget =
    Arg.(
      value & opt float 2.0
      & info [ "budget" ] ~docv:"SECONDS"
          ~doc:
            "Default wall-clock budget for requests that carry none; \
             queueing time is charged against it and the remainder picks \
             the degradation-ladder entry.")
  in
  let batch_max =
    Arg.(
      value & opt int 8
      & info [ "batch-max" ] ~docv:"N"
          ~doc:"Near-duplicate requests solved as one sweep (1 disables).")
  in
  let max_nodes =
    Arg.(
      value & opt int 4000
      & info [ "max-nodes" ] ~docv:"N"
          ~doc:"MILP node budget per solve.")
  in
  let warm =
    Arg.(
      value
      & opt_all string []
      & info [ "warm" ] ~docv:"WORKLOAD[:INPUT]"
          ~doc:
            "Pre-build warm state (compile, profile, verification \
             session) before accepting traffic; repeatable.")
  in
  let run socket workers queue_depth budget batch_max max_nodes capacitance
      levels store_root warm =
    Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
    let engine_config =
      try
        Dvs_service.Engine.Config.make ~workers ~queue_depth
          ~default_budget_s:budget ~batch_max ~max_nodes ~capacitance
          ?levels ?store_root ()
      with Invalid_argument msg ->
        Format.eprintf "error: %s@." msg;
        exit 9
    in
    match Dvs_service.Daemon.start ~engine_config ~socket () with
    | exception Failure msg ->
      Format.eprintf "error: %s@." msg;
      exit 9
    | d ->
      (match List.map parse_workload_spec warm with
      | [] -> ()
      | pairs -> (
        match Dvs_service.Engine.warm (Dvs_service.Daemon.engine d) pairs with
        | () -> Format.eprintf "warmed %d workload(s)@." (List.length pairs)
        | exception Not_found ->
          Format.eprintf "error: unknown workload in --warm@.";
          Dvs_service.Daemon.stop d;
          exit 9));
      let on_signal _ = Dvs_service.Daemon.stop d in
      Sys.set_signal Sys.sigint (Sys.Signal_handle on_signal);
      Sys.set_signal Sys.sigterm (Sys.Signal_handle on_signal);
      Format.eprintf "dvsd listening on %s (%d workers, queue %d)@." socket
        workers queue_depth;
      Dvs_service.Daemon.run d;
      Format.eprintf "dvsd stopped@."
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the long-lived solve service on a Unix-domain socket \
          (bounded admission queue, per-request budgets, near-duplicate \
          batching, idempotent retries)")
    Term.(
      const run $ socket_opt $ workers $ queue_depth $ budget $ batch_max
      $ max_nodes $ capacitance_opt $ levels_opt $ store_opt $ warm)

let request_cmd =
  let budget =
    Arg.(
      value
      & opt (some float) None
      & info [ "budget" ] ~docv:"SECONDS"
          ~doc:"Wall-clock budget for this request (server default when \
                absent).")
  in
  let mode =
    Arg.(
      value
      & opt (some int) None
      & info [ "mode" ] ~docv:"M"
          ~doc:"Ask for a pinned simulation at mode M instead of an \
                optimization.")
  in
  let id =
    Arg.(
      value
      & opt (some string) None
      & info [ "id" ] ~docv:"ID"
          ~doc:
            "Idempotency key: retries under the same id are served the \
             memoized reply instead of re-solving (default: fresh \
             per-invocation id).")
  in
  let retries =
    Arg.(
      value & opt int 5
      & info [ "retries" ] ~docv:"N"
          ~doc:"Retries (exponential backoff) when the daemon sheds the \
                request as overloaded.")
  in
  let shutdown =
    Arg.(
      value & flag
      & info [ "shutdown" ]
          ~doc:"Ask the daemon to drain and exit (no workload needed).")
  in
  let run socket w input frac budget mode id retries strict shutdown =
    Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
    let module P = Dvs_service.Protocol in
    let body =
      match (shutdown, w, mode) with
      | true, _, _ -> P.Shutdown
      | false, None, _ ->
        Format.eprintf "error: a WORKLOAD is required unless --shutdown@.";
        exit 9
      | false, Some w, Some m ->
        P.Simulate
          { workload = w.Dvs_workloads.Workload.name; input; mode = m }
      | false, Some w, None ->
        P.Optimize
          { workload = w.Dvs_workloads.Workload.name; input;
            deadline_frac = frac; budget_s = budget; chaos = None }
    in
    let id =
      match id with
      | Some s -> s
      | None ->
        Printf.sprintf "cli-%d-%07.0f" (Unix.getpid ())
          (Float.rem (Unix.gettimeofday () *. 1e3) 1e7)
    in
    let c =
      match Dvs_service.Client.connect ~socket with
      | c -> c
      | exception Unix.Unix_error (e, _, _) ->
        Format.eprintf "error: cannot reach dvsd at %s: %s@." socket
          (Unix.error_message e);
        exit 9
    in
    let reply, used =
      try Dvs_service.Client.request ~retries c { P.id; body }
      with
      | Failure msg ->
        Format.eprintf "error: %s@." msg;
        exit 9
      | P.Closed ->
        Format.eprintf "error: daemon closed the connection@.";
        exit 9
    in
    Dvs_service.Client.close c;
    let cls = P.class_of_reply reply in
    Format.printf "class: %s (queued %.1f ms, served %.1f ms%s%s)@."
      (P.class_name cls) reply.P.queue_ms reply.P.service_ms
      (if reply.P.batched > 1 then
         Printf.sprintf ", batch of %d" reply.P.batched
       else "")
      (if used > 0 then Printf.sprintf ", %d retries" used else "");
    (match reply.P.body with
    | P.Scheduled s ->
      (match s.P.rung with
      | Some rung -> Format.printf "schedule source: %s@." rung
      | None -> ());
      Format.printf "deadline: %.3f ms@." s.P.deadline_ms;
      (match (s.P.measured_ms, s.P.measured_uj) with
      | Some ms, Some uj ->
        Format.printf "verified: %.3f ms, %.1f uJ, deadline %s@." ms uj
          (match s.P.meets_deadline with
          | Some true -> "met"
          | Some false -> "MISSED"
          | None -> "unchecked")
      | _ -> ());
      Option.iter
        (fun pct ->
          Format.printf "savings vs best single mode: %.1f%%@." pct)
        s.P.savings_pct
    | P.Rejected_overloaded { queue_len; queue_cap } ->
      Format.eprintf "rejected: queue full (%d/%d)@." queue_len queue_cap
    | P.Rejected_budget { budget_s; waited_s } ->
      Format.eprintf "rejected: budget %.3fs drained (waited %.3fs)@."
        budget_s waited_s
    | P.Failed_reply msg -> Format.eprintf "failed: %s@." msg
    | P.Bye -> Format.printf "daemon draining@."
    | P.Sweep_points _ | P.Pong | P.Stats_reply _ -> ());
    exit (P.exit_code ~strict cls)
  in
  Cmd.v
    (Cmd.info "request"
       ~doc:
         "Send one optimize (or $(b,--mode) simulate, or \
          $(b,--shutdown)) request to a running $(b,dvstool serve) \
          daemon; exits through the shared exit-code table")
    Term.(
      const run $ socket_opt
      $ Arg.(
          value
          & pos 0 (some workload_arg) None
          & info [] ~docv:"WORKLOAD"
              ~doc:"Benchmark name (optional with $(b,--shutdown)).")
      $ input_opt $ deadline_frac_opt $ budget $ mode $ id $ retries
      $ strict_opt $ shutdown)

let loadgen_cmd =
  let leg_name =
    Arg.(
      value & opt string "leg"
      & info [ "name" ] ~docv:"NAME" ~doc:"Leg name stamped into the \
                                           report and request ids.")
  in
  let requests =
    Arg.(
      value & opt int 50
      & info [ "requests" ] ~docv:"N" ~doc:"Requests to send.")
  in
  let rate =
    Arg.(
      value & opt float 20.0
      & info [ "rate" ] ~docv:"HZ"
          ~doc:"Mean arrival rate (Poisson process).")
  in
  let clients =
    Arg.(
      value & opt int 4
      & info [ "clients" ] ~docv:"N" ~doc:"Concurrent client connections.")
  in
  let workloads =
    Arg.(
      value
      & opt (list string) [ "adpcm" ]
      & info [ "workloads" ] ~docv:"W[:I],..."
          ~doc:"Workloads cycled through by the request stream.")
  in
  let fracs =
    Arg.(
      value
      & opt (list float) [ 0.3; 0.5; 0.7 ]
      & info [ "fracs" ] ~docv:"F,..."
          ~doc:"Deadline fractions sampled per request.")
  in
  let budget =
    Arg.(
      value
      & opt (some float) None
      & info [ "budget" ] ~docv:"SECONDS" ~doc:"Per-request budget.")
  in
  let chaos_crash =
    Arg.(
      value & opt float 0.0
      & info [ "chaos-crash" ] ~docv:"P"
          ~doc:"Per-request probability of an injected solver-worker \
                crash.")
  in
  let chaos_exhaust =
    Arg.(
      value & opt float 0.0
      & info [ "chaos-exhaust" ] ~docv:"P"
          ~doc:"Per-request probability of exhausted LP pivot budgets.")
  in
  let chaos_poison =
    Arg.(
      value & opt float 0.0
      & info [ "chaos-poison" ] ~docv:"P"
          ~doc:"Per-request probability of a poisoned request (raises \
                inside the service worker; tests containment).")
  in
  let chaos_seed =
    Arg.(
      value & opt int 1
      & info [ "chaos-seed" ] ~docv:"K"
          ~doc:"Chaos seed: triggers are a pure function of (seed, \
                request id).")
  in
  let seed =
    Arg.(
      value & opt int 42
      & info [ "seed" ] ~docv:"K" ~doc:"Traffic seed (ids, fractions, \
                                        arrivals).")
  in
  let report =
    Arg.(
      value
      & opt (some string) None
      & info [ "report" ] ~docv:"FILE"
          ~doc:"Write the dvs-service/v1 leg report to FILE (inspect \
                with $(b,dvstool stats --service)).")
  in
  let max_shed =
    Arg.(
      value
      & opt (some float) None
      & info [ "max-shed-rate" ] ~docv:"FRAC"
          ~doc:"Exit 1 when the shed rate exceeds FRAC (CI gate).")
  in
  let run socket name requests rate clients workloads fracs budget
      chaos_crash chaos_exhaust chaos_poison chaos_seed seed report
      max_shed =
    Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
    let module P = Dvs_service.Protocol in
    let module L = Dvs_service.Loadgen in
    let chaos =
      if chaos_crash = 0.0 && chaos_exhaust = 0.0 && chaos_poison = 0.0
      then None
      else
        Some
          (P.chaos ~crash_rate:chaos_crash ~exhaust_rate:chaos_exhaust
             ~poison_rate:chaos_poison ~seed:chaos_seed ())
    in
    let leg =
      try
        L.leg ~clients
          ~workloads:(List.map parse_workload_spec workloads)
          ~fracs ?budget_s:budget ?chaos ~seed ~name ~requests
          ~rate_hz:rate ()
      with Invalid_argument msg ->
        Format.eprintf "error: %s@." msg;
        exit 9
    in
    let stats =
      try L.run ~socket leg
      with Unix.Unix_error (e, _, _) ->
        Format.eprintf "error: cannot reach dvsd at %s: %s@." socket
          (Unix.error_message e);
        exit 9
    in
    Format.printf "%a@." L.pp stats;
    (match report with
    | Some file ->
      let oc = open_out file in
      Dvs_obs.Json.to_channel oc (L.to_json stats);
      output_char oc '\n';
      close_out oc;
      Format.eprintf "report written to %s@." file
    | None -> ());
    match max_shed with
    | Some cap when stats.L.shed_rate > cap ->
      Format.eprintf "error: shed rate %.3f exceeds --max-shed-rate %.3f@."
        stats.L.shed_rate cap;
      exit 1
    | _ -> ()
  in
  Cmd.v
    (Cmd.info "loadgen"
       ~doc:
         "Drive a running daemon with seeded closed-loop traffic \
          (optionally chaos-injected) and report latency percentiles, \
          shed rate and savings under load")
    Term.(
      const run $ socket_opt $ leg_name $ requests $ rate $ clients
      $ workloads
      $ fracs $ budget $ chaos_crash $ chaos_exhaust $ chaos_poison
      $ chaos_seed $ seed $ report $ max_shed)

(* ---------------- analyze ---------------- *)

let analyze_cmd =
  let nov =
    Arg.(value & opt float 1500.0 & info [ "nov" ] ~docv:"KCYC"
           ~doc:"Overlappable computation cycles (thousands).")
  in
  let ndep =
    Arg.(value & opt float 1200.0 & info [ "ndep" ] ~docv:"KCYC"
           ~doc:"Dependent computation cycles (thousands).")
  in
  let ncache =
    Arg.(value & opt float 300.0 & info [ "ncache" ] ~docv:"KCYC"
           ~doc:"Cache-hit memory cycles (thousands).")
  in
  let tinv =
    Arg.(value & opt float 3500.0 & info [ "tinv" ] ~docv:"US"
           ~doc:"Cache-miss (asynchronous) time, microseconds.")
  in
  let tdl =
    Arg.(value & opt float 6000.0 & info [ "deadline" ] ~docv:"US"
           ~doc:"Deadline, microseconds.")
  in
  let run nov ndep ncache tinv tdl levels =
    let p =
      Dvs_analytical.Params.make ~n_overlap:(nov *. 1e3)
        ~n_dependent:(ndep *. 1e3) ~n_cache:(ncache *. 1e3)
        ~t_invariant:(tinv *. 1e-6) ~t_deadline:(tdl *. 1e-6)
    in
    Format.printf "%a: %a@." Dvs_analytical.Params.pp p
      Dvs_analytical.Params.pp_case
      (Dvs_analytical.Params.classify p);
    (match Dvs_analytical.Savings.continuous p with
    | Some r -> Format.printf "continuous savings bound: %.1f%%@." (100.0 *. r)
    | None -> Format.printf "infeasible deadline@.");
    let n = Option.value ~default:7 levels in
    let table =
      Dvs_power.Mode.levels
        ~v_lo:(Dvs_power.Alpha_power.voltage Dvs_power.Alpha_power.default 200e6)
        ~v_hi:1.65 n
    in
    match Dvs_analytical.Savings.discrete p table with
    | Some r ->
      Format.printf "%d-level discrete savings: %.1f%%@." n (100.0 *. r)
    | None -> Format.printf "%d-level table cannot meet the deadline@." n
  in
  Cmd.v
    (Cmd.info "analyze" ~doc:"Evaluate the Section 3 analytical model")
    Term.(const run $ nov $ ndep $ ncache $ tinv $ tdl $ levels_opt)

(* ---------------- paths ---------------- *)

let paths_cmd =
  let top =
    Arg.(
      value & opt int 5
      & info [ "top" ] ~docv:"N" ~doc:"How many hot paths to show.")
  in
  let run w input top =
    let input = input_of w input in
    let cfg, _, mem = Dvs_workloads.Workload.load w ~input in
    let bl = Dvs_profile.Ball_larus.compute cfg in
    let trace =
      (Dvs_ir.Interp.run ~trace:true cfg ~memory:mem)
        .Dvs_ir.Interp.block_trace
    in
    let counts = Dvs_profile.Ball_larus.count_trace bl trace in
    let total = List.fold_left (fun a (_, c) -> a + c) 0 counts in
    Format.printf "%d static paths; %d dynamic segments, %d distinct@."
      (Dvs_profile.Ball_larus.num_paths bl)
      total (List.length counts);
    List.iteri
      (fun rank (id, c) ->
        if rank < top then begin
          let blocks = Dvs_profile.Ball_larus.decode bl id in
          Format.printf "#%d  path %d: %d times (%.1f%%)  [%s]@." (rank + 1)
            id c
            (100.0 *. float_of_int c /. float_of_int (Int.max 1 total))
            (String.concat " -> "
               (List.map
                  (fun l -> (Dvs_ir.Cfg.block cfg l).Dvs_ir.Cfg.name)
                  blocks))
        end)
      counts
  in
  Cmd.v
    (Cmd.info "paths" ~doc:"Ball-Larus hot-path profile of a workload")
    Term.(const run $ workload_pos $ input_opt $ top)

(* ---------------- loops ---------------- *)

let loops_cmd =
  let run w input =
    let input = input_of w input in
    let cfg, _, mem = Dvs_workloads.Workload.load w ~input in
    let dom = Dvs_ir.Dominators.compute cfg in
    let loops = Dvs_ir.Dominators.natural_loops cfg dom in
    let machine = machine ~capacitance:0.4e-6 ~levels:None in
    let p = Dvs_profile.Profile.collect machine cfg ~memory:mem in
    Format.printf "%d natural loops@." (List.length loops);
    List.iter
      (fun (l : Dvs_ir.Dominators.loop) ->
        let trips =
          List.fold_left
            (fun acc (e : Dvs_ir.Cfg.edge) ->
              acc + Dvs_profile.Profile.g_of_edge p e)
            0 l.back_edges
        in
        Format.printf
          "header %s (L%d): %d blocks, %d back-edge traversals@."
          (Dvs_ir.Cfg.block cfg l.header).Dvs_ir.Cfg.name l.header
          (List.length l.body) trips)
      loops
  in
  Cmd.v
    (Cmd.info "loops" ~doc:"Natural loops of a workload, with trip counts")
    Term.(const run $ workload_pos $ input_opt)

(* ---------------- compile ---------------- *)

let compile_cmd =
  let file =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"FILE" ~doc:"MiniC source file.")
  in
  let dot =
    Arg.(value & flag & info [ "dot" ] ~doc:"Emit Graphviz instead of text.")
  in
  let run file dot =
    let ic = open_in file in
    let len = in_channel_length ic in
    let src = really_input_string ic len in
    close_in ic;
    match Dvs_lang.Lower.compile_string src with
    | cfg, layout ->
      if dot then print_string (Dvs_ir.Cfg.to_dot cfg)
      else begin
        Format.printf "%a" Dvs_ir.Cfg.pp cfg;
        Format.printf "data segment: %d words@."
          layout.Dvs_lang.Lower.memory_words
      end
    | exception Dvs_lang.Parser.Error (msg, pos) ->
      Format.eprintf "parse error at %a: %s@." Dvs_lang.Token.pp_pos pos msg;
      exit 1
    | exception Dvs_lang.Lexer.Error (msg, pos) ->
      Format.eprintf "lex error at %a: %s@." Dvs_lang.Token.pp_pos pos msg;
      exit 1
    | exception Dvs_lang.Typecheck.Error msg ->
      Format.eprintf "type error: %s@." msg;
      exit 1
  in
  Cmd.v
    (Cmd.info "compile" ~doc:"Compile a MiniC file and dump its CFG")
    Term.(const run $ file $ dot)

let () =
  let default = Term.(ret (const (`Help (`Pager, None)))) in
  exit
    (Cmd.eval
       (Cmd.group ~default
          (Cmd.info "dvstool" ~version:"1.0"
             ~doc:"Compile-time DVS toolkit (PLDI'03 reproduction)")
          [ list_cmd; simulate_cmd; profile_cmd; optimize_cmd; apply_cmd;
            reproduce_cmd; stats_cmd; bench_diff_cmd; store_cmd; serve_cmd;
            request_cmd; loadgen_cmd; analyze_cmd; compile_cmd; paths_cmd;
            loops_cmd ]))
