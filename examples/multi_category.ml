(* Optimizing for multiple input categories at once (Section 4.3 of the
   paper): the mpeg-analog workload has inputs with and without
   B-frame-style interpolation.  A schedule built from one category can
   misjudge the other; the weighted multi-category MILP covers both.

     dune exec examples/multi_category.exe *)

open Dvs_workloads

let () =
  let w = Workload.find "mpeg" in
  let cfg, _, _ = Workload.load w ~input:"bbc" in
  (* The same regulator must drive both the optimization and the
     verification runs. *)
  let regulator = Dvs_power.Switch_cost.regulator ~capacitance:0.4e-6 () in
  let machine = Workload.eval_config ~regulator () in
  let profile input =
    let _, _, mem = Workload.load w ~input in
    (Dvs_profile.Profile.collect machine cfg ~memory:mem, mem)
  in
  let p_bbc, mem_bbc = profile "bbc" in
  let p_flwr, mem_flwr = profile "flwr" in
  (* A common real-time budget that the no-B input can meet at the lowest
     mode but the B-frame input cannot. *)
  let deadline =
    let ds = Deadlines.of_profile p_flwr in
    ds.(3)
  in
  Printf.printf "common deadline: %.3f ms\n" (deadline *. 1e3);

  let optimize categories =
    Dvs_core.Pipeline.optimize_multi ~regulator ~memory:mem_flwr categories
  in
  let category p w = { Dvs_core.Formulation.profile = p; weight = w;
                       deadline }
  in
  let run schedule mem =
    let r =
      Dvs_machine.Cpu.run
        ~rc:
          (Dvs_machine.Cpu.Run_config.make
             ~initial_mode:schedule.Dvs_core.Schedule.entry_mode
             ~edge_modes:(Dvs_core.Schedule.edge_modes schedule cfg) ())
        machine cfg ~memory:mem
    in
    (r.Dvs_machine.Cpu.time, r.Dvs_machine.Cpu.energy)
  in
  let show label result =
    match (result : Dvs_core.Pipeline.result).Dvs_core.Pipeline.schedule with
    | None -> Printf.printf "%-28s (infeasible)\n" label
    | Some s ->
      let t1, e1 = run s mem_bbc in
      let t2, e2 = run s mem_flwr in
      Printf.printf
        "%-28s bbc: %7.3f ms %7.1f uJ %s   flwr: %7.3f ms %7.1f uJ %s\n"
        label (t1 *. 1e3) (e1 *. 1e6)
        (if t1 <= deadline *. 1.005 then "ok" else "MISS")
        (t2 *. 1e3) (e2 *. 1e6)
        (if t2 <= deadline *. 1.005 then "ok" else "MISS")
  in
  show "profiled on bbc only" (optimize [ category p_bbc 1.0 ]);
  show "profiled on flwr only" (optimize [ category p_flwr 1.0 ]);
  show "weighted 50/50 average"
    (optimize [ category p_bbc 0.5; category p_flwr 0.5 ])
