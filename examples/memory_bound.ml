(* The scenario that motivates compile-time DVS (Hsu-Kremer's intuition):
   a memory-bound region can run at a low voltage with almost no time
   cost.  This example compares three policies on such a program:

   - the best single frequency meeting the deadline,
   - a Hsu-Kremer-style greedy heuristic (slow down memory-bound blocks),
   - the exact MILP schedule.

     dune exec examples/memory_bound.exe *)

let source =
  "int big[32768]; int s; int i; int r;\n\
   s = 0;\n\
   // gather pass over a working set far beyond L2: DRAM-bound\n\
   for (i = 0; i < 16384; i = i + 1) {\n\
   \  s = s + big[(i * 13) % 32768];\n\
   }\n\
   // polynomial evaluation: pure compute\n\
   r = 1;\n\
   for (i = 0; i < 6000; i = i + 1) {\n\
   \  r = (r * 31 + s) % 65537;\n\
   \  r = r + ((r >> 3) ^ (r << 1));\n\
   }"

let () =
  let cfg, layout = Dvs_lang.Lower.compile_string source in
  (* Regulator scaled to this run length (see DESIGN.md section 5). *)
  let machine =
    Dvs_workloads.Workload.eval_config
      ~regulator:(Dvs_power.Switch_cost.regulator ~capacitance:0.4e-6 ())
      ()
  in
  let memory =
    Array.init layout.Dvs_lang.Lower.memory_words (fun i -> (i * 7) mod 1000)
  in
  let profile = Dvs_profile.Profile.collect machine cfg ~memory in
  let t_fast = Dvs_profile.Profile.pinned_time profile ~mode:2 in
  let t_slow = Dvs_profile.Profile.pinned_time profile ~mode:0 in
  let deadline = t_fast +. (0.55 *. (t_slow -. t_fast)) in
  Printf.printf "feasible range %.3f..%.3f ms, deadline %.3f ms\n"
    (t_fast *. 1e3) (t_slow *. 1e3) (deadline *. 1e3);

  let report label time energy =
    Printf.printf "%-24s %8.3f ms  %8.1f uJ%s\n" label (time *. 1e3)
      (energy *. 1e6)
      (if time <= deadline *. 1.005 then "" else "  (missed!)")
  in

  (* Policy 1: best single mode. *)
  (match Dvs_core.Baselines.best_single_mode profile ~deadline with
  | Some (mode, energy) ->
    report
      (Printf.sprintf "single mode %d" mode)
      (Dvs_profile.Profile.pinned_time profile ~mode)
      energy
  | None -> print_endline "no feasible single mode");

  (* Policy 2: Hsu-Kremer-style heuristic. *)
  (match
     Dvs_core.Baselines.hsu_kremer machine cfg ~memory ~profile ~deadline
   with
  | Some schedule ->
    let r =
      Dvs_machine.Cpu.run
        ~rc:
          (Dvs_machine.Cpu.Run_config.make
             ~initial_mode:schedule.Dvs_core.Schedule.entry_mode
             ~edge_modes:(Dvs_core.Schedule.edge_modes schedule cfg) ())
        machine cfg ~memory
    in
    report "hsu-kremer heuristic" r.Dvs_machine.Cpu.time
      r.Dvs_machine.Cpu.energy
  | None -> print_endline "heuristic found nothing");

  (* Policy 3: the MILP. *)
  match
    (Dvs_core.Pipeline.optimize machine cfg ~memory ~deadline)
      .Dvs_core.Pipeline.verification
  with
  | Some v ->
    report "MILP optimal" v.Dvs_core.Verify.stats.Dvs_machine.Cpu.time
      v.Dvs_core.Verify.stats.Dvs_machine.Cpu.energy
  | None -> print_endline "MILP failed"
