open Dvs_lp

let check_float ?(eps = 1e-6) what expected actual =
  if Float.abs (expected -. actual) > eps then
    Alcotest.failf "%s: expected %.9g, got %.9g" what expected actual

let solve_opt m =
  match Simplex.solve m with
  | Simplex.Optimal s -> s
  | st -> Alcotest.failf "expected optimal, got %a" Simplex.pp_status st

(* max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18  (classic; opt = 36 at
   (2,6)). *)
let test_dantzig_example () =
  let m = Model.create () in
  let x = Model.add_var ~name:"x" m and y = Model.add_var ~name:"y" m in
  Model.add_constraint m (Expr.var x) Model.Le 4.0;
  Model.add_constraint m (Expr.term 2.0 y) Model.Le 12.0;
  Model.add_constraint m
    (Expr.of_terms [ (3.0, x); (2.0, y) ])
    Model.Le 18.0;
  Model.set_objective m Model.Maximize
    (Expr.of_terms [ (3.0, x); (5.0, y) ]);
  let s = solve_opt m in
  check_float "obj" 36.0 s.objective;
  check_float "x" 2.0 s.values.(x);
  check_float "y" 6.0 s.values.(y)

(* min x + y s.t. x + 2y >= 6, 3x + y >= 9, opt at intersection (2.4, 1.8),
   obj 4.2. *)
let test_ge_constraints () =
  let m = Model.create () in
  let x = Model.add_var m and y = Model.add_var m in
  Model.add_constraint m (Expr.of_terms [ (1.0, x); (2.0, y) ]) Model.Ge 6.0;
  Model.add_constraint m (Expr.of_terms [ (3.0, x); (1.0, y) ]) Model.Ge 9.0;
  Model.set_objective m Model.Minimize (Expr.add (Expr.var x) (Expr.var y));
  let s = solve_opt m in
  check_float "obj" 4.2 s.objective;
  check_float "x" 2.4 s.values.(x);
  check_float "y" 1.8 s.values.(y)

let test_equality () =
  (* min 2x + 3y s.t. x + y = 10, x - y = 2 -> x=6, y=4, obj 24. *)
  let m = Model.create () in
  let x = Model.add_var m and y = Model.add_var m in
  Model.add_constraint m (Expr.add (Expr.var x) (Expr.var y)) Model.Eq 10.0;
  Model.add_constraint m (Expr.sub (Expr.var x) (Expr.var y)) Model.Eq 2.0;
  Model.set_objective m Model.Minimize
    (Expr.of_terms [ (2.0, x); (3.0, y) ]);
  let s = solve_opt m in
  check_float "obj" 24.0 s.objective;
  check_float "x" 6.0 s.values.(x)

let test_infeasible () =
  let m = Model.create () in
  let x = Model.add_var ~ub:1.0 m in
  Model.add_constraint m (Expr.var x) Model.Ge 2.0;
  Model.set_objective m Model.Minimize (Expr.var x);
  Alcotest.(check bool) "infeasible" true (Simplex.solve m = Simplex.Infeasible)

let test_unbounded () =
  let m = Model.create () in
  let x = Model.add_var m in
  Model.set_objective m Model.Maximize (Expr.var x);
  Alcotest.(check bool) "unbounded" true (Simplex.solve m = Simplex.Unbounded)

let test_free_variable () =
  (* min x with free x and x >= -5 constraint -> -5. *)
  let m = Model.create () in
  let x = Model.add_var ~lb:neg_infinity m in
  Model.add_constraint m (Expr.var x) Model.Ge (-5.0);
  Model.set_objective m Model.Minimize (Expr.var x);
  let s = solve_opt m in
  check_float "x" (-5.0) s.values.(x)

let test_negative_lower_bound () =
  (* min x + y with x in [-3, 7], y in [-2, inf), x + y >= -4. *)
  let m = Model.create () in
  let x = Model.add_var ~lb:(-3.0) ~ub:7.0 m in
  let y = Model.add_var ~lb:(-2.0) m in
  Model.add_constraint m (Expr.add (Expr.var x) (Expr.var y)) Model.Ge (-4.0);
  Model.set_objective m Model.Minimize (Expr.add (Expr.var x) (Expr.var y));
  let s = solve_opt m in
  check_float "obj" (-4.0) s.objective

let test_upper_bound_only () =
  (* max x with lb = -oo, ub = 3. *)
  let m = Model.create () in
  let x = Model.add_var ~lb:neg_infinity ~ub:3.0 m in
  Model.set_objective m Model.Maximize (Expr.var x);
  let s = solve_opt m in
  check_float "x" 3.0 s.values.(x)

let test_fixed_variable_substitution () =
  (* x fixed at 2 by bounds; min y s.t. y >= 3x -> 6. *)
  let m = Model.create () in
  let x = Model.add_var ~lb:2.0 ~ub:2.0 m in
  let y = Model.add_var m in
  Model.add_constraint m
    (Expr.sub (Expr.var y) (Expr.term 3.0 x))
    Model.Ge 0.0;
  Model.set_objective m Model.Minimize (Expr.var y);
  let s = solve_opt m in
  check_float "y" 6.0 s.values.(y);
  check_float "x" 2.0 s.values.(x)

let test_constant_in_expressions () =
  (* Constraint with embedded constant: (x + 1) <= 4  ->  x <= 3. *)
  let m = Model.create () in
  let x = Model.add_var m in
  Model.add_constraint m
    (Expr.add (Expr.var x) (Expr.constant 1.0))
    Model.Le 4.0;
  Model.set_objective m Model.Maximize (Expr.var x);
  let s = solve_opt m in
  check_float "x" 3.0 s.values.(x)

let test_degenerate_cycling_guard () =
  (* The classic Beale cycling example; Bland's fallback must terminate. *)
  let m = Model.create () in
  let x1 = Model.add_var m and x2 = Model.add_var m in
  let x3 = Model.add_var m and x4 = Model.add_var m in
  Model.add_constraint m
    (Expr.of_terms [ (0.25, x1); (-8.0, x2); (-1.0, x3); (9.0, x4) ])
    Model.Le 0.0;
  Model.add_constraint m
    (Expr.of_terms [ (0.5, x1); (-12.0, x2); (-0.5, x3); (3.0, x4) ])
    Model.Le 0.0;
  Model.add_constraint m (Expr.var x3) Model.Le 1.0;
  Model.set_objective m Model.Maximize
    (Expr.of_terms [ (0.75, x1); (-20.0, x2); (0.5, x3); (-6.0, x4) ]);
  let s = solve_opt m in
  check_float ~eps:1e-6 "obj" 1.25 s.objective

let test_iter_limit_status () =
  (* A Ge constraint forces phase-1 pivots; max_iter:0 must surface the
     typed Iter_limit status instead of raising. *)
  let m = Model.create () in
  let x = Model.add_var m and y = Model.add_var m in
  Model.add_constraint m (Expr.of_terms [ (1.0, x); (2.0, y) ]) Model.Ge 6.0;
  Model.set_objective m Model.Minimize (Expr.add (Expr.var x) (Expr.var y));
  (match Simplex.solve ~max_iter:0 m with
  | Simplex.Iter_limit p ->
    Alcotest.(check int) "stalled in phase 1" 1 p.Simplex.phase
  | st -> Alcotest.failf "expected iter limit, got %a" Simplex.pp_status st);
  (* The same model solves fine with the default budget. *)
  match Simplex.solve m with
  | Simplex.Optimal _ -> ()
  | st -> Alcotest.failf "expected optimal, got %a" Simplex.pp_status st

let test_warm_start_matches_cold () =
  (* Solve, keep the basis, perturb a bound, and re-solve warm: the warm
     run must agree with a cold solve to tight tolerance. *)
  let build ub =
    let m = Model.create () in
    let x = Model.add_var ~name:"x" ~ub m in
    let y = Model.add_var ~name:"y" ~ub:6.0 m in
    Model.add_constraint m
      (Expr.of_terms [ (3.0, x); (2.0, y) ])
      Model.Le 18.0;
    Model.set_objective m Model.Maximize
      (Expr.of_terms [ (3.0, x); (5.0, y) ]);
    m
  in
  let basis =
    match Simplex.solve_ext (build 4.0) with
    | Simplex.Optimal _, Some b, _ -> b
    | _ -> Alcotest.fail "cold solve of the base model failed"
  in
  let tightened = build 1.5 in
  let warm =
    match Simplex.solve_from_basis basis tightened with
    | Simplex.Optimal s -> s
    | st -> Alcotest.failf "warm solve: %a" Simplex.pp_status st
  in
  let cold = solve_opt (build 1.5) in
  check_float ~eps:1e-9 "objective" cold.objective warm.objective;
  check_float ~eps:1e-9 "x" cold.values.(0) warm.values.(0);
  check_float ~eps:1e-9 "y" cold.values.(1) warm.values.(1)

(* ------------------------------------------------------------------ *)
(* Property tests *)

let feasible_within m (s : Simplex.solution) =
  let tol = 1e-5 in
  List.for_all
    (fun (c : Model.constr) ->
      let lhs = Expr.eval (fun i -> s.values.(i)) c.expr in
      match c.cmp with
      | Model.Le -> lhs <= c.rhs +. tol
      | Model.Ge -> lhs >= c.rhs -. tol
      | Model.Eq -> Float.abs (lhs -. c.rhs) <= tol)
    (Model.constraints m)
  && List.for_all
       (fun i ->
         let lb, ub = Model.bounds m i in
         s.values.(i) >= lb -. tol && s.values.(i) <= ub +. tol)
       (List.init (Model.num_vars m) Fun.id)

(* Random box-constrained LPs built around a known feasible point. *)
let random_lp_gen =
  QCheck.Gen.(
    let* n = int_range 2 6 in
    let* mrows = int_range 1 6 in
    let* c = array_size (return n) (float_range (-5.0) 5.0) in
    let* a =
      array_size (return (mrows * n)) (float_range (-4.0) 4.0)
    in
    let* x0 = array_size (return n) (float_range 0.0 3.0) in
    let* slack = array_size (return mrows) (float_range 0.0 2.0) in
    return (n, mrows, c, a, x0, slack))

let build_lp (n, mrows, c, a, x0, slack) =
  let m = Model.create () in
  let vars = Array.init n (fun _ -> Model.add_var ~ub:5.0 m) in
  for i = 0 to mrows - 1 do
    let row = List.init n (fun j -> (a.((i * n) + j), vars.(j))) in
    let b =
      List.fold_left (fun acc (cf, v) -> acc +. (cf *. x0.(v))) 0.0 row
      +. slack.(i)
    in
    Model.add_constraint m (Expr.of_terms row) Model.Le b
  done;
  Model.set_objective m Model.Minimize
    (Expr.of_terms (List.init n (fun j -> (c.(j), vars.(j)))));
  (m, x0)

let qcheck_random_lp_feasible_and_no_worse =
  QCheck.Test.make ~name:"random LPs: optimal, feasible, beats seed point"
    ~count:300
    (QCheck.make random_lp_gen)
    (fun spec ->
      let m, x0 = build_lp spec in
      match Simplex.solve m with
      | Simplex.Optimal s ->
        let _, obj = Model.objective m in
        let seed_obj = Expr.eval (fun i -> x0.(i)) obj in
        feasible_within m s && s.objective <= seed_obj +. 1e-5
      | Simplex.Unbounded -> false (* box-bounded: impossible *)
      | Simplex.Infeasible -> false (* x0 is feasible by construction *)
      | Simplex.Iter_limit _ -> false (* tiny instances converge *))

(* Strong duality: min c'x, Ax >= b, x >= 0   vs   max b'y, A'y <= c,
   y >= 0, with c > 0 (bounded) and rows guaranteed satisfiable. *)
let duality_gen =
  QCheck.Gen.(
    let* n = int_range 2 5 in
    let* mrows = int_range 2 5 in
    let* c = array_size (return n) (float_range 0.1 5.0) in
    let* a = array_size (return (mrows * n)) (float_range 0.0 3.0) in
    let* b = array_size (return mrows) (float_range 0.0 8.0) in
    return (n, mrows, c, a, b))

let qcheck_strong_duality =
  QCheck.Test.make ~name:"strong duality on random primal/dual pairs"
    ~count:200
    (QCheck.make duality_gen)
    (fun (n, mrows, c, a, b) ->
      (* Ensure every row with positive rhs has at least one positive
         coefficient so the primal is feasible. *)
      let a = Array.copy a in
      for i = 0 to mrows - 1 do
        let has_pos = ref false in
        for j = 0 to n - 1 do
          if a.((i * n) + j) > 0.1 then has_pos := true
        done;
        if not !has_pos then a.(i * n) <- 1.0
      done;
      let primal = Model.create () in
      let xs = Array.init n (fun _ -> Model.add_var primal) in
      for i = 0 to mrows - 1 do
        Model.add_constraint primal
          (Expr.of_terms (List.init n (fun j -> (a.((i * n) + j), xs.(j)))))
          Model.Ge b.(i)
      done;
      Model.set_objective primal Model.Minimize
        (Expr.of_terms (List.init n (fun j -> (c.(j), xs.(j)))));
      let dual = Model.create () in
      let ys = Array.init mrows (fun _ -> Model.add_var dual) in
      for j = 0 to n - 1 do
        Model.add_constraint dual
          (Expr.of_terms
             (List.init mrows (fun i -> (a.((i * n) + j), ys.(i)))))
          Model.Le c.(j)
      done;
      Model.set_objective dual Model.Maximize
        (Expr.of_terms (List.init mrows (fun i -> (b.(i), ys.(i)))));
      match (Simplex.solve primal, Simplex.solve dual) with
      | Simplex.Optimal p, Simplex.Optimal d ->
        Float.abs (p.objective -. d.objective)
        <= 1e-5 *. Float.max 1.0 (Float.abs p.objective)
      | _ -> false)

let suite =
  [ Alcotest.test_case "dantzig example" `Quick test_dantzig_example;
    Alcotest.test_case "ge constraints" `Quick test_ge_constraints;
    Alcotest.test_case "equality" `Quick test_equality;
    Alcotest.test_case "infeasible" `Quick test_infeasible;
    Alcotest.test_case "unbounded" `Quick test_unbounded;
    Alcotest.test_case "free variable" `Quick test_free_variable;
    Alcotest.test_case "negative lower bound" `Quick
      test_negative_lower_bound;
    Alcotest.test_case "upper bound only" `Quick test_upper_bound_only;
    Alcotest.test_case "fixed variable substitution" `Quick
      test_fixed_variable_substitution;
    Alcotest.test_case "constant folding in constraints" `Quick
      test_constant_in_expressions;
    Alcotest.test_case "beale cycling guard" `Quick
      test_degenerate_cycling_guard;
    Alcotest.test_case "iter limit status" `Quick test_iter_limit_status;
    Alcotest.test_case "warm start matches cold" `Quick
      test_warm_start_matches_cold;
    QCheck_alcotest.to_alcotest qcheck_random_lp_feasible_and_no_worse;
    QCheck_alcotest.to_alcotest qcheck_strong_duality ]

let test_lp_io_format () =
  let m = Model.create () in
  let x = Model.add_var ~name:"x" ~ub:4.0 m in
  let b = Model.binary ~name:"pick" m in
  Model.add_constraint ~name:"cap" m
    (Expr.of_terms [ (2.0, x); (-1.0, b) ])
    Model.Le 7.0;
  Model.set_objective m Model.Maximize (Expr.add (Expr.var x) (Expr.var b));
  let s = Lp_io.to_lp_string m in
  List.iter
    (fun needle ->
      if not
           (let re = Str.regexp_string needle in
            try ignore (Str.search_forward re s 0); true
            with Not_found -> false)
      then Alcotest.failf "missing %S in:\n%s" needle s)
    [ "Maximize"; "cap:"; "2 x - pick <= 7"; "Bounds"; "0 <= x <= 4";
      "Binary"; " pick"; "End" ]

let suite = suite @ [ Alcotest.test_case "lp file export" `Quick test_lp_io_format ]
