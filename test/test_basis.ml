(* Dense-vs-LU basis backend equivalence.

   The sparse-LU + eta-file backend must be indistinguishable from the
   dense-inverse oracle in everything except linear-algebra cost: same
   statuses, same pivot counts, bit-identical solutions (both backends
   share every pricing/ratio decision and finish on the same dense
   factorization), and the same typed fault behavior under injected
   crashes and pivot exhaustion. *)

open Dvs_lp
module Solver = Dvs_milp.Solver
module Fault = Dvs_milp.Fault
module Rng = Dvs_workloads.Rng

(* ---- seeded LP instances ------------------------------------------- *)

(* Random sparse LP built around a known feasible point, sized so the
   basis actually cycles through refactorizations: 12..30 vars, 8..20
   rows, ~1/3 fill, a mix of Le and Ge rows (Ge forces phase-1 work).
   All data is generic (fractional, no repeated values), so the
   instances carry no exact degenerate ties — on tied ratio tests the
   two backends' last-ulp residual differences could legitimately break
   a tie differently and the pivot sequences would diverge; on generic
   data they must coincide exactly. *)
let seeded_lp seed =
  let rng = Rng.create seed in
  let frac lo hi =
    lo +. ((hi -. lo) *. (float_of_int (Rng.int rng 99_991) /. 99991.0))
  in
  let n = 12 + Rng.int rng 19 and rows = 8 + Rng.int rng 13 in
  let m = Model.create () in
  let vars = Array.init n (fun _ -> Model.add_var ~ub:6.0 m) in
  let x0 = Array.init n (fun _ -> frac 0.0 3.0) in
  for _ = 1 to rows do
    let terms = ref [] in
    for j = 0 to n - 1 do
      if Rng.int rng 3 = 0 then
        terms := (frac (-4.0) 4.0, vars.(j)) :: !terms
    done;
    let terms =
      match !terms with [] -> [ (1.0, vars.(0)) ] | ts -> ts
    in
    let lhs0 =
      List.fold_left (fun acc (c, v) -> acc +. (c *. x0.(v))) 0.0 terms
    in
    (* Slack keeps x0 feasible for either sense. *)
    if Rng.int rng 4 = 0 then
      Model.add_constraint m (Expr.of_terms terms) Model.Ge
        (lhs0 -. frac 0.5 3.0)
    else
      Model.add_constraint m (Expr.of_terms terms) Model.Le
        (lhs0 +. frac 0.5 3.0)
  done;
  Model.set_objective m Model.Minimize
    (Expr.of_terms (List.init n (fun j -> (frac (-4.0) 4.0, vars.(j)))));
  m

let solve_both ?refactor m =
  let go backend = Simplex.solve_ext ~backend ?refactor m in
  (go Simplex.Lu, go Simplex.Dense)

let check_objective ~what (a : Simplex.solution) (b : Simplex.solution) =
  let oa = a.Simplex.objective and ob = b.Simplex.objective in
  if Float.abs (oa -. ob) > 1e-9 *. Float.max 1.0 (Float.abs ob) then
    Alcotest.failf "%s: objective %.15g vs %.15g" what oa ob

(* Same status and same objective to 1e-9 on every seed; same pivot
   count on (nearly) every seed.  Pivot-for-pivot identity between two
   different factorizations is not a sound floating-point invariant:
   near a degenerate vertex the backends' last-ulp residual differences
   can break a ratio-test tie differently and the sequences diverge to
   an alternate optimum of the same objective.  That happens on 2 of
   these 25 fixed seeds; the bound below catches any systematic
   divergence (a pricing or solve bug perturbs most seeds, not two)
   without enshrining ulp behavior.  Values are not compared entry-wise
   for the same reason. *)
let test_lp_backends_agree () =
  let diverged = ref 0 in
  for seed = 1 to 25 do
    let m = seeded_lp seed in
    let (st_lu, _, stats_lu), (st_de, _, stats_de) = solve_both m in
    if stats_lu.Simplex.pivots <> stats_de.Simplex.pivots then
      incr diverged;
    match (st_lu, st_de) with
    | Simplex.Optimal a, Simplex.Optimal b ->
      check_objective ~what:(Printf.sprintf "seed %d lu-vs-dense" seed) a b
    | Simplex.Infeasible, Simplex.Infeasible
    | Simplex.Unbounded, Simplex.Unbounded ->
      ()
    | a, b ->
      Alcotest.failf "seed %d: status %a (lu) vs %a (dense)" seed
        Simplex.pp_status a Simplex.pp_status b
  done;
  if !diverged > 5 then
    Alcotest.failf
      "pivot sequences diverged on %d/25 seeds — backends are not \
       retracing each other's steps"
      !diverged

(* Refactorization cadence changes linear-algebra bookkeeping (and its
   roundoff), never the answer: every policy must reach the same status
   and objective as the default cadence on both backends. *)
let test_refactor_policy_equivalent () =
  let policies =
    [ Simplex.Pivots 1;
      Simplex.Pivots 7;
      Simplex.Eta_fill { max_pivots = 1; growth = 2.0 };
      Simplex.Eta_fill { max_pivots = 256; growth = 0.01 } ]
  in
  for seed = 1 to 5 do
    let m = seeded_lp seed in
    let (ref_lu, _, _), _ = solve_both m in
    List.iter
      (fun refactor ->
        let (st_lu, _, _), (st_de, _, _) = solve_both ~refactor m in
        match (ref_lu, st_lu, st_de) with
        | Simplex.Optimal r, Simplex.Optimal a, Simplex.Optimal b ->
          let what = Printf.sprintf "seed %d (policy)" seed in
          check_objective ~what r a;
          check_objective ~what r b
        | Simplex.Infeasible, Simplex.Infeasible, Simplex.Infeasible
        | Simplex.Unbounded, Simplex.Unbounded, Simplex.Unbounded ->
          ()
        | _ -> Alcotest.failf "seed %d: status drift under the policy" seed)
      policies
  done

(* The LU backend actually does sparse work: on a model with plenty of
   rows the dense backend's per-pivot m^2 updates must cost measurably
   more charged flops than factorization + eta updates. *)
let test_lu_saves_flops () =
  let m = seeded_lp 3 in
  let (_, _, s_lu), (_, _, s_de) = solve_both m in
  if s_lu.Simplex.lu_refactorizations < 1 then
    Alcotest.fail "LU backend built no factorization";
  if s_lu.Simplex.flops >= s_de.Simplex.flops then
    Alcotest.failf "LU flops %d not below dense flops %d"
      s_lu.Simplex.flops s_de.Simplex.flops

(* ---- singular / near-singular warm hints --------------------------- *)

(* Basis from a well-conditioned model applied to a same-shape model
   whose corresponding basis matrix is singular (duplicate columns):
   both backends must detect the singularity, fall back to a cold
   solve, and still return the optimum. *)
let singular_pair scale =
  let build c10 c11 obj_y =
    let m = Model.create () in
    let x = Model.add_var m and y = Model.add_var m in
    Model.add_constraint m
      (Expr.of_terms [ (1.0, x); (c10, y) ])
      Model.Le 4.0;
    Model.add_constraint m
      (Expr.of_terms [ (3.0, x); (c11, y) ])
      Model.Le 5.0;
    Model.set_objective m Model.Maximize
      (Expr.of_terms [ (1.0, x); (obj_y, y) ]);
    m
  in
  (* A's optimum sits at the intersection: both x and y basic. *)
  let a = build 2.0 1.0 1.0 in
  (* B duplicates column x (up to [scale] of an exact copy), so A's
     {x, y}-basic basis is singular or numerically so on B. *)
  let b = build 1.0 scale 0.5 in
  (a, b)

let test_singular_hint_falls_back scale () =
  let a, b = singular_pair scale in
  let basis =
    match Simplex.solve_ext a with
    | Simplex.Optimal _, Some basis, _ -> basis
    | _ -> Alcotest.fail "model A must solve with both vars basic"
  in
  List.iter
    (fun backend ->
      let cold =
        match Simplex.solve ~backend b with
        | Simplex.Optimal s -> s
        | st ->
          Alcotest.failf "cold solve of B: %a" Simplex.pp_status st
      in
      match Simplex.solve_from_basis ~backend basis b with
      | Simplex.Optimal warm ->
        if
          Float.abs (warm.Simplex.objective -. cold.Simplex.objective)
          > 1e-9
        then
          Alcotest.failf "fallback objective %.12g vs cold %.12g"
            warm.Simplex.objective cold.Simplex.objective
      | st ->
        Alcotest.failf "singular hint must fall back to optimal, got %a"
          Simplex.pp_status st)
    [ Simplex.Lu; Simplex.Dense ]

(* ---- MILP-level agreement ------------------------------------------ *)

(* Same DVS-shaped seeded instances as the presolve property: SOS1 mode
   groups, a shared budget row, distinct fractional costs (unique
   optimum, so schedules are comparable bit for bit). *)
let seeded_dvs_milp seed =
  let rng = Rng.create seed in
  let groups = 3 + Rng.int rng 4 and modes = 2 + Rng.int rng 2 in
  let m = Model.create () in
  let k =
    Array.init groups (fun _ -> Array.init modes (fun _ -> Model.binary m))
  in
  let cost =
    Array.init groups (fun _ ->
        Array.init modes (fun _ ->
            1.0 +. (float_of_int (Rng.int rng 100_000) /. 97.0)))
  in
  let time =
    Array.init groups (fun g ->
        Array.init modes (fun j ->
            float_of_int (modes - j)
            +. (float_of_int (Rng.int rng 100) /. 400.0)
            +. (0.25 *. float_of_int (g mod 3))))
  in
  for g = 0 to groups - 1 do
    Model.add_constraint m
      (Expr.of_terms (List.init modes (fun j -> (1.0, k.(g).(j)))))
      Model.Eq 1.0
  done;
  let sum_by pick =
    Array.to_list time
    |> List.fold_left (fun acc row -> acc +. pick row) 0.0
  in
  let tmin = sum_by (Array.fold_left Float.min infinity)
  and tmax = sum_by (Array.fold_left Float.max neg_infinity) in
  let budget =
    tmin
    +. ((tmax -. tmin)
        *. (0.15 +. (float_of_int (Rng.int rng 60) /. 100.0)))
  in
  let all w =
    Expr.of_terms
      (List.concat_map
         (fun g -> List.init modes (fun j -> (w.(g).(j), k.(g).(j))))
         (List.init groups Fun.id))
  in
  Model.add_constraint m (all time) Model.Le budget;
  Model.set_objective m Model.Minimize (all cost);
  (m, List.map Array.to_list (Array.to_list k))

let milp_solve ?fault ~basis ~jobs (m, sos1) =
  (* No shared Lp_cache across backends: a hit computed by one backend
     answering the other would mask a divergence. Config.make creates a
     private cache per solve, which is exactly what we want. *)
  let config =
    Solver.Config.make ~jobs ~basis ?fault ()
    |> Solver.Config.with_sos1 sos1
  in
  Solver.solve ~config m

let check_milp_agree ~what instance (r_lu : Solver.result)
    (r_de : Solver.result) =
  if r_lu.Solver.outcome <> r_de.Solver.outcome then
    Alcotest.failf "%s: outcome %a (lu) vs %a (dense)" what
      Solver.pp_outcome r_lu.Solver.outcome Solver.pp_outcome
      r_de.Solver.outcome;
  match (r_lu.Solver.solution, r_de.Solver.solution) with
  | None, None -> ()
  | Some a, Some b ->
    let oa = a.Simplex.objective and ob = b.Simplex.objective in
    if Float.abs (oa -. ob) > 1e-9 *. Float.max 1.0 (Float.abs ob) then
      Alcotest.failf "%s: objective %.15g (lu) vs %.15g (dense)" what oa
        ob;
    let _, sos1 = instance in
    List.iteri
      (fun g group ->
        List.iteri
          (fun j v ->
            let xa = Float.round a.Simplex.values.(v)
            and xb = Float.round b.Simplex.values.(v) in
            if Int64.bits_of_float xa <> Int64.bits_of_float xb then
              Alcotest.failf "%s: group %d mode %d differs (%g vs %g)"
                what g j xa xb)
          group)
      sos1
  | _ -> Alcotest.failf "%s: solution presence differs" what

let test_milp_backends_agree () =
  for seed = 1 to 25 do
    let instance = seeded_dvs_milp seed in
    List.iter
      (fun jobs ->
        let r_lu = milp_solve ~basis:Simplex.Lu ~jobs instance in
        let r_de = milp_solve ~basis:Simplex.Dense ~jobs instance in
        check_milp_agree
          ~what:(Printf.sprintf "seed %d jobs %d" seed jobs)
          instance r_lu r_de)
      [ 1; 4 ]
  done

(* Injected faults fire on node/LP ordinals, not on anything the basis
   representation touches — so both backends must degrade identically:
   same typed outcome, same incumbent. *)
let test_fault_agreement () =
  let specs =
    [ ("crash", fun () -> Fault.make ~crash_at_nodes:[ 1 ] ());
      ("exhaust", fun () -> Fault.make ~exhaust_pivots_every:2 ()) ]
  in
  for seed = 1 to 5 do
    let instance = seeded_dvs_milp seed in
    List.iter
      (fun (name, fresh) ->
        let r_lu =
          milp_solve ~fault:(fresh ()) ~basis:Simplex.Lu ~jobs:1 instance
        in
        let r_de =
          milp_solve ~fault:(fresh ()) ~basis:Simplex.Dense ~jobs:1
            instance
        in
        check_milp_agree
          ~what:(Printf.sprintf "seed %d fault %s" seed name)
          instance r_lu r_de)
      specs
  done

(* ---- config plumbing ----------------------------------------------- *)

let test_refactor_validation () =
  Alcotest.check_raises "Pivots must be >= 1"
    (Invalid_argument
       "Solver.Config.make: refactor pivot trigger must be >= 1")
    (fun () ->
      ignore (Solver.Config.make ~refactor:(Simplex.Pivots 0) ()));
  Alcotest.check_raises "Eta_fill growth must be positive"
    (Invalid_argument
       "Solver.Config.make: refactor eta trigger must be positive")
    (fun () ->
      ignore
        (Solver.Config.make
           ~refactor:(Simplex.Eta_fill { max_pivots = 8; growth = 0.0 })
           ()))

let suite =
  [ Alcotest.test_case "LP backends agree over 25 seeds" `Quick
      test_lp_backends_agree;
    Alcotest.test_case "refactor policy never changes the answer" `Quick
      test_refactor_policy_equivalent;
    Alcotest.test_case "LU charges fewer flops than dense" `Quick
      test_lu_saves_flops;
    Alcotest.test_case "singular warm hint falls back" `Quick
      (test_singular_hint_falls_back 1.0);
    Alcotest.test_case "near-singular warm hint falls back" `Quick
      (test_singular_hint_falls_back (1.0 +. 1e-13));
    Alcotest.test_case "MILP backends agree over 25 seeds x jobs {1,4}"
      `Quick test_milp_backends_agree;
    Alcotest.test_case "fault injection agrees across backends" `Quick
      test_fault_agreement;
    Alcotest.test_case "refactor config validation" `Quick
      test_refactor_validation ]
