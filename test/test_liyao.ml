(* Continuous-bound engine suite: the Liyao kernel's optimum must lower-
   bound every discrete schedule of the same regions (25 seeds), the
   Relaxation rounding must hand the pipeline a deadline-feasible
   schedule under cycle-accurate verification, and sweep pre-pruning must
   be a pure accelerator — answers bit-identical to the unpruned sweep at
   any job count. *)

module Solver = Dvs_milp.Solver
module Sweep = Dvs_milp.Sweep
module Model = Dvs_lp.Model
module Expr = Dvs_lp.Expr
module Simplex = Dvs_lp.Simplex
module Liyao = Dvs_analytical.Liyao
open Dvs_core

let jobs_list =
  match Sys.getenv_opt "DVS_FAULT_JOBS" with
  | Some s -> [ int_of_string (String.trim s) ]
  | None -> [ 1; 4 ]

let check_float ?(eps = 1e-6) what expected actual =
  if Float.abs (expected -. actual) > eps then
    Alcotest.failf "%s: expected %.9g, got %.9g" what expected actual

(* --- Bound validity: kernel <= brute-forced discrete optimum ----------- *)

(* Random region instances: a few regions, a handful of operating points
   each, a prefix deadline mid-list and a global one on the last region.
   The discrete reference enumerates every point combination. *)
let random_regions rng ~regions ~points =
  let mk_points () =
    Array.init points (fun _ ->
        let t = 0.5 +. Random.State.float rng 4.0 in
        let e = 0.5 +. Random.State.float rng 9.0 in
        (t, e))
  in
  let pts = Array.init regions (fun _ -> mk_points ()) in
  let min_t i =
    Array.fold_left (fun acc (t, _) -> Float.min acc t) infinity pts.(i)
  and max_t i =
    Array.fold_left (fun acc (t, _) -> Float.max acc t) neg_infinity pts.(i)
  in
  let prefix_min r =
    let s = ref 0.0 in
    for i = 0 to r do s := !s +. min_t i done;
    !s
  and prefix_max r =
    let s = ref 0.0 in
    for i = 0 to r do s := !s +. max_t i done;
    !s
  in
  let pick r =
    let lo = prefix_min r and hi = prefix_max r in
    lo +. Random.State.float rng (Float.max 1e-9 (hi -. lo))
  in
  let mid = regions / 2 in
  Array.init regions (fun i ->
      let deadline =
        if i = regions - 1 then Some (pick i)
        else if i = mid && Random.State.bool rng then Some (pick i)
        else None
      in
      { Liyao.points = pts.(i); deadline })

(* Minimum total energy over every per-region point choice that meets
   all prefix deadlines; None when no combination does. *)
let brute_force (rs : Liyao.region array) =
  let n = Array.length rs in
  let best = ref None in
  let rec go i t e =
    if i = n then
      match !best with
      | Some b when b <= e -> ()
      | _ -> best := Some e
    else
      Array.iter
        (fun (ti, ei) ->
          let t' = t +. ti in
          let ok =
            match rs.(i).Liyao.deadline with
            | Some d -> t' <= d +. 1e-9
            | None -> true
          in
          if ok then go (i + 1) t' (e +. ei))
        rs.(i).Liyao.points
  in
  go 0 0.0 0.0;
  !best

let test_bound_below_discrete () =
  for seed = 0 to 24 do
    let rng = Random.State.make [| 0x11a0; seed |] in
    let rs = random_regions rng ~regions:4 ~points:4 in
    let what = Printf.sprintf "seed %d" seed in
    match (Liyao.bound rs, brute_force rs) with
    | Some b, Some disc ->
      if b > disc +. 1e-9 then
        Alcotest.failf "%s: continuous bound %.12g above discrete optimum \
                        %.12g" what b disc
    | None, Some disc ->
      Alcotest.failf "%s: kernel infeasible but discrete optimum %.9g \
                      exists" what disc
    | _, None ->
      (* No discrete combination fits; nothing to bound.  (The kernel may
         still report a continuous optimum: the envelope reaches times no
         single point attains.) *)
      ()
  done

(* The kernel on a single region with a loose deadline must return the
   min-energy vertex exactly — the anchor the sweep's loose-end pruning
   relies on. *)
let test_bound_tight_when_loose () =
  for seed = 0 to 24 do
    let rng = Random.State.make [| 0x1005e; seed |] in
    let rs = random_regions rng ~regions:3 ~points:4 in
    let loose =
      Array.map
        (fun (r : Liyao.region) -> { r with Liyao.deadline = None })
        rs
    in
    Array.iteri
      (fun i (r : Liyao.region) ->
        if i = Array.length loose - 1 then
          loose.(i) <- { r with Liyao.deadline = Some 1e9 })
      loose;
    let expect =
      Array.fold_left
        (fun acc (r : Liyao.region) ->
          acc
          +. Array.fold_left (fun m (_, e) -> Float.min m e) infinity
               r.Liyao.points)
        0.0 rs
    in
    match Liyao.bound loose with
    | Some b ->
      check_float ~eps:1e-9
        (Printf.sprintf "seed %d loose bound = sum of min energies" seed)
        expect b
    | None -> Alcotest.fail "loose instance reported infeasible"
  done

(* --- Rounded primal feasibility under cycle-accurate verification ------ *)

let test_src =
  "int a[512]; int s; int i; int j;\n\
   s = 0;\n\
   for (i = 0; i < 512; i = i + 1) { s = s + a[i]; }\n\
   for (i = 0; i < 50; i = i + 1) {\n\
   \  for (j = 0; j < 10; j = j + 1) { s = s + i * j; }\n\
   }"

let tiny_config =
  Dvs_machine.Config.default
    ~l1d:{ Dvs_machine.Config.size_bytes = 128; assoc = 2; block_bytes = 16;
           latency_cycles = 1 }
    ~l2:{ Dvs_machine.Config.size_bytes = 512; assoc = 2; block_bytes = 16;
          latency_cycles = 4 }
    ~dram_latency:1e-6 ()

let compiled = lazy (Dvs_lang.Lower.compile_string test_src)

let memory () =
  let _, layout = Lazy.force compiled in
  Array.init layout.Dvs_lang.Lower.memory_words (fun i -> i mod 17)

let profile_cached =
  lazy
    (let cfg, _ = Lazy.force compiled in
     Dvs_profile.Profile.collect tiny_config cfg ~memory:(memory ()))

let verify_session =
  lazy
    (let cfg, _ = Lazy.force compiled in
     Verify.Session.create tiny_config cfg ~memory:(memory ()))

let deadline_span () =
  let p = Lazy.force profile_cached in
  let n = Dvs_power.Mode.size tiny_config.Dvs_machine.Config.mode_table in
  let t_fast = Dvs_profile.Profile.pinned_time p ~mode:(n - 1) in
  let t_slow = Dvs_profile.Profile.pinned_time p ~mode:0 in
  (t_fast, t_slow)

let test_rounded_schedule_verifies () =
  let p = Lazy.force profile_cached in
  let regulator = tiny_config.Dvs_machine.Config.regulator in
  let t_fast, t_slow = deadline_span () in
  let admitted = ref 0 in
  List.iter
    (fun frac ->
      let deadline = t_fast +. (frac *. (t_slow -. t_fast)) in
      let categories =
        [ { Formulation.profile = p; weight = 1.0; deadline } ]
      in
      let f = Formulation.build ~regulator categories in
      let rx = Relaxation.prepare f ~regulator categories in
      let deadlines_us = [| deadline *. 1e6 |] in
      let what = Printf.sprintf "deadline fraction %.2f" frac in
      (match Relaxation.bound rx ~deadlines_us with
      | Some _ -> ()
      | None -> Alcotest.failf "%s: continuous relaxation infeasible" what);
      match Relaxation.round rx ~deadlines_us with
      | None ->
        (* Rounding may legitimately miss a tight deadline; the pipeline
           then falls back.  It must not miss every deadline. *)
        ()
      | Some (r : Relaxation.rounded) ->
        incr admitted;
        let predicted = r.Relaxation.objective /. 1e6 in
        let v =
          Verify.Session.check (Lazy.force verify_session)
            ~schedule:r.Relaxation.schedule ~deadline
            ~predicted_energy:predicted
        in
        Alcotest.(check bool)
          (what ^ ": rounded schedule meets the deadline in simulation")
          true v.Verify.meets_deadline)
    [ 0.15; 0.3; 0.5; 0.7; 0.9 ];
  if !admitted = 0 then
    Alcotest.fail
      "rounding admitted no deadline at all — the incumbent seed is dead"

(* --- Sweep pre-pruning is a pure accelerator --------------------------- *)

(* A valid continuous bound for the synthetic SOS1-under-deadline model:
   each group is a kernel region over its (time, cost) mode points, the
   sweep deadline on the last region. *)
let synthetic_point_bound ~time ~cost d =
  let groups = Array.length time in
  let rs =
    Array.init groups (fun g ->
        { Liyao.points =
            Array.init (Array.length time.(g)) (fun j ->
                (time.(g).(j), cost.(g).(j)));
          deadline = (if g = groups - 1 then Some d else None) })
  in
  Liyao.bound rs

(* The model of test_sweep, rebuilt here so the cost matrix is in hand
   for the bound. *)
let pruning_model ~seed ~groups ~modes =
  let rng = Random.State.make [| 0x5eed; seed |] in
  let m = Model.create () in
  let k =
    Array.init groups (fun _ -> Array.init modes (fun _ -> Model.binary m))
  in
  let noise () = Random.State.float rng 0.01 in
  let cost =
    Array.init groups (fun g ->
        Array.init modes (fun j ->
            float_of_int (((g * 7) + (j * 3)) mod 11) +. 1.0 +. noise ()))
  in
  let time =
    Array.init groups (fun g ->
        Array.init modes (fun j ->
            float_of_int (modes - j)
            +. (0.25 *. float_of_int (g mod 3))
            +. noise ()))
  in
  for g = 0 to groups - 1 do
    Model.add_constraint m
      (Expr.of_terms (List.init modes (fun j -> (1.0, k.(g).(j)))))
      Model.Eq 1.0
  done;
  let all w =
    Expr.of_terms
      (List.concat_map
         (fun g -> List.init modes (fun j -> (w.(g).(j), k.(g).(j))))
         (List.init groups Fun.id))
  in
  let t_max =
    Array.fold_left
      (fun acc row -> acc +. Array.fold_left Float.max neg_infinity row)
      0.0 time
  in
  Model.add_constraint m ~name:"deadline" (all time) Model.Le t_max;
  Model.set_objective m Model.Minimize (all cost);
  (m, k, groups, time, cost)

let deadline_grid ~time ~points =
  let t_min =
    Array.fold_left
      (fun acc row -> acc +. Array.fold_left Float.min infinity row)
      0.0 time
  and t_max =
    Array.fold_left
      (fun acc row -> acc +. Array.fold_left Float.max neg_infinity row)
      0.0 time
  in
  let lo = t_min *. 1.02 and hi = t_max *. 0.92 in
  Array.init points (fun i ->
      lo +. ((hi -. lo) *. float_of_int i /. float_of_int (max 1 (points - 1))))

let rounded_schedule what (r : Solver.result) k =
  match r.Solver.solution with
  | None -> Alcotest.failf "%s: no solution to round" what
  | Some s ->
    Array.map
      (fun group ->
        Array.map
          (fun v -> int_of_float (Float.round s.Simplex.values.(v)))
          group)
      k

let objective_exn what (r : Solver.result) =
  match r.Solver.solution with
  | Some s -> s.Simplex.objective
  | None ->
    Alcotest.failf "%s: no solution (outcome %a)" what Solver.pp_outcome
      r.Solver.outcome

let test_sweep_pruning_identical () =
  List.iter
    (fun jobs ->
      let total_pruned = ref 0 in
      for seed = 0 to 24 do
        let m, k, deadline_row, time, cost =
          pruning_model ~seed ~groups:4 ~modes:3
        in
        (* The grid ends past the all-slowest span: there the point's
           optimum is the unconstrained one, the hull bound meets it
           exactly (zero integrality gap), and the certificate can
           fire. *)
        let t_max =
          Array.fold_left
            (fun acc row ->
              acc +. Array.fold_left Float.max neg_infinity row)
            0.0 time
        in
        let deadlines =
          Array.append
            (deadline_grid ~time ~points:4)
            [| t_max *. 1.02; t_max *. 1.2 |]
        in
        let cfg =
          Solver.Config.make ~jobs ()
          |> Solver.Config.with_sos1
               (Array.to_list (Array.map Array.to_list k))
        in
        let plain =
          Sweep.run ~config:cfg ~model:m ~deadline_row ~deadlines ()
        in
        let pruned =
          Sweep.run ~config:cfg
            ~point_bound:(fun _ d -> synthetic_point_bound ~time ~cost d)
            ~model:m ~deadline_row ~deadlines ()
        in
        total_pruned :=
          !total_pruned + pruned.Sweep.stats.Sweep.points_pruned_by_bound;
        Alcotest.(check int)
          "unpruned sweep reports no pruning" 0
          plain.Sweep.stats.Sweep.points_pruned_by_bound;
        Array.iteri
          (fun i (p : Sweep.point) ->
            let q = pruned.Sweep.points.(i) in
            let what =
              Printf.sprintf "seed %d jobs %d point %d" seed jobs i
            in
            check_float ~eps:0.0 (what ^ " (objective)")
              (objective_exn what p.Sweep.result)
              (objective_exn what q.Sweep.result);
            if
              rounded_schedule what p.Sweep.result k
              <> rounded_schedule what q.Sweep.result k
            then Alcotest.failf "%s: schedules differ" what;
            if q.Sweep.pruned_by_bound then begin
              match q.Sweep.result.Solver.outcome with
              | Solver.Optimal -> ()
              | o ->
                Alcotest.failf "%s: pruned point not optimal (%a)" what
                  Solver.pp_outcome o
            end)
          plain.Sweep.points
      done;
      if !total_pruned = 0 then
        Alcotest.failf
          "jobs=%d: no point was ever pruned across 25 seeds — the \
           certificate never fires"
          jobs)
    jobs_list

let suite =
  [
    Alcotest.test_case "kernel bounds brute-forced discrete optimum (25 \
                        seeds)" `Quick test_bound_below_discrete;
    Alcotest.test_case "loose-deadline bound is exact" `Quick
      test_bound_tight_when_loose;
    Alcotest.test_case "rounded schedule verifies under Session" `Quick
      test_rounded_schedule_verifies;
    Alcotest.test_case "sweep pruning bit-identical to unpruned (25 seeds)"
      `Slow test_sweep_pruning_identical;
  ]
