let () =
  (* Re-exec entry point for the store's two-process concurrency test:
     the child instance hammers puts and exits before Alcotest runs. *)
  match Sys.getenv_opt Test_store.child_env_var with
  | Some root -> Test_store.child_main root
  | None ->
    Alcotest.run "dvs-repro"
      [ ("numeric", Test_numeric.suite); ("power", Test_power.suite);
        ("analytical", Test_analytical.suite); ("lp", Test_lp.suite); ("basis", Test_basis.suite); ("milp", Test_milp.suite); ("lang", Test_lang.suite); ("machine", Test_machine.suite); ("dvs", Test_dvs.suite); ("workloads", Test_workloads.suite); ("extensions", Test_extensions.suite); ("opt", Test_opt.suite); ("functions", Test_functions.suite); ("ooo", Test_ooo.suite); ("misc", Test_misc.suite); ("formulation", Test_formulation.suite); ("resilience", Test_resilience.suite); ("obs", Test_obs.suite); ("sweep", Test_sweep.suite); ("liyao", Test_liyao.suite); ("summary", Test_summary.suite); ("service", Test_service.suite); ("store", Test_store.suite) ]
