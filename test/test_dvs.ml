open Dvs_core
open Dvs_machine
open Dvs_ir

(* A program with a memory-bound streaming phase and a compute-bound
   phase — the shape compile-time DVS exists for.  Tiny caches make the
   stream miss; DRAM at 1us so memory time dominates the first phase. *)
let test_src =
  "int a[2048]; int s; int i; int j;\n\
   s = 0;\n\
   for (i = 0; i < 2048; i = i + 1) { s = s + a[i]; }\n\
   for (i = 0; i < 200; i = i + 1) {\n\
   \  for (j = 0; j < 20; j = j + 1) { s = s + i * j; }\n\
   }"

let tiny_config =
  Config.default
    ~l1d:{ Config.size_bytes = 128; assoc = 2; block_bytes = 16;
           latency_cycles = 1 }
    ~l2:{ Config.size_bytes = 512; assoc = 2; block_bytes = 16;
          latency_cycles = 4 }
    ~dram_latency:1e-6 ()

let compiled = lazy (Dvs_lang.Lower.compile_string test_src)

let memory () =
  let _, layout = Lazy.force compiled in
  Array.init layout.Dvs_lang.Lower.memory_words (fun i -> i mod 17)

let profile_cached =
  lazy
    (let cfg, _ = Lazy.force compiled in
     Dvs_profile.Profile.collect tiny_config cfg ~memory:(memory ()))

(* ------------------------------------------------------------------ *)
(* Profile invariants *)

let test_profile_counts_consistent () =
  let p = Lazy.force profile_cached in
  let cfg = p.Dvs_profile.Profile.cfg in
  (* Entries through edges + virtual entry = executions. *)
  let incoming = Array.make (Cfg.num_blocks cfg) 0 in
  Array.iteri
    (fun idx c ->
      let e = (Cfg.edges cfg).(idx) in
      incoming.(e.Cfg.dst) <- incoming.(e.Cfg.dst) + c)
    p.Dvs_profile.Profile.edge_count;
  incoming.(Cfg.entry cfg) <-
    incoming.(Cfg.entry cfg) + p.Dvs_profile.Profile.entry_count;
  Array.iteri
    (fun j c ->
      if c <> p.Dvs_profile.Profile.exec_count.(j) then
        Alcotest.failf "block %d: %d entries vs %d executions" j incoming.(j)
          p.Dvs_profile.Profile.exec_count.(j))
    incoming

let test_profile_path_counts_consistent () =
  let p = Lazy.force profile_cached in
  let cfg = p.Dvs_profile.Profile.cfg in
  (* For each block i, sum of D_hij over h and j = executions of i that
     exited through some edge (every execution except the final one if i
     is the halting block). *)
  let outgoing = Array.make (Cfg.num_blocks cfg) 0 in
  List.iter
    (fun ((path : Dvs_profile.Profile.path), c) ->
      outgoing.(path.Dvs_profile.Profile.node) <-
        outgoing.(path.Dvs_profile.Profile.node) + c)
    p.Dvs_profile.Profile.paths;
  Array.iteri
    (fun j c ->
      let execs = p.Dvs_profile.Profile.exec_count.(j) in
      if not (c = execs || c = execs - 1) then
        Alcotest.failf "block %d: %d path exits vs %d executions" j c execs)
    outgoing

let test_profile_block_times_sum_to_total () =
  let p = Lazy.force profile_cached in
  Array.iteri
    (fun m (run : Cpu.run_stats) ->
      let total = Array.fold_left ( +. ) 0.0 p.Dvs_profile.Profile.total_time.(m) in
      if Float.abs (total -. run.Cpu.time) > 1e-9 *. run.Cpu.time then
        Alcotest.failf "mode %d: blocks sum to %.9g, run took %.9g" m total
          run.Cpu.time)
    p.Dvs_profile.Profile.runs

let test_profile_modes_ordered () =
  let p = Lazy.force profile_cached in
  let t m = Dvs_profile.Profile.pinned_time p ~mode:m in
  Alcotest.(check bool) "slower modes take longer" true
    (t 0 > t 1 && t 1 > t 2);
  let e m = Dvs_profile.Profile.pinned_energy p ~mode:m in
  Alcotest.(check bool) "slower modes burn less" true (e 0 < e 1 && e 1 < e 2)

(* ------------------------------------------------------------------ *)
(* Pipeline *)

let mid_deadline () =
  let p = Lazy.force profile_cached in
  let t_fast = Dvs_profile.Profile.pinned_time p ~mode:2 in
  let t_slow = Dvs_profile.Profile.pinned_time p ~mode:0 in
  t_fast +. (0.5 *. (t_slow -. t_fast))

let run_pipeline ?(filter = true) deadline =
  let cfg, _ = Lazy.force compiled in
  let p = Lazy.force profile_cached in
  let config = Pipeline.Config.make ~filter () in
  Pipeline.optimize_multi ~config
    ~regulator:tiny_config.Config.regulator ~memory:(memory ())
    [ { Formulation.profile = p; weight = 1.0; deadline } ]
  |> fun r ->
  ignore cfg;
  r

let test_pipeline_optimal_and_verified () =
  let r = run_pipeline (mid_deadline ()) in
  Alcotest.(check bool) "optimal" true
    (r.Pipeline.milp.Dvs_milp.Solver.outcome = Dvs_milp.Solver.Optimal);
  match r.Pipeline.verification with
  | None -> Alcotest.fail "no verification report"
  | Some v ->
    Alcotest.(check bool) "meets deadline" true v.Verify.meets_deadline;
    if v.Verify.energy_error > 0.1 then
      Alcotest.failf "measured energy off by %.1f%% from prediction"
        (100.0 *. v.Verify.energy_error)

let test_pipeline_beats_single_mode () =
  let p = Lazy.force profile_cached in
  let deadline = mid_deadline () in
  let r = run_pipeline deadline in
  match (Baselines.best_single_mode p ~deadline, r.Pipeline.predicted_energy)
  with
  | Some (_, base), Some predicted ->
    Alcotest.(check bool) "MILP <= best single mode" true
      (predicted <= base *. 1.0001)
  | _ -> Alcotest.fail "missing baseline or solution"

let test_tight_deadline_all_fast () =
  let p = Lazy.force profile_cached in
  let t_fast = Dvs_profile.Profile.pinned_time p ~mode:2 in
  let r = run_pipeline (t_fast *. 1.0005) in
  match r.Pipeline.schedule with
  | None -> Alcotest.fail "no schedule"
  | Some s ->
    Alcotest.(check (list int)) "only fastest mode" [ 2 ]
      (Schedule.distinct_modes s)

let test_lax_deadline_mostly_slow () =
  let p = Lazy.force profile_cached in
  let t_slow = Dvs_profile.Profile.pinned_time p ~mode:0 in
  let r = run_pipeline (t_slow *. 1.01) in
  match (r.Pipeline.schedule, r.Pipeline.predicted_energy) with
  | Some s, Some e ->
    Alcotest.(check bool) "slow mode present" true
      (List.mem 0 (Schedule.distinct_modes s));
    let e_slow = Dvs_profile.Profile.pinned_energy p ~mode:0 in
    Alcotest.(check bool) "close to all-slow energy" true
      (e <= e_slow *. 1.02)
  | _ -> Alcotest.fail "no schedule"

let test_energy_monotone_in_deadline () =
  let p = Lazy.force profile_cached in
  let t_fast = Dvs_profile.Profile.pinned_time p ~mode:2 in
  let t_slow = Dvs_profile.Profile.pinned_time p ~mode:0 in
  let energy_at frac =
    let d = t_fast +. (frac *. (t_slow -. t_fast)) in
    Option.get (run_pipeline d).Pipeline.predicted_energy
  in
  let e1 = energy_at 0.1 and e2 = energy_at 0.5 and e3 = energy_at 0.95 in
  Alcotest.(check bool) "monotone" true (e1 >= e2 -. 1e-12 && e2 >= e3 -. 1e-12)

let test_filtering_preserves_energy () =
  let deadline = mid_deadline () in
  let full = run_pipeline ~filter:false deadline in
  let filtered = run_pipeline ~filter:true deadline in
  match (full.Pipeline.predicted_energy, filtered.Pipeline.predicted_energy)
  with
  | Some ef, Some eflt ->
    (* Filtering restricts the solution space: never better, and per the
       paper essentially unchanged. *)
    Alcotest.(check bool) "filtered >= full" true (eflt >= ef *. 0.9999);
    if eflt > ef *. 1.02 then
      Alcotest.failf "filtering cost %.2f%% energy"
        (100.0 *. ((eflt /. ef) -. 1.0));
    Alcotest.(check bool) "fewer independent edges" true
      (filtered.Pipeline.independent_edges < full.Pipeline.independent_edges)
  | _ -> Alcotest.fail "missing solutions"

let test_filter_repr_wellformed () =
  let p = Lazy.force profile_cached in
  let repr = Filter.representatives [ p ] in
  let n = Array.length repr in
  Array.iteri
    (fun i r ->
      Alcotest.(check bool) "in range" true (r >= 0 && r < n);
      Alcotest.(check int) "representative is its own repr" r repr.(r);
      ignore i)
    repr

let test_hsu_kremer_meets_deadline_and_loses_to_milp () =
  let cfg, _ = Lazy.force compiled in
  let p = Lazy.force profile_cached in
  let deadline = mid_deadline () in
  match Baselines.hsu_kremer tiny_config cfg ~memory:(memory ()) ~profile:p
          ~deadline
  with
  | None -> Alcotest.fail "heuristic found nothing"
  | Some s ->
    let r =
      Cpu.run
        ~rc:
          (Cpu.Run_config.make ~initial_mode:s.Schedule.entry_mode
             ~edge_modes:(Schedule.edge_modes s cfg) ())
        tiny_config cfg ~memory:(memory ())
    in
    Alcotest.(check bool) "meets deadline" true (r.Cpu.time <= deadline);
    let milp = run_pipeline deadline in
    (match milp.Pipeline.verification with
    | Some v ->
      Alcotest.(check bool) "MILP no worse (2% slack)" true
        (v.Verify.stats.Cpu.energy <= r.Cpu.energy *. 1.02)
    | None -> Alcotest.fail "no MILP verification")

let test_infeasible_deadline () =
  let p = Lazy.force profile_cached in
  let t_fast = Dvs_profile.Profile.pinned_time p ~mode:2 in
  let r = run_pipeline (t_fast *. 0.5) in
  Alcotest.(check bool) "infeasible" true
    (r.Pipeline.milp.Dvs_milp.Solver.outcome = Dvs_milp.Solver.Infeasible)

(* Multi-category: two inputs with different weights; deadlines must hold
   for both. *)
let test_multi_category () =
  let cfg, layout = Lazy.force compiled in
  let mem2 =
    Array.init layout.Dvs_lang.Lower.memory_words (fun i -> (i * 3) mod 11)
  in
  let p1 = Lazy.force profile_cached in
  let p2 = Dvs_profile.Profile.collect tiny_config cfg ~memory:mem2 in
  let d = mid_deadline () in
  let r =
    Pipeline.optimize_multi ~regulator:tiny_config.Config.regulator
      ~memory:(memory ())
      [ { Formulation.profile = p1; weight = 0.6; deadline = d };
        { Formulation.profile = p2; weight = 0.4; deadline = d } ]
  in
  Alcotest.(check bool) "optimal" true
    (r.Pipeline.milp.Dvs_milp.Solver.outcome = Dvs_milp.Solver.Optimal);
  (* The shared schedule must meet the deadline on BOTH inputs. *)
  match r.Pipeline.schedule with
  | None -> Alcotest.fail "no schedule"
  | Some s ->
    List.iter
      (fun mem ->
        let run =
          Cpu.run
            ~rc:
              (Cpu.Run_config.make ~initial_mode:s.Schedule.entry_mode
                 ~edge_modes:(Schedule.edge_modes s cfg) ())
            tiny_config cfg ~memory:mem
        in
        Alcotest.(check bool) "deadline on each input" true
          (run.Cpu.time <= d *. 1.005))
      [ memory (); mem2 ]

(* The deadline-sweep front end must agree point-for-point with the
   classic single-deadline pipeline: same predicted energy, same
   verified schedules, with warm lifts flowing tightest-to-loosest. *)
let test_optimize_sweep_matches_pointwise () =
  let cfg, _ = Lazy.force compiled in
  let p = Lazy.force profile_cached in
  let t_fast = Dvs_profile.Profile.pinned_time p ~mode:2 in
  let t_slow = Dvs_profile.Profile.pinned_time p ~mode:0 in
  let deadlines =
    Array.init 4 (fun i ->
        let frac = 0.15 +. (0.25 *. float_of_int i) in
        t_fast +. (frac *. (t_slow -. t_fast)))
  in
  let sw =
    Pipeline.optimize_sweep tiny_config cfg ~memory:(memory ()) ~deadlines
  in
  Alcotest.(check int) "one result per deadline" (Array.length deadlines)
    (Array.length sw.Pipeline.results);
  Alcotest.(check bool) "later points warm-started" true
    (sw.Pipeline.sweep.Dvs_milp.Sweep.instances_warm_started
     >= Array.length deadlines - 1);
  Array.iteri
    (fun i r ->
      let cold = run_pipeline deadlines.(i) in
      (match (r.Pipeline.predicted_energy, cold.Pipeline.predicted_energy) with
      | Some es, Some ec ->
        if Float.abs (es -. ec) > 1e-6 *. Float.max 1.0 (Float.abs ec) then
          Alcotest.failf "point %d: sweep %.12g vs cold %.12g" i es ec
      | _ -> Alcotest.failf "point %d: missing energy" i);
      match r.Pipeline.verification with
      | None -> Alcotest.failf "point %d: unverified" i
      | Some v ->
        Alcotest.(check bool) "meets deadline" true v.Verify.meets_deadline)
    sw.Pipeline.results

let test_optimize_sweep_infeasible_point () =
  let cfg, _ = Lazy.force compiled in
  let p = Lazy.force profile_cached in
  let t_fast = Dvs_profile.Profile.pinned_time p ~mode:2 in
  let t_slow = Dvs_profile.Profile.pinned_time p ~mode:0 in
  let deadlines = [| t_fast *. 0.5; t_slow *. 1.01 |] in
  let sw =
    Pipeline.optimize_sweep tiny_config cfg ~memory:(memory ()) ~deadlines
  in
  let r0 = sw.Pipeline.results.(0) in
  Alcotest.(check bool) "tight point infeasible, no schedule" true
    (r0.Pipeline.schedule = None
    && r0.Pipeline.milp.Dvs_milp.Solver.outcome = Dvs_milp.Solver.Infeasible);
  match sw.Pipeline.results.(1).Pipeline.schedule with
  | None -> Alcotest.fail "loose point should still solve"
  | Some _ -> ()

let suite =
  [ Alcotest.test_case "profile counts consistent" `Quick
      test_profile_counts_consistent;
    Alcotest.test_case "profile path counts consistent" `Quick
      test_profile_path_counts_consistent;
    Alcotest.test_case "profile block times sum" `Quick
      test_profile_block_times_sum_to_total;
    Alcotest.test_case "profile mode ordering" `Quick
      test_profile_modes_ordered;
    Alcotest.test_case "pipeline optimal and verified" `Quick
      test_pipeline_optimal_and_verified;
    Alcotest.test_case "pipeline beats single mode" `Quick
      test_pipeline_beats_single_mode;
    Alcotest.test_case "tight deadline: all fast" `Quick
      test_tight_deadline_all_fast;
    Alcotest.test_case "lax deadline: mostly slow" `Quick
      test_lax_deadline_mostly_slow;
    Alcotest.test_case "energy monotone in deadline" `Slow
      test_energy_monotone_in_deadline;
    Alcotest.test_case "filtering preserves energy" `Quick
      test_filtering_preserves_energy;
    Alcotest.test_case "filter repr well-formed" `Quick
      test_filter_repr_wellformed;
    Alcotest.test_case "hsu-kremer vs milp" `Slow
      test_hsu_kremer_meets_deadline_and_loses_to_milp;
    Alcotest.test_case "infeasible deadline" `Quick test_infeasible_deadline;
    Alcotest.test_case "optimize_sweep matches pointwise" `Slow
      test_optimize_sweep_matches_pointwise;
    Alcotest.test_case "optimize_sweep infeasible point" `Quick
      test_optimize_sweep_infeasible_point;
    Alcotest.test_case "multi-category optimization" `Slow
      test_multi_category ]

(* Randomized end-to-end robustness: generate MiniC programs with loops,
   arrays, and data-dependent branches; run the whole pipeline at a
   random feasible deadline; the verified schedule must meet the
   deadline and track the MILP's energy prediction. *)
let random_program_gen =
  QCheck.Gen.(
    let* arr = int_range 256 2048 in
    let* outer = int_range 3 12 in
    let* inner = int_range 10 60 in
    let* stride = int_range 1 13 in
    let* branch_mod = int_range 2 5 in
    let* frac = float_range 0.15 0.95 in
    return (arr, outer, inner, stride, branch_mod, frac))

let qcheck_pipeline_end_to_end =
  QCheck.Test.make ~name:"pipeline verifies on random programs" ~count:12
    (QCheck.make random_program_gen)
    (fun (arr, outer, inner, stride, branch_mod, frac) ->
      let src =
        Printf.sprintf
          "int a[%d]; int s; int i; int j;\n\
           for (i = 0; i < %d; i = i + 1) {\n\
           \  for (j = 0; j < %d; j = j + 1) {\n\
           \    s = s + a[(j * %d) %% %d];\n\
           \    if (s %% %d == 0) { s = s + j; } else { s = s - 1; }\n\
           \  }\n\
           \  a[i %% %d] = s;\n\
           }"
          arr outer inner stride arr branch_mod arr
      in
      let cfg, layout = Dvs_lang.Lower.compile_string src in
      let mem = Array.init layout.Dvs_lang.Lower.memory_words (fun i -> i mod 97) in
      let machine =
        Config.default
          ~l1d:{ Config.size_bytes = 512; assoc = 2; block_bytes = 16;
                 latency_cycles = 1 }
          ~l2:{ Config.size_bytes = 2048; assoc = 2; block_bytes = 16;
                latency_cycles = 4 }
          ~dram_latency:8e-7
          ~regulator:(Dvs_power.Switch_cost.regulator ~capacitance:0.05e-6 ())
          ()
      in
      let p = Dvs_profile.Profile.collect machine cfg ~memory:mem in
      let t_fast = Dvs_profile.Profile.pinned_time p ~mode:2 in
      let t_slow = Dvs_profile.Profile.pinned_time p ~mode:0 in
      let deadline = t_fast +. (frac *. (t_slow -. t_fast)) in
      let r =
        Pipeline.optimize_multi
          ~config:
            (Pipeline.Config.make
               ~solver:
                 (Dvs_milp.Solver.Config.make ~jobs:1 ~max_nodes:1500
                    ~time_limit:8.0 ())
               ())
          ~regulator:machine.Config.regulator ~memory:mem
          [ { Formulation.profile = p; weight = 1.0; deadline } ]
      in
      match r.Pipeline.verification with
      | None -> false
      | Some v -> v.Verify.meets_deadline && v.Verify.energy_error < 0.2)

let suite =
  suite @ [ QCheck_alcotest.to_alcotest qcheck_pipeline_end_to_end ]
