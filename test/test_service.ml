(* dvsd service suite: protocol round-trips, the unified exit-code
   table, admission control, idempotent retries, budget-driven ladder
   descent, near-duplicate batching, poison containment, seeded chaos
   determinism across worker counts, and the socket daemon end to end.

   Everything runs on `ghostscript' (the smallest workload) so the
   warm-store builds and solves stay test-suite-sized. *)

module P = Dvs_service.Protocol
module Engine = Dvs_service.Engine
module Daemon = Dvs_service.Daemon
module Client = Dvs_service.Client
module Loadgen = Dvs_service.Loadgen
module Json = Dvs_obs.Json
module Pipeline = Dvs_core.Pipeline
module Workload = Dvs_workloads.Workload

let wl = "ghostscript"

let opt ?input ?budget_s ?chaos ?(frac = 0.5) id =
  { P.id;
    body =
      P.Optimize
        { workload = wl; input; deadline_frac = frac; budget_s; chaos } }

let with_engine ?(workers = 1) ?(queue_depth = 64) ?(batch_max = 1)
    ?default_budget_s f =
  let e =
    Engine.create
      (Engine.Config.make ~workers ~queue_depth ~batch_max ?default_budget_s
         ())
  in
  Fun.protect ~finally:(fun () -> Engine.stop e) (fun () -> f e)

let scheduled (r : P.reply) =
  match r.P.body with
  | P.Scheduled s -> s
  | _ -> Alcotest.failf "expected a scheduled reply for %s" r.P.id

(* --- protocol ---------------------------------------------------------- *)

let roundtrip_request r =
  match P.request_of_json (P.request_to_json r) with
  | Ok r' ->
    Alcotest.(check bool)
      "request round-trips" true
      (Json.equal (P.request_to_json r) (P.request_to_json r'))
  | Error e -> Alcotest.failf "request did not round-trip: %s" e

let roundtrip_reply r =
  match P.reply_of_json (P.reply_to_json r) with
  | Ok r' ->
    Alcotest.(check bool)
      "reply round-trips" true
      (Json.equal (P.reply_to_json r) (P.reply_to_json r'))
  | Error e -> Alcotest.failf "reply did not round-trip: %s" e

let test_protocol_roundtrip () =
  let chaos =
    P.chaos ~crash_rate:0.5 ~exhaust_rate:0.1 ~poison_rate:0.05 ~seed:9 ()
  in
  List.iter roundtrip_request
    [ opt "a";
      opt ~input:"default" ~budget_s:1.5 ~chaos ~frac:0.25 "b";
      { P.id = "c";
        body =
          P.Sweep
            { workload = wl; input = None; fracs = [ 0.2; 0.5; 0.8 ];
              budget_s = Some 3.0; chaos = Some chaos } };
      { P.id = "d"; body = P.Simulate { workload = wl; input = None; mode = 1 } };
      { P.id = "e"; body = P.Ping };
      { P.id = "f"; body = P.Stats };
      { P.id = "g"; body = P.Shutdown } ];
  let summary =
    { P.cls = P.Budget_degraded; rung = Some "rounded-lp";
      deadline_ms = 1.25; predicted_uj = Some 10.0; measured_uj = Some 10.5;
      measured_ms = Some 1.2; meets_deadline = Some true;
      savings_pct = Some 12.5 }
  in
  let reply body =
    { P.id = "x"; queue_ms = 1.0; service_ms = 2.0; batched = 2; body }
  in
  List.iter roundtrip_reply
    [ reply (P.Scheduled summary);
      reply (P.Sweep_points [ summary; { summary with P.cls = P.Full } ]);
      reply (P.Rejected_overloaded { queue_len = 4; queue_cap = 4 });
      reply (P.Rejected_budget { budget_s = 0.5; waited_s = 0.6 });
      reply (P.Failed_reply "boom"); reply P.Pong; reply P.Bye ];
  (* Unknown payloads fail loudly, not silently. *)
  (match P.request_of_json (Json.Obj [ ("id", Json.String "h") ]) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "op-less request should not parse");
  match
    P.request_of_json
      (Json.Obj [ ("id", Json.String "h"); ("op", Json.String "explode") ])
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown op should not parse"

let test_exit_codes () =
  let check ~strict cls expected =
    Alcotest.(check int)
      (Printf.sprintf "%s strict=%b" (P.class_name cls) strict)
      expected
      (P.exit_code ~strict cls)
  in
  (* The PR 2 table is preserved verbatim... *)
  check ~strict:false P.Full 0;
  check ~strict:false P.Time_degraded 0;
  check ~strict:false P.Crash_degraded 0;
  check ~strict:false P.Verify_degraded 0;
  check ~strict:false P.Infeasible 1;
  check ~strict:false P.No_schedule 2;
  check ~strict:true P.Time_degraded 3;
  check ~strict:true P.Crash_degraded 4;
  check ~strict:true P.Verify_degraded 5;
  (* ...and the service classes extend it: budget-degraded is a strict
     refusal like the other degradations, the hard failures are never
     success. *)
  check ~strict:false P.Budget_degraded 0;
  check ~strict:true P.Budget_degraded 6;
  check ~strict:false P.Overloaded 7;
  check ~strict:true P.Overloaded 7;
  check ~strict:false P.Budget_exhausted 8;
  check ~strict:true P.Failed 9;
  List.iter
    (fun c ->
      match P.class_of_name (P.class_name c) with
      | Some c' when c' = c -> ()
      | _ -> Alcotest.failf "class %s does not round-trip" (P.class_name c))
    P.all_classes

(* --- engine basics ----------------------------------------------------- *)

let test_optimize_and_simulate () =
  with_engine (fun e ->
      Engine.warm e [ (wl, None) ];
      let r = Engine.await (Engine.submit e (opt "opt-1")) in
      let s = scheduled r in
      Alcotest.(check bool) "scheduled" true (s.P.cls <> P.Failed);
      (match s.P.meets_deadline with
      | Some true -> ()
      | _ -> Alcotest.fail "schedule should verify against its deadline");
      (match (s.P.measured_uj, s.P.savings_pct) with
      | Some _, Some _ -> ()
      | _ -> Alcotest.fail "measured energy and savings should be reported");
      Alcotest.(check int) "solo request" 1 r.P.batched;
      (* Simulate answers from the warm profile's pinned runs. *)
      let sim =
        Engine.await
          (Engine.submit e
             { P.id = "sim-0";
               body = P.Simulate { workload = wl; input = None; mode = 0 } })
      in
      (match (scheduled sim).P.measured_ms with
      | Some ms -> Alcotest.(check bool) "pinned time > 0" true (ms > 0.0)
      | None -> Alcotest.fail "simulate should report a measured time");
      let bad =
        Engine.await
          (Engine.submit e
             { P.id = "sim-bad";
               body = P.Simulate { workload = wl; input = None; mode = 99 } })
      in
      (match bad.P.body with
      | P.Failed_reply _ -> ()
      | _ -> Alcotest.fail "out-of-range mode should fail");
      let missing =
        Engine.await
          (Engine.submit e
             { P.id = "missing";
               body =
                 P.Optimize
                   { workload = "no-such-benchmark"; input = None;
                     deadline_frac = 0.5; budget_s = None; chaos = None } })
      in
      match missing.P.body with
      | P.Failed_reply _ -> ()
      | _ -> Alcotest.fail "unknown workload should fail, not crash")

let test_idempotent_replies () =
  with_engine (fun e ->
      Engine.warm e [ (wl, None) ];
      let r1 = Engine.await (Engine.submit e (opt "dup-1")) in
      let r2 = Engine.await (Engine.submit e (opt "dup-1")) in
      Alcotest.(check bool)
        "retry of a served id is answered from the reply cache" true
        (Json.equal (P.reply_to_json r1) (P.reply_to_json r2));
      (* Ping/Stats/Shutdown are control traffic, answered inline. *)
      let pong = Engine.await (Engine.submit e { P.id = "p"; body = P.Ping }) in
      (match pong.P.body with
      | P.Pong -> ()
      | _ -> Alcotest.fail "ping should pong");
      let stats =
        Engine.await (Engine.submit e { P.id = "s"; body = P.Stats })
      in
      match stats.P.body with
      | P.Stats_reply m -> (
        match Dvs_obs.Schema.validate_metrics m with
        | Ok () -> ()
        | Error msg -> Alcotest.failf "stats snapshot invalid: %s" msg)
      | _ -> Alcotest.fail "stats should return a metrics snapshot")

let test_admission_control () =
  with_engine ~workers:1 ~queue_depth:2 ~default_budget_s:120.0 (fun e ->
      (* No warm-up: the first request pays the model build, which keeps
         the single worker busy while the queue fills behind it.  Wait
         for the worker to pick it up so the queue really holds only the
         later submissions. *)
      let h1 = Engine.submit e (opt "adm-1") in
      let rec wait_pickup n =
        if Engine.queue_len e > 0 then
          if n = 0 then Alcotest.fail "worker never dequeued the first job"
          else begin
            Thread.delay 0.01;
            wait_pickup (n - 1)
          end
      in
      wait_pickup 1000;
      let h2 = Engine.submit e (opt ~frac:0.3 "adm-2") in
      let h3 = Engine.submit e (opt ~frac:0.7 "adm-3") in
      let h4 = Engine.submit e (opt ~frac:0.9 "adm-4") in
      let r4 = Engine.await h4 in
      (match r4.P.body with
      | P.Rejected_overloaded { queue_cap; _ } ->
        Alcotest.(check int) "reported capacity" 2 queue_cap
      | _ ->
        Alcotest.failf "4th request should be shed, got class %s"
          (P.class_name (P.class_of_reply r4)));
      Alcotest.(check int) "overloaded exit code" 7
        (P.exit_code ~strict:false (P.class_of_reply r4));
      List.iter
        (fun h ->
          let r = Engine.await h in
          match r.P.body with
          | P.Scheduled _ -> ()
          | _ -> Alcotest.failf "accepted request %s should complete" r.P.id)
        [ h1; h2; h3 ];
      (* Overloaded rejections are not memoized: the retry is served for
         real once there is room. *)
      let retry = Engine.await (Engine.submit e (opt ~frac:0.9 "adm-4")) in
      match retry.P.body with
      | P.Scheduled _ -> ()
      | _ -> Alcotest.fail "retry after shed should be served")

let test_budget_exhausted () =
  with_engine ~workers:1 (fun e ->
      Engine.warm e [ (wl, None) ];
      (* The first job occupies the only worker; the second's budget is
         far below any solve time, so it drains while queued. *)
      let h1 = Engine.submit e (opt "bud-1") in
      let h2 = Engine.submit e (opt ~budget_s:1e-4 "bud-2") in
      ignore (Engine.await h1);
      let r2 = Engine.await h2 in
      match r2.P.body with
      | P.Rejected_budget { budget_s; waited_s } ->
        Alcotest.(check bool) "waited out its budget" true
          (waited_s > budget_s);
        Alcotest.(check int) "budget-exhausted exit code" 8
          (P.exit_code ~strict:true (P.class_of_reply r2))
      | _ ->
        Alcotest.failf "expected a budget rejection, got class %s"
          (P.class_name (P.class_of_reply r2)))

(* --- budget-driven ladder entry ---------------------------------------- *)

let test_for_budget_mapping () =
  let module R = Pipeline.Resilience in
  let d = R.default in
  let at remaining = R.for_budget ~budget:1.0 ~remaining d in
  Alcotest.(check bool) "ample budget unchanged" true (at 0.9 = d);
  let half = at 0.3 in
  Alcotest.(check bool) "mid budget drops retries" true
    (half.R.entry = R.From_milp && half.R.max_retries = 0);
  Alcotest.(check bool) "low budget enters at rounded LP" true
    ((at 0.1).R.entry = R.From_rounded_lp);
  Alcotest.(check bool) "critical budget goes straight to single mode" true
    ((at 0.01).R.entry = R.From_single_mode);
  Alcotest.check_raises "budget must be positive"
    (Invalid_argument "Pipeline.Resilience.for_budget: budget must be > 0")
    (fun () -> ignore (R.for_budget ~budget:0.0 ~remaining:0.0 d))

(* Entering below the MILP rung must still produce a verified schedule
   and record the skipped rungs as descents. *)
let test_ladder_entry_points () =
  let w = Workload.find wl in
  let input = Workload.default_input w in
  let cfg, _, mem = Workload.load w ~input in
  let machine = Workload.eval_config () in
  let p = Dvs_profile.Profile.collect machine cfg ~memory:mem in
  let n = Dvs_power.Mode.size machine.Dvs_machine.Config.mode_table in
  let t_fast = Dvs_profile.Profile.pinned_time p ~mode:(n - 1) in
  let t_slow = Dvs_profile.Profile.pinned_time p ~mode:0 in
  let deadline = t_fast +. (0.5 *. (t_slow -. t_fast)) in
  let run entry =
    let config =
      Pipeline.Config.make
        ~solver:(Dvs_milp.Solver.Config.make ~jobs:1 ~max_nodes:2000 ())
        ~resilience:(Pipeline.Resilience.make ~entry ())
        ()
    in
    Pipeline.optimize_multi ~config
      ~regulator:machine.Dvs_machine.Config.regulator ~memory:mem
      [ { Dvs_core.Formulation.profile = p; weight = 1.0; deadline } ]
  in
  let r_lp = run Pipeline.Resilience.From_rounded_lp in
  (match r_lp.Pipeline.rung with
  | Some (Pipeline.Rounded_lp | Pipeline.Single_mode) -> ()
  | rung ->
    Alcotest.failf "rounded-LP entry landed on %s"
      (match rung with
      | Some r -> Format.asprintf "%a" Pipeline.pp_rung r
      | None -> "no rung"));
  Alcotest.(check bool) "milp skip recorded" true
    (List.exists
       (fun d -> d.Pipeline.rung_failed = Pipeline.Milp)
       r_lp.Pipeline.descents);
  let r_single = run Pipeline.Resilience.From_single_mode in
  (match r_single.Pipeline.rung with
  | Some Pipeline.Single_mode -> ()
  | _ -> Alcotest.fail "single-mode entry must land on the baseline rung");
  match r_single.Pipeline.verification with
  | Some v ->
    Alcotest.(check bool) "baseline verified" true
      v.Dvs_core.Verify.meets_deadline
  | None -> Alcotest.fail "baseline rung was not verified"

(* --- batching ----------------------------------------------------------- *)

let test_batching () =
  with_engine ~workers:1 ~batch_max:8 ~default_budget_s:120.0 (fun e ->
      (* The far-out leader pays the model build; the three
         near-duplicates queue behind it and are served as one sweep. *)
      let h0 = Engine.submit e (opt ~frac:0.95 "bat-0") in
      let h1 = Engine.submit e (opt ~frac:0.5 "bat-1") in
      let h2 = Engine.submit e (opt ~frac:0.5 "bat-2") in
      let h3 = Engine.submit e (opt ~frac:0.52 "bat-3") in
      let r0 = Engine.await h0
      and r1 = Engine.await h1
      and r2 = Engine.await h2
      and r3 = Engine.await h3 in
      Alcotest.(check int) "leader solved alone" 1 r0.P.batched;
      List.iter
        (fun (r : P.reply) ->
          Alcotest.(check int)
            (r.P.id ^ " served in the shared batch") 3 r.P.batched)
        [ r1; r2; r3 ];
      let d r = (scheduled r).P.deadline_ms in
      Alcotest.(check (float 1e-9)) "same frac, same deadline" (d r1) (d r2);
      Alcotest.(check bool) "distinct fracs demuxed to distinct deadlines"
        true
        (d r3 > d r1 && d r0 > d r3);
      List.iter
        (fun r ->
          match (scheduled r).P.meets_deadline with
          | Some true -> ()
          | _ -> Alcotest.failf "batched point %s should verify" r.P.id)
        [ r1; r2; r3 ])

(* --- chaos -------------------------------------------------------------- *)

let test_poison_containment () =
  with_engine ~workers:1 (fun e ->
      Engine.warm e [ (wl, None) ];
      let poison = P.chaos ~poison_rate:1.0 ~seed:3 () in
      let bad =
        Engine.await (Engine.submit e (opt ~chaos:poison "poison-1"))
      in
      (match bad.P.body with
      | P.Failed_reply _ ->
        Alcotest.(check int) "failed exit code" 9
          (P.exit_code ~strict:false (P.class_of_reply bad))
      | _ ->
        Alcotest.failf "poisoned request should fail, got %s"
          (P.class_name (P.class_of_reply bad)));
      (* The worker survived: the pool keeps serving. *)
      let ok = Engine.await (Engine.submit e (opt "after-poison")) in
      match ok.P.body with
      | P.Scheduled _ -> ()
      | _ -> Alcotest.fail "pool should survive a poisoned request")

(* Chaos triggers are a pure function of (seed, request id): an identical
   seeded request set classifies identically at workers=1 and workers=4,
   whatever the interleaving. *)
let test_chaos_determinism_across_workers () =
  let chaos = P.chaos ~crash_rate:0.6 ~poison_rate:0.25 ~seed:7 () in
  let ids = List.init 8 (fun k -> Printf.sprintf "chaos-%02d" k) in
  let classify workers =
    with_engine ~workers ~default_budget_s:60.0 (fun e ->
        Engine.warm e [ (wl, None) ];
        let handles =
          List.map (fun id -> (id, Engine.submit e (opt ~chaos id))) ids
        in
        List.map
          (fun (id, h) -> (id, P.class_name (P.class_of_reply (Engine.await h))))
          handles)
    |> List.sort compare
  in
  let seq = classify 1 in
  let par = classify 4 in
  List.iter2
    (fun (id, c1) (id', c4) ->
      Alcotest.(check string) ("id match " ^ id) id id';
      Alcotest.(check string) ("class of " ^ id ^ " across worker counts")
        c1 c4)
    seq par;
  (* The seed actually fires: both outcomes appear in the set. *)
  let classes = List.map snd seq in
  Alcotest.(check bool) "some requests were poisoned" true
    (List.mem (P.class_name P.Failed) classes);
  Alcotest.(check bool) "some requests survived chaos" true
    (List.exists (fun c -> c <> P.class_name P.Failed) classes)

(* --- socket daemon ------------------------------------------------------ *)

let socket_path name =
  Filename.concat (Filename.get_temp_dir_name ())
    (Printf.sprintf "dvsd-test-%s-%d.sock" name (Unix.getpid ()))

let test_daemon_roundtrip () =
  let path = socket_path "rt" in
  (try Unix.unlink path with Unix.Unix_error _ -> ());
  let d =
    Daemon.start
      ~engine_config:(Engine.Config.make ~workers:1 ())
      ~socket:path ()
  in
  let runner = Thread.create Daemon.run d in
  Fun.protect
    ~finally:(fun () ->
      Daemon.stop d;
      Thread.join runner)
    (fun () ->
      let c = Client.connect ~socket:path in
      let pong = Client.rpc c { P.id = "ping-1"; body = P.Ping } in
      (match pong.P.body with
      | P.Pong -> ()
      | _ -> Alcotest.fail "ping over the socket should pong");
      let r = Client.rpc c (opt "sock-1") in
      (match r.P.body with
      | P.Scheduled _ -> ()
      | _ ->
        Alcotest.failf "socket optimize failed with class %s"
          (P.class_name (P.class_of_reply r)));
      let stats = Client.rpc c { P.id = "st-1"; body = P.Stats } in
      (match stats.P.body with
      | P.Stats_reply m -> (
        match Dvs_obs.Schema.validate_metrics m with
        | Ok () -> ()
        | Error msg -> Alcotest.failf "socket stats invalid: %s" msg)
      | _ -> Alcotest.fail "stats over the socket");
      let bye = Client.rpc c { P.id = "bye-1"; body = P.Shutdown } in
      (match bye.P.body with
      | P.Bye -> ()
      | _ -> Alcotest.fail "shutdown should reply bye");
      Client.close c);
  Alcotest.(check bool) "socket unlinked on shutdown" false
    (Sys.file_exists path)

let test_daemon_stale_socket () =
  let path = socket_path "stale" in
  (try Unix.unlink path with Unix.Unix_error _ -> ());
  (* Fake a crash: a bound socket file nobody is listening on. *)
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind fd (Unix.ADDR_UNIX path);
  Unix.close fd;
  Alcotest.(check bool) "stale file left behind" true (Sys.file_exists path);
  let d =
    Daemon.start
      ~engine_config:(Engine.Config.make ~workers:1 ())
      ~socket:path ()
  in
  let runner = Thread.create Daemon.run d in
  Fun.protect
    ~finally:(fun () ->
      Daemon.stop d;
      Thread.join runner)
    (fun () ->
      let c = Client.connect ~socket:path in
      let pong = Client.rpc c { P.id = "p"; body = P.Ping } in
      (match pong.P.body with
      | P.Pong -> ()
      | _ -> Alcotest.fail "reclaimed daemon should answer");
      (* A second daemon must refuse the live socket. *)
      (match Daemon.start ~socket:path () with
      | _ -> Alcotest.fail "second daemon should refuse a live socket"
      | exception Failure _ -> ());
      Client.close c);
  Alcotest.(check bool) "socket cleaned up" false (Sys.file_exists path)

let test_loadgen_report () =
  let path = socket_path "lg" in
  (try Unix.unlink path with Unix.Unix_error _ -> ());
  let d =
    Daemon.start
      ~engine_config:(Engine.Config.make ~workers:2 ~queue_depth:8 ())
      ~socket:path ()
  in
  let runner = Thread.create Daemon.run d in
  Fun.protect
    ~finally:(fun () ->
      Daemon.stop d;
      Thread.join runner)
    (fun () ->
      let leg =
        Loadgen.leg ~clients:2 ~workloads:[ (wl, None) ] ~seed:11
          ~name:"smoke" ~requests:6 ~rate_hz:50.0 ()
      in
      let s = Loadgen.run ~socket:path leg in
      Alcotest.(check int) "every request accounted for" 6 s.Loadgen.sent;
      Alcotest.(check int) "class counts sum to sent" 6
        (List.fold_left (fun a (_, k) -> a + k) 0 s.Loadgen.classes);
      Alcotest.(check bool) "p99 covers p50" true
        (s.Loadgen.p99_ms >= s.Loadgen.p50_ms);
      (match Dvs_obs.Schema.validate_service (Loadgen.to_json s) with
      | Ok () -> ()
      | Error msg -> Alcotest.failf "dvs-service/v1 report invalid: %s" msg);
      (* A chaos burst must leave the daemon serving. *)
      let chaos_leg =
        Loadgen.leg ~clients:2 ~workloads:[ (wl, None) ] ~seed:12
          ~chaos:(P.chaos ~crash_rate:1.0 ~seed:5 ())
          ~name:"chaos" ~requests:4 ~rate_hz:50.0 ()
      in
      let cs = Loadgen.run ~socket:path chaos_leg in
      Alcotest.(check int) "chaos leg completed" 4 cs.Loadgen.sent;
      let c = Client.connect ~socket:path in
      let pong = Client.rpc c { P.id = "alive"; body = P.Ping } in
      (match pong.P.body with
      | P.Pong -> ()
      | _ -> Alcotest.fail "daemon should survive the chaos burst");
      Client.close c)

let suite =
  [ Alcotest.test_case "protocol round-trips" `Quick test_protocol_roundtrip;
    Alcotest.test_case "exit-code table" `Quick test_exit_codes;
    Alcotest.test_case "optimize + simulate from warm state" `Quick
      test_optimize_and_simulate;
    Alcotest.test_case "idempotent replies + control ops" `Quick
      test_idempotent_replies;
    Alcotest.test_case "bounded queue sheds with typed rejection" `Quick
      test_admission_control;
    Alcotest.test_case "queued-out budget is rejected typed" `Quick
      test_budget_exhausted;
    Alcotest.test_case "budget-to-ladder mapping" `Quick
      test_for_budget_mapping;
    Alcotest.test_case "ladder entry below MILP verifies" `Quick
      test_ladder_entry_points;
    Alcotest.test_case "near-duplicate batching demuxes" `Quick
      test_batching;
    Alcotest.test_case "poisoned request contained" `Quick
      test_poison_containment;
    Alcotest.test_case "chaos classification deterministic across workers"
      `Quick test_chaos_determinism_across_workers;
    Alcotest.test_case "daemon socket round-trip" `Quick
      test_daemon_roundtrip;
    Alcotest.test_case "stale socket reclaimed, live refused" `Quick
      test_daemon_stale_socket;
    Alcotest.test_case "loadgen report + chaos burst" `Quick
      test_loadgen_report ]
