(* Direct unit tests of the MILP formulation (the paper's core): on a
   tiny CFG with a hand-constructed profile, the solved objective must
   equal the best value of an explicit enumeration of every mode
   assignment using the paper's formulas. *)

open Dvs_ir
open Dvs_core

(* CFG: entry -> loop head -> (body -> head)* -> exit. *)
let cfg =
  let b = Cfg.Builder.create () in
  let entry = Cfg.Builder.add_block ~name:"entry" b in
  let head = Cfg.Builder.add_block ~name:"head" b in
  let body = Cfg.Builder.add_block ~name:"body" b in
  let exit_b = Cfg.Builder.add_block ~name:"exit" b in
  Cfg.Builder.push b entry (Instr.Li (0, 1));
  Cfg.Builder.set_term b entry (Cfg.Jump head);
  Cfg.Builder.push b head (Instr.Li (1, 0));
  (* Branch on the freshly zeroed register: the functional dummy run
     falls straight to the exit; the loop trip counts live only in the
     hand-made profile. *)
  Cfg.Builder.set_term b head (Cfg.Branch (1, body, exit_b));
  Cfg.Builder.push b body (Instr.Li (2, 0));
  Cfg.Builder.set_term b body (Cfg.Jump head);
  Cfg.Builder.push b exit_b (Instr.Li (3, 0));
  Cfg.Builder.set_term b exit_b Cfg.Halt;
  Cfg.Builder.finish b ~entry

let machine = Dvs_workloads.Workload.eval_config ()

let n_modes = 3

(* Hand-made per-block per-invocation costs: block i at mode m.  The
   body is "memory bound" (time barely changes with mode). *)
let block_time m j =
  let f = (Dvs_power.Mode.get machine.Dvs_machine.Config.mode_table m).frequency in
  match j with
  | 0 -> 100.0 /. f (* entry: 100 cycles *)
  | 1 -> 20.0 /. f (* head *)
  | 2 -> 50.0 /. f +. 2e-6 (* body: 50 cycles + 2us of memory *)
  | _ -> 30.0 /. f

let block_energy m j =
  let v = (Dvs_power.Mode.get machine.Dvs_machine.Config.mode_table m).voltage in
  let cycles = match j with 0 -> 100.0 | 1 -> 20.0 | 2 -> 50.0 | _ -> 30.0 in
  cycles *. 0.5e-9 *. v *. v

let iterations = 40

(* Build a synthetic profile for the loop executing [iterations] times. *)
let profile =
  let n_blocks = Cfg.num_blocks cfg in
  let exec_count = [| 1; iterations + 1; iterations; 1 |] in
  let edges = Cfg.edges cfg in
  let edge_count =
    Array.map
      (fun (e : Cfg.edge) ->
        match (e.src, e.dst) with
        | 0, 1 -> 1
        | 1, 2 -> iterations
        | 2, 1 -> iterations
        | 1, 3 -> 1
        | _ -> 0)
      edges
  in
  let paths =
    [ ({ Dvs_profile.Profile.pred = None; node = 0; succ = 1 }, 1);
      ({ Dvs_profile.Profile.pred = Some 0; node = 1; succ = 2 }, 1);
      ({ Dvs_profile.Profile.pred = Some 2; node = 1; succ = 2 },
       iterations - 1);
      ({ Dvs_profile.Profile.pred = Some 2; node = 1; succ = 3 }, 1);
      ({ Dvs_profile.Profile.pred = Some 1; node = 2; succ = 1 }, iterations)
    ]
  in
  let total_time =
    Array.init n_modes (fun m ->
        Array.init n_blocks (fun j ->
            float_of_int exec_count.(j) *. block_time m j))
  in
  let total_energy =
    Array.init n_modes (fun m ->
        Array.init n_blocks (fun j ->
            float_of_int exec_count.(j) *. block_energy m j))
  in
  (* Pinned runs only feed baselines, which this test does not use; a
     minimal real run keeps the record well-formed. *)
  let dummy_run = Dvs_machine.Cpu.run machine cfg ~memory:[||] in
  { Dvs_profile.Profile.cfg; config = machine; exec_count; edge_count;
    entry_count = 1; paths; total_time; total_energy;
    runs = Array.make n_modes dummy_run }

let regulator = Dvs_power.Switch_cost.regulator ~capacitance:0.05e-6 ()

(* Paper formulas, computed directly for a full mode assignment
   (edge id -> mode; id = n_edges is the virtual entry edge). *)
let assignment_cost assign =
  let edges = Cfg.edges cfg in
  let n_edges = Array.length edges in
  let dst id = if id = n_edges then Cfg.entry cfg else edges.(id).Cfg.dst in
  let g id =
    if id = n_edges then 1 else profile.Dvs_profile.Profile.edge_count.(id)
  in
  let energy = ref 0.0 and time = ref 0.0 in
  for id = 0 to n_edges do
    let m = assign id in
    let j = dst id in
    energy := !energy +. (float_of_int (g id) *. block_energy m j);
    time := !time +. (float_of_int (g id) *. block_time m j)
  done;
  let edge_index_of src dst' =
    Cfg.edge_index cfg { Cfg.src = src; dst = dst' }
  in
  List.iter
    (fun ((p : Dvs_profile.Profile.path), count) ->
      let in_id =
        match p.Dvs_profile.Profile.pred with
        | None -> n_edges
        | Some h -> edge_index_of h p.Dvs_profile.Profile.node
      in
      let out_id =
        edge_index_of p.Dvs_profile.Profile.node p.Dvs_profile.Profile.succ
      in
      let v_of id =
        (Dvs_power.Mode.get machine.Dvs_machine.Config.mode_table (assign id))
          .voltage
      in
      energy :=
        !energy
        +. (float_of_int count
           *. Dvs_power.Switch_cost.energy regulator (v_of in_id)
                (v_of out_id));
      time :=
        !time
        +. (float_of_int count
           *. Dvs_power.Switch_cost.time regulator (v_of in_id) (v_of out_id)))
    profile.Dvs_profile.Profile.paths;
  (!energy, !time)

let brute_force deadline =
  let edges = Cfg.edges cfg in
  let n_edges = Array.length edges in
  let n_vars = n_edges + 1 in
  let best = ref infinity in
  let assign = Array.make n_vars 0 in
  let rec go i =
    if i = n_vars then begin
      let e, t = assignment_cost (fun id -> assign.(id)) in
      if t <= deadline *. (1.0 +. 1e-9) && e < !best then best := e
    end
    else
      for m = 0 to n_modes - 1 do
        assign.(i) <- m;
        go (i + 1)
      done
  in
  go 0;
  !best

let solve_milp deadline =
  let f =
    Formulation.build ~regulator
      [ { Formulation.profile; weight = 1.0; deadline } ]
  in
  let r = Dvs_milp.Branch_bound.solve f.Formulation.model in
  match r.Dvs_milp.Branch_bound.solution with
  | Some s -> Some (s.Dvs_lp.Simplex.objective /. 1e6)
  | None -> None

let check_deadline d =
  match solve_milp d with
  | None ->
    let bf = brute_force d in
    Alcotest.(check bool)
      (Printf.sprintf "both infeasible at %.3gms" (d *. 1e3))
      true
      (bf = infinity)
  | Some milp ->
    let bf = brute_force d in
    if Float.abs (milp -. bf) > 1e-6 *. Float.max 1.0 bf then
      Alcotest.failf "deadline %.4gms: MILP %.9g vs brute force %.9g"
        (d *. 1e3) milp bf

let test_matches_brute_force () =
  (* Sweep deadlines from just-feasible to lax.  At the fastest mode:
     time = (100 + 20*41 + 50*40 + 30)/800e6 + 40*2e-6 = ~83.7us. *)
  List.iter check_deadline
    [ 84e-6; 90e-6; 100e-6; 120e-6; 150e-6; 200e-6; 300e-6; 500e-6 ]

let test_infeasible_matches () = check_deadline 50e-6

let test_transition_costs_matter () =
  (* With very expensive transitions the optimum must be a uniform
     assignment; verify via the brute force restricted to uniform. *)
  let expensive = Dvs_power.Switch_cost.regulator ~capacitance:100e-6 () in
  let d = 200e-6 in
  let f =
    Formulation.build ~regulator:expensive
      [ { Formulation.profile; weight = 1.0; deadline = d } ]
  in
  let r = Dvs_milp.Branch_bound.solve f.Formulation.model in
  match r.Dvs_milp.Branch_bound.solution with
  | None -> Alcotest.fail "no solution"
  | Some s ->
    let sched = Schedule.of_solution f s in
    Alcotest.(check int) "uniform schedule" 1
      (List.length (Schedule.distinct_modes sched))

let suite =
  [ Alcotest.test_case "MILP matches brute force over deadlines" `Quick
      test_matches_brute_force;
    Alcotest.test_case "infeasibility agrees" `Quick test_infeasible_matches;
    Alcotest.test_case "expensive transitions force uniform" `Quick
      test_transition_costs_matter ]

(* Section 4.3: the weighted multi-category objective, checked against
   enumeration.  A second synthetic "input" doubles the loop trip count
   and gets its own (laxer) deadline. *)
let profile2 =
  let iterations2 = 2 * iterations in
  let n_blocks = Cfg.num_blocks cfg in
  let exec_count = [| 1; iterations2 + 1; iterations2; 1 |] in
  let edges = Cfg.edges cfg in
  let edge_count =
    Array.map
      (fun (e : Cfg.edge) ->
        match (e.src, e.dst) with
        | 0, 1 -> 1
        | 1, 2 -> iterations2
        | 2, 1 -> iterations2
        | 1, 3 -> 1
        | _ -> 0)
      edges
  in
  let paths =
    [ ({ Dvs_profile.Profile.pred = None; node = 0; succ = 1 }, 1);
      ({ Dvs_profile.Profile.pred = Some 0; node = 1; succ = 2 }, 1);
      ({ Dvs_profile.Profile.pred = Some 2; node = 1; succ = 2 },
       iterations2 - 1);
      ({ Dvs_profile.Profile.pred = Some 2; node = 1; succ = 3 }, 1);
      ({ Dvs_profile.Profile.pred = Some 1; node = 2; succ = 1 },
       iterations2) ]
  in
  { profile with
    Dvs_profile.Profile.exec_count; edge_count; paths;
    total_time =
      Array.init n_modes (fun m ->
          Array.init n_blocks (fun j ->
              float_of_int exec_count.(j) *. block_time m j));
    total_energy =
      Array.init n_modes (fun m ->
          Array.init n_blocks (fun j ->
              float_of_int exec_count.(j) *. block_energy m j)) }

(* Enumerate assignments against the weighted objective with both
   deadline constraints. *)
let assignment_cost_for prof assign =
  let edges = Cfg.edges cfg in
  let n_edges = Array.length edges in
  let dst id = if id = n_edges then Cfg.entry cfg else edges.(id).Cfg.dst in
  let g id =
    if id = n_edges then 1 else prof.Dvs_profile.Profile.edge_count.(id)
  in
  let energy = ref 0.0 and time = ref 0.0 in
  for id = 0 to n_edges do
    let m = assign id in
    let j = dst id in
    energy := !energy +. (float_of_int (g id) *. block_energy m j);
    time := !time +. (float_of_int (g id) *. block_time m j)
  done;
  List.iter
    (fun ((p : Dvs_profile.Profile.path), count) ->
      let in_id =
        match p.Dvs_profile.Profile.pred with
        | None -> n_edges
        | Some h -> Cfg.edge_index cfg { Cfg.src = h; dst = p.Dvs_profile.Profile.node }
      in
      let out_id =
        Cfg.edge_index cfg
          { Cfg.src = p.Dvs_profile.Profile.node;
            dst = p.Dvs_profile.Profile.succ }
      in
      let v_of id =
        (Dvs_power.Mode.get machine.Dvs_machine.Config.mode_table (assign id))
          .voltage
      in
      energy :=
        !energy
        +. (float_of_int count
           *. Dvs_power.Switch_cost.energy regulator (v_of in_id) (v_of out_id));
      time :=
        !time
        +. (float_of_int count
           *. Dvs_power.Switch_cost.time regulator (v_of in_id) (v_of out_id)))
    prof.Dvs_profile.Profile.paths;
  (!energy, !time)

let test_multi_category_matches_brute_force () =
  let w1 = 0.7 and w2 = 0.3 in
  let d1 = 150e-6 and d2 = 260e-6 in
  let f =
    Formulation.build ~regulator
      [ { Formulation.profile; weight = w1; deadline = d1 };
        { Formulation.profile = profile2; weight = w2; deadline = d2 } ]
  in
  let milp =
    match
      (Dvs_milp.Branch_bound.solve f.Formulation.model)
        .Dvs_milp.Branch_bound.solution
    with
    | Some s -> s.Dvs_lp.Simplex.objective /. 1e6
    | None -> Alcotest.fail "multi-category MILP found nothing"
  in
  let edges = Cfg.edges cfg in
  let n_vars = Array.length edges + 1 in
  let best = ref infinity in
  let assign = Array.make n_vars 0 in
  let rec go i =
    if i = n_vars then begin
      let e1, t1 = assignment_cost_for profile (fun id -> assign.(id)) in
      let e2, t2 = assignment_cost_for profile2 (fun id -> assign.(id)) in
      if t1 <= d1 *. (1.0 +. 1e-9) && t2 <= d2 *. (1.0 +. 1e-9) then begin
        let obj = (w1 *. e1) +. (w2 *. e2) in
        if obj < !best then best := obj
      end
    end
    else
      for m = 0 to n_modes - 1 do
        assign.(i) <- m;
        go (i + 1)
      done
  in
  go 0;
  if Float.abs (milp -. !best) > 1e-6 *. Float.max 1.0 !best then
    Alcotest.failf "multi-category: MILP %.9g vs brute force %.9g" milp !best

let suite =
  suite
  @ [ Alcotest.test_case "multi-category matches brute force" `Quick
        test_multi_category_matches_brute_force ]

(* LP-file round trip: export the formulation's MILP, parse it back, and
   check the two models are semantically identical (variables by name,
   bounds, integrality, constraints, objective) and solve to the same
   optimum.  Exercises the bounds/Binary sections on exactly the model
   shape the pipeline exports for cross-checking. *)
let test_lp_roundtrip () =
  let module Model = Dvs_lp.Model in
  let module Expr = Dvs_lp.Expr in
  let f =
    Formulation.build ~regulator
      [ { Formulation.profile; weight = 1.0; deadline = 150e-6 } ]
  in
  let m = f.Formulation.model in
  let m2 = Dvs_lp.Lp_io.of_lp_string (Dvs_lp.Lp_io.to_lp_string m) in
  let feq a b =
    a = b (* covers the infinities *)
    || Float.abs (a -. b) <= 1e-9 *. Float.max 1.0 (Float.abs a)
  in
  Alcotest.(check int) "var count" (Model.num_vars m) (Model.num_vars m2);
  let index_of mm =
    let tbl = Hashtbl.create 64 in
    for v = 0 to Model.num_vars mm - 1 do
      Hashtbl.replace tbl (Model.name mm v) v
    done;
    tbl
  in
  let i2 = index_of m2 in
  for v = 0 to Model.num_vars m - 1 do
    let name = Model.name m v in
    match Hashtbl.find_opt i2 name with
    | None -> Alcotest.failf "variable %s lost in round trip" name
    | Some v2 ->
      let lb, ub = Model.bounds m v and lb2, ub2 = Model.bounds m2 v2 in
      if not (feq lb lb2 && feq ub ub2) then
        Alcotest.failf "%s: bounds [%g, %g] became [%g, %g]" name lb ub lb2
          ub2;
      if Model.is_integer m v <> Model.is_integer m2 v2 then
        Alcotest.failf "%s: integrality flipped" name
  done;
  (* Constraints, canonicalized to (name, sorted (varname, coeff), cmp,
     rhs); insertion order is preserved by both writer and parser. *)
  let canon mm (c : Model.constr) =
    ( c.Model.c_name,
      List.map (fun (v, a) -> (Model.name mm v, a)) (Expr.coeffs c.Model.expr)
      |> List.sort compare,
      c.Model.cmp,
      c.Model.rhs -. Expr.const c.Model.expr )
  in
  let cs = List.map (canon m) (Model.constraints m) in
  let cs2 = List.map (canon m2) (Model.constraints m2) in
  Alcotest.(check int) "constraint count" (List.length cs) (List.length cs2);
  List.iter2
    (fun (n1, t1, cmp1, r1) (n2, t2, cmp2, r2) ->
      if n1 <> n2 || cmp1 <> cmp2 || not (feq r1 r2) then
        Alcotest.failf "constraint %s changed shape" n1;
      if List.length t1 <> List.length t2 then
        Alcotest.failf "constraint %s changed arity" n1;
      List.iter2
        (fun (v1, a1) (v2, a2) ->
          if v1 <> v2 || not (feq a1 a2) then
            Alcotest.failf "constraint %s: term %s %g became %s %g" n1 v1 a1
              v2 a2)
        t1 t2)
    cs cs2;
  let sense1, obj1 = Model.objective m and sense2, obj2 = Model.objective m2 in
  Alcotest.(check bool) "sense" true (sense1 = sense2);
  Alcotest.(check bool) "objective const" true
    (feq (Expr.const obj1) (Expr.const obj2));
  let oterms mm o =
    List.map (fun (v, a) -> (Model.name mm v, a)) (Expr.coeffs o)
    |> List.sort compare
  in
  List.iter2
    (fun (v1, a1) (v2, a2) ->
      if v1 <> v2 || not (feq a1 a2) then
        Alcotest.failf "objective term %s %g became %s %g" v1 a1 v2 a2)
    (oterms m obj1) (oterms m2 obj2);
  (* And the parsed model solves to the same optimum. *)
  let r1 = Dvs_milp.Branch_bound.solve m in
  let r2 = Dvs_milp.Branch_bound.solve m2 in
  match (r1.Dvs_milp.Branch_bound.solution, r2.Dvs_milp.Branch_bound.solution)
  with
  | Some s1, Some s2 ->
    if
      Float.abs (s1.Dvs_lp.Simplex.objective -. s2.Dvs_lp.Simplex.objective)
      > 1e-6 *. Float.max 1.0 (Float.abs s1.Dvs_lp.Simplex.objective)
    then
      Alcotest.failf "round-trip optimum drifted: %.12g vs %.12g"
        s1.Dvs_lp.Simplex.objective s2.Dvs_lp.Simplex.objective
  | _ -> Alcotest.fail "round-trip model did not solve"

let suite =
  suite
  @ [ Alcotest.test_case "LP file round trip" `Quick test_lp_roundtrip ]
