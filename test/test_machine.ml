open Dvs_machine
open Dvs_ir
open Dvs_power

let check_float ?(eps = 1e-9) what expected actual =
  if Float.abs (expected -. actual) > eps then
    Alcotest.failf "%s: expected %.12g, got %.12g" what expected actual

(* ------------------------------------------------------------------ *)
(* Cache *)

let tiny_geometry =
  (* 4 sets x 2 ways x 16B blocks = 128B. *)
  { Config.size_bytes = 128; assoc = 2; block_bytes = 16; latency_cycles = 1 }

let test_cache_basic_hit_miss () =
  let c = Cache.create tiny_geometry in
  Alcotest.(check bool) "cold miss" false (Cache.access c 0);
  Alcotest.(check bool) "hit same block" true (Cache.access c 4);
  Alcotest.(check bool) "hit block edge" true (Cache.access c 15);
  Alcotest.(check bool) "miss next block" false (Cache.access c 16);
  let s = Cache.stats c in
  Alcotest.(check int) "accesses" 4 s.Cache.accesses;
  Alcotest.(check int) "hits" 2 s.Cache.hits

let test_cache_lru_eviction () =
  let c = Cache.create tiny_geometry in
  (* Three blocks mapping to set 0 (stride = sets * block = 64B). *)
  ignore (Cache.access c 0);
  ignore (Cache.access c 64);
  ignore (Cache.access c 128);
  (* 0 was LRU and must be evicted. *)
  Alcotest.(check bool) "0 evicted" false (Cache.access c 0);
  (* 128 was most recent before the re-access of 0; 64 was evicted by 0's
     refill. *)
  Alcotest.(check bool) "128 still resident" true (Cache.access c 128)

let test_cache_lru_touch_order () =
  let c = Cache.create tiny_geometry in
  ignore (Cache.access c 0);
  ignore (Cache.access c 64);
  ignore (Cache.access c 0);
  (* touch 0: now 64 is LRU *)
  ignore (Cache.access c 128);
  (* evicts 64 *)
  Alcotest.(check bool) "0 resident" true (Cache.access c 0);
  Alcotest.(check bool) "64 evicted" false (Cache.access c 64)

(* Reference model: per-set list of tags in recency order. *)
let qcheck_cache_matches_reference =
  QCheck.Test.make ~name:"cache matches a reference LRU model" ~count:100
    QCheck.(list_of_size (QCheck.Gen.int_range 1 400) (int_range 0 1023))
    (fun addrs ->
      let c = Cache.create tiny_geometry in
      let sets = Cache.num_sets c in
      let assoc = tiny_geometry.Config.assoc in
      let model = Array.make sets [] in
      List.for_all
        (fun addr ->
          let block = addr / tiny_geometry.Config.block_bytes in
          let set = block mod sets in
          let expected_hit = List.mem block model.(set) in
          let without = List.filter (fun b -> b <> block) model.(set) in
          let updated = block :: without in
          model.(set) <-
            (if List.length updated > assoc then
               List.filteri (fun i _ -> i < assoc) updated
             else updated);
          Cache.access c addr = expected_hit)
        addrs)

(* ------------------------------------------------------------------ *)
(* CPU timing and energy *)

let small_config ?(dram_latency = 1e-6) ?(mode_table = Mode.xscale3) () =
  (* Tiny caches so tests can provoke misses cheaply. *)
  Config.default
    ~l1d:{ Config.size_bytes = 128; assoc = 2; block_bytes = 16;
           latency_cycles = 1 }
    ~l2:{ Config.size_bytes = 512; assoc = 2; block_bytes = 16;
          latency_cycles = 4 }
    ~dram_latency ~mode_table ()

(* A straight-line block of [n] 1-cycle ALU instructions. *)
let alu_cfg n =
  let b = Cfg.Builder.create () in
  let l = Cfg.Builder.add_block b in
  Cfg.Builder.push b l (Instr.Li (0, 1));
  for _ = 1 to n - 1 do
    Cfg.Builder.push b l (Instr.Binop (Instr.Add, 0, 0, 0))
  done;
  Cfg.Builder.set_term b l Cfg.Halt;
  Cfg.Builder.finish b ~entry:l

let test_pure_compute_time_scales_with_frequency () =
  let cfg = small_config () in
  let g = alu_cfg 1000 in
  let fast = Cpu.run ~rc:(Cpu.Run_config.make ~initial_mode:2 ()) cfg g ~memory:[||] in
  let slow = Cpu.run ~rc:(Cpu.Run_config.make ~initial_mode:0 ()) cfg g ~memory:[||] in
  (* 1000 cycles at 800MHz vs 200MHz: exactly 4x. *)
  check_float ~eps:1e-12 "4x slower" (4.0 *. fast.Cpu.time) slow.Cpu.time;
  check_float ~eps:1e-15 "fast time" (1000.0 /. 800e6) fast.Cpu.time

let test_energy_scales_with_v_squared () =
  let cfg = small_config () in
  let g = alu_cfg 1000 in
  let fast = Cpu.run ~rc:(Cpu.Run_config.make ~initial_mode:2 ()) cfg g ~memory:[||] in
  let slow = Cpu.run ~rc:(Cpu.Run_config.make ~initial_mode:0 ()) cfg g ~memory:[||] in
  let ratio = slow.Cpu.energy /. fast.Cpu.energy in
  check_float ~eps:1e-9 "v^2 ratio" ((0.7 /. 1.65) ** 2.0) ratio

let test_compute_cycles_counted_as_dependent () =
  let cfg = small_config () in
  let g = alu_cfg 100 in
  let r = Cpu.run cfg g ~memory:[||] in
  Alcotest.(check int) "no overlap" 0 r.Cpu.overlap_cycles;
  Alcotest.(check int) "dependent" 100 r.Cpu.dependent_cycles;
  Alcotest.(check int) "no hit cycles" 0 r.Cpu.cache_hit_cycles

(* One load miss followed by dependent use: must gate for the DRAM wall
   time regardless of frequency. *)
let miss_then_use_cfg =
  let b = Cfg.Builder.create () in
  let l = Cfg.Builder.add_block b in
  Cfg.Builder.push b l (Instr.Li (1, 0));
  Cfg.Builder.push b l (Instr.Load (2, 1, 0));
  Cfg.Builder.push b l (Instr.Binop (Instr.Add, 3, 2, 2));
  Cfg.Builder.set_term b l Cfg.Halt;
  Cfg.Builder.finish b ~entry:l

let test_miss_gates_dependent_use () =
  let dram = 1e-6 in
  let cfg = small_config ~dram_latency:dram () in
  let r = Cpu.run ~rc:(Cpu.Run_config.make ~initial_mode:2 ()) cfg miss_then_use_cfg ~memory:(Array.make 16 7) in
  (* Cycles: li(1) + issue(1) + add(1) = 3 at 800MHz, plus the gated miss
     wait (dram minus nothing overlapped after issue). *)
  Alcotest.(check bool) "stall nearly dram" true
    (r.Cpu.stall_time > 0.9 *. dram);
  check_float ~eps:1e-12 "total time" ((3.0 /. 800e6) +. r.Cpu.stall_time)
    r.Cpu.time;
  Alcotest.(check int) "value loaded" 14 r.Cpu.registers.(3);
  check_float ~eps:1e-12 "miss busy time" dram r.Cpu.miss_busy_time

(* Independent compute between a miss and its use overlaps: total time
   shrinks by the overlapped amount, and those cycles count as overlap. *)
let test_overlap_hides_compute () =
  let dram = 1e-6 in
  let cfg = small_config ~dram_latency:dram () in
  let b = Cfg.Builder.create () in
  let l = Cfg.Builder.add_block b in
  Cfg.Builder.push b l (Instr.Li (1, 0));
  Cfg.Builder.push b l (Instr.Load (2, 1, 0));
  for _ = 1 to 100 do
    Cfg.Builder.push b l (Instr.Binop (Instr.Add, 3, 1, 1))
  done;
  Cfg.Builder.push b l (Instr.Binop (Instr.Add, 4, 2, 2));
  Cfg.Builder.set_term b l Cfg.Halt;
  let g = Cfg.Builder.finish b ~entry:l in
  let r = Cpu.run ~rc:(Cpu.Run_config.make ~initial_mode:2 ()) cfg g ~memory:(Array.make 16 1) in
  Alcotest.(check int) "overlap cycles" 100 r.Cpu.overlap_cycles;
  (* The 100 overlapped cycles don't add to the wall time beyond the
     miss; time = li + issue + dram + final add. *)
  check_float ~eps:1e-12 "time"
    ((2.0 /. 800e6) +. dram +. (1.0 /. 800e6))
    r.Cpu.time

let test_cache_hit_cycles_counted () =
  let cfg = small_config () in
  let b = Cfg.Builder.create () in
  let l = Cfg.Builder.add_block b in
  Cfg.Builder.push b l (Instr.Li (1, 0));
  Cfg.Builder.push b l (Instr.Load (2, 1, 0));
  (* miss *)
  Cfg.Builder.push b l (Instr.Binop (Instr.Add, 3, 2, 2));
  (* wait *)
  Cfg.Builder.push b l (Instr.Load (4, 1, 0));
  (* hit: 1 issue + 1 L1 *)
  Cfg.Builder.set_term b l Cfg.Halt;
  let g = Cfg.Builder.finish b ~entry:l in
  let r = Cpu.run cfg g ~memory:(Array.make 16 0) in
  (* 1 (miss issue) + 2 (hit) cycles of memory ops. *)
  Alcotest.(check int) "hit cycles" 3 r.Cpu.cache_hit_cycles;
  Alcotest.(check int) "l1 misses" 1 r.Cpu.l1.Cache.misses;
  Alcotest.(check int) "l1 hits" 1 r.Cpu.l1.Cache.hits

let test_modeset_costs_and_silence () =
  let cfg = small_config () in
  let b = Cfg.Builder.create () in
  let l = Cfg.Builder.add_block b in
  Cfg.Builder.push b l (Instr.Modeset 2);
  (* silent: already fastest *)
  Cfg.Builder.push b l (Instr.Modeset 0);
  (* real transition *)
  Cfg.Builder.push b l (Instr.Modeset 0);
  (* silent *)
  Cfg.Builder.push b l (Instr.Li (0, 1));
  Cfg.Builder.set_term b l Cfg.Halt;
  let g = Cfg.Builder.finish b ~entry:l in
  let r = Cpu.run cfg g ~memory:[||] in
  Alcotest.(check int) "one transition" 1 r.Cpu.mode_transitions;
  let reg = Switch_cost.default in
  check_float ~eps:1e-15 "transition time" (Switch_cost.time reg 1.65 0.7)
    r.Cpu.transition_time;
  check_float ~eps:1e-15 "transition energy"
    (Switch_cost.energy reg 1.65 0.7) r.Cpu.transition_energy;
  (* The Li after the switch runs at 200MHz. *)
  check_float ~eps:1e-15 "post-switch cycle" (1.0 /. 200e6)
    (r.Cpu.time -. r.Cpu.transition_time)

let test_edge_modes_applied () =
  (* Two blocks; the edge sets mode 0, so block 2's instruction runs at
     200MHz. *)
  let cfg = small_config () in
  let b = Cfg.Builder.create () in
  let l1 = Cfg.Builder.add_block b in
  let l2 = Cfg.Builder.add_block b in
  Cfg.Builder.push b l1 (Instr.Li (0, 1));
  Cfg.Builder.set_term b l1 (Cfg.Jump l2);
  Cfg.Builder.push b l2 (Instr.Li (0, 2));
  Cfg.Builder.set_term b l2 Cfg.Halt;
  let g = Cfg.Builder.finish b ~entry:l1 in
  let edge_modes (e : Cfg.edge) =
    if e.Cfg.src = l1 && e.Cfg.dst = l2 then Some 0 else None
  in
  let r = Cpu.run ~rc:(Cpu.Run_config.make ~edge_modes ()) cfg g ~memory:[||] in
  Alcotest.(check int) "one transition" 1 r.Cpu.mode_transitions;
  (* li at 800 + jump at 800 + transition + li at 200. *)
  check_float ~eps:1e-15 "time"
    ((2.0 /. 800e6) +. r.Cpu.transition_time +. (1.0 /. 200e6))
    r.Cpu.time

let test_observer_sequence () =
  let cfg = small_config () in
  let b = Cfg.Builder.create () in
  let l1 = Cfg.Builder.add_block b in
  let l2 = Cfg.Builder.add_block b in
  Cfg.Builder.push b l1 (Instr.Li (0, 1));
  Cfg.Builder.set_term b l1 (Cfg.Jump l2);
  Cfg.Builder.set_term b l2 Cfg.Halt;
  let g = Cfg.Builder.finish b ~entry:l1 in
  let events = ref [] in
  let observer label ~via ~time:_ ~energy:_ = events := (label, via) :: !events in
  ignore (Cpu.run ~rc:(Cpu.Run_config.make ~observer ()) cfg g ~memory:[||]);
  Alcotest.(check bool) "events" true
    (List.rev !events = [ (l1, None); (l2, Some l1) ])

(* Functional agreement with the reference interpreter on real compiled
   programs. *)
let qcheck_cpu_matches_interp =
  let program_gen =
    QCheck.Gen.(
      let* n = int_range 1 20 in
      let* seed = int_range 0 10000 in
      return (n, seed))
  in
  QCheck.Test.make ~name:"cpu matches reference interpreter" ~count:50
    (QCheck.make program_gen)
    (fun (n, seed) ->
      let src =
        Printf.sprintf
          "int a[64]; int s; int i;\n\
           s = %d;\n\
           for (i = 0; i < %d; i = i + 1) {\n\
           \  a[i %% 64] = s + i * %d;\n\
           \  s = s + a[(i * 7) %% 64] %% 13;\n\
           }"
          (seed mod 97) n (1 + (seed mod 5))
      in
      let g, layout = Dvs_lang.Lower.compile_string src in
      let mem = Array.make layout.Dvs_lang.Lower.memory_words 0 in
      let ref_r = Interp.run g ~memory:mem in
      let cpu_r = Cpu.run (small_config ()) g ~memory:mem in
      ref_r.Interp.memory = cpu_r.Cpu.memory
      && ref_r.Interp.registers = cpu_r.Cpu.registers
      && ref_r.Interp.dyn_instrs = cpu_r.Cpu.dyn_instrs)

(* Frequency invariance of DRAM time: a memory-bound loop's total time
   changes less than proportionally with frequency. *)
let test_memory_bound_insensitive_to_frequency () =
  let src =
    "int a[4096]; int s; int i;\n\
     s = 0;\n\
     for (i = 0; i < 4096; i = i + 1) { s = s + a[i]; }"
  in
  let g, layout = Dvs_lang.Lower.compile_string src in
  let mem = Array.make layout.Dvs_lang.Lower.memory_words 1 in
  let cfg = small_config ~dram_latency:2e-6 () in
  let fast = Cpu.run ~rc:(Cpu.Run_config.make ~initial_mode:2 ()) cfg g ~memory:mem in
  let slow = Cpu.run ~rc:(Cpu.Run_config.make ~initial_mode:0 ()) cfg g ~memory:mem in
  let ratio = slow.Cpu.time /. fast.Cpu.time in
  Alcotest.(check bool) "ratio < 4" true (ratio < 3.0);
  Alcotest.(check bool) "misses happened" true (fast.Cpu.l2.Cache.misses > 100)

let suite =
  [ Alcotest.test_case "cache basic hit/miss" `Quick test_cache_basic_hit_miss;
    Alcotest.test_case "cache LRU eviction" `Quick test_cache_lru_eviction;
    Alcotest.test_case "cache LRU touch order" `Quick
      test_cache_lru_touch_order;
    QCheck_alcotest.to_alcotest qcheck_cache_matches_reference;
    Alcotest.test_case "compute time scales with f" `Quick
      test_pure_compute_time_scales_with_frequency;
    Alcotest.test_case "energy scales with v^2" `Quick
      test_energy_scales_with_v_squared;
    Alcotest.test_case "compute counted as dependent" `Quick
      test_compute_cycles_counted_as_dependent;
    Alcotest.test_case "miss gates dependent use" `Quick
      test_miss_gates_dependent_use;
    Alcotest.test_case "overlap hides compute" `Quick
      test_overlap_hides_compute;
    Alcotest.test_case "cache hit cycles counted" `Quick
      test_cache_hit_cycles_counted;
    Alcotest.test_case "modeset costs and silence" `Quick
      test_modeset_costs_and_silence;
    Alcotest.test_case "edge modes applied" `Quick test_edge_modes_applied;
    Alcotest.test_case "observer sequence" `Quick test_observer_sequence;
    QCheck_alcotest.to_alcotest qcheck_cpu_matches_interp;
    Alcotest.test_case "memory bound insensitive to f" `Quick
      test_memory_bound_insensitive_to_frequency ]

(* Hierarchy latency accounting. *)
let test_hierarchy_levels () =
  let cfg = small_config () in
  let h = Hierarchy.create cfg in
  (* Cold: both miss -> dram. *)
  let o1 = Hierarchy.access h ~word_addr:0 in
  Alcotest.(check bool) "cold goes to dram" true o1.Hierarchy.dram;
  (* Immediately again: L1 hit, 1 cycle. *)
  let o2 = Hierarchy.access h ~word_addr:0 in
  Alcotest.(check bool) "l1 hit" true (not o2.Hierarchy.dram);
  Alcotest.(check int) "l1 latency" 1 o2.Hierarchy.cycles;
  (* Evict from tiny L1 by touching other sets-conflicting lines, then
     re-access: should be an L2 hit with l1+l2 latency. *)
  ignore (Hierarchy.access h ~word_addr:32);
  ignore (Hierarchy.access h ~word_addr:64);
  let o3 = Hierarchy.access h ~word_addr:0 in
  if not o3.Hierarchy.dram then
    Alcotest.(check int) "l2 hit latency" 5 o3.Hierarchy.cycles

let test_cache_validation () =
  Alcotest.check_raises "bad block size"
    (Invalid_argument "Cache.create: block size must be a power of two")
    (fun () ->
      ignore
        (Cache.create
           { Config.size_bytes = 96; assoc = 2; block_bytes = 24;
             latency_cycles = 1 }))

let test_cpu_out_of_bounds () =
  let b = Cfg.Builder.create () in
  let l = Cfg.Builder.add_block b in
  Cfg.Builder.push b l (Instr.Li (0, 99));
  Cfg.Builder.push b l (Instr.Load (1, 0, 0));
  Cfg.Builder.set_term b l Cfg.Halt;
  let g = Cfg.Builder.finish b ~entry:l in
  let cfg = small_config () in
  (match Cpu.run cfg g ~memory:(Array.make 10 0) with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "expected bounds failure (in-order)");
  match Cpu_ooo.run cfg g ~memory:(Array.make 10 0) with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "expected bounds failure (ooo)"

(* An edge-mode schedule drives both cores to the same transition count
   and the same architectural results. *)
let test_schedule_parity_across_cores () =
  let src =
    "int a[256]; int s; int i;\n\
     for (i = 0; i < 256; i = i + 1) { a[i] = i; }\n\
     for (i = 0; i < 256; i = i + 1) { s = s + a[i] * 3; }"
  in
  let g, layout = Dvs_lang.Lower.compile_string src in
  let mem = Array.make layout.Dvs_lang.Lower.memory_words 0 in
  let cfg = small_config () in
  (* Slow down the second loop's body edges only. *)
  let edges = Cfg.edges g in
  let edge_modes (e : Cfg.edge) =
    let idx = Cfg.edge_index g e in
    Some (if idx >= Array.length edges / 2 then 0 else 2)
  in
  let io = Cpu.run ~rc:(Cpu.Run_config.make ~initial_mode:2 ~edge_modes ()) cfg g ~memory:mem in
  let ooo = Cpu_ooo.run ~rc:(Cpu.Run_config.make ~initial_mode:2 ~edge_modes ()) cfg g ~memory:mem in
  Alcotest.(check bool) "same memory" true (io.Cpu.memory = ooo.Cpu.memory);
  Alcotest.(check int) "same transitions" io.Cpu.mode_transitions
    ooo.Cpu.mode_transitions;
  Alcotest.(check bool) "both switched" true (io.Cpu.mode_transitions > 0)

let suite =
  suite
  @ [ Alcotest.test_case "hierarchy level latencies" `Quick
        test_hierarchy_levels;
      Alcotest.test_case "cache geometry validation" `Quick
        test_cache_validation;
      Alcotest.test_case "out-of-bounds access fails" `Quick
        test_cpu_out_of_bounds;
      Alcotest.test_case "schedule parity across cores" `Quick
        test_schedule_parity_across_cores ]
