open Dvs_lp
open Dvs_milp

let check_float ?(eps = 1e-6) what expected actual =
  if Float.abs (expected -. actual) > eps then
    Alcotest.failf "%s: expected %.9g, got %.9g" what expected actual

let solve_opt m =
  let r = Branch_bound.solve m in
  match (r.Branch_bound.outcome, r.solution) with
  | Branch_bound.Optimal, Some s -> s
  | o, _ ->
    Alcotest.failf "expected optimal, got %s"
      (match o with
      | Branch_bound.Optimal -> "optimal"
      | Feasible _ -> "feasible"
      | Infeasible -> "infeasible"
      | Unbounded -> "unbounded"
      | No_solution _ -> "no_solution"
      | Degraded _ -> "degraded")

(* 0/1 knapsack: values 60,100,120; weights 10,20,30; cap 50 -> 220. *)
let test_knapsack () =
  let m = Model.create () in
  let xs = Array.init 3 (fun _ -> Model.binary m) in
  Model.add_constraint m
    (Expr.of_terms [ (10.0, xs.(0)); (20.0, xs.(1)); (30.0, xs.(2)) ])
    Model.Le 50.0;
  Model.set_objective m Model.Maximize
    (Expr.of_terms [ (60.0, xs.(0)); (100.0, xs.(1)); (120.0, xs.(2)) ]);
  let s = solve_opt m in
  check_float "obj" 220.0 s.objective;
  check_float "x0" 0.0 s.values.(xs.(0));
  check_float "x1" 1.0 s.values.(xs.(1));
  check_float "x2" 1.0 s.values.(xs.(2))

(* Integer (not binary) variables: max x + y, 2x + y <= 7, x + 3y <= 9,
   integers -> check against enumeration (opt obj 5: e.g. x=3,y=1 ->
   2*3+1=7 ok, 3+3=6 ok, obj 4... enumerate in the test). *)
let test_general_integers () =
  let m = Model.create () in
  let x = Model.add_var ~integer:true ~ub:10.0 m in
  let y = Model.add_var ~integer:true ~ub:10.0 m in
  Model.add_constraint m (Expr.of_terms [ (2.0, x); (1.0, y) ]) Model.Le 7.0;
  Model.add_constraint m (Expr.of_terms [ (1.0, x); (3.0, y) ]) Model.Le 9.0;
  Model.set_objective m Model.Maximize (Expr.add (Expr.var x) (Expr.var y));
  let s = solve_opt m in
  let best = ref neg_infinity in
  for xi = 0 to 10 do
    for yi = 0 to 10 do
      let xf = float_of_int xi and yf = float_of_int yi in
      if (2.0 *. xf) +. yf <= 7.0 && xf +. (3.0 *. yf) <= 9.0 then
        best := Float.max !best (xf +. yf)
    done
  done;
  check_float "matches enumeration" !best s.objective

let test_integer_infeasible () =
  (* 0.4 <= x <= 0.6 with x integer. *)
  let m = Model.create () in
  let x = Model.add_var ~integer:true ~lb:0.4 ~ub:0.6 m in
  Model.set_objective m Model.Minimize (Expr.var x);
  let r = Branch_bound.solve m in
  Alcotest.(check bool) "infeasible" true
    (r.Branch_bound.outcome = Branch_bound.Infeasible)

let test_unbounded () =
  let m = Model.create () in
  let x = Model.add_var ~integer:true m in
  Model.set_objective m Model.Maximize (Expr.var x);
  let r = Branch_bound.solve m in
  Alcotest.(check bool) "unbounded" true
    (r.Branch_bound.outcome = Branch_bound.Unbounded)

(* SOS1-shaped model mimicking the DVS formulation: per group exactly one
   mode on, costs differ, a shared budget constraint. *)
let test_sos1_structure () =
  let groups = 4 and modes = 3 in
  let cost = [| [| 9.0; 4.0; 1.0 |]; [| 8.0; 5.0; 2.0 |];
                [| 7.0; 6.0; 3.0 |]; [| 10.0; 2.0; 1.5 |] |] in
  let time = [| [| 1.0; 2.0; 4.0 |]; [| 1.0; 2.0; 4.0 |];
                [| 1.0; 2.0; 4.0 |]; [| 1.0; 2.0; 4.0 |] |] in
  let budget = 10.0 in
  let m = Model.create () in
  let k = Array.init groups (fun _ -> Array.init modes (fun _ -> Model.binary m)) in
  for g = 0 to groups - 1 do
    Model.add_constraint m
      (Expr.of_terms (List.init modes (fun j -> (1.0, k.(g).(j)))))
      Model.Eq 1.0
  done;
  let all ws =
    Expr.of_terms
      (List.concat_map
         (fun g -> List.init modes (fun j -> (ws.(g).(j), k.(g).(j))))
         (List.init groups Fun.id))
  in
  Model.add_constraint m (all time) Model.Le budget;
  Model.set_objective m Model.Minimize (all cost);
  let s = solve_opt m in
  (* Exhaustive check. *)
  let best = ref infinity in
  let rec enumerate g acc_cost acc_time =
    if g = groups then begin
      if acc_time <= budget then best := Float.min !best acc_cost
    end
    else
      for j = 0 to modes - 1 do
        enumerate (g + 1) (acc_cost +. cost.(g).(j)) (acc_time +. time.(g).(j))
      done
  in
  enumerate 0 0.0 0.0;
  check_float "matches enumeration" !best s.objective;
  (* Every group picks exactly one mode. *)
  for g = 0 to groups - 1 do
    let sum = ref 0.0 in
    for j = 0 to modes - 1 do
      sum := !sum +. s.values.(k.(g).(j))
    done;
    check_float "group convexity" 1.0 !sum
  done

(* Random mixed problems vs exhaustive enumeration of the binaries (the
   continuous part is completed by the LP in both cases). *)
let random_milp_gen =
  QCheck.Gen.(
    let* nbin = int_range 1 6 in
    let* ncont = int_range 0 2 in
    let* mrows = int_range 1 4 in
    let n = nbin + ncont in
    let* c = array_size (return n) (float_range (-5.0) 5.0) in
    let* a = array_size (return (mrows * n)) (float_range (-3.0) 3.0) in
    let* b = array_size (return mrows) (float_range 0.5 6.0) in
    return (nbin, ncont, mrows, c, a, b))

let qcheck_milp_vs_enumeration =
  QCheck.Test.make ~name:"branch&bound matches binary enumeration" ~count:60
    (QCheck.make random_milp_gen)
    (fun (nbin, ncont, mrows, c, a, b) ->
      let n = nbin + ncont in
      let build () =
        let m = Model.create () in
        let vars =
          Array.init n (fun i ->
              if i < nbin then Model.binary m else Model.add_var ~ub:3.0 m)
        in
        for i = 0 to mrows - 1 do
          Model.add_constraint m
            (Expr.of_terms (List.init n (fun j -> (a.((i * n) + j), vars.(j)))))
            Model.Le b.(i)
        done;
        Model.set_objective m Model.Minimize
          (Expr.of_terms (List.init n (fun j -> (c.(j), vars.(j)))));
        (m, vars)
      in
      (* Branch and bound answer. *)
      let m, _ = build () in
      let r = Branch_bound.solve m in
      (* Enumeration answer: fix binaries, LP-complete. *)
      let best = ref None in
      for mask = 0 to (1 lsl nbin) - 1 do
        let m', vars' = build () in
        for j = 0 to nbin - 1 do
          let v = if mask land (1 lsl j) <> 0 then 1.0 else 0.0 in
          Model.set_bounds m' vars'.(j) ~lb:v ~ub:v
        done;
        match Simplex.solve m' with
        | Simplex.Optimal s -> (
          match !best with
          | Some o when o <= s.objective -> ()
          | _ -> best := Some s.objective)
        | _ -> ()
      done;
      match (r.Branch_bound.outcome, r.solution, !best) with
      | Branch_bound.Infeasible, _, None -> true
      | Branch_bound.Optimal, Some s, Some o ->
        Float.abs (s.objective -. o) <= 1e-5 *. Float.max 1.0 (Float.abs o)
      | _ -> false)

(* All-binaries feasibility sanity: the incumbent respects integrality. *)
let qcheck_solution_is_integral =
  QCheck.Test.make ~name:"solutions are integral on integer vars" ~count:60
    (QCheck.make random_milp_gen)
    (fun (nbin, ncont, mrows, c, a, b) ->
      let n = nbin + ncont in
      let m = Model.create () in
      let vars =
        Array.init n (fun i ->
            if i < nbin then Model.binary m else Model.add_var ~ub:3.0 m)
      in
      for i = 0 to mrows - 1 do
        Model.add_constraint m
          (Expr.of_terms (List.init n (fun j -> (a.((i * n) + j), vars.(j)))))
          Model.Le b.(i)
      done;
      Model.set_objective m Model.Minimize
        (Expr.of_terms (List.init n (fun j -> (c.(j), vars.(j)))));
      match (Branch_bound.solve m).Branch_bound.solution with
      | None -> true
      | Some s ->
        List.for_all
          (fun v ->
            let x = s.Simplex.values.(v) in
            Float.abs (x -. Float.round x) <= 1e-6)
          (Model.integer_vars m))

(* --- Solver API: parallelism, determinism, caching -------------------- *)

(* A model big enough that the tree has real depth: SOS1 groups with a
   tight shared budget, as the DVS formulation produces. *)
let sos1_model ~groups ~modes ~budget =
  let m = Model.create () in
  let k =
    Array.init groups (fun _ -> Array.init modes (fun _ -> Model.binary m))
  in
  let cost g j = float_of_int (((g * 7) + (j * 3)) mod 11) +. 1.0 in
  let time g j = float_of_int (modes - j) +. (0.25 *. float_of_int (g mod 3)) in
  for g = 0 to groups - 1 do
    Model.add_constraint m
      (Expr.of_terms (List.init modes (fun j -> (1.0, k.(g).(j)))))
      Model.Eq 1.0
  done;
  let all w =
    Expr.of_terms
      (List.concat_map
         (fun g -> List.init modes (fun j -> (w g j, k.(g).(j))))
         (List.init groups Fun.id))
  in
  Model.add_constraint m (all time) Model.Le budget;
  Model.set_objective m Model.Minimize (all cost);
  m

let solve_jobs ?cache jobs m =
  let config = Solver.Config.make ~jobs ?cache () in
  Solver.solve ~config m

let objective_of (r : Solver.result) =
  match (r.Solver.outcome, r.Solver.solution) with
  | Solver.Optimal, Some s -> s.Simplex.objective
  | _ -> Alcotest.fail "expected an optimal solution"

let test_parallel_determinism () =
  let m = sos1_model ~groups:8 ~modes:3 ~budget:26.0 in
  let o1 = objective_of (solve_jobs 1 m) in
  let o4 = objective_of (solve_jobs 4 m) in
  Alcotest.(check bool) "bit-equal objective across jobs" true
    (Int64.bits_of_float o1 = Int64.bits_of_float o4)

let qcheck_parallel_determinism =
  QCheck.Test.make ~name:"jobs=1 and jobs=4 agree on random MILPs" ~count:25
    (QCheck.make random_milp_gen)
    (fun (nbin, ncont, mrows, c, a, b) ->
      let n = nbin + ncont in
      let m = Model.create () in
      let vars =
        Array.init n (fun i ->
            if i < nbin then Model.binary m else Model.add_var ~ub:3.0 m)
      in
      for i = 0 to mrows - 1 do
        Model.add_constraint m
          (Expr.of_terms (List.init n (fun j -> (a.((i * n) + j), vars.(j)))))
          Model.Le b.(i)
      done;
      Model.set_objective m Model.Minimize
        (Expr.of_terms (List.init n (fun j -> (c.(j), vars.(j)))));
      let r1 = solve_jobs 1 m and r4 = solve_jobs 4 m in
      match (r1.Solver.solution, r4.Solver.solution) with
      | Some s1, Some s4 ->
        Int64.bits_of_float s1.Simplex.objective
        = Int64.bits_of_float s4.Simplex.objective
      | None, None -> true
      | _ -> false)

let test_cache_hits () =
  (* Re-solving the same model through a shared cache must answer shallow
     relaxations from memory. *)
  let m = sos1_model ~groups:6 ~modes:3 ~budget:20.0 in
  let cache = Lp_cache.create () in
  let r1 = solve_jobs ~cache 1 m in
  let r2 = solve_jobs ~cache 1 m in
  Alcotest.(check bool) "first solve misses" true
    (r1.Solver.stats.Solver.cache_misses > 0);
  Alcotest.(check bool) "second solve hits" true
    (r2.Solver.stats.Solver.cache_hits > 0);
  Alcotest.(check bool) "cached objective unchanged" true
    (Int64.bits_of_float (objective_of r1)
    = Int64.bits_of_float (objective_of r2))

let test_stats_accounting () =
  let m = sos1_model ~groups:6 ~modes:3 ~budget:20.0 in
  let r = solve_jobs 2 m in
  let st = r.Solver.stats in
  Alcotest.(check int) "workers" 2 st.Solver.workers;
  Alcotest.(check int) "worker_nodes length" 2
    (Array.length st.Solver.worker_nodes);
  Alcotest.(check int) "worker_nodes sums to nodes" st.Solver.nodes
    (Array.fold_left ( + ) 0 st.Solver.worker_nodes);
  Alcotest.(check bool) "lp accounting" true
    (st.Solver.lp_solves > 0 && st.Solver.lp_pivots > 0);
  let u = Solver.worker_utilization st in
  Alcotest.(check bool) "utilization in [0,1]" true (u >= 0.0 && u <= 1.0)

let test_config_validation () =
  Alcotest.check_raises "jobs must be >= 1"
    (Invalid_argument "Solver.Config.make: jobs must be >= 1") (fun () ->
      ignore (Solver.Config.make ~jobs:0 ()))

(* --- Presolve/postsolve property: reductions never change the answer --- *)

(* DVS-shaped instance from a seed: SOS1 mode groups, a shared budget
   row, distinct fractional costs (so the optimum is unique and the
   schedule comparison below is meaningful). *)
let seeded_dvs_milp seed =
  let module Rng = Dvs_workloads.Rng in
  let rng = Rng.create seed in
  let groups = 3 + Rng.int rng 4 (* 3..6 *)
  and modes = 2 + Rng.int rng 2 (* 2..3 *) in
  let m = Model.create () in
  let k =
    Array.init groups (fun _ -> Array.init modes (fun _ -> Model.binary m))
  in
  let cost =
    Array.init groups (fun _ ->
        Array.init modes (fun _ ->
            1.0 +. (float_of_int (Rng.int rng 100_000) /. 97.0)))
  in
  let time =
    Array.init groups (fun g ->
        Array.init modes (fun j ->
            float_of_int (modes - j)
            +. (float_of_int (Rng.int rng 100) /. 400.0)
            +. (0.25 *. float_of_int (g mod 3))))
  in
  for g = 0 to groups - 1 do
    Model.add_constraint m
      (Expr.of_terms (List.init modes (fun j -> (1.0, k.(g).(j)))))
      Model.Eq 1.0
  done;
  let sum_by pick =
    Array.to_list time
    |> List.fold_left (fun acc row -> acc +. pick row) 0.0
  in
  let tmin = sum_by (Array.fold_left Float.min infinity)
  and tmax = sum_by (Array.fold_left Float.max neg_infinity) in
  (* Tight enough that slow modes get excluded, loose enough to stay
     feasible: presolve's GUB pass has real work on every seed. *)
  let budget =
    tmin
    +. ((tmax -. tmin)
        *. (0.15 +. (float_of_int (Rng.int rng 60) /. 100.0)))
  in
  let all w =
    Expr.of_terms
      (List.concat_map
         (fun g -> List.init modes (fun j -> (w.(g).(j), k.(g).(j))))
         (List.init groups Fun.id))
  in
  Model.add_constraint m (all time) Model.Le budget;
  Model.set_objective m Model.Minimize (all cost);
  (m, List.map Array.to_list (Array.to_list k))

let test_presolve_equivalence () =
  for seed = 1 to 50 do
    let m, sos1 = seeded_dvs_milp seed in
    let solve ~presolve ~jobs =
      let config =
        Solver.Config.make ~jobs ~presolve () |> Solver.Config.with_sos1 sos1
      in
      Solver.solve ~config m
    in
    let reference = solve ~presolve:false ~jobs:1 in
    List.iter
      (fun (presolve, jobs) ->
        let r = solve ~presolve ~jobs in
        if r.Solver.outcome <> reference.Solver.outcome then
          Alcotest.failf "seed %d presolve=%b jobs=%d: outcome %a vs %a" seed
            presolve jobs Solver.pp_outcome r.Solver.outcome
            Solver.pp_outcome reference.Solver.outcome;
        match (reference.Solver.solution, r.Solver.solution) with
        | None, None -> ()
        | Some s0, Some s ->
          let o0 = s0.Simplex.objective and o = s.Simplex.objective in
          if Float.abs (o -. o0) > 1e-9 *. Float.max 1.0 (Float.abs o0) then
            Alcotest.failf "seed %d presolve=%b jobs=%d: obj %.15g vs %.15g"
              seed presolve jobs o o0;
          (* Unique optimum by construction: the chosen schedule must be
             identical, and postsolve must deliver it in the original
             (unreduced) variable space. *)
          List.iteri
            (fun g group ->
              List.iteri
                (fun j v ->
                  let x0 = Float.round s0.Simplex.values.(v)
                  and x = Float.round s.Simplex.values.(v) in
                  if x0 <> x then
                    Alcotest.failf
                      "seed %d presolve=%b jobs=%d: group %d mode %d \
                       differs (%g vs %g)"
                      seed presolve jobs g j x x0)
                group)
            sos1
        | _ ->
          Alcotest.failf "seed %d presolve=%b jobs=%d: solution presence \
                          differs" seed presolve jobs)
      [ (true, 1); (true, 4); (false, 4) ]
  done

let suite =
  [ Alcotest.test_case "knapsack" `Quick test_knapsack;
    Alcotest.test_case "general integers" `Quick test_general_integers;
    Alcotest.test_case "integer infeasible" `Quick test_integer_infeasible;
    Alcotest.test_case "unbounded" `Quick test_unbounded;
    Alcotest.test_case "sos1 structure" `Quick test_sos1_structure;
    Alcotest.test_case "parallel determinism" `Quick
      test_parallel_determinism;
    Alcotest.test_case "cache hits on repeat solve" `Quick test_cache_hits;
    Alcotest.test_case "stats accounting" `Quick test_stats_accounting;
    Alcotest.test_case "config validation" `Quick test_config_validation;
    Alcotest.test_case "presolve/postsolve equivalence over 50 seeds" `Quick
      test_presolve_equivalence;
    QCheck_alcotest.to_alcotest qcheck_milp_vs_enumeration;
    QCheck_alcotest.to_alcotest qcheck_solution_is_integral;
    QCheck_alcotest.to_alcotest qcheck_parallel_determinism ]
