(* dvs_obs subsystem tests: JSON round-trips, schema validation, the
   zero-allocation disabled path, jobs=1 vs jobs=4 stable-set
   determinism, and end-to-end instrumentation of the solver, the
   simulator and the pipeline's degradation ladder. *)

module Obs = Dvs_obs
module Json = Dvs_obs.Json
module Metrics = Dvs_obs.Metrics
module Trace = Dvs_obs.Trace
module Schema = Dvs_obs.Schema
module Solver = Dvs_milp.Solver
module Fault = Dvs_milp.Fault
module Lp_cache = Dvs_milp.Lp_cache
module Model = Dvs_lp.Model
module Expr = Dvs_lp.Expr
open Dvs_core

(* --- Json ------------------------------------------------------------- *)

let test_json_roundtrip () =
  let j =
    Json.Obj
      [ ("a", Json.Int 3); ("b", Json.Float 1.0);
        ( "c",
          Json.List
            [ Json.Null; Json.Bool true; Json.String "x\n\"y\" \xe2\x82\xac" ]
        );
        ("d", Json.Float 0.1); ("e", Json.Float (-2.5e-9)) ]
  in
  let s = Json.to_string j in
  (match Json.of_string s with
  | Ok j' -> Alcotest.(check bool) "round-trip equal" true (Json.equal j j')
  | Error e -> Alcotest.failf "re-parse failed: %s" e);
  Alcotest.(check bool)
    "integral float keeps a dot" true
    (String.contains (Json.to_string (Json.Float 1.0)) '.');
  (match Json.of_string "{\"u\": \"\\u20ac\"}" with
  | Ok j ->
    Alcotest.(check (option string))
      "unicode escape decodes to UTF-8" (Some "\xe2\x82\xac")
      (Option.bind (Json.member "u" j) Json.to_string_opt)
  | Error e -> Alcotest.failf "unicode parse failed: %s" e);
  Alcotest.(check string)
    "non-finite floats print as null" "null"
    (Json.to_string (Json.Float Float.nan))

(* --- disabled path ----------------------------------------------------- *)

(* The acceptance bar for production overhead: a disabled registry and
   trace must not allocate on the hot path (their operations are a
   boolean test).  10k ops at even one word each would show up as >80kB
   here; the slack covers the Gc.allocated_bytes float boxes only. *)
let test_disabled_no_alloc () =
  let c = Metrics.counter Metrics.disabled "x" in
  let g = Metrics.gauge Metrics.disabled "g" in
  let h = Metrics.histogram Metrics.disabled "h" in
  let tr = Trace.disabled in
  Metrics.Counter.incr c ~slot:0;
  Trace.event tr "warm";
  Trace.finish tr (Trace.start tr "warm");
  let a0 = Gc.allocated_bytes () in
  for i = 0 to 9_999 do
    Metrics.Counter.incr c ~slot:0;
    Metrics.Counter.add c ~slot:1 i;
    Metrics.Gauge.set g 1.0;
    Metrics.Histogram.observe h 2.0;
    Trace.event tr "e";
    Trace.finish tr (Trace.start tr "s")
  done;
  let a1 = Gc.allocated_bytes () in
  let delta = a1 -. a0 in
  if delta > 256.0 then
    Alcotest.failf "disabled instruments allocated %.0f bytes over 10k ops"
      delta

(* --- solver instrumentation ------------------------------------------- *)

(* SOS1 groups under a shared budget — the DVS formulation's shape (same
   as the resilience suite). *)
let sos1_model ~groups ~modes ~budget =
  let m = Model.create () in
  let k =
    Array.init groups (fun _ -> Array.init modes (fun _ -> Model.binary m))
  in
  let cost g j = float_of_int (((g * 7) + (j * 3)) mod 11) +. 1.0 in
  let time g j =
    float_of_int (modes - j) +. (0.25 *. float_of_int (g mod 3))
  in
  for g = 0 to groups - 1 do
    Model.add_constraint m
      (Expr.of_terms (List.init modes (fun j -> (1.0, k.(g).(j)))))
      Model.Eq 1.0
  done;
  let all w =
    Expr.of_terms
      (List.concat_map
         (fun g -> List.init modes (fun j -> (w g j, k.(g).(j))))
         (List.init groups Fun.id))
  in
  Model.add_constraint m (all time) Model.Le budget;
  Model.set_objective m Model.Minimize (all cost);
  (m, k)

let all_fastest k ~modes =
  Array.to_list k
  |> List.concat_map (fun group ->
         List.init modes (fun j ->
             (group.(j), if j = modes - 1 then 1.0 else 0.0)))

(* n-item 0/1 knapsack whose LP relaxation is fractional at every level,
   so branch and bound explores a real tree (the SOS1 model above solves
   at the root). *)
let knapsack_n n =
  let m = Model.create () in
  let xs = Array.init n (fun _ -> Model.binary m) in
  let w i = float_of_int (((i * 13) mod 19) + 5) in
  let v i = float_of_int (((i * 17) mod 23) + 7) in
  let total = Array.init n w |> Array.fold_left ( +. ) 0.0 in
  Model.add_constraint m
    (Expr.of_terms (List.init n (fun i -> (w i, xs.(i)))))
    Model.Le (0.45 *. total);
  Model.set_objective m Model.Maximize
    (Expr.of_terms (List.init n (fun i -> (v i, xs.(i)))));
  m

(* One instrumented solve with a deterministic injected crash; returns
   the stable projections that must match at any job count. *)
let stable_run jobs =
  let obs = Obs.create () in
  let fault = Fault.make ~crash_at_nodes:[ 1 ] () in
  let m, k = sos1_model ~groups:8 ~modes:3 ~budget:26.0 in
  let config =
    Solver.Config.make ~jobs ~fault ~obs ()
    |> Solver.Config.with_sos1
         (Array.to_list k |> List.map Array.to_list)
    |> Solver.Config.with_warm_start (all_fastest k ~modes:3)
  in
  let r = Solver.solve ~config m in
  (match r.Solver.outcome with
  | Solver.Degraded _ -> ()
  | o ->
    Alcotest.failf "jobs=%d: expected the injected crash to degrade, got %a"
      jobs Solver.pp_outcome o);
  ( Json.to_string
      (Metrics.stable_subset (Metrics.snapshot (Obs.metrics obs))),
    Trace.stable_set (Obs.trace obs) )

let test_stable_sets_match_across_jobs () =
  let m1, t1 = stable_run 1 in
  let m4, t4 = stable_run 4 in
  Alcotest.(check string) "stable metrics subsets identical" m1 m4;
  Alcotest.(check (list string)) "stable event sets identical" t1 t4;
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec at i = i + nn <= nh && (String.sub hay i nn = needle || at (i + 1)) in
    at 0
  in
  let has name = List.exists (fun s -> contains s name) t1 in
  Alcotest.(check bool) "fault.crash in stable set" true (has "fault.crash");
  Alcotest.(check bool)
    "solver.warm_start in stable set" true (has "solver.warm_start")

(* The issue's acceptance check: the JSONL trace parses, every line
   passes schema validation, and the per-worker node counts sum to the
   solver's reported node total. *)
let test_trace_worker_nodes_sum () =
  let obs = Obs.create () in
  let m = knapsack_n 14 in
  let config = Solver.Config.make ~jobs:4 ~obs () in
  let r = Solver.solve ~config m in
  Alcotest.(check bool)
    "tree search did real work" true (r.Solver.stats.Solver.nodes > 1);
  let file = Filename.temp_file "dvs_obs" ".jsonl" in
  let oc = open_out file in
  Trace.write_jsonl (Obs.trace obs) oc;
  close_out oc;
  let ic = open_in file in
  let text = really_input_string ic (in_channel_length ic) in
  close_in ic;
  Sys.remove file;
  let lines =
    String.split_on_char '\n' text
    |> List.filter (fun l -> String.trim l <> "")
  in
  Alcotest.(check bool) "trace is non-empty" true (List.length lines > 1);
  let sum =
    List.fold_left
      (fun acc line ->
        match Json.of_string line with
        | Error e -> Alcotest.failf "unparseable JSONL line: %s" e
        | Ok j ->
          (match Schema.validate_trace_line j with
          | Ok () -> ()
          | Error e -> Alcotest.failf "trace line schema violation: %s" e);
          if
            Option.bind (Json.member "name" j) Json.to_string_opt
            = Some "solver.worker"
          then
            acc
            + Option.value ~default:0
                (Option.bind (Json.member "attrs" j) (fun a ->
                     Option.bind (Json.member "nodes" a) Json.to_int))
          else acc)
      0 lines
  in
  Alcotest.(check int)
    "per-worker trace node counts sum to stats.nodes"
    r.Solver.stats.Solver.nodes sum;
  Alcotest.(check int)
    "solver.nodes counter agrees"
    r.Solver.stats.Solver.nodes
    (Metrics.Counter.value (Metrics.counter (Obs.metrics obs) "solver.nodes"))

(* Lp_cache evictions and hit/miss deltas must surface both in the
   per-solve stats and in the registry counters. *)
let test_cache_counters_surface () =
  let cache = Lp_cache.create ~max_entries:2 () in
  let obs = Obs.metrics_only () in
  let m = knapsack_n 12 in
  let config = Solver.Config.make ~jobs:1 ~cache ~cache_depth:8 ~obs () in
  let r = Solver.solve ~config m in
  let stats = r.Solver.stats in
  Alcotest.(check bool)
    "tiny cache evicts during the solve" true (stats.Solver.cache_evictions > 0);
  let value name = Metrics.Counter.value (Metrics.counter (Obs.metrics obs) name) in
  Alcotest.(check int)
    "lp_cache.evictions counter matches stats"
    stats.Solver.cache_evictions (value "lp_cache.evictions");
  Alcotest.(check int)
    "lp_cache.hits counter matches stats" stats.Solver.cache_hits
    (value "lp_cache.hits");
  Alcotest.(check int)
    "lp_cache.misses counter matches stats" stats.Solver.cache_misses
    (value "lp_cache.misses")

(* --- snapshots and export schemas ------------------------------------- *)

let test_metrics_snapshot_roundtrip () =
  let mx = Metrics.create () in
  let c = Metrics.counter mx ~stability:Metrics.Stable "a.count" in
  Metrics.Counter.add c ~slot:2 5;
  Metrics.Counter.incr
    (Metrics.counter mx ~stability:Metrics.Volatile "b.count")
    ~slot:0;
  Metrics.Gauge.set (Metrics.gauge mx "g") 2.5;
  Metrics.Histogram.observe
    (Metrics.histogram mx ~stability:Metrics.Stable "h")
    0.25;
  let snap = Metrics.snapshot ~meta:[ ("seed", Json.Int 42) ] mx in
  (match Schema.validate_metrics snap with
  | Ok () -> ()
  | Error e -> Alcotest.failf "snapshot schema violation: %s" e);
  (match Json.of_string (Json.to_string snap) with
  | Ok j ->
    Alcotest.(check bool) "snapshot JSON round-trips" true (Json.equal snap j)
  | Error e -> Alcotest.failf "snapshot re-parse failed: %s" e);
  let stable = Metrics.stable_subset snap in
  let counters =
    match Json.member "counters" stable with
    | Some c -> c
    | None -> Alcotest.fail "stable subset lost its counters section"
  in
  Alcotest.(check bool)
    "volatile counter dropped" true
    (Json.member "b.count" counters = None);
  Alcotest.(check bool)
    "stable counter kept" true
    (Json.member "a.count" counters <> None);
  Alcotest.(check bool)
    "wall section dropped" true
    (Json.member "wall" stable = None)

let test_bench_summary_roundtrip () =
  let obs = Obs.metrics_only () in
  let m, _ = sos1_model ~groups:6 ~modes:3 ~budget:20.0 in
  let r = Solver.solve ~config:(Solver.Config.make ~jobs:1 ~obs ()) m in
  let j =
    Schema.bench_summary ~experiment_walls:[ ("unit", 0.25) ]
      ~metrics:(Obs.metrics obs) ~experiments:[ "unit" ] ~wall_seconds:0.5 ()
  in
  (match Schema.validate_bench j with
  | Ok () -> ()
  | Error e -> Alcotest.failf "bench schema violation: %s" e);
  (match Json.of_string (Json.to_string j) with
  | Ok j' ->
    Alcotest.(check bool) "bench JSON round-trips" true (Json.equal j j')
  | Error e -> Alcotest.failf "bench re-parse failed: %s" e);
  Alcotest.(check (option int))
    "bb_nodes total matches the solve"
    (Some r.Solver.stats.Solver.nodes)
    (Option.bind (Json.member "bb_nodes" j) Json.to_int);
  Alcotest.(check (option int))
    "one solve recorded" (Some 1)
    (Option.bind (Json.member "solves" j) Json.to_int);
  Alcotest.(check bool)
    "per-experiment wall recorded" true
    (Option.bind (Json.member "experiment_wall_seconds" j)
       (Json.member "unit")
    <> None)

(* --- pipeline + simulator instrumentation ------------------------------ *)

(* Memory-bound streaming phase + compute-bound phase, small enough to
   profile quickly (same shape as the resilience suite). *)
let test_src =
  "int a[512]; int s; int i; int j;\n\
   s = 0;\n\
   for (i = 0; i < 512; i = i + 1) { s = s + a[i]; }\n\
   for (i = 0; i < 50; i = i + 1) {\n\
   \  for (j = 0; j < 10; j = j + 1) { s = s + i * j; }\n\
   }"

let tiny_config =
  Dvs_machine.Config.default
    ~l1d:{ Dvs_machine.Config.size_bytes = 128; assoc = 2; block_bytes = 16;
           latency_cycles = 1 }
    ~l2:{ Dvs_machine.Config.size_bytes = 512; assoc = 2; block_bytes = 16;
          latency_cycles = 4 }
    ~dram_latency:1e-6 ()

let compiled = lazy (Dvs_lang.Lower.compile_string test_src)

let memory () =
  let _, layout = Lazy.force compiled in
  Array.init layout.Dvs_lang.Lower.memory_words (fun i -> i mod 17)

let profile_cached =
  lazy
    (let cfg, _ = Lazy.force compiled in
     Dvs_profile.Profile.collect tiny_config cfg ~memory:(memory ()))

let mid_deadline () =
  let p = Lazy.force profile_cached in
  let n = Dvs_power.Mode.size tiny_config.Dvs_machine.Config.mode_table in
  let t_fast = Dvs_profile.Profile.pinned_time p ~mode:(n - 1) in
  let t_slow = Dvs_profile.Profile.pinned_time p ~mode:0 in
  t_fast +. (0.5 *. (t_slow -. t_fast))

(* Exhausting every pivot budget forces the ladder down past the MILP
   rungs; the trace must carry the whole story: fault firings, rung
   rejections, the accepted rung, and the verification simulator's
   events — while the registry picks up the simulator's stable
   counters. *)
let test_pipeline_ladder_events () =
  let obs = Obs.create () in
  let solver =
    Solver.Config.make ~jobs:1 ~max_nodes:500
      ~fault:(Fault.make ~exhaust_pivots_every:1 ())
      ()
  in
  (* The continuous-bound engine is ablated here: its rounded seed would
     ride out pivot exhaustion inside the MILP rung and the ladder would
     have no rejections to trace. *)
  let config =
    Pipeline.Config.make ~solver ~continuous_bound:false ()
    |> Pipeline.Config.with_obs obs
  in
  let p = Lazy.force profile_cached in
  let r =
    Pipeline.optimize_multi ~config
      ~regulator:tiny_config.Dvs_machine.Config.regulator ~memory:(memory ())
      [ { Formulation.profile = p; weight = 1.0; deadline = mid_deadline () } ]
  in
  Alcotest.(check bool)
    "ladder descended" true (r.Pipeline.descents <> []);
  let names =
    Trace.entries (Obs.trace obs) |> List.map (fun e -> e.Trace.name)
  in
  let has n = List.mem n names in
  List.iter
    (fun n ->
      Alcotest.(check bool) (n ^ " recorded in trace") true (has n))
    [ "pipeline.optimize"; "pipeline.rung_reject"; "pipeline.rung_accept";
      "pipeline.verify"; "fault.pivot_exhaustion"; "sim.run";
      "solver.solve" ];
  let snap = Metrics.snapshot (Obs.metrics obs) in
  let stable = Metrics.stable_subset snap in
  match
    Option.bind (Json.member "counters" stable)
      (Json.member "sim.cycles.dependent")
  with
  | Some _ -> ()
  | None ->
    Alcotest.fail "verification simulator's stable counters not in snapshot"

let suite =
  [ Alcotest.test_case "json round-trip" `Quick test_json_roundtrip;
    Alcotest.test_case "disabled path does not allocate" `Quick
      test_disabled_no_alloc;
    Alcotest.test_case "stable sets match at jobs=1 and jobs=4" `Quick
      test_stable_sets_match_across_jobs;
    Alcotest.test_case "trace worker node counts sum to total" `Quick
      test_trace_worker_nodes_sum;
    Alcotest.test_case "lp_cache counters surface" `Quick
      test_cache_counters_surface;
    Alcotest.test_case "metrics snapshot round-trips" `Quick
      test_metrics_snapshot_roundtrip;
    Alcotest.test_case "bench summary round-trips" `Quick
      test_bench_summary_roundtrip;
    Alcotest.test_case "pipeline ladder events" `Quick
      test_pipeline_ladder_events ]
