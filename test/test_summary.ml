(* Summarized-verification suite: Verify.Session's tape replay and
   incremental splicing must be *bit-identical* to the cycle-accurate
   simulator — not approximately equal.  The whole point of the summary
   layer is that a deadline sweep can replay one recorded execution per
   candidate schedule; these tests are the license for that, checking
   structural equality of the full run_stats record (floats compared by
   bits, architectural state included) across random programs, random
   schedules, chained incremental mutations, parallel sweeps at jobs=1
   and jobs=4, and solver crash injection. *)

module Cpu = Dvs_machine.Cpu
module Config = Dvs_machine.Config
module Schedule = Dvs_core.Schedule
module Verify = Dvs_core.Verify
module Pipeline = Dvs_core.Pipeline
module Formulation = Dvs_core.Formulation

let jobs_list =
  match Sys.getenv_opt "DVS_FAULT_JOBS" with
  | Some s -> [ int_of_string (String.trim s) ]
  | None -> [ 1; 4 ]

(* Small multi-mode machine with real cache misses: L1/L2 tiny enough
   that the generated array walks miss, so the tape carries the full op
   vocabulary (compute, hit, wait, clear, both miss kinds). *)
let machine =
  Config.default
    ~l1d:{ Config.size_bytes = 512; assoc = 2; block_bytes = 16;
           latency_cycles = 1 }
    ~l2:{ Config.size_bytes = 2048; assoc = 2; block_bytes = 16;
          latency_cycles = 4 }
    ~dram_latency:8e-7
    ~regulator:(Dvs_power.Switch_cost.regulator ~capacitance:0.05e-6 ())
    ()

let n_modes = Dvs_power.Mode.size machine.Config.mode_table

(* Seed-parameterized program in the same family as test_dvs's random
   pipeline programs: loops, arrays, data-dependent branches. *)
let program ~seed =
  let rng = Random.State.make [| 0x50f7; seed |] in
  let arr = 64 + Random.State.int rng 192 in
  let outer = 2 + Random.State.int rng 4 in
  let inner = 8 + Random.State.int rng 24 in
  let stride = 1 + Random.State.int rng 12 in
  let branch_mod = 2 + Random.State.int rng 3 in
  let src =
    Printf.sprintf
      "int a[%d]; int s; int i; int j;\n\
       for (i = 0; i < %d; i = i + 1) {\n\
       \  for (j = 0; j < %d; j = j + 1) {\n\
       \    s = s + a[(j * %d) %% %d];\n\
       \    if (s %% %d == 0) { s = s + j; } else { s = s - 1; }\n\
       \  }\n\
       \  a[i %% %d] = s;\n\
       }"
      arr outer inner stride arr branch_mod arr
  in
  let cfg, layout = Dvs_lang.Lower.compile_string src in
  let mem =
    Array.init layout.Dvs_lang.Lower.memory_words (fun i -> (i * 7) mod 97)
  in
  (cfg, mem)

let random_schedule rng cfg =
  { Schedule.entry_mode = Random.State.int rng n_modes;
    edge_mode =
      Array.init
        (Array.length (Dvs_ir.Cfg.edges cfg))
        (fun _ -> Random.State.int rng n_modes) }

(* The ground truth a session must match: a fresh cycle-accurate run of
   the schedule. *)
let direct cfg mem s =
  Cpu.run
    ~rc:
      (Cpu.Run_config.make ~initial_mode:s.Schedule.entry_mode
         ~edge_modes:(Schedule.edge_modes s cfg) ())
    machine cfg ~memory:mem

let bits = Int64.bits_of_float

let check_stats what (expected : Cpu.run_stats) (actual : Cpu.run_stats) =
  (* Bit-exact on the floats the acceptance criteria name... *)
  List.iter
    (fun (field, e, a) ->
      if bits e <> bits a then
        Alcotest.failf "%s: %s differs: %.17g vs %.17g" what field e a)
    [ ("time", expected.Cpu.time, actual.Cpu.time);
      ("energy", expected.Cpu.energy, actual.Cpu.energy);
      ("stall_time", expected.Cpu.stall_time, actual.Cpu.stall_time);
      ("transition_time", expected.Cpu.transition_time,
       actual.Cpu.transition_time);
      ("transition_energy", expected.Cpu.transition_energy,
       actual.Cpu.transition_energy);
      ("miss_busy_time", expected.Cpu.miss_busy_time,
       actual.Cpu.miss_busy_time) ];
  List.iter
    (fun (field, e, a) ->
      if e <> a then Alcotest.failf "%s: %s differs: %d vs %d" what field e a)
    [ ("dyn_instrs", expected.Cpu.dyn_instrs, actual.Cpu.dyn_instrs);
      ("mode_transitions", expected.Cpu.mode_transitions,
       actual.Cpu.mode_transitions);
      ("overlap_cycles", expected.Cpu.overlap_cycles,
       actual.Cpu.overlap_cycles);
      ("dependent_cycles", expected.Cpu.dependent_cycles,
       actual.Cpu.dependent_cycles);
      ("cache_hit_cycles", expected.Cpu.cache_hit_cycles,
       actual.Cpu.cache_hit_cycles) ];
  (* ...and structural equality on everything, architectural state
     included (assumption 1 made checkable). *)
  if expected <> actual then
    Alcotest.failf "%s: run_stats records differ structurally" what

(* --- Session.check vs cycle-accurate, 25 seeds ------------------------- *)

let test_session_matches () =
  for seed = 0 to 24 do
    let cfg, mem = program ~seed in
    let session = Verify.Session.create machine cfg ~memory:mem in
    let rng = Random.State.make [| 0xab1e; seed |] in
    for trial = 0 to 2 do
      let s = random_schedule rng cfg in
      let v =
        Verify.Session.check session ~schedule:s ~deadline:1.0
          ~predicted_energy:1e-6
      in
      check_stats
        (Printf.sprintf "seed %d trial %d" seed trial)
        (direct cfg mem s) v.Verify.stats;
      if v.Verify.token = 0 then
        Alcotest.failf "seed %d trial %d: warm check returned token 0" seed
          trial
    done
  done

(* --- check_incremental splicing, chained mutations, 25 seeds ----------- *)

let mutate rng s =
  let n = Array.length s.Schedule.edge_mode in
  let edge_mode = Array.copy s.Schedule.edge_mode in
  let kind = Random.State.int rng 4 in
  if kind = 3 || n = 0 then
    (* Entry-mode change: divergence from position 0. *)
    { Schedule.entry_mode = (s.Schedule.entry_mode + 1) mod n_modes;
      edge_mode }
  else begin
    (* Flip 1-3 edges, biased toward late edge indices so the splice
       actually reuses a prefix. *)
    let flips = 1 + Random.State.int rng 3 in
    for _ = 1 to flips do
      let i =
        if Random.State.bool rng then n - 1 - Random.State.int rng (max 1 (n / 2))
        else Random.State.int rng n
      in
      edge_mode.(i) <- Random.State.int rng n_modes
    done;
    { s with Schedule.edge_mode }
  end

let test_incremental_matches () =
  for seed = 0 to 24 do
    let cfg, mem = program ~seed in
    let session = Verify.Session.create machine cfg ~memory:mem in
    let rng = Random.State.make [| 0x1ac3; seed |] in
    let s0 = random_schedule rng cfg in
    let v0 =
      Verify.Session.check session ~schedule:s0 ~deadline:1.0
        ~predicted_energy:1e-6
    in
    check_stats (Printf.sprintf "seed %d base" seed) (direct cfg mem s0)
      v0.Verify.stats;
    let s = ref s0 and prev = ref v0 in
    for step = 0 to 4 do
      (* Step 2 re-checks the identical schedule: the zero-divergence
         path must still produce exact stats and a fresh token. *)
      let s' = if step = 2 then !s else mutate rng !s in
      let v =
        Verify.Session.check_incremental session ~against:!prev ~schedule:s'
          ~deadline:1.0 ~predicted_energy:1e-6
      in
      check_stats
        (Printf.sprintf "seed %d step %d" seed step)
        (direct cfg mem s') v.Verify.stats;
      if v.Verify.token = 0 || v.Verify.token = !prev.Verify.token then
        Alcotest.failf "seed %d step %d: bad token %d" seed step
          v.Verify.token;
      s := s';
      prev := v
    done
  done

(* --- cold vs warm across an entire sweep, jobs=1 and jobs=4 ------------ *)

let sweep_program = lazy (program ~seed:7)

let sweep_deadlines p ~points =
  let t_fast = Dvs_profile.Profile.pinned_time p ~mode:(n_modes - 1) in
  let t_slow = Dvs_profile.Profile.pinned_time p ~mode:0 in
  Array.init points (fun i ->
      let frac = 0.15 +. (0.75 *. float_of_int i /. float_of_int (points - 1)) in
      t_fast +. (frac *. (t_slow -. t_fast)))

let test_sweep_cold_vs_warm () =
  let cfg, mem = Lazy.force sweep_program in
  let p = Dvs_profile.Profile.collect machine cfg ~memory:mem in
  let deadlines = sweep_deadlines p ~points:4 in
  List.iter
    (fun jobs ->
      let run ~cold_verify =
        let config =
          Pipeline.Config.make
            ~solver:
              (Dvs_milp.Solver.Config.make ~jobs ~max_nodes:1500
                 ~time_limit:8.0 ())
            ~cold_verify ()
        in
        Pipeline.optimize_sweep ~config ~verify_config:machine ~profile:p
          machine cfg ~memory:mem ~deadlines
      in
      let cold = run ~cold_verify:true and warm = run ~cold_verify:false in
      Array.iteri
        (fun i (c : Pipeline.result) ->
          let w = warm.Pipeline.results.(i) in
          match (c.Pipeline.verification, w.Pipeline.verification) with
          | None, None -> ()
          | Some vc, Some vw ->
            check_stats
              (Printf.sprintf "jobs %d point %d" jobs i)
              vc.Verify.stats vw.Verify.stats;
            Alcotest.(check bool)
              "meets_deadline agrees" vc.Verify.meets_deadline
              vw.Verify.meets_deadline;
            if bits vc.Verify.energy_error <> bits vw.Verify.energy_error
            then
              Alcotest.failf "jobs %d point %d: energy_error differs" jobs i
          | _ ->
            Alcotest.failf "jobs %d point %d: verification presence differs"
              jobs i)
        cold.Pipeline.results)
    jobs_list

(* A warm session shared across the whole grid must agree with itself
   cold: same session, checks in sweep order, every report equal to a
   fresh cycle-accurate run. *)
let test_session_reuse_across_grid () =
  let cfg, mem = Lazy.force sweep_program in
  let session = Verify.Session.create machine cfg ~memory:mem in
  let rng = Random.State.make [| 0x9f1d |] in
  let prev = ref None in
  for i = 0 to 9 do
    let s = random_schedule rng cfg in
    let v =
      match !prev with
      | None ->
        Verify.Session.check session ~schedule:s ~deadline:1.0
          ~predicted_energy:1e-6
      | Some p ->
        Verify.Session.check_incremental session ~against:p ~schedule:s
          ~deadline:1.0 ~predicted_energy:1e-6
    in
    check_stats (Printf.sprintf "grid point %d" i) (direct cfg mem s)
      v.Verify.stats;
    prev := Some v
  done

(* --- exactness survives solver crash injection ------------------------- *)

let test_fault_injection_exact () =
  let cfg, mem = Lazy.force sweep_program in
  let p = Dvs_profile.Profile.collect machine cfg ~memory:mem in
  let deadline = (sweep_deadlines p ~points:4).(2) in
  List.iter
    (fun jobs ->
      let config =
        Pipeline.Config.make
          ~solver:
            (Dvs_milp.Solver.Config.make ~jobs ~max_nodes:1500
               ~time_limit:8.0 ()
            |> Dvs_milp.Solver.Config.with_fault
                 (Dvs_milp.Fault.make ~crash_every:3 ()))
          ()
      in
      let r =
        Pipeline.optimize_multi ~config ~verify_config:machine
          ~regulator:machine.Config.regulator ~memory:mem
          [ { Formulation.profile = p; weight = 1.0; deadline } ]
      in
      match (r.Pipeline.schedule, r.Pipeline.verification) with
      | Some s, Some v ->
        check_stats
          (Printf.sprintf "fault jobs %d" jobs)
          (direct cfg mem s) v.Verify.stats
      | _ ->
        (* Crash containment may legitimately end with no incumbent;
           only a produced schedule must verify exactly. *)
        ())
    jobs_list

(* --- deadline tolerance is the single source of truth ------------------ *)

let test_deadline_tolerance () =
  let cfg, mem = Lazy.force sweep_program in
  let session = Verify.Session.create machine cfg ~memory:mem in
  let s = Schedule.uniform cfg 0 in
  let v =
    Verify.Session.check session ~schedule:s ~deadline:1.0
      ~predicted_energy:1e-6
  in
  let t = v.Verify.stats.Cpu.time in
  let at d =
    (Verify.Session.check session ~schedule:s ~deadline:d
       ~predicted_energy:1e-6)
      .Verify.meets_deadline
  in
  Alcotest.(check bool) "inside tolerance" true
    (at (t /. (1.0 +. (Verify.deadline_tolerance /. 2.0))));
  Alcotest.(check bool) "outside tolerance" false
    (at (t /. (1.0 +. (2.0 *. Verify.deadline_tolerance))))

let suite =
  [ Alcotest.test_case "session matches cycle-accurate (25 seeds)" `Slow
      test_session_matches;
    Alcotest.test_case "incremental splice matches (25 seeds)" `Slow
      test_incremental_matches;
    Alcotest.test_case "cold vs warm sweep equality (jobs 1/4)" `Slow
      test_sweep_cold_vs_warm;
    Alcotest.test_case "session reuse across a grid" `Quick
      test_session_reuse_across_grid;
    Alcotest.test_case "crash injection stays exact (jobs 1/4)" `Slow
      test_fault_injection_exact;
    Alcotest.test_case "deadline tolerance boundary" `Quick
      test_deadline_tolerance ]
