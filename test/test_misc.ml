(* Remaining surfaces: the heap, report rendering, the runtime governor,
   LP export of a real formulation, and small odds and ends. *)

let test_heap_sorts () =
  let h = Dvs_milp.Heap.create ~cmp:compare in
  List.iter (Dvs_milp.Heap.push h) [ 5; 1; 4; 1; 3; 9; 2 ];
  Alcotest.(check int) "size" 7 (Dvs_milp.Heap.size h);
  let rec drain acc =
    match Dvs_milp.Heap.pop h with
    | Some x -> drain (x :: acc)
    | None -> List.rev acc
  in
  Alcotest.(check (list int)) "sorted" [ 1; 1; 2; 3; 4; 5; 9 ] (drain [])

let qcheck_heap_property =
  QCheck.Test.make ~name:"heap pops in sorted order" ~count:200
    QCheck.(list int)
    (fun xs ->
      let h = Dvs_milp.Heap.create ~cmp:compare in
      List.iter (Dvs_milp.Heap.push h) xs;
      let rec drain acc =
        match Dvs_milp.Heap.pop h with
        | Some x -> drain (x :: acc)
        | None -> List.rev acc
      in
      drain [] = List.sort compare xs)

let test_table_render () =
  let t =
    Dvs_report.Table.create
      [ ("name", Dvs_report.Table.Left); ("value", Dvs_report.Table.Right) ]
  in
  Dvs_report.Table.add_row t [ "alpha"; "1.5" ];
  Dvs_report.Table.add_rule t;
  Dvs_report.Table.add_row t [ "b"; "22.25" ];
  let s = Dvs_report.Table.render t in
  let lines = String.split_on_char '\n' s in
  Alcotest.(check bool) "header present" true
    (List.exists (fun l -> l = "name   value") lines);
  Alcotest.(check bool) "right aligned" true
    (List.exists (fun l -> l = "b      22.25") lines);
  Alcotest.check_raises "arity"
    (Invalid_argument "Table.add_row: arity mismatch") (fun () ->
      Dvs_report.Table.add_row t [ "only-one" ])

let test_render_surface () =
  let s =
    Dvs_analytical.Sweep.surface ~x_label:"x" ~y_label:"y"
      ~xs:[| 1.0; 2.0 |] ~ys:[| 10.0; 20.0 |]
      (fun x y -> if x = 2.0 && y = 20.0 then None else Some ((x +. y) /. 100.))
  in
  let out = Dvs_report.Render.surface s in
  Alcotest.(check bool) "mentions labels" true
    (String.length out > 0
    && (try ignore (Str.search_forward (Str.regexp_string "peak:") out 0); true
        with Not_found -> false));
  match Dvs_analytical.Sweep.max_point s with
  | Some (x, y, v) ->
    Alcotest.(check (float 1e-9)) "peak value" 0.21 v;
    Alcotest.(check (float 1e-9)) "peak x" 1.0 x;
    Alcotest.(check (float 1e-9)) "peak y" 20.0 y
  | None -> Alcotest.fail "expected a peak"

let test_governor_ramps_up_when_busy () =
  (* Pure compute at mode 0 with a governor: utilization is 1.0, so the
     governor must climb to the fastest mode. *)
  let src = "int s; int i; for (i = 0; i < 20000; i = i + 1) { s = s + i; }" in
  let cfg, _ = Dvs_lang.Lower.compile_string src in
  let machine = Dvs_workloads.Workload.eval_config () in
  let governor = Dvs_core.Baselines.weiser_governor ~interval:5e-6 () in
  let r =
    Dvs_machine.Cpu.run
      ~rc:(Dvs_machine.Cpu.Run_config.make ~initial_mode:0 ~governor ())
      machine cfg ~memory:[||]
  in
  Alcotest.(check int) "climbed two steps" 2 r.Dvs_machine.Cpu.mode_transitions;
  (* Compare with pinned slow: governor must be faster. *)
  let slow =
    Dvs_machine.Cpu.run
      ~rc:(Dvs_machine.Cpu.Run_config.make ~initial_mode:0 ())
      machine cfg ~memory:[||]
  in
  Alcotest.(check bool) "faster than all-slow" true
    (r.Dvs_machine.Cpu.time < slow.Dvs_machine.Cpu.time)

let test_governor_steps_down_when_stalled () =
  (* A DRAM-stall-dominated pointer chase: utilization is low, so from
     the fastest mode the governor must step down. *)
  let src =
    "int a[4096]; int s; int i;\n\
     for (i = 0; i < 4096; i = i + 1) { s = s + a[i]; }"
  in
  let cfg, layout = Dvs_lang.Lower.compile_string src in
  let mem = Array.make layout.Dvs_lang.Lower.memory_words 1 in
  let machine =
    Dvs_machine.Config.default
      ~l1d:{ Dvs_machine.Config.size_bytes = 128; assoc = 2; block_bytes = 16;
             latency_cycles = 1 }
      ~l2:{ Dvs_machine.Config.size_bytes = 512; assoc = 2; block_bytes = 16;
            latency_cycles = 4 }
      ~dram_latency:2e-6 ()
  in
  let governor = Dvs_core.Baselines.weiser_governor ~interval:2e-4 () in
  let r =
    Dvs_machine.Cpu.run
      ~rc:(Dvs_machine.Cpu.Run_config.make ~initial_mode:2 ~governor ())
      machine cfg ~memory:mem
  in
  Alcotest.(check bool) "stepped down" true
    (r.Dvs_machine.Cpu.mode_transitions >= 1)

let test_lp_export_of_formulation () =
  (* Export a real DVS MILP and sanity-check the LP file. *)
  let src = "int s; int i; for (i = 0; i < 50; i = i + 1) { s = s + i; }" in
  let cfg, _ = Dvs_lang.Lower.compile_string src in
  let machine = Dvs_workloads.Workload.eval_config () in
  let p = Dvs_profile.Profile.collect machine cfg ~memory:[||] in
  let f =
    Dvs_core.Formulation.build ~regulator:Dvs_power.Switch_cost.default
      [ { Dvs_core.Formulation.profile = p; weight = 1.0; deadline = 1e-3 } ]
  in
  let s = Dvs_lp.Lp_io.to_lp_string f.Dvs_core.Formulation.model in
  List.iter
    (fun needle ->
      Alcotest.(check bool) (Printf.sprintf "contains %s" needle) true
        (try
           ignore (Str.search_forward (Str.regexp_string needle) s 0);
           true
         with Not_found -> false))
    [ "Minimize"; "Subject To"; "Binary"; "k_e0_m0"; "deadline" ]

let test_mode_index_of () =
  let tbl = Dvs_power.Mode.xscale3 in
  Alcotest.(check int) "middle" 1
    (Dvs_power.Mode.index_of tbl (Dvs_power.Mode.get tbl 1));
  Alcotest.check_raises "absent" Not_found (fun () ->
      ignore
        (Dvs_power.Mode.index_of tbl
           (Dvs_power.Mode.make ~voltage:1.0 ~frequency:123e6)))

let test_expr_algebra () =
  let open Dvs_lp in
  let e =
    Expr.add
      (Expr.of_terms ~const:2.0 [ (1.0, 0); (2.0, 1) ])
      (Expr.of_terms ~const:(-1.0) [ (-1.0, 0); (3.0, 2) ])
  in
  Alcotest.(check (float 1e-12)) "const" 1.0 (Expr.const e);
  Alcotest.(check (float 1e-12)) "x0 cancels" 0.0 (Expr.coeff e 0);
  Alcotest.(check (float 1e-12)) "x1" 2.0 (Expr.coeff e 1);
  Alcotest.(check (float 1e-12)) "eval" (1.0 +. 2.0 +. 3.0)
    (Expr.eval (fun _ -> 1.0) e);
  Alcotest.(check int) "max var" 2 (Expr.max_var e);
  Alcotest.(check int) "nonzero terms" 2 (List.length (Expr.coeffs e))

let qcheck_schedule_roundtrip =
  QCheck.Test.make ~name:"schedule serialization round-trips" ~count:100
    QCheck.(pair (int_range 0 2) (list_of_size (QCheck.Gen.int_range 1 40) (int_range 0 2)))
    (fun (entry_mode, edges) ->
      let s =
        { Dvs_core.Schedule.edge_mode = Array.of_list edges; entry_mode }
      in
      match Dvs_core.Schedule.of_string (Dvs_core.Schedule.to_string s) with
      | Ok s' ->
        s'.Dvs_core.Schedule.entry_mode = s.Dvs_core.Schedule.entry_mode
        && s'.Dvs_core.Schedule.edge_mode = s.Dvs_core.Schedule.edge_mode
      | Error _ -> false)

let test_schedule_parse_errors () =
  List.iter
    (fun text ->
      match Dvs_core.Schedule.of_string text with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "expected parse error for %S" text)
    [ ""; "edge 0 1\n"; "entry x\n"; "entry 1\nedge 5 0\n";
      "entry 1\nbogus\n" ]

let suite =
  [ Alcotest.test_case "heap sorts" `Quick test_heap_sorts;
    QCheck_alcotest.to_alcotest qcheck_schedule_roundtrip;
    Alcotest.test_case "schedule parse errors" `Quick
      test_schedule_parse_errors;
    QCheck_alcotest.to_alcotest qcheck_heap_property;
    Alcotest.test_case "table render" `Quick test_table_render;
    Alcotest.test_case "surface render" `Quick test_render_surface;
    Alcotest.test_case "governor ramps up" `Quick
      test_governor_ramps_up_when_busy;
    Alcotest.test_case "governor steps down" `Quick
      test_governor_steps_down_when_stalled;
    Alcotest.test_case "lp export of formulation" `Quick
      test_lp_export_of_formulation;
    Alcotest.test_case "mode index_of" `Quick test_mode_index_of;
    Alcotest.test_case "expr algebra" `Quick test_expr_algebra ]
