(* Deadline-sweep engine suite: the sweep must be a pure accelerator —
   per-point objectives and schedules identical to independent cold
   solves, at any worker/instance count, with or without injected
   faults — and every cut it separates must be a valid inequality for
   the integer feasible set it is tagged for. *)

module Solver = Dvs_milp.Solver
module Sweep = Dvs_milp.Sweep
module Cuts = Dvs_milp.Cuts
module Fault = Dvs_milp.Fault
module Model = Dvs_lp.Model
module Expr = Dvs_lp.Expr
module Simplex = Dvs_lp.Simplex

let jobs_list =
  match Sys.getenv_opt "DVS_FAULT_JOBS" with
  | Some s -> [ int_of_string (String.trim s) ]
  | None -> [ 1; 4 ]

let check_float ?(eps = 1e-6) what expected actual =
  if Float.abs (expected -. actual) > eps then
    Alcotest.failf "%s: expected %.9g, got %.9g" what expected actual

(* Seeded SOS1-under-deadline model in the DVS formulation's shape, with
   generic (noise-perturbed) costs so the optimum is unique and schedule
   comparisons are meaningful.  Returns the model, the mode binaries,
   the deadline row's insertion-order index and the per-mode times. *)
let sweep_model ~seed ~groups ~modes =
  let rng = Random.State.make [| 0x5eed; seed |] in
  let m = Model.create () in
  let k =
    Array.init groups (fun _ -> Array.init modes (fun _ -> Model.binary m))
  in
  let noise () = Random.State.float rng 0.01 in
  let cost =
    Array.init groups (fun g ->
        Array.init modes (fun j ->
            float_of_int (((g * 7) + (j * 3)) mod 11) +. 1.0 +. noise ()))
  in
  let time =
    Array.init groups (fun g ->
        Array.init modes (fun j ->
            float_of_int (modes - j)
            +. (0.25 *. float_of_int (g mod 3))
            +. noise ()))
  in
  for g = 0 to groups - 1 do
    Model.add_constraint m
      (Expr.of_terms (List.init modes (fun j -> (1.0, k.(g).(j)))))
      Model.Eq 1.0
  done;
  let all w =
    Expr.of_terms
      (List.concat_map
         (fun g -> List.init modes (fun j -> (w.(g).(j), k.(g).(j))))
         (List.init groups Fun.id))
  in
  let t_max =
    Array.fold_left
      (fun acc row -> acc +. Array.fold_left Float.max neg_infinity row)
      0.0 time
  in
  Model.add_constraint m ~name:"deadline" (all time) Model.Le t_max;
  Model.set_objective m Model.Minimize (all cost);
  let deadline_row = groups in
  (m, k, deadline_row, time)

let sos1_groups k = Array.to_list (Array.map Array.to_list k)

(* A grid of feasible deadlines from just above the all-fastest schedule
   (tightest) up to near the all-slowest one (loosest). *)
let deadline_grid ~time ~points =
  let fold f init =
    Array.fold_left
      (fun acc row -> f acc (Array.fold_left f init row))
      init time
  in
  let t_min = Array.fold_left (fun acc row ->
      acc +. Array.fold_left Float.min infinity row) 0.0 time
  and t_max = Array.fold_left (fun acc row ->
      acc +. Array.fold_left Float.max neg_infinity row) 0.0 time
  in
  ignore (fold : (float -> float -> float) -> float -> float);
  let lo = t_min *. 1.02 and hi = t_max *. 0.92 in
  Array.init points (fun i ->
      lo +. ((hi -. lo) *. float_of_int i /. float_of_int (max 1 (points - 1))))

let objective_exn what (r : Solver.result) =
  match r.Solver.solution with
  | Some s -> s.Simplex.objective
  | None ->
      Alcotest.failf "%s: no solution (outcome %a)" what Solver.pp_outcome
        r.Solver.outcome

let rounded_schedule (r : Solver.result) k =
  match r.Solver.solution with
  | None -> Alcotest.fail "no solution to round"
  | Some s ->
      Array.map
        (fun group ->
          Array.map (fun v -> int_of_float (Float.round s.Simplex.values.(v)))
            group)
        k

(* Objective of a rounded schedule evaluated exactly on the model — the
   raw LP objective of the same integer point can carry ~1e-9 float fuzz
   from basic binaries sitting at 0.9999999998, so the 1e-9 equality
   claim is made on the model evaluation. *)
let schedule_objective m k schedule =
  let x = Array.make (Model.num_vars m) 0.0 in
  Array.iteri
    (fun g group ->
      Array.iteri (fun j v -> x.(v) <- float_of_int schedule.(g).(j)) group)
    k;
  let _, obj = Model.objective m in
  Expr.eval (fun v -> x.(v)) obj

let config ~jobs ~k =
  Solver.Config.make ~jobs ()
  |> Solver.Config.with_sos1 (sos1_groups k)

let cold_solve ~jobs ~k model deadline_row d =
  let mp = Model.copy model in
  Model.set_constraint_rhs mp deadline_row d;
  Solver.solve ~config:(config ~jobs ~k) mp

(* --- Sweep vs independent cold solves --------------------------------- *)

(* The core equivalence property (25 seeds, jobs=1 and jobs=4): every
   sweep point's objective matches an independent cold solve to 1e-9 and
   the rounded mode schedules are identical. *)
let test_sweep_matches_cold () =
  List.iter
    (fun jobs ->
      for seed = 0 to 24 do
        let m, k, deadline_row, time =
          sweep_model ~seed ~groups:4 ~modes:3
        in
        let deadlines = deadline_grid ~time ~points:4 in
        let cfg =
          config ~jobs ~k
          |> Solver.Config.with_branching Solver.Config.Pseudocost_gub
        in
        let sw =
          Sweep.run ~config:cfg ~model:m ~deadline_row ~deadlines ()
        in
        Array.iteri
          (fun i (p : Sweep.point) ->
            let d = deadlines.(i) in
            check_float ~eps:1e-9 "sweep point deadline" d p.Sweep.deadline;
            let cold = cold_solve ~jobs ~k m deadline_row d in
            let what =
              Printf.sprintf "seed %d jobs %d deadline %.3f" seed jobs d
            in
            check_float ~eps:1e-6 what
              (objective_exn what cold)
              (objective_exn what p.Sweep.result);
            let sched_sweep = rounded_schedule p.Sweep.result k
            and sched_cold = rounded_schedule cold k in
            if sched_sweep <> sched_cold then
              Alcotest.failf "%s: schedules differ" what;
            check_float ~eps:1e-9 (what ^ " (rounded objective)")
              (schedule_objective m k sched_cold)
              (schedule_objective m k sched_sweep))
          sw.Sweep.points
      done)
    jobs_list

(* Parallel instances must not change any point's answer either. *)
let test_sweep_instances_match () =
  let m, k, deadline_row, time = sweep_model ~seed:7 ~groups:5 ~modes:3 in
  let deadlines = deadline_grid ~time ~points:6 in
  let cfg = config ~jobs:1 ~k in
  let solo = Sweep.run ~config:cfg ~model:m ~deadline_row ~deadlines () in
  let quad =
    Sweep.run ~config:cfg ~instances:4 ~model:m ~deadline_row ~deadlines ()
  in
  Array.iteri
    (fun i (p : Sweep.point) ->
      let q = quad.Sweep.points.(i) in
      let what = Printf.sprintf "instances point %d" i in
      check_float ~eps:1e-9 what
        (objective_exn what p.Sweep.result)
        (objective_exn what q.Sweep.result);
      if rounded_schedule p.Sweep.result k <> rounded_schedule q.Sweep.result k
      then Alcotest.failf "%s: schedules differ" what)
    solo.Sweep.points

(* Tightest-first lifting: every point after the tightest should start
   from a lifted incumbent, and the counter must agree. *)
let test_sweep_warm_lifting () =
  let m, k, deadline_row, time = sweep_model ~seed:3 ~groups:4 ~modes:3 in
  let deadlines = deadline_grid ~time ~points:5 in
  let sw =
    Sweep.run ~config:(config ~jobs:1 ~k) ~model:m ~deadline_row ~deadlines ()
  in
  let lifted =
    Array.to_list sw.Sweep.points
    |> List.filter (fun p -> p.Sweep.warm_started)
    |> List.length
  in
  Alcotest.(check int) "instances_warm_started agrees" lifted
    sw.Sweep.stats.Sweep.instances_warm_started;
  if lifted < Array.length deadlines - 1 then
    Alcotest.failf "expected %d lifted points, got %d"
      (Array.length deadlines - 1)
      lifted

(* Crash injection: with every point warm-seeded at its known optimum a
   crashed worker can only lose subtrees, never the incumbent, so the
   sweep's objectives must equal the clean cold ones exactly.  The grid
   is loose enough that the unconstrained optimum is feasible at every
   point, which makes the sweep's own incumbent lifting optimal too. *)
let test_sweep_under_crashes () =
  List.iter
    (fun jobs ->
      let m, k, deadline_row, time = sweep_model ~seed:11 ~groups:4 ~modes:3 in
      let loose = deadline_grid ~time ~points:2 in
      let unconstrained =
        cold_solve ~jobs:1 ~k m deadline_row loose.(Array.length loose - 1)
      in
      let sol =
        match unconstrained.Solver.solution with
        | Some s -> s
        | None -> Alcotest.fail "unconstrained solve failed"
      in
      let span =
        Array.to_list k
        |> List.concat_map Array.to_list
        |> List.fold_left
             (fun acc v ->
               acc
               +. (Float.round sol.Simplex.values.(v)
                  *. Expr.coeff
                       (List.nth (Model.constraints m) deadline_row).Model.expr
                       v))
             0.0
      in
      let deadlines = [| span *. 1.001; span *. 1.05; span *. 1.2 |] in
      let optimum =
        Array.to_list k
        |> List.concat_map Array.to_list
        |> List.map (fun v -> (v, Float.round sol.Simplex.values.(v)))
      in
      let cfg =
        config ~jobs ~k
        |> Solver.Config.with_fault (Fault.make ~crash_every:1 ())
      in
      let sw =
        Sweep.run ~config:cfg
          ~per_point:(fun _ _ c -> Solver.Config.with_warm_start optimum c)
          ~model:m ~deadline_row ~deadlines ()
      in
      Array.iteri
        (fun i (p : Sweep.point) ->
          let what = Printf.sprintf "crash sweep jobs %d point %d" jobs i in
          (match p.Sweep.result.Solver.outcome with
          | Solver.Degraded d when d.Solver.crashes <> [] -> ()
          | o ->
              Alcotest.failf "%s: expected crashes, got %a" what
                Solver.pp_outcome o);
          check_float ~eps:0.0 what sol.Simplex.objective
            (objective_exn what p.Sweep.result))
        sw.Sweep.points)
    jobs_list

(* --- Cut validity ------------------------------------------------------ *)

(* Sample a random integer-feasible point: one mode per group, resampled
   until the deadline row is satisfied. *)
let feasible_point rng ~k ~time ~deadline ~num_vars =
  let groups = Array.length k and modes = Array.length k.(0) in
  let rec attempt tries =
    if tries = 0 then None
    else begin
      let x = Array.make num_vars 0.0 in
      let span = ref 0.0 in
      for g = 0 to groups - 1 do
        let j = Random.State.int rng modes in
        x.(k.(g).(j)) <- 1.0;
        span := !span +. time.(g).(j)
      done;
      if !span <= deadline then Some x else attempt (tries - 1)
    end
  in
  attempt 200

(* Every cut the sweep separates must hold at 100 random integer-feasible
   points of every deadline it claims validity for. *)
let test_cut_validity () =
  let rng = Random.State.make [| 0xc07; 5 |] in
  let checked = ref 0 in
  for seed = 0 to 4 do
    let m, k, deadline_row, time = sweep_model ~seed ~groups:5 ~modes:3 in
    let deadlines = deadline_grid ~time ~points:4 in
    let pool = Cuts.Pool.create () in
    let cfg = config ~jobs:1 ~k in
    ignore (Sweep.run ~config:cfg ~pool ~model:m ~deadline_row ~deadlines ());
    let cuts = Cuts.Pool.applicable pool ~deadline:neg_infinity in
    let num_vars = Model.num_vars m in
    Array.iter
      (fun d ->
        let live =
          List.filter (fun (c : Cuts.t) -> d <= c.Cuts.valid_le) cuts
        in
        if live <> [] then
          for _ = 1 to 100 do
            match feasible_point rng ~k ~time ~deadline:d ~num_vars with
            | None -> ()
            | Some x ->
                List.iter
                  (fun (c : Cuts.t) ->
                    if not (Cuts.satisfied c x) then
                      Alcotest.failf
                        "seed %d: cut %a cuts off a feasible point at \
                         deadline %.4f"
                        seed Cuts.pp c d
                    else incr checked)
                  live
          done)
      deadlines
  done;
  if !checked = 0 then
    Alcotest.fail "cut validity test exercised no cuts — separation is dead"

(* The pool must dedup structurally identical cuts and report reuse. *)
let test_pool_dedup_and_reuse () =
  let m, k, deadline_row, time = sweep_model ~seed:2 ~groups:5 ~modes:3 in
  let deadlines = deadline_grid ~time ~points:4 in
  let pool = Cuts.Pool.create () in
  let cfg = config ~jobs:1 ~k in
  let first =
    Sweep.run ~config:cfg ~pool ~model:m ~deadline_row ~deadlines ()
  in
  let size_after_first = Cuts.Pool.size pool in
  (* Second sweep with separation off: pooled cuts are applied but no
     new ones can appear, so reuse is isolated from rediscovery. *)
  let second =
    Sweep.run ~config:cfg ~cut_rounds:0 ~pool ~model:m ~deadline_row
      ~deadlines ()
  in
  Alcotest.(check int) "separation off: pool unchanged" size_after_first
    (Cuts.Pool.size pool);
  if size_after_first > 0 && second.Sweep.stats.Sweep.cut_pool_hits = 0 then
    Alcotest.fail "expected pooled cuts to be reused on the second sweep";
  ignore first

let suite =
  [
    Alcotest.test_case "sweep matches cold solves (25 seeds)" `Slow
      test_sweep_matches_cold;
    Alcotest.test_case "parallel instances match" `Quick
      test_sweep_instances_match;
    Alcotest.test_case "warm incumbent lifting" `Quick
      test_sweep_warm_lifting;
    Alcotest.test_case "crash injection leaves objectives exact" `Quick
      test_sweep_under_crashes;
    Alcotest.test_case "separated cuts valid on feasible points" `Slow
      test_cut_validity;
    Alcotest.test_case "cut pool dedups and reuses" `Quick
      test_pool_dedup_and_reuse;
  ]
