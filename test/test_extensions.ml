(* Tests for the extension features: dominator/loop analysis, Ball-Larus
   path profiling, mode-set instrumentation/hoisting, and the
   block-granularity ablation support. *)

open Dvs_ir

let compile src = fst (Dvs_lang.Lower.compile_string src)

(* ------------------------------------------------------------------ *)
(* Dominators *)

let diamond =
  (* 0 -> (1 | 2) -> 3 *)
  let b = Cfg.Builder.create () in
  let e = Cfg.Builder.add_block b in
  let t = Cfg.Builder.add_block b in
  let f = Cfg.Builder.add_block b in
  let j = Cfg.Builder.add_block b in
  Cfg.Builder.push b e (Instr.Li (0, 1));
  Cfg.Builder.set_term b e (Cfg.Branch (0, t, f));
  Cfg.Builder.set_term b t (Cfg.Jump j);
  Cfg.Builder.set_term b f (Cfg.Jump j);
  Cfg.Builder.set_term b j Cfg.Halt;
  Cfg.Builder.finish b ~entry:e

let test_dominators_diamond () =
  let d = Dominators.compute diamond in
  Alcotest.(check (option int)) "idom entry" None (Dominators.idom d 0);
  Alcotest.(check (option int)) "idom then" (Some 0) (Dominators.idom d 1);
  Alcotest.(check (option int)) "idom else" (Some 0) (Dominators.idom d 2);
  Alcotest.(check (option int)) "idom join" (Some 0) (Dominators.idom d 3);
  Alcotest.(check bool) "entry dominates join" true (Dominators.dominates d 0 3);
  Alcotest.(check bool) "then not dominating join" false
    (Dominators.dominates d 1 3);
  Alcotest.(check bool) "reflexive" true (Dominators.dominates d 2 2);
  Alcotest.(check int) "no back edges" 0
    (List.length (Dominators.back_edges diamond d))

let test_dominators_loop () =
  let cfg =
    compile "int s; int i; for (i = 0; i < 5; i = i + 1) { s = s + i; }"
  in
  let d = Dominators.compute cfg in
  let loops = Dominators.natural_loops cfg d in
  Alcotest.(check int) "one loop" 1 (List.length loops);
  let l = List.hd loops in
  Alcotest.(check bool) "header dominates body" true
    (List.for_all (fun b -> Dominators.dominates d l.Dominators.header b)
       l.Dominators.body);
  Alcotest.(check bool) "latch in body" true
    (List.for_all
       (fun (e : Cfg.edge) -> List.mem e.src l.Dominators.body)
       l.Dominators.back_edges)

let test_dominators_nested_loops () =
  let cfg =
    compile
      "int s; int i; int j;\n\
       for (i = 0; i < 3; i = i + 1) {\n\
       \  for (j = 0; j < 3; j = j + 1) { s = s + i * j; }\n\
       }"
  in
  let d = Dominators.compute cfg in
  let loops = Dominators.natural_loops cfg d in
  Alcotest.(check int) "two loops" 2 (List.length loops);
  (* One loop body strictly contains the other. *)
  match
    List.sort
      (fun a b ->
        compare
          (List.length a.Dominators.body)
          (List.length b.Dominators.body))
      loops
  with
  | [ inner; outer ] ->
    Alcotest.(check bool) "nesting" true
      (List.for_all (fun x -> List.mem x outer.Dominators.body)
         inner.Dominators.body)
  | _ -> assert false

let qcheck_entry_dominates_reachable =
  QCheck.Test.make ~name:"entry dominates every reachable block" ~count:50
    QCheck.(int_range 0 10000)
    (fun seed ->
      let src =
        Printf.sprintf
          "int s; int i;\n\
           for (i = 0; i < 10; i = i + 1) {\n\
           \  if ((i * %d) %% 3 == 0) { s = s + 1; } else { s = s - 1; }\n\
           \  if (s > %d) { s = 0; }\n\
           }"
          (1 + (seed mod 7)) (seed mod 5)
      in
      let cfg = compile src in
      let d = Dominators.compute cfg in
      List.for_all
        (fun l ->
          (not (Dominators.reachable d l))
          || Dominators.dominates d (Cfg.entry cfg) l)
        (List.init (Cfg.num_blocks cfg) Fun.id))

(* ------------------------------------------------------------------ *)
(* Ball-Larus *)

let test_bl_straight_line () =
  let cfg = compile "int x; x = 1; x = x + 1;" in
  let bl = Dvs_profile.Ball_larus.compute cfg in
  Alcotest.(check int) "one path" 1 (Dvs_profile.Ball_larus.num_paths bl)

let test_bl_diamond () =
  let bl = Dvs_profile.Ball_larus.compute diamond in
  Alcotest.(check int) "two paths" 2 (Dvs_profile.Ball_larus.num_paths bl);
  (* The two decoded paths are the two arms. *)
  let p0 = Dvs_profile.Ball_larus.decode bl 0 in
  let p1 = Dvs_profile.Ball_larus.decode bl 1 in
  Alcotest.(check bool) "distinct arms" true
    (List.sort compare [ p0; p1 ]
    = List.sort compare [ [ 0; 1; 3 ]; [ 0; 2; 3 ] ])

let test_bl_decode_roundtrip () =
  let cfg =
    compile
      "int s; int i;\n\
       for (i = 0; i < 8; i = i + 1) {\n\
       \  if (i % 2) { s = s + i; } else { s = s - i; }\n\
       }"
  in
  let bl = Dvs_profile.Ball_larus.compute cfg in
  let n = Dvs_profile.Ball_larus.num_paths bl in
  Alcotest.(check bool) "several paths" true (n >= 3);
  for id = 0 to n - 1 do
    let blocks = Dvs_profile.Ball_larus.decode bl id in
    Alcotest.(check int)
      (Printf.sprintf "roundtrip %d" id)
      id
      (Dvs_profile.Ball_larus.path_of_blocks bl blocks)
  done

let test_bl_counts_match_execution () =
  let src =
    "int s; int i;\n\
     for (i = 0; i < 9; i = i + 1) {\n\
     \  if (i % 3 == 0) { s = s + 2; } else { s = s - 1; }\n\
     }"
  in
  let cfg = compile src in
  let bl = Dvs_profile.Ball_larus.compute cfg in
  let r = Interp.run ~trace:true cfg ~memory:[||] in
  let counts = Dvs_profile.Ball_larus.count_trace bl r.Interp.block_trace in
  let total = List.fold_left (fun a (_, c) -> a + c) 0 counts in
  (* Segments = back-edge crossings + 1. *)
  let d = Dominators.compute cfg in
  let backs = Dominators.back_edges cfg d in
  let crossings = ref 0 in
  let rec walk = function
    | a :: (b :: _ as rest) ->
      if List.exists (fun (e : Cfg.edge) -> e.src = a && e.dst = b) backs
      then incr crossings;
      walk rest
    | _ -> ()
  in
  walk r.Interp.block_trace;
  Alcotest.(check int) "segments" (!crossings + 1) total;
  (* Each counted id decodes to a real path whose blocks appear in the
     trace order. *)
  List.iter
    (fun (id, _) -> ignore (Dvs_profile.Ball_larus.decode bl id))
    counts

(* ------------------------------------------------------------------ *)
(* Instrumentation / hoisting *)

let sched_cfg =
  compile
    "int a[512]; int s; int i;\n\
     for (i = 0; i < 512; i = i + 1) { s = s + a[i]; }\n\
     for (i = 0; i < 200; i = i + 1) { s = s + i * i; }"

let machine =
  Dvs_machine.Config.default
    ~l1d:{ Dvs_machine.Config.size_bytes = 256; assoc = 2; block_bytes = 16;
           latency_cycles = 1 }
    ~l2:{ Dvs_machine.Config.size_bytes = 1024; assoc = 2; block_bytes = 16;
          latency_cycles = 4 }
    ~dram_latency:5e-7
    ~regulator:(Dvs_power.Switch_cost.regulator ~capacitance:0.02e-6 ())
    ()

let schedule_for_test () =
  let memory = Array.make 600 3 in
  let profile = Dvs_profile.Profile.collect machine sched_cfg ~memory in
  let t_fast = Dvs_profile.Profile.pinned_time profile ~mode:2 in
  let t_slow = Dvs_profile.Profile.pinned_time profile ~mode:0 in
  let deadline = t_fast +. (0.5 *. (t_slow -. t_fast)) in
  let r = Dvs_core.Pipeline.optimize machine sched_cfg ~memory ~deadline in
  (Option.get r.Dvs_core.Pipeline.schedule, memory, deadline)

let test_instrument_preserves_semantics () =
  let schedule, memory, _ = schedule_for_test () in
  let inst = Dvs_core.Instrument.apply schedule sched_cfg in
  (match Cfg.validate inst with
  | Ok () -> ()
  | Error m -> Alcotest.failf "instrumented CFG invalid: %s" m);
  let r_ref = Interp.run sched_cfg ~memory in
  let r_inst = Interp.run inst ~memory in
  Alcotest.(check bool) "same memory" true
    (r_ref.Interp.memory = r_inst.Interp.memory)

let test_instrument_matches_edge_annotation () =
  let schedule, memory, _ = schedule_for_test () in
  let annotated =
    Dvs_machine.Cpu.run
      ~rc:
        (Dvs_machine.Cpu.Run_config.make
           ~initial_mode:schedule.Dvs_core.Schedule.entry_mode
           ~edge_modes:(Dvs_core.Schedule.edge_modes schedule sched_cfg) ())
      machine sched_cfg ~memory
  in
  let inst =
    Dvs_core.Instrument.simplify (Dvs_core.Instrument.apply schedule sched_cfg)
  in
  let materialized =
    Dvs_machine.Cpu.run
      ~rc:
        (Dvs_machine.Cpu.Run_config.make
           ~initial_mode:schedule.Dvs_core.Schedule.entry_mode ())
      machine inst ~memory
  in
  (* Same dynamic mode transitions; energy within a small slack (split
     blocks add a few jump cycles). *)
  Alcotest.(check int) "same transitions"
    annotated.Dvs_machine.Cpu.mode_transitions
    materialized.Dvs_machine.Cpu.mode_transitions;
  let e0 = annotated.Dvs_machine.Cpu.energy in
  let e1 = materialized.Dvs_machine.Cpu.energy in
  if Float.abs (e1 -. e0) > 0.05 *. e0 then
    Alcotest.failf "energy diverged: %.4g vs %.4g" e0 e1

let test_simplify_removes_redundant () =
  let b = Cfg.Builder.create () in
  let l0 = Cfg.Builder.add_block b in
  let l1 = Cfg.Builder.add_block b in
  Cfg.Builder.push b l0 (Instr.Modeset 1);
  Cfg.Builder.push b l0 (Instr.Modeset 1);
  (* redundant *)
  Cfg.Builder.push b l0 (Instr.Li (0, 1));
  Cfg.Builder.set_term b l0 (Cfg.Jump l1);
  Cfg.Builder.push b l1 (Instr.Modeset 1);
  (* redundant across blocks *)
  Cfg.Builder.push b l1 (Instr.Modeset 0);
  (* live *)
  Cfg.Builder.set_term b l1 Cfg.Halt;
  let cfg = Cfg.Builder.finish b ~entry:l0 in
  let simplified = Dvs_core.Instrument.simplify cfg in
  Alcotest.(check int) "modesets before" 4
    (Dvs_core.Instrument.static_modesets cfg);
  Alcotest.(check int) "modesets after" 2
    (Dvs_core.Instrument.static_modesets simplified)

let test_simplify_hoists_loop_modeset () =
  (* Uniform schedule: after simplification only the entry mode-set
     should survive; in particular nothing inside the loop. *)
  let cfg = compile "int s; int i; while (i < 100) { s = s + i; i = i + 1; }" in
  let schedule = Dvs_core.Schedule.uniform cfg 1 in
  let inst =
    Dvs_core.Instrument.simplify (Dvs_core.Instrument.apply schedule cfg)
  in
  Alcotest.(check int) "single mode-set" 1
    (Dvs_core.Instrument.static_modesets inst);
  (* And it must execute exactly one dynamic non-silent transition from
     the power-on mode. *)
  let r = Dvs_machine.Cpu.run
      ~rc:(Dvs_machine.Cpu.Run_config.make ~initial_mode:2 ())
      machine inst ~memory:[||] in
  Alcotest.(check int) "one dynamic transition" 1
    r.Dvs_machine.Cpu.mode_transitions

(* ------------------------------------------------------------------ *)
(* Block-granularity ablation support *)

let test_block_based_repr () =
  let repr = Dvs_core.Filter.block_based sched_cfg in
  let edges = Cfg.edges sched_cfg in
  Alcotest.(check int) "length" (Array.length edges + 1) (Array.length repr);
  (* All edges into one block share one representative. *)
  Array.iteri
    (fun i (e : Cfg.edge) ->
      Array.iteri
        (fun j (e' : Cfg.edge) ->
          if e.dst = e'.dst then
            Alcotest.(check int) "same group" repr.(i) repr.(j))
        edges;
      ignore e)
    edges

let test_block_based_no_better_than_edges () =
  let _, memory, deadline = schedule_for_test () in
  let profile = Dvs_profile.Profile.collect machine sched_cfg ~memory in
  let optimize repr =
    Dvs_core.Pipeline.optimize_multi
      ~config:(Dvs_core.Pipeline.Config.make ~filter:false ())
      ~regulator:machine.Dvs_machine.Config.regulator ~memory
      [ { Dvs_core.Formulation.profile; weight = 1.0; deadline } ]
    |> fun r -> (repr, r)
  in
  (* Build both through the formulation API directly. *)
  let edge_r = snd (optimize None) in
  let block_form =
    Dvs_core.Formulation.build
      ~repr:(Dvs_core.Filter.block_based sched_cfg)
      ~regulator:machine.Dvs_machine.Config.regulator
      [ { Dvs_core.Formulation.profile; weight = 1.0; deadline } ]
  in
  let block_milp = Dvs_milp.Branch_bound.solve block_form.Dvs_core.Formulation.model in
  match (edge_r.Dvs_core.Pipeline.predicted_energy,
         block_milp.Dvs_milp.Branch_bound.solution)
  with
  | Some edge_e, Some s ->
    let block_e = s.Dvs_lp.Simplex.objective /. 1e6 in
    Alcotest.(check bool) "block-based >= edge-based" true
      (block_e >= edge_e *. 0.9999)
  | _ -> Alcotest.fail "missing solutions"

let suite =
  [ Alcotest.test_case "dominators diamond" `Quick test_dominators_diamond;
    Alcotest.test_case "dominators loop" `Quick test_dominators_loop;
    Alcotest.test_case "dominators nested loops" `Quick
      test_dominators_nested_loops;
    QCheck_alcotest.to_alcotest qcheck_entry_dominates_reachable;
    Alcotest.test_case "ball-larus straight line" `Quick
      test_bl_straight_line;
    Alcotest.test_case "ball-larus diamond" `Quick test_bl_diamond;
    Alcotest.test_case "ball-larus decode roundtrip" `Quick
      test_bl_decode_roundtrip;
    Alcotest.test_case "ball-larus counts match execution" `Quick
      test_bl_counts_match_execution;
    Alcotest.test_case "instrument preserves semantics" `Quick
      test_instrument_preserves_semantics;
    Alcotest.test_case "instrument matches edge annotation" `Quick
      test_instrument_matches_edge_annotation;
    Alcotest.test_case "simplify removes redundant" `Quick
      test_simplify_removes_redundant;
    Alcotest.test_case "simplify hoists loop modeset" `Quick
      test_simplify_hoists_loop_modeset;
    Alcotest.test_case "block-based repr" `Quick test_block_based_repr;
    Alcotest.test_case "block-based no better than edges" `Quick
      test_block_based_no_better_than_edges ]

(* Edge splitting: an edge whose source's out-edges conflict AND whose
   destination's in-edges conflict cannot be absorbed at either end and
   must get its own split block. *)
let test_instrument_splits_conflicting_edges () =
  (* A: branch -> C | B;  B: jump C;  C: halt.
     Modes: (A,C)=0, (A,B)=2, (B,C)=2 — edge (A,C) conflicts both ways. *)
  let b = Cfg.Builder.create () in
  let a = Cfg.Builder.add_block ~name:"A" b in
  let bb = Cfg.Builder.add_block ~name:"B" b in
  let c = Cfg.Builder.add_block ~name:"C" b in
  Cfg.Builder.push b a (Instr.Li (0, 1));
  Cfg.Builder.set_term b a (Cfg.Branch (0, c, bb));
  Cfg.Builder.push b bb (Instr.Li (1, 5));
  Cfg.Builder.set_term b bb (Cfg.Jump c);
  Cfg.Builder.push b c (Instr.Li (2, 9));
  Cfg.Builder.set_term b c Cfg.Halt;
  let cfg = Cfg.Builder.finish b ~entry:a in
  let edges = Cfg.edges cfg in
  let edge_mode =
    Array.map
      (fun (e : Cfg.edge) ->
        if e.src = a && e.dst = c then 0 else 2)
      edges
  in
  let schedule = { Dvs_core.Schedule.edge_mode; entry_mode = 1 } in
  let inst = Dvs_core.Instrument.apply schedule cfg in
  Alcotest.(check bool) "split blocks added" true
    (Cfg.num_blocks inst > Cfg.num_blocks cfg);
  (match Cfg.validate inst with
  | Ok () -> ()
  | Error m -> Alcotest.failf "invalid: %s" m);
  (* Dynamic mode transitions agree with the edge-annotation run on both
     branch outcomes (r0 = 1 takes A->C; make a variant taking A->B). *)
  let check_same g_mod =
    let annotated =
      Dvs_machine.Cpu.run
        ~rc:
          (Dvs_machine.Cpu.Run_config.make ~initial_mode:1
             ~edge_modes:(Dvs_core.Schedule.edge_modes schedule g_mod) ())
        machine g_mod ~memory:[||]
    in
    let materialized =
      Dvs_machine.Cpu.run
        ~rc:(Dvs_machine.Cpu.Run_config.make ~initial_mode:1 ()) machine
        (Dvs_core.Instrument.simplify
           (Dvs_core.Instrument.apply schedule g_mod))
        ~memory:[||]
    in
    Alcotest.(check int) "transitions match"
      annotated.Dvs_machine.Cpu.mode_transitions
      materialized.Dvs_machine.Cpu.mode_transitions
  in
  check_same cfg

(* Full-pipeline verification across all six workloads at one deadline:
   the schedule must meet the deadline and the MILP's energy prediction
   must be close to the measured energy. *)
let test_all_workloads_verify () =
  List.iter
    (fun name ->
      let w = Dvs_workloads.Workload.find name in
      let cfg, _, mem =
        Dvs_workloads.Workload.load w
          ~input:(Dvs_workloads.Workload.default_input w)
      in
      let config =
        Dvs_workloads.Workload.eval_config
          ~regulator:(Dvs_power.Switch_cost.regulator ~capacitance:0.4e-6 ())
          ()
      in
      let p = Dvs_profile.Profile.collect config cfg ~memory:mem in
      let ds = Dvs_workloads.Deadlines.of_profile p in
      let r =
        Dvs_core.Pipeline.optimize_multi
          ~config:
            (Dvs_core.Pipeline.Config.make
               ~solver:
                 (Dvs_milp.Solver.Config.make ~jobs:1 ~max_nodes:2000
                    ~time_limit:10.0 ())
               ())
          ~regulator:config.Dvs_machine.Config.regulator ~memory:mem
          [ { Dvs_core.Formulation.profile = p; weight = 1.0;
              deadline = ds.(3) } ]
      in
      match r.Dvs_core.Pipeline.verification with
      | None -> Alcotest.failf "%s: no verification" name
      | Some v ->
        if not v.Dvs_core.Verify.meets_deadline then
          Alcotest.failf "%s: deadline missed (%.3f vs %.3f ms)" name
            (v.Dvs_core.Verify.stats.Dvs_machine.Cpu.time *. 1e3)
            (ds.(3) *. 1e3);
        if v.Dvs_core.Verify.energy_error > 0.15 then
          Alcotest.failf "%s: model error %.1f%%" name
            (100.0 *. v.Dvs_core.Verify.energy_error))
    [ "adpcm"; "epic"; "gsm"; "mpeg"; "ghostscript"; "mpg123" ]

let suite =
  suite
  @ [ Alcotest.test_case "instrument splits conflicting edges" `Quick
        test_instrument_splits_conflicting_edges;
      Alcotest.test_case "all workloads verify end-to-end" `Slow
        test_all_workloads_verify ]

(* Entry block that is itself a loop target: the entry mode-set must
   execute exactly once (via a preamble block), not per iteration. *)
let test_instrument_entry_loop_target () =
  let b = Cfg.Builder.create () in
  let head = Cfg.Builder.add_block ~name:"head" b in
  let body = Cfg.Builder.add_block ~name:"body" b in
  let exit_b = Cfg.Builder.add_block ~name:"exit" b in
  (* r0 counts down from 5. *)
  Cfg.Builder.push b head (Instr.Binop (Instr.Slt, 1, 2, 0));
  Cfg.Builder.set_term b head (Cfg.Branch (1, body, exit_b));
  Cfg.Builder.push b body (Instr.Li (3, 1));
  Cfg.Builder.push b body (Instr.Binop (Instr.Sub, 0, 0, 3));
  Cfg.Builder.set_term b body (Cfg.Jump head);
  Cfg.Builder.set_term b exit_b Cfg.Halt;
  let cfg = Cfg.Builder.finish b ~entry:head in
  (* All edges mode 0, entry mode 0; the machine powers on at mode 2, so
     exactly one transition must happen. *)
  let schedule = Dvs_core.Schedule.uniform cfg 0 in
  let inst =
    Dvs_core.Instrument.simplify (Dvs_core.Instrument.apply schedule cfg)
  in
  (match Cfg.validate inst with
  | Ok () -> ()
  | Error m -> Alcotest.failf "invalid: %s" m);
  (* Seed r0 = 5 through memory-free registers: instead run with r0
     defaulting to 0 -> loop doesn't execute; still fine for the
     transition count check. *)
  let r = Dvs_machine.Cpu.run
      ~rc:(Dvs_machine.Cpu.Run_config.make ~initial_mode:2 ())
      machine inst ~memory:[||] in
  Alcotest.(check int) "exactly one dynamic transition" 1
    r.Dvs_machine.Cpu.mode_transitions;
  (* The old entry block itself must not contain the entry mode-set. *)
  let entry_blk = Cfg.block inst head in
  Alcotest.(check bool) "no modeset inside loop header" true
    (Array.for_all
       (fun i -> match i with Instr.Modeset _ -> false | _ -> true)
       entry_blk.Cfg.body)

let suite =
  suite
  @ [ Alcotest.test_case "instrument entry loop target" `Quick
        test_instrument_entry_loop_target ]
