(* Fault-injection suite for the resilient solve pipeline: worker crash
   containment in Solver, the Pipeline degradation ladder, and the
   LRU-bounded Lp_cache.

   The CI fault-injection leg runs this suite at jobs=1 and jobs=4 via
   DVS_FAULT_JOBS; without the variable both are exercised. *)

module Solver = Dvs_milp.Solver
module Fault = Dvs_milp.Fault
module Lp_cache = Dvs_milp.Lp_cache
module Model = Dvs_lp.Model
module Expr = Dvs_lp.Expr
module Simplex = Dvs_lp.Simplex
open Dvs_core

let jobs_list =
  match Sys.getenv_opt "DVS_FAULT_JOBS" with
  | Some s -> [ int_of_string (String.trim s) ]
  | None -> [ 1; 4 ]

let check_float ?(eps = 1e-6) what expected actual =
  if Float.abs (expected -. actual) > eps then
    Alcotest.failf "%s: expected %.9g, got %.9g" what expected actual

let objective (r : Solver.result) =
  match r.Solver.solution with
  | Some s -> s.Simplex.objective
  | None -> Alcotest.fail "expected a solution"

(* 0/1 knapsack: values 60,100,120; weights 10,20,30; cap 50 -> 220 at
   x = (0,1,1). *)
let knapsack () =
  let m = Model.create () in
  let xs = Array.init 3 (fun _ -> Model.binary m) in
  Model.add_constraint m
    (Expr.of_terms [ (10.0, xs.(0)); (20.0, xs.(1)); (30.0, xs.(2)) ])
    Model.Le 50.0;
  Model.set_objective m Model.Maximize
    (Expr.of_terms [ (60.0, xs.(0)); (100.0, xs.(1)); (120.0, xs.(2)) ]);
  (m, xs)

(* SOS1 groups under a shared budget — the DVS formulation's shape, deep
   enough that branch and bound does real work. *)
let sos1_model ~groups ~modes ~budget =
  let m = Model.create () in
  let k =
    Array.init groups (fun _ -> Array.init modes (fun _ -> Model.binary m))
  in
  let cost g j = float_of_int (((g * 7) + (j * 3)) mod 11) +. 1.0 in
  let time g j =
    float_of_int (modes - j) +. (0.25 *. float_of_int (g mod 3))
  in
  for g = 0 to groups - 1 do
    Model.add_constraint m
      (Expr.of_terms (List.init modes (fun j -> (1.0, k.(g).(j)))))
      Model.Eq 1.0
  done;
  let all w =
    Expr.of_terms
      (List.concat_map
         (fun g -> List.init modes (fun j -> (w g j, k.(g).(j))))
         (List.init groups Fun.id))
  in
  Model.add_constraint m (all time) Model.Le budget;
  Model.set_objective m Model.Minimize (all cost);
  (m, k)

let all_fastest k ~modes =
  Array.to_list k
  |> List.concat_map (fun group ->
         List.init modes (fun j ->
             (group.(j), if j = modes - 1 then 1.0 else 0.0)))

(* --- Solver-level fault tolerance ------------------------------------- *)

(* An expired time limit with a warm start must still return the seeded
   feasible solution, at any job count, with identical objectives. *)
let test_time_limit_warm_start () =
  let objs =
    List.map
      (fun jobs ->
        let m, k = sos1_model ~groups:8 ~modes:3 ~budget:26.0 in
        let config =
          Solver.Config.make ~jobs ~time_limit:0.0 ()
          |> Solver.Config.with_warm_start (all_fastest k ~modes:3)
        in
        let r = Solver.solve ~config m in
        (match r.Solver.outcome with
        | Solver.Feasible Solver.Time_limit -> ()
        | o ->
          Alcotest.failf "jobs=%d: expected feasible@time-limit, got %a"
            jobs Solver.pp_outcome o);
        objective r)
      jobs_list
  in
  match objs with
  | o :: rest ->
    List.iter (fun o' -> check_float ~eps:0.0 "objective across jobs" o o')
      rest
  | [] -> ()

(* When the incumbent is already optimal, crashing every node must not
   change the answer: containment keeps the warm-started incumbent and
   the objective matches the crash-free run exactly. *)
let test_crash_identical_when_optimal () =
  List.iter
    (fun jobs ->
      let solve fault =
        let m, xs = knapsack () in
        let config =
          Solver.Config.make ~jobs ?fault ()
          |> Solver.Config.with_warm_start
               [ (xs.(0), 0.0); (xs.(1), 1.0); (xs.(2), 1.0) ]
        in
        Solver.solve ~config m
      in
      let clean = solve None in
      (match clean.Solver.outcome with
      | Solver.Optimal -> ()
      | o ->
        Alcotest.failf "jobs=%d: clean run should be optimal, got %a" jobs
          Solver.pp_outcome o);
      let fault = Fault.make ~crash_every:1 () in
      let faulted = solve (Some fault) in
      (match faulted.Solver.outcome with
      | Solver.Degraded d when d.Solver.crashes <> [] -> ()
      | o ->
        Alcotest.failf "jobs=%d: expected degraded-with-crashes, got %a"
          jobs Solver.pp_outcome o);
      check_float ~eps:0.0 "objective unchanged by crashes"
        (objective clean) (objective faulted);
      let inj = Fault.injected fault in
      Alcotest.(check bool)
        "injector counted crashes" true (inj.Fault.crashes >= 1))
    jobs_list

(* Crashing the root node loses the whole tree, but containment keeps
   the warm-started incumbent and the reported bound stays valid (covers
   the lost subtree). *)
let test_crash_containment_mid_search () =
  List.iter
    (fun jobs ->
      let m, k = sos1_model ~groups:6 ~modes:3 ~budget:20.0 in
      let fault = Fault.make ~crash_at_nodes:[ 1 ] () in
      let config =
        Solver.Config.make ~jobs ~fault ()
        |> Solver.Config.with_warm_start (all_fastest k ~modes:3)
      in
      let r = Solver.solve ~config m in
      match r.Solver.outcome with
      | Solver.Degraded d ->
        Alcotest.(check int)
          "one crash contained" 1 (List.length d.Solver.crashes);
        let obj = objective r in
        Alcotest.(check bool)
          "bound still covers the lost subtree (minimize)" true
          (r.Solver.bound <= obj +. 1e-9)
      | o ->
        Alcotest.failf "jobs=%d: expected degraded, got %a" jobs
          Solver.pp_outcome o)
    jobs_list

(* --- Pipeline degradation ladder --------------------------------------- *)

(* Memory-bound streaming phase + compute-bound phase, small enough to
   profile quickly (same shape as test_dvs). *)
let test_src =
  "int a[512]; int s; int i; int j;\n\
   s = 0;\n\
   for (i = 0; i < 512; i = i + 1) { s = s + a[i]; }\n\
   for (i = 0; i < 50; i = i + 1) {\n\
   \  for (j = 0; j < 10; j = j + 1) { s = s + i * j; }\n\
   }"

let tiny_config =
  Dvs_machine.Config.default
    ~l1d:{ Dvs_machine.Config.size_bytes = 128; assoc = 2; block_bytes = 16;
           latency_cycles = 1 }
    ~l2:{ Dvs_machine.Config.size_bytes = 512; assoc = 2; block_bytes = 16;
          latency_cycles = 4 }
    ~dram_latency:1e-6 ()

let compiled = lazy (Dvs_lang.Lower.compile_string test_src)

let memory () =
  let _, layout = Lazy.force compiled in
  Array.init layout.Dvs_lang.Lower.memory_words (fun i -> i mod 17)

let profile_cached =
  lazy
    (let cfg, _ = Lazy.force compiled in
     Dvs_profile.Profile.collect tiny_config cfg ~memory:(memory ()))

let mid_deadline () =
  let p = Lazy.force profile_cached in
  let n =
    Dvs_power.Mode.size tiny_config.Dvs_machine.Config.mode_table
  in
  let t_fast = Dvs_profile.Profile.pinned_time p ~mode:(n - 1) in
  let t_slow = Dvs_profile.Profile.pinned_time p ~mode:0 in
  t_fast +. (0.5 *. (t_slow -. t_fast))

let run_pipeline ?(continuous_bound = true) solver deadline =
  let p = Lazy.force profile_cached in
  let config = Pipeline.Config.make ~solver ~continuous_bound () in
  Pipeline.optimize_multi ~config
    ~regulator:tiny_config.Dvs_machine.Config.regulator ~memory:(memory ())
    [ { Formulation.profile = p; weight = 1.0; deadline } ]

(* One warm session for every baseline measurement in the suite: the
   recording run happens once, each deadline's baseline is a tape
   replay (Verify.run would re-simulate from scratch per call). *)
let verify_session =
  lazy
    (let cfg, _ = Lazy.force compiled in
     Verify.Session.create tiny_config cfg ~memory:(memory ()))

let baseline_measured deadline =
  let p = Lazy.force profile_cached in
  match Baselines.best_single_mode p ~deadline with
  | None -> None
  | Some (mode, e_model) ->
    let cfg = p.Dvs_profile.Profile.cfg in
    let schedule = Schedule.uniform cfg mode in
    let v =
      Verify.Session.check (Lazy.force verify_session) ~schedule ~deadline
        ~predicted_energy:e_model
    in
    Some v.Verify.stats.Dvs_machine.Cpu.energy

(* Exhausting every simplex pivot budget makes branch and bound useless;
   with the continuous-bound engine ablated, the ladder must fall past
   the MILP rungs and still hand back a verified schedule.  (With the
   engine on, the rounded continuous seed survives pivot exhaustion as a
   ready-made incumbent, so the pipeline need not descend at all — the
   second half checks that stronger outcome.) *)
let test_ladder_pivot_exhaustion () =
  List.iter
    (fun jobs ->
      let solver =
        Solver.Config.make ~jobs ~max_nodes:500
          ~fault:(Fault.make ~exhaust_pivots_every:1 ())
          ()
      in
      let r =
        run_pipeline ~continuous_bound:false solver (mid_deadline ())
      in
      (match r.Pipeline.rung with
      | Some (Pipeline.Rounded_lp | Pipeline.Single_mode) -> ()
      | Some rung ->
        Alcotest.failf "jobs=%d: expected a fallback rung, got %a" jobs
          Pipeline.pp_rung rung
      | None -> Alcotest.failf "jobs=%d: ladder produced no schedule" jobs);
      Alcotest.(check bool)
        "descents recorded" true (r.Pipeline.descents <> []);
      (match r.Pipeline.verification with
      | Some v ->
        Alcotest.(check bool)
          "fallback schedule meets the deadline" true v.Verify.meets_deadline
      | None -> Alcotest.fail "fallback rung was not verified");
      (* Same fault with the engine on: the seeded incumbent must keep a
         verified schedule alive, whatever rung answers. *)
      let seeded = run_pipeline solver (mid_deadline ()) in
      match seeded.Pipeline.verification with
      | Some v ->
        Alcotest.(check bool)
          "seeded schedule meets the deadline" true v.Verify.meets_deadline
      | None -> Alcotest.failf "jobs=%d: seeded run was not verified" jobs)
    jobs_list

(* Acceptance scenario of the issue: a worker crash forced mid-search
   plus a near-zero time limit, and the pipeline must still return a
   schedule that passes verification, costs no more than the
   single-best-frequency baseline, and names its rung. *)
let test_crash_plus_time_limit_recovers () =
  List.iter
    (fun jobs ->
      let solver =
        Solver.Config.make ~jobs ~max_nodes:4000 ~time_limit:0.01
          ~fault:(Fault.make ~crash_at_nodes:[ 1 ] ())
          ()
      in
      let deadline = mid_deadline () in
      let r = run_pipeline solver deadline in
      let v =
        match r.Pipeline.verification with
        | Some v -> v
        | None -> Alcotest.failf "jobs=%d: no verification report" jobs
      in
      Alcotest.(check bool)
        "schedule exists" true (r.Pipeline.schedule <> None);
      Alcotest.(check bool) "meets deadline" true v.Verify.meets_deadline;
      (match r.Pipeline.rung with
      | Some _ -> ()
      | None -> Alcotest.failf "jobs=%d: result does not name a rung" jobs);
      match baseline_measured deadline with
      | None -> ()
      | Some base ->
        Alcotest.(check bool)
          "energy <= single-best-frequency baseline" true
          (v.Verify.stats.Dvs_machine.Cpu.energy <= base *. 1.0000001))
    jobs_list

(* Forced cache misses must not change the answer, only the hit rate. *)
let test_forced_cache_misses_harmless () =
  let solve fault =
    let m, _ = sos1_model ~groups:6 ~modes:3 ~budget:20.0 in
    let config =
      Solver.Config.make ~jobs:1 ~cache:(Lp_cache.create ()) ?fault ()
    in
    Solver.solve ~config m
  in
  let clean = solve None in
  let fault = Fault.make ~cache_miss_rate:1.0 () in
  let faulted = solve (Some fault) in
  check_float ~eps:0.0 "objective unchanged by forced misses"
    (objective clean) (objective faulted);
  Alcotest.(check int)
    "no cache hits under 100% forced misses" 0
    faulted.Solver.stats.Solver.cache_hits

(* --- Lp_cache LRU bounding --------------------------------------------- *)

let test_lp_cache_lru () =
  let t = Lp_cache.create ~max_entries:2 () in
  let get fp =
    ignore
      (Lp_cache.find_or_add t ~fingerprint:fp ~fixings:[] (fun () ->
           (Simplex.Infeasible, None)))
  in
  get 1;
  get 2;
  (* touch 1: now 2 is least recently used *)
  get 1;
  get 3;
  Alcotest.(check int) "one eviction" 1 (Lp_cache.evictions t);
  Alcotest.(check int) "bounded size" 2 (Lp_cache.length t);
  (* 1 survived (recently used), 2 was the victim *)
  get 1;
  get 2;
  Alcotest.(check int) "hits: 1 stayed hot" 2 (Lp_cache.hits t);
  Alcotest.(check int) "misses: 2 was evicted" 4 (Lp_cache.misses t);
  Alcotest.(check int) "second eviction on re-insert" 2
    (Lp_cache.evictions t);
  Alcotest.check_raises "max_entries must be >= 1"
    (Invalid_argument "Lp_cache.create: max_entries must be >= 1")
    (fun () -> ignore (Lp_cache.create ~max_entries:0 ()))

(* Fault spec validation. *)
let test_fault_spec_validation () =
  Alcotest.check_raises "rate > 1"
    (Invalid_argument "Fault.make: cache_miss_rate must be in [0, 1]")
    (fun () -> ignore (Fault.make ~cache_miss_rate:1.5 ()));
  Alcotest.check_raises "0 ordinal"
    (Invalid_argument "Fault.make: ordinals are 1-based") (fun () ->
      ignore (Fault.make ~crash_at_nodes:[ 0 ] ()));
  Alcotest.check_raises "0 period"
    (Invalid_argument "Fault.make: every-N periods must be >= 1")
    (fun () -> ignore (Fault.make ~exhaust_pivots_every:0 ()))

let suite =
  [ Alcotest.test_case "time limit + warm start stays feasible" `Quick
      test_time_limit_warm_start;
    Alcotest.test_case "crashes leave optimal incumbent intact" `Quick
      test_crash_identical_when_optimal;
    Alcotest.test_case "mid-search crash contained" `Quick
      test_crash_containment_mid_search;
    Alcotest.test_case "ladder recovers from pivot exhaustion" `Quick
      test_ladder_pivot_exhaustion;
    Alcotest.test_case "crash + time limit recovers (acceptance)" `Quick
      test_crash_plus_time_limit_recovers;
    Alcotest.test_case "forced cache misses harmless" `Quick
      test_forced_cache_misses_harmless;
    Alcotest.test_case "lp cache LRU bounding" `Quick test_lp_cache_lru;
    Alcotest.test_case "fault spec validation" `Quick
      test_fault_spec_validation ]
