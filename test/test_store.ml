(* Experiment-store tests (DESIGN.md section 14): canonical keys,
   envelope round-trips, corruption-as-miss (including a seeded random
   corruption property), the LRU bound, epoch invalidation, two-process
   concurrency, stable-instrument capture/replay, and the end-to-end
   cold-vs-warm equivalence of a store-backed solve. *)

module Store = Dvs_store.Store
module Key = Dvs_store.Key
module Capture = Dvs_store.Capture
module Codec = Dvs_store.Codec
module Exec = Dvs_store.Exec
module Json = Dvs_obs.Json
module Metrics = Dvs_obs.Metrics
module Workload = Dvs_workloads.Workload
module Profile = Dvs_profile.Profile

let rec rm_rf path =
  match (Unix.lstat path).Unix.st_kind with
  | Unix.S_DIR ->
    Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
    Unix.rmdir path
  | _ -> Sys.remove path
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()

let fresh_root =
  let n = ref 0 in
  fun () ->
    incr n;
    let dir =
      Filename.concat (Filename.get_temp_dir_name ())
        (Printf.sprintf "dvs_store_test_%d_%d" (Unix.getpid ()) !n)
    in
    rm_rf dir;
    dir

let sample_key ?(salt = 0) () =
  Key.make ~kind:"sim"
    [ ("program", Key.S "adpcm:default");
      ("salt", Key.I salt);
      ("freq", Key.F 2.5e8);
      ("modes", Key.L [ Key.I 1; Key.I 2; Key.I 3 ]) ]

let sample_payload = Json.Obj [ ("x", Json.Int 42); ("y", Json.String "z") ]

let entry_path st key = Filename.concat (Store.root st) (Key.filename key)

(* --- keys ------------------------------------------------------------- *)

let test_key () =
  let a =
    Key.make ~kind:"solve" [ ("b", Key.I 2); ("a", Key.F 1.5) ]
  in
  let b =
    Key.make ~kind:"solve" [ ("a", Key.F 1.5); ("b", Key.I 2) ]
  in
  Alcotest.(check string)
    "component order is canonicalized" (Key.canonical a) (Key.canonical b);
  Alcotest.(check string)
    "same filename too" (Key.filename a) (Key.filename b);
  let c =
    Key.make ~kind:"solve"
      [ ("a", Key.F (1.5 +. epsilon_float)); ("b", Key.I 2) ]
  in
  Alcotest.(check bool)
    "one ulp changes the key" false
    (Key.canonical a = Key.canonical c);
  let d = Key.make ~kind:"sweep" [ ("a", Key.F 1.5); ("b", Key.I 2) ] in
  Alcotest.(check bool)
    "kind is part of the identity" false (Key.filename a = Key.filename d);
  (match Key.make ~kind:"So lve" [] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "bad kind accepted");
  (match Key.make ~kind:"solve" [ ("a|b", Key.I 1) ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "component name with '|' accepted");
  Alcotest.(check string)
    "fnv-1a of empty string" "cbf29ce484222325" (Key.hash_hex "")

(* --- envelope round-trip ---------------------------------------------- *)

let test_roundtrip () =
  let root = fresh_root () in
  let st = Store.open_ ~root () in
  let key = sample_key () in
  Alcotest.(check bool) "miss before put" true (Store.get_json st key = None);
  Store.put st key sample_payload;
  (match Store.get_json st key with
  | Some p ->
    Alcotest.(check bool) "payload round-trips" true
      (Json.equal p sample_payload)
  | None -> Alcotest.fail "hit expected after put");
  (* The on-disk envelope is a valid dvs-store/v1 document. *)
  let ic = open_in (entry_path st key) in
  let text = really_input_string ic (in_channel_length ic) in
  close_in ic;
  (match Json.of_string text with
  | Ok j -> (
    match Dvs_obs.Schema.validate_store j with
    | Ok () -> ()
    | Error e -> Alcotest.failf "envelope fails validate_store: %s" e)
  | Error e -> Alcotest.failf "envelope is not JSON: %s" e);
  (match Dvs_obs.Schema.validate_store (Json.Obj [ ("schema", Json.Int 3) ]) with
  | Ok () -> Alcotest.fail "garbage passed validate_store"
  | Error _ -> ());
  let c = Store.counts st in
  Alcotest.(check int) "one put" 1 c.Store.puts;
  Alcotest.(check int) "one hit" 1 c.Store.hits;
  Alcotest.(check int) "one miss" 1 c.Store.misses;
  let d = Store.disk_stats st in
  Alcotest.(check int) "one entry on disk" 1 d.Store.entries;
  Alcotest.(check (list (pair string int)))
    "kind breakdown" [ ("sim", 1) ] d.Store.by_kind;
  rm_rf root

(* --- corruption is a miss --------------------------------------------- *)

let test_corrupt_entry () =
  let root = fresh_root () in
  let st = Store.open_ ~root () in
  let key = sample_key () in
  Store.put st key sample_payload;
  let path = entry_path st key in
  (* Truncate: unparseable JSON. *)
  let fd = Unix.openfile path [ Unix.O_WRONLY ] 0o644 in
  Unix.ftruncate fd 25;
  Unix.close fd;
  Alcotest.(check bool)
    "truncated entry is a miss" true
    (Store.get_json st key = None);
  Alcotest.(check bool) "and is deleted" false (Sys.file_exists path);
  Alcotest.(check int)
    "counted corrupt" 1 (Store.counts st).Store.corrupt;
  (* Flip one payload byte: parseable, checksum mismatch. *)
  Store.put st key sample_payload;
  let ic = open_in path in
  let text = really_input_string ic (in_channel_length ic) in
  close_in ic;
  let i = Str.search_forward (Str.regexp_string "42") text 0 in
  let bytes = Bytes.of_string text in
  Bytes.set bytes i '9';
  let oc = open_out path in
  output_bytes oc bytes;
  close_out oc;
  Alcotest.(check bool)
    "checksum mismatch is a miss" true
    (Store.get_json st key = None);
  (* Recompute path: a put after the miss works again. *)
  Store.put st key sample_payload;
  Alcotest.(check bool)
    "store recovers after corruption" true
    (Store.get_json st key <> None);
  rm_rf root

(* Seeded corruption property: whatever byte is damaged (or wherever the
   file is cut), a lookup returns either a miss or the original payload
   — never garbage, never an exception. *)
let qcheck_corruption =
  QCheck.Test.make ~name:"random corruption yields miss or original"
    ~count:150
    QCheck.(triple small_nat char bool)
    (fun (pos, c, truncate) ->
      let root = fresh_root () in
      let st = Store.open_ ~root () in
      let key = sample_key () in
      Store.put st key sample_payload;
      let path = entry_path st key in
      let ic = open_in path in
      let text = really_input_string ic (in_channel_length ic) in
      close_in ic;
      let len = String.length text in
      let pos = pos mod len in
      (if truncate then begin
         let fd = Unix.openfile path [ Unix.O_WRONLY ] 0o644 in
         Unix.ftruncate fd pos;
         Unix.close fd
       end
       else begin
         let bytes = Bytes.of_string text in
         Bytes.set bytes pos c;
         let oc = open_out path in
         output_bytes oc bytes;
         close_out oc
       end);
      let ok =
        match Store.get_json st key with
        | None -> true
        | Some p -> Json.equal p sample_payload
      in
      rm_rf root;
      ok)

(* --- LRU bound -------------------------------------------------------- *)

let test_lru_bound () =
  let root = fresh_root () in
  let st = Store.open_ ~max_entries:4 ~root () in
  let now = Unix.gettimeofday () in
  (* Distinct mtimes make the eviction order deterministic (the real
     clock ticks too coarsely for back-to-back writes). *)
  for i = 0 to 4 do
    let key = sample_key ~salt:i () in
    Store.put st key sample_payload;
    let t = now -. 100.0 +. (10.0 *. float_of_int i) in
    Unix.utimes (entry_path st key) t t
  done;
  (* Putting a 6th entry must evict the oldest two (salts 0 and 1),
     keeping the most recently used. *)
  Store.put st (sample_key ~salt:5 ()) sample_payload;
  Alcotest.(check int)
    "bounded to max_entries" 4 (Store.disk_stats st).Store.entries;
  Alcotest.(check bool)
    "oldest entry evicted" true
    (Store.get_json st (sample_key ~salt:0 ()) = None);
  Alcotest.(check bool)
    "newest entry survives" true
    (Store.get_json st (sample_key ~salt:5 ()) <> None);
  Alcotest.(check bool)
    "evictions counted" true ((Store.counts st).Store.evictions >= 2);
  rm_rf root

(* --- epoch invalidation ----------------------------------------------- *)

let test_epoch_bump () =
  let root = fresh_root () in
  let st = Store.open_ ~root () in
  let key = sample_key () in
  Store.put st key sample_payload;
  let st2 = Store.open_ ~epoch:(Store.format_epoch + 1) ~root () in
  Alcotest.(check bool)
    "old-epoch entry is stale" true
    (Store.get_json st2 key = None);
  Alcotest.(check int) "counted stale" 1 (Store.counts st2).Store.stale;
  Alcotest.(check bool)
    "stale entry removed on sight" false
    (Sys.file_exists (entry_path st key));
  rm_rf root

(* --- two-process concurrency ------------------------------------------ *)

let concurrency_payload i =
  Json.Obj [ ("i", Json.Int i); ("pad", Json.String (String.make 4096 'p')) ]

let concurrency_rounds = 100

(* The put-hammering side of the two-process test.  [Unix.fork] is
   unavailable once any suite has spawned a domain, so test_main
   re-executes the whole test binary with [child_env_var] set and
   branches here before Alcotest takes over. *)
let child_env_var = "DVS_STORE_TEST_CHILD"

let child_main root =
  let st = Store.open_ ~root () in
  for i = 0 to concurrency_rounds - 1 do
    Store.put st
      (sample_key ~salt:(i mod 8) ())
      (concurrency_payload (i mod 8))
  done;
  exit 0

let test_concurrent_processes () =
  let root = fresh_root () in
  let st = Store.open_ ~root () in
  let pid =
    Unix.create_process_env Sys.executable_name
      [| Sys.executable_name |]
      (Array.append (Unix.environment ())
         [| child_env_var ^ "=" ^ root |])
      Unix.stdin Unix.stdout Unix.stderr
  in
  (* Concurrent puts and gets on the keys the child is hammering.  Every
     lookup must be a miss or a complete payload — never a torn read. *)
  let torn = ref 0 in
  for i = 0 to concurrency_rounds - 1 do
    let salt = i mod 8 in
    Store.put st (sample_key ~salt ()) (concurrency_payload salt);
    match Store.get_json st (sample_key ~salt ()) with
    | None -> ()
    | Some p -> if not (Json.equal p (concurrency_payload salt)) then incr torn
  done;
  let _, status = Unix.waitpid [] pid in
  Alcotest.(check bool) "child exited cleanly" true
    (status = Unix.WEXITED 0);
  Alcotest.(check int) "no torn reads" 0 !torn;
  let r = Store.verify st in
  Alcotest.(check int) "no corrupt entries on disk" 0
    (List.length r.Store.vr_corrupt);
  Alcotest.(check int) "all entries intact" r.Store.vr_checked r.Store.vr_ok;
  rm_rf root

(* --- gc and verify ----------------------------------------------------- *)

let test_gc () =
  let root = fresh_root () in
  let st = Store.open_ ~root () in
  Store.put st (sample_key ~salt:0 ()) sample_payload;
  Store.put st (sample_key ~salt:1 ()) sample_payload;
  (* Plant a foreign file: gc must drop it, verify must report it. *)
  let oc = open_out (Filename.concat root "sim-0000000000000000.json") in
  output_string oc "not json";
  close_out oc;
  let v = Store.verify st in
  Alcotest.(check int) "verify flags the foreign file" 1
    (List.length v.Store.vr_corrupt);
  let r = Store.gc st in
  Alcotest.(check int) "gc scanned everything" 3 r.Store.gc_scanned;
  Alcotest.(check int) "gc kept the good entries" 2 r.Store.gc_kept;
  Alcotest.(check int) "gc dropped the corrupt file" 1 r.Store.gc_corrupt;
  Alcotest.(check int)
    "disk agrees" 2 (Store.disk_stats st).Store.entries;
  rm_rf root

(* --- capture / replay -------------------------------------------------- *)

let test_capture_replay () =
  let obs1 = Dvs_obs.metrics_only () in
  let m1 = Dvs_obs.metrics obs1 in
  let before = Capture.state obs1 in
  Metrics.Counter.add (Metrics.counter m1 "sim.dyn_instrs") ~slot:0 123;
  Metrics.Counter.add
    (Metrics.counter m1 ~stability:Metrics.Volatile "solver.nodes")
    ~slot:0 7;
  Metrics.Gauge.set (Metrics.gauge m1 "sim.time_seconds") 0.125;
  let cap = Capture.diff ~before ~after:(Capture.state obs1) in
  Alcotest.(check bool)
    "volatile counters excluded" true
    (not (List.mem_assoc "solver.nodes" cap.Capture.counters));
  (* JSON round-trip, then replay into a fresh registry. *)
  let cap =
    match Capture.of_json (Capture.to_json cap) with
    | Ok c -> c
    | Error e -> Alcotest.failf "capture does not round-trip: %s" e
  in
  let obs2 = Dvs_obs.metrics_only () in
  Capture.replay obs2 cap;
  let m2 = Dvs_obs.metrics obs2 in
  Alcotest.(check int)
    "counter delta replayed" 123
    (Metrics.Counter.value (Metrics.counter m2 "sim.dyn_instrs"));
  Alcotest.(check int)
    "volatile counter not replayed" 0
    (Metrics.Counter.value
       (Metrics.counter m2 ~stability:Metrics.Volatile "solver.nodes"));
  Alcotest.(check bool)
    "gauge value bit-identical" true
    (Int64.equal
       (Int64.bits_of_float
          (Metrics.Gauge.value (Metrics.gauge m2 "sim.time_seconds")))
       (Int64.bits_of_float 0.125))

(* --- cold vs warm solve ------------------------------------------------ *)

let test_exec_cold_warm () =
  let w = Workload.find "adpcm" in
  let input = Workload.default_input w in
  let cfg, _, mem = Workload.load w ~input in
  let machine =
    Workload.eval_config ~mode_table:Dvs_power.Mode.xscale3 ()
  in
  let p = Profile.collect machine cfg ~memory:mem in
  let n = Dvs_power.Mode.size machine.Dvs_machine.Config.mode_table in
  let t_fast = Profile.pinned_time p ~mode:(n - 1) in
  let t_slow = Profile.pinned_time p ~mode:0 in
  let deadline = t_fast +. (0.5 *. (t_slow -. t_fast)) in
  let root = fresh_root () in
  let run obs =
    let store = Store.open_ ~obs ~root () in
    let solver = Dvs_milp.Solver.Config.make ~obs () in
    let config =
      Dvs_core.Pipeline.Config.make ~solver ()
      |> Dvs_core.Pipeline.Config.with_obs obs
    in
    Exec.optimize_multi ~store ~config ~verify_config:machine
      ~regulator:machine.Dvs_machine.Config.regulator ~memory:mem
      [ { Dvs_core.Formulation.profile = p; weight = 1.0; deadline } ]
  in
  let obs_cold = Dvs_obs.metrics_only () in
  let r_cold = run obs_cold in
  let obs_warm = Dvs_obs.metrics_only () in
  let r_warm = run obs_warm in
  (* Bit-equal results: the stored essence of both runs renders
     identically (outcome, solution, schedule, predicted energy,
     verification — every float compared by rendered bits). *)
  let essence r =
    Json.to_string (Codec.essence_to_json (Codec.essence_of_result r))
  in
  Alcotest.(check string)
    "warm result bit-equal to cold" (essence r_cold) (essence r_warm);
  let vol obs name =
    Metrics.Counter.value
      (Metrics.counter (Dvs_obs.metrics obs) ~stability:Metrics.Volatile
         name)
  in
  Alcotest.(check int) "cold run missed" 1 (vol obs_cold "store.solve_misses");
  Alcotest.(check int) "warm run hit" 1 (vol obs_warm "store.solve_hits");
  Alcotest.(check int)
    "warm run ran zero LP solves" 0 (vol obs_warm "solver.lp_solves");
  Alcotest.(check int)
    "warm run ran zero simulations" 0 (vol obs_warm "sim.summary_misses");
  (* The deterministic metric subsets agree exactly. *)
  Alcotest.(check string)
    "stable metric subsets bit-identical"
    (Json.to_string
       (Metrics.stable_subset (Metrics.snapshot (Dvs_obs.metrics obs_cold))))
    (Json.to_string
       (Metrics.stable_subset (Metrics.snapshot (Dvs_obs.metrics obs_warm))));
  rm_rf root

let suite =
  [ Alcotest.test_case "canonical keys" `Quick test_key;
    Alcotest.test_case "envelope round-trip" `Quick test_roundtrip;
    Alcotest.test_case "corrupted entry is a miss" `Quick test_corrupt_entry;
    QCheck_alcotest.to_alcotest qcheck_corruption;
    Alcotest.test_case "LRU bound" `Quick test_lru_bound;
    Alcotest.test_case "epoch bump invalidates" `Quick test_epoch_bump;
    Alcotest.test_case "two-process concurrency" `Quick
      test_concurrent_processes;
    Alcotest.test_case "gc and verify" `Quick test_gc;
    Alcotest.test_case "capture/replay" `Quick test_capture_replay;
    Alcotest.test_case "cold vs warm solve" `Quick test_exec_cold_warm ]
