(** Deterministic, seeded fault injection for the MILP solve pipeline.

    Attach an injector to a solve via
    {!Solver.Config.with_fault} and it will fire faults at the solver's
    failure-prone seams:

    - {b worker crashes}: {!on_node} raises {!Injected_crash} when the
      Nth node (a global, atomically assigned ordinal) is processed —
      exercising the solver's crash containment;
    - {b pivot exhaustion}: {!pivot_budget} forces the Nth LP solve to
      run with a one-pivot budget, driving the genuine
      {!Dvs_lp.Simplex.Iter_limit} error path;
    - {b cache misses}: {!force_cache_miss} makes a cacheable relaxation
      bypass the {!Lp_cache} (a seeded Bernoulli draw per lookup);
    - {b clock skew}: {!clock_skew} shifts the wall clock the solver
      compares against [time_limit], simulating timer trouble.

    Triggers are pure functions of the spec and a monotonic ordinal, so
    a spec replays the same fault sequence deterministically at jobs=1,
    and injects the same {e set} of faults at any job count.  Used by
    the fault-injection test suite and the [resilience] bench
    experiment; production solves never construct one. *)

exception Injected_crash of { worker : int; node : int }
(** Raised by {!on_node} inside a worker; contained by {!Solver} like
    any other worker exception. *)

type spec = {
  crash_at_nodes : int list;  (** 1-based node ordinals that crash *)
  crash_every : int option;  (** also crash every Nth node *)
  exhaust_pivots_at : int list;  (** 1-based LP-solve ordinals *)
  exhaust_pivots_every : int option;
  cache_miss_rate : float;  (** probability in [0, 1] per cache lookup *)
  clock_skew : float;  (** seconds added to the solver's wall clock *)
  seed : int;  (** seeds the cache-miss Bernoulli stream *)
}

type t

val make :
  ?crash_at_nodes:int list ->
  ?crash_every:int ->
  ?exhaust_pivots_at:int list ->
  ?exhaust_pivots_every:int ->
  ?cache_miss_rate:float ->
  ?clock_skew:float ->
  ?seed:int ->
  unit -> t
(** All faults default to off.  Raises [Invalid_argument] on a rate
    outside [0, 1], a non-positive period, or a non-positive ordinal. *)

val spec : t -> spec

val reset : t -> unit
(** Zero the ordinals and injection counters so the injector replays the
    same fault sequence on a fresh solve. *)

(** {2 Hooks} — called by {!Solver}; counters advance on every call. *)

val on_node : t -> worker:int -> unit
(** Raises {!Injected_crash} when the crash trigger fires for this node
    ordinal. *)

val pivot_budget : t -> int * int option
(** [(ordinal, budget)]: [budget] is [Some 1] when the exhaustion
    trigger fires for this LP-solve ordinal; the solver passes it to
    [Simplex.solve_ext] as [max_iter].  The ordinal identifies the
    firing in exported traces — the {e set} of firing ordinals is a pure
    function of the spec, independent of worker count. *)

val force_cache_miss : t -> int * bool
(** [(ordinal, miss)]; [ordinal] is 0 when the rate is 0 (the injector
    is not consulted and no ordinal is consumed). *)

val clock_skew : t -> float

(** {2 Accounting} *)

type injected = { crashes : int; exhaustions : int; forced_misses : int }

val injected : t -> injected
(** Faults actually fired so far. *)

val pp_injected : Format.formatter -> injected -> unit
