(* Cutting planes shared across a deadline sweep: Gomory mixed-integer
   cuts from the simplex tableau, knapsack covers from the deadline row,
   GUB covers from the one-mode-per-edge groups.  See cuts.mli for the
   validity-tagging scheme that lets cuts travel between sweep points. *)

open Dvs_lp
module C = Compiled

type origin = Gomory | Cover | Gub

type t = {
  coeffs : (Model.var * float) list;
  cmp : Model.cmp;
  rhs : float;
  valid_le : float;
  origin : origin;
  born : float;
}

let origin_name = function
  | Gomory -> "gomory"
  | Cover -> "cover"
  | Gub -> "gub"

let pp ppf c =
  let pp_cmp ppf = function
    | Model.Le -> Format.pp_print_string ppf "<="
    | Model.Ge -> Format.pp_print_string ppf ">="
    | Model.Eq -> Format.pp_print_string ppf "="
  in
  Format.fprintf ppf "@[%s:" (origin_name c.origin);
  List.iter (fun (v, w) -> Format.fprintf ppf " %+gx%d" w v) c.coeffs;
  Format.fprintf ppf " %a %g (valid<=%g)@]" pp_cmp c.cmp c.rhs c.valid_le

let lhs_at c x =
  List.fold_left (fun acc (v, w) -> acc +. (w *. x.(v))) 0.0 c.coeffs

let violation c x =
  let lhs = lhs_at c x in
  match c.cmp with
  | Model.Le -> lhs -. c.rhs
  | Model.Ge -> c.rhs -. lhs
  | Model.Eq -> Float.abs (lhs -. c.rhs)

let satisfied ?(tol = 1e-6) c x = violation c x <= tol

let add_to_model m c =
  Model.add_constraint ~name:"cut" m
    (Expr.of_terms (List.map (fun (v, w) -> (w, v)) c.coeffs))
    c.cmp c.rhs

(* ---- Gomory mixed-integer cuts ---------------------------------------- *)

(* Separation margin: rows whose basic value is nearly integral produce
   numerically fragile cuts, so only fractional parts in
   [frac_margin, 1 - frac_margin] are used. *)
let frac_margin = 0.01

let tiny = 1e-11

let gomory ~compiled:c ~tableau:tab ~x ~deadline ~row_valid_le
    ~bounds_pristine ~max_cuts =
  let n = c.C.n and m = c.C.m and nt = c.C.nt in
  let alpha = Array.make nt 0.0 in
  let w = Array.make n 0.0 in
  let candidates = ref [] in
  for r = 0 to m - 1 do
    let k = Simplex.tableau_basic_var tab r in
    if k < n && c.C.integer.(k) then begin
      let b = Simplex.tableau_basic_value tab r in
      let f0 = b -. Float.floor b in
      if f0 > frac_margin && f0 < 1.0 -. frac_margin then begin
        Simplex.tableau_row tab r alpha;
        (* Shift every nonbasic column to its active bound, building the
           GMI multipliers gamma over the shifted (nonnegative) space:
             x_B + sum_j abar_j xtilde_j = b,  f0 = frac(b)
             sum_j gamma_j xtilde_j >= 1. *)
        let ok = ref true in
        let valid_le = ref infinity in
        if not bounds_pristine then valid_le := deadline;
        Array.fill w 0 n 0.0;
        let rhs_cut = ref 1.0 in
        (try
           for j = 0 to nt - 1 do
             let a = alpha.(j) in
             if j <> k && Float.abs a > tiny then begin
               let s, p =
                 match Simplex.tableau_col_status tab j with
                 | Simplex.Col_lower -> (1.0, c.C.lb.(j))
                 | Simplex.Col_upper -> (-1.0, c.C.ub.(j))
                 | Simplex.Col_free | Simplex.Col_basic ->
                   ok := false;
                   raise Exit
               in
               if Float.is_integer p |> not then
                 if j < n && c.C.integer.(j) then begin
                   (* can't happen for 0/1 mode binaries; bail to stay
                      safe rather than emit an unproven cut *)
                   ok := false;
                   raise Exit
                 end;
               let abar = a *. s in
               let gamma =
                 if j < n && c.C.integer.(j) && Float.is_integer p then begin
                   let f = abar -. Float.floor abar in
                   if f <= f0 then f /. f0 else (1.0 -. f) /. (1.0 -. f0)
                 end
                 else if abar >= 0.0 then abar /. f0
                 else -.abar /. (1.0 -. f0)
               in
               if gamma > tiny then begin
                 if Float.is_finite p |> not then begin
                   ok := false;
                   raise Exit
                 end;
                 (* Bound shifts away from the pristine box tie the cut
                    to the sweep point whose fixings produced them. *)
                 if j < nt && (c.C.lb.(j) <> c.C.lb0.(j) || c.C.ub.(j) <> c.C.ub0.(j))
                 then valid_le := Float.min !valid_le deadline;
                 (* gamma * xtilde = gamma * s * (x_j - p) *)
                 let cj = gamma *. s in
                 rhs_cut := !rhs_cut +. (cj *. p);
                 if j < n then w.(j) <- w.(j) +. cj
                 else begin
                   (* slack of row i: s_i = rhs_i - a_i . x (scaled) *)
                   let i = j - n in
                   valid_le := Float.min !valid_le row_valid_le.(i);
                   for q = c.C.row_ptr.(i) to c.C.row_ptr.(i + 1) - 1 do
                     w.(c.C.row_col.(q)) <-
                       w.(c.C.row_col.(q)) -. (cj *. c.C.row_val.(q))
                   done;
                   rhs_cut := !rhs_cut -. (cj *. c.C.rhs.(i))
                 end
               end
             end
           done
         with Exit -> ());
        if !ok then begin
          (* Drop numerically negligible coefficients, paying for each
             dropped term with its worst-case contribution (pristine
             bounds are the widest the variable can move in any node of
             this sweep point's search tree). *)
          let maxc = ref 0.0 in
          for j = 0 to n - 1 do
            maxc := Float.max !maxc (Float.abs w.(j))
          done;
          if !maxc > 1e-9 then begin
            let minc = ref infinity in
            (try
               for j = 0 to n - 1 do
                 let a = Float.abs w.(j) in
                 if a > 0.0 && a <= 1e-10 *. !maxc then begin
                   let hi =
                     if w.(j) > 0.0 then w.(j) *. c.C.ub0.(j)
                     else w.(j) *. c.C.lb0.(j)
                   in
                   if Float.is_finite hi then begin
                     rhs_cut := !rhs_cut -. hi;
                     w.(j) <- 0.0
                   end
                   else begin
                     ok := false;
                     raise Exit
                   end
                 end
                 else if a > 0.0 then minc := Float.min !minc a
               done
             with Exit -> ());
            if !ok && !maxc /. !minc < 1e7 then begin
              (* Safety slack against accumulated floating error: relax
                 the >= cut slightly.  Weakens it imperceptibly, keeps it
                 valid under the validity property test. *)
              let rhs_cut =
                !rhs_cut -. (1e-9 *. (1.0 +. Float.abs !rhs_cut))
              in
              let coeffs = ref [] in
              let count = ref 0 in
              for j = n - 1 downto 0 do
                if w.(j) <> 0.0 then begin
                  coeffs := (j, w.(j)) :: !coeffs;
                  incr count
                end
              done;
              if !count > 0 && !count <= 200 then begin
                let cut =
                  {
                    coeffs = !coeffs;
                    cmp = Model.Ge;
                    rhs = rhs_cut;
                    valid_le = !valid_le;
                    origin = Gomory;
                    born = deadline;
                  }
                in
                let viol = violation cut x in
                if viol > 1e-6 *. (1.0 +. Float.abs rhs_cut) then
                  candidates := (viol, cut) :: !candidates
              end
            end
          end
        end
      end
    end
  done;
  !candidates
  |> List.sort (fun (a, _) (b, _) -> Float.compare b a)
  |> List.filteri (fun i _ -> i < max_cuts)
  |> List.map snd

(* ---- knapsack cover cuts ---------------------------------------------- *)

(* A cover is certified by its weight sum exceeding the deadline; the cut
   then stays valid for every deadline below that sum (with a small
   relative safety margin against float comparison noise). *)
let cover_valid_le weight_sum =
  (weight_sum *. (1.0 -. 1e-9)) -. 1e-9

let exceeds ~deadline weight_sum =
  weight_sum > (deadline *. (1.0 +. 1e-9)) +. 1e-9

let covers ~row ~deadline ~x =
  let items =
    row
    |> List.filter (fun (wt, _) -> wt > 0.0)
    |> List.sort (fun (wa, va) (wb, vb) ->
           let c = Float.compare x.(vb) x.(va) in
           if c <> 0 then c
           else
             let c = Float.compare wb wa in
             if c <> 0 then c else compare va vb)
  in
  (* Greedy: most-fractional-first until the weights overrun the
     deadline. *)
  let rec build acc sum = function
    | [] -> None
    | (wt, v) :: rest ->
      let acc = (wt, v) :: acc and sum = sum +. wt in
      if exceeds ~deadline sum then Some (acc, sum) else build acc sum rest
  in
  match build [] 0.0 items with
  | None -> []
  | Some (cover, sum) ->
    (* Minimize: drop low-x members while the cover still certifies. *)
    let cover, sum =
      List.fold_left
        (fun (keep, sum) (wt, v) ->
          if List.length keep > 2 && exceeds ~deadline (sum -. wt) then
            (List.filter (fun (_, v') -> v' <> v) keep, sum -. wt)
          else (keep, sum))
        (cover, sum)
        (List.sort
           (fun (_, va) (_, vb) -> Float.compare x.(va) x.(vb))
           cover)
    in
    let vars = List.map snd cover |> List.sort_uniq compare in
    let k = List.length vars in
    if k < 2 then []
    else
      let cut =
        {
          coeffs = List.map (fun v -> (v, 1.0)) vars;
          cmp = Model.Le;
          rhs = float_of_int (k - 1);
          valid_le = cover_valid_le sum;
          origin = Cover;
          born = deadline;
        }
      in
      if violation cut x > 1e-6 then [ cut ] else []

(* ---- GUB cover cuts ---------------------------------------------------- *)

let gub_covers ~groups ~deadline ~x =
  (* Feasible points pick exactly one mode per group, so the deadline row
     is bounded below by the sum of per-group minima; raising chosen
     groups to a heavy-mode threshold theta_g certifies infeasibility
     once the total passes the deadline. *)
  let n_groups = List.length groups in
  if n_groups = 0 then []
  else begin
    let mins =
      List.map
        (fun (_, wts) -> Array.fold_left Float.min infinity wts)
        groups
    in
    let base = List.fold_left ( +. ) 0.0 mins in
    if not (Float.is_finite base) then []
    else begin
      (* Per group: the threshold maximizing selected fractional mass
         among thresholds strictly above the group's minimum. *)
      let picks =
        List.map2
          (fun (vars, wts) mn ->
            let thresholds =
              Array.to_list wts
              |> List.filter (fun t -> t > mn +. 1e-12)
              |> List.sort_uniq Float.compare
            in
            let best = ref None in
            List.iter
              (fun theta ->
                let mass = ref 0.0 in
                Array.iteri
                  (fun i v -> if wts.(i) >= theta then mass := !mass +. x.(v))
                  vars;
                match !best with
                | Some (_, m) when m >= !mass -. 1e-12 -> ()
                | _ -> best := Some (theta, !mass))
              thresholds;
            Option.map
              (fun (theta, mass) ->
                let sel =
                  Array.to_list vars
                  |> List.filteri (fun i _ -> wts.(i) >= theta)
                in
                (theta -. mn, mass, sel))
              !best)
          groups mins
        |> List.filter_map Fun.id
      in
      (* Add groups by descending fractional mass until the certificate
         weight passes the deadline. *)
      let picks =
        List.sort
          (fun (_, ma, sa) (_, mb, sb) ->
            let c = Float.compare mb ma in
            if c <> 0 then c else compare sa sb)
          picks
      in
      let rec build chosen sum mass count = function
        | [] -> None
        | (delta, m, sel) :: rest ->
          let chosen = sel :: chosen in
          let sum = sum +. delta and mass = mass +. m in
          let count = count + 1 in
          if exceeds ~deadline sum then Some (chosen, sum, mass, count)
          else build chosen sum mass count rest
      in
      match build [] base 0.0 0 picks with
      | None -> []
      | Some (chosen, sum, mass, count) ->
        if count < 1 || mass <= float_of_int (count - 1) +. 1e-6 then []
        else
          let vars = List.concat chosen |> List.sort_uniq compare in
          let cut =
            {
              coeffs = List.map (fun v -> (v, 1.0)) vars;
              cmp = Model.Le;
              rhs = float_of_int (count - 1);
              valid_le = cover_valid_le sum;
              origin = Gub;
              born = deadline;
            }
          in
          if violation cut x > 1e-6 then [ cut ] else []
    end
  end

(* ---- deduplicated pool ------------------------------------------------- *)

module Pool = struct
  type cut = t

  type entry = { mutable c : cut }

  type t = {
    tbl : (string, entry) Hashtbl.t;
    mutable items : entry list;  (* newest first *)
    mutable n : int;
    max_cuts : int;
  }

  let create ?(max_cuts = 1024) () =
    { tbl = Hashtbl.create 64; items = []; n = 0; max_cuts }

  (* Structural key: direction-normalized ([Ge]) and scaled so the
     largest coefficient magnitude is 1, rounded to 9 decimal digits so
     float noise between separations of the same cut cannot split
     entries. *)
  let key (c : cut) =
    let sign = match c.cmp with Model.Ge -> 1.0 | _ -> -1.0 in
    let mx =
      List.fold_left
        (fun acc (_, w) -> Float.max acc (Float.abs w))
        0.0 c.coeffs
    in
    let scale = if mx > 0.0 then sign /. mx else sign in
    let b = Buffer.create 64 in
    List.iter
      (fun (v, w) -> Buffer.add_string b (Printf.sprintf "%d:%.9g;" v (w *. scale)))
      c.coeffs;
    Buffer.add_string b (Printf.sprintf "|%.9g" (c.rhs *. scale));
    Buffer.contents b

  let add t c =
    let k = key c in
    match Hashtbl.find_opt t.tbl k with
    | Some e ->
      if c.valid_le > e.c.valid_le then
        e.c <- { e.c with valid_le = c.valid_le };
      false
    | None ->
      if t.n >= t.max_cuts then false
      else begin
        let e = { c } in
        Hashtbl.add t.tbl k e;
        t.items <- e :: t.items;
        t.n <- t.n + 1;
        true
      end

  let applicable t ~deadline =
    List.rev t.items
    |> List.filter_map (fun e ->
           if deadline <= e.c.valid_le then Some e.c else None)

  let size t = t.n
end
