(** Steal-able priority pools of open branch-and-bound nodes.

    One pool per worker domain: owners [push] children and [pop] their own
    best node; idle workers [steal] the best node of a victim's pool.
    Pools are ordered by the comparison given at creation (best-bound
    first in {!Solver}), so a single-worker run reproduces the sequential
    best-bound search exactly.  All operations are thread-safe. *)

type 'a t

val create : cmp:('a -> 'a -> int) -> 'a t

val push : 'a t -> 'a -> unit

val pop : 'a t -> 'a option
(** Best element, or [None] when empty. *)

val steal : 'a t -> 'a option
(** Same as {!pop}; named for call-site clarity when the caller is not
    the pool's owner. *)

val size : 'a t -> int

val drain : 'a t -> 'a list
(** Remove and return everything (in no particular order); used to
    compute the best open bound when a limit stops the search early. *)
