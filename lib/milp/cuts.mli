(** Cutting planes for the DVS mode-assignment MILP, shared across a
    deadline sweep.

    Three separator families, all rooted in the paper's model shape
    (binary mode choices grouped one-per-edge under a single deadline
    knapsack row):

    - {!gomory}: Gomory mixed-integer cuts read off the revised-simplex
      tableau of the (possibly already cut-augmented) LP relaxation;
    - {!covers}: knapsack cover cuts separated from the deadline row's
      binary terms;
    - {!gub_covers}: GUB cover cuts that use the one-mode-per-edge SOS1
      structure — each group contributes at least its cheapest selected
      mode time, so small sets of "heavy" modes per group can already
      overrun the deadline.

    Every cut carries a validity tag [valid_le]: the cut is valid for
    any deadline value [d <= valid_le] (in the deadline row's RHS
    units).  Deadline-independent cuts have [valid_le = infinity] and
    are re-applied verbatim across sweep points; cover/GUB cuts are
    valid below their covering weight sum and so survive to every
    tighter point; Gomory cuts derived through the deadline row are
    valid at their own point and all tighter ones.

    A {!Pool.t} deduplicates cuts structurally (scaled, rounded
    coefficient vectors), so the same cover rediscovered at a later
    sweep point counts as a pool hit rather than a new row.  The pool is
    not thread-safe; callers running sweep points concurrently guard it
    with their own lock. *)

open Dvs_lp

type origin = Gomory | Cover | Gub

type t = {
  coeffs : (Model.var * float) list;  (** structural terms, ascending var *)
  cmp : Model.cmp;  (** [Le] or [Ge] — never [Eq] *)
  rhs : float;
  valid_le : float;  (** valid for deadline RHS values [<= valid_le] *)
  origin : origin;
  born : float;  (** deadline RHS value of the separating sweep point *)
}

val pp : Format.formatter -> t -> unit

val violation : t -> float array -> float
(** Amount by which a point (indexed by {!Model.var}) violates the cut;
    [<= 0] when satisfied. *)

val satisfied : ?tol:float -> t -> float array -> bool
(** [violation] within tolerance (default [1e-6]). *)

val add_to_model : Model.t -> t -> unit
(** Append the cut as an ordinary constraint row (named ["cut"]). *)

(** {2 Separators} *)

val gomory :
  compiled:Compiled.t ->
  tableau:Simplex.tableau ->
  x:float array ->
  deadline:float ->
  row_valid_le:float array ->
  bounds_pristine:bool ->
  max_cuts:int ->
  t list
(** Gomory mixed-integer cuts from every tableau row whose basic
    variable is integer with a usefully fractional value, strongest
    violation first, at most [max_cuts].

    [x] is the LP solution the tableau was built from (structural
    values).  [row_valid_le.(i)] caps the validity of any cut whose
    derivation touches row [i]'s right-hand side (deadline rows carry
    the current deadline, previously added cut rows carry their own
    [valid_le], base rows [infinity]).  [bounds_pristine] declares
    whether the compiled model's current bounds equal its pristine ones;
    when [false] (e.g. deadline-implied fixings are applied) every
    derived cut is capped at [deadline].  Cuts are emitted in [Ge] form
    over structural variables only — slack columns are substituted out
    through their defining rows. *)

val covers :
  row:(float * Model.var) list ->
  deadline:float ->
  x:float array ->
  t list
(** Knapsack cover cuts from the deadline row restricted to its binary
    terms [(weight, var)] with positive weights: a greedy cover [C] with
    total weight beyond [deadline] yields [sum_C k <= |C| - 1], emitted
    only when violated by [x].  Valid for any deadline below the cover's
    weight sum. *)

val gub_covers :
  groups:(Model.var array * float array) list ->
  deadline:float ->
  x:float array ->
  t list
(** GUB cover cuts over one-mode-per-edge groups: [groups] pairs each
    group's binaries with their deadline-row weights.  Selecting a
    threshold mode set per group whose minimum times (plus every other
    group's cheapest mode) exceed the deadline forbids all chosen groups
    from simultaneously picking heavy modes.  Valid for any deadline
    below the certifying weight sum. *)

(** {2 Deduplicated pool} *)

module Pool : sig
  type cut = t

  type t

  val create : ?max_cuts:int -> unit -> t
  (** [max_cuts] caps the pool size (default 1024); once full, {!add}
      rejects new cuts. *)

  val add : t -> cut -> bool
  (** [true] if the cut is new; [false] if a structurally identical cut
      is already pooled (its [valid_le] is widened to the max of the
      two) or the pool is full. *)

  val applicable : t -> deadline:float -> cut list
  (** Pooled cuts valid at the given deadline RHS value, in insertion
      order. *)

  val size : t -> int
end
