(* Memo cache for LP-relaxation solves, keyed by a structural fingerprint
   of the model plus the canonical set of bound fixings applied on top of
   it.  The sweep drivers in bench/ solve hundreds of near-identical
   models (same formulation, repeated warm-start seeds and shallow
   branch-and-bound prefixes); sharing one cache across those solves
   short-circuits the repeated work.

   Thread-safe: the table is mutex-protected, and the closure computing a
   missing entry runs *outside* the lock so concurrent workers never
   serialize on an LP solve.  Two workers may race to compute the same
   key; the first store wins and the loser's result is discarded, which
   keeps cached entries a deterministic function of the key (see
   {!Solver}'s determinism note). *)

open Dvs_lp

type key = {
  fp : int;
  fixings : (Model.var * float * float) list;  (* sorted by var *)
}

(* Entries carry a last-use stamp for LRU eviction.  Eviction scans the
   table for the minimum stamp: O(n), but it only runs once per insert
   beyond capacity and n <= max_entries, while every miss costs a full
   LP solve — the scan is noise by comparison. *)
type entry = {
  status : Simplex.status;
  basis : Simplex.basis option;
  mutable stamp : int;
}

type t = {
  mutex : Mutex.t;
  table : (key, entry) Hashtbl.t;
  max_entries : int;
  mutable tick : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

let create ?(max_entries = 4096) () =
  if max_entries < 1 then
    invalid_arg "Lp_cache.create: max_entries must be >= 1";
  { mutex = Mutex.create (); table = Hashtbl.create 64; max_entries;
    tick = 0; hits = 0; misses = 0; evictions = 0 }

let hits t =
  Mutex.lock t.mutex;
  let h = t.hits in
  Mutex.unlock t.mutex;
  h

let misses t =
  Mutex.lock t.mutex;
  let m = t.misses in
  Mutex.unlock t.mutex;
  m

let evictions t =
  Mutex.lock t.mutex;
  let e = t.evictions in
  Mutex.unlock t.mutex;
  e

let length t =
  Mutex.lock t.mutex;
  let n = Hashtbl.length t.table in
  Mutex.unlock t.mutex;
  n

type counts = { hits : int; misses : int; evictions : int; entries : int }

let stats t =
  Mutex.lock t.mutex;
  let s =
    { hits = t.hits; misses = t.misses; evictions = t.evictions;
      entries = Hashtbl.length t.table }
  in
  Mutex.unlock t.mutex;
  s

(* The fingerprint is the one computed by Compiled at compilation time
   (FNV-1a over the flat row-major arrays, exact float bit patterns).
   Keying off the compiled form means the fingerprint sees exactly what
   the kernel solves — post row scaling, post slack bounds — so models
   that compile identically share cache entries even if their Model-level
   representations differ cosmetically. *)
let fingerprint m = Compiled.fingerprint (Compiled.of_model m)

(* Cached solutions are shared, so hand each hit its own copy of the
   mutable value array. *)
let copy_status = function
  | Simplex.Optimal s ->
    Simplex.Optimal { s with Simplex.values = Array.copy s.Simplex.values }
  | (Simplex.Infeasible | Simplex.Unbounded | Simplex.Iter_limit _) as st ->
    st

let touch t e =
  t.tick <- t.tick + 1;
  e.stamp <- t.tick

let evict_lru t =
  let victim =
    Hashtbl.fold
      (fun k e acc ->
        match acc with
        | Some (_, stamp) when stamp <= e.stamp -> acc
        | _ -> Some (k, e.stamp))
      t.table None
  in
  match victim with
  | Some (k, _) ->
    Hashtbl.remove t.table k;
    t.evictions <- t.evictions + 1
  | None -> ()

let find_or_add t ~fingerprint ~fixings compute =
  let key = { fp = fingerprint; fixings } in
  Mutex.lock t.mutex;
  match Hashtbl.find_opt t.table key with
  | Some e ->
    t.hits <- t.hits + 1;
    touch t e;
    Mutex.unlock t.mutex;
    (copy_status e.status, e.basis)
  | None ->
    t.misses <- t.misses + 1;
    Mutex.unlock t.mutex;
    let ((st, basis) as r) = compute () in
    Mutex.lock t.mutex;
    if not (Hashtbl.mem t.table key) then begin
      if Hashtbl.length t.table >= t.max_entries then evict_lru t;
      let e = { status = copy_status st; basis; stamp = 0 } in
      touch t e;
      Hashtbl.add t.table key e
    end;
    Mutex.unlock t.mutex;
    r
