(* Memo cache for LP-relaxation solves, keyed by a structural fingerprint
   of the model plus the canonical set of bound fixings applied on top of
   it.  The sweep drivers in bench/ solve hundreds of near-identical
   models (same formulation, repeated warm-start seeds and shallow
   branch-and-bound prefixes); sharing one cache across those solves
   short-circuits the repeated work.

   Thread-safe: the table is mutex-protected, and the closure computing a
   missing entry runs *outside* the lock so concurrent workers never
   serialize on an LP solve.  Two workers may race to compute the same
   key; the first store wins and the loser's result is discarded, which
   keeps cached entries a deterministic function of the key (see
   {!Solver}'s determinism note). *)

open Dvs_lp

type key = {
  fp : int;
  fixings : (Model.var * float * float) list;  (* sorted by var *)
}

type t = {
  mutex : Mutex.t;
  table : (key, Simplex.status * Simplex.basis option) Hashtbl.t;
  max_entries : int;
  mutable hits : int;
  mutable misses : int;
}

let create ?(max_entries = 4096) () =
  { mutex = Mutex.create (); table = Hashtbl.create 64; max_entries;
    hits = 0; misses = 0 }

let hits t =
  Mutex.lock t.mutex;
  let h = t.hits in
  Mutex.unlock t.mutex;
  h

let misses t =
  Mutex.lock t.mutex;
  let m = t.misses in
  Mutex.unlock t.mutex;
  m

let length t =
  Mutex.lock t.mutex;
  let n = Hashtbl.length t.table in
  Mutex.unlock t.mutex;
  n

(* FNV-1a over the model's structure: bounds, integrality, constraint
   matrix and objective.  Floats are hashed by their bit patterns, so two
   models fingerprint equal only when they are numerically identical. *)
let fnv_prime = 0x100000001b3

let combine h x = (h lxor x) * fnv_prime

let combine_float h f = combine h (Int64.to_int (Int64.bits_of_float f))

let combine_expr h e =
  List.fold_left
    (fun h (v, c) -> combine_float (combine h v) c)
    (combine_float h (Expr.const e))
    (Expr.coeffs e)

let fingerprint m =
  let h = ref (combine 0x811c9dc5 (Model.num_vars m)) in
  for v = 0 to Model.num_vars m - 1 do
    let lb, ub = Model.bounds m v in
    h := combine_float (combine_float !h lb) ub;
    h := combine !h (if Model.is_integer m v then 1 else 0)
  done;
  List.iter
    (fun (c : Model.constr) ->
      let cmp = match c.cmp with Model.Le -> 0 | Ge -> 1 | Eq -> 2 in
      h := combine_float (combine (combine_expr !h c.expr) cmp) c.rhs)
    (Model.constraints m);
  let sense, obj = Model.objective m in
  h := combine (combine_expr !h obj)
         (match sense with Model.Minimize -> 0 | Maximize -> 1);
  !h

(* Cached solutions are shared, so hand each hit its own copy of the
   mutable value array. *)
let copy_status = function
  | Simplex.Optimal s ->
    Simplex.Optimal { s with Simplex.values = Array.copy s.Simplex.values }
  | (Simplex.Infeasible | Simplex.Unbounded | Simplex.Iter_limit _) as st ->
    st

let find_or_add t ~fingerprint ~fixings compute =
  let key = { fp = fingerprint; fixings } in
  Mutex.lock t.mutex;
  match Hashtbl.find_opt t.table key with
  | Some (st, basis) ->
    t.hits <- t.hits + 1;
    Mutex.unlock t.mutex;
    (copy_status st, basis)
  | None ->
    t.misses <- t.misses + 1;
    Mutex.unlock t.mutex;
    let ((st, basis) as r) = compute () in
    Mutex.lock t.mutex;
    if Hashtbl.length t.table < t.max_entries
       && not (Hashtbl.mem t.table key)
    then Hashtbl.add t.table key (copy_status st, basis);
    Mutex.unlock t.mutex;
    r
