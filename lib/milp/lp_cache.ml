(* Memo cache for LP-relaxation solves, keyed by a structural fingerprint
   of the model plus the canonical set of bound fixings applied on top of
   it.  The sweep drivers in bench/ solve hundreds of near-identical
   models (same formulation, repeated warm-start seeds and shallow
   branch-and-bound prefixes); sharing one cache across those solves
   short-circuits the repeated work.

   Thread-safe: the table is mutex-protected, and the closure computing a
   missing entry runs *outside* the lock so concurrent workers never
   serialize on an LP solve.  Two workers may race to compute the same
   key; the first store wins and the loser's result is discarded, which
   keeps cached entries a deterministic function of the key (see
   {!Solver}'s determinism note). *)

open Dvs_lp

type key = {
  fp : int;
  fixings : (Model.var * float * float) list;  (* sorted by var *)
}

(* Entries carry a last-use stamp for LRU eviction.  Eviction scans the
   table for the minimum stamp: O(n), but it only runs once per insert
   beyond capacity and n <= max_entries, while every miss costs a full
   LP solve — the scan is noise by comparison. *)
type entry = {
  status : Simplex.status;
  basis : Simplex.basis option;
  mutable stamp : int;
}

type t = {
  mutex : Mutex.t;
  table : (key, entry) Hashtbl.t;
  max_entries : int;
  mutable tick : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

let create ?(max_entries = 4096) () =
  if max_entries < 1 then
    invalid_arg "Lp_cache.create: max_entries must be >= 1";
  { mutex = Mutex.create (); table = Hashtbl.create 64; max_entries;
    tick = 0; hits = 0; misses = 0; evictions = 0 }

let hits t =
  Mutex.lock t.mutex;
  let h = t.hits in
  Mutex.unlock t.mutex;
  h

let misses t =
  Mutex.lock t.mutex;
  let m = t.misses in
  Mutex.unlock t.mutex;
  m

let evictions t =
  Mutex.lock t.mutex;
  let e = t.evictions in
  Mutex.unlock t.mutex;
  e

let length t =
  Mutex.lock t.mutex;
  let n = Hashtbl.length t.table in
  Mutex.unlock t.mutex;
  n

type counts = { hits : int; misses : int; evictions : int; entries : int }

let stats t =
  Mutex.lock t.mutex;
  let s =
    { hits = t.hits; misses = t.misses; evictions = t.evictions;
      entries = Hashtbl.length t.table }
  in
  Mutex.unlock t.mutex;
  s

(* FNV-1a over the model's structure: bounds, integrality, constraint
   matrix and objective.  Floats are hashed by their bit patterns, so two
   models fingerprint equal only when they are numerically identical. *)
let fnv_prime = 0x100000001b3

let combine h x = (h lxor x) * fnv_prime

let combine_float h f = combine h (Int64.to_int (Int64.bits_of_float f))

let combine_expr h e =
  List.fold_left
    (fun h (v, c) -> combine_float (combine h v) c)
    (combine_float h (Expr.const e))
    (Expr.coeffs e)

let fingerprint m =
  let h = ref (combine 0x811c9dc5 (Model.num_vars m)) in
  for v = 0 to Model.num_vars m - 1 do
    let lb, ub = Model.bounds m v in
    h := combine_float (combine_float !h lb) ub;
    h := combine !h (if Model.is_integer m v then 1 else 0)
  done;
  List.iter
    (fun (c : Model.constr) ->
      let cmp = match c.cmp with Model.Le -> 0 | Ge -> 1 | Eq -> 2 in
      h := combine_float (combine (combine_expr !h c.expr) cmp) c.rhs)
    (Model.constraints m);
  let sense, obj = Model.objective m in
  h := combine (combine_expr !h obj)
         (match sense with Model.Minimize -> 0 | Maximize -> 1);
  !h

(* Cached solutions are shared, so hand each hit its own copy of the
   mutable value array. *)
let copy_status = function
  | Simplex.Optimal s ->
    Simplex.Optimal { s with Simplex.values = Array.copy s.Simplex.values }
  | (Simplex.Infeasible | Simplex.Unbounded | Simplex.Iter_limit _) as st ->
    st

let touch t e =
  t.tick <- t.tick + 1;
  e.stamp <- t.tick

let evict_lru t =
  let victim =
    Hashtbl.fold
      (fun k e acc ->
        match acc with
        | Some (_, stamp) when stamp <= e.stamp -> acc
        | _ -> Some (k, e.stamp))
      t.table None
  in
  match victim with
  | Some (k, _) ->
    Hashtbl.remove t.table k;
    t.evictions <- t.evictions + 1
  | None -> ()

let find_or_add t ~fingerprint ~fixings compute =
  let key = { fp = fingerprint; fixings } in
  Mutex.lock t.mutex;
  match Hashtbl.find_opt t.table key with
  | Some e ->
    t.hits <- t.hits + 1;
    touch t e;
    Mutex.unlock t.mutex;
    (copy_status e.status, e.basis)
  | None ->
    t.misses <- t.misses + 1;
    Mutex.unlock t.mutex;
    let ((st, basis) as r) = compute () in
    Mutex.lock t.mutex;
    if not (Hashtbl.mem t.table key) then begin
      if Hashtbl.length t.table >= t.max_entries then evict_lru t;
      let e = { status = copy_status st; basis; stamp = 0 } in
      touch t e;
      Hashtbl.add t.table key e
    end;
    Mutex.unlock t.mutex;
    r
