(** Parallel, warm-started branch and bound over the {!Dvs_lp.Simplex}
    relaxation — the single MILP entry point used by the DVS pipeline,
    the CLI and the experiment harness.

    The search runs on a pool of OCaml 5 domains ([Config.jobs] of them,
    defaulting to [Domain.recommended_domain_count ()]).  Each worker
    owns a best-bound {!Work_queue} of open nodes and steals from its
    peers when idle; child nodes warm start their LP relaxation from the
    parent's optimal basis ({!Dvs_lp.Simplex.solve_ext}); and shallow
    relaxations are memoized in an {!Lp_cache} that callers can share
    across solves of near-identical models.

    {b Determinism.} The reported objective is reproducible regardless of
    worker count: fathoming only ever discards subtrees whose bound is
    within [gap_rel] slack of an incumbent (so nothing meaningfully
    better than the final incumbent is lost), incumbent merging is
    tie-broken by the lexicographically smallest branch path, and cached
    relaxations are solved without the basis hint so cache contents never
    depend on worker interleaving.

    {b Fault tolerance.} A worker exception never aborts the solve: the
    crash is contained to the node being processed (only that subtree is
    lost), the pool drains normally, and the result carries a
    {!outcome.Degraded} outcome recording every contained crash together
    with the best incumbent found.  A {!Fault} injector can be attached
    ([Config.with_fault]) to force crashes, pivot exhaustion, cache
    misses and clock skew deterministically in tests.

    This replaces the paper's CPLEX: the DVS MILPs it targets have a few
    hundred binaries (after edge filtering) with a one-mode-per-edge SOS1
    structure whose LP relaxations are close to integral. *)

(** Builder-style solver configuration; construct with {!Config.make} and
    refine with the [with_*] combinators. *)
module Config : sig
  type branching =
    | Fractional
        (** branch on the most fractional integer variable (floor/ceil);
            the historical default, kept for bit-for-bit reproducibility
            of existing runs *)
    | Pseudocost_gub
        (** branch on SOS1 mode groups (GUB dichotomy splitting the
            group's fractional mass) and leftover integer variables,
            scored by pseudocosts with reliability initialization
            (pivot-capped probe LPs until an entity has
            [reliability] observations per direction) *)

  type node_order =
    | Best_bound  (** explore smallest-bound nodes first (default) *)
    | Depth_first  (** dive: deepest nodes first, bound as tie-break *)

  type t = {
    jobs : int;  (** worker domains; default [Domain.recommended_domain_count ()] *)
    max_nodes : int;  (** node budget; default 200_000 *)
    int_tol : float;  (** integrality tolerance; default 1e-6 *)
    gap_rel : float;  (** relative optimality gap to stop at; default 1e-9 *)
    time_limit : float option;  (** wall-clock seconds *)
    rounding : bool;  (** run the rounding heuristic (root and spine) *)
    sos1 : Dvs_lp.Model.var list list;
        (** groups whose binaries sum to 1; guides the rounding heuristic
            (the one-mode-per-edge structure of the DVS formulation) *)
    warm_start : (Dvs_lp.Model.var * float) list;
        (** variable fixings known to admit a feasible completion, solved
            once to seed the incumbent (e.g. every edge at the fastest
            mode) *)
    warm_solution : Dvs_lp.Simplex.solution option;
        (** a complete known-feasible integral solution, in the original
            variable space; seeds the incumbent objective without any LP
            solve and is returned verbatim unless the search strictly
            beats it *)
    root_bound : float option;
        (** caller-proven dual bound on the optimum (e.g. the continuous
            relaxation); replaces the infinite root bound, so a
            within-gap [warm_solution] fathoms the whole tree at zero
            nodes *)
    log : (string -> unit) option;
    cache : Lp_cache.t option;
        (** share an LP-relaxation cache across solves; a private one is
            created per solve when absent *)
    cache_depth : int;  (** memoize relaxations up to this depth; default 4 *)
    fault : Fault.t option;
        (** fault injector (tests and the resilience bench); [None] in
            production solves *)
    obs : Dvs_obs.t;
        (** observability bundle the solve reports into; defaults to
            {!Dvs_obs.disabled}, whose hot-path cost is one boolean test *)
    presolve : bool;
        (** run the MILP-safe {!Dvs_lp.Presolve} reductions before
            compiling; default [true].  Solutions are postsolved back to
            the original variable space, so results are indistinguishable
            except faster. *)
    pricing : Dvs_lp.Simplex.pricing;
        (** simplex pricing rule for every relaxation; default
            {!Dvs_lp.Simplex.Steepest_edge} *)
    basis : Dvs_lp.Simplex.basis_kind;
        (** simplex basis backend for every relaxation; default
            {!Dvs_lp.Simplex.Lu} (sparse LU + eta file).
            {!Dvs_lp.Simplex.Dense} keeps the explicit dense inverse —
            the correctness oracle and CI ablation leg.  Either backend
            finds the same vertex; only the linear-algebra cost
            differs. *)
    refactor : Dvs_lp.Simplex.refactor_policy option;
        (** basis refactorization trigger override; [None] (default)
            uses {!Dvs_lp.Simplex.default_refactor} for the selected
            backend *)
    fixings : (Dvs_lp.Model.var * float) list;
        (** externally implied variable fixings (e.g.
            [Dvs_core.Formulation.implied_fixings] from the edge filter),
            fed to presolve as exact bounds before the first round *)
    branching : branching;
        (** branching rule; default {!Fractional} (see {!branching}) *)
    node_order : node_order;
        (** node selection order within each worker queue; default
            {!Best_bound} *)
    reliability : int;
        (** pseudocost reliability threshold: entities with fewer than
            this many observed gains per direction are probed with a
            pivot-capped LP before trusting their score; default 4 *)
  }

  val make :
    ?jobs:int -> ?max_nodes:int -> ?time_limit:float -> ?gap_rel:float ->
    ?int_tol:float -> ?rounding:bool -> ?log:(string -> unit) ->
    ?cache:Lp_cache.t -> ?cache_depth:int -> ?fault:Fault.t ->
    ?obs:Dvs_obs.t -> ?presolve:bool -> ?pricing:Dvs_lp.Simplex.pricing ->
    ?basis:Dvs_lp.Simplex.basis_kind ->
    ?refactor:Dvs_lp.Simplex.refactor_policy ->
    ?branching:branching -> ?node_order:node_order -> ?reliability:int ->
    unit -> t
  (** Raises [Invalid_argument] if [jobs < 1], [reliability < 0], or the
      [refactor] policy has a non-positive trigger. *)

  val default : t
  (** [make ()]. *)

  val with_jobs : int -> t -> t

  val with_sos1 : Dvs_lp.Model.var list list -> t -> t

  val with_warm_start : (Dvs_lp.Model.var * float) list -> t -> t

  val with_warm_solution : Dvs_lp.Simplex.solution -> t -> t

  val with_root_bound : float -> t -> t
  (** Raises [Invalid_argument] when the bound is not finite. *)

  val with_presolve : bool -> t -> t

  val with_pricing : Dvs_lp.Simplex.pricing -> t -> t

  val with_basis : Dvs_lp.Simplex.basis_kind -> t -> t

  val with_refactor : Dvs_lp.Simplex.refactor_policy -> t -> t

  val with_fixings : (Dvs_lp.Model.var * float) list -> t -> t

  val with_branching : branching -> t -> t

  val with_node_order : node_order -> t -> t

  val with_log : (string -> unit) -> t -> t

  val with_cache : Lp_cache.t -> t -> t

  val with_fault : Fault.t -> t -> t

  val with_obs : Dvs_obs.t -> t -> t
end

type stop_reason =
  | Node_limit
  | Time_limit
  | Iter_limit  (** the simplex pivot budget ran out inside a relaxation *)

type crash = {
  worker : int;  (** worker id that contained the exception *)
  depth : int;  (** depth of the node being processed *)
  path : int list;  (** its branch path (innermost decision first) *)
  message : string;  (** [Printexc.to_string] of the exception *)
}

type degradation = {
  crashes : crash list;  (** contained worker crashes, oldest first *)
  stopped : stop_reason option;  (** a limit additionally hit, if any *)
}

type outcome =
  | Optimal  (** proven within the gap *)
  | Feasible of stop_reason
      (** incumbent found, but a limit stopped the proof *)
  | Infeasible
  | Unbounded
  | No_solution of stop_reason  (** limits hit before any incumbent *)
  | Degraded of degradation
      (** worker exceptions were contained: only the crashed nodes'
          subtrees were lost, the rest of the search completed, and the
          best incumbent (if any) is in {!result.solution}.  Optimality
          cannot be claimed; {!result.bound} still covers the lost
          subtrees via the crashed nodes' parent-relaxation bounds. *)

type stats = {
  nodes : int;  (** nodes explored *)
  lp_solves : int;  (** LP relaxations solved (including heuristics) *)
  lp_pivots : int;  (** total simplex pivots across those solves *)
  cache_hits : int;  (** relaxations answered from the {!Lp_cache} *)
  cache_misses : int;
  cache_evictions : int;  (** LRU evictions during this solve *)
  steals : int;  (** nodes taken from another worker's queue *)
  wall_seconds : float;
  cpu_seconds : float;  (** process CPU time, summed over all domains *)
  workers : int;
  worker_nodes : int array;  (** nodes processed per worker *)
}

val worker_utilization : stats -> float
(** Load balance in [0, 1]: mean worker node count over the maximum
    (1.0 = perfectly even; 1.0 by convention when no nodes ran). *)

type result = {
  outcome : outcome;
  solution : Dvs_lp.Simplex.solution option;
  bound : float;  (** best proven bound on the optimum *)
  stats : stats;
}

val solve : ?config:Config.t -> Dvs_lp.Model.t -> result
(** Integrality markers on the model's variables are enforced; everything
    else is as in the LP.  Works for both senses.  The base model is not
    mutated and may be reused across calls. *)

val pp_stop_reason : Format.formatter -> stop_reason -> unit

val pp_outcome : Format.formatter -> outcome -> unit

val pp_stats : Format.formatter -> stats -> unit
