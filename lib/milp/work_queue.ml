(* A mutex-protected, steal-able pool of open branch-and-bound nodes.

   Each worker domain owns one pool: it pushes the children it generates
   into its own pool and pops its own best node first; a worker whose pool
   runs dry steals the best node of a victim's pool instead.  Keeping the
   pools bound-ordered (rather than plain LIFO deques) preserves the
   sequential solver's best-bound node selection when running with one
   worker, which keeps node counts — and the determinism argument — on
   par with the old sequential search.

   A plain mutex per pool is plenty here: processing one node costs an LP
   solve (tens of microseconds at minimum), orders of magnitude above the
   lock. *)

type 'a t = { mutex : Mutex.t; heap : 'a Heap.t }

let create ~cmp = { mutex = Mutex.create (); heap = Heap.create ~cmp }

let with_lock q f =
  Mutex.lock q.mutex;
  match f q.heap with
  | r ->
    Mutex.unlock q.mutex;
    r
  | exception e ->
    Mutex.unlock q.mutex;
    raise e

let push q x = with_lock q (fun h -> Heap.push h x)

let pop q = with_lock q Heap.pop

(* Stealing takes the victim's best node too: near-root, high-value
   subtrees migrate to idle workers, which is what balances the load. *)
let steal = pop

let size q = with_lock q Heap.size

let drain q =
  with_lock q (fun h ->
      let rec go acc =
        match Heap.pop h with None -> acc | Some x -> go (x :: acc)
      in
      go [])
