(* Deterministic fault injection for the MILP solve pipeline.

   An injector is a small bundle of atomic counters consulted by Solver
   at its failure-prone seams: node processing (worker crashes), LP
   solves (pivot exhaustion), cache lookups (forced misses) and the
   wall-clock read behind [time_limit] (clock skew).  Every trigger is a
   pure function of the injector's spec and a monotonically increasing
   ordinal, so a given spec replays the same fault sequence on every run
   at jobs=1 — and the *set* of injected faults is identical at any job
   count, even though which worker observes each one may vary.

   The injector deliberately lives outside the hot path: when no fault
   is configured a solve never touches this module. *)

exception Injected_crash of { worker : int; node : int }

let () =
  Printexc.register_printer (function
    | Injected_crash { worker; node } ->
      Some
        (Printf.sprintf "Fault.Injected_crash(worker %d, node %d)" worker
           node)
    | _ -> None)

type spec = {
  crash_at_nodes : int list;
  crash_every : int option;
  exhaust_pivots_at : int list;
  exhaust_pivots_every : int option;
  cache_miss_rate : float;
  clock_skew : float;
  seed : int;
}

type injected = { crashes : int; exhaustions : int; forced_misses : int }

type t = {
  spec : spec;
  node_ordinal : int Atomic.t;
  lp_ordinal : int Atomic.t;
  cache_ordinal : int Atomic.t;
  crashes : int Atomic.t;
  exhaustions : int Atomic.t;
  forced_misses : int Atomic.t;
}

let make ?(crash_at_nodes = []) ?crash_every ?(exhaust_pivots_at = [])
    ?exhaust_pivots_every ?(cache_miss_rate = 0.0) ?(clock_skew = 0.0)
    ?(seed = 0) () =
  if cache_miss_rate < 0.0 || cache_miss_rate > 1.0 then
    invalid_arg "Fault.make: cache_miss_rate must be in [0, 1]";
  List.iter
    (fun n -> if n < 1 then invalid_arg "Fault.make: ordinals are 1-based")
    (crash_at_nodes @ exhaust_pivots_at);
  List.iter
    (function
      | Some n when n < 1 ->
        invalid_arg "Fault.make: every-N periods must be >= 1"
      | _ -> ())
    [ crash_every; exhaust_pivots_every ];
  { spec =
      { crash_at_nodes; crash_every; exhaust_pivots_at; exhaust_pivots_every;
        cache_miss_rate; clock_skew; seed };
    node_ordinal = Atomic.make 0; lp_ordinal = Atomic.make 0;
    cache_ordinal = Atomic.make 0; crashes = Atomic.make 0;
    exhaustions = Atomic.make 0; forced_misses = Atomic.make 0 }

let spec t = t.spec

let reset t =
  Atomic.set t.node_ordinal 0;
  Atomic.set t.lp_ordinal 0;
  Atomic.set t.cache_ordinal 0;
  Atomic.set t.crashes 0;
  Atomic.set t.exhaustions 0;
  Atomic.set t.forced_misses 0

let fires ~at ~every ordinal =
  List.mem ordinal at
  || match every with Some n -> ordinal mod n = 0 | None -> false

let on_node t ~worker =
  let ordinal = 1 + Atomic.fetch_and_add t.node_ordinal 1 in
  if
    fires ~at:t.spec.crash_at_nodes ~every:t.spec.crash_every ordinal
  then begin
    Atomic.incr t.crashes;
    raise (Injected_crash { worker; node = ordinal })
  end

let pivot_budget t =
  let ordinal = 1 + Atomic.fetch_and_add t.lp_ordinal 1 in
  if
    fires ~at:t.spec.exhaust_pivots_at ~every:t.spec.exhaust_pivots_every
      ordinal
  then begin
    Atomic.incr t.exhaustions;
    (* A one-pivot budget drives the real Simplex Iter_limit path rather
       than fabricating a status, so the whole error chain is exercised. *)
    (ordinal, Some 1)
  end
  else (ordinal, None)

(* Splitmix64 finalizer: a high-quality hash of (seed, ordinal) that
   needs no shared mutable RNG state, so parallel queries stay
   deterministic as a set. *)
let mix64 x =
  let ( * ) = Int64.mul and ( ^> ) v n = Int64.(logxor v (shift_right_logical v n)) in
  let x = Int64.of_int x in
  let x = (x ^> 33) * 0xff51afd7ed558ccdL in
  let x = (x ^> 33) * 0xc4ceb9fe1a85ec53L in
  x ^> 33

let force_cache_miss t =
  if t.spec.cache_miss_rate <= 0.0 then (0, false)
  else begin
    let ordinal = 1 + Atomic.fetch_and_add t.cache_ordinal 1 in
    let h = mix64 ((t.spec.seed * 0x9e3779b9) lxor ordinal) in
    let u =
      Int64.to_float (Int64.shift_right_logical h 11) /. 9007199254740992.0
    in
    let hit = u < t.spec.cache_miss_rate in
    if hit then Atomic.incr t.forced_misses;
    (ordinal, hit)
  end

let clock_skew t = t.spec.clock_skew

let injected t =
  { crashes = Atomic.get t.crashes;
    exhaustions = Atomic.get t.exhaustions;
    forced_misses = Atomic.get t.forced_misses }

let pp_injected ppf (i : injected) =
  Format.fprintf ppf
    "%d crash%s, %d pivot exhaustion%s, %d forced cache miss%s" i.crashes
    (if i.crashes = 1 then "" else "es")
    i.exhaustions
    (if i.exhaustions = 1 then "" else "s")
    i.forced_misses
    (if i.forced_misses = 1 then "" else "es")
