(** Parametric deadline-sweep engine: solve one DVS mode-assignment MILP
    at many deadlines while sharing everything the instances have in
    common.

    The paper's figure-18 experiment re-solves the same model at a grid
    of deadlines; solved independently, every point pays full price for
    a model that differs from its neighbours by a single right-hand
    side.  This engine compiles the model once and expresses each sweep
    point as an RHS delta on the shared {!Dvs_lp.Compiled} form:

    - {b Tightest-first ordering with incumbent lifting.}  Points run in
      ascending deadline order.  A schedule feasible at a tight deadline
      stays feasible at every looser one, so each completed point's
      optimum is lifted — as a seeding
      {!Solver.Config.with_warm_solution} — into the next point's
      configuration, giving the branch and bound an incumbent before the
      first LP solve.  A caller-supplied [point_seed] (the rounded
      continuous schedule) replaces the lift as warm fixings whenever
      its known objective strictly beats it — at lax deadlines the
      tight-point lift is a poor incumbent and the rounding is
      near-optimal.
    - {b Dual-bound pre-pruning.}  When the caller supplies
      [point_bound] (e.g. the exact continuous-schedule relaxation of
      {!Dvs_core.Relaxation}) and its bound already certifies the lifted
      incumbent optimal within [config.gap_rel], the point is answered
      from the lift directly: zero cuts, zero LP solves, zero nodes.
      The pruned point's solution is the lifted object itself — the
      bits a full solve would return, since a seeded incumbent is only
      displaced by a {e strict} improvement and the certificate rules
      one out.
    - {b Cross-instance basis reuse.}  Each worker keeps the optimal
      basis of its previous point's root LP; the next point re-solves
      the same compiled form after {!Dvs_lp.Compiled.set_rhs}, which is
      exactly a dual-simplex reoptimization from that basis.
    - {b A shared deduplicated cut pool.}  Each point runs a bounded
      root cutting loop ({!Cuts.gomory}, {!Cuts.covers},
      {!Cuts.gub_covers}); separated cuts land in a {!Cuts.Pool.t}
      tagged with the deadline range they remain valid for, and later
      points re-apply every applicable pooled cut before solving.
      Appended cut rows are priced in dual-simplex-style via
      {!Dvs_lp.Simplex.extend_basis}, not by cold restarts.

    Every cut is a valid inequality for the integer hull at its tagged
    deadlines and warm incumbents are feasible by construction, so
    per-point objectives are exactly what independent cold solves
    produce — the sharing only changes how fast the proof closes.

    Observability (through the config's [obs] bundle, all [Volatile]):
    [sweep.points], [sweep.instances_warm_started],
    [sweep.points_pruned_by_bound], [cuts.separated], [cuts.applied],
    [cuts.pool_hits]. *)

open Dvs_lp

type point = {
  deadline : float;  (** this point's deadline-row RHS, in model units *)
  result : Solver.result;
  cuts_applied : int;  (** cut rows appended to this point's model *)
  pool_hits : int;
      (** of those, cuts separated at a {e different} sweep point and
          re-applied here from the pool *)
  warm_started : bool;
      (** an incumbent was lifted from a completed tighter point *)
  root_pivots : int;  (** simplex pivots spent in the root cutting loop *)
  pruned_by_bound : bool;
      (** answered from the lifted incumbent under a certifying
          [point_bound]; the solve was skipped entirely *)
}

type stats = {
  instances_warm_started : int;  (** points that received a lifted incumbent *)
  cuts_separated : int;  (** cuts emitted by the separators, pre-dedup *)
  cuts_applied : int;  (** cut rows appended across all point models *)
  cut_pool_hits : int;  (** applications of cuts born at another point *)
  pool_size : int;  (** deduplicated cuts pooled at the end of the sweep *)
  root_pivots : int;  (** total pivots across all root cutting loops *)
  points_pruned_by_bound : int;
      (** points answered from a lift under a certifying [point_bound] *)
}

type t = {
  points : point array;  (** one per input deadline, in {e input} order *)
  stats : stats;
}

val run :
  ?config:Solver.Config.t ->
  ?instances:int ->
  ?cut_rounds:int ->
  ?max_cuts_per_round:int ->
  ?pool:Cuts.Pool.t ->
  ?per_point:(int -> float -> Solver.Config.t -> Solver.Config.t) ->
  ?point_bound:(int -> float -> float option) ->
  ?point_seed:(int -> float -> ((Model.var * float) list * float) option) ->
  model:Model.t ->
  deadline_row:int ->
  deadlines:float array ->
  unit ->
  t
(** [run ~model ~deadline_row ~deadlines ()] solves [model] once per
    deadline, overriding the RHS of constraint [deadline_row] (an
    insertion-order index, see {!Dvs_lp.Model.constraint_indices}; the
    row must be a [Le] constraint) with each value of [deadlines].

    [config] is the per-point solver configuration (default:
    {!Solver.Config.default} with {!Solver.Config.Pseudocost_gub}
    branching); its [sos1] groups both guide branching and feed the GUB
    cover separator, and its [cache]/[obs] are shared across points.
    [instances] (default 1) runs that many sweep points concurrently on
    separate domains — each point's own solve still uses [config.jobs]
    workers.  [cut_rounds] (default 3) bounds the root cutting loop per
    point and [max_cuts_per_round] (default 16) the Gomory cuts kept per
    round; [cut_rounds = 0] disables separation (pooled cuts from
    [pool] are still applied).  [pool] shares a cut pool across
    successive sweeps (default: a private pool per call).  [per_point i
    d cfg] customizes the configuration of point [i] (input order,
    deadline [d]) — it runs before incumbent lifting, which sets
    [warm_solution] whenever a tighter point has completed.

    [point_bound i d] returns a proven dual bound on point [i]'s optimum
    (model objective units; [None] when unavailable).  It must be valid
    — for the DVS formulation, the exact continuous relaxation is — and
    is consulted only when a lifted incumbent exists; a certifying bound
    prunes the point as described above.  The callback may run from
    several domains concurrently when [instances > 1], so it must be
    thread-safe (a pure function of its arguments is).

    [point_seed i d] returns known-feasible warm fixings for point [i]
    plus their exact objective (e.g. the rounded continuous schedule of
    {!Dvs_core.Relaxation.round} at deadline [d]).  On a cold point the
    fixings replace [config.warm_start] as the materialized incumbent;
    on a lifted point they are materialized {e in addition to} the seed
    only when their objective strictly beats the lift beyond the
    [config.gap_rel] slack — so a certifiable point never gains an
    extra solve and pruned/unpruned sweeps stay bit-identical.  When a
    lift exists, the configured [warm_start] fixing itself is dropped:
    a lifted optimum is never worse than a generic feasibility fixing,
    so materializing one cannot improve the incumbent.  Same
    thread-safety contract as [point_bound].

    Raises [Invalid_argument] on an empty or non-finite [deadlines], an
    out-of-range or non-[Le] [deadline_row], or [instances < 1]. *)
