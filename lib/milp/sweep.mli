(** Parametric deadline-sweep engine: solve one DVS mode-assignment MILP
    at many deadlines while sharing everything the instances have in
    common.

    The paper's figure-18 experiment re-solves the same model at a grid
    of deadlines; solved independently, every point pays full price for
    a model that differs from its neighbours by a single right-hand
    side.  This engine compiles the model once and expresses each sweep
    point as an RHS delta on the shared {!Dvs_lp.Compiled} form:

    - {b Tightest-first ordering with incumbent lifting.}  Points run in
      ascending deadline order.  A schedule feasible at a tight deadline
      stays feasible at every looser one, so each completed point's
      optimum is lifted — as integer-variable fixings — into the warm
      start of the next, seeding the branch and bound with an incumbent
      before the first node.
    - {b Cross-instance basis reuse.}  Each worker keeps the optimal
      basis of its previous point's root LP; the next point re-solves
      the same compiled form after {!Dvs_lp.Compiled.set_rhs}, which is
      exactly a dual-simplex reoptimization from that basis.
    - {b A shared deduplicated cut pool.}  Each point runs a bounded
      root cutting loop ({!Cuts.gomory}, {!Cuts.covers},
      {!Cuts.gub_covers}); separated cuts land in a {!Cuts.Pool.t}
      tagged with the deadline range they remain valid for, and later
      points re-apply every applicable pooled cut before solving.
      Appended cut rows are priced in dual-simplex-style via
      {!Dvs_lp.Simplex.extend_basis}, not by cold restarts.

    Every cut is a valid inequality for the integer hull at its tagged
    deadlines and warm incumbents are feasible by construction, so
    per-point objectives are exactly what independent cold solves
    produce — the sharing only changes how fast the proof closes.

    Observability (through the config's [obs] bundle, all [Volatile]):
    [sweep.points], [sweep.instances_warm_started], [cuts.separated],
    [cuts.applied], [cuts.pool_hits]. *)

open Dvs_lp

type point = {
  deadline : float;  (** this point's deadline-row RHS, in model units *)
  result : Solver.result;
  cuts_applied : int;  (** cut rows appended to this point's model *)
  pool_hits : int;
      (** of those, cuts separated at a {e different} sweep point and
          re-applied here from the pool *)
  warm_started : bool;
      (** an incumbent was lifted from a completed tighter point *)
  root_pivots : int;  (** simplex pivots spent in the root cutting loop *)
}

type stats = {
  instances_warm_started : int;  (** points that received a lifted incumbent *)
  cuts_separated : int;  (** cuts emitted by the separators, pre-dedup *)
  cuts_applied : int;  (** cut rows appended across all point models *)
  cut_pool_hits : int;  (** applications of cuts born at another point *)
  pool_size : int;  (** deduplicated cuts pooled at the end of the sweep *)
  root_pivots : int;  (** total pivots across all root cutting loops *)
}

type t = {
  points : point array;  (** one per input deadline, in {e input} order *)
  stats : stats;
}

val run :
  ?config:Solver.Config.t ->
  ?instances:int ->
  ?cut_rounds:int ->
  ?max_cuts_per_round:int ->
  ?pool:Cuts.Pool.t ->
  ?per_point:(int -> float -> Solver.Config.t -> Solver.Config.t) ->
  model:Model.t ->
  deadline_row:int ->
  deadlines:float array ->
  unit ->
  t
(** [run ~model ~deadline_row ~deadlines ()] solves [model] once per
    deadline, overriding the RHS of constraint [deadline_row] (an
    insertion-order index, see {!Dvs_lp.Model.constraint_indices}; the
    row must be a [Le] constraint) with each value of [deadlines].

    [config] is the per-point solver configuration (default:
    {!Solver.Config.default} with {!Solver.Config.Pseudocost_gub}
    branching); its [sos1] groups both guide branching and feed the GUB
    cover separator, and its [cache]/[obs] are shared across points.
    [instances] (default 1) runs that many sweep points concurrently on
    separate domains — each point's own solve still uses [config.jobs]
    workers.  [cut_rounds] (default 3) bounds the root cutting loop per
    point and [max_cuts_per_round] (default 16) the Gomory cuts kept per
    round; [cut_rounds = 0] disables separation (pooled cuts from
    [pool] are still applied).  [pool] shares a cut pool across
    successive sweeps (default: a private pool per call).  [per_point i
    d cfg] customizes the configuration of point [i] (input order,
    deadline [d]) — it runs before incumbent lifting, which replaces
    [warm_start] whenever a tighter point has completed.

    Raises [Invalid_argument] on an empty or non-finite [deadlines], an
    out-of-range or non-[Le] [deadline_row], or [instances < 1]. *)
