(* Deprecated compatibility shim over Solver: the historical sequential
   branch-and-bound API, kept so existing callers compile.  New code
   should use Solver directly. *)

open Dvs_lp

type options = {
  max_nodes : int;
  int_tol : float;
  gap_rel : float;
  time_limit : float option;
  rounding : bool;
  sos1 : Model.var list list;
      (** groups constrained to sum to 1 (one binary on per group); lets
          the rounding heuristic round group-consistently *)
  warm_start : (Model.var * float) list;
      (** variable fixings known to admit a feasible completion; solved
          once up front to seed the incumbent *)
  log : (string -> unit) option;
}

let default_options =
  { max_nodes = 200_000; int_tol = 1e-6; gap_rel = 1e-9; time_limit = None;
    rounding = true; sos1 = []; warm_start = []; log = None }

type stop_reason = Solver.stop_reason =
  | Node_limit
  | Time_limit
  | Iter_limit

type crash = Solver.crash = {
  worker : int;
  depth : int;
  path : int list;
  message : string;
}

type degradation = Solver.degradation = {
  crashes : crash list;
  stopped : stop_reason option;
}

type outcome =
  | Optimal
  | Feasible of stop_reason
  | Infeasible
  | Unbounded
  | No_solution of stop_reason
  | Degraded of degradation

type result = {
  outcome : outcome;
  solution : Simplex.solution option;
  bound : float;
  nodes : int;
}

let to_config (o : options) =
  Solver.Config.make ~jobs:1 ~max_nodes:o.max_nodes ?time_limit:o.time_limit
    ~gap_rel:o.gap_rel ~int_tol:o.int_tol ~rounding:o.rounding ?log:o.log ()
  |> Solver.Config.with_sos1 o.sos1
  |> Solver.Config.with_warm_start o.warm_start

let solve ?(options = default_options) model =
  let r = Solver.solve ~config:(to_config options) model in
  let outcome =
    match r.Solver.outcome with
    | Solver.Optimal -> Optimal
    | Solver.Feasible reason -> Feasible reason
    | Solver.Infeasible -> Infeasible
    | Solver.Unbounded -> Unbounded
    | Solver.No_solution reason -> No_solution reason
    | Solver.Degraded d -> Degraded d
  in
  { outcome; solution = r.Solver.solution; bound = r.Solver.bound;
    nodes = r.Solver.stats.Solver.nodes }
