(* Deprecated compatibility shim over Solver: the historical sequential
   branch-and-bound API, kept so existing callers compile.  New code
   should use Solver directly. *)

open Dvs_lp

type stop_reason = Solver.stop_reason =
  | Node_limit
  | Time_limit
  | Iter_limit

type crash = Solver.crash = {
  worker : int;
  depth : int;
  path : int list;
  message : string;
}

type degradation = Solver.degradation = {
  crashes : crash list;
  stopped : stop_reason option;
}

type outcome =
  | Optimal
  | Feasible of stop_reason
  | Infeasible
  | Unbounded
  | No_solution of stop_reason
  | Degraded of degradation

type result = {
  outcome : outcome;
  solution : Simplex.solution option;
  bound : float;
  nodes : int;
}

let solve ?config model =
  let config =
    match config with
    | Some c -> c
    | None -> Solver.Config.make ~jobs:1 ()
  in
  let r = Solver.solve ~config model in
  let outcome =
    match r.Solver.outcome with
    | Solver.Optimal -> Optimal
    | Solver.Feasible reason -> Feasible reason
    | Solver.Infeasible -> Infeasible
    | Solver.Unbounded -> Unbounded
    | Solver.No_solution reason -> No_solution reason
    | Solver.Degraded d -> Degraded d
  in
  { outcome; solution = r.Solver.solution; bound = r.Solver.bound;
    nodes = r.Solver.stats.Solver.nodes }
