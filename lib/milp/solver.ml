(* Parallel, warm-started branch and bound over the Dvs_lp.Simplex
   relaxation — the single MILP entry point for the pipeline, the CLI and
   the experiment harness.

   Architecture:
   - one Domain per job; each worker owns a best-bound Work_queue of open
     nodes, pushes the children it generates locally, and steals the best
     node of a victim when its own queue runs dry;
   - child nodes warm start their LP from the parent's optimal basis
     (Simplex.solve_ext), re-pivoting instead of re-running two-phase
     from scratch;
   - shallow relaxations go through a fingerprint-keyed Lp_cache that can
     be shared across solves, which is what the bench sweep drivers do;
   - the incumbent is merged deterministically: strictly better objective
     wins, an exactly equal objective is tie-broken toward the
     lexicographically smallest node path, so the reported objective is
     reproducible regardless of worker count.

   Determinism argument (why jobs=1 and jobs=4 report the same
   objective): a node is fathomed only when its parent-relaxation bound
   is within gap_rel slack of the current incumbent, and the incumbent
   only improves over time, so no fathoming can discard a solution more
   than gap_rel better than the final incumbent — in particular, with the
   default gap (1e-9 relative) the optimum itself always survives to be
   found.  Cacheable (shallow) relaxations are additionally solved
   without the basis hint, so a cached entry is a pure function of its
   key and never depends on which worker computed it first. *)

open Dvs_lp

module Config = struct
  type branching =
    | Fractional
    | Pseudocost_gub

  type node_order =
    | Best_bound
    | Depth_first

  type t = {
    jobs : int;
    max_nodes : int;
    int_tol : float;
    gap_rel : float;
    time_limit : float option;
    rounding : bool;
    sos1 : Model.var list list;
    warm_start : (Model.var * float) list;
    warm_solution : Simplex.solution option;
    root_bound : float option;
    log : (string -> unit) option;
    cache : Lp_cache.t option;
    cache_depth : int;
    fault : Fault.t option;
    obs : Dvs_obs.t;
    presolve : bool;
    pricing : Simplex.pricing;
    basis : Simplex.basis_kind;
    refactor : Simplex.refactor_policy option;
    fixings : (Model.var * float) list;
    branching : branching;
    node_order : node_order;
    reliability : int;
  }

  let make ?jobs ?(max_nodes = 200_000) ?time_limit ?(gap_rel = 1e-9)
      ?(int_tol = 1e-6) ?(rounding = true) ?log ?cache ?(cache_depth = 4)
      ?fault ?(obs = Dvs_obs.disabled) ?(presolve = true)
      ?(pricing = Simplex.Steepest_edge) ?(basis = Simplex.Lu) ?refactor
      ?(branching = Fractional) ?(node_order = Best_bound) ?(reliability = 4)
      () =
    let jobs =
      match jobs with
      | Some j when j >= 1 -> j
      | Some _ -> invalid_arg "Solver.Config.make: jobs must be >= 1"
      | None -> Domain.recommended_domain_count ()
    in
    if reliability < 0 then
      invalid_arg "Solver.Config.make: reliability must be >= 0";
    (match refactor with
    | Some (Simplex.Pivots k) when k < 1 ->
      invalid_arg "Solver.Config.make: refactor pivot trigger must be >= 1"
    | Some (Simplex.Eta_fill { max_pivots; growth })
      when max_pivots < 1 || not (Float.is_finite growth) || growth <= 0.0 ->
      invalid_arg "Solver.Config.make: refactor eta trigger must be positive"
    | _ -> ());
    { jobs; max_nodes; int_tol; gap_rel; time_limit; rounding; sos1 = [];
      warm_start = []; warm_solution = None; root_bound = None; log; cache;
      cache_depth; fault; obs; presolve; pricing; basis; refactor;
      fixings = []; branching; node_order; reliability }

  let default = make ()

  let with_jobs jobs t =
    if jobs < 1 then invalid_arg "Solver.Config.with_jobs: jobs must be >= 1";
    { t with jobs }

  let with_branching branching t = { t with branching }

  let with_node_order node_order t = { t with node_order }

  let with_sos1 sos1 t = { t with sos1 }

  let with_warm_start warm_start t = { t with warm_start }

  let with_warm_solution s t = { t with warm_solution = Some s }

  let with_root_bound b t =
    if not (Float.is_finite b) then
      invalid_arg "Solver.Config.with_root_bound: bound must be finite";
    { t with root_bound = Some b }

  let with_presolve presolve t = { t with presolve }

  let with_pricing pricing t = { t with pricing }

  let with_basis basis t = { t with basis }

  let with_refactor refactor t = { t with refactor = Some refactor }

  let with_fixings fixings t = { t with fixings }

  let with_log log t = { t with log = Some log }

  let with_cache cache t = { t with cache = Some cache }

  let with_fault fault t = { t with fault = Some fault }

  let with_obs obs t = { t with obs }
end

type stop_reason = Node_limit | Time_limit | Iter_limit

let pp_stop_reason ppf r =
  Format.pp_print_string ppf
    (match r with
    | Node_limit -> "node limit"
    | Time_limit -> "time limit"
    | Iter_limit -> "simplex iteration limit")

type crash = {
  worker : int;
  depth : int;
  path : int list;
  message : string;
}

type degradation = {
  crashes : crash list;
  stopped : stop_reason option;
}

type outcome =
  | Optimal
  | Feasible of stop_reason
  | Infeasible
  | Unbounded
  | No_solution of stop_reason
  | Degraded of degradation

let pp_outcome ppf = function
  | Optimal -> Format.pp_print_string ppf "optimal"
  | Feasible r -> Format.fprintf ppf "feasible (%a hit)" pp_stop_reason r
  | Infeasible -> Format.pp_print_string ppf "infeasible"
  | Unbounded -> Format.pp_print_string ppf "unbounded"
  | No_solution r -> Format.fprintf ppf "no solution (%a hit)" pp_stop_reason r
  | Degraded { crashes; stopped } ->
    let n = List.length crashes in
    Format.fprintf ppf "degraded (%d worker crash%s contained%a)" n
      (if n = 1 then "" else "es")
      (fun ppf -> function
        | Some r -> Format.fprintf ppf ", %a hit" pp_stop_reason r
        | None -> ())
      stopped

type stats = {
  nodes : int;
  lp_solves : int;
  lp_pivots : int;
  cache_hits : int;
  cache_misses : int;
  cache_evictions : int;
  steals : int;
  wall_seconds : float;
  cpu_seconds : float;
  workers : int;
  worker_nodes : int array;
}

let worker_utilization s =
  let mx = Array.fold_left Int.max 0 s.worker_nodes in
  if mx = 0 then 1.0
  else
    let total = Array.fold_left ( + ) 0 s.worker_nodes in
    float_of_int total /. (float_of_int mx *. float_of_int s.workers)

let pp_stats ppf s =
  Format.fprintf ppf
    "%d nodes, %d LP solves, %d pivots, cache %d/%d (%d evicted), %d \
     steal%s, %.3fs wall / %.3fs cpu, %d worker%s (util %.0f%%)"
    s.nodes s.lp_solves s.lp_pivots s.cache_hits
    (s.cache_hits + s.cache_misses) s.cache_evictions s.steals
    (if s.steals = 1 then "" else "s")
    s.wall_seconds s.cpu_seconds s.workers
    (if s.workers = 1 then "" else "s")
    (100.0 *. worker_utilization s)

type result = {
  outcome : outcome;
  solution : Simplex.solution option;
  bound : float;
  stats : stats;
}

(* An open node: bound overrides relative to the base model, the parent
   relaxation's objective (a valid bound on the subtree), and the branch
   path from the root (innermost decision first) — the deterministic node
   identity used for incumbent tie-breaking. *)
type node = {
  overrides : (Model.var * float * float) list;
  bound : float;
  depth : int;
  path : int list;
  basis : Simplex.basis option;
  pc : (int * int) option;
      (* (branch entity, direction 0/1) that created this node, for
         pseudocost feedback once its relaxation is solved *)
}

(* Effective bounds of [v] at a node: innermost override wins (overrides
   are consed, so the first match is the most recent). *)
let effective_bounds model overrides v =
  match List.find_opt (fun (v', _, _) -> v' = v) overrides with
  | Some (_, lb, ub) -> (lb, ub)
  | None -> Model.bounds model v

(* Canonical fixing list for cache keys: innermost override per variable,
   sorted by variable index. *)
let canonical_fixings overrides =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun (v, lb, ub) -> if not (Hashtbl.mem tbl v) then Hashtbl.add tbl v (lb, ub))
    overrides;
  Hashtbl.fold (fun v (lb, ub) acc -> (v, lb, ub) :: acc) tbl []
  |> List.sort (fun (a, _, _) (b, _, _) -> compare a b)

let most_fractional ~int_tol int_vars (sol : Simplex.solution) =
  let best = ref None in
  List.iter
    (fun v ->
      let x = sol.values.(v) in
      let frac = x -. Float.of_int (int_of_float (Float.floor x)) in
      let dist = Float.min frac (1.0 -. frac) in
      if dist > int_tol then
        match !best with
        | Some (_, d) when d >= dist -> ()
        | _ -> best := Some (v, dist))
    int_vars;
  Option.map fst !best

(* Root-first lexicographic order on branch paths; paths are stored
   innermost-first, so reverse before comparing. *)
let path_compare a b = compare (List.rev a) (List.rev b)

let solve ?(config = Config.default) model =
  let open Config in
  let sense, _ = Model.objective model in
  (* [better a b]: objective [a] beats [b]. *)
  let better a b =
    match sense with Model.Minimize -> a < b | Maximize -> a > b
  in
  let worst = match sense with Model.Minimize -> infinity | _ -> neg_infinity in
  (* Presolve once per solve: the reduced model is what the search
     actually branches on, and solutions are lifted back to the original
     variable space at the very end.  A presolve-proven infeasibility
     yields a trivially infeasible stub whose root relaxation reports
     Infeasible through the normal path, so no special-casing below. *)
  let pre =
    if config.presolve then
      Some
        (Presolve.presolve ~fixings:config.fixings ~groups:config.sos1 model)
    else None
  in
  let wm = match pre with Some p -> Presolve.reduced p | None -> model in
  let map_var v =
    match pre with
    | None -> Some v
    | Some p ->
      let vm = Presolve.var_map p in
      if v >= 0 && v < Array.length vm && vm.(v) >= 0 then Some vm.(v)
      else None
  in
  let sos1 =
    List.filter_map
      (fun g ->
        match List.filter_map map_var g with
        | [] | [ _ ] -> None (* fully decided by presolve *)
        | g' -> Some g')
      config.sos1
  in
  let warm_start =
    List.filter_map
      (fun (v, x) -> Option.map (fun v' -> (v', x)) (map_var v))
      config.warm_start
  in
  (* Lift a reduced-space solution back to original variable indices;
     the objective value is unchanged (eliminated contributions live in
     the reduced objective's constant). *)
  let lift (s : Simplex.solution) =
    match pre with
    | None -> s
    | Some p -> { s with Simplex.values = Presolve.postsolve p s.values }
  in
  (* Compile the reduced model once; every relaxation in the tree is a
     bound-override solve against this shared structure. *)
  let compiled = Compiled.of_model wm in
  let int_vars = Model.integer_vars wm in
  let log fmt =
    Format.kasprintf
      (fun s -> match config.log with Some f -> f s | None -> ())
      fmt
  in
  let wall_start = Unix.gettimeofday () in
  let cpu_start = Sys.time () in
  (* Observability: counters/histograms are no-ops on the disabled
     registry; trace emission sites that build attribute lists are
     additionally guarded by [obs_on] so a production solve allocates
     nothing for them. *)
  let tr = Dvs_obs.trace config.obs in
  let mx = Dvs_obs.metrics config.obs in
  let obs_on = Dvs_obs.enabled config.obs in
  let module Mc = Dvs_obs.Metrics.Counter in
  let module Tr = Dvs_obs.Trace in
  let c_nodes = Dvs_obs.Metrics.counter mx ~stability:Volatile "solver.nodes" in
  let c_steals =
    Dvs_obs.Metrics.counter mx ~stability:Volatile "solver.steals"
  in
  let c_lp =
    Dvs_obs.Metrics.counter mx ~stability:Volatile "solver.lp_solves"
  in
  let c_pivots =
    Dvs_obs.Metrics.counter mx ~stability:Volatile "solver.lp_pivots"
  in
  let c_solves =
    Dvs_obs.Metrics.counter mx ~stability:Volatile "solver.solves"
  in
  let c_cache_hits =
    Dvs_obs.Metrics.counter mx ~stability:Volatile "lp_cache.hits"
  in
  let c_cache_misses =
    Dvs_obs.Metrics.counter mx ~stability:Volatile "lp_cache.misses"
  in
  let c_cache_evictions =
    Dvs_obs.Metrics.counter mx ~stability:Volatile "lp_cache.evictions"
  in
  let h_solve =
    Dvs_obs.Metrics.histogram mx ~stability:Volatile "solver.solve_seconds"
  in
  (* LP-kernel observability: presolve reductions are deterministic per
     model (Stable); pivot-shape counters depend on which nodes the
     schedule explores (Volatile). *)
  let c_pre_rows =
    Dvs_obs.Metrics.counter mx ~stability:Stable "lp.presolve_rows_removed"
  in
  let c_pre_cols =
    Dvs_obs.Metrics.counter mx ~stability:Stable "lp.presolve_cols_removed"
  in
  let c_saved_warm =
    Dvs_obs.Metrics.counter mx ~stability:Volatile "lp.pivots_saved_warm"
  in
  let c_dual_pivots =
    Dvs_obs.Metrics.counter mx ~stability:Volatile "lp.pivots_dual"
  in
  let c_bland_pivots =
    Dvs_obs.Metrics.counter mx ~stability:Volatile "lp.pivots_bland"
  in
  let c_pricing_pivots =
    Dvs_obs.Metrics.counter mx ~stability:Volatile
      (match config.pricing with
      | Simplex.Steepest_edge -> "lp.pivots_steepest_edge"
      | Simplex.Dantzig -> "lp.pivots_dantzig"
      | Simplex.Bland -> "lp.pivots_bland_rule")
  in
  let c_flips =
    Dvs_obs.Metrics.counter mx ~stability:Volatile "lp.bound_flips"
  in
  let c_flops = Dvs_obs.Metrics.counter mx ~stability:Volatile "lp.flops" in
  (* LU-backend audit trail: how often the basis was refactorized, how
     much fill the factorizations carried, how large the eta files grew,
     and how much solve work hypersparsity skipped outright. *)
  let c_lu_refacts =
    Dvs_obs.Metrics.counter mx ~stability:Volatile "lu.refactorizations"
  in
  let c_lu_fill =
    Dvs_obs.Metrics.counter mx ~stability:Volatile "lu.fill_in_nnz"
  in
  let c_lu_eta = Dvs_obs.Metrics.counter mx ~stability:Volatile "lu.eta_nnz" in
  let c_lu_fhits =
    Dvs_obs.Metrics.counter mx ~stability:Volatile "lu.ftran_sparse_hits"
  in
  let c_lu_bhits =
    Dvs_obs.Metrics.counter mx ~stability:Volatile "lu.btran_sparse_hits"
  in
  let c_pc_branches =
    Dvs_obs.Metrics.counter mx ~stability:Volatile "bb.pseudocost_branches"
  in
  (* Root dual bounds from the continuous relaxation are a pure function
     of the caller's config, so the counter replays stably from the
     experiment store. *)
  let c_root_bound =
    Dvs_obs.Metrics.counter mx ~stability:Stable
      "bb.root_bound_from_continuous"
  in
  let solve_span =
    if obs_on then
      Tr.start tr "solver.solve"
        ~attrs:
          [ ("jobs", Tr.Int config.jobs);
            ("max_nodes", Tr.Int config.max_nodes);
            ("int_vars", Tr.Int (List.length int_vars)) ]
    else Tr.start Tr.disabled "solver.solve"
  in
  (* Fault injection (tests and the resilience bench only): [skew] shifts
     the clock the time-limit check reads, the other hooks fire at their
     call sites below. *)
  let skew =
    match config.fault with Some f -> Fault.clock_skew f | None -> 0.0
  in
  let out_of_time () =
    match config.time_limit with
    | Some l -> Unix.gettimeofday () +. skew -. wall_start > l
    | None -> false
  in
  let cache =
    match config.cache with Some c -> c | None -> Lp_cache.create ()
  in
  let cache0 = Lp_cache.stats cache in
  let fp = Compiled.fingerprint compiled in
  (* ---- shared search state ---- *)
  let n_workers = config.jobs in
  (* Per-worker LP state: a scratch view of the compiled model (own bound
     arrays, shared matrix) and a reusable simplex workspace, so the
     pivot loop allocates nothing per node. *)
  let scratches = Array.init n_workers (fun _ -> Compiled.scratch compiled) in
  let workspaces = Array.init n_workers (fun _ -> Simplex.workspace ()) in
  let a_dual = Atomic.make 0 in
  let a_flips = Atomic.make 0 in
  let a_bland = Atomic.make 0 in
  let a_flops = Atomic.make 0 in
  let a_saved = Atomic.make 0 in
  let a_lu_refacts = Atomic.make 0 in
  let a_lu_fill = Atomic.make 0 in
  let a_lu_eta = Atomic.make 0 in
  let a_lu_fhits = Atomic.make 0 in
  let a_lu_bhits = Atomic.make 0 in
  (* Pivot count of the first basis-free solve: the cold-start cost a
     warm-started node would otherwise pay, used to estimate
     lp.pivots_saved_warm. *)
  let baseline_pivots = Atomic.make (-1) in
  let inc_lock = Mutex.create () in
  let incumbent : (Simplex.solution * int list) option ref = ref None in
  let inc_obj = Atomic.make worst in
  let nodes = Atomic.make 0 in
  let lp_solves = Atomic.make 0 in
  let lp_pivots = Atomic.make 0 in
  let in_flight = Atomic.make 0 in
  let stop : stop_reason option Atomic.t = Atomic.make None in
  let unbounded = Atomic.make false in
  (* Contained worker crashes (newest first), with the crashed node's
     bound so the reported [bound] stays valid for the lost subtree. *)
  let crash_lock = Mutex.create () in
  let crash_log : (crash * float) list ref = ref [] in
  let record_crash c bound =
    Mutex.lock crash_lock;
    crash_log := (c, bound) :: !crash_log;
    Mutex.unlock crash_lock
  in
  let request_stop r = ignore (Atomic.compare_and_set stop None (Some r)) in
  let stopping () = Atomic.get stop <> None || Atomic.get unbounded in
  (* A caller-provided known-feasible solution (original variable space)
     seeds the incumbent objective without any LP solve; it is returned
     verbatim unless the search finds something strictly better, so a
     caller chaining solves (the sweep's incumbent lifting) gets
     bit-identical solutions whether or not the search was pruned away
     entirely. *)
  let seed_solution = config.warm_solution in
  (match seed_solution with
  | Some s ->
    Atomic.set inc_obj s.Simplex.objective;
    (* Runs before the pool starts: stable across job counts. *)
    if obs_on then
      Tr.event tr ~stability:Tr.Stable "solver.warm_solution"
        ~attrs:[ ("objective", Tr.Float s.Simplex.objective) ]
  | None -> ());
  let try_incumbent path (s : Simplex.solution) =
    Mutex.lock inc_lock;
    let take =
      match !incumbent with
      | None ->
        (* The seed occupies inc_obj without a solution object: only a
           strict improvement may displace it. *)
        (not (Float.is_finite (Atomic.get inc_obj)))
        || better s.objective (Atomic.get inc_obj)
      | Some (_, p0) ->
        better s.objective (Atomic.get inc_obj)
        || (s.objective = Atomic.get inc_obj && path_compare path p0 < 0)
    in
    if take then begin
      incumbent := Some (s, path);
      Atomic.set inc_obj s.objective
    end;
    Mutex.unlock inc_lock;
    if take then begin
      if obs_on then
        Tr.event tr "solver.incumbent"
          ~attrs:[ ("objective", Tr.Float s.objective) ];
      log "incumbent %g" s.objective
    end
  in
  let gap_prune bound =
    let inc = Atomic.get inc_obj in
    Float.is_finite inc
    &&
    let slack = config.gap_rel *. Float.max 1.0 (Float.abs inc) in
    match sense with
    | Model.Minimize -> bound >= inc -. slack
    | Maximize -> bound <= inc +. slack
  in
  let is_integral (s : Simplex.solution) =
    List.for_all
      (fun v ->
        let x = s.values.(v) in
        Float.abs (x -. Float.round x) <= config.int_tol)
      int_vars
  in
  (* LP solves, with pivot accounting; shallow node relaxations are
     memoized.  Cacheable solves deliberately ignore the basis hint so
     the cached entry is a pure function of the key (determinism).

     A node solve applies its bound overrides to the worker's scratch
     view of the compiled model, solves in place with the worker's
     reusable workspace, then restores the touched bounds — no model
     copy, no per-node allocation beyond the returned solution. *)
  let lp_solve ?basis ?iter_cap ~wid overrides =
    Atomic.incr lp_solves;
    let max_iter =
      match config.fault with
      | Some f ->
        let ordinal, budget = Fault.pivot_budget f in
        if budget <> None && obs_on then
          Tr.event tr "fault.pivot_exhaustion" ~stability:Tr.Stable
            ~attrs:[ ("ordinal", Tr.Int ordinal) ];
        budget
      | None -> None
    in
    let max_iter =
      match (max_iter, iter_cap) with
      | Some a, Some b -> Some (Int.min a b)
      | Some a, None -> Some a
      | None, b -> b
    in
    let sc = scratches.(wid) in
    let fixings = canonical_fixings overrides in
    List.iter (fun (v, lb, ub) -> Compiled.set_bounds sc v ~lb ~ub) fixings;
    let st, b, (sst : Simplex.stats) =
      Simplex.solve_compiled ~pricing:config.pricing ~backend:config.basis
        ?refactor:config.refactor ?max_iter ?basis ~ws:workspaces.(wid) sc
    in
    List.iter (fun (v, _, _) -> Compiled.reset_bounds sc v) fixings;
    ignore (Atomic.fetch_and_add lp_pivots sst.Simplex.pivots);
    ignore (Atomic.fetch_and_add a_dual sst.Simplex.dual_pivots);
    ignore (Atomic.fetch_and_add a_flips sst.Simplex.bound_flips);
    ignore (Atomic.fetch_and_add a_bland sst.Simplex.bland_pivots);
    ignore (Atomic.fetch_and_add a_flops sst.Simplex.flops);
    ignore (Atomic.fetch_and_add a_lu_refacts sst.Simplex.lu_refactorizations);
    ignore (Atomic.fetch_and_add a_lu_fill sst.Simplex.lu_fill_in_nnz);
    ignore (Atomic.fetch_and_add a_lu_eta sst.Simplex.lu_eta_nnz);
    ignore (Atomic.fetch_and_add a_lu_fhits sst.Simplex.ftran_sparse_hits);
    ignore (Atomic.fetch_and_add a_lu_bhits sst.Simplex.btran_sparse_hits);
    (match basis with
    | None ->
      ignore
        (Atomic.compare_and_set baseline_pivots (-1) sst.Simplex.pivots)
    | Some _ ->
      let base = Atomic.get baseline_pivots in
      if base > 0 then
        ignore
          (Atomic.fetch_and_add a_saved
             (Int.max 0 (base - sst.Simplex.pivots))));
    (st, b)
  in
  let solve_relaxation ~depth ~basis ~wid overrides =
    let cacheable = depth <= config.cache_depth in
    let forced_miss =
      (* Only consult (and advance) the injector on lookups that would
         otherwise hit the cache path. *)
      cacheable
      &&
      match config.fault with
      | Some f ->
        let ordinal, miss = Fault.force_cache_miss f in
        if miss && obs_on then
          Tr.event tr "fault.cache_miss"
            ~attrs:[ ("ordinal", Tr.Int ordinal) ];
        miss
      | None -> false
    in
    if cacheable && not forced_miss then
      Lp_cache.find_or_add cache ~fingerprint:fp
        ~fixings:(canonical_fixings overrides)
        (fun () -> lp_solve ~wid overrides)
    else if cacheable then
      (* Forced miss: same basis-free solve the cache closure would run,
         just never stored. *)
      lp_solve ~wid overrides
    else lp_solve ?basis ~wid overrides
  in
  (* Rounding heuristic: SOS1 groups round to their largest member (one
     on, rest off, respecting fixed bounds); remaining integers round to
     the nearest value.  Complete with an LP. *)
  let in_sos1 =
    let tbl = Hashtbl.create 16 in
    List.iter (fun g -> List.iter (fun v -> Hashtbl.replace tbl v ()) g) sos1;
    fun v -> Hashtbl.mem tbl v
  in
  let rounding_pass ~wid path overrides (s : Simplex.solution) =
    if config.rounding && int_vars <> [] then begin
      (* Rounded fixings are consed onto the node's overrides; consing
         later means innermost, so they win in [effective_bounds] and in
         [canonical_fixings] inside [lp_solve]. *)
      let fixes = ref overrides in
      let bounds_of v = effective_bounds wm !fixes v in
      let ok = ref true in
      List.iter
        (fun group ->
          (* Largest-value member whose bounds still allow 1. *)
          let best = ref None in
          List.iter
            (fun v ->
              let _, ub = bounds_of v in
              if ub >= 1.0 then
                match !best with
                | Some (_, x) when x >= s.values.(v) -> ()
                | _ -> best := Some (v, s.values.(v)))
            group;
          match !best with
          | None -> ok := false
          | Some (winner, _) ->
            List.iter
              (fun v ->
                let lb, ub = bounds_of v in
                let x = if v = winner then 1.0 else 0.0 in
                if x < lb || x > ub then ok := false
                else fixes := (v, x, x) :: !fixes)
              group)
        sos1;
      List.iter
        (fun v ->
          if not (in_sos1 v) then begin
            let lb, ub = bounds_of v in
            let x = Float.max lb (Float.min ub (Float.round s.values.(v))) in
            if Float.abs (x -. Float.round x) <= config.int_tol then
              fixes := (v, x, x) :: !fixes
            else ok := false
          end)
        int_vars;
      if !ok then begin
        match lp_solve ~wid !fixes with
        | Simplex.Optimal s', _ -> try_incumbent path s'
        | (Simplex.Infeasible | Simplex.Unbounded | Simplex.Iter_limit _), _
          -> ()
      end
    end
  in
  (* Diving heuristic: walk down from a relaxation by fixing the most
     fractional integer each step (one flip retry on infeasibility).
     Produces an early incumbent when plain rounding violates a tight
     constraint. *)
  let dive ~wid path overrides basis0 (s0 : Simplex.solution) =
    let budget = ref (2 * List.length int_vars) in
    let rec go overrides basis (s : Simplex.solution) =
      if !budget <= 0 then ()
      else begin
        decr budget;
        match most_fractional ~int_tol:config.int_tol int_vars s with
        | None -> try_incumbent path s
        | Some v ->
          let lb, ub = effective_bounds wm overrides v in
          let x = Float.round s.values.(v) in
          let x = Float.max lb (Float.min ub x) in
          let try_fix x =
            let overrides' = (v, x, x) :: overrides in
            match lp_solve ?basis ~wid overrides' with
            | Simplex.Optimal s', b' -> Some (overrides', b', s')
            | (Simplex.Infeasible | Simplex.Unbounded
              | Simplex.Iter_limit _), _ -> None
          in
          let alt =
            (* The other admissible integer next to the relaxation value. *)
            let x' =
              if x > s.values.(v) then Float.floor s.values.(v)
              else Float.ceil s.values.(v)
            in
            if x' >= lb && x' <= ub && x' <> x then Some x' else None
          in
          (match try_fix x with
          | Some (o', b', s') -> go o' b' s'
          | None -> (
            match alt with
            | Some x' -> (
              match try_fix x' with
              | Some (o', b', s') -> go o' b' s'
              | None -> ())
            | None -> ()))
      end
    in
    go overrides basis0 s0
  in
  (* Deterministic heuristic trigger: the root, plus the all-down spine
     of the tree (one node per depth), independent of global counters and
     hence of worker interleaving. *)
  let heuristic_node n =
    n.depth = 0 || List.for_all (fun d -> d = 0) n.path
  in
  (* ---- pseudocost / GUB branching state ---- *)
  (* Branch entities: one per surviving SOS1 mode group (GUB dichotomy on
     the member prefix) plus one per integer variable outside any group
     (classic floor/ceil).  Pseudocosts are kept per entity and
     direction, shared across workers under one small lock — updates are
     per-node, never per-pivot. *)
  let entities =
    if config.branching <> Config.Pseudocost_gub then [||]
    else begin
      let in_group = Hashtbl.create 16 in
      List.iter
        (fun g -> List.iter (fun v -> Hashtbl.replace in_group v ()) g)
        sos1;
      Array.of_list
        (List.map (fun g -> `Group (Array.of_list g)) sos1
        @ List.filter_map
            (fun v ->
              if Hashtbl.mem in_group v then None else Some (`Var v))
            int_vars)
    end
  in
  let n_entities = Array.length entities in
  let pc_lock = Mutex.create () in
  let pc_sum = Array.make (2 * n_entities) 0.0 in
  let pc_cnt = Array.make (2 * n_entities) 0 in
  let pc_record e dir gain =
    Mutex.lock pc_lock;
    pc_sum.((2 * e) + dir) <- pc_sum.((2 * e) + dir) +. gain;
    pc_cnt.((2 * e) + dir) <- pc_cnt.((2 * e) + dir) + 1;
    Mutex.unlock pc_lock
  in
  (* Snapshot of (avg down-gain, avg up-gain, min observation count). *)
  let pc_read e =
    Mutex.lock pc_lock;
    let sd = pc_sum.(2 * e) and cd = pc_cnt.(2 * e) in
    let su = pc_sum.((2 * e) + 1) and cu = pc_cnt.((2 * e) + 1) in
    Mutex.unlock pc_lock;
    ( (if cd > 0 then sd /. float_of_int cd else 0.0),
      (if cu > 0 then su /. float_of_int cu else 0.0),
      Int.min cd cu )
  in
  let pseudocost_branches = Atomic.make 0 in
  (* ---- worker pool ---- *)
  let cmp_nodes a b =
    let bound_cmp () =
      match sense with
      | Model.Minimize -> Float.compare a.bound b.bound
      | Maximize -> Float.compare b.bound a.bound
    in
    let depth_cmp () = compare b.depth a.depth in
    let c =
      match config.node_order with
      | Config.Best_bound ->
        let c = bound_cmp () in
        if c <> 0 then c else depth_cmp ()
      | Config.Depth_first ->
        let c = depth_cmp () in
        if c <> 0 then c else bound_cmp ()
    in
    if c <> 0 then c else path_compare a.path b.path
  in
  let queues = Array.init n_workers (fun _ -> Work_queue.create ~cmp:cmp_nodes) in
  let worker_nodes = Array.make n_workers 0 in
  (* Per-domain, unsynchronized (each cell written by its own worker
     only, read after join): the lock-free buffer pattern the obs
     registry aggregates at merge time. *)
  let worker_steals = Array.make n_workers 0 in
  let spawn_child ?pc wid n dir bound basis overrides =
    Atomic.incr in_flight;
    Work_queue.push queues.(wid)
      { overrides; bound; depth = n.depth + 1; path = dir :: n.path; basis;
        pc }
  in
  let requeue wid n =
    Atomic.incr in_flight;
    Work_queue.push queues.(wid) n
  in
  (* Classic most-fractional variable dichotomy — the default, and the
     fallback when the entity view finds nothing to branch on. *)
  let branch_fractional wid n (s : Simplex.solution) basis =
    match most_fractional ~int_tol:config.int_tol int_vars s with
    | None -> try_incumbent n.path s
    | Some v ->
      let x = s.values.(v) in
      let lb, ub = effective_bounds wm n.overrides v in
      let fl = Float.floor x and ce = Float.ceil x in
      if fl >= lb then
        spawn_child wid n 0 s.objective basis ((v, lb, fl) :: n.overrides);
      if ce <= ub then
        spawn_child wid n 1 s.objective basis ((v, ce, ub) :: n.overrides)
  in
  (* GUB dichotomy over mode groups + pseudocost entity selection with
     reliability initialization: an entity whose pseudocosts rest on
     fewer than [reliability] observations per direction is probed with
     two pivot-capped child LPs (the probes also seed its pseudocosts);
     reliable entities are scored by the product of their average
     objective degradations.  A group branches by splitting its member
     prefix at half the fractional mass — children zero one half each,
     so the one-mode equality row keeps the other half alive. *)
  let max_probes_per_node = 4 in
  let branch_pseudocost wid n (s : Simplex.solution) basis =
    let var_frac v =
      let x = s.values.(v) in
      let fr = x -. Float.floor x in
      Float.min fr (1.0 -. fr)
    in
    let frac_of e =
      match entities.(e) with
      | `Group vars ->
        Array.fold_left (fun acc v -> Float.max acc (var_frac v)) 0.0 vars
      | `Var v -> var_frac v
    in
    let candidates = ref [] in
    for e = n_entities - 1 downto 0 do
      if frac_of e > config.int_tol then candidates := e :: !candidates
    done;
    match !candidates with
    | [] -> branch_fractional wid n s basis
    | cands ->
      (* Down/up child override sets; [None] marks a side already proven
         infeasible by existing bounds. *)
      let child_sets e =
        match entities.(e) with
        | `Var v ->
          let x = s.values.(v) in
          let lb, ub = effective_bounds wm n.overrides v in
          let fl = Float.floor x and ce = Float.ceil x in
          ( (if fl >= lb then Some ((v, lb, fl) :: n.overrides) else None),
            if ce <= ub then Some ((v, ce, ub) :: n.overrides) else None )
        | `Group vars ->
          let k = Array.length vars in
          (* Mass-carrying member span: both children must zero at least
             one member with positive value, otherwise the current LP
             point survives into a child and the dive never terminates. *)
          let first = ref (-1) and last = ref (-1) in
          let total = ref 0.0 in
          for i = 0 to k - 1 do
            let xi = s.values.(vars.(i)) in
            total := !total +. xi;
            if xi > config.int_tol then begin
              if !first < 0 then first := i;
              last := i
            end
          done;
          if !last <= !first then begin
            (* All mass on one member (its value fractional): the GUB
               split cannot separate, so dichotomize that member. *)
            let v = vars.(Int.max 0 !first) in
            let x = s.values.(v) in
            let lb, ub = effective_bounds wm n.overrides v in
            let fl = Float.floor x and ce = Float.ceil x in
            ( (if fl >= lb then Some ((v, lb, fl) :: n.overrides) else None),
              if ce <= ub then Some ((v, ce, ub) :: n.overrides) else None )
          end
          else begin
            (* Mass-balanced split clamped inside the span. *)
            let split = ref !first in
            let acc = ref 0.0 in
            (try
               for i = !first to !last - 1 do
                 acc := !acc +. s.values.(vars.(i));
                 if !acc >= 0.5 *. !total then begin
                   split := i;
                   raise Exit
                 end
               done;
               split := !last - 1
             with Exit -> ());
            let zero lo hi =
              let ov = ref (Some n.overrides) in
              for i = lo to hi do
                match !ov with
                | None -> ()
                | Some o ->
                  let lb, _ = effective_bounds wm o vars.(i) in
                  if lb > 0.0 then ov := None
                  else ov := Some ((vars.(i), 0.0, 0.0) :: o)
              done;
              !ov
            in
            (zero (!split + 1) (k - 1), zero 0 !split)
          end
      in
      let probes_left = ref max_probes_per_node in
      let best = ref None in
      List.iter
        (fun e ->
          let down, up = child_sets e in
          let d_avg, u_avg, cnt = pc_read e in
          let score =
            if cnt < config.reliability && !probes_left > 0 then begin
              decr probes_left;
              let probe dir = function
                | None -> 1e12
                | Some o -> (
                  match lp_solve ~iter_cap:100 ?basis ~wid o with
                  | Simplex.Optimal s', _ ->
                    let g = Float.abs (s'.objective -. s.objective) in
                    pc_record e dir g;
                    g
                  | Simplex.Infeasible, _ -> 1e12
                  | (Simplex.Unbounded | Simplex.Iter_limit _), _ -> 0.0)
              in
              let gd = probe 0 down in
              let gu = probe 1 up in
              Float.max gd 1e-6 *. Float.max gu 1e-6
            end
            else Float.max d_avg 1e-6 *. Float.max u_avg 1e-6
          in
          match !best with
          | Some (_, _, _, bs) when bs >= score -> ()
          | _ -> best := Some (e, down, up, score))
        cands;
      (match !best with
      | None -> ()
      | Some (e, down, up, _) ->
        Atomic.incr pseudocost_branches;
        (match down with
        | Some o -> spawn_child ~pc:(e, 0) wid n 0 s.objective basis o
        | None -> ());
        (match up with
        | Some o -> spawn_child ~pc:(e, 1) wid n 1 s.objective basis o
        | None -> ()))
  in
  let process wid n =
    if stopping () then requeue wid n
    else if out_of_time () then begin
      request_stop Time_limit;
      requeue wid n
    end
    else if gap_prune n.bound then ( (* fathomed by a newer incumbent *) )
    else if Atomic.get nodes >= config.max_nodes then begin
      request_stop Node_limit;
      requeue wid n
    end
    else begin
      Atomic.incr nodes;
      worker_nodes.(wid) <- worker_nodes.(wid) + 1;
      (match config.fault with
      | Some f -> Fault.on_node f ~worker:wid
      | None -> ());
      match solve_relaxation ~depth:n.depth ~basis:n.basis ~wid n.overrides with
      | Simplex.Iter_limit _, _ ->
        (* Numerical trouble in this node's relaxation: stop cleanly with
           the incumbent rather than crash the search. *)
        request_stop Iter_limit;
        requeue wid n
      | Simplex.Infeasible, _ -> ()
      | Simplex.Unbounded, _ -> Atomic.set unbounded true
      | Simplex.Optimal s, basis ->
        (* Pseudocost feedback from the branch that created this node:
           how much the relaxation degraded relative to the parent. *)
        (match n.pc with
        | Some (e, dir) when Float.is_finite n.bound ->
          pc_record e dir (Float.abs (s.objective -. n.bound))
        | Some _ | None -> ());
        if gap_prune s.objective then ()
        else if is_integral s then begin
          (* Snap integer values exactly. *)
          let values = Array.copy s.values in
          List.iter (fun v -> values.(v) <- Float.round values.(v)) int_vars;
          try_incumbent n.path { s with values }
        end
        else begin
          if heuristic_node n then rounding_pass ~wid n.path n.overrides s;
          if n.depth = 0 && not (Float.is_finite (Atomic.get inc_obj)) then
            dive ~wid n.path n.overrides basis s;
          match config.branching with
          | Config.Fractional -> branch_fractional wid n s basis
          | Config.Pseudocost_gub -> branch_pseudocost wid n s basis
        end
    end
  in
  let steal_from wid =
    let rec go tries =
      if tries >= n_workers then None
      else
        let victim = (wid + tries) mod n_workers in
        match Work_queue.steal queues.(victim) with
        | Some n ->
          if tries > 0 then
            worker_steals.(wid) <- worker_steals.(wid) + 1;
          Some n
        | None -> go (tries + 1)
    in
    go 0
  in
  let worker wid () =
    let running = ref true in
    (* Idle backoff: a few spins for low-latency hand-off, then sleep
       with exponential growth so idle workers stop contending for the
       CPU on oversubscribed hosts (jobs > cores). *)
    let idle = ref 0 in
    while !running do
      if stopping () then running := false
      else
        match steal_from wid with
        | Some n ->
          idle := 0;
          (try process wid n
           with e ->
             (* Containment: only this node's subtree is lost.  The rest
                of the pool keeps searching, and the crash (plus the
                node's bound, which covers the lost subtree) degrades
                the final outcome instead of aborting the solve. *)
             let c =
               { worker = wid; depth = n.depth; path = n.path;
                 message = Printexc.to_string e }
             in
             record_crash c n.bound;
             if obs_on then begin
               match e with
               | Fault.Injected_crash { node; _ } ->
                 (* Injected: the firing-ordinal set is deterministic. *)
                 Tr.event tr ~slot:wid ~stability:Tr.Stable "fault.crash"
                   ~attrs:[ ("node", Tr.Int node) ]
               | _ ->
                 Tr.event tr ~slot:wid "solver.crash"
                   ~attrs:
                     [ ("depth", Tr.Int n.depth);
                       ("message", Tr.String c.message) ]
             end;
             log "worker %d crashed at depth %d: %s" wid n.depth c.message);
          Atomic.decr in_flight
        | None ->
          if Atomic.get in_flight = 0 then running := false
          else begin
            incr idle;
            if !idle <= 16 then Domain.cpu_relax ()
            else
              let backoff = Int.min (!idle - 16) 6 in
              Unix.sleepf (5e-5 *. float_of_int (1 lsl backoff))
          end
    done
  in
  (* Seed the incumbent from the caller's known-feasible fixing (runs
     sequentially, before the pool starts, so it is deterministic). *)
  if warm_start <> [] then begin
    let fixings = List.map (fun (v, x) -> (v, x, x)) warm_start in
    match solve_relaxation ~depth:0 ~basis:None ~wid:0 fixings with
    | Simplex.Optimal s, _ when is_integral s ->
      let values = Array.copy s.values in
      List.iter (fun v -> values.(v) <- Float.round values.(v)) int_vars;
      try_incumbent [] { s with values };
      (* Runs sequentially before the pool: stable across job counts. *)
      if obs_on then
        Tr.event tr ~stability:Tr.Stable "solver.warm_start"
          ~attrs:[ ("objective", Tr.Float s.objective) ]
    | (Simplex.Optimal _ | Simplex.Infeasible | Simplex.Unbounded
      | Simplex.Iter_limit _), _ -> ()
  end;
  let root_bound =
    match config.root_bound with
    | Some b ->
      (* A caller-proven dual bound (the continuous relaxation) tightens
         the root: with a seeding incumbent inside the gap the whole
         tree is fathomed before a single LP solve. *)
      if obs_on then Mc.incr c_root_bound ~slot:0;
      b
    | None -> ( match sense with Model.Minimize -> neg_infinity | _ -> infinity)
  in
  Atomic.set in_flight 1;
  Work_queue.push queues.(0)
    { overrides = []; bound = root_bound; depth = 0; path = []; basis = None;
      pc = None };
  let domains =
    Array.init (n_workers - 1) (fun i -> Domain.spawn (worker (i + 1)))
  in
  worker 0 ();
  Array.iter Domain.join domains;
  (* ---- finish: best proven bound and outcome ---- *)
  let crashes = List.rev_map fst !crash_log in
  let crashed_bounds = List.map snd !crash_log in
  let leftovers =
    Array.to_list queues |> List.concat_map Work_queue.drain
  in
  let inc_objective () =
    match !incumbent with
    | Some (s, _) -> s.Simplex.objective
    | None -> (
      match seed_solution with Some s -> s.Simplex.objective | None -> worst)
  in
  (* Open bounds: undrained nodes plus the bounds of crashed nodes, whose
     subtrees were lost unexplored. *)
  let bound =
    match List.map (fun n -> n.bound) leftovers @ crashed_bounds with
    | [] -> inc_objective ()
    | b :: bs ->
      List.fold_left (fun acc b -> if better b acc then b else acc) b bs
  in
  let stopped = Atomic.get stop in
  let cache1 = Lp_cache.stats cache in
  let stats =
    { nodes = Atomic.get nodes; lp_solves = Atomic.get lp_solves;
      lp_pivots = Atomic.get lp_pivots;
      cache_hits = cache1.Lp_cache.hits - cache0.Lp_cache.hits;
      cache_misses = cache1.Lp_cache.misses - cache0.Lp_cache.misses;
      cache_evictions = cache1.Lp_cache.evictions - cache0.Lp_cache.evictions;
      steals = Array.fold_left ( + ) 0 worker_steals;
      wall_seconds = Unix.gettimeofday () -. wall_start;
      cpu_seconds = Sys.time () -. cpu_start; workers = n_workers;
      worker_nodes }
  in
  (* Merge the per-domain buffers into the registry and close the span.
     This is the only point where observability touches shared state; the
     hot path above only bumped unsynchronized per-worker cells. *)
  if obs_on then begin
    for i = 0 to n_workers - 1 do
      Mc.add c_nodes ~slot:i worker_nodes.(i);
      Mc.add c_steals ~slot:i worker_steals.(i);
      Tr.event tr ~slot:i "solver.worker"
        ~attrs:
          [ ("worker", Tr.Int i);
            ("nodes", Tr.Int worker_nodes.(i));
            ("steals", Tr.Int worker_steals.(i)) ]
    done;
    Mc.add c_lp ~slot:0 stats.lp_solves;
    Mc.add c_pivots ~slot:0 stats.lp_pivots;
    Mc.incr c_solves ~slot:0;
    Mc.add c_cache_hits ~slot:0 stats.cache_hits;
    Mc.add c_cache_misses ~slot:0 stats.cache_misses;
    Mc.add c_cache_evictions ~slot:0 stats.cache_evictions;
    (match pre with
    | Some p ->
      Mc.add c_pre_rows ~slot:0 (Presolve.rows_removed p);
      Mc.add c_pre_cols ~slot:0 (Presolve.cols_removed p)
    | None -> ());
    Mc.add c_saved_warm ~slot:0 (Atomic.get a_saved);
    Mc.add c_dual_pivots ~slot:0 (Atomic.get a_dual);
    Mc.add c_bland_pivots ~slot:0 (Atomic.get a_bland);
    Mc.add c_pricing_pivots ~slot:0
      (stats.lp_pivots - Atomic.get a_bland - Atomic.get a_dual);
    Mc.add c_flips ~slot:0 (Atomic.get a_flips);
    Mc.add c_flops ~slot:0 (Atomic.get a_flops);
    Mc.add c_lu_refacts ~slot:0 (Atomic.get a_lu_refacts);
    Mc.add c_lu_fill ~slot:0 (Atomic.get a_lu_fill);
    Mc.add c_lu_eta ~slot:0 (Atomic.get a_lu_eta);
    Mc.add c_lu_fhits ~slot:0 (Atomic.get a_lu_fhits);
    Mc.add c_lu_bhits ~slot:0 (Atomic.get a_lu_bhits);
    Mc.add c_pc_branches ~slot:0 (Atomic.get pseudocost_branches);
    Dvs_obs.Metrics.Histogram.observe h_solve stats.wall_seconds
  end;
  let r =
    match (!incumbent, seed_solution) with
    | Some (s, _), _ ->
      let outcome =
        if crashes <> [] then Degraded { crashes; stopped }
        else
          match stopped with
          | Some reason when not (gap_prune bound) -> Feasible reason
          | Some _ | None -> Optimal
      in
      { outcome; solution = Some (lift s); bound; stats }
    | None, Some s when not (Atomic.get unbounded) ->
      (* The search never beat the caller's seed: return it verbatim (it
         lives in the original variable space, so no lift). *)
      let outcome =
        if crashes <> [] then Degraded { crashes; stopped }
        else
          match stopped with
          | Some reason when not (gap_prune bound) -> Feasible reason
          | Some _ | None -> Optimal
      in
      { outcome; solution = Some s; bound; stats }
    | None, _ ->
      if Atomic.get unbounded then
        { outcome = Unbounded; solution = None; bound; stats }
      else if crashes <> [] then
        { outcome = Degraded { crashes; stopped }; solution = None; bound;
          stats }
      else (
        match stopped with
        | Some reason ->
          { outcome = No_solution reason; solution = None; bound; stats }
        | None -> { outcome = Infeasible; solution = None; bound; stats })
  in
  if obs_on then
    Tr.finish tr solve_span
      ~attrs:
        [ ("outcome", Tr.String (Format.asprintf "%a" pp_outcome r.outcome));
          ("nodes", Tr.Int stats.nodes);
          ("bound", Tr.Float bound) ];
  log "done: %a (%a)" pp_outcome r.outcome pp_stats r.stats;
  r
