(** Thread-safe memo cache for LP-relaxation solves.

    Entries are keyed by a structural {!fingerprint} of the model plus the
    canonical list of bound fixings layered on top of it, so a cache can
    be shared across many {!Solver} runs over the same formulation (the
    bench sweep drivers re-solve near-identical models hundreds of times)
    as well as within one run.  Capacity is bounded with LRU eviction:
    an insert beyond [max_entries] evicts the least-recently-used entry
    (and counts it in {!evictions}), so caches shared across whole bench
    sweeps stay hot on the current formulation instead of growing
    without limit or freezing on a first-come snapshot. *)

type t

val create : ?max_entries:int -> unit -> t
(** [max_entries] defaults to 4096.  Raises [Invalid_argument] when
    [max_entries < 1]. *)

val fingerprint : Dvs_lp.Model.t -> int
(** [Dvs_lp.Compiled.fingerprint] of the model's compiled form — a
    structural FNV-1a hash over the flattened bounds, integrality,
    scaled constraint rows and objective, using exact float bit
    patterns.  Two models sharing a fingerprint compile to the same
    arrays and are treated as identical by the cache.  {!Solver} keys
    its lookups off the compiled model it already holds, so the
    per-solve cost of this function is paid only by external callers. *)

val find_or_add :
  t ->
  fingerprint:int ->
  fixings:(Dvs_lp.Model.var * float * float) list ->
  (unit -> Dvs_lp.Simplex.status * Dvs_lp.Simplex.basis option) ->
  Dvs_lp.Simplex.status * Dvs_lp.Simplex.basis option
(** [find_or_add t ~fingerprint ~fixings compute] returns the cached
    result for the key, or runs [compute] (outside the cache lock) and
    stores its result.  [fixings] must be canonical: one entry per
    variable, sorted by variable index.  Hits return a private copy of
    the solution's value array. *)

val hits : t -> int

val misses : t -> int

val evictions : t -> int
(** Entries displaced by LRU eviction since creation. *)

val length : t -> int

type counts = { hits : int; misses : int; evictions : int; entries : int }

val stats : t -> counts
(** All four numbers under one lock — a mutually consistent snapshot,
    unlike reading the individual accessors while workers run.  This is
    what {!Solver} samples around a solve to compute per-solve deltas
    (including evictions) and to feed the [lp_cache.*] counters of an
    attached [Dvs_obs] registry. *)
