(** Thread-safe memo cache for LP-relaxation solves.

    Entries are keyed by a structural {!fingerprint} of the model plus the
    canonical list of bound fixings layered on top of it, so a cache can
    be shared across many {!Solver} runs over the same formulation (the
    bench sweep drivers re-solve near-identical models hundreds of times)
    as well as within one run.  Capacity is bounded: once [max_entries]
    distinct keys are stored, further inserts are dropped (lookups still
    work), so a runaway search cannot exhaust memory. *)

type t

val create : ?max_entries:int -> unit -> t
(** [max_entries] defaults to 4096. *)

val fingerprint : Dvs_lp.Model.t -> int
(** Structural hash of bounds, integrality, constraints and objective
    (FNV-1a over exact float bit patterns).  Two models sharing a
    fingerprint are treated as identical by the cache. *)

val find_or_add :
  t ->
  fingerprint:int ->
  fixings:(Dvs_lp.Model.var * float * float) list ->
  (unit -> Dvs_lp.Simplex.status * Dvs_lp.Simplex.basis option) ->
  Dvs_lp.Simplex.status * Dvs_lp.Simplex.basis option
(** [find_or_add t ~fingerprint ~fixings compute] returns the cached
    result for the key, or runs [compute] (outside the cache lock) and
    stores its result.  [fixings] must be canonical: one entry per
    variable, sorted by variable index.  Hits return a private copy of
    the solution's value array. *)

val hits : t -> int

val misses : t -> int

val length : t -> int
