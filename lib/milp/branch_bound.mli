(** Deprecated sequential facade over {!Solver}.

    This is the historical branch-and-bound API, kept as a thin shim so
    existing callers keep compiling: [solve] forwards to {!Solver.solve}
    (sequentially, [jobs = 1], unless the caller's [config] says
    otherwise).  The outcome keeps the full {!Solver} detail —
    {!stop_reason} and {!degradation} are re-exported here with their
    constructors, so limit and crash information survives the shim —
    while {!Solver.stats} is collapsed to the single [nodes] count of the
    old result shape.  New code should use {!Solver} directly — it adds
    parallel search, basis warm starts, the LP-relaxation cache,
    pseudocost/GUB branching and per-solve statistics.

    The PR 1 [options] record and its converters are gone; configure
    with {!Solver.Config.make} and the [with_*] builders. *)

type stop_reason = Solver.stop_reason =
  | Node_limit
  | Time_limit
  | Iter_limit  (** the simplex pivot budget ran out inside a relaxation *)
(** Re-export of {!Solver.stop_reason} with its constructors, so shim
    callers can pattern-match limits without opening {!Solver}. *)

type crash = Solver.crash = {
  worker : int;  (** worker id that contained the exception *)
  depth : int;  (** depth of the node being processed *)
  path : int list;  (** its branch path (innermost decision first) *)
  message : string;  (** [Printexc.to_string] of the exception *)
}
(** Re-export of {!Solver.crash}. *)

type degradation = Solver.degradation = {
  crashes : crash list;  (** contained worker crashes, oldest first *)
  stopped : stop_reason option;  (** a limit additionally hit, if any *)
}
(** Re-export of {!Solver.degradation}. *)

type outcome =
  | Optimal  (** proven within the gap *)
  | Feasible of stop_reason
      (** incumbent found, but this limit stopped the proof *)
  | Infeasible
  | Unbounded
  | No_solution of stop_reason
      (** this limit was hit before any incumbent *)
  | Degraded of degradation
      (** worker exceptions were contained; see {!Solver.outcome} *)

type result = {
  outcome : outcome;
  solution : Dvs_lp.Simplex.solution option;
  bound : float;  (** best proven bound on the optimum *)
  nodes : int;  (** nodes explored *)
}

val solve : ?config:Solver.Config.t -> Dvs_lp.Model.t -> result
(** Deprecated: use {!Solver.solve} — same search and configuration,
    richer statistics.  [config] defaults to
    [Solver.Config.make ~jobs:1 ()], the historic sequential search. *)
