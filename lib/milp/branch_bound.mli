(** Deprecated sequential facade over {!Solver}.

    This is the historical branch-and-bound API, kept as a thin shim so
    existing callers keep compiling: [solve] forwards to {!Solver.solve}
    with [jobs = 1].  The outcome keeps the full {!Solver} detail —
    {!stop_reason} and {!degradation} are re-exported here with their
    constructors, so limit and crash information survives the shim —
    while {!Solver.stats} is collapsed to the single [nodes] count of the
    old result shape.  New code should use {!Solver} directly — it adds
    parallel search, basis warm starts, the LP-relaxation cache,
    pseudocost/GUB branching and per-solve statistics.

    Note one semantic refinement inherited from {!Solver}: [time_limit]
    is wall-clock seconds (previously CPU seconds; identical for the
    sequential searches this shim runs). *)

type options = {
  max_nodes : int;  (** node budget; default 200_000 *)
  int_tol : float;  (** integrality tolerance; default 1e-6 *)
  gap_rel : float;  (** relative optimality gap to stop at; default 1e-9 *)
  time_limit : float option;  (** wall-clock seconds *)
  rounding : bool;
      (** run the rounding heuristic (root and spine, as in
          {!Solver.Config}) *)
  sos1 : Dvs_lp.Model.var list list;
      (** groups whose binaries sum to 1; guides the rounding heuristic
          (the one-mode-per-edge structure of the DVS formulation) *)
  warm_start : (Dvs_lp.Model.var * float) list;
      (** variable fixings known to admit a feasible completion, solved
          once to seed the incumbent (e.g. every edge at the fastest
          mode) *)
  log : (string -> unit) option;
}

val default_options : options

val to_config : options -> Solver.Config.t
(** The {!Solver} configuration equivalent to these options (with
    [jobs = 1]); the migration path for callers moving off this shim. *)

type stop_reason = Solver.stop_reason =
  | Node_limit
  | Time_limit
  | Iter_limit  (** the simplex pivot budget ran out inside a relaxation *)
(** Re-export of {!Solver.stop_reason} with its constructors, so shim
    callers can pattern-match limits without opening {!Solver}. *)

type crash = Solver.crash = {
  worker : int;  (** worker id that contained the exception *)
  depth : int;  (** depth of the node being processed *)
  path : int list;  (** its branch path (innermost decision first) *)
  message : string;  (** [Printexc.to_string] of the exception *)
}
(** Re-export of {!Solver.crash}. *)

type degradation = Solver.degradation = {
  crashes : crash list;  (** contained worker crashes, oldest first *)
  stopped : stop_reason option;  (** a limit additionally hit, if any *)
}
(** Re-export of {!Solver.degradation}. *)

type outcome =
  | Optimal  (** proven within the gap *)
  | Feasible of stop_reason
      (** incumbent found, but this limit stopped the proof *)
  | Infeasible
  | Unbounded
  | No_solution of stop_reason
      (** this limit was hit before any incumbent *)
  | Degraded of degradation
      (** worker exceptions were contained; see {!Solver.outcome} *)

type result = {
  outcome : outcome;
  solution : Dvs_lp.Simplex.solution option;
  bound : float;  (** best proven bound on the optimum *)
  nodes : int;  (** nodes explored *)
}

val solve : ?options:options -> Dvs_lp.Model.t -> result
(** Deprecated: use {!Solver.solve} — same search, plus parallel workers,
    warm starts and cache sharing.  This shim no longer flattens the
    outcome: limit and degradation detail ({!Solver.stop_reason},
    {!Solver.degradation}) is surfaced instead of collapsing everything
    to a bare feasible/no-solution, so callers can distinguish "node
    budget ran out" from "simplex hit its pivot limit" without migrating
    yet. *)
