(* Parametric deadline sweep: one compiled model, many RHS values.
   See sweep.mli for the design. *)

open Dvs_lp

type point = {
  deadline : float;
  result : Solver.result;
  cuts_applied : int;
  pool_hits : int;
  warm_started : bool;
  root_pivots : int;
  pruned_by_bound : bool;
}

type stats = {
  instances_warm_started : int;
  cuts_separated : int;
  cuts_applied : int;
  cut_pool_hits : int;
  pool_size : int;
  root_pivots : int;
  points_pruned_by_bound : int;
}

type t = {
  points : point array;
  stats : stats;
}

let locked lock f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let run ?config ?(instances = 1) ?(cut_rounds = 3) ?(max_cuts_per_round = 16)
    ?pool ?per_point ?point_bound ?point_seed ~model ~deadline_row ~deadlines
    () =
  let config =
    match config with
    | Some c -> c
    | None ->
        Solver.Config.with_branching Solver.Config.Pseudocost_gub
          Solver.Config.default
  in
  if instances < 1 then invalid_arg "Sweep.run: instances < 1";
  if cut_rounds < 0 then invalid_arg "Sweep.run: cut_rounds < 0";
  if max_cuts_per_round < 0 then invalid_arg "Sweep.run: max_cuts_per_round < 0";
  let np = Array.length deadlines in
  if np = 0 then invalid_arg "Sweep.run: empty deadlines";
  Array.iter
    (fun d ->
      if not (Float.is_finite d) then
        invalid_arg "Sweep.run: non-finite deadline")
    deadlines;
  if deadline_row < 0 || deadline_row >= Model.num_constraints model then
    invalid_arg "Sweep.run: deadline_row out of range";
  let drow = List.nth (Model.constraints model) deadline_row in
  (match drow.Model.cmp with
  | Model.Le -> ()
  | Model.Ge | Model.Eq ->
      invalid_arg "Sweep.run: deadline row must be a Le constraint");
  (* Separator inputs read once off the deadline row: its binary
     positive-weight terms for cover cuts, and the SOS1 groups paired
     with their row weights for GUB covers. *)
  let dexpr = drow.Model.expr in
  let cover_row =
    Expr.coeffs dexpr
    |> List.filter_map (fun (v, w) ->
           if w > 0.0 && Model.is_integer model v then
             let lo, hi = Model.bounds model v in
             if lo >= -1e-9 && hi <= 1.0 +. 1e-9 then Some (w, v) else None
           else None)
  in
  let gub_groups =
    config.Solver.Config.sos1
    |> List.filter_map (fun g ->
           let vars = Array.of_list g in
           if Array.length vars < 2 then None
           else
             let ws = Array.map (fun v -> Expr.coeff dexpr v) vars in
             if
               Array.for_all (fun w -> w >= 0.0) ws
               && Array.exists (fun w -> w > 0.0) ws
             then Some (vars, ws)
             else None)
  in
  let pool = match pool with Some p -> p | None -> Cuts.Pool.create () in
  let pool_lock = Mutex.create () in
  (* Tightest deadline first: its optimum stays feasible at every looser
     point and lifts forward as a warm incumbent.  Ties keep input order. *)
  let order = Array.init np Fun.id in
  Array.sort
    (fun a b ->
      match Float.compare deadlines.(a) deadlines.(b) with
      | 0 -> Int.compare a b
      | c -> c)
    order;
  let base_compiled = Compiled.of_model model in
  let sense = fst (Model.objective model) in
  let done_lock = Mutex.create () in
  (* Best lift source per processing position: the loosest completed
     tighter point (scanned newest first). *)
  let completed : Simplex.solution option array = Array.make np None in
  let results : point option array = Array.make np None in
  let warm_count = Atomic.make 0 in
  let pruned_count = Atomic.make 0 in
  let separated_count = Atomic.make 0 in
  let applied_count = Atomic.make 0 in
  let pool_hit_count = Atomic.make 0 in
  let root_pivot_count = Atomic.make 0 in
  let next = Atomic.make 0 in
  let point_config idx d lift =
    let cfg =
      match per_point with None -> config | Some f -> f idx d config
    in
    let seed = match point_seed with None -> None | Some f -> f idx d in
    match lift with
    | None -> (
        (* Cold point: a caller-supplied rounded seed beats the config's
           generic warm fixing (typically all-fastest) as the incumbent
           materialized before the search starts. *)
        match seed with
        | Some (fixings, _) ->
            (Solver.Config.with_warm_start fixings cfg, false)
        | None -> (cfg, false))
    | Some (sol : Simplex.solution) ->
        (* Seed the lifted incumbent as a solution object — no LP solve,
           and the seed survives bit-exactly unless the search strictly
           beats it, so pruned and unpruned sweeps agree bit-for-bit.

           The config's warm fixing is dropped: the lift is the optimum
           of a tighter point, never worse than a generic fixing, so
           materializing one would spend an LP solve on an incumbent that
           cannot displace the seed.  A caller seed is kept only when its
           known objective strictly beats the lift beyond the optimality
           slack — in particular never at a point the pre-pruning
           certificate could fire on, which keeps pruned and unpruned
           sweeps bit-identical. *)
        let cfg = Solver.Config.with_warm_solution sol cfg in
        let obj = sol.Simplex.objective in
        let slack =
          config.Solver.Config.gap_rel *. Float.max 1.0 (Float.abs obj)
        in
        let fixings =
          match (seed, sense) with
          | Some (fx, sobj), Model.Minimize when sobj < obj -. slack -> fx
          | Some (fx, sobj), Model.Maximize when sobj > obj +. slack -> fx
          | _ -> []
        in
        (Solver.Config.with_warm_start fixings cfg, true)
  in
  let take_lift k =
    locked done_lock (fun () ->
        let rec scan j = if j < 0 then None else
          match completed.(j) with Some _ as s -> s | None -> scan (j - 1)
        in
        scan (k - 1))
  in
  let record k idx pt =
    locked done_lock (fun () ->
        (match (pt.result.Solver.outcome, pt.result.Solver.solution) with
        | (Solver.Optimal | Solver.Feasible _ | Solver.Degraded _), Some s ->
            completed.(k) <- Some s
        | _ -> ());
        results.(idx) <- Some pt)
  in
  (* The root cutting loop for one point: solve the LP relaxation of the
     cut-augmented point model, separate violated cuts off its tableau,
     append, reprice dual-simplex-style via extend_basis, repeat. *)
  let cut_loop ws c0 chain mp d pooled =
    let root_pivots = ref 0 in
    let applied_rev = ref (List.rev pooled) in
    let n_pooled = List.length pooled in
    (* Cut-free chained LP first: same compiled form as the previous
       point modulo set_rhs, so the chained basis makes this a dual
       reoptimization. *)
    Compiled.set_rhs c0 deadline_row d;
    let st0, b0, lstats0 =
      Simplex.solve_compiled ~pricing:config.Solver.Config.pricing
        ~backend:config.Solver.Config.basis
        ?refactor:config.Solver.Config.refactor ?basis:!chain ~ws c0
    in
    root_pivots := !root_pivots + lstats0.Simplex.pivots;
    (match b0 with Some _ -> chain := b0 | None -> ());
    (match st0 with
    | Simplex.Optimal _ when cut_rounds > 0 ->
        (* Bring the pooled cuts into the relaxation, then iterate. *)
        let state =
          if n_pooled = 0 then
            match b0 with
            | Some b -> Some (c0, b, st0)
            | None -> None
          else
            let cp = Compiled.of_model mp in
            let basis =
              Option.map (fun b -> Simplex.extend_basis b ~rows:n_pooled) b0
            in
            let st, bc, ls =
              Simplex.solve_compiled ~pricing:config.Solver.Config.pricing
                ~backend:config.Solver.Config.basis
                ?refactor:config.Solver.Config.refactor ?basis ~ws cp
            in
            root_pivots := !root_pivots + ls.Simplex.pivots;
            match bc with Some b -> Some (cp, b, st) | None -> None
        in
        let row_valid_le cp =
          let m = cp.Compiled.m in
          let rv = Array.make m infinity in
          rv.(deadline_row) <- d;
          let base = Model.num_constraints model in
          List.iteri
            (fun i c -> rv.(base + i) <- c.Cuts.valid_le)
            (List.rev !applied_rev);
          rv
        in
        let rec round r state =
          match state with
          | None -> ()
          | Some (cp, bc, Simplex.Optimal sol) when r < cut_rounds ->
              let x = sol.Simplex.values in
              let gom =
                if max_cuts_per_round = 0 then []
                else
                  match Simplex.tableau cp bc with
                  | None -> []
                  | Some tab ->
                      Cuts.gomory ~compiled:cp ~tableau:tab ~x ~deadline:d
                        ~row_valid_le:(row_valid_le cp) ~bounds_pristine:true
                        ~max_cuts:max_cuts_per_round
              in
              let cov = Cuts.covers ~row:cover_row ~deadline:d ~x in
              let gub = Cuts.gub_covers ~groups:gub_groups ~deadline:d ~x in
              let fresh = gom @ cov @ gub in
              if fresh = [] then ()
              else begin
                Atomic.fetch_and_add separated_count (List.length fresh)
                |> ignore;
                locked pool_lock (fun () ->
                    List.iter (fun c -> ignore (Cuts.Pool.add pool c)) fresh);
                List.iter (Cuts.add_to_model mp) fresh;
                applied_rev := List.rev_append fresh !applied_rev;
                let cp' = Compiled.of_model mp in
                let basis =
                  Simplex.extend_basis bc ~rows:(List.length fresh)
                in
                let st, bc', ls =
                  Simplex.solve_compiled ~pricing:config.Solver.Config.pricing
                    ~backend:config.Solver.Config.basis
                    ?refactor:config.Solver.Config.refactor ~basis ~ws cp'
                in
                root_pivots := !root_pivots + ls.Simplex.pivots;
                match bc' with
                | Some b -> round (r + 1) (Some (cp', b, st))
                | None -> ()
              end
          | Some _ -> ()
        in
        round 0 state
    | _ -> ());
    (List.length !applied_rev, !root_pivots)
  in
  let solve_point ws c0 chain k =
    let idx = order.(k) in
    let d = deadlines.(idx) in
    let lift = take_lift k in
    (* Pre-prune: a caller-proven dual bound that already certifies the
       lifted incumbent optimal within the gap makes the whole point a
       no-op — no cuts, no LP solves, no nodes.  The returned solution is
       the lifted object itself, bit-identical to what a full solve would
       keep: the search could only re-find within-gap solutions, which
       never displace a seeding incumbent. *)
    let prune_cert =
      match (lift, point_bound) with
      | Some (sol : Simplex.solution), Some f -> (
          match f idx d with
          | Some cb ->
              let obj = sol.Simplex.objective in
              let slack =
                config.Solver.Config.gap_rel *. Float.max 1.0 (Float.abs obj)
              in
              let certifies =
                match sense with
                | Model.Minimize -> cb >= obj -. slack
                | Model.Maximize -> cb <= obj +. slack
              in
              if certifies then Some cb else None
          | None -> None)
      | _ -> None
    in
    match (prune_cert, lift) with
    | Some cb, Some sol ->
        Atomic.incr warm_count;
        Atomic.incr pruned_count;
        let result =
          { Solver.outcome = Solver.Optimal; solution = Some sol; bound = cb;
            stats =
              { Solver.nodes = 0; lp_solves = 0; lp_pivots = 0; cache_hits = 0;
                cache_misses = 0; cache_evictions = 0; steals = 0;
                wall_seconds = 0.0; cpu_seconds = 0.0; workers = 0;
                worker_nodes = [||] } }
        in
        record k idx
          { deadline = d; result; cuts_applied = 0; pool_hits = 0;
            warm_started = true; root_pivots = 0; pruned_by_bound = true }
    | _ ->
        let mp = Model.copy model in
        Model.set_constraint_rhs mp deadline_row d;
        let pooled =
          locked pool_lock (fun () -> Cuts.Pool.applicable pool ~deadline:d)
        in
        List.iter (Cuts.add_to_model mp) pooled;
        let hits =
          List.length (List.filter (fun c -> c.Cuts.born <> d) pooled)
        in
        let n_applied, root_pivots =
          try cut_loop ws c0 chain mp d pooled
          with _ -> (List.length pooled, 0)
        in
        let cfg, warm_started = point_config idx d lift in
        if warm_started then Atomic.incr warm_count;
        let result = Solver.solve ~config:cfg mp in
        Atomic.fetch_and_add applied_count n_applied |> ignore;
        Atomic.fetch_and_add pool_hit_count hits |> ignore;
        Atomic.fetch_and_add root_pivot_count root_pivots |> ignore;
        record k idx
          { deadline = d; result; cuts_applied = n_applied; pool_hits = hits;
            warm_started; root_pivots; pruned_by_bound = false }
  in
  (* A sweep-level failure on one point must not sink the others: fall
     back to a plain cold solve of that point, no cuts, no lift. *)
  let safe_point ws c0 chain k =
    try solve_point ws c0 chain k
    with _ ->
      let idx = order.(k) in
      let d = deadlines.(idx) in
      let mp = Model.copy model in
      Model.set_constraint_rhs mp deadline_row d;
      let cfg, _ = point_config idx d None in
      let result = Solver.solve ~config:cfg mp in
      record k idx
        { deadline = d; result; cuts_applied = 0; pool_hits = 0;
          warm_started = false; root_pivots = 0; pruned_by_bound = false }
  in
  let worker () =
    let ws = Simplex.workspace () in
    let c0 = Compiled.scratch base_compiled in
    let chain = ref None in
    let rec drain () =
      let k = Atomic.fetch_and_add next 1 in
      if k < np then begin
        safe_point ws c0 chain k;
        drain ()
      end
    in
    drain ()
  in
  let n_workers = Int.min instances np in
  if n_workers <= 1 then worker ()
  else begin
    let doms = Array.init (n_workers - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    Array.iter Domain.join doms
  end;
  let points =
    Array.mapi
      (fun idx -> function
        | Some p -> p
        | None ->
            (* unreachable: every position is drained exactly once *)
            invalid_arg
              (Printf.sprintf "Sweep.run: point %d missing a result" idx))
      results
  in
  let stats =
    {
      instances_warm_started = Atomic.get warm_count;
      cuts_separated = Atomic.get separated_count;
      cuts_applied = Atomic.get applied_count;
      cut_pool_hits = Atomic.get pool_hit_count;
      pool_size = Cuts.Pool.size pool;
      root_pivots = Atomic.get root_pivot_count;
      points_pruned_by_bound = Atomic.get pruned_count;
    }
  in
  let mx = Dvs_obs.metrics config.Solver.Config.obs in
  let module Mc = Dvs_obs.Metrics.Counter in
  let c name = Dvs_obs.Metrics.counter mx ~stability:Volatile name in
  Mc.add (c "sweep.points") ~slot:0 np;
  Mc.add (c "sweep.instances_warm_started") ~slot:0 stats.instances_warm_started;
  (* Volatile like the warm-start counter: at instances > 1 the lift a
     point sees depends on scheduling, so the pruned tally may differ
     across job counts (results never do). *)
  Mc.add (c "sweep.points_pruned_by_bound") ~slot:0 stats.points_pruned_by_bound;
  Mc.add (c "cuts.separated") ~slot:0 stats.cuts_separated;
  Mc.add (c "cuts.applied") ~slot:0 stats.cuts_applied;
  Mc.add (c "cuts.pool_hits") ~slot:0 stats.cut_pool_hits;
  { points; stats }
