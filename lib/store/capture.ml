module Json = Dvs_obs.Json
module Metrics = Dvs_obs.Metrics

type t = {
  counters : (string * int) list;
  gauges : (string * float) list;
}

let by_name (a, _) (b, _) = String.compare a b

let state obs =
  let m = Dvs_obs.metrics obs in
  if not (Metrics.enabled m) then { counters = []; gauges = [] }
  else
    let snap = Metrics.snapshot m in
    let counters =
      match Json.member "counters" snap with
      | Some (Json.Obj counters) ->
        List.filter_map
          (fun (name, v) ->
            match (Json.member "stability" v, Json.member "total" v) with
            | Some (Json.String "stable"), Some (Json.Int total) ->
              Some (name, total)
            | _ -> None)
          counters
        |> List.sort by_name
      | _ -> []
    in
    let gauges =
      match Json.member "gauges" snap with
      | Some (Json.Obj gauges) ->
        List.filter_map
          (fun (name, v) ->
            match (Json.member "stability" v, Json.member "value" v) with
            | Some (Json.String "stable"), Some value ->
              (* Non-finite gauge values print as null. *)
              let f =
                match value with
                | Json.Float f -> f
                | Json.Int n -> float_of_int n
                | _ -> Float.nan
              in
              Some (name, f)
            | _ -> None)
          gauges
        |> List.sort by_name
      | _ -> []
    in
    { counters; gauges }

let same_bits a b = Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b)

let diff ~before ~after =
  let base = Hashtbl.create 32 in
  List.iter (fun (n, v) -> Hashtbl.replace base n v) before.counters;
  let counters =
    List.filter_map
      (fun (n, v) ->
        match Hashtbl.find_opt base n with
        (* A zero delta still matters when the computation *registered*
           the counter: the cold snapshot carries it at 0, so the warm
           one must too. *)
        | None -> Some (n, v)
        | Some v0 -> if v > v0 then Some (n, v - v0) else None)
      after.counters
  in
  let gbase = Hashtbl.create 8 in
  List.iter (fun (n, v) -> Hashtbl.replace gbase n v) before.gauges;
  let gauges =
    List.filter
      (fun (n, v) ->
        match Hashtbl.find_opt gbase n with
        | Some v0 -> not (same_bits v v0)
        | None -> true)
      after.gauges
  in
  { counters; gauges }

let replay obs t =
  let m = Dvs_obs.metrics obs in
  List.iter
    (fun (name, d) ->
      Metrics.Counter.add
        (Metrics.counter m ~stability:Metrics.Stable name)
        ~slot:0 d)
    t.counters;
  List.iter
    (fun (name, v) ->
      Metrics.Gauge.set (Metrics.gauge m ~stability:Metrics.Stable name) v)
    t.gauges

(* Gauge values travel as "%h" strings: JSON floats cannot round-trip
   every bit pattern (or non-finite values) and the replayed gauge must
   be bit-identical to the live one. *)
let to_json t =
  Json.Obj
    [ ( "counters",
        Json.Obj (List.map (fun (n, v) -> (n, Json.Int v)) t.counters) );
      ( "gauges",
        Json.Obj
          (List.map
             (fun (n, v) -> (n, Json.String (Printf.sprintf "%h" v)))
             t.gauges) ) ]

let of_json j =
  let counters_of = function
    | Json.Obj kvs ->
      let rec go acc = function
        | [] -> Ok (List.rev acc)
        | (n, Json.Int v) :: rest -> go ((n, v) :: acc) rest
        | (n, _) :: _ ->
          Error (Printf.sprintf "counter %S: delta must be an integer" n)
      in
      go [] kvs
    | _ -> Error "counters: expected an object"
  in
  let gauges_of = function
    | Json.Obj kvs ->
      let rec go acc = function
        | [] -> Ok (List.rev acc)
        | (n, Json.String s) :: rest -> (
          match float_of_string_opt s with
          | Some v -> go ((n, v) :: acc) rest
          | None ->
            Error (Printf.sprintf "gauge %S: unparseable value %S" n s))
        | (n, _) :: _ ->
          Error (Printf.sprintf "gauge %S: value must be a string" n)
      in
      go [] kvs
    | _ -> Error "gauges: expected an object"
  in
  match j with
  | Json.Obj _ ->
    (match (Json.member "counters" j, Json.member "gauges" j) with
    | Some c, Some g ->
      Result.bind (counters_of c) (fun counters ->
          Result.map (fun gauges -> { counters; gauges }) (gauges_of g))
    | _ -> Error "capture: missing counters/gauges")
  | _ -> Error "capture: expected an object"
