module Json = Dvs_obs.Json
module Metrics = Dvs_obs.Metrics

let format_epoch = 3

let default_root = "_store"

let env_var = "DVS_STORE"

let schema_tag = "dvs-store/v1"

type counts = {
  hits : int;
  misses : int;
  stale : int;
  corrupt : int;
  puts : int;
  evictions : int;
}

type t = {
  root : string;
  epoch : int;
  max_entries : int;
  max_bytes : int;
  obs : Dvs_obs.t;
  mu : Mutex.t;  (** counters and the tmp-name tick only; I/O runs outside *)
  mutable c : counts;
  mutable tmp_tick : int;
}

let rec mkdir_p dir =
  if dir <> "" && dir <> "." && dir <> "/" && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with
    | Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let open_ ?(obs = Dvs_obs.disabled) ?(epoch = format_epoch)
    ?(max_entries = 4096) ?(max_bytes = 256 * 1024 * 1024) ~root () =
  if epoch <= 0 then invalid_arg "Dvs_store.Store.open_: epoch must be > 0";
  if max_entries <= 0 || max_bytes <= 0 then
    invalid_arg "Dvs_store.Store.open_: size bounds must be > 0";
  mkdir_p root;
  { root; epoch; max_entries; max_bytes; obs; mu = Mutex.create ();
    c = { hits = 0; misses = 0; stale = 0; corrupt = 0; puts = 0;
          evictions = 0 };
    tmp_tick = 0 }

let root t = t.root

let epoch t = t.epoch

(* Volatile on purpose: cache activity depends on what previous runs
   left on disk, so it must never enter the stable diffing subset. *)
let bump t name n =
  if n > 0 then
    Metrics.Counter.add
      (Metrics.counter (Dvs_obs.metrics t.obs) ~stability:Metrics.Volatile
         name)
      ~slot:0 n

let locked t f =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) f

let note_hit t kind =
  locked t (fun () -> t.c <- { t.c with hits = t.c.hits + 1 });
  bump t ("store." ^ kind ^ "_hits") 1

let note_miss t kind =
  locked t (fun () -> t.c <- { t.c with misses = t.c.misses + 1 });
  bump t ("store." ^ kind ^ "_misses") 1

let note_stale t n =
  if n > 0 then begin
    locked t (fun () -> t.c <- { t.c with stale = t.c.stale + n });
    bump t "store.stale" n
  end

let note_corrupt t n =
  if n > 0 then begin
    locked t (fun () -> t.c <- { t.c with corrupt = t.c.corrupt + n });
    bump t "store.corrupt" n
  end

let note_put t =
  locked t (fun () -> t.c <- { t.c with puts = t.c.puts + 1 });
  bump t "store.puts" 1

let note_evict t n =
  if n > 0 then begin
    locked t (fun () -> t.c <- { t.c with evictions = t.c.evictions + n });
    bump t "store.evictions" n
  end

let counts t = locked t (fun () -> t.c)

(* ---- entry I/O -------------------------------------------------------- *)

let read_file path =
  match open_in_bin path with
  | exception Sys_error _ -> None
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        match really_input_string ic (in_channel_length ic) with
        | s -> Some s
        | exception (End_of_file | Sys_error _) -> None)

let remove_quiet path = try Sys.remove path with Sys_error _ -> ()

(* Classify one on-disk entry.  [expect] carries the canonical key when
   the caller looked the file up by name (a mismatch there is a
   filename-hash collision: valid data for some other key). *)
type status =
  | Entry of string * Json.t  (** kind, payload *)
  | Other_key  (** checksummed fine but belongs to a different canonical key *)
  | Stale_entry
  | Corrupt_entry of string

let classify ~epoch ?expect path =
  match read_file path with
  | None -> Corrupt_entry "unreadable"
  | Some s -> (
    match Json.of_string s with
    | Error e -> Corrupt_entry ("parse: " ^ e)
    | Ok j -> (
      match
        ( Json.member "schema" j, Json.member "key" j, Json.member "kind" j,
          Json.member "epoch" j, Json.member "checksum" j,
          Json.member "payload" j )
      with
      | ( Some (Json.String tag), Some (Json.String key),
          Some (Json.String kind), Some (Json.Int e),
          Some (Json.String sum), Some payload )
        when tag = schema_tag ->
        if sum <> Key.hash_hex (Json.to_string payload) then
          Corrupt_entry "checksum mismatch"
        else if e <> epoch then Stale_entry
        else (
          match expect with
          | Some canonical when canonical <> key -> Other_key
          | _ -> Entry (kind, payload))
      | _ -> Corrupt_entry "not a dvs-store/v1 envelope"))

let touch path =
  try Unix.utimes path 0.0 0.0 with Unix.Unix_error _ -> ()

let get t key ~decode =
  let kind = Key.kind key in
  let path = Filename.concat t.root (Key.filename key) in
  if not (Sys.file_exists path) then begin
    note_miss t kind;
    None
  end
  else
    match classify ~epoch:t.epoch ~expect:(Key.canonical key) path with
    | Entry (_, payload) -> (
      match decode payload with
      | Ok v ->
        touch path;
        note_hit t kind;
        Some v
      | Error _ ->
        (* Envelope-valid but undecodable under this binary's codec:
           treat exactly like damage — drop it and recompute. *)
        remove_quiet path;
        note_corrupt t 1;
        note_miss t kind;
        None)
    | Other_key ->
      note_miss t kind;
      None
    | Stale_entry ->
      remove_quiet path;
      note_stale t 1;
      note_miss t kind;
      None
    | Corrupt_entry _ ->
      remove_quiet path;
      note_corrupt t 1;
      note_miss t kind;
      None

let get_json t key = get t key ~decode:(fun j -> Ok j)

(* ---- size bounds ------------------------------------------------------ *)

let list_entries t =
  match Sys.readdir t.root with
  | exception Sys_error _ -> []
  | files ->
    Array.to_list files
    |> List.filter_map (fun f ->
           if Filename.check_suffix f ".json" then
             let p = Filename.concat t.root f in
             match Unix.stat p with
             | exception Unix.Unix_error _ -> None
             | st when st.Unix.st_kind = Unix.S_REG -> Some (f, p, st)
             | _ -> None
           else None)

let enforce_bounds t =
  let entries = list_entries t in
  let total_bytes =
    List.fold_left (fun a (_, _, st) -> a + st.Unix.st_size) 0 entries
  in
  let n = List.length entries in
  if n > t.max_entries || total_bytes > t.max_bytes then begin
    (* Oldest mtime first; hits refresh mtime, so this is cross-process
       LRU with filesystem timestamps as the shared clock. *)
    let by_age =
      List.sort
        (fun (_, _, a) (_, _, b) -> compare a.Unix.st_mtime b.Unix.st_mtime)
        entries
    in
    let n = ref n and bytes = ref total_bytes and evicted = ref 0 in
    List.iter
      (fun (_, p, st) ->
        if !n > t.max_entries || !bytes > t.max_bytes then begin
          remove_quiet p;
          decr n;
          bytes := !bytes - st.Unix.st_size;
          incr evicted
        end)
      by_age;
    note_evict t !evicted;
    !evicted
  end
  else 0

let put t key payload =
  let body = Json.to_string payload in
  let envelope =
    Json.Obj
      [ ("schema", Json.String schema_tag);
        ("key", Json.String (Key.canonical key));
        ("kind", Json.String (Key.kind key));
        ("epoch", Json.Int t.epoch);
        ("checksum", Json.String (Key.hash_hex body));
        ("payload", payload) ]
  in
  let tick =
    locked t (fun () ->
        t.tmp_tick <- t.tmp_tick + 1;
        t.tmp_tick)
  in
  let tmp =
    Filename.concat t.root
      (Printf.sprintf ".tmp-%d-%d" (Unix.getpid ()) tick)
  in
  match open_out_bin tmp with
  | exception Sys_error _ -> ()
  | oc ->
    let wrote =
      match Json.to_channel oc envelope with
      | () ->
        close_out_noerr oc;
        true
      | exception Sys_error _ ->
        close_out_noerr oc;
        remove_quiet tmp;
        false
    in
    if wrote then begin
      (* Atomic within the store directory: concurrent writers of the
         same key race benignly (last rename wins, both were valid). *)
      match Sys.rename tmp (Filename.concat t.root (Key.filename key)) with
      | () ->
        note_put t;
        ignore (enforce_bounds t)
      | exception Sys_error _ -> remove_quiet tmp
    end

(* ---- maintenance ------------------------------------------------------ *)

type disk_stats = {
  entries : int;
  bytes : int;
  by_kind : (string * int) list;
}

let kind_of_filename f =
  (* "<kind>-<hex16>.json"; anything else is foreign. *)
  match String.rindex_opt f '-' with
  | Some i when i > 0 -> String.sub f 0 i
  | _ -> "?"

let disk_stats t =
  let entries = list_entries t in
  let by_kind = Hashtbl.create 8 in
  List.iter
    (fun (f, _, _) ->
      let k = kind_of_filename f in
      Hashtbl.replace by_kind k
        (1 + Option.value ~default:0 (Hashtbl.find_opt by_kind k)))
    entries;
  { entries = List.length entries;
    bytes =
      List.fold_left (fun a (_, _, st) -> a + st.Unix.st_size) 0 entries;
    by_kind =
      Hashtbl.fold (fun k n acc -> (k, n) :: acc) by_kind []
      |> List.sort (fun (a, _) (b, _) -> String.compare a b) }

type gc_report = {
  gc_scanned : int;
  gc_kept : int;
  gc_stale : int;
  gc_corrupt : int;
  gc_evicted : int;
}

let gc t =
  let entries = list_entries t in
  let stale = ref 0 and corrupt = ref 0 and kept = ref 0 in
  List.iter
    (fun (_, p, _) ->
      match classify ~epoch:t.epoch p with
      | Entry _ | Other_key -> incr kept
      | Stale_entry ->
        remove_quiet p;
        incr stale
      | Corrupt_entry _ ->
        remove_quiet p;
        incr corrupt)
    entries;
  note_stale t !stale;
  note_corrupt t !corrupt;
  let evicted = enforce_bounds t in
  { gc_scanned = List.length entries;
    gc_kept = !kept - evicted;
    gc_stale = !stale;
    gc_corrupt = !corrupt;
    gc_evicted = evicted }

type verify_report = {
  vr_checked : int;
  vr_ok : int;
  vr_stale : int;
  vr_corrupt : (string * string) list;
}

let verify t =
  let entries = list_entries t in
  let ok = ref 0 and stale = ref 0 and corrupt = ref [] in
  List.iter
    (fun (f, p, _) ->
      match classify ~epoch:t.epoch p with
      | Entry _ | Other_key -> incr ok
      | Stale_entry -> incr stale
      | Corrupt_entry reason -> corrupt := (f, reason) :: !corrupt)
    entries;
  { vr_checked = List.length entries;
    vr_ok = !ok;
    vr_stale = !stale;
    vr_corrupt =
      List.sort (fun (a, _) (b, _) -> String.compare a b) !corrupt }
