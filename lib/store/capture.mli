(** Capture and replay of stable instrument deltas.

    A store hit must leave the metrics registry exactly as the original
    computation would have ([Stable] instruments are deterministic
    functions of the inputs, and the bench summary is diffed on them) —
    so each solve/sweep entry carries the stable-counter deltas and
    stable-gauge writes observed while the artifact was first computed,
    and a hit replays them instead of redoing the work.  Volatile
    instruments (wall clock, scheduling-dependent work counts, the
    [store.*] counters themselves) are deliberately excluded: a warm
    run is {e supposed} to report less volatile work.  (No stable
    histogram exists in the codebase; adding one would need a bucket
    capture here.) *)

type t = {
  counters : (string * int) list;
      (** stable counter names with their deltas, name-sorted; zero
          deltas are kept only for counters the computation itself
          registered (so a replay reproduces the registration, and with
          it the cold run's snapshot shape) *)
  gauges : (string * float) list;
      (** stable gauges (re)written by the computation, with their final
          values, name-sorted *)
}

val state : Dvs_obs.t -> t
(** Totals of every [Stable] counter and values of every [Stable] gauge
    currently in the registry. *)

val diff : before:t -> after:t -> t
(** Per-counter [after - before], keeping positive deltas and
    newly registered counters (even at zero); gauges from [after] that
    are new or bit-different since [before] (gauges are last-write-wins,
    so the final value is the capture). *)

val replay : Dvs_obs.t -> t -> unit
(** Re-apply a captured delta (registering absent instruments as
    [Stable]): counters are bumped by their deltas, gauges set to their
    captured values. *)

val to_json : t -> Dvs_obs.Json.t

val of_json : Dvs_obs.Json.t -> (t, string) result
