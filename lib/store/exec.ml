module Json = Dvs_obs.Json
module Profile = Dvs_profile.Profile
module Pipeline = Dvs_core.Pipeline
module Formulation = Dvs_core.Formulation
module Solver = Dvs_milp.Solver

(* ---- cacheability ----------------------------------------------------- *)

(* A result may be stored only when recomputing it under the same key
   would reproduce it: wall-clock stops and contained crashes depend on
   machine load and scheduling, so they stay live. *)
let deterministic_outcome = function
  | Solver.Optimal | Solver.Infeasible | Solver.Unbounded -> true
  | Solver.Feasible r | Solver.No_solution r -> r <> Solver.Time_limit
  | Solver.Degraded _ -> false

let storable_result (r : Pipeline.result) =
  deterministic_outcome r.Pipeline.milp.Solver.outcome
  && List.for_all
       (fun (d : Pipeline.descent) ->
         d.Pipeline.cause <> Pipeline.Worker_crash)
       r.Pipeline.descents

let solver_cacheable (c : Solver.Config.t) = c.Solver.Config.fault = None

(* ---- sim: profiles ---------------------------------------------------- *)

let profile ?store ?fuel ~source machine cfg ~memory =
  let collect () = Profile.collect ?fuel machine cfg ~memory in
  match store with
  | None -> collect ()
  | Some st -> (
    let key =
      Key.make ~kind:"sim"
        (("source", Key.S source)
         :: ("memory", Key.S (Codec.memory_fingerprint memory))
         :: ( "fuel",
              match fuel with
              | None -> Key.L []
              | Some f -> Key.L [ Key.I f ] )
         :: Codec.machine_components ~prefix:"m." machine)
    in
    match
      Store.get st key ~decode:(Codec.profile_of_json ~cfg ~config:machine)
    with
    | Some p -> p
    | None ->
      let p = collect () in
      Store.put st key (Codec.profile_to_json p);
      p)

(* ---- shared solve/sweep plumbing -------------------------------------- *)

let category_components categories =
  List.concat
    (List.mapi
       (fun i (c : Formulation.category) ->
         let p n = Printf.sprintf "cat%d.%s" i n in
         [ (p "profile", Key.S (Codec.profile_fingerprint c.Formulation.profile));
           (p "weight", Key.F c.Formulation.weight);
           (p "deadline", Key.F c.Formulation.deadline) ])
       categories)

(* Payloads pair the result essence with the stable-counter deltas the
   computation produced, so a hit can replay both. *)
let payload_with_counters body counters =
  Json.Obj
    [ ("essence", body); ("counters", Capture.to_json counters) ]

let decode_with_counters decode_body j =
  match (Json.member "essence" j, Json.member "counters" j) with
  | Some body, Some counters ->
    Result.bind (decode_body body) (fun e ->
        Result.map (fun cs -> (e, cs)) (Capture.of_json counters))
  | _ -> Error "payload: missing essence or counters"

let capture_around obs f =
  let before = Capture.state obs in
  let r = f () in
  let after = Capture.state obs in
  (r, Capture.diff ~before ~after)

(* ---- solve: optimize_multi -------------------------------------------- *)

let optimize_multi ?store ?config ?verify_config ?session ~regulator ~memory
    categories =
  let config =
    match config with Some c -> c | None -> Pipeline.Config.default
  in
  let run () =
    Pipeline.optimize_multi ~config ?verify_config
      ?session:(Option.map (fun f -> f ()) session)
      ~regulator ~memory categories
  in
  match store with
  | None -> run ()
  | Some _ when not (solver_cacheable config.Pipeline.Config.solver) ->
    run ()
  | Some st -> (
    let vconfig =
      match verify_config with
      | Some c -> c
      | None ->
        (List.hd categories).Formulation.profile.Profile.config
    in
    let key =
      Key.make ~kind:"solve"
        (List.concat
           [ [ ("ncats", Key.I (List.length categories));
               ("regulator", Codec.regulator_component regulator);
               ("memory", Key.S (Codec.memory_fingerprint memory)) ];
             category_components categories;
             Codec.machine_components ~prefix:"vm." vconfig;
             Codec.pipeline_components config;
             Codec.solver_components config.Pipeline.Config.solver ])
    in
    let obs = Pipeline.Config.obs config in
    match
      Store.get st key ~decode:(decode_with_counters Codec.essence_of_json)
    with
    | Some (essence, counters) ->
      let prep = Pipeline.prepare ~config ~regulator categories in
      Capture.replay obs counters;
      Codec.result_of_essence ~categories
        ~formulation:prep.Pipeline.prep_formulation
        ~independent_edges:prep.Pipeline.prep_independent_edges essence
    | None ->
      let r, counters = capture_around obs run in
      if storable_result r then
        Store.put st key
          (payload_with_counters
             (Codec.essence_to_json (Codec.essence_of_result r))
             counters);
      r)

(* ---- sweep: optimize_sweep -------------------------------------------- *)

let optimize_sweep ?store ?config ?verify_config ?profile:prof ?session
    ?(instances = 1) ?(cut_rounds = 3) machine cfg ~memory ~deadlines =
  let config =
    match config with Some c -> c | None -> Pipeline.Config.default
  in
  let run profile =
    Pipeline.optimize_sweep ~config ?verify_config ?profile ~instances
      ~cut_rounds
      ?session:(Option.map (fun f -> f ()) session)
      machine cfg ~memory ~deadlines
  in
  match store with
  | None -> run prof
  | Some _ when not (solver_cacheable config.Pipeline.Config.solver) ->
    run prof
  | Some st -> (
    (* The profile pins the key, so resolve it first (through the sim
       cache when the caller has one wired; bench passes it in). *)
    let p =
      match prof with
      | Some p -> p
      | None -> Profile.collect machine cfg ~memory
    in
    let vconfig =
      match verify_config with Some c -> c | None -> p.Profile.config
    in
    let key =
      Key.make ~kind:"sweep"
        (List.concat
           [ [ ("profile", Key.S (Codec.profile_fingerprint p));
               ( "deadlines",
                 Key.L
                   (Array.to_list deadlines |> List.map (fun d -> Key.F d))
               );
               ("memory", Key.S (Codec.memory_fingerprint memory));
               ("instances", Key.I instances);
               ("cut_rounds", Key.I cut_rounds) ];
             Codec.machine_components ~prefix:"m." machine;
             Codec.machine_components ~prefix:"vm." vconfig;
             Codec.pipeline_components config;
             Codec.solver_components config.Pipeline.Config.solver ])
    in
    let obs = Pipeline.Config.obs config in
    let decode j =
      Result.bind (decode_with_counters Codec.sweep_of_json j)
        (fun ((sw : Codec.sweep_essence), cs) ->
          if Array.length sw.Codec.se_points <> Array.length deadlines then
            Error "sweep: point count does not match deadlines"
          else Ok (sw, cs))
    in
    match Store.get st key ~decode with
    | Some (sw, counters) ->
      let regulator = machine.Dvs_machine.Config.regulator in
      let category d =
        { Formulation.profile = p; weight = 1.0; deadline = d }
      in
      let d_loosest = Array.fold_left Float.max Float.neg_infinity deadlines in
      let prep =
        Pipeline.prepare ~config ~regulator [ category d_loosest ]
      in
      Capture.replay obs counters;
      { Pipeline.results =
          Array.mapi
            (fun i e ->
              Codec.result_of_essence
                ~categories:[ category deadlines.(i) ]
                ~formulation:prep.Pipeline.prep_formulation
                ~independent_edges:prep.Pipeline.prep_independent_edges e)
            sw.Codec.se_points;
        sweep = sw.Codec.se_stats }
    | None ->
      let r, counters = capture_around obs (fun () -> run (Some p)) in
      let storable =
        Array.for_all storable_result r.Pipeline.results
      in
      if storable then
        Store.put st key
          (payload_with_counters
             (Codec.sweep_to_json
                { Codec.se_points =
                    Array.map Codec.essence_of_result r.Pipeline.results;
                  se_stats = r.Pipeline.sweep })
             counters);
      r)
