(** JSON codecs for the stored artifact classes, plus the fingerprint
    helpers {!Exec} composes cache keys from.

    Floats are rendered as hexadecimal float strings ([%h]) so every
    value — including non-finite bounds — round-trips bit-exactly
    (the plain JSON [Float] printer maps non-finite values to [null]).
    Decoders are total: any shape mismatch is an [Error], never an
    exception, so a damaged payload downgrades to a store miss. *)

(** {2 Simulator artifacts} *)

val run_stats_to_json : Dvs_machine.Cpu.run_stats -> Dvs_obs.Json.t

val run_stats_of_json :
  Dvs_obs.Json.t -> (Dvs_machine.Cpu.run_stats, string) result

val profile_to_json : Dvs_profile.Profile.t -> Dvs_obs.Json.t
(** The measured data only — [cfg] and [config] are part of the cache
    key, so {!profile_of_json} takes them back from the caller. *)

val profile_of_json :
  cfg:Dvs_ir.Cfg.t ->
  config:Dvs_machine.Config.t ->
  Dvs_obs.Json.t ->
  (Dvs_profile.Profile.t, string) result

val profile_fingerprint : Dvs_profile.Profile.t -> string
(** Content hash of the measured data (bit-exact on floats): the
    identity of a profile inside solve/sweep keys, independent of how
    the caller names its workload. *)

(** {2 Solve artifacts} *)

type solve_essence = {
  e_outcome : Dvs_milp.Solver.outcome;
  e_solution : Dvs_lp.Simplex.solution option;
  e_bound : float;
  e_stats : Dvs_milp.Solver.stats;
  e_predicted_energy : float option;
  e_schedule : Dvs_core.Schedule.t option;
  e_verification : Dvs_core.Verify.report option;
  e_solve_seconds : float;
  e_rung : Dvs_core.Pipeline.rung option;
  e_descents : Dvs_core.Pipeline.descent list;
  e_continuous_bound : float option;
}
(** Everything a {!Dvs_core.Pipeline.result} carries except the
    formulation and categories, which are cheap to rebuild and are
    pinned by the cache key. *)

val essence_of_result : Dvs_core.Pipeline.result -> solve_essence

val result_of_essence :
  categories:Dvs_core.Formulation.category list ->
  formulation:Dvs_core.Formulation.t ->
  independent_edges:int ->
  solve_essence ->
  Dvs_core.Pipeline.result

val essence_to_json : solve_essence -> Dvs_obs.Json.t

val essence_of_json : Dvs_obs.Json.t -> (solve_essence, string) result

type sweep_essence = {
  se_points : solve_essence array;
  se_stats : Dvs_milp.Sweep.stats;
}

val sweep_to_json : sweep_essence -> Dvs_obs.Json.t

val sweep_of_json : Dvs_obs.Json.t -> (sweep_essence, string) result

(** {2 Key components} *)

val memory_fingerprint : int array -> string
(** Content hash of a memory image (the workload input data). *)

val regulator_component : Dvs_power.Switch_cost.regulator -> Key.component

val machine_components :
  prefix:string -> Dvs_machine.Config.t -> (string * Key.component) list
(** Cache geometry, DRAM latency, mode table, regulator, energy
    coefficient — every machine parameter the simulator reads. *)

val solver_components :
  Dvs_milp.Solver.Config.t -> (string * Key.component) list
(** The solver parameters that shape the result: jobs, budgets,
    tolerances, heuristic and branching choices.  Operational fields
    (log, cache, obs, fault) are excluded — {!Exec} refuses to cache
    fault-injected solves outright. *)

val pipeline_components :
  Dvs_core.Pipeline.Config.t -> (string * Key.component) list
(** Filter, verification and resilience settings (the nested solver
    config is {e not} included — compose with {!solver_components}). *)
