module Json = Dvs_obs.Json
module Cpu = Dvs_machine.Cpu
module Cache = Dvs_machine.Cache
module Profile = Dvs_profile.Profile
module Schedule = Dvs_core.Schedule
module Verify = Dvs_core.Verify
module Pipeline = Dvs_core.Pipeline
module Formulation = Dvs_core.Formulation
module Solver = Dvs_milp.Solver
module Sweep = Dvs_milp.Sweep
module Simplex = Dvs_lp.Simplex
module Mode = Dvs_power.Mode
module Switch_cost = Dvs_power.Switch_cost

(* ---- primitives ------------------------------------------------------- *)

(* Hex-float strings round-trip every bit pattern, including infinities
   (the LP bound of an infeasible instance) — Json.Float would print
   those as null. *)
let jf f = Json.String (Printf.sprintf "%h" f)

let jopt f = function None -> Json.Null | Some v -> f v

let jints a = Json.List (Array.to_list a |> List.map (fun n -> Json.Int n))

let jfloats a = Json.List (Array.to_list a |> List.map jf)

exception Decode of string

let fail fmt = Printf.ksprintf (fun s -> raise (Decode s)) fmt

let wrap f j = match f j with v -> Ok v | exception Decode e -> Error e

let mem what k j =
  match Json.member k j with
  | Some v -> v
  | None -> fail "%s: missing %S" what k

let dint what = function
  | Json.Int n -> n
  | _ -> fail "%s: expected an integer" what

let dbool what = function
  | Json.Bool b -> b
  | _ -> fail "%s: expected a bool" what

let dstr what = function
  | Json.String s -> s
  | _ -> fail "%s: expected a string" what

let dflo what = function
  | Json.String s -> (
    try float_of_string s with Failure _ -> fail "%s: bad float" what)
  | Json.Int n -> float_of_int n
  | Json.Float f -> f
  | _ -> fail "%s: expected a float" what

let dlist what = function
  | Json.List l -> l
  | _ -> fail "%s: expected a list" what

let dopt f = function Json.Null -> None | j -> Some (f j)

let dints what j = dlist what j |> List.map (dint what) |> Array.of_list

let dfloats what j = dlist what j |> List.map (dflo what) |> Array.of_list

(* ---- simulator artifacts ---------------------------------------------- *)

let cache_stats_to_json (s : Cache.stats) =
  Json.Obj
    [ ("accesses", Json.Int s.Cache.accesses);
      ("hits", Json.Int s.Cache.hits);
      ("misses", Json.Int s.Cache.misses) ]

let cache_stats_of what j =
  { Cache.accesses = dint what (mem what "accesses" j);
    hits = dint what (mem what "hits" j);
    misses = dint what (mem what "misses" j) }

let run_stats_to_json (r : Cpu.run_stats) =
  Json.Obj
    [ ("time", jf r.Cpu.time);
      ("energy", jf r.Cpu.energy);
      ("dyn_instrs", Json.Int r.Cpu.dyn_instrs);
      ("mode_transitions", Json.Int r.Cpu.mode_transitions);
      ("transition_time", jf r.Cpu.transition_time);
      ("transition_energy", jf r.Cpu.transition_energy);
      ("l1", cache_stats_to_json r.Cpu.l1);
      ("l2", cache_stats_to_json r.Cpu.l2);
      ("overlap_cycles", Json.Int r.Cpu.overlap_cycles);
      ("dependent_cycles", Json.Int r.Cpu.dependent_cycles);
      ("cache_hit_cycles", Json.Int r.Cpu.cache_hit_cycles);
      ("miss_busy_time", jf r.Cpu.miss_busy_time);
      ("stall_time", jf r.Cpu.stall_time);
      ("registers", jints r.Cpu.registers);
      ("memory", jints r.Cpu.memory) ]

let run_stats_of what j =
  { Cpu.time = dflo what (mem what "time" j);
    energy = dflo what (mem what "energy" j);
    dyn_instrs = dint what (mem what "dyn_instrs" j);
    mode_transitions = dint what (mem what "mode_transitions" j);
    transition_time = dflo what (mem what "transition_time" j);
    transition_energy = dflo what (mem what "transition_energy" j);
    l1 = cache_stats_of what (mem what "l1" j);
    l2 = cache_stats_of what (mem what "l2" j);
    overlap_cycles = dint what (mem what "overlap_cycles" j);
    dependent_cycles = dint what (mem what "dependent_cycles" j);
    cache_hit_cycles = dint what (mem what "cache_hit_cycles" j);
    miss_busy_time = dflo what (mem what "miss_busy_time" j);
    stall_time = dflo what (mem what "stall_time" j);
    registers = dints what (mem what "registers" j);
    memory = dints what (mem what "memory" j) }

let run_stats_of_json j = wrap (run_stats_of "run_stats") j

let path_to_json (p : Profile.path) =
  Json.Obj
    [ ("pred", jopt (fun l -> Json.Int l) p.Profile.pred);
      ("node", Json.Int p.Profile.node);
      ("succ", Json.Int p.Profile.succ) ]

let path_of what j =
  { Profile.pred = dopt (dint what) (mem what "pred" j);
    node = dint what (mem what "node" j);
    succ = dint what (mem what "succ" j) }

let profile_to_json (p : Profile.t) =
  Json.Obj
    [ ("exec_count", jints p.Profile.exec_count);
      ("edge_count", jints p.Profile.edge_count);
      ("entry_count", Json.Int p.Profile.entry_count);
      ( "paths",
        Json.List
          (List.map
             (fun (path, n) ->
               Json.Obj
                 [ ("path", path_to_json path); ("count", Json.Int n) ])
             p.Profile.paths) );
      ( "total_time",
        Json.List (Array.to_list p.Profile.total_time |> List.map jfloats) );
      ( "total_energy",
        Json.List (Array.to_list p.Profile.total_energy |> List.map jfloats)
      );
      ( "runs",
        Json.List
          (Array.to_list p.Profile.runs |> List.map run_stats_to_json) ) ]

let profile_of_json ~cfg ~config j =
  let what = "profile" in
  wrap
    (fun j ->
      { Profile.cfg;
        config;
        exec_count = dints what (mem what "exec_count" j);
        edge_count = dints what (mem what "edge_count" j);
        entry_count = dint what (mem what "entry_count" j);
        paths =
          dlist what (mem what "paths" j)
          |> List.map (fun pj ->
                 ( path_of what (mem what "path" pj),
                   dint what (mem what "count" pj) ));
        total_time =
          dlist what (mem what "total_time" j)
          |> List.map (dfloats what)
          |> Array.of_list;
        total_energy =
          dlist what (mem what "total_energy" j)
          |> List.map (dfloats what)
          |> Array.of_list;
        runs =
          dlist what (mem what "runs" j)
          |> List.map (run_stats_of what)
          |> Array.of_list })
    j

(* The profile's own JSON rendering is canonical (sorted construction,
   bit-exact floats), so its hash is a faithful content fingerprint. *)
let profile_fingerprint p = Key.hash_hex (Json.to_string (profile_to_json p))

(* ---- schedules, verification ------------------------------------------ *)

let schedule_to_json (s : Schedule.t) =
  Json.Obj
    [ ("edge_mode", jints s.Schedule.edge_mode);
      ("entry_mode", Json.Int s.Schedule.entry_mode) ]

let schedule_of what j =
  { Schedule.edge_mode = dints what (mem what "edge_mode" j);
    entry_mode = dint what (mem what "entry_mode" j) }

let report_to_json (v : Verify.report) =
  Json.Obj
    [ ("stats", run_stats_to_json v.Verify.stats);
      ("deadline", jf v.Verify.deadline);
      ("meets_deadline", Json.Bool v.Verify.meets_deadline);
      ("predicted_energy", jf v.Verify.predicted_energy);
      ("energy_error", jf v.Verify.energy_error) ]

let report_of what j =
  { Verify.stats = run_stats_of what (mem what "stats" j);
    deadline = dflo what (mem what "deadline" j);
    meets_deadline = dbool what (mem what "meets_deadline" j);
    predicted_energy = dflo what (mem what "predicted_energy" j);
    energy_error = dflo what (mem what "energy_error" j);
    (* 0 = "not from a warm session": a rehydrated report must not be
       offered to Session.check_incremental as a splice base. *)
    token = 0 }

(* ---- solver ----------------------------------------------------------- *)

let stop_to_string = function
  | Solver.Node_limit -> "node_limit"
  | Solver.Time_limit -> "time_limit"
  | Solver.Iter_limit -> "iter_limit"

let stop_of what = function
  | "node_limit" -> Solver.Node_limit
  | "time_limit" -> Solver.Time_limit
  | "iter_limit" -> Solver.Iter_limit
  | s -> fail "%s: unknown stop reason %S" what s

let crash_to_json (c : Solver.crash) =
  Json.Obj
    [ ("worker", Json.Int c.Solver.worker);
      ("depth", Json.Int c.Solver.depth);
      ( "path",
        Json.List (List.map (fun n -> Json.Int n) c.Solver.path) );
      ("message", Json.String c.Solver.message) ]

let crash_of what j =
  { Solver.worker = dint what (mem what "worker" j);
    depth = dint what (mem what "depth" j);
    path = dlist what (mem what "path" j) |> List.map (dint what);
    message = dstr what (mem what "message" j) }

let outcome_to_json = function
  | Solver.Optimal -> Json.Obj [ ("tag", Json.String "optimal") ]
  | Solver.Infeasible -> Json.Obj [ ("tag", Json.String "infeasible") ]
  | Solver.Unbounded -> Json.Obj [ ("tag", Json.String "unbounded") ]
  | Solver.Feasible r ->
    Json.Obj
      [ ("tag", Json.String "feasible");
        ("stop", Json.String (stop_to_string r)) ]
  | Solver.No_solution r ->
    Json.Obj
      [ ("tag", Json.String "no_solution");
        ("stop", Json.String (stop_to_string r)) ]
  | Solver.Degraded d ->
    Json.Obj
      [ ("tag", Json.String "degraded");
        ("crashes", Json.List (List.map crash_to_json d.Solver.crashes));
        ( "stopped",
          jopt (fun r -> Json.String (stop_to_string r)) d.Solver.stopped )
      ]

let outcome_of what j =
  match dstr what (mem what "tag" j) with
  | "optimal" -> Solver.Optimal
  | "infeasible" -> Solver.Infeasible
  | "unbounded" -> Solver.Unbounded
  | "feasible" -> Solver.Feasible (stop_of what (dstr what (mem what "stop" j)))
  | "no_solution" ->
    Solver.No_solution (stop_of what (dstr what (mem what "stop" j)))
  | "degraded" ->
    Solver.Degraded
      { Solver.crashes =
          dlist what (mem what "crashes" j) |> List.map (crash_of what);
        stopped =
          dopt (fun s -> stop_of what (dstr what s)) (mem what "stopped" j) }
  | tag -> fail "%s: unknown outcome tag %S" what tag

let solver_stats_to_json (s : Solver.stats) =
  Json.Obj
    [ ("nodes", Json.Int s.Solver.nodes);
      ("lp_solves", Json.Int s.Solver.lp_solves);
      ("lp_pivots", Json.Int s.Solver.lp_pivots);
      ("cache_hits", Json.Int s.Solver.cache_hits);
      ("cache_misses", Json.Int s.Solver.cache_misses);
      ("cache_evictions", Json.Int s.Solver.cache_evictions);
      ("steals", Json.Int s.Solver.steals);
      ("wall_seconds", jf s.Solver.wall_seconds);
      ("cpu_seconds", jf s.Solver.cpu_seconds);
      ("workers", Json.Int s.Solver.workers);
      ("worker_nodes", jints s.Solver.worker_nodes) ]

let solver_stats_of what j =
  { Solver.nodes = dint what (mem what "nodes" j);
    lp_solves = dint what (mem what "lp_solves" j);
    lp_pivots = dint what (mem what "lp_pivots" j);
    cache_hits = dint what (mem what "cache_hits" j);
    cache_misses = dint what (mem what "cache_misses" j);
    cache_evictions = dint what (mem what "cache_evictions" j);
    steals = dint what (mem what "steals" j);
    wall_seconds = dflo what (mem what "wall_seconds" j);
    cpu_seconds = dflo what (mem what "cpu_seconds" j);
    workers = dint what (mem what "workers" j);
    worker_nodes = dints what (mem what "worker_nodes" j) }

let solution_to_json (s : Simplex.solution) =
  Json.Obj
    [ ("objective", jf s.Simplex.objective);
      ("values", jfloats s.Simplex.values) ]

let solution_of what j =
  { Simplex.objective = dflo what (mem what "objective" j);
    values = dfloats what (mem what "values" j) }

(* ---- pipeline essence ------------------------------------------------- *)

let rung_to_json = function
  | Pipeline.Milp -> Json.Obj [ ("tag", Json.String "milp") ]
  | Pipeline.Milp_retry n ->
    Json.Obj [ ("tag", Json.String "milp_retry"); ("n", Json.Int n) ]
  | Pipeline.Rounded_lp -> Json.Obj [ ("tag", Json.String "rounded_lp") ]
  | Pipeline.Continuous_rounded ->
    Json.Obj [ ("tag", Json.String "continuous_rounded") ]
  | Pipeline.Single_mode -> Json.Obj [ ("tag", Json.String "single_mode") ]

let rung_of what j =
  match dstr what (mem what "tag" j) with
  | "milp" -> Pipeline.Milp
  | "milp_retry" -> Pipeline.Milp_retry (dint what (mem what "n" j))
  | "rounded_lp" -> Pipeline.Rounded_lp
  | "continuous_rounded" -> Pipeline.Continuous_rounded
  | "single_mode" -> Pipeline.Single_mode
  | tag -> fail "%s: unknown rung %S" what tag

let cause_to_string = function
  | Pipeline.Limit_hit -> "limit_hit"
  | Pipeline.Worker_crash -> "worker_crash"
  | Pipeline.Numeric -> "numeric"
  | Pipeline.Verify_reject -> "verify_reject"

let cause_of what = function
  | "limit_hit" -> Pipeline.Limit_hit
  | "worker_crash" -> Pipeline.Worker_crash
  | "numeric" -> Pipeline.Numeric
  | "verify_reject" -> Pipeline.Verify_reject
  | s -> fail "%s: unknown cause %S" what s

let descent_to_json (d : Pipeline.descent) =
  Json.Obj
    [ ("rung_failed", rung_to_json d.Pipeline.rung_failed);
      ("cause", Json.String (cause_to_string d.Pipeline.cause));
      ("detail", Json.String d.Pipeline.detail) ]

let descent_of what j =
  { Pipeline.rung_failed = rung_of what (mem what "rung_failed" j);
    cause = cause_of what (dstr what (mem what "cause" j));
    detail = dstr what (mem what "detail" j) }

type solve_essence = {
  e_outcome : Solver.outcome;
  e_solution : Simplex.solution option;
  e_bound : float;
  e_stats : Solver.stats;
  e_predicted_energy : float option;
  e_schedule : Schedule.t option;
  e_verification : Verify.report option;
  e_solve_seconds : float;
  e_rung : Pipeline.rung option;
  e_descents : Pipeline.descent list;
  e_continuous_bound : float option;
}

let essence_of_result (r : Pipeline.result) =
  { e_outcome = r.Pipeline.milp.Solver.outcome;
    e_solution = r.Pipeline.milp.Solver.solution;
    e_bound = r.Pipeline.milp.Solver.bound;
    e_stats = r.Pipeline.milp.Solver.stats;
    e_predicted_energy = r.Pipeline.predicted_energy;
    e_schedule = r.Pipeline.schedule;
    e_verification = r.Pipeline.verification;
    e_solve_seconds = r.Pipeline.solve_seconds;
    e_rung = r.Pipeline.rung;
    e_descents = r.Pipeline.descents;
    e_continuous_bound = r.Pipeline.continuous_bound }

let result_of_essence ~categories ~formulation ~independent_edges e =
  { Pipeline.categories;
    formulation;
    milp =
      { Solver.outcome = e.e_outcome;
        solution = e.e_solution;
        bound = e.e_bound;
        stats = e.e_stats };
    predicted_energy = e.e_predicted_energy;
    schedule = e.e_schedule;
    verification = e.e_verification;
    solve_seconds = e.e_solve_seconds;
    independent_edges;
    rung = e.e_rung;
    descents = e.e_descents;
    continuous_bound = e.e_continuous_bound }

let essence_to_json e =
  Json.Obj
    [ ("outcome", outcome_to_json e.e_outcome);
      ("solution", jopt solution_to_json e.e_solution);
      ("bound", jf e.e_bound);
      ("stats", solver_stats_to_json e.e_stats);
      ("predicted_energy", jopt jf e.e_predicted_energy);
      ("schedule", jopt schedule_to_json e.e_schedule);
      ("verification", jopt report_to_json e.e_verification);
      ("solve_seconds", jf e.e_solve_seconds);
      ("rung", jopt rung_to_json e.e_rung);
      ("descents", Json.List (List.map descent_to_json e.e_descents));
      ("continuous_bound", jopt jf e.e_continuous_bound) ]

let essence_of what j =
  { e_outcome = outcome_of what (mem what "outcome" j);
    e_solution = dopt (solution_of what) (mem what "solution" j);
    e_bound = dflo what (mem what "bound" j);
    e_stats = solver_stats_of what (mem what "stats" j);
    e_predicted_energy = dopt (dflo what) (mem what "predicted_energy" j);
    e_schedule = dopt (schedule_of what) (mem what "schedule" j);
    e_verification = dopt (report_of what) (mem what "verification" j);
    e_solve_seconds = dflo what (mem what "solve_seconds" j);
    e_rung = dopt (rung_of what) (mem what "rung" j);
    e_descents =
      dlist what (mem what "descents" j) |> List.map (descent_of what);
    e_continuous_bound = dopt (dflo what) (mem what "continuous_bound" j) }

let essence_of_json j = wrap (essence_of "solve") j

type sweep_essence = {
  se_points : solve_essence array;
  se_stats : Sweep.stats;
}

let sweep_stats_to_json (s : Sweep.stats) =
  Json.Obj
    [ ("instances_warm_started", Json.Int s.Sweep.instances_warm_started);
      ("cuts_separated", Json.Int s.Sweep.cuts_separated);
      ("cuts_applied", Json.Int s.Sweep.cuts_applied);
      ("cut_pool_hits", Json.Int s.Sweep.cut_pool_hits);
      ("pool_size", Json.Int s.Sweep.pool_size);
      ("root_pivots", Json.Int s.Sweep.root_pivots);
      ("points_pruned_by_bound", Json.Int s.Sweep.points_pruned_by_bound) ]

let sweep_stats_of what j =
  { Sweep.instances_warm_started =
      dint what (mem what "instances_warm_started" j);
    cuts_separated = dint what (mem what "cuts_separated" j);
    cuts_applied = dint what (mem what "cuts_applied" j);
    cut_pool_hits = dint what (mem what "cut_pool_hits" j);
    pool_size = dint what (mem what "pool_size" j);
    root_pivots = dint what (mem what "root_pivots" j);
    points_pruned_by_bound =
      dint what (mem what "points_pruned_by_bound" j) }

let sweep_to_json s =
  Json.Obj
    [ ( "points",
        Json.List (Array.to_list s.se_points |> List.map essence_to_json) );
      ("stats", sweep_stats_to_json s.se_stats) ]

let sweep_of_json j =
  let what = "sweep" in
  wrap
    (fun j ->
      { se_points =
          dlist what (mem what "points" j)
          |> List.map (essence_of what)
          |> Array.of_list;
        se_stats = sweep_stats_of what (mem what "stats" j) })
    j

(* ---- key components --------------------------------------------------- *)

let memory_fingerprint mem =
  let b = Buffer.create (Array.length mem * 4) in
  Array.iter
    (fun w ->
      Buffer.add_string b (string_of_int w);
      Buffer.add_char b ',')
    mem;
  Key.hash_hex (Buffer.contents b)

let geometry_component (g : Dvs_machine.Config.cache_geometry) =
  Key.L
    [ Key.I g.Dvs_machine.Config.size_bytes;
      Key.I g.Dvs_machine.Config.assoc;
      Key.I g.Dvs_machine.Config.block_bytes;
      Key.I g.Dvs_machine.Config.latency_cycles ]

let mode_table_component table =
  Key.L
    (List.map
       (fun (m : Mode.t) ->
         Key.L [ Key.F m.Mode.voltage; Key.F m.Mode.frequency ])
       (Mode.to_list table))

let regulator_component (r : Switch_cost.regulator) =
  Key.L
    [ Key.F r.Switch_cost.capacitance;
      Key.F r.Switch_cost.efficiency;
      Key.F r.Switch_cost.i_max ]

let machine_components ~prefix (c : Dvs_machine.Config.t) =
  let p n = prefix ^ n in
  [ (p "l1d", geometry_component c.Dvs_machine.Config.l1d);
    (p "l2", geometry_component c.Dvs_machine.Config.l2);
    (p "dram_latency", Key.F c.Dvs_machine.Config.dram_latency);
    (p "word_bytes", Key.I c.Dvs_machine.Config.word_bytes);
    (p "mode_table", mode_table_component c.Dvs_machine.Config.mode_table);
    (p "regulator", regulator_component c.Dvs_machine.Config.regulator);
    ( p "active_energy_coeff",
      Key.F c.Dvs_machine.Config.active_energy_coeff ) ]

let bool_component b = Key.I (if b then 1 else 0)

let solver_components (c : Solver.Config.t) =
  [ ("solver.jobs", Key.I c.Solver.Config.jobs);
    ("solver.max_nodes", Key.I c.Solver.Config.max_nodes);
    ("solver.int_tol", Key.F c.Solver.Config.int_tol);
    ("solver.gap_rel", Key.F c.Solver.Config.gap_rel);
    ( "solver.time_limit",
      match c.Solver.Config.time_limit with
      | None -> Key.L []
      | Some t -> Key.L [ Key.F t ] );
    ("solver.rounding", bool_component c.Solver.Config.rounding);
    ("solver.cache_depth", Key.I c.Solver.Config.cache_depth);
    ("solver.presolve", bool_component c.Solver.Config.presolve);
    ( "solver.pricing",
      Key.S
        (match c.Solver.Config.pricing with
        | Simplex.Bland -> "bland"
        | Simplex.Dantzig -> "dantzig"
        | Simplex.Steepest_edge -> "steepest_edge") );
    ( "solver.branching",
      Key.S
        (match c.Solver.Config.branching with
        | Solver.Config.Fractional -> "fractional"
        | Solver.Config.Pseudocost_gub -> "pseudocost_gub") );
    ( "solver.node_order",
      Key.S
        (match c.Solver.Config.node_order with
        | Solver.Config.Best_bound -> "best_bound"
        | Solver.Config.Depth_first -> "depth_first") );
    ( "solver.basis",
      Key.S
        (match c.Solver.Config.basis with
        | Simplex.Lu -> "lu"
        | Simplex.Dense -> "dense") );
    ( "solver.refactor",
      match c.Solver.Config.refactor with
      | None -> Key.L []
      | Some (Simplex.Pivots k) -> Key.L [ Key.S "pivots"; Key.I k ]
      | Some (Simplex.Eta_fill { max_pivots; growth }) ->
        Key.L [ Key.S "eta_fill"; Key.I max_pivots; Key.F growth ] );
    ("solver.reliability", Key.I c.Solver.Config.reliability) ]

let pipeline_components (c : Pipeline.Config.t) =
  let r = c.Pipeline.Config.resilience in
  [ ("pipe.filter", bool_component c.Pipeline.Config.filter);
    ("pipe.filter_threshold", Key.F c.Pipeline.Config.filter_threshold);
    ("pipe.verify", bool_component c.Pipeline.Config.verify);
    ("pipe.cold_verify", bool_component c.Pipeline.Config.cold_verify);
    ( "pipe.continuous_bound",
      bool_component c.Pipeline.Config.continuous_bound );
    ("pipe.ladder", bool_component r.Pipeline.Resilience.ladder);
    ("pipe.max_retries", Key.I r.Pipeline.Resilience.max_retries);
    ( "pipe.retry_budget_factor",
      Key.F r.Pipeline.Resilience.retry_budget_factor );
    ( "pipe.entry",
      Key.S
        (match r.Pipeline.Resilience.entry with
        | Pipeline.Resilience.From_milp -> "milp"
        | Pipeline.Resilience.From_rounded_lp -> "rounded_lp"
        | Pipeline.Resilience.From_single_mode -> "single_mode") ) ]
