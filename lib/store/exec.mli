(** Store-aware drivers for the expensive artifact classes.

    Each driver composes the canonical cache key for one computation,
    consults the store, and either rehydrates the stored artifact or
    runs the real computation and stores the result.  [?store = None]
    is always exactly the underlying computation.

    On a solve/sweep hit the stored stable-counter deltas are replayed
    into the pipeline's metrics registry ({!Capture}), so a warm run's
    [Stable] metrics are bit-identical to the cold run's while zero
    simulations and zero LP solves execute.

    Two classes of result are deliberately never stored: fault-injected
    solves (the injector's whole point is to exercise the live path) and
    results whose outcome depended on the wall clock or on contained
    crashes ([Time_limit] stops, [Degraded] outcomes, [Worker_crash]
    descents) — caching those would freeze one run's scheduling accident
    into every future run. *)

val profile :
  ?store:Store.t ->
  ?fuel:int ->
  source:string ->
  Dvs_machine.Config.t ->
  Dvs_ir.Cfg.t ->
  memory:int array ->
  Dvs_profile.Profile.t
(** Store-backed {!Dvs_profile.Profile.collect}.  [source] names the
    program and input (e.g. ["adpcm:default"]); together with the
    memory-image fingerprint and every machine parameter it pins the
    key.  Artifact kind: ["sim"] — one entry covers the per-mode pinned
    simulation runs. *)

val optimize_multi :
  ?store:Store.t ->
  ?config:Dvs_core.Pipeline.Config.t ->
  ?verify_config:Dvs_machine.Config.t ->
  ?session:(unit -> Dvs_core.Verify.Session.t) ->
  regulator:Dvs_power.Switch_cost.regulator ->
  memory:int array ->
  Dvs_core.Formulation.category list ->
  Dvs_core.Pipeline.result
(** Store-backed {!Dvs_core.Pipeline.optimize_multi}.  [session] is a
    thunk, forced only on a miss — on a hit no verification session
    (and hence no recording simulation) is ever created.  Artifact
    kind: ["solve"]. *)

val optimize_sweep :
  ?store:Store.t ->
  ?config:Dvs_core.Pipeline.Config.t ->
  ?verify_config:Dvs_machine.Config.t ->
  ?profile:Dvs_profile.Profile.t ->
  ?session:(unit -> Dvs_core.Verify.Session.t) ->
  ?instances:int ->
  ?cut_rounds:int ->
  Dvs_machine.Config.t ->
  Dvs_ir.Cfg.t ->
  memory:int array ->
  deadlines:float array ->
  Dvs_core.Pipeline.sweep_result
(** Store-backed {!Dvs_core.Pipeline.optimize_sweep}: the whole deadline
    grid is one ["sweep"] entry, so a warm Table-4 grid costs one store
    read. *)
