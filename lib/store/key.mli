(** Canonical content-addressed cache keys.

    A key names one stored artifact: a [kind] (the artifact class —
    ["sim"], ["solve"], ["sweep"]) plus a canonical string rendered from
    named components.  Components are sorted by name, floats are rendered
    by their IEEE-754 bit pattern (so two keys collide only when every
    input bit agrees), and the on-disk filename is the FNV-1a hash of the
    canonical string.  The full canonical string is stored inside each
    entry and compared on lookup, so even a filename-hash collision
    degrades to a miss, never to a wrong answer. *)

type component =
  | I of int
  | F of float  (** compared by bit pattern, not by printed decimal *)
  | S of string
  | L of component list

type t

val make : kind:string -> (string * component) list -> t
(** [make ~kind components] builds the canonical key.  Components are
    sorted by name, so call sites need not agree on an order.  Raises
    [Invalid_argument] when [kind] is empty or contains characters
    outside [a-z0-9_] (it becomes a filename prefix), or when a
    component name contains ['|'] or ['=']. *)

val kind : t -> string

val canonical : t -> string
(** The full rendered key, embedded verbatim in every store entry. *)

val filename : t -> string
(** ["<kind>-<fnv64 hex>.json"] — where the entry lives under the store
    root. *)

val hash_hex : string -> string
(** 64-bit FNV-1a of a string as 16 hex digits.  Also used by the store
    for per-entry payload checksums. *)
