(** Content-addressed, on-disk result store (DESIGN.md section 14).

    One flat directory of JSON entries, one artifact per file, named by
    {!Key.filename}.  Every entry is a [dvs-store/v1] envelope carrying
    the full canonical key, the store-format {!format_epoch} it was
    written under, and an FNV-1a checksum of its payload:

    {v
    {"schema":"dvs-store/v1","key":"...","kind":"sim","epoch":1,
     "checksum":"...","payload":{...}}
    v}

    Guarantees:
    - {b atomicity}: entries are written to a temp file in the store
      directory and [rename]d into place, so a reader never observes a
      partial entry — from any domain or any process;
    - {b corruption is a miss}: an entry that fails to parse, carries the
      wrong schema tag, records a different canonical key (filename-hash
      collision), or fails its checksum is deleted and reported as a
      miss; it can never surface as a wrong answer or a crash;
    - {b epoch invalidation}: bumping the format epoch strands every
      existing entry — lookups classify them as stale and remove them;
    - {b bounded size}: [put] evicts least-recently-used entries (mtime
      order; hits touch the file) beyond [max_entries]/[max_bytes].

    Lookups and insertions are safe under concurrent use by multiple
    domains of one process and by multiple processes sharing the
    directory (the daemon and [bench] sharing one store). *)

type t

val format_epoch : int
(** The store-format epoch compiled into this binary.  Bump it whenever
    entry payload semantics change (simulator cost model, solver
    semantics, codec layout): every entry written under an older epoch
    becomes stale everywhere at once. *)

val default_root : string
(** ["_store"] — the conventional per-checkout location (gitignored). *)

val env_var : string
(** ["DVS_STORE"] — [bench] reads it: unset means {!default_root}, a
    path selects that root, and ["off"]/["0"]/[""] disables the store. *)

val open_ :
  ?obs:Dvs_obs.t ->
  ?epoch:int ->
  ?max_entries:int ->
  ?max_bytes:int ->
  root:string ->
  unit ->
  t
(** Open (creating directories as needed) a store rooted at [root].
    [epoch] defaults to {!format_epoch} and exists for tests that
    exercise invalidation.  [max_entries] defaults to 4096 entries and
    [max_bytes] to 256 MiB; either can be raised by the caller.  [obs]
    receives volatile [store.*] counters ([store.<kind>_hits],
    [store.<kind>_misses], [store.stale], [store.corrupt], [store.puts],
    [store.evictions]).  Raises [Invalid_argument] on non-positive
    bounds or epoch. *)

val root : t -> string

val epoch : t -> int

val get : t -> Key.t -> decode:(Dvs_obs.Json.t -> ('a, string) result) -> 'a option
(** Look up an entry and decode its payload.  Any failure along the way
    — absent file, unparseable JSON, schema/key/checksum mismatch, stale
    epoch, decode error — is a miss ([None]); corrupt and stale entries
    are deleted on sight.  A hit touches the entry's mtime (the LRU
    clock shared with every other process using the store). *)

val get_json : t -> Key.t -> Dvs_obs.Json.t option
(** [get] with the identity decoder. *)

val put : t -> Key.t -> Dvs_obs.Json.t -> unit
(** Insert (or overwrite) an entry atomically, then enforce the size
    bounds.  Never raises on I/O failure — a store that cannot write
    degrades to a cache that never hits, not a crashed run. *)

type counts = {
  hits : int;
  misses : int;
  stale : int;  (** entries dropped for an old epoch *)
  corrupt : int;  (** entries dropped for checksum/shape damage *)
  puts : int;
  evictions : int;  (** LRU evictions performed by this process *)
}
(** Process-local activity counters (the on-disk truth is {!disk_stats}). *)

val counts : t -> counts

type disk_stats = {
  entries : int;
  bytes : int;
  by_kind : (string * int) list;  (** entry count per kind, name-sorted *)
}

val disk_stats : t -> disk_stats

type gc_report = {
  gc_scanned : int;
  gc_kept : int;
  gc_stale : int;  (** removed: written under another epoch *)
  gc_corrupt : int;  (** removed: damaged or foreign files *)
  gc_evicted : int;  (** removed: beyond the LRU bounds *)
}

val gc : t -> gc_report
(** Scan every entry: drop stale and corrupt ones, then enforce the LRU
    bounds.  Safe to run while other processes use the store. *)

type verify_report = {
  vr_checked : int;
  vr_ok : int;
  vr_stale : int;
  vr_corrupt : (string * string) list;  (** (filename, reason), sorted *)
}

val verify : t -> verify_report
(** Read-only integrity scan: parse and checksum every entry, touching
    nothing.  [vr_ok + vr_stale + List.length vr_corrupt = vr_checked]. *)
