type component =
  | I of int
  | F of float
  | S of string
  | L of component list

type t = { kind : string; canonical : string }

(* Same FNV-1a construction as Dvs_lp.Compiled.fingerprint, but over a
   byte string and kept at full 64 bits (the hash only names a file; the
   canonical string inside the entry is what authenticates it). *)
let fnv_offset = 0xcbf29ce484222325L

let fnv_prime = 0x100000001b3L

let hash_hex s =
  let h = ref fnv_offset in
  String.iter
    (fun c ->
      h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) fnv_prime)
    s;
  Printf.sprintf "%016Lx" !h

let kind_ok k =
  k <> ""
  && String.for_all
       (function 'a' .. 'z' | '0' .. '9' | '_' -> true | _ -> false)
       k

let name_ok n = not (String.exists (function '|' | '=' -> true | _ -> false) n)

let rec render b = function
  | I n ->
    Buffer.add_char b 'i';
    Buffer.add_string b (string_of_int n)
  | F f ->
    (* Bit pattern, not decimal: the key must distinguish every float the
       computation would distinguish. *)
    Buffer.add_char b 'f';
    Buffer.add_string b (Printf.sprintf "%Lx" (Int64.bits_of_float f))
  | S s ->
    Buffer.add_char b '\'';
    Buffer.add_string b (String.escaped s);
    Buffer.add_char b '\''
  | L cs ->
    Buffer.add_char b '[';
    List.iteri
      (fun i c ->
        if i > 0 then Buffer.add_char b ',';
        render b c)
      cs;
    Buffer.add_char b ']'

let make ~kind components =
  if not (kind_ok kind) then
    invalid_arg "Dvs_store.Key.make: kind must match [a-z0-9_]+";
  List.iter
    (fun (name, _) ->
      if not (name_ok name) then
        invalid_arg "Dvs_store.Key.make: component names may not contain | or =")
    components;
  let components =
    List.stable_sort (fun (a, _) (b, _) -> String.compare a b) components
  in
  let b = Buffer.create 256 in
  Buffer.add_string b kind;
  List.iter
    (fun (name, c) ->
      Buffer.add_char b '|';
      Buffer.add_string b name;
      Buffer.add_char b '=';
      render b c)
    components;
  { kind; canonical = Buffer.contents b }

let kind t = t.kind

let canonical t = t.canonical

let filename t = t.kind ^ "-" ^ hash_hex t.canonical ^ ".json"
