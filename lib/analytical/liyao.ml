(* Li-Yao-Yuan continuous-voltage kernel in resource-allocation form:
   per-region lower convex envelopes + a greedy over a polymatroid of
   prefix-deadline slacks.  See liyao.mli for the model and the
   exactness argument. *)

type region = {
  points : (float * float) array;
  deadline : float option;
}

type allocation = {
  time : float;
  energy : float;
  lo : int;
  hi : int;
  frac : float;
}

type schedule = {
  allocations : allocation array;
  energy : float;
}

(* Lower convex envelope of a region's points, restricted to its Pareto
   frontier (strictly increasing time, strictly decreasing energy): time
   beyond the cheapest point is never useful, and a dominated point is
   never on the envelope.  Returns hull vertices as original indices. *)
let hull_of points =
  let n = Array.length points in
  if n = 0 then invalid_arg "Liyao.solve: region with no points";
  Array.iter
    (fun (t, e) ->
      if not (Float.is_finite t && Float.is_finite e) then
        invalid_arg "Liyao.solve: non-finite point")
    points;
  let idx = Array.init n Fun.id in
  Array.sort
    (fun a b ->
      let (ta, ea) = points.(a) and (tb, eb) = points.(b) in
      match Float.compare ta tb with
      | 0 -> ( match Float.compare ea eb with 0 -> compare a b | c -> c)
      | c -> c)
    idx;
  (* Pareto sweep: keep a point only if it is strictly cheaper than
     everything faster than it. *)
  let pareto = ref [] in
  let best_e = ref infinity in
  Array.iter
    (fun i ->
      let _, e = points.(i) in
      if e < !best_e then begin
        pareto := i :: !pareto;
        best_e := e
      end)
    idx;
  let pts = Array.of_list (List.rev !pareto) in
  (* Monotone-chain lower hull over (time, energy). *)
  let cross o a b =
    let (ot, oe) = points.(o) and (at, ae) = points.(a) and (bt, be) = points.(b) in
    ((at -. ot) *. (be -. oe)) -. ((ae -. oe) *. (bt -. ot))
  in
  let hull = Array.make (Array.length pts) 0 in
  let top = ref 0 in
  Array.iter
    (fun i ->
      while
        !top >= 2 && cross hull.(!top - 2) hull.(!top - 1) i <= 0.0
      do
        decr top
      done;
      hull.(!top) <- i;
      incr top)
    pts;
  Array.sub hull 0 !top

type segment = {
  seg_region : int;
  seg_index : int;  (* position along the region's hull *)
  rate : float;  (* energy saved per unit of extra time; > 0 *)
  width : float;  (* segment time span; > 0 *)
}

let solve regions =
  let nr = Array.length regions in
  if nr = 0 then invalid_arg "Liyao.solve: no regions";
  let hulls = Array.map (fun r -> hull_of r.points) regions in
  (* Start everything at its fastest envelope vertex and check the prefix
     deadlines there: the minimum-time schedule is feasible iff anything
     is. *)
  let feasible = ref true in
  let running = ref 0.0 in
  let slack = Array.make nr infinity in
  Array.iteri
    (fun i r ->
      let t0, _ = r.points.(hulls.(i).(0)) in
      running := !running +. t0;
      match r.deadline with
      | Some d ->
        if !running > d then feasible := false;
        slack.(i) <- d -. !running
      | None -> ())
    regions;
  if not !feasible then None
  else begin
    (* Every hull segment, steepest energy descent first; ties resolve
       by (region, segment) so the schedule is deterministic.  Within a
       region convexity already orders segments by decreasing rate, so
       the sort consumes each hull left to right. *)
    let segments = ref [] in
    Array.iteri
      (fun i h ->
        for j = 0 to Array.length h - 2 do
          let tl, el = regions.(i).points.(h.(j)) in
          let th, eh = regions.(i).points.(h.(j + 1)) in
          segments :=
            { seg_region = i; seg_index = j; rate = (el -. eh) /. (th -. tl);
              width = th -. tl }
            :: !segments
        done)
      hulls;
    let segments =
      List.sort
        (fun a b ->
          match Float.compare b.rate a.rate with
          | 0 -> compare (a.seg_region, a.seg_index) (b.seg_region, b.seg_index)
          | c -> c)
        !segments
    in
    (* Greedy: grant each segment the most time its suffix slacks allow.
       Exact because the feasible set is a polymatroid (see .mli).  The
       per-segment O(nr) suffix scan is what makes the whole kernel
       O(n^2). *)
    let takes = Array.map (fun h -> Array.make (Array.length h) 0.0) hulls in
    List.iter
      (fun s ->
        let avail = ref infinity in
        for r = s.seg_region to nr - 1 do
          if slack.(r) < !avail then avail := slack.(r)
        done;
        let take = Float.min s.width (Float.max 0.0 !avail) in
        if take > 0.0 then begin
          takes.(s.seg_region).(s.seg_index) <- take;
          for r = s.seg_region to nr - 1 do
            if Float.is_finite slack.(r) then slack.(r) <- slack.(r) -. take
          done
        end)
      segments;
    (* Assemble per-region allocations by walking each hull past its
       consumed segments.  A region has full segments, then at most one
       partial (slack never increases, so once a take falls short every
       later segment of that region gets zero). *)
    let allocations =
      Array.mapi
        (fun i h ->
          let pts = regions.(i).points in
          let t = ref (fst pts.(h.(0))) in
          let e = ref (snd pts.(h.(0))) in
          let pos = ref (h.(0), h.(0), 0.0) in
          Array.iteri
            (fun j take ->
              if take > 0.0 then begin
                let tl, el = pts.(h.(j)) in
                let th, eh = pts.(h.(j + 1)) in
                let w = th -. tl in
                t := !t +. take;
                e := !e +. ((eh -. el) /. w *. take);
                pos :=
                  if take >= w then (h.(j + 1), h.(j + 1), 0.0)
                  else (h.(j), h.(j + 1), take /. w)
              end)
            takes.(i);
          let lo, hi, frac = !pos in
          { time = !t; energy = !e; lo; hi; frac })
        hulls
    in
    let energy =
      Array.fold_left
        (fun acc (a : allocation) -> acc +. a.energy)
        0.0 allocations
    in
    Some { allocations; energy }
  end

let bound regions = Option.map (fun s -> s.energy) (solve regions)
