(** Exact continuous-voltage schedules over a sequence of regions with
    per-region (prefix) deadlines — the Li-Yao-Yuan O(n^2) kernel
    ("An O(n^2) Algorithm for Computing Optimal Continuous Voltage
    Schedules"), generalized from an analytic power law to arbitrary
    per-region (time, energy) operating points.

    The classic algorithm peels critical intervals: find the time window
    whose required average speed is highest, run it at that speed, then
    recurse on the residue.  This module solves the same problem in its
    resource-allocation form, which is what makes the answer a {e valid
    lower bound} for the MILP the DVS pipeline actually solves:

    - region [i] may run at any point on the {e lower convex envelope} of
      its observed [(time, energy)] operating points (one per discrete
      mode — the continuous relaxation of the mode choice; any discrete
      mode, and any timesharing of modes, sits on or above the envelope);
    - a region list carries prefix deadlines: the total time of regions
      [0..r] must not exceed [deadline r] (a single global deadline is
      the special case where only the last region carries one);
    - minimize total energy.

    The feasible time vectors form a polymatroid (the prefix-slack set
    function [S -> min-slack over suffixes meeting S] is submodular), so
    a greedy allocation — grant time to hull segments in order of
    steepest energy descent per unit time, each up to its remaining
    suffix slack — is exact (Federgruen-Groenevelt).  Each of the O(n)
    hull segments costs an O(n) slack scan: O(n^2) total, matching the
    paper's bound and effectively free next to one simplex solve.

    Because every discrete schedule (including mode transitions, whose
    time and energy costs are nonnegative) is pointwise above the
    envelope and consumes at least its block times, [solve]'s energy is a
    provable lower bound on the discrete optimum for the same regions and
    deadlines.  Units are the caller's own; they only need to be
    consistent across points and deadlines. *)

type region = {
  points : (float * float) array;
      (** observed [(time, energy)] operating points, one per mode (order
          and duplicates are irrelevant; the kernel takes the lower
          convex envelope) *)
  deadline : float option;
      (** prefix deadline: total time of regions [0..this one] must not
          exceed it; [None] = unconstrained prefix *)
}

type allocation = {
  time : float;  (** continuous time granted to the region *)
  energy : float;  (** envelope energy at that time *)
  lo : int;
      (** original index (into [points]) of the faster endpoint of the
          active envelope segment — the snap target for feasible
          rounding (less time than [time], never more) *)
  hi : int;
      (** original index of the slower endpoint; [lo = hi] when the
          allocation sits exactly on a vertex *)
  frac : float;
      (** position inside the segment: [time = t_lo +. frac *. (t_hi -.
          t_lo)]; [0.] on a vertex *)
}

type schedule = {
  allocations : allocation array;  (** one per region, same order *)
  energy : float;  (** total: the exact continuous optimum *)
}

val solve : region array -> schedule option
(** Exact minimum-energy continuous schedule, or [None] when even the
    fastest point of every region overruns some prefix deadline (then
    the discrete instance is infeasible too).  Raises [Invalid_argument]
    on an empty region array, a region with no points, or non-finite
    point coordinates. *)

val bound : region array -> float option
(** [Option.map (fun s -> s.energy) (solve rs)] — the lower bound
    alone. *)
