(** Out-of-order (dataflow-limited) core model.

    The paper profiled on a 4-wide out-of-order SimpleScalar (its
    Table 2: RUU 64, issue width 4); the in-order model in {!Cpu} is the
    conservative end.  This model is the other end: instructions issue
    as soon as their operands and a fetch slot are ready, bounded by

    - issue bandwidth ([issue_width] per cycle),
    - a reorder window (at most [window] newer instructions in flight),

    with perfect branch prediction and no functional-unit contention —
    an upper bound on the ILP/MLP the real machine could exploit.  DRAM
    remains asynchronous wall-clock; cache hits are synchronous cycles;
    energy charges each instruction's cycles at [V^2]; mode-sets drain
    the pipeline and pay the regulator costs.

    Functional behavior matches {!Dvs_ir.Interp} exactly (tested); the
    interesting outputs are the timing and the overlap/dependent split,
    which the profiling-platform ablation compares against {!Cpu}.

    Approximations: the overlap/dependent attribution and the miss-busy
    union process issue times in program order, which is exact for
    monotonic issue sequences and a close approximation otherwise;
    [stall_time] reports the total fetch throttling due to the window
    being full. *)

val run :
  ?rc:Cpu.Run_config.t ->
  ?window:int ->
  ?issue_width:int ->
  Config.t -> Dvs_ir.Cfg.t -> memory:int array -> Cpu.run_stats
(** Model geometry defaults follow the paper's Table 2: [window = 64]
    (RUU size), [issue_width = 4].  Of [rc] only [fuel], [initial_mode]
    and [edge_modes] apply; a [governor] or [recorder] raises
    [Invalid_argument] (runtime policies and tape replay are in-order
    model features), and [observer]/[obs] are accepted but unused. *)
