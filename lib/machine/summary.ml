(* Block-cost summarization over a recorded execution tape.  The replay
   arithmetic here mirrors Cpu.run op for op — same block-local
   accumulation, same commit points — which is what keeps replayed stats
   bit-identical to the cycle-accurate simulator (see summary.mli). *)

open Dvs_ir

type block_summary = {
  bs_dtime : float;
  bs_denergy : float;
  bs_dependent : int;
  bs_cache_hit : int;
}

(* Full replay-engine state "before position p".  [dtime]/[denergy] are
   always 0.0 at block boundaries, so checkpoints never need them. *)
type state = {
  mutable time : float;
  mutable energy : float;
  mutable dtime : float;
  mutable denergy : float;
  mutable mode : int;
  mutable voltage : float;
  mutable freq : float;
  mutable dyn : int;
  mutable transitions : int;
  mutable t_time : float;
  mutable t_energy : float;
  mutable overlap : int;
  mutable dependent : int;
  mutable cache_hit : int;
  mutable busy_end : float;
  mutable miss_busy : float;
  mutable stall : float;
  pending : float array;
  (* replay-tier accounting (volatile counters) *)
  mutable blocks : int;
  mutable hits : int;
  mutable misses : int;
}

let copy_state st = { st with pending = Array.copy st.pending }

type baseline = {
  b_entry : int;
  b_edge : int option array;
  b_cks : (int * state) array;  (* ascending position; states immutable *)
  b_stats : Cpu.run_stats;
}

type t = {
  config : Config.t;
  static_blocks : int;
  tape : Tape.t;
  n_modes : int;
  summaries : block_summary option Atomic.t array array;  (* [variant][mode] *)
  next_token : int Atomic.t;
  lock : Mutex.t;
  mutable baselines : (int * baseline) list;  (* MRU first *)
}

let max_baselines = 8

let create ?fuel ?(obs = Dvs_obs.disabled) (config : Config.t) cfg ~memory =
  let recorder = Tape.recorder cfg in
  let rc = Cpu.Run_config.make ?fuel ~obs ~recorder () in
  let stats = Cpu.run ~rc config cfg ~memory in
  let tape =
    Tape.create recorder ~dyn_instrs:stats.Cpu.dyn_instrs ~l1:stats.Cpu.l1
      ~l2:stats.Cpu.l2 ~registers:stats.Cpu.registers
      ~memory:stats.Cpu.memory
  in
  let n_modes = Dvs_power.Mode.size config.mode_table in
  { config; static_blocks = Array.length (Cfg.blocks cfg); tape; n_modes;
    summaries =
      Array.init
        (Array.length tape.Tape.variants)
        (fun _ -> Array.init n_modes (fun _ -> Atomic.make None));
    next_token = Atomic.make 1; lock = Mutex.create (); baselines = [] }

let n_edges t = t.tape.Tape.n_edges

let positions t = Tape.positions t.tape

type result = { stats : Cpu.run_stats; token : int }

let init_state t ~entry_mode =
  if entry_mode < 0 || entry_mode >= t.n_modes then
    invalid_arg "Summary.replay: entry mode out of range";
  let m = Dvs_power.Mode.get t.config.Config.mode_table entry_mode in
  { time = 0.0; energy = 0.0; dtime = 0.0; denergy = 0.0; mode = entry_mode;
    voltage = m.voltage; freq = m.frequency; dyn = 0; transitions = 0;
    t_time = 0.0; t_energy = 0.0; overlap = 0; dependent = 0; cache_hit = 0;
    busy_end = neg_infinity; miss_busy = 0.0; stall = 0.0;
    pending = Array.make t.tape.Tape.n_regs neg_infinity; blocks = 0;
    hits = 0; misses = 0 }

let check_edge_mode t edge_mode =
  if Array.length edge_mode <> t.tape.Tape.n_edges then
    invalid_arg "Summary.replay: edge_mode length does not match CFG edges"

let stride t = Int.max 64 (Tape.positions t.tape / 256)

(* Replay tape positions [from_pos, len), mutating [st], collecting
   checkpoints (newest first) at every stride position, and draining
   outstanding memory traffic at the end of the tape. *)
let exec_range t obs st ~edge_mode ~from_pos =
  let cfg = t.config in
  let table = cfg.Config.mode_table in
  let tape = t.tape in
  let tr = Dvs_obs.trace obs in
  let obs_on = Dvs_obs.enabled obs in
  let module Tr = Dvs_obs.Trace in
  let commit () =
    if st.dtime <> 0.0 then begin
      st.time <- st.time +. st.dtime;
      st.dtime <- 0.0
    end;
    if st.denergy <> 0.0 then begin
      st.energy <- st.energy +. st.denergy;
      st.denergy <- 0.0
    end
  in
  let charge c =
    st.dtime <- st.dtime +. (float_of_int c /. st.freq);
    st.denergy <-
      st.denergy
      +. (float_of_int c *. cfg.Config.active_energy_coeff *. st.voltage
         *. st.voltage)
  in
  let issue_miss () =
    let anow = st.time +. st.dtime in
    let completion = anow +. cfg.Config.dram_latency in
    if anow >= st.busy_end then begin
      st.miss_busy <- st.miss_busy +. cfg.Config.dram_latency;
      if obs_on then
        Tr.event tr ~stability:Tr.Stable "sim.miss_window"
          ~attrs:[ ("t", Tr.Float anow) ]
    end
    else if completion > st.busy_end then
      st.miss_busy <- st.miss_busy +. (completion -. st.busy_end);
    if completion > st.busy_end then st.busy_end <- completion;
    completion
  in
  let set_mode m =
    if m < 0 || m >= t.n_modes then
      invalid_arg "Summary.replay: mode out of range";
    if m <> st.mode then begin
      commit ();
      let cur = Dvs_power.Mode.get table st.mode in
      let nxt = Dvs_power.Mode.get table m in
      let dt =
        Dvs_power.Switch_cost.time cfg.Config.regulator cur.voltage
          nxt.voltage
      in
      let de =
        Dvs_power.Switch_cost.energy cfg.Config.regulator cur.voltage
          nxt.voltage
      in
      st.time <- st.time +. dt;
      st.energy <- st.energy +. de;
      st.t_time <- st.t_time +. dt;
      st.t_energy <- st.t_energy +. de;
      st.transitions <- st.transitions + 1;
      if obs_on then
        Tr.event tr ~stability:Tr.Stable "sim.mode_transition"
          ~attrs:
            [ ("from", Tr.Int st.mode); ("to", Tr.Int m);
              ("t", Tr.Float st.time) ];
      st.mode <- m;
      st.voltage <- nxt.voltage;
      st.freq <- nxt.frequency
    end
  in
  let replay_ops (v : Tape.variant) =
    let ops = v.Tape.ops in
    for i = 0 to Array.length ops - 1 do
      let op = ops.(i) in
      let tag = Tape.op_tag op in
      let pl = Tape.op_payload op in
      if tag = Tape.tag_compute then begin
        if st.busy_end > st.time +. st.dtime then
          st.overlap <- st.overlap + pl
        else st.dependent <- st.dependent + pl;
        charge pl
      end
      else if tag = Tape.tag_hit then begin
        st.cache_hit <- st.cache_hit + pl;
        charge pl
      end
      else if tag = Tape.tag_wait then begin
        if st.pending.(pl) > st.time +. st.dtime then begin
          commit ();
          st.stall <- st.stall +. (st.pending.(pl) -. st.time);
          st.time <- st.pending.(pl)
        end
      end
      else if tag = Tape.tag_clear then st.pending.(pl) <- neg_infinity
      else if tag = Tape.tag_miss_load then st.pending.(pl) <- issue_miss ()
      else if tag = Tape.tag_miss_store then ignore (issue_miss ())
      else set_mode pl
    done
  in
  let replay_block vid =
    st.blocks <- st.blocks + 1;
    let v = t.tape.Tape.variants.(vid) in
    st.dyn <- st.dyn + v.Tape.dyn;
    (* Fast path: no miss/modeset op in the variant and no miss in
       flight at entry means no stall, no busy_end change, all compute
       cycles dependent — the whole block is one (variant, mode) delta.
       Replaying it once proves the delta; after that it is one add. *)
    if v.Tape.summarizable && st.busy_end <= st.time then begin
      let slot = t.summaries.(vid).(st.mode) in
      match Atomic.get slot with
      | Some bs ->
        st.hits <- st.hits + 1;
        st.dependent <- st.dependent + bs.bs_dependent;
        st.cache_hit <- st.cache_hit + bs.bs_cache_hit;
        if bs.bs_dtime <> 0.0 then st.time <- st.time +. bs.bs_dtime;
        if bs.bs_denergy <> 0.0 then st.energy <- st.energy +. bs.bs_denergy
      | None ->
        st.misses <- st.misses + 1;
        let dep0 = st.dependent and hit0 = st.cache_hit in
        replay_ops v;
        (* No stall or mode-set was possible, so dtime/denergy hold the
           whole block's delta, uncommitted. *)
        Atomic.set slot
          (Some
             { bs_dtime = st.dtime; bs_denergy = st.denergy;
               bs_dependent = st.dependent - dep0;
               bs_cache_hit = st.cache_hit - hit0 });
        commit ()
    end
    else begin
      st.misses <- st.misses + 1;
      replay_ops v;
      commit ()
    end
  in
  let len = Tape.positions tape in
  let k = stride t in
  let cks = ref [] in
  for p = from_pos to len - 1 do
    if p mod k = 0 then cks := (p, copy_state st) :: !cks;
    let e = tape.Tape.edge_of.(p) in
    if e >= 0 then (
      match edge_mode.(e) with Some m -> set_mode m | None -> ());
    replay_block tape.Tape.seq.(p)
  done;
  (* Drain outstanding memory traffic (mirrors Cpu.run at Halt). *)
  if st.busy_end > st.time then begin
    st.stall <- st.stall +. (st.busy_end -. st.time);
    st.time <- st.busy_end
  end;
  !cks

let stats_of t st =
  { Cpu.time = st.time; energy = st.energy; dyn_instrs = st.dyn;
    mode_transitions = st.transitions; transition_time = st.t_time;
    transition_energy = st.t_energy; l1 = t.tape.Tape.l1;
    l2 = t.tape.Tape.l2; overlap_cycles = st.overlap;
    dependent_cycles = st.dependent; cache_hit_cycles = st.cache_hit;
    miss_busy_time = st.miss_busy; stall_time = st.stall;
    registers = Array.copy t.tape.Tape.registers;
    memory = Array.copy t.tape.Tape.memory }

let publish_stats (s : Cpu.run_stats) =
  { s with
    Cpu.registers = Array.copy s.Cpu.registers;
    memory = Array.copy s.Cpu.memory }

(* Emit the same stable instruments as a cycle-accurate Cpu.run of this
   schedule would (totals are as-if-full-run even after a splice,
   because checkpoints carry the counter state), plus the volatile
   replay-tier counters. *)
let emit_obs obs run_span ~(stats : Cpu.run_stats) ~blocks ~hits ~misses
    ~spliced =
  if Dvs_obs.enabled obs then begin
    let tr = Dvs_obs.trace obs in
    let module Tr = Dvs_obs.Trace in
    let mxr = Dvs_obs.metrics obs in
    let module Mc = Dvs_obs.Metrics.Counter in
    let c stability name =
      Dvs_obs.Metrics.counter mxr ~stability name
    in
    let stable = Dvs_obs.Metrics.Stable
    and volatile = Dvs_obs.Metrics.Volatile in
    Mc.add (c stable "sim.cycles.overlap") ~slot:0 stats.Cpu.overlap_cycles;
    Mc.add (c stable "sim.cycles.dependent") ~slot:0
      stats.Cpu.dependent_cycles;
    Mc.add (c stable "sim.cycles.cache_hit") ~slot:0
      stats.Cpu.cache_hit_cycles;
    Mc.add (c stable "sim.mode_transitions") ~slot:0
      stats.Cpu.mode_transitions;
    Mc.add (c stable "sim.dyn_instrs") ~slot:0 stats.Cpu.dyn_instrs;
    Mc.add (c volatile "sim.blocks_replayed") ~slot:0 blocks;
    Mc.add (c volatile "sim.summary_hits") ~slot:0 hits;
    Mc.add (c volatile "sim.summary_misses") ~slot:0 misses;
    Mc.add (c volatile "sim.spliced_segments") ~slot:0 spliced;
    let g name v =
      Dvs_obs.Metrics.Gauge.set
        (Dvs_obs.Metrics.gauge mxr ~stability:stable name)
        v
    in
    g "sim.time_seconds" stats.Cpu.time;
    g "sim.energy_joules" stats.Cpu.energy;
    g "sim.stall_seconds" stats.Cpu.stall_time;
    g "sim.miss_busy_seconds" stats.Cpu.miss_busy_time;
    Tr.finish tr run_span
      ~attrs:
        [ ("time", Tr.Float stats.Cpu.time);
          ("energy", Tr.Float stats.Cpu.energy);
          ("dyn_instrs", Tr.Int stats.Cpu.dyn_instrs);
          ("mode_transitions", Tr.Int stats.Cpu.mode_transitions) ]
  end

let start_span obs t =
  let module Tr = Dvs_obs.Trace in
  if Dvs_obs.enabled obs then
    Tr.start (Dvs_obs.trace obs) ~stability:Tr.Stable "sim.run"
      ~attrs:[ ("blocks", Tr.Int t.static_blocks) ]
  else Tr.start Tr.disabled "sim.run"

let store_baseline t token b =
  Mutex.lock t.lock;
  let keep = List.filteri (fun i _ -> i < max_baselines - 1) t.baselines in
  t.baselines <- (token, b) :: keep;
  Mutex.unlock t.lock

let find_baseline t token =
  Mutex.lock t.lock;
  let r = List.assoc_opt token t.baselines in
  (match r with
  | Some b ->
    t.baselines <- (token, b) :: List.remove_assoc token t.baselines
  | None -> ());
  Mutex.unlock t.lock;
  r

let fresh_token t = Atomic.fetch_and_add t.next_token 1

let replay ?(obs = Dvs_obs.disabled) t ~entry_mode ~edge_mode =
  check_edge_mode t edge_mode;
  let run_span = start_span obs t in
  let st = init_state t ~entry_mode in
  let cks = exec_range t obs st ~edge_mode ~from_pos:0 in
  let stats = stats_of t st in
  let token = fresh_token t in
  store_baseline t token
    { b_entry = entry_mode; b_edge = Array.copy edge_mode;
      b_cks = Array.of_list (List.rev cks); b_stats = stats };
  emit_obs obs run_span ~stats ~blocks:st.blocks ~hits:st.hits
    ~misses:st.misses ~spliced:0;
  { stats = publish_stats stats; token }

let replay_incremental ?(obs = Dvs_obs.disabled) t ~against ~entry_mode
    ~edge_mode =
  check_edge_mode t edge_mode;
  match find_baseline t against with
  | None -> replay ~obs t ~entry_mode ~edge_mode
  | Some b ->
    let entry_changed = entry_mode <> b.b_entry in
    let edges = ref [] in
    Array.iteri
      (fun i m -> if m <> b.b_edge.(i) then edges := i :: !edges)
      edge_mode;
    (match Tape.first_divergence t.tape ~entry_changed ~edges:!edges with
    | None ->
      (* No traversed edge differs: this schedule costs exactly what the
         baseline did.  Re-register it under a fresh token so further
         increments can chain. *)
      let run_span = start_span obs t in
      let stats = b.b_stats in
      let token = fresh_token t in
      store_baseline t token
        { b with b_entry = entry_mode; b_edge = Array.copy edge_mode };
      emit_obs obs run_span ~stats ~blocks:0 ~hits:0 ~misses:0 ~spliced:1;
      { stats = publish_stats stats; token }
    | Some p_div ->
      (* Latest checkpoint at or before the first position that could
         diverge; everything before it is shared verbatim. *)
      let ck_idx = ref (-1) in
      Array.iteri
        (fun i (pos, _) -> if pos <= p_div then ck_idx := i)
        b.b_cks;
      let run_span = start_span obs t in
      let from_pos, st =
        if !ck_idx < 0 then (0, init_state t ~entry_mode)
        else begin
          let pos, ck = b.b_cks.(!ck_idx) in
          (pos, copy_state ck)
        end
      in
      (* An entry-mode change always diverges at position 0, where the
         restored state is the initial state — reinitialize to pick the
         new entry mode up. *)
      let st = if from_pos = 0 then init_state t ~entry_mode else st in
      let spliced = if from_pos > 0 then 1 else 0 in
      let suffix = exec_range t obs st ~edge_mode ~from_pos in
      let stats = stats_of t st in
      let prefix =
        List.filter (fun (pos, _) -> pos < from_pos)
          (Array.to_list b.b_cks)
      in
      let token = fresh_token t in
      store_baseline t token
        { b_entry = entry_mode; b_edge = Array.copy edge_mode;
          b_cks = Array.of_list (prefix @ List.rev suffix);
          b_stats = stats };
      emit_obs obs run_span ~stats ~blocks:st.blocks ~hits:st.hits
        ~misses:st.misses ~spliced;
      { stats = publish_stats stats; token })
