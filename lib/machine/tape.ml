(* Execution tape: schedule-independent record of one simulated run.
   See tape.mli for the model; Summary replays these ops. *)

open Dvs_ir

(* ---- op encoding ------------------------------------------------------ *)

let tag_compute = 0

let tag_hit = 1

let tag_wait = 2

let tag_clear = 3

let tag_miss_load = 4

let tag_miss_store = 5

let tag_modeset = 6

let enc tag payload = (payload lsl 3) lor tag

let op_compute c = enc tag_compute c

let op_hit c = enc tag_hit c

let op_wait r = enc tag_wait r

let op_clear r = enc tag_clear r

let op_miss_load rd = enc tag_miss_load rd

let op_miss_store = enc tag_miss_store 0

let op_modeset m = enc tag_modeset m

let op_tag op = op land 7

let op_payload op = op lsr 3

(* ---- variants --------------------------------------------------------- *)

type variant = {
  label : Cfg.label;
  ops : int array;
  dyn : int;
  summarizable : bool;
}

(* Growable int buffer (no Buffer for ints in the stdlib). *)
module Ibuf = struct
  type t = { mutable data : int array; mutable len : int }

  let create n = { data = Array.make (Int.max n 16) 0; len = 0 }

  let clear b = b.len <- 0

  let push b v =
    if b.len = Array.length b.data then begin
      let data = Array.make (2 * b.len) 0 in
      Array.blit b.data 0 data 0 b.len;
      b.data <- data
    end;
    b.data.(b.len) <- v;
    b.len <- b.len + 1

  let contents b = Array.sub b.data 0 b.len
end

type recorder = {
  cfg : Cfg.t;
  (* variant hash-consing: (label, ops) -> variant index *)
  intern : (Cfg.label * int array, int) Hashtbl.t;
  mutable vars : variant list;  (* newest first *)
  mutable n_vars : int;
  seq : Ibuf.t;
  edge_of : Ibuf.t;
  cur : Ibuf.t;  (* ops of the block being recorded *)
  mutable cur_label : Cfg.label;
  mutable cur_dyn : int;
  mutable in_block : bool;
}

let recorder cfg =
  { cfg; intern = Hashtbl.create 256; vars = []; n_vars = 0;
    seq = Ibuf.create 4096; edge_of = Ibuf.create 4096;
    cur = Ibuf.create 64; cur_label = 0; cur_dyn = 0; in_block = false }

let flush_block r =
  if r.in_block then begin
    let ops = Ibuf.contents r.cur in
    let key = (r.cur_label, ops) in
    let id =
      match Hashtbl.find_opt r.intern key with
      | Some id -> id
      | None ->
        let summarizable =
          Array.for_all
            (fun op ->
              let t = op_tag op in
              t <> tag_miss_load && t <> tag_miss_store && t <> tag_modeset)
            ops
        in
        let v = { label = r.cur_label; ops; dyn = r.cur_dyn; summarizable } in
        let id = r.n_vars in
        r.vars <- v :: r.vars;
        r.n_vars <- id + 1;
        Hashtbl.add r.intern key id;
        id
    in
    Ibuf.push r.seq id;
    Ibuf.clear r.cur;
    r.cur_dyn <- 0;
    r.in_block <- false
  end

let enter_block r ~label ~via =
  flush_block r;
  let e =
    match via with
    | None -> -1
    | Some src -> (
      match Cfg.edge_index r.cfg { Cfg.src; dst = label } with
      | idx -> idx
      | exception Not_found -> -1)
  in
  Ibuf.push r.edge_of e;
  r.cur_label <- label;
  r.in_block <- true

let record r op = Ibuf.push r.cur op

let instr r = r.cur_dyn <- r.cur_dyn + 1

type t = {
  variants : variant array;
  seq : int array;
  edge_of : int array;
  first_edge_pos : int array;
  n_edges : int;
  n_regs : int;
  dyn_instrs : int;
  l1 : Cache.stats;
  l2 : Cache.stats;
  registers : int array;
  memory : int array;
}

let create r ~dyn_instrs ~l1 ~l2 ~registers ~memory =
  flush_block r;
  let seq = Ibuf.contents r.seq in
  if Array.length seq = 0 then
    invalid_arg "Tape.create: empty recording";
  let variants = Array.of_list (List.rev r.vars) in
  let edge_of = Ibuf.contents r.edge_of in
  let n_edges = Array.length (Cfg.edges r.cfg) in
  let first_edge_pos = Array.make n_edges max_int in
  Array.iteri
    (fun pos e ->
      if e >= 0 && first_edge_pos.(e) = max_int then
        first_edge_pos.(e) <- pos)
    edge_of;
  { variants; seq; edge_of; first_edge_pos; n_edges;
    n_regs = Array.length registers; dyn_instrs; l1; l2;
    registers = Array.copy registers; memory = Array.copy memory }

let positions t = Array.length t.seq

let first_divergence t ~entry_changed ~edges =
  if entry_changed then Some 0
  else
    let p =
      List.fold_left
        (fun acc e ->
          if e >= 0 && e < t.n_edges then Int.min acc t.first_edge_pos.(e)
          else acc)
        max_int edges
    in
    if p = max_int then None else Some p
