(** Cycle-level in-order core with non-blocking cache misses, clock
    gating, DVS modes, and [V^2]-proportional per-cycle energy — the
    stand-in for the paper's Wattch/SimpleScalar profiling platform.

    Timing model:
    - every instruction charges its compute latency in cycles at the
      current clock; cache hits add the hierarchy's synchronous latency;
    - a load miss charges one issue cycle, then the destination register
      becomes pending until [time + dram_latency] (wall clock); execution
      continues until an instruction {e reads} a pending register, at
      which point the clock gates (time passes, no energy) — this is what
      makes the paper's overlap/dependent split emerge;
    - store misses are fire-and-forget (drained at [Halt]);
    - mode-set events (edge annotations or [Modeset] instructions) charge
      the regulator's transition time and energy, or nothing when the mode
      is unchanged ("silent" mode-sets, Section 4.2).

    Time and energy accumulate {e block-locally} and commit at block
    boundaries and absolute events (stalls, mode transitions, halt).
    The grouping is observable through float non-associativity and is
    deliberately shared with {!Summary}'s tape replayer, which is held
    bit-identical to this simulator by the test suite.

    Architectural state must match {!Dvs_ir.Interp} exactly; tests enforce
    this. *)

type run_stats = {
  time : float;  (** seconds *)
  energy : float;  (** joules *)
  dyn_instrs : int;
  mode_transitions : int;  (** non-silent mode-sets executed *)
  transition_time : float;
  transition_energy : float;
  l1 : Cache.stats;
  l2 : Cache.stats;
  overlap_cycles : int;
      (** compute cycles issued while >= 1 miss was in flight *)
  dependent_cycles : int;  (** compute cycles with no miss in flight *)
  cache_hit_cycles : int;  (** cycles of cache-hit memory operations *)
  miss_busy_time : float;
      (** union of miss-in-flight wall-clock intervals (the measured
          analog of the paper's t_invariant) *)
  stall_time : float;  (** clock-gated waiting *)
  registers : int array;
  memory : int array;
}

exception Out_of_fuel

type governor = {
  gov_interval : float;  (** seconds between decisions *)
  gov_decide : busy_fraction:float -> current_mode:int -> int;
      (** next mode, given the fraction of the last interval the core was
          busy (not clock-gated) *)
}
(** Interval-based {e runtime} DVS policy (Weiser-style / the paper's
    OS-level related work): reconsider the mode every [gov_interval]
    seconds from observed utilization.  Decisions take effect at basic
    block boundaries and pay normal transition costs.  Deadline-unaware
    by construction — which is precisely what the compile-time approach
    is being compared against. *)

type observer =
  Dvs_ir.Cfg.label -> via:Dvs_ir.Cfg.label option -> time:float ->
  energy:float -> unit
(** Fires at each block entry (after any edge mode-set cost), with the
    incoming block in [via]. *)

(** How to run: fuel, schedule hooks, policies and instrumentation,
    gathered into one value (mirrors [Solver.Config]).  Build with
    {!Run_config.make} or refine {!Run_config.default} with the
    value-first [with_*] combinators. *)
module Run_config : sig
  type t = private {
    fuel : int;  (** bound on executed blocks *)
    initial_mode : int option;  (** default: the fastest mode *)
    edge_modes : (Dvs_ir.Cfg.edge -> int option) option;
        (** compile-time DVS decisions attached to edges *)
    governor : governor option;
        (** runtime policy instead — don't combine with [edge_modes] *)
    observer : observer option;
    obs : Dvs_obs.t;  (** default {!Dvs_obs.disabled} *)
    recorder : Tape.recorder option;
        (** record an execution tape for {!Summary}; incompatible with
            [governor] *)
  }

  val make :
    ?fuel:int ->
    ?initial_mode:int ->
    ?edge_modes:(Dvs_ir.Cfg.edge -> int option) ->
    ?governor:governor ->
    ?observer:observer ->
    ?obs:Dvs_obs.t ->
    ?recorder:Tape.recorder ->
    unit -> t
  (** [fuel] defaults to 50 million blocks.  Raises [Invalid_argument]
      when [fuel <= 0]. *)

  val default : t

  val with_fuel : int -> t -> t

  val with_initial_mode : int -> t -> t

  val with_edge_modes : (Dvs_ir.Cfg.edge -> int option) -> t -> t

  val with_governor : governor -> t -> t

  val with_observer : observer -> t -> t

  val with_obs : Dvs_obs.t -> t -> t

  val with_recorder : Tape.recorder -> t -> t
end

val run : ?rc:Run_config.t -> Config.t -> Dvs_ir.Cfg.t -> memory:int array
  -> run_stats
(** Simulate [g] to [Halt] under [rc] (default {!Run_config.default}).

    [rc.obs] records a [sim.run] span, [sim.mode_transition] and
    [sim.miss_window] trace events, the overlap / dependent / cache-hit
    cycle counters and time / energy / stall gauges.  The simulator is
    single-threaded and reads no wall clock, so everything it emits is
    marked stable.

    Raises {!Out_of_fuel} when the block budget runs out, and
    [Invalid_argument] when a recorder is combined with a governor (a
    tape must stay schedule-independent). *)
