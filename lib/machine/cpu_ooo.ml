open Dvs_ir

let max_reg_of_cfg g =
  Array.fold_left
    (fun acc b ->
      let acc =
        Array.fold_left (fun a i -> Int.max a (Instr.max_reg i)) acc b.Cfg.body
      in
      match b.Cfg.term with
      | Cfg.Branch (r, _, _) -> Int.max acc r
      | Cfg.Jump _ | Cfg.Halt -> acc)
    (-1) (Cfg.blocks g)

(* Circular buffer of the completion times of the last [window]
   instructions: instruction i cannot fetch before instruction (i -
   window) has completed. *)
type window = { slots : float array; mutable head : int }

let window_gate w = w.slots.(w.head)

let window_push w completion =
  w.slots.(w.head) <- completion;
  w.head <- (w.head + 1) mod Array.length w.slots

let run ?(rc = Cpu.Run_config.default) ?(window = 64) ?(issue_width = 4)
    (cfg : Config.t) g ~memory =
  let { Cpu.Run_config.fuel; initial_mode; edge_modes; governor; recorder;
        _ } =
    rc
  in
  if governor <> None then
    invalid_arg "Cpu_ooo.run: governors are not modeled";
  if recorder <> None then
    invalid_arg "Cpu_ooo.run: tape recording is not supported";
  if window < 1 then invalid_arg "Cpu_ooo.run: window must be >= 1";
  if issue_width < 1 then invalid_arg "Cpu_ooo.run: issue width must be >= 1";
  let table = cfg.Config.mode_table in
  let n_modes = Dvs_power.Mode.size table in
  let initial_mode =
    match initial_mode with Some m -> m | None -> n_modes - 1
  in
  if initial_mode < 0 || initial_mode >= n_modes then
    invalid_arg "Cpu_ooo.run: initial mode out of range";
  let hier = Hierarchy.create cfg in
  let regs = Array.make (max_reg_of_cfg g + 1) 0 in
  let mem = Array.copy memory in
  (* Timing state: absolute seconds. *)
  let ready = Array.make (Array.length regs) 0.0 in
  let win = { slots = Array.make window 0.0; head = 0 } in
  let fetch_avail = ref 0.0 in
  let end_time = ref 0.0 in
  let energy = ref 0.0 in
  let mode = ref initial_mode in
  let voltage = ref (Dvs_power.Mode.get table initial_mode).voltage in
  let freq = ref (Dvs_power.Mode.get table initial_mode).frequency in
  let dyn = ref 0 in
  let transitions = ref 0 in
  let t_time = ref 0.0 and t_energy = ref 0.0 in
  let overlap_cycles = ref 0 and dependent_cycles = ref 0 in
  let cache_hit_cycles = ref 0 in
  let busy_end = ref neg_infinity and miss_busy = ref 0.0 in
  let window_stall = ref 0.0 in
  let charge_energy cycles =
    energy :=
      !energy
      +. (float_of_int cycles *. cfg.Config.active_energy_coeff *. !voltage
         *. !voltage)
  in
  let issue_miss issue_time =
    let completion = issue_time +. cfg.Config.dram_latency in
    if issue_time >= !busy_end then
      miss_busy := !miss_busy +. cfg.Config.dram_latency
    else if completion > !busy_end then
      miss_busy := !miss_busy +. (completion -. !busy_end);
    if completion > !busy_end then busy_end := completion;
    completion
  in
  (* Fetch slot allocation: [issue_width] instructions per cycle, gated
     by the reorder window. *)
  let fetch_slot () =
    let gate = window_gate win in
    if gate > !fetch_avail then begin
      window_stall := !window_stall +. (gate -. !fetch_avail);
      fetch_avail := gate
    end;
    let slot = !fetch_avail in
    fetch_avail := slot +. (1.0 /. (float_of_int issue_width *. !freq));
    slot
  in
  let classify issue_time cycles =
    if issue_time < !busy_end then overlap_cycles := !overlap_cycles + cycles
    else dependent_cycles := !dependent_cycles + cycles
  in
  let finish completion =
    window_push win completion;
    if completion > !end_time then end_time := completion
  in
  let set_mode m =
    if m < 0 || m >= n_modes then invalid_arg "Cpu_ooo.run: mode out of range";
    if m <> !mode then begin
      (* Drain the pipeline, then switch. *)
      let drain = Float.max !end_time !fetch_avail in
      let cur = Dvs_power.Mode.get table !mode in
      let nxt = Dvs_power.Mode.get table m in
      let dt =
        Dvs_power.Switch_cost.time cfg.Config.regulator cur.voltage
          nxt.voltage
      in
      let de =
        Dvs_power.Switch_cost.energy cfg.Config.regulator cur.voltage
          nxt.voltage
      in
      energy := !energy +. de;
      t_time := !t_time +. dt;
      t_energy := !t_energy +. de;
      incr transitions;
      mode := m;
      voltage := nxt.voltage;
      freq := nxt.frequency;
      fetch_avail := drain +. dt;
      if drain +. dt > !end_time then end_time := drain +. dt
    end
  in
  let exec (i : Instr.t) =
    incr dyn;
    match i with
    | Instr.Li (rd, v) ->
      let t = fetch_slot () in
      let completion = t +. (1.0 /. !freq) in
      charge_energy 1;
      classify t 1;
      regs.(rd) <- v;
      ready.(rd) <- completion;
      finish completion
    | Instr.Mov (rd, rs) ->
      let t = Float.max (fetch_slot ()) ready.(rs) in
      let completion = t +. (1.0 /. !freq) in
      charge_energy 1;
      classify t 1;
      regs.(rd) <- regs.(rs);
      ready.(rd) <- completion;
      finish completion
    | Instr.Binop (op, rd, rs1, rs2) ->
      let lat = Instr.latency i in
      let t =
        Float.max (fetch_slot ()) (Float.max ready.(rs1) ready.(rs2))
      in
      let completion = t +. (float_of_int lat /. !freq) in
      charge_energy lat;
      classify t lat;
      regs.(rd) <- Instr.eval_binop op regs.(rs1) regs.(rs2);
      ready.(rd) <- completion;
      finish completion
    | Instr.Load (rd, rs, off) ->
      let a = regs.(rs) + off in
      if a < 0 || a >= Array.length mem then
        failwith (Printf.sprintf "Cpu_ooo.run: address %d out of bounds" a);
      let outcome = Hierarchy.access hier ~word_addr:a in
      let t = Float.max (fetch_slot ()) ready.(rs) in
      let completion =
        if outcome.Hierarchy.dram then begin
          charge_energy 1;
          cache_hit_cycles := !cache_hit_cycles + 1;
          issue_miss (t +. (1.0 /. !freq))
        end
        else begin
          let c = 1 + outcome.Hierarchy.cycles in
          charge_energy c;
          cache_hit_cycles := !cache_hit_cycles + c;
          t +. (float_of_int c /. !freq)
        end
      in
      regs.(rd) <- mem.(a);
      ready.(rd) <- completion;
      finish completion
    | Instr.Store (rv, rs, off) ->
      let a = regs.(rs) + off in
      if a < 0 || a >= Array.length mem then
        failwith (Printf.sprintf "Cpu_ooo.run: address %d out of bounds" a);
      let outcome = Hierarchy.access hier ~word_addr:a in
      let t = Float.max (fetch_slot ()) (Float.max ready.(rv) ready.(rs)) in
      let retire =
        if outcome.Hierarchy.dram then begin
          charge_energy 1;
          cache_hit_cycles := !cache_hit_cycles + 1;
          (* The store retires into a store buffer after issue; only the
             DRAM drain (tracked by the busy union) outlives it. *)
          ignore (issue_miss (t +. (1.0 /. !freq)));
          t +. (1.0 /. !freq)
        end
        else begin
          let c = 1 + outcome.Hierarchy.cycles in
          charge_energy c;
          cache_hit_cycles := !cache_hit_cycles + c;
          t +. (float_of_int c /. !freq)
        end
      in
      mem.(a) <- regs.(rv);
      finish retire
    | Instr.Nop ->
      let t = fetch_slot () in
      charge_energy 1;
      classify t 1;
      finish (t +. (1.0 /. !freq))
    | Instr.Modeset m -> set_mode m
  in
  (* Branch resolution: perfect prediction, but the condition register
     is read (occupies a fetch slot and a cycle). *)
  let exec_term_read r =
    let t = Float.max (fetch_slot ()) ready.(r) in
    charge_energy 1;
    classify t 1;
    finish (t +. (1.0 /. !freq))
  in
  let exec_jump () =
    let t = fetch_slot () in
    charge_energy 1;
    classify t 1;
    finish (t +. (1.0 /. !freq))
  in
  let edge_mode e = match edge_modes with Some f -> f e | None -> None in
  let rec step label via budget =
    if budget <= 0 then raise Cpu.Out_of_fuel;
    (match via with
    | Some src -> (
      match edge_mode { Cfg.src; dst = label } with
      | Some m -> set_mode m
      | None -> ())
    | None -> ());
    let b = Cfg.block g label in
    Array.iter exec b.Cfg.body;
    match b.Cfg.term with
    | Cfg.Halt -> ()
    | Cfg.Jump l ->
      exec_jump ();
      step l (Some label) (budget - 1)
    | Cfg.Branch (r, taken, fallthrough) ->
      exec_term_read r;
      let dst = if regs.(r) <> 0 then taken else fallthrough in
      step dst (Some label) (budget - 1)
  in
  step (Cfg.entry g) None fuel;
  (* Drain outstanding memory traffic (store buffer included). *)
  let final_time =
    Float.max (Float.max !end_time !fetch_avail)
      (if Float.is_finite !busy_end then !busy_end else 0.0)
  in
  { Cpu.time = final_time; energy = !energy;
    dyn_instrs = !dyn; mode_transitions = !transitions;
    transition_time = !t_time; transition_energy = !t_energy;
    l1 = Hierarchy.l1_stats hier; l2 = Hierarchy.l2_stats hier;
    overlap_cycles = !overlap_cycles; dependent_cycles = !dependent_cycles;
    cache_hit_cycles = !cache_hit_cycles; miss_busy_time = !miss_busy;
    stall_time = !window_stall; registers = regs; memory = mem }
