(** Execution tape: the schedule-independent record of one simulated run.

    Assumption 1 (DESIGN.md section 2, cross-checked by the test suite)
    says the {e architectural} behavior of a program — block path, branch
    directions, address stream, cache hit/miss outcomes, final registers
    and memory — does not depend on the DVS schedule; modes only scale
    time and energy.  A tape captures exactly that invariant part once,
    as a compact op stream per dynamic basic block, so any candidate
    schedule can be re-costed by replaying arithmetic on the tape instead
    of re-interpreting every instruction ({!Summary}).

    Ops mirror the cost-bearing calls inside {!Cpu.run} one-for-one
    (each [charge], stall check, pending clear, miss issue and mode-set
    in program order), which is what makes tape replay {e bit-identical}
    to the cycle-accurate simulator: both accumulate the same floats in
    the same order.

    Dynamic blocks are hash-consed into {e variants} (a block label plus
    one observed op sequence; the same label yields different variants
    when its cache outcomes differ), so the replayer can memoize
    per-(variant, mode) cost summaries. *)

open Dvs_ir

(** {2 Op encoding}

    Ops are tagged ints: [(payload lsl 3) lor tag].  Payloads are cycle
    counts, register numbers or mode indices, all small and
    non-negative. *)

val op_compute : int -> int
(** [charge `Compute c]. *)

val op_hit : int -> int
(** [charge `Mem_hit c]. *)

val op_wait : int -> int
(** [wait_for r], recorded only when register [r] had a pending miss
    completion at record time (a schedule-independent fact). *)

val op_clear : int -> int
(** [pending.(r) <- neg_infinity], recorded only when it actually
    cleared something. *)

val op_miss_load : int -> int
(** [pending.(rd) <- issue_miss ()]. *)

val op_miss_store : int
(** [ignore (issue_miss ())]. *)

val op_modeset : int -> int
(** A [Modeset m] instruction (edge mode-sets are {e not} on the tape;
    the replayer applies them from the schedule under test). *)

val op_tag : int -> int

val op_payload : int -> int

val tag_compute : int

val tag_hit : int

val tag_wait : int

val tag_clear : int

val tag_miss_load : int

val tag_miss_store : int

val tag_modeset : int

(** {2 Variants} *)

type variant = {
  label : Cfg.label;  (** the static block this variant came from *)
  ops : int array;  (** cost ops, program order, terminator included *)
  dyn : int;  (** instructions executed in the block *)
  summarizable : bool;
      (** no miss and no [Modeset] op: the block's cost delta depends
          only on the entering mode whenever no miss is in flight at
          entry *)
}

(** {2 Recording} *)

type recorder
(** Attach to a run via {!Cpu.Run_config.make}'s [recorder]; single
    use. *)

val recorder : Cfg.t -> recorder

val enter_block : recorder -> label:Cfg.label -> via:Cfg.label option -> unit

val record : recorder -> int -> unit
(** Append one op to the current block. *)

val instr : recorder -> unit
(** Count one executed instruction in the current block. *)

type t = {
  variants : variant array;
  seq : int array;  (** variant index per dynamic block position *)
  edge_of : int array;
      (** incoming {!Cfg.edge_index} per position; [-1] at entry *)
  first_edge_pos : int array;
      (** per edge index, the first position entered through that edge
          ([max_int] when the edge was never traversed) *)
  n_edges : int;
  n_regs : int;
  dyn_instrs : int;
  l1 : Cache.stats;
  l2 : Cache.stats;
  registers : int array;  (** final architectural registers *)
  memory : int array;  (** final memory image *)
}

val create :
  recorder ->
  dyn_instrs:int ->
  l1:Cache.stats ->
  l2:Cache.stats ->
  registers:int array ->
  memory:int array -> t
(** Seal the recording, taking the schedule-independent final state
    (registers, memory, cache stats, instruction count) from the
    recording run's stats.  Raises [Invalid_argument] if the recorder
    saw no blocks. *)

val positions : t -> int
(** Dynamic blocks on the tape. *)

val first_divergence :
  t -> entry_changed:bool -> edges:int list -> int option
(** The first tape position whose cost could differ between two
    schedules that differ exactly on [edges] (by {!Cfg.edge_index}) and,
    when [entry_changed], on the entry mode.  [None] means no traversed
    edge differs — the two schedules cost identically on this tape.
    Position [0] when the entry mode changed. *)
