open Dvs_ir

type run_stats = {
  time : float;
  energy : float;
  dyn_instrs : int;
  mode_transitions : int;
  transition_time : float;
  transition_energy : float;
  l1 : Cache.stats;
  l2 : Cache.stats;
  overlap_cycles : int;
  dependent_cycles : int;
  cache_hit_cycles : int;
  miss_busy_time : float;
  stall_time : float;
  registers : int array;
  memory : int array;
}

exception Out_of_fuel

type governor = {
  gov_interval : float;
  gov_decide : busy_fraction:float -> current_mode:int -> int;
}

type observer =
  Cfg.label -> via:Cfg.label option -> time:float -> energy:float -> unit

module Run_config = struct
  type t = {
    fuel : int;
    initial_mode : int option;
    edge_modes : (Cfg.edge -> int option) option;
    governor : governor option;
    observer : observer option;
    obs : Dvs_obs.t;
    recorder : Tape.recorder option;
  }

  let make ?(fuel = 50_000_000) ?initial_mode ?edge_modes ?governor
      ?observer ?(obs = Dvs_obs.disabled) ?recorder () =
    if fuel <= 0 then
      invalid_arg "Cpu.Run_config.make: fuel must be positive";
    { fuel; initial_mode; edge_modes; governor; observer; obs; recorder }

  let default = make ()

  let with_fuel fuel t =
    if fuel <= 0 then
      invalid_arg "Cpu.Run_config.with_fuel: fuel must be positive";
    { t with fuel }

  let with_initial_mode m t = { t with initial_mode = Some m }

  let with_edge_modes f t = { t with edge_modes = Some f }

  let with_governor g t = { t with governor = Some g }

  let with_observer f t = { t with observer = Some f }

  let with_obs obs t = { t with obs }

  let with_recorder r t = { t with recorder = Some r }
end

let max_reg_of_cfg g =
  Array.fold_left
    (fun acc b ->
      let acc =
        Array.fold_left (fun a i -> Int.max a (Instr.max_reg i)) acc b.Cfg.body
      in
      match b.Cfg.term with
      | Cfg.Branch (r, _, _) -> Int.max acc r
      | Cfg.Jump _ | Cfg.Halt -> acc)
    (-1) (Cfg.blocks g)

let run ?(rc = Run_config.default) (cfg : Config.t) g ~memory =
  let { Run_config.fuel; initial_mode; edge_modes; governor; observer; obs;
        recorder } =
    rc
  in
  (match (recorder, governor) with
  | Some _, Some _ ->
    (* A tape must stay schedule-independent; governor decisions are a
       runtime policy the replayer cannot reproduce. *)
    invalid_arg "Cpu.run: recorder and governor cannot be combined"
  | _ -> ());
  let table = cfg.mode_table in
  let n_modes = Dvs_power.Mode.size table in
  let initial_mode =
    match initial_mode with Some m -> m | None -> n_modes - 1
  in
  if initial_mode < 0 || initial_mode >= n_modes then
    invalid_arg "Cpu.run: initial mode out of range";
  let hier = Hierarchy.create cfg in
  (* Simulated time is deterministic (single-threaded, no wall clock), so
     every event the simulator emits is Stable. *)
  let tr = Dvs_obs.trace obs in
  let obs_on = Dvs_obs.enabled obs in
  let module Tr = Dvs_obs.Trace in
  let run_span =
    if obs_on then
      Tr.start tr ~stability:Tr.Stable "sim.run"
        ~attrs:[ ("blocks", Tr.Int (Array.length (Cfg.blocks g))) ]
    else Tr.start Tr.disabled "sim.run"
  in
  let regs = Array.make (max_reg_of_cfg g + 1) 0 in
  let mem = Array.copy memory in
  let pending = Array.make (Array.length regs) neg_infinity in
  (* Mutable machine state.  Time and energy are accumulated {e block
     locally} ([dtime]/[denergy], committed at block boundaries and at
     absolute events): summing each block's charges from 0.0 is what
     lets {!Summary} replay a memoized per-block delta bit-identically —
     float addition is not associative, so the exact path and the replay
     path must share one accumulation grouping. *)
  let time = ref 0.0 and energy = ref 0.0 in
  let dtime = ref 0.0 and denergy = ref 0.0 in
  let commit () =
    if !dtime <> 0.0 then begin
      time := !time +. !dtime;
      dtime := 0.0
    end;
    if !denergy <> 0.0 then begin
      energy := !energy +. !denergy;
      denergy := 0.0
    end
  in
  let now () = !time +. !dtime in
  let mode = ref initial_mode in
  let voltage = ref (Dvs_power.Mode.get table initial_mode).voltage in
  let freq = ref (Dvs_power.Mode.get table initial_mode).frequency in
  let dyn = ref 0 in
  let transitions = ref 0 in
  let t_time = ref 0.0 and t_energy = ref 0.0 in
  let overlap_cycles = ref 0 and dependent_cycles = ref 0 in
  let cache_hit_cycles = ref 0 in
  let busy_end = ref neg_infinity and miss_busy = ref 0.0 in
  let stall = ref 0.0 in
  let in_flight () = !busy_end > now () in
  (* Charge [c] synchronous cycles of kind [`Compute] or [`Mem_hit]. *)
  let charge kind c =
    (match kind with
    | `Mem_hit ->
      cache_hit_cycles := !cache_hit_cycles + c;
      (match recorder with
      | Some r -> Tape.record r (Tape.op_hit c)
      | None -> ())
    | `Compute ->
      if in_flight () then overlap_cycles := !overlap_cycles + c
      else dependent_cycles := !dependent_cycles + c;
      (match recorder with
      | Some r -> Tape.record r (Tape.op_compute c)
      | None -> ()));
    dtime := !dtime +. (float_of_int c /. !freq);
    denergy :=
      !denergy
      +. (float_of_int c *. cfg.active_energy_coeff *. !voltage *. !voltage)
  in
  let wait_for r =
    if pending.(r) <> neg_infinity then begin
      (match recorder with
      | Some rc -> Tape.record rc (Tape.op_wait r)
      | None -> ());
      if pending.(r) > now () then begin
        commit ();
        stall := !stall +. (pending.(r) -. !time);
        time := pending.(r)
      end
    end
  in
  let clear_pending rd =
    if pending.(rd) <> neg_infinity then begin
      (match recorder with
      | Some rc -> Tape.record rc (Tape.op_clear rd)
      | None -> ());
      pending.(rd) <- neg_infinity
    end
  in
  let issue_miss () =
    let anow = now () in
    let completion = anow +. cfg.dram_latency in
    if anow >= !busy_end then begin
      miss_busy := !miss_busy +. cfg.dram_latency;
      (* A fresh miss-overlap window opens (extensions of a live window
         are not re-announced, so the event count is the window count). *)
      if obs_on then
        Tr.event tr ~stability:Tr.Stable "sim.miss_window"
          ~attrs:[ ("t", Tr.Float anow) ]
    end
    else if completion > !busy_end then
      miss_busy := !miss_busy +. (completion -. !busy_end);
    if completion > !busy_end then busy_end := completion;
    completion
  in
  let set_mode m =
    if m < 0 || m >= n_modes then invalid_arg "Cpu.run: mode out of range";
    if m <> !mode then begin
      commit ();
      let cur = Dvs_power.Mode.get table !mode in
      let nxt = Dvs_power.Mode.get table m in
      let dt = Dvs_power.Switch_cost.time cfg.regulator cur.voltage nxt.voltage in
      let de = Dvs_power.Switch_cost.energy cfg.regulator cur.voltage nxt.voltage in
      time := !time +. dt;
      energy := !energy +. de;
      t_time := !t_time +. dt;
      t_energy := !t_energy +. de;
      incr transitions;
      if obs_on then
        Tr.event tr ~stability:Tr.Stable "sim.mode_transition"
          ~attrs:
            [ ("from", Tr.Int !mode); ("to", Tr.Int m);
              ("t", Tr.Float !time) ];
      mode := m;
      voltage := nxt.voltage;
      freq := nxt.frequency
    end
  in
  let check_addr a =
    if a < 0 || a >= Array.length mem then
      failwith (Printf.sprintf "Cpu.run: address %d out of bounds" a)
  in
  let exec (i : Instr.t) =
    incr dyn;
    (match recorder with Some r -> Tape.instr r | None -> ());
    match i with
    | Instr.Li (rd, v) ->
      charge `Compute (Instr.latency i);
      regs.(rd) <- v;
      clear_pending rd
    | Instr.Mov (rd, rs) ->
      wait_for rs;
      charge `Compute (Instr.latency i);
      regs.(rd) <- regs.(rs);
      clear_pending rd
    | Instr.Binop (op, rd, rs1, rs2) ->
      wait_for rs1;
      wait_for rs2;
      charge `Compute (Instr.latency i);
      regs.(rd) <- Instr.eval_binop op regs.(rs1) regs.(rs2);
      clear_pending rd
    | Instr.Load (rd, rs, off) ->
      wait_for rs;
      let a = regs.(rs) + off in
      check_addr a;
      let outcome = Hierarchy.access hier ~word_addr:a in
      if outcome.Hierarchy.dram then begin
        (* One issue cycle; the lookup overlaps the DRAM transaction. *)
        charge `Mem_hit 1;
        (match recorder with
        | Some r -> Tape.record r (Tape.op_miss_load rd)
        | None -> ());
        pending.(rd) <- issue_miss ()
      end
      else begin
        charge `Mem_hit (1 + outcome.Hierarchy.cycles);
        clear_pending rd
      end;
      regs.(rd) <- mem.(a)
    | Instr.Store (rv, rs, off) ->
      wait_for rv;
      wait_for rs;
      let a = regs.(rs) + off in
      check_addr a;
      let outcome = Hierarchy.access hier ~word_addr:a in
      if outcome.Hierarchy.dram then begin
        charge `Mem_hit 1;
        (match recorder with
        | Some r -> Tape.record r Tape.op_miss_store
        | None -> ());
        ignore (issue_miss ())
      end
      else charge `Mem_hit (1 + outcome.Hierarchy.cycles);
      mem.(a) <- regs.(rv)
    | Instr.Nop -> charge `Compute 1
    | Instr.Modeset m ->
      (match recorder with
      | Some r -> Tape.record r (Tape.op_modeset m)
      | None -> ());
      set_mode m
  in
  let notify label via =
    match observer with
    | Some f -> f label ~via ~time:!time ~energy:!energy
    | None -> ()
  in
  let edge_mode e =
    match edge_modes with Some f -> f e | None -> None
  in
  (* Interval governor: consulted at block boundaries. *)
  let gov_next = ref infinity in
  let gov_window_start = ref 0.0 in
  let gov_stall_mark = ref 0.0 in
  (match governor with
  | Some gv ->
    if not (gv.gov_interval > 0.0) then
      invalid_arg "Cpu.run: governor interval must be positive";
    gov_next := gv.gov_interval
  | None -> ());
  let consult_governor () =
    match governor with
    | None -> ()
    | Some gv ->
      if !time >= !gov_next then begin
        let elapsed = !time -. !gov_window_start in
        let stalled = !stall -. !gov_stall_mark in
        let busy_fraction =
          if elapsed <= 0.0 then 1.0
          else Float.max 0.0 (Float.min 1.0 (1.0 -. (stalled /. elapsed)))
        in
        let next = gv.gov_decide ~busy_fraction ~current_mode:!mode in
        set_mode (Int.max 0 (Int.min (n_modes - 1) next));
        gov_window_start := !time;
        gov_stall_mark := !stall;
        gov_next := !time +. gv.gov_interval
      end
  in
  let rec step label via budget =
    if budget <= 0 then raise Out_of_fuel;
    consult_governor ();
    (match via with
    | Some src -> (
      match edge_mode { Cfg.src; dst = label } with
      | Some m -> set_mode m
      | None -> ())
    | None -> ());
    (match recorder with
    | Some r -> Tape.enter_block r ~label ~via
    | None -> ());
    notify label via;
    let b = Cfg.block g label in
    Array.iter exec b.Cfg.body;
    match b.Cfg.term with
    | Cfg.Halt ->
      commit ();
      (* Drain outstanding memory traffic. *)
      if !busy_end > !time then begin
        stall := !stall +. (!busy_end -. !time);
        time := !busy_end
      end
    | Cfg.Jump l ->
      charge `Compute 1;
      commit ();
      step l (Some label) (budget - 1)
    | Cfg.Branch (r, taken, fallthrough) ->
      wait_for r;
      charge `Compute 1;
      commit ();
      let dst = if regs.(r) <> 0 then taken else fallthrough in
      step dst (Some label) (budget - 1)
  in
  step (Cfg.entry g) None fuel;
  if obs_on then begin
    (* Merge-time aggregation: the hot loop above never touched the
       registry.  The cycle split is the measured Noverlap / Ndependent /
       Ncache decomposition of Section 2. *)
    let mxr = Dvs_obs.metrics obs in
    let module Mc = Dvs_obs.Metrics.Counter in
    let c kind =
      Dvs_obs.Metrics.counter mxr ~stability:Dvs_obs.Metrics.Stable kind
    in
    Mc.add (c "sim.cycles.overlap") ~slot:0 !overlap_cycles;
    Mc.add (c "sim.cycles.dependent") ~slot:0 !dependent_cycles;
    Mc.add (c "sim.cycles.cache_hit") ~slot:0 !cache_hit_cycles;
    Mc.add (c "sim.mode_transitions") ~slot:0 !transitions;
    Mc.add (c "sim.dyn_instrs") ~slot:0 !dyn;
    let g name v =
      Dvs_obs.Metrics.Gauge.set
        (Dvs_obs.Metrics.gauge mxr ~stability:Dvs_obs.Metrics.Stable name) v
    in
    g "sim.time_seconds" !time;
    g "sim.energy_joules" !energy;
    g "sim.stall_seconds" !stall;
    g "sim.miss_busy_seconds" !miss_busy;
    Tr.finish tr run_span
      ~attrs:
        [ ("time", Tr.Float !time); ("energy", Tr.Float !energy);
          ("dyn_instrs", Tr.Int !dyn);
          ("mode_transitions", Tr.Int !transitions) ]
  end;
  { time = !time; energy = !energy; dyn_instrs = !dyn;
    mode_transitions = !transitions; transition_time = !t_time;
    transition_energy = !t_energy; l1 = Hierarchy.l1_stats hier;
    l2 = Hierarchy.l2_stats hier; overlap_cycles = !overlap_cycles;
    dependent_cycles = !dependent_cycles;
    cache_hit_cycles = !cache_hit_cycles; miss_busy_time = !miss_busy;
    stall_time = !stall; registers = regs; memory = mem }
