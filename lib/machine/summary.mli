(** Block-cost summarization: replay a recorded {!Tape} under candidate
    DVS schedules instead of re-interpreting every dynamic instruction.

    A session records one cycle-accurate {!Cpu.run} of a workload
    [(Config.t, Cfg.t, memory)] and then re-costs any schedule by
    walking the tape.  Three tiers, fastest first:

    - {b summary hit}: the dynamic block's variant has no miss and no
      [Modeset] op, and no miss is in flight at entry ([busy_end <=
      time]).  Then no stall can occur inside the block — every pending
      completion already lies in the past and stays there — so the
      block's time/energy delta is a function of (variant, entry mode)
      only, memoized per [(variant, mode)] and applied as one addition.
    - {b op replay}: otherwise the variant's op stream is re-executed
      arithmetically (stalls, miss windows, transition costs), which
      costs a handful of float ops per recorded event rather than a full
      instruction dispatch.
    - {b splice} ({!replay_incremental}): when the schedule differs from
      an already-replayed baseline on few edges, resume from the last
      checkpoint before the first position that could diverge and reuse
      the shared prefix outright.

    {b Exactness.}  All three tiers accumulate time and energy
    block-locally from 0.0 and commit at the same points as {!Cpu.run}
    (which shares the grouping for exactly this reason), so replayed
    [run_stats] are {e bit-identical} to the cycle-accurate simulator on
    every equality-gated field — enforced by the test suite, including
    across incremental splices.  Architectural results (registers,
    memory, cache stats, instruction counts) are schedule-independent
    (Assumption 1) and come from the recording run.

    Sessions are safe to share across domains: summary slots are atomic
    (a lost race recomputes the same value) and the baseline store is
    lock-protected. *)

type t
(** A summarization session: recorded tape + summary cache + baseline
    store for incremental replay. *)

val create :
  ?fuel:int ->
  ?obs:Dvs_obs.t ->
  Config.t -> Dvs_ir.Cfg.t -> memory:int array -> t
(** Record the workload once with a cycle-accurate, tape-recording
    {!Cpu.run} under the default schedule (fastest mode, no edge
    mode-sets).  [obs] instruments only this recording run (default
    {!Dvs_obs.disabled}).  Raises whatever {!Cpu.run} raises
    ({!Cpu.Out_of_fuel}, address errors). *)

val n_edges : t -> int
(** Length expected of {!replay}'s [edge_mode] array (the CFG's edge
    count, {!Dvs_ir.Cfg.edges} order). *)

val positions : t -> int
(** Dynamic blocks on the recorded tape. *)

type result = {
  stats : Cpu.run_stats;
  token : int;
      (** names this replay's cached baseline; pass to
          {!replay_incremental}'s [against].  Tokens are positive and
          unique per session. *)
}

val replay :
  ?obs:Dvs_obs.t -> t -> entry_mode:int -> edge_mode:int option array ->
  result
(** Re-cost the recorded execution under a schedule: [entry_mode] is the
    mode at program start, [edge_mode.(i)] an optional mode-set on CFG
    edge [i] (applied on every traversal, silent when unchanged — same
    semantics as {!Cpu.Run_config.t}'s [edge_modes]).

    [obs] (default {!Dvs_obs.disabled}) gets the same stable [sim.*]
    span, events, counters and gauges as a cycle-accurate run, plus
    volatile [sim.blocks_replayed], [sim.summary_hits],
    [sim.summary_misses] and [sim.spliced_segments] counters (volatile
    because hit/miss split depends on cache warm-up order across
    domains; totals of the stable instruments are exact).

    Raises [Invalid_argument] when [edge_mode] has the wrong length or a
    mode index is out of range. *)

val replay_incremental :
  ?obs:Dvs_obs.t -> t -> against:int -> entry_mode:int ->
  edge_mode:int option array -> result
(** Like {!replay}, but splice against the baseline cached under token
    [against]: positions before the first traversal of a differing edge
    (or position 0 when [entry_mode] differs) are reused from the
    baseline's checkpoints rather than replayed.  The result is
    bit-identical to {!replay} of the same schedule.  Falls back to a
    full replay when the baseline has been evicted (the store keeps the
    most recently used handful). *)
