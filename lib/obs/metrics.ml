(* Counters use one atomic cell per worker slot: increments are
   lock-free and allocation-free, and nothing aggregates until snapshot
   time.  Gauges and histograms are mutex-protected — they are meant for
   end-of-run aggregation, where the lock is noise.

   The disabled registry hands out shared no-op instruments that test
   one boolean and return; instrumented hot paths need no guards of
   their own around counter bumps. *)

type stability = Stable | Volatile

module Counter = struct
  type t = { on : bool; slots : int Atomic.t array; mask_mod : int }

  let make max_slots =
    { on = true;
      slots = Array.init max_slots (fun _ -> Atomic.make 0);
      mask_mod = max_slots }

  let noop = { on = false; slots = [||]; mask_mod = 1 }

  let add t ~slot n =
    if t.on then
      let i = if slot >= 0 && slot < t.mask_mod then slot else
          ((slot mod t.mask_mod) + t.mask_mod) mod t.mask_mod
      in
      ignore (Atomic.fetch_and_add t.slots.(i) n)

  let incr t ~slot = add t ~slot 1

  let value t = Array.fold_left (fun acc a -> acc + Atomic.get a) 0 t.slots

  let per_slot t =
    let acc = ref [] in
    for i = Array.length t.slots - 1 downto 0 do
      let v = Atomic.get t.slots.(i) in
      if v <> 0 then acc := (i, v) :: !acc
    done;
    !acc
end

module Gauge = struct
  type t = { on : bool; mutex : Mutex.t; mutable v : float }

  let make () = { on = true; mutex = Mutex.create (); v = Float.nan }

  let noop = { on = false; mutex = Mutex.create (); v = Float.nan }

  let set t x =
    if t.on then begin
      Mutex.lock t.mutex;
      t.v <- x;
      Mutex.unlock t.mutex
    end

  let value t =
    Mutex.lock t.mutex;
    let v = t.v in
    Mutex.unlock t.mutex;
    v
end

module Histogram = struct
  (* Power-of-two buckets over the positive reals plus an underflow
     bucket for v <= 0 (index 0).  Bucket i >= 1 covers
     (2^(i-1-bias), 2^(i-bias)]; bias centers the range so microsecond
     to kilosecond durations and small counts both resolve. *)
  let n_buckets = 64

  let bias = 32

  type t = {
    on : bool;
    mutex : Mutex.t;
    buckets : int array;
    mutable count : int;
    mutable sum : float;
  }

  let make () =
    { on = true; mutex = Mutex.create (); buckets = Array.make n_buckets 0;
      count = 0; sum = 0.0 }

  let noop =
    { on = false; mutex = Mutex.create (); buckets = [||]; count = 0;
      sum = 0.0 }

  let bucket_of v =
    if not (v > 0.0) || not (Float.is_finite v) then 0
    else
      let _, e = Float.frexp v in
      Int.max 1 (Int.min (n_buckets - 1) (e + bias))

  (* Upper bound of bucket [i], for the snapshot's [le] labels. *)
  let bucket_le i = if i = 0 then 0.0 else Float.ldexp 1.0 (i - bias)

  let observe t v =
    if t.on then begin
      Mutex.lock t.mutex;
      t.buckets.(bucket_of v) <- t.buckets.(bucket_of v) + 1;
      t.count <- t.count + 1;
      if Float.is_finite v then t.sum <- t.sum +. v;
      Mutex.unlock t.mutex
    end

  let count t =
    Mutex.lock t.mutex;
    let c = t.count in
    Mutex.unlock t.mutex;
    c

  let sum t =
    Mutex.lock t.mutex;
    let s = t.sum in
    Mutex.unlock t.mutex;
    s
end

type instrument =
  | C of Counter.t
  | G of Gauge.t
  | H of Histogram.t

type t = {
  on : bool;
  max_slots : int;
  mutex : Mutex.t;
  table : (string, stability * instrument) Hashtbl.t;
}

let create ?(max_slots = 64) () =
  if max_slots < 1 then
    invalid_arg "Metrics.create: max_slots must be >= 1";
  { on = true; max_slots; mutex = Mutex.create (); table = Hashtbl.create 32 }

let disabled =
  { on = false; max_slots = 1; mutex = Mutex.create ();
    table = Hashtbl.create 1 }

let enabled t = t.on

let register t name stability make pick wrong =
  Mutex.lock t.mutex;
  let r =
    match Hashtbl.find_opt t.table name with
    | Some (_, i) -> (
      match pick i with
      | Some x -> Ok x
      | None -> Error ())
    | None ->
      let x = make () in
      Hashtbl.add t.table name (stability, wrong x);
      Ok x
  in
  Mutex.unlock t.mutex;
  match r with
  | Ok x -> x
  | Error () ->
    invalid_arg
      (Printf.sprintf "Metrics: %s already registered with another kind" name)

let counter t ?(stability = Stable) name =
  if not t.on then Counter.noop
  else
    register t name stability
      (fun () -> Counter.make t.max_slots)
      (function C c -> Some c | G _ | H _ -> None)
      (fun c -> C c)

let gauge t ?(stability = Stable) name =
  if not t.on then Gauge.noop
  else
    register t name stability Gauge.make
      (function G g -> Some g | C _ | H _ -> None)
      (fun g -> G g)

let histogram t ?(stability = Stable) name =
  if not t.on then Histogram.noop
  else
    register t name stability Histogram.make
      (function H h -> Some h | C _ | G _ -> None)
      (fun h -> H h)

(* ---- snapshot -------------------------------------------------------- *)

let stability_json = function
  | Stable -> Json.String "stable"
  | Volatile -> Json.String "volatile"

let float_json f = if Float.is_finite f then Json.Float f else Json.Null

let snapshot ?(meta = []) t =
  Mutex.lock t.mutex;
  let items =
    Hashtbl.fold (fun name si acc -> (name, si) :: acc) t.table []
  in
  Mutex.unlock t.mutex;
  let items =
    List.sort (fun (a, _) (b, _) -> String.compare a b) items
  in
  let pick f =
    List.filter_map
      (fun (name, (st, i)) -> Option.map (fun j -> (name, j)) (f st i))
      items
  in
  let counters =
    pick (fun st i ->
        match i with
        | C c ->
          Some
            (Json.Obj
               [ ("total", Json.Int (Counter.value c));
                 ( "per_slot",
                   Json.Obj
                     (List.map
                        (fun (s, v) -> (string_of_int s, Json.Int v))
                        (Counter.per_slot c)) );
                 ("stability", stability_json st) ])
        | G _ | H _ -> None)
  in
  let gauges =
    pick (fun st i ->
        match i with
        | G g ->
          Some
            (Json.Obj
               [ ("value", float_json (Gauge.value g));
                 ("stability", stability_json st) ])
        | C _ | H _ -> None)
  in
  let histograms =
    pick (fun st i ->
        match i with
        | H h ->
          Mutex.lock h.Histogram.mutex;
          let buckets =
            let acc = ref [] in
            for i = Array.length h.Histogram.buckets - 1 downto 0 do
              let v = h.Histogram.buckets.(i) in
              if v <> 0 then
                acc :=
                  ( Printf.sprintf "le_%g" (Histogram.bucket_le i),
                    Json.Int v )
                  :: !acc
            done;
            !acc
          in
          let count = h.Histogram.count and sum = h.Histogram.sum in
          Mutex.unlock h.Histogram.mutex;
          Some
            (Json.Obj
               [ ("count", Json.Int count); ("sum", float_json sum);
                 ("buckets", Json.Obj buckets);
                 ("stability", stability_json st) ])
        | C _ | G _ -> None)
  in
  let meta =
    List.sort (fun (a, _) (b, _) -> String.compare a b) meta
  in
  Json.Obj
    [ ("schema", Json.String "dvs-metrics/v1");
      ("meta", Json.Obj meta);
      ( "wall",
        Json.Obj
          [ ("unix_time", Json.Float (Unix.gettimeofday ())) ] );
      ("counters", Json.Obj counters);
      ("gauges", Json.Obj gauges);
      ("histograms", Json.Obj histograms) ]

let stable_subset json =
  let stable_members kvs =
    List.filter_map
      (fun (name, v) ->
        match Json.member "stability" v with
        | Some (Json.String "stable") -> (
          (* Drop scheduling-dependent per-slot breakdowns. *)
          match v with
          | Json.Obj fields ->
            Some
              ( name,
                Json.Obj
                  (List.filter (fun (k, _) -> k <> "per_slot") fields) )
          | _ -> Some (name, v))
        | _ -> None)
      kvs
  in
  match json with
  | Json.Obj kvs ->
    Json.Obj
      (List.filter_map
         (fun (k, v) ->
           match (k, v) with
           | "wall", _ -> None
           | ("counters" | "gauges" | "histograms"), Json.Obj kvs ->
             Some (k, Json.Obj (stable_members kvs))
           | _ -> Some (k, v))
         kvs)
  | other -> other
