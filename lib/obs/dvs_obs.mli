(** [dvs_obs]: tracing + metrics for the DVS toolkit.

    One {!t} bundles a {!Metrics} registry and a {!Trace} log and is
    threaded through the three instrumented layers —
    [Dvs_milp.Solver] (branch-and-bound node/steal/cache/fault
    accounting), [Dvs_machine.Cpu] (mode transitions, miss overlap
    windows, stall attribution) and [Dvs_core.Pipeline] (degradation
    ladder timeline).  {!disabled} is the default everywhere and
    short-circuits to nothing: no allocation, no locks, no clock reads
    on hot paths.

    Export: {!Trace.write_jsonl} for the event log ([dvs-trace/v1],
    one JSON object per line) and {!Metrics.snapshot} for a single
    diffable JSON document ([dvs-metrics/v1], stable key order, caller
    metadata embedded).  {!Schema} documents and validates both, plus
    the [dvs-bench/v2] summary the bench harness derives from the same
    registry. *)

module Json = Json
module Metrics = Metrics
module Trace = Trace
module Schema = Schema

type t

val create : ?trace_capacity:int -> ?max_slots:int -> unit -> t
(** Metrics and tracing both enabled. *)

val metrics_only : ?max_slots:int -> unit -> t
(** Metrics enabled, tracing disabled — for long sweeps (the bench
    harness) where an event log would just saturate its capacity. *)

val disabled : t
(** The shared no-op bundle; the default for every instrumented
    component. *)

val enabled : t -> bool
(** True when metrics or tracing is live.  Instrumented code uses this
    to skip attribute construction on disabled bundles. *)

val metrics : t -> Metrics.t

val trace : t -> Trace.t
