(* Per-slot buffered trace.  Each slot buffer has its own mutex (cheap,
   uncontended in the one-domain-per-slot discipline), a shared atomic
   budget bounds total entries, and timestamps are clamped monotonic per
   slot so slot-local order and timestamp order agree. *)

type value =
  | Bool of bool
  | Int of int
  | Float of float
  | String of string

type stability = Stable | Volatile

type entry = {
  name : string;
  ts : float;
  dur : float option;
  slot : int;
  stability : stability;
  attrs : (string * value) list;
}

type slot_buf = {
  mutex : Mutex.t;
  mutable items : entry list;  (* newest first *)
  mutable last_ts : float;
}

type t = {
  on : bool;
  epoch : float;
  n_slots : int;
  slots : slot_buf array;
  budget : int Atomic.t;  (* remaining capacity *)
  dropped_n : int Atomic.t;
}

let n_slots_default = 64

let make_slots n =
  Array.init n (fun _ ->
      { mutex = Mutex.create (); items = []; last_ts = 0.0 })

let create ?(capacity = 65536) () =
  if capacity < 0 then invalid_arg "Trace.create: capacity must be >= 0";
  { on = true; epoch = Unix.gettimeofday (); n_slots = n_slots_default;
    slots = make_slots n_slots_default; budget = Atomic.make capacity;
    dropped_n = Atomic.make 0 }

let disabled =
  { on = false; epoch = 0.0; n_slots = 1; slots = make_slots 1;
    budget = Atomic.make 0; dropped_n = Atomic.make 0 }

let enabled t = t.on

let slot_of t slot =
  if slot >= 0 && slot < t.n_slots then slot
  else ((slot mod t.n_slots) + t.n_slots) mod t.n_slots

let record t ~slot ~stability ~dur ~attrs ~t0 name =
  if Atomic.fetch_and_add t.budget (-1) <= 0 then begin
    ignore (Atomic.fetch_and_add t.budget 1);
    Atomic.incr t.dropped_n
  end
  else begin
    let sb = t.slots.(slot_of t slot) in
    Mutex.lock sb.mutex;
    let ts = Float.max t0 sb.last_ts in
    sb.last_ts <- ts;
    sb.items <-
      { name; ts; dur; slot; stability; attrs } :: sb.items;
    Mutex.unlock sb.mutex
  end

let now t = Unix.gettimeofday () -. t.epoch

let event t ?(slot = 0) ?(stability = Volatile) ?(attrs = []) name =
  if t.on then
    record t ~slot ~stability ~dur:None ~attrs ~t0:(now t) name

type span = {
  sp_live : bool;
  sp_name : string;
  sp_slot : int;
  sp_stability : stability;
  sp_attrs : (string * value) list;
  sp_t0 : float;
}

let dummy_span =
  { sp_live = false; sp_name = ""; sp_slot = 0; sp_stability = Volatile;
    sp_attrs = []; sp_t0 = 0.0 }

let start t ?(slot = 0) ?(stability = Volatile) ?(attrs = []) name =
  if not t.on then dummy_span
  else
    { sp_live = true; sp_name = name; sp_slot = slot;
      sp_stability = stability; sp_attrs = attrs; sp_t0 = now t }

let finish t ?(attrs = []) sp =
  if sp.sp_live && t.on then
    record t ~slot:sp.sp_slot ~stability:sp.sp_stability
      ~dur:(Some (Float.max 0.0 (now t -. sp.sp_t0)))
      ~attrs:(sp.sp_attrs @ attrs) ~t0:sp.sp_t0 sp.sp_name

let with_span t ?slot ?stability ?attrs name f =
  if not t.on then f ()
  else begin
    let sp = start t ?slot ?stability ?attrs name in
    match f () with
    | r ->
      finish t sp;
      r
    | exception e ->
      finish t ~attrs:[ ("raised", String (Printexc.to_string e)) ] sp;
      raise e
  end

let entries t =
  let all =
    Array.fold_left
      (fun acc sb ->
        Mutex.lock sb.mutex;
        let items = sb.items in
        Mutex.unlock sb.mutex;
        List.rev_append items acc)
      [] t.slots
  in
  List.sort
    (fun a b ->
      let c = Float.compare a.ts b.ts in
      if c <> 0 then c
      else
        let c = Int.compare a.slot b.slot in
        if c <> 0 then c else String.compare a.name b.name)
    all

let dropped t = Atomic.get t.dropped_n

let value_json = function
  | Bool b -> Json.Bool b
  | Int n -> Json.Int n
  | Float f -> if Float.is_finite f then Json.Float f else Json.Null
  | String s -> Json.String s

let entry_json e =
  let base =
    [ ("ts", Json.Float e.ts);
      ("kind", Json.String (match e.dur with Some _ -> "span" | None -> "event")) ]
  in
  let dur =
    match e.dur with Some d -> [ ("dur", Json.Float d) ] | None -> []
  in
  Json.Obj
    (base
    @ [ ("name", Json.String e.name); ("slot", Json.Int e.slot);
        ( "stability",
          Json.String
            (match e.stability with
            | Stable -> "stable"
            | Volatile -> "volatile") ) ]
    @ dur
    @ [ ("attrs", Json.Obj (List.map (fun (k, v) -> (k, value_json v)) e.attrs)) ])

let write_jsonl t oc =
  let es = entries t in
  List.iter
    (fun e ->
      Json.to_channel oc (entry_json e);
      output_char oc '\n')
    es;
  Json.to_channel oc
    (Json.Obj
       [ ("ts", Json.Float (now t)); ("kind", Json.String "event");
         ("name", Json.String "trace.summary"); ("slot", Json.Int 0);
         ("stability", Json.String "volatile");
         ( "attrs",
           Json.Obj
             [ ("entries", Json.Int (List.length es));
               ("dropped", Json.Int (dropped t)) ] ) ]);
  output_char oc '\n'

let stable_set t =
  entries t
  |> List.filter_map (fun e ->
         match e.stability with
         | Volatile -> None
         | Stable ->
           Some
             (Json.to_string
                (Json.Obj
                   [ ("name", Json.String e.name);
                     ( "attrs",
                       Json.Obj
                         (List.map (fun (k, v) -> (k, value_json v)) e.attrs)
                     ) ])))
  |> List.sort String.compare
