module Json = Json
module Metrics = Metrics
module Trace = Trace
module Schema = Schema

type t = { metrics : Metrics.t; trace : Trace.t }

let create ?trace_capacity ?max_slots () =
  { metrics = Metrics.create ?max_slots ();
    trace = Trace.create ?capacity:trace_capacity () }

let metrics_only ?max_slots () =
  { metrics = Metrics.create ?max_slots (); trace = Trace.disabled }

let disabled = { metrics = Metrics.disabled; trace = Trace.disabled }

let enabled t = Metrics.enabled t.metrics || Trace.enabled t.trace

let metrics t = t.metrics

let trace t = t.trace
