(** Minimal JSON values with a deterministic printer and a small parser —
    just enough for the observability export formats ({!Trace} JSONL
    lines, {!Metrics} snapshots, bench summaries) without an external
    dependency.

    Printing is deterministic: object members are emitted in the order
    they appear in the [Obj] list (snapshot builders sort them), floats
    print with round-trip precision and always carry a ['.'] or
    exponent so they re-parse as floats, and non-finite floats (not
    representable in JSON) print as [null]. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact (single-line) rendering. *)

val to_channel : out_channel -> t -> unit

val of_string : string -> (t, string) result
(** Parses one JSON value (surrounding whitespace allowed).  Numbers
    without ['.'], ['e'] or ['E'] parse as [Int]; escapes including
    [\uXXXX] are decoded to UTF-8. *)

val equal : t -> t -> bool
(** Structural equality; object member {e order matters} (printing is
    order-sensitive too). *)

(** {2 Accessors} — total, returning [None] on shape mismatch. *)

val member : string -> t -> t option
(** [member k (Obj kvs)] is the first binding of [k]. *)

val to_int : t -> int option
(** [Int n] and integral [Float]s. *)

val to_float : t -> float option
(** [Float f] and [Int n] (as a float). *)

val to_string_opt : t -> string option

val to_list : t -> t list option

val keys : t -> string list option
(** Member names of an [Obj], in order. *)
