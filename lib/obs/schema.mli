(** The documented export schemas and their validators.

    Three artifact kinds, all versioned under a ["schema"] tag:

    - {b [dvs-metrics/v1]} — a {!Metrics.snapshot}: top-level keys
      [schema], [meta], [wall], [counters], [gauges], [histograms];
      every counter has an integer [total], a [per_slot] object and a
      [stability] of ["stable"] or ["volatile"]; gauges have [value];
      histograms have [count], [sum] and [buckets].
    - {b [dvs-trace/v1]} — one JSONL line per {!Trace.entry}: keys [ts]
      (number), [kind] (["span"] or ["event"]), [name], [slot] (int),
      [stability], [dur] (required iff [kind = "span"]), [attrs]
      (object).
    - {b [dvs-bench/v2]} — the [BENCH_milp.json] summary written by
      [bench --emit-bench]: solve/throughput totals derived from the
      solver's metric names ([bb_nodes] is the branch-and-bound node
      total), the experiment ids that ran, per-experiment wall times
      under [experiment_wall_seconds], and the full metrics snapshot
      under [metrics].  v2 renamed v1's [nodes] to [bb_nodes] and added
      [experiment_wall_seconds].

    - {b [dvs-service/v1]} — a [dvstool loadgen] leg report: [leg],
      [requests], per-class reply counts under [classes], a
      [latency_ms] object ([mean]/[p50]/[p90]/[p99]), [shed_rate],
      [batched_fraction], [retries], [savings_pct_mean] (null when no
      request was scheduled) and [wall_seconds].

    - {b [dvs-store/v1]} — one experiment-store entry ([Dvs_store]):
      keys [schema], [key] (the full canonical cache key), [kind]
      (["sim"], ["solve"] or ["sweep"]), [epoch] (int), [checksum]
      (FNV-1a of the rendered payload) and [payload] (object).

    Validators check structure, not values: required keys, value kinds,
    and the enumerated strings.  All validators are permissive about
    extra keys, so optional additions (e.g. the bench summary's
    [service] section) need no version bump. *)

val validate_metrics : Json.t -> (unit, string) result

val validate_trace_line : Json.t -> (unit, string) result

val validate_bench : Json.t -> (unit, string) result

val validate_service : Json.t -> (unit, string) result

val validate_store : Json.t -> (unit, string) result

val bench_summary :
  ?experiment_walls:(string * float) list ->
  metrics:Metrics.t -> experiments:string list -> wall_seconds:float ->
  unit -> Json.t
(** Builds a [dvs-bench/v2] document from the registry the solver
    reported into: totals of the [solver.nodes] (as [bb_nodes]),
    [solver.lp_solves], [solver.lp_pivots], [lp.flops] (as [lp_flops]:
    linear-algebra operations per entry actually touched, the number the
    sparse-LU basis backend exists to shrink), [solver.solves] and
    [lp_cache.*] counters, the [solver.solve_seconds] histogram's sum as
    aggregate solve time, and derived [nodes_per_second] /
    [lp_solves_per_second] throughput (0 when no solve time was
    recorded).  [experiment_walls] (default empty) records each
    experiment's own wall time under [experiment_wall_seconds].

    The [store] section totals the experiment store's volatile
    [store.*] counters (hits and misses per artifact kind, plus
    stale/corrupt/eviction counts) — all zero when no store was
    active.  The [lu] section totals the sparse-LU basis backend's
    [lu.*] counters (refactorizations, fill-in, eta-file growth, scatter
    sparsity hits) — all zero under the dense ablation backend. *)
