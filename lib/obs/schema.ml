let ( let* ) r f = Result.bind r f

let fail fmt = Printf.ksprintf (fun s -> Error s) fmt

let need what j k =
  match Json.member k j with
  | Some v -> Ok v
  | None -> fail "%s: missing key %S" what k

let need_kind what k check v =
  if check v then Ok () else fail "%s: key %S has the wrong kind" what k

let is_obj = function Json.Obj _ -> true | _ -> false

let is_int = function Json.Int _ -> true | _ -> false

let is_number = function Json.Int _ | Json.Float _ | Json.Null -> true | _ -> false

let is_string = function Json.String _ -> true | _ -> false

let is_stability = function
  | Json.String ("stable" | "volatile") -> true
  | _ -> false

let check_schema_tag what expected j =
  match Json.member "schema" j with
  | Some (Json.String s) when s = expected -> Ok ()
  | Some (Json.String s) ->
    fail "%s: schema is %S, expected %S" what s expected
  | Some _ | None -> fail "%s: missing schema tag" what

let each what kvs f =
  List.fold_left
    (fun acc (name, v) ->
      let* () = acc in
      Result.map_error (Printf.sprintf "%s %S: %s" what name) (f v))
    (Ok ()) kvs

let obj_members what j k =
  let* v = need what j k in
  match v with
  | Json.Obj kvs -> Ok kvs
  | _ -> fail "%s: key %S must be an object" what k

(* ---- dvs-metrics/v1 -------------------------------------------------- *)

let validate_instrument ~required v =
  match v with
  | Json.Obj _ ->
    let* () =
      List.fold_left
        (fun acc (k, check) ->
          let* () = acc in
          let* x = need "instrument" v k in
          need_kind "instrument" k check x)
        (Ok ()) required
    in
    let* st = need "instrument" v "stability" in
    need_kind "instrument" "stability" is_stability st
  | _ -> fail "instrument must be an object"

let validate_metrics j =
  let what = "metrics" in
  let* () = check_schema_tag what "dvs-metrics/v1" j in
  let* _ = obj_members what j "meta" in
  let* _ = obj_members what j "wall" in
  let* counters = obj_members what j "counters" in
  let* gauges = obj_members what j "gauges" in
  let* histograms = obj_members what j "histograms" in
  let* () =
    each "counter" counters
      (validate_instrument
         ~required:[ ("total", is_int); ("per_slot", is_obj) ])
  in
  let* () =
    each "gauge" gauges
      (validate_instrument ~required:[ ("value", is_number) ])
  in
  each "histogram" histograms
    (validate_instrument
       ~required:
         [ ("count", is_int); ("sum", is_number); ("buckets", is_obj) ])

(* ---- dvs-trace/v1 ---------------------------------------------------- *)

let validate_trace_line j =
  let what = "trace line" in
  if not (is_obj j) then fail "%s: not an object" what
  else
    let* ts = need what j "ts" in
    let* () = need_kind what "ts" is_number ts in
    let* kind = need what j "kind" in
    let* () =
      match kind with
      | Json.String ("span" | "event") -> Ok ()
      | _ -> fail "%s: kind must be \"span\" or \"event\"" what
    in
    let* name = need what j "name" in
    let* () = need_kind what "name" is_string name in
    let* slot = need what j "slot" in
    let* () = need_kind what "slot" is_int slot in
    let* st = need what j "stability" in
    let* () = need_kind what "stability" is_stability st in
    let* attrs = need what j "attrs" in
    let* () = need_kind what "attrs" is_obj attrs in
    match (kind, Json.member "dur" j) with
    | Json.String "span", Some d -> need_kind what "dur" is_number d
    | Json.String "span", None -> fail "%s: span without dur" what
    | _, Some _ -> fail "%s: event with dur" what
    | _, None -> Ok ()

(* ---- dvs-bench/v2 ---------------------------------------------------- *)

let validate_bench j =
  let what = "bench summary" in
  let* () = check_schema_tag what "dvs-bench/v2" j in
  let* exps = need what j "experiments" in
  let* () =
    match exps with
    | Json.List xs when List.for_all is_string xs -> Ok ()
    | _ -> fail "%s: experiments must be a list of strings" what
  in
  let* () =
    List.fold_left
      (fun acc k ->
        let* () = acc in
        let* v = need what j k in
        need_kind what k is_int v)
      (Ok ())
      [ "solves"; "bb_nodes"; "lp_solves"; "lp_pivots"; "lp_flops" ]
  in
  let* () =
    List.fold_left
      (fun acc k ->
        let* () = acc in
        let* v = need what j k in
        need_kind what k is_number v)
      (Ok ())
      [ "solve_seconds_total"; "wall_seconds"; "nodes_per_second";
        "lp_solves_per_second" ]
  in
  let* walls = obj_members what j "experiment_wall_seconds" in
  let* () =
    each "experiment wall" walls (fun v ->
        if is_number v then Ok ()
        else fail "experiment_wall_seconds entries must be numbers")
  in
  let* cache = need what j "cache" in
  let* () = need_kind what "cache" is_obj cache in
  let* () =
    List.fold_left
      (fun acc k ->
        let* () = acc in
        let* v = need what cache k in
        need_kind what ("cache." ^ k) is_int v)
      (Ok ())
      [ "hits"; "misses"; "evictions" ]
  in
  let* metrics = need what j "metrics" in
  validate_metrics metrics

(* ---- dvs-service/v1 -------------------------------------------------- *)

let validate_service j =
  let what = "service report" in
  let* () = check_schema_tag what "dvs-service/v1" j in
  let* leg = need what j "leg" in
  let* () = need_kind what "leg" is_string leg in
  let* requests = need what j "requests" in
  let* () = need_kind what "requests" is_int requests in
  let* classes = obj_members what j "classes" in
  let* () =
    each "class count" classes (fun v ->
        if is_int v then Ok () else fail "class counts must be integers")
  in
  let* latency = need what j "latency_ms" in
  let* () = need_kind what "latency_ms" is_obj latency in
  let* () =
    List.fold_left
      (fun acc k ->
        let* () = acc in
        let* v = need what latency k in
        need_kind what ("latency_ms." ^ k) is_number v)
      (Ok ())
      [ "mean"; "p50"; "p90"; "p99" ]
  in
  let* () =
    List.fold_left
      (fun acc k ->
        let* () = acc in
        let* v = need what j k in
        need_kind what k is_number v)
      (Ok ())
      [ "shed_rate"; "batched_fraction"; "savings_pct_mean"; "wall_seconds" ]
  in
  let* retries = need what j "retries" in
  need_kind what "retries" is_int retries

(* ---- dvs-store/v1 ---------------------------------------------------- *)

let validate_store j =
  let what = "store entry" in
  let* () = check_schema_tag what "dvs-store/v1" j in
  let* key = need what j "key" in
  let* () = need_kind what "key" is_string key in
  let* kind = need what j "kind" in
  let* () =
    match kind with
    | Json.String ("sim" | "solve" | "sweep") -> Ok ()
    | Json.String s -> fail "%s: unknown kind %S" what s
    | _ -> fail "%s: kind must be a string" what
  in
  let* epoch = need what j "epoch" in
  let* () = need_kind what "epoch" is_int epoch in
  let* checksum = need what j "checksum" in
  let* () = need_kind what "checksum" is_string checksum in
  let* payload = need what j "payload" in
  need_kind what "payload" is_obj payload

let bench_summary ?(experiment_walls = []) ~metrics ~experiments
    ~wall_seconds () =
  (* Every instrument this summary reads is volatile (work counts, wall
     clock).  The lookups say so explicitly because find-or-register
     would otherwise *register* absent ones under the Stable default —
     and a run that skipped the solver entirely (a fully warm
     experiment-store run) would then carry stable zeros a live run
     classifies volatile, breaking stable-subset equality. *)
  let total name =
    Metrics.Counter.value
      (Metrics.counter metrics ~stability:Metrics.Volatile name)
  in
  let solves = total "solver.solves" in
  let bb_nodes = total "solver.nodes" in
  let lp_solves = total "solver.lp_solves" in
  let lp_pivots = total "solver.lp_pivots" in
  let lp_flops = total "lp.flops" in
  let solve_seconds =
    Metrics.Histogram.sum
      (Metrics.histogram metrics ~stability:Metrics.Volatile
         "solver.solve_seconds")
  in
  let rate n = if solve_seconds > 0.0 then float_of_int n /. solve_seconds else 0.0 in
  let hits = total "lp_cache.hits" in
  let misses = total "lp_cache.misses" in
  Json.Obj
    [ ("schema", Json.String "dvs-bench/v2");
      ("experiments", Json.List (List.map (fun e -> Json.String e) experiments));
      ("solves", Json.Int solves);
      ("bb_nodes", Json.Int bb_nodes);
      ("lp_solves", Json.Int lp_solves);
      ("lp_pivots", Json.Int lp_pivots);
      (* Linear-algebra work actually performed inside the simplex kernel
         (PR 10): floating-point operations charged per entry touched, so
         the sparse-LU backend's savings over the dense inverse are
         visible even when pivot counts are bit-identical. *)
      ("lp_flops", Json.Int lp_flops);
      (* Sparse-LU basis activity (PR 10): all zeros under the dense
         ablation backend; optional in the validator so pre-PR 10
         baselines stay diffable. *)
      ( "lu",
        Json.Obj
          [ ("refactorizations", Json.Int (total "lu.refactorizations"));
            ("fill_in_nnz", Json.Int (total "lu.fill_in_nnz"));
            ("eta_nnz", Json.Int (total "lu.eta_nnz"));
            ("ftran_sparse_hits", Json.Int (total "lu.ftran_sparse_hits"));
            ("btran_sparse_hits", Json.Int (total "lu.btran_sparse_hits"))
          ] );
      ("solve_seconds_total", Json.Float solve_seconds);
      ("wall_seconds", Json.Float wall_seconds);
      ( "experiment_wall_seconds",
        Json.Obj
          (List.map (fun (e, s) -> (e, Json.Float s)) experiment_walls) );
      ("nodes_per_second", Json.Float (rate bb_nodes));
      ("lp_solves_per_second", Json.Float (rate lp_solves));
      (* Summarized-verification activity: wall-time gates on the
         `reproduce' experiment only engage when both summaries ran with
         warm sessions (> 0 here); absent from older baselines, so the
         validator treats it as optional. *)
      ("sim_summary_hits", Json.Int (total "sim.summary_hits"));
      (* Continuous-bound pre-pruning (PR 9): sweep points answered from
         the lifted incumbent under the exact continuous certificate.
         Optional in the validator, so pre-PR 9 baselines stay
         diffable. *)
      ( "points_pruned_by_bound",
        Json.Int (total "sweep.points_pruned_by_bound") );
      (* Service-experiment gauges (PR 7): set by `bench service' into
         the shared registry; omitted (never null) when the experiment
         did not run, so older baselines stay diffable. *)
      ( "service",
        let g name =
          Metrics.Gauge.value
            (Metrics.gauge metrics ~stability:Metrics.Volatile name)
        in
        let opt k v = if Float.is_nan v then [] else [ (k, Json.Float v) ] in
        Json.Obj
          (opt "p99_seconds" (g "service.p99_seconds")
          @ opt "shed_rate" (g "service.shed_rate")) );
      (* Experiment-store activity (PR 8): all zeros when no store was
         active, so older baselines stay diffable.  A warm run shows
         hits with the volatile work counters near zero — the store's
         whole point. *)
      ( "store",
        Json.Obj
          [ ("sim_hits", Json.Int (total "store.sim_hits"));
            ("sim_misses", Json.Int (total "store.sim_misses"));
            ("solve_hits", Json.Int (total "store.solve_hits"));
            ("solve_misses", Json.Int (total "store.solve_misses"));
            ("sweep_hits", Json.Int (total "store.sweep_hits"));
            ("sweep_misses", Json.Int (total "store.sweep_misses"));
            ("stale", Json.Int (total "store.stale"));
            ("corrupt", Json.Int (total "store.corrupt"));
            ("evictions", Json.Int (total "store.evictions")) ] );
      ( "cache",
        Json.Obj
          [ ("hits", Json.Int hits);
            ("misses", Json.Int misses);
            ("evictions", Json.Int (total "lp_cache.evictions"));
            ( "hit_rate",
              Json.Float
                (if hits + misses > 0 then
                   float_of_int hits /. float_of_int (hits + misses)
                 else 0.0) ) ] );
      ("metrics", Metrics.snapshot metrics) ]
