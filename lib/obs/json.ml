type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* ---- printing -------------------------------------------------------- *)

let escape_to buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

(* Round-trip precision, and always a '.' or exponent so the value
   re-parses as a float rather than an int. *)
let float_to_string f =
  if not (Float.is_finite f) then "null"
  else if Float.is_integer f && Float.abs f < 1e16 then
    Printf.sprintf "%.1f" f
  else Printf.sprintf "%.17g" f

let rec emit buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int n -> Buffer.add_string buf (string_of_int n)
  | Float f -> Buffer.add_string buf (float_to_string f)
  | String s -> escape_to buf s
  | List xs ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i x ->
        if i > 0 then Buffer.add_char buf ',';
        emit buf x)
      xs;
    Buffer.add_char buf ']'
  | Obj kvs ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        escape_to buf k;
        Buffer.add_char buf ':';
        emit buf v)
      kvs;
    Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  emit buf v;
  Buffer.contents buf

let to_channel oc v = output_string oc (to_string v)

(* ---- parsing --------------------------------------------------------- *)

exception Parse_error of string

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n
      && match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let literal lit v =
    let l = String.length lit in
    if !pos + l <= n && String.sub s !pos l = lit then begin
      pos := !pos + l;
      v
    end
    else fail (Printf.sprintf "expected %s" lit)
  in
  let add_utf8 buf cp =
    (* Encode a Unicode code point as UTF-8. *)
    if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
    else if cp < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xc0 lor (cp lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3f)))
    end
    else if cp < 0x10000 then begin
      Buffer.add_char buf (Char.chr (0xe0 lor (cp lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3f)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3f)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xf0 lor (cp lsr 18)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 12) land 0x3f)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3f)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3f)))
    end
  in
  let hex4 () =
    if !pos + 4 > n then fail "truncated \\u escape";
    let h = int_of_string ("0x" ^ String.sub s !pos 4) in
    pos := !pos + 4;
    h
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' ->
        advance ();
        (match peek () with
        | Some '"' -> Buffer.add_char buf '"'; advance ()
        | Some '\\' -> Buffer.add_char buf '\\'; advance ()
        | Some '/' -> Buffer.add_char buf '/'; advance ()
        | Some 'n' -> Buffer.add_char buf '\n'; advance ()
        | Some 'r' -> Buffer.add_char buf '\r'; advance ()
        | Some 't' -> Buffer.add_char buf '\t'; advance ()
        | Some 'b' -> Buffer.add_char buf '\b'; advance ()
        | Some 'f' -> Buffer.add_char buf '\012'; advance ()
        | Some 'u' ->
          advance ();
          let cp = hex4 () in
          let cp =
            (* Surrogate pair. *)
            if cp >= 0xd800 && cp <= 0xdbff && !pos + 1 < n
               && s.[!pos] = '\\'
               && !pos + 1 < n
               && s.[!pos + 1] = 'u'
            then begin
              pos := !pos + 2;
              let lo = hex4 () in
              0x10000 + (((cp - 0xd800) lsl 10) lor (lo - 0xdc00))
            end
            else cp
          in
          add_utf8 buf cp
        | _ -> fail "bad escape");
        go ()
      | Some c ->
        Buffer.add_char buf c;
        advance ();
        go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_float = ref false in
    let num_char c =
      match c with
      | '0' .. '9' | '-' | '+' -> true
      | '.' | 'e' | 'E' ->
        is_float := true;
        true
      | _ -> false
    in
    while !pos < n && num_char s.[!pos] do
      advance ()
    done;
    let text = String.sub s start (!pos - start) in
    if !is_float then
      match float_of_string_opt text with
      | Some f -> Float f
      | None -> fail "bad number"
    else
      match int_of_string_opt text with
      | Some i -> Int i
      | None -> (
        match float_of_string_opt text with
        | Some f -> Float f
        | None -> fail "bad number")
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some 'n' -> literal "null" Null
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some '"' -> String (parse_string ())
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        List []
      end
      else begin
        let rec items acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            items (v :: acc)
          | Some ']' ->
            advance ();
            List.rev (v :: acc)
          | _ -> fail "expected ',' or ']'"
        in
        List (items [])
      end
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let member () =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          (k, v)
        in
        let rec members acc =
          let kv = member () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            members (kv :: acc)
          | Some '}' ->
            advance ();
            List.rev (kv :: acc)
          | _ -> fail "expected ',' or '}'"
        in
        Obj (members [])
      end
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail (Printf.sprintf "unexpected '%c'" c)
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Parse_error msg -> Error msg

let equal = ( = )

let member k = function
  | Obj kvs -> List.assoc_opt k kvs
  | _ -> None

let to_int = function
  | Int n -> Some n
  | Float f when Float.is_integer f -> Some (int_of_float f)
  | _ -> None

let to_float = function
  | Float f -> Some f
  | Int n -> Some (float_of_int n)
  | _ -> None

let to_string_opt = function String s -> Some s | _ -> None

let to_list = function List xs -> Some xs | _ -> None

let keys = function Obj kvs -> Some (List.map fst kvs) | _ -> None
