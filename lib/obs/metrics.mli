(** Metrics registry: named counters, gauges and histograms with a
    deterministic JSON snapshot.

    {b Hot-path cost.} Counters are the only instrument meant for hot
    paths: each counter owns a fixed array of per-slot atomic cells (one
    slot per worker domain), so increments are lock-free, contention-free
    when every domain sticks to its own slot, and allocation-free.
    Aggregation across slots happens only at snapshot time — the
    solve-merge pattern.  Gauges and histograms take a (rarely contended)
    mutex and are intended for end-of-run aggregation, not per-node work.

    {b Disabled registries.} {!disabled} hands out shared no-op
    instruments whose operations test one boolean and return — no
    allocation, no synchronization — so instrumented code needs no
    [if enabled] guards around bare counter bumps.  (Guards are still
    worthwhile where building {e attributes} would allocate.)

    {b Stability.} Every instrument declares whether its value is a
    deterministic function of the inputs ([`Stable]) or depends on wall
    clock / worker interleaving ([`Volatile]).  Snapshots carry the
    class, so runs can be diffed on the stable subset — see
    {!stable_subset}. *)

type t

type stability = Stable | Volatile

val create : ?max_slots:int -> unit -> t
(** An enabled registry.  [max_slots] (default 64) bounds per-slot
    attribution; higher slot indices fold onto [slot mod max_slots].
    Raises [Invalid_argument] when [max_slots < 1]. *)

val disabled : t
(** The shared no-op registry. *)

val enabled : t -> bool

module Counter : sig
  type t

  val incr : t -> slot:int -> unit

  val add : t -> slot:int -> int -> unit

  val value : t -> int
  (** Sum over all slots. *)

  val per_slot : t -> (int * int) list
  (** [(slot, count)] for slots with a nonzero count, slot-ordered. *)
end

module Gauge : sig
  type t

  val set : t -> float -> unit

  val value : t -> float
  (** [nan] until first set. *)
end

module Histogram : sig
  type t

  val observe : t -> float -> unit
  (** Negative and non-finite observations count toward [count]/[sum]
      bookkeeping but land in the underflow bucket. *)

  val count : t -> int

  val sum : t -> float
end

val counter : t -> ?stability:stability -> string -> Counter.t
(** Find-or-register; the first registration fixes the stability class.
    On {!disabled} returns the shared no-op instrument.  Instruments of
    different kinds under one name raise [Invalid_argument]. *)

val gauge : t -> ?stability:stability -> string -> Gauge.t

val histogram : t -> ?stability:stability -> string -> Histogram.t

val snapshot : ?meta:(string * Json.t) list -> t -> Json.t
(** Deterministic snapshot: instruments sorted by name within their
    kind, stable key order throughout.  [meta] (seeds, config, workload
    identity…) is embedded under ["meta"], sorted by key.  Wall-clock
    context lives under the ["wall"] key only, so it can be stripped for
    diffing.  Schema: see {!Schema.validate_metrics}. *)

val stable_subset : Json.t -> Json.t
(** Project a snapshot onto its deterministic part: drops the ["wall"]
    section, every instrument marked volatile, and per-slot counter
    breakdowns (slot attribution depends on worker scheduling). *)
