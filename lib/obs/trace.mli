(** Structured trace: named, attribute-carrying point events and timed
    spans, buffered per worker slot and exported as JSONL.

    Timestamps come from a per-trace epoch and are clamped monotonic per
    slot, so within a slot the event order and the timestamp order
    agree even if the wall clock steps backwards.  Each slot's buffer is
    written by one domain at a time (the {!Dvs_milp.Solver} worker
    discipline) and guarded by its own mutex, so cross-slot traffic
    never contends.

    Capacity is bounded: past [capacity] recorded entries new ones are
    dropped and counted in {!dropped}, so tracing a long run degrades to
    a truncated trace rather than unbounded memory.

    {b Stability} mirrors {!Metrics.stability}: events whose {e set}
    (name + attributes, ignoring timestamps and slot) is a deterministic
    function of the inputs are [Stable]; anything timeline- or
    interleaving-dependent is [Volatile].  {!stable_set} gives the
    canonical comparison key list for determinism tests. *)

type t

type value =
  | Bool of bool
  | Int of int
  | Float of float
  | String of string

type stability = Stable | Volatile

type entry = {
  name : string;
  ts : float;  (** seconds since the trace epoch *)
  dur : float option;  (** [Some] for spans: seconds *)
  slot : int;
  stability : stability;
  attrs : (string * value) list;
}

val create : ?capacity:int -> unit -> t
(** Enabled trace; [capacity] (default 65536) bounds total recorded
    entries.  Raises [Invalid_argument] when [capacity < 0]. *)

val disabled : t
(** Shared no-op trace: recording is a boolean test, {!with_span} just
    runs its thunk. *)

val enabled : t -> bool

val event :
  t -> ?slot:int -> ?stability:stability -> ?attrs:(string * value) list ->
  string -> unit
(** Point event.  [stability] defaults to [Volatile] — mark [Stable]
    only when the event set provably survives a worker-count change. *)

type span

val start :
  t -> ?slot:int -> ?stability:stability -> ?attrs:(string * value) list ->
  string -> span
(** Opens a span; record it with {!finish}.  On a disabled trace returns
    a shared dummy. *)

val finish : t -> ?attrs:(string * value) list -> span -> unit
(** Records the span with its measured duration; [attrs] are appended to
    the ones given at {!start}.  Finishing a dummy span is a no-op. *)

val with_span :
  t -> ?slot:int -> ?stability:stability -> ?attrs:(string * value) list ->
  string -> (unit -> 'a) -> 'a
(** [start]/[finish] around a thunk; the span is recorded even when the
    thunk raises. *)

val entries : t -> entry list
(** Everything recorded so far, merged across slots and sorted by
    timestamp (ties by slot, then name).  Call after worker domains have
    joined. *)

val dropped : t -> int
(** Entries discarded after [capacity] was reached. *)

val entry_json : entry -> Json.t
(** One JSONL line: keys [ts], [kind], [name], [slot], [stability],
    [dur] (spans only), [attrs] — in that order. *)

val write_jsonl : t -> out_channel -> unit
(** One {!entry_json} per line.  A final comment-free summary line with
    [name = "trace.summary"] carries the entry and dropped counts. *)

val stable_set : t -> string list
(** Canonical determinism key per stable entry — name plus rendered
    attrs, timestamps and slots erased — sorted lexicographically. *)
