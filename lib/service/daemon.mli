(** [dvsd]: the Unix-domain-socket front end over {!Engine}.

    One listening socket, one lightweight thread per connection, one
    thread per in-flight request (so a slow solve never blocks the
    connection's reader), replies serialized per connection.  A client
    may pipeline requests on one connection; replies come back in
    completion order, matched by request id.

    Startup refuses to race another daemon: if the socket path exists
    and something answers a connect, {!start} raises; if nothing
    answers (a stale socket left by a crash), the stale file is
    unlinked and rebound.  Shutdown (the protocol request, or {!stop})
    closes the listener, drains the engine and unlinks the socket, so a
    clean exit never leaks either. *)

type t

val start : ?engine_config:Engine.Config.t -> socket:string -> unit -> t
(** Bind and listen; workers start immediately.  Raises [Failure] when a
    live daemon already answers on [socket]. *)

val engine : t -> Engine.t

val socket : t -> string

val run : t -> unit
(** Blocking accept loop; returns after {!stop} (called directly or
    triggered by a protocol [Shutdown] request). *)

val stop : t -> unit
(** Close the listener, drain and join the engine, unlink the socket.
    Idempotent; safe to call from a connection thread. *)
