(** Synchronous [dvsd] client: one connection, one outstanding request
    at a time (calls are serialized internally, so a [t] may be shared
    across threads — each caller blocks for its own round trip).

    {!request} is the resilient entry point: an [Overloaded] rejection
    is retried with exponential backoff {e under the same request id},
    so a retry that lands after the original was finally served is
    answered from the daemon's reply cache instead of re-running the
    solve. *)

type t

val connect : socket:string -> t
(** Raises [Unix.Unix_error] when nothing listens on [socket]. *)

val close : t -> unit

val rpc : t -> Protocol.request -> Protocol.reply
(** One round trip, no retries.  Raises [Protocol.Closed] when the
    daemon hangs up, [Failure] on an undecodable reply. *)

val request :
  ?retries:int -> ?backoff_s:float -> t -> Protocol.request ->
  Protocol.reply * int
(** Like {!rpc}, but an [Overloaded] reply is retried up to [retries]
    times (default 5), sleeping [backoff_s *. 2.{^k}] (default base
    50 ms) before attempt [k].  Returns the final reply and the number
    of retries used; the last reply may still be [Overloaded] when the
    daemon never found room. *)
