(** The [dvsd] wire protocol: length-prefixed JSON frames over a Unix
    domain socket, encoded with {!Dvs_obs.Json} (no external JSON
    dependency).

    {b Framing.}  Every message is a 4-byte big-endian payload length
    followed by that many bytes of UTF-8 JSON.  Frames above
    {!max_frame} bytes are rejected before allocation, so a corrupt
    length prefix cannot make the daemon allocate unboundedly.

    {b Idempotency.}  Every work request carries a caller-chosen [id].
    The daemon memoizes final replies by id (bounded LRU-ish cache), so
    a client that times out and retries the same id is served the cached
    reply instead of re-running the solve — retries are safe by
    construction.  [Overloaded] rejections are {e not} cached: they
    describe a transient queue state the retry is supposed to escape.

    {b Classification.}  {!outcome_class} extends the PR 2 degradation
    classes with the service failure classes ([Budget_degraded],
    [Overloaded], [Budget_exhausted], [Failed]); {!exit_code} is the
    single exit-code table shared by [dvstool optimize] and the service
    client commands. *)

val max_frame : int
(** Maximum accepted frame payload, in bytes (1 MiB). *)

(** Per-request chaos spec: drives the {!Dvs_milp.Fault} triggers (and a
    service-level poison) deterministically from [(seed, request id)],
    so a replay of the same request set fires the same faults at any
    worker count. *)
type chaos = {
  crash_rate : float;  (** P(inject a worker crash on node 1) *)
  exhaust_rate : float;  (** P(exhaust every LP pivot budget) *)
  poison_rate : float;
      (** P(raise inside the service worker itself — exercises the
          daemon's crash containment, not the solver's) *)
  chaos_seed : int;
}

val chaos : ?crash_rate:float -> ?exhaust_rate:float -> ?poison_rate:float ->
  ?seed:int -> unit -> chaos
(** All rates default to 0; raises [Invalid_argument] on a rate outside
    [0, 1]. *)

type request_body =
  | Optimize of {
      workload : string;
      input : string option;  (** default input when [None] *)
      deadline_frac : float;
          (** deadline position in the feasible range, 0 = fastest-mode
              time, 1 = slowest-mode time *)
      budget_s : float option;  (** wall-clock budget; server default
                                    when [None] *)
      chaos : chaos option;
    }
  | Sweep of {
      workload : string;
      input : string option;
      fracs : float list;  (** deadline positions, each in [0, 1] *)
      budget_s : float option;
      chaos : chaos option;
    }
  | Simulate of {
      workload : string;
      input : string option;
      mode : int;  (** pinned DVS mode *)
    }
  | Ping
  | Stats  (** reply carries a [dvs-metrics/v1] snapshot *)
  | Shutdown

type request = { id : string; body : request_body }

(** One flat classification for replies, exit codes and metrics: the
    PR 2 pipeline classes plus the service failure classes. *)
type outcome_class =
  | Full
  | Time_degraded
  | Crash_degraded
  | Verify_degraded
  | Budget_degraded
      (** the schedule came from a cheaper rung because the request's
          wall-clock budget forced an early ladder descent *)
  | Infeasible
  | No_schedule
  | Overloaded  (** admission control shed the request *)
  | Budget_exhausted
      (** the budget drained (queueing) before any rung could run *)
  | Failed  (** contained service-worker crash, or a bad request *)

val all_classes : outcome_class list
(** Every class once, declaration order — for exhaustive reports. *)

val class_name : outcome_class -> string

val class_of_name : string -> outcome_class option

val class_of_pipeline : Dvs_core.Pipeline.degradation_class -> outcome_class

val exit_code : strict:bool -> outcome_class -> int
(** The exit-code table ([dvstool optimize] / [dvstool request]):
    0 ok (degraded results still exit 0 unless [strict]), 1 infeasible,
    2 no schedule, and under [strict] 3 time-, 4 crash-, 5 verify-,
    6 budget-degraded.  The hard service failures are never 0:
    7 overloaded, 8 budget-exhausted, 9 failed. *)

type sched_summary = {
  cls : outcome_class;
  rung : string option;  (** accepted ladder rung, human-readable *)
  deadline_ms : float;
  predicted_uj : float option;
  measured_uj : float option;
  measured_ms : float option;
  meets_deadline : bool option;
  savings_pct : float option;
      (** measured savings vs the best-single-mode baseline *)
}

type reply_body =
  | Scheduled of sched_summary
  | Sweep_points of sched_summary list
  | Rejected_overloaded of { queue_len : int; queue_cap : int }
  | Rejected_budget of { budget_s : float; waited_s : float }
  | Failed_reply of string
  | Pong
  | Stats_reply of Dvs_obs.Json.t
  | Bye

type reply = {
  id : string;
  queue_ms : float;  (** admission-to-dequeue wait *)
  service_ms : float;  (** dequeue-to-reply processing *)
  batched : int;  (** size of the batch this request was served in *)
  body : reply_body;
}

val class_of_reply : reply -> outcome_class
(** [Sweep_points] reports its worst point; [Pong]/[Stats_reply]/[Bye]
    are [Full]. *)

(** {2 JSON encoding} *)

val request_to_json : request -> Dvs_obs.Json.t

val request_of_json : Dvs_obs.Json.t -> (request, string) result

val reply_to_json : reply -> Dvs_obs.Json.t

val reply_of_json : Dvs_obs.Json.t -> (reply, string) result

(** {2 Framing} *)

exception Closed
(** Raised by {!read_frame} on EOF. *)

val write_frame : Unix.file_descr -> Dvs_obs.Json.t -> unit
(** Not thread-safe per descriptor: callers serialize writes. *)

val read_frame : Unix.file_descr -> (Dvs_obs.Json.t, string) result
(** Blocks for a full frame.  Raises {!Closed} on clean EOF at a frame
    boundary; returns [Error] on oversized frames or JSON that does not
    parse. *)
