module P = Protocol

type t = { fd : Unix.file_descr; cmu : Mutex.t }

let connect ~socket =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (match Unix.connect fd (Unix.ADDR_UNIX socket) with
  | () -> ()
  | exception e ->
    (try Unix.close fd with _ -> ());
    raise e);
  { fd; cmu = Mutex.create () }

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()

let rpc t req =
  Mutex.lock t.cmu;
  match
    P.write_frame t.fd (P.request_to_json req);
    P.read_frame t.fd
  with
  | exception e ->
    Mutex.unlock t.cmu;
    raise e
  | Error msg ->
    Mutex.unlock t.cmu;
    failwith ("undecodable reply frame: " ^ msg)
  | Ok json -> (
    Mutex.unlock t.cmu;
    match P.reply_of_json json with
    | Ok reply -> reply
    | Error msg -> failwith ("undecodable reply: " ^ msg))

let request ?(retries = 5) ?(backoff_s = 0.05) t req =
  let rec go attempt =
    let reply = rpc t req in
    match reply.P.body with
    | P.Rejected_overloaded _ when attempt < retries ->
      Thread.delay (backoff_s *. (2.0 ** float_of_int attempt));
      go (attempt + 1)
    | _ -> (reply, attempt)
  in
  go 0
