module P = Protocol

type t = {
  engine : Engine.t;
  socket_path : string;
  listen_fd : Unix.file_descr;
  dmu : Mutex.t;
  mutable running : bool;
}

let engine t = t.engine

let socket t = t.socket_path

(* A socket file that answers a connect belongs to a live daemon —
   refuse to steal it.  One that refuses the connect is a leftover from
   a crash (nothing unlinked it): reclaim the path. *)
let claim_socket path =
  match Unix.stat path with
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()
  | _ -> (
    let probe = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    match Unix.connect probe (Unix.ADDR_UNIX path) with
    | () ->
      Unix.close probe;
      failwith (path ^ ": a daemon is already listening on this socket")
    | exception Unix.Unix_error ((Unix.ECONNREFUSED | Unix.ENOENT), _, _) ->
      (try Unix.close probe with _ -> ());
      (try Unix.unlink path with Unix.Unix_error _ -> ())
    | exception e ->
      (try Unix.close probe with _ -> ());
      raise e)

let start ?(engine_config = Engine.Config.default) ~socket () =
  claim_socket socket;
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (match Unix.bind fd (Unix.ADDR_UNIX socket) with
  | () -> ()
  | exception e ->
    (try Unix.close fd with _ -> ());
    raise e);
  Unix.listen fd 64;
  { engine = Engine.create engine_config; socket_path = socket;
    listen_fd = fd; dmu = Mutex.create (); running = true }

let stop t =
  Mutex.lock t.dmu;
  let was_running = t.running in
  t.running <- false;
  Mutex.unlock t.dmu;
  if was_running then begin
    (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
    Engine.stop t.engine;
    (try Unix.unlink t.socket_path with Unix.Unix_error _ -> ())
  end

let alive t =
  Mutex.lock t.dmu;
  let r = t.running in
  Mutex.unlock t.dmu;
  r

let bad_frame_reply msg =
  { P.id = ""; queue_ms = 0.0; service_ms = 0.0; batched = 1;
    body = P.Failed_reply msg }

let handle_conn t fd =
  let wmu = Mutex.create () in
  let write reply =
    Mutex.lock wmu;
    (try P.write_frame fd (P.reply_to_json reply) with _ -> ());
    Mutex.unlock wmu
  in
  let rec loop () =
    match P.read_frame fd with
    | exception P.Closed -> ()
    | exception _ -> ()
    | Error msg ->
      (* The frame itself was well-delimited, only its payload was
         unusable — keep the connection. *)
      write (bad_frame_reply ("bad frame: " ^ msg));
      loop ()
    | Ok json -> (
      match P.request_of_json json with
      | Error msg ->
        write (bad_frame_reply ("bad request: " ^ msg));
        loop ()
      | Ok req ->
        let h = Engine.submit t.engine req in
        (match req.P.body with
        | P.Shutdown ->
          write (Engine.await h);
          stop t
          (* stop reading: the peer got its Bye *)
        | _ ->
          ignore (Thread.create (fun () -> write (Engine.await h)) ());
          loop ()))
  in
  (try loop () with _ -> ());
  try Unix.close fd with _ -> ()

(* Poll rather than block in [accept]: closing a descriptor does not
   wake a thread already blocked on it, so a blocking accept would leave
   {!stop} unable to terminate the loop.  The 200 ms poll bounds
   shutdown latency instead. *)
let run t =
  let rec loop () =
    if alive t then
      match Unix.select [ t.listen_fd ] [] [] 0.2 with
      | [], _, _ -> loop ()
      | _ -> (
        match Unix.accept t.listen_fd with
        | conn_fd, _ ->
          ignore (Thread.create (fun () -> handle_conn t conn_fd) ());
          loop ()
        | exception Unix.Unix_error _ -> loop ()
        | exception Invalid_argument _ -> ())
      | exception Unix.Unix_error _ -> if alive t then loop ()
      | exception Invalid_argument _ -> ()  (* listener closed under us *)
  in
  loop ()
