(** The [dvsd] service core, socket-free: a warm model store, a bounded
    admission queue, a pool of worker domains, per-request wall-clock
    budgets mapped onto the degradation ladder, near-duplicate batching,
    and an idempotent reply cache.  {!Daemon} puts a Unix-socket front
    end on it; tests and the bench harness drive it in-process.

    {b Admission control.}  The queue is bounded ([Config.queue_depth]):
    a submit against a full queue returns a typed
    {!Protocol.reply_body.Rejected_overloaded} immediately instead of
    buffering without bound — under overload the daemon sheds load and
    stays responsive rather than building unbounded latency.

    {b Budgets.}  Every request carries a wall-clock budget (server
    default when absent).  Time spent queueing is charged against it: at
    dequeue the remaining budget picks the ladder entry
    ({!Dvs_core.Pipeline.Resilience.for_budget}) and bounds the MILP
    solver's [time_limit], so a request that waited long sheds work to
    cheaper rungs instead of blowing its deadline; a request whose
    budget drained entirely gets a typed
    {!Protocol.reply_body.Rejected_budget} without a solve.

    {b Batching.}  Chaos-free optimize requests for the same (workload,
    input) whose deadlines sit within [Config.batch_window] of each
    other (relative) and that share a ladder entry are drained together
    and solved as one {!Dvs_core.Pipeline.optimize_sweep} over their
    distinct deadlines, then demuxed per caller.

    {b Crash containment.}  Request processing runs under a per-batch
    exception guard: a poisoned request (or an injected chaos poison)
    produces a typed [Failed_reply] for that batch only; the worker
    domain survives and keeps serving.

    {b Idempotency.}  Final replies are cached by request id (bounded
    FIFO): a retry of an already-served id returns the cached reply; a
    resubmit of an in-flight id attaches to the in-flight computation.
    [Overloaded] rejections are never cached.

    {b Determinism.}  Chaos faults are a pure function of
    [(chaos seed, request id)], and each request (at [batch_max = 1])
    is an independent deterministic pipeline run, so an identical
    seeded replay classifies every request the same at any worker
    count — held by the service test suite at workers=1 vs 4. *)

module Config : sig
  type t = {
    workers : int;  (** worker domains; default 2 *)
    queue_depth : int;  (** admission-queue bound; default 64 *)
    default_budget_s : float;
        (** budget for requests that carry none; default 2.0 *)
    batch_max : int;  (** max requests per batch; 1 disables; default 8 *)
    batch_window : float;
        (** relative deadline window for near-duplicate batching;
            default 0.05 *)
    reply_cache : int;  (** replies memoized by id; default 1024 *)
    solver_jobs : int;  (** MILP worker domains per request; default 1 *)
    max_nodes : int;  (** MILP node budget per solve; default 4000 *)
    capacitance : float;  (** regulator capacitance; default 0.4e-6 *)
    levels : int option;
        (** evenly spaced voltage levels instead of XScale-3 *)
    store_root : string option;
        (** experiment-store root: warm-model profiling consults the
            content-addressed store there, so a restarted daemon
            rehydrates its models from disk instead of re-simulating;
            [None] (the default) profiles live *)
    obs : Dvs_obs.t;
        (** service metrics report here; an enabled private registry is
            created when this is {!Dvs_obs.disabled} *)
  }

  val make :
    ?workers:int -> ?queue_depth:int -> ?default_budget_s:float ->
    ?batch_max:int -> ?batch_window:float -> ?reply_cache:int ->
    ?solver_jobs:int -> ?max_nodes:int -> ?capacitance:float ->
    ?levels:int -> ?store_root:string -> ?obs:Dvs_obs.t -> unit -> t
  (** Raises [Invalid_argument] on non-positive [workers], [queue_depth],
      [batch_max], [default_budget_s] or [solver_jobs]. *)

  val default : t
end

type t

val create : Config.t -> t
(** Starts the worker domains. *)

val obs : t -> Dvs_obs.t
(** The (always enabled) metrics registry the service reports into. *)

val warm : t -> (string * string option) list -> unit
(** Pre-build warm state (compile, profile, record a verification
    session) for the given (workload, input) pairs, so the first real
    request does not pay for it.  Unknown names raise [Not_found]. *)

type handle

val submit : t -> Protocol.request -> handle
(** Never blocks on solver work: control requests ([Ping]/[Stats]/
    [Shutdown]) and rejections resolve immediately; accepted work
    resolves when a worker completes it.  [Shutdown] flips the engine
    into draining mode — queued work still completes, later work is
    refused. *)

val await : handle -> Protocol.reply
(** Blocks until the reply is available. *)

val queue_len : t -> int

val draining : t -> bool

val stop : t -> unit
(** Drain the queue, reply to everything still in flight, and join the
    worker domains.  Idempotent. *)

val metrics_snapshot :
  ?meta:(string * Dvs_obs.Json.t) list -> t -> Dvs_obs.Json.t
(** [dvs-metrics/v1] snapshot of {!obs}. *)
