(** Closed-loop traffic generator for [dvsd]: replay a seeded request
    stream against a live socket at a controlled offered rate and
    report the latency/shedding/savings picture.

    A leg pre-generates its whole request list from the seed (workload
    round-robin, deadline fractions drawn from {!Dvs_workloads.Rng}),
    paces arrivals by a seeded exponential interarrival process at
    [rate_hz], and serves them from a pool of [clients] connections —
    each connection synchronous, so concurrency is bounded and the
    generator applies backpressure like a real caller population.
    [Overloaded] rejections are retried with exponential backoff under
    the same request id ({!Client.request}), so the retry path exercises
    the daemon's idempotent reply cache.

    The same [(name, seed)] pair regenerates the identical request
    stream — including every per-request chaos draw, which the daemon
    derives from [(chaos seed, request id)] — so a chaos leg's outcome
    classification is replayable. *)

type leg = {
  name : string;
  requests : int;
  rate_hz : float;  (** aggregate offered arrival rate *)
  clients : int;  (** connection pool size (default 4) *)
  workloads : (string * string option) list;
      (** (workload, input) round-robin; default [[("adpcm", None)]] *)
  fracs : float list;
      (** deadline fractions drawn uniformly; default [[0.3; 0.5; 0.7]] *)
  budget_s : float option;  (** per-request budget; server default if [None] *)
  chaos : Protocol.chaos option;  (** attach to every request (chaos leg) *)
  seed : int;
  retries : int;  (** max Overloaded retries per request (default 5) *)
  backoff_s : float;  (** base backoff (default 0.02) *)
}

val leg :
  ?clients:int -> ?workloads:(string * string option) list ->
  ?fracs:float list -> ?budget_s:float -> ?chaos:Protocol.chaos ->
  ?seed:int -> ?retries:int -> ?backoff_s:float ->
  name:string -> requests:int -> rate_hz:float -> unit -> leg
(** Raises [Invalid_argument] on a non-positive [requests], [rate_hz]
    or [clients], or an empty [workloads]/[fracs]. *)

type stats = {
  leg_name : string;
  sent : int;
  classes : (Protocol.outcome_class * int) list;
      (** final per-request classification (after retries), every class
          listed (zero counts included), protocol order *)
  mean_ms : float;
  p50_ms : float;
  p90_ms : float;
  p99_ms : float;  (** client-observed wall latency incl. backoff *)
  shed_rate : float;
      (** requests still [Overloaded] after retries / sent *)
  retries_used : int;  (** total backoff retries across the leg *)
  batched_fraction : float;  (** served in a batch of >= 2 / sent *)
  savings_mean_pct : float option;
      (** mean reported savings over scheduled replies *)
  wall_s : float;
}

val run : socket:string -> leg -> stats

val class_count : stats -> Protocol.outcome_class -> int

val to_json : stats -> Dvs_obs.Json.t
(** The [dvs-service/v1] report
    ({!Dvs_obs.Schema.validate_service}). *)

val pp : Format.formatter -> stats -> unit
