module P = Protocol
module Json = Dvs_obs.Json
module Rng = Dvs_workloads.Rng

type leg = {
  name : string;
  requests : int;
  rate_hz : float;
  clients : int;
  workloads : (string * string option) list;
  fracs : float list;
  budget_s : float option;
  chaos : P.chaos option;
  seed : int;
  retries : int;
  backoff_s : float;
}

let leg ?(clients = 4) ?(workloads = [ ("adpcm", None) ])
    ?(fracs = [ 0.3; 0.5; 0.7 ]) ?budget_s ?chaos ?(seed = 42) ?(retries = 5)
    ?(backoff_s = 0.02) ~name ~requests ~rate_hz () =
  if requests < 1 then invalid_arg "Loadgen.leg: requests must be >= 1";
  if not (rate_hz > 0.0) then invalid_arg "Loadgen.leg: rate_hz must be > 0";
  if clients < 1 then invalid_arg "Loadgen.leg: clients must be >= 1";
  if workloads = [] then invalid_arg "Loadgen.leg: workloads must be non-empty";
  if fracs = [] then invalid_arg "Loadgen.leg: fracs must be non-empty";
  { name; requests; rate_hz; clients; workloads; fracs; budget_s; chaos;
    seed; retries; backoff_s }

type outcome = {
  latency_ms : float;
  cls : P.outcome_class;
  batched : int;
  savings : float option;
  retried : int;
}

type stats = {
  leg_name : string;
  sent : int;
  classes : (P.outcome_class * int) list;
  mean_ms : float;
  p50_ms : float;
  p90_ms : float;
  p99_ms : float;
  shed_rate : float;
  retries_used : int;
  batched_fraction : float;
  savings_mean_pct : float option;
  wall_s : float;
}

let class_count s cls =
  match List.assoc_opt cls s.classes with Some n -> n | None -> 0

let percentile sorted q =
  let n = Array.length sorted in
  if n = 0 then 0.0
  else
    let i = int_of_float (Float.ceil (q *. float_of_int n)) - 1 in
    sorted.(Int.max 0 (Int.min (n - 1) i))

let run ~socket (l : leg) =
  let n = l.requests in
  (* Pre-generate the whole stream from the seed, in index order, so the
     same (name, seed) regenerates the identical ids, fractions and
     arrival schedule. *)
  let rng = Rng.create l.seed in
  let wl = Array.of_list l.workloads in
  let fr = Array.of_list l.fracs in
  let reqs = Array.make n { P.id = ""; body = P.Ping } in
  for k = 0 to n - 1 do
    let workload, input = wl.(k mod Array.length wl) in
    let frac = fr.(Rng.int rng (Array.length fr)) in
    reqs.(k) <-
      { P.id = Printf.sprintf "%s-%05d" l.name k;
        body =
          P.Optimize
            { workload; input; deadline_frac = frac; budget_s = l.budget_s;
              chaos = l.chaos } }
  done;
  let arrivals = Array.make n 0.0 in
  let t_acc = ref 0.0 in
  for k = 0 to n - 1 do
    let u = (float_of_int (Rng.int rng 1_000_000) +. 1.0) /. 1_000_001.0 in
    t_acc := !t_acc -. (Float.log u /. l.rate_hz);
    arrivals.(k) <- !t_acc
  done;
  let results = Array.make n None in
  let next = ref 0 in
  let mu = Mutex.create () in
  let start = Unix.gettimeofday () in
  let worker () =
    let c = Client.connect ~socket in
    let rec go () =
      Mutex.lock mu;
      let k = !next in
      if k >= n then Mutex.unlock mu
      else begin
        incr next;
        Mutex.unlock mu;
        let due = start +. arrivals.(k) in
        let now = Unix.gettimeofday () in
        if due > now then Thread.delay (due -. now);
        let t0 = Unix.gettimeofday () in
        let reply, retried =
          Client.request ~retries:l.retries ~backoff_s:l.backoff_s c reqs.(k)
        in
        let latency_ms = (Unix.gettimeofday () -. t0) *. 1e3 in
        let savings =
          match reply.P.body with
          | P.Scheduled s -> s.P.savings_pct
          | _ -> None
        in
        results.(k) <-
          Some
            { latency_ms; cls = P.class_of_reply reply;
              batched = reply.P.batched; savings; retried };
        go ()
      end
    in
    go ();
    Client.close c
  in
  let threads = List.init l.clients (fun _ -> Thread.create worker ()) in
  List.iter Thread.join threads;
  let wall_s = Unix.gettimeofday () -. start in
  let outs = Array.to_list results |> List.filter_map Fun.id in
  let sent = List.length outs in
  let lat =
    List.map (fun o -> o.latency_ms) outs
    |> List.sort compare |> Array.of_list
  in
  let mean_ms =
    if sent = 0 then 0.0
    else List.fold_left (fun a o -> a +. o.latency_ms) 0.0 outs /. float_of_int sent
  in
  let classes =
    List.map
      (fun c -> (c, List.length (List.filter (fun o -> o.cls = c) outs)))
      P.all_classes
  in
  let count cls = match List.assoc_opt cls classes with Some k -> k | None -> 0 in
  let frac_of k = if sent = 0 then 0.0 else float_of_int k /. float_of_int sent in
  let savings_vals = List.filter_map (fun o -> o.savings) outs in
  { leg_name = l.name; sent; classes; mean_ms;
    p50_ms = percentile lat 0.5; p90_ms = percentile lat 0.9;
    p99_ms = percentile lat 0.99; shed_rate = frac_of (count P.Overloaded);
    retries_used = List.fold_left (fun a o -> a + o.retried) 0 outs;
    batched_fraction =
      frac_of (List.length (List.filter (fun o -> o.batched >= 2) outs));
    savings_mean_pct =
      (match savings_vals with
      | [] -> None
      | vs ->
        Some (List.fold_left ( +. ) 0.0 vs /. float_of_int (List.length vs)));
    wall_s }

let to_json s =
  Json.Obj
    [ ("schema", Json.String "dvs-service/v1");
      ("leg", Json.String s.leg_name);
      ("requests", Json.Int s.sent);
      ( "classes",
        Json.Obj
          (List.map
             (fun (c, k) -> (P.class_name c, Json.Int k))
             s.classes) );
      ( "latency_ms",
        Json.Obj
          [ ("mean", Json.Float s.mean_ms); ("p50", Json.Float s.p50_ms);
            ("p90", Json.Float s.p90_ms); ("p99", Json.Float s.p99_ms) ] );
      ("shed_rate", Json.Float s.shed_rate);
      ("retries", Json.Int s.retries_used);
      ("batched_fraction", Json.Float s.batched_fraction);
      ( "savings_pct_mean",
        match s.savings_mean_pct with
        | Some v -> Json.Float v
        | None -> Json.Null );
      ("wall_seconds", Json.Float s.wall_s) ]

let pp ppf s =
  Format.fprintf ppf
    "@[<v>leg %s: %d requests in %.2fs@,\
     latency ms: mean %.1f p50 %.1f p90 %.1f p99 %.1f@,\
     shed rate %.3f (%d retries), batched %.0f%%%s@,"
    s.leg_name s.sent s.wall_s s.mean_ms s.p50_ms s.p90_ms s.p99_ms
    s.shed_rate s.retries_used
    (100.0 *. s.batched_fraction)
    (match s.savings_mean_pct with
    | Some v -> Printf.sprintf ", mean savings %.1f%%" v
    | None -> "");
  List.iter
    (fun (c, k) ->
      if k > 0 then Format.fprintf ppf "  %-18s %d@," (P.class_name c) k)
    s.classes;
  Format.fprintf ppf "@]"
