module P = Protocol
module Metrics = Dvs_obs.Metrics
module Pipeline = Dvs_core.Pipeline
module Verify = Dvs_core.Verify
module Workload = Dvs_workloads.Workload

exception Poisoned of string
(* A chaos-injected service-level failure: raised inside a worker on
   purpose so the containment guard (not the solver's) is what saves the
   pool. *)

module Config = struct
  type t = {
    workers : int;
    queue_depth : int;
    default_budget_s : float;
    batch_max : int;
    batch_window : float;
    reply_cache : int;
    solver_jobs : int;
    max_nodes : int;
    capacitance : float;
    levels : int option;
    store_root : string option;
    obs : Dvs_obs.t;
  }

  let make ?(workers = 2) ?(queue_depth = 64) ?(default_budget_s = 2.0)
      ?(batch_max = 8) ?(batch_window = 0.05) ?(reply_cache = 1024)
      ?(solver_jobs = 1) ?(max_nodes = 4000) ?(capacitance = 0.4e-6) ?levels
      ?store_root ?(obs = Dvs_obs.disabled) () =
    if workers < 1 then invalid_arg "Engine.Config: workers must be >= 1";
    if queue_depth < 1 then
      invalid_arg "Engine.Config: queue_depth must be >= 1";
    if batch_max < 1 then invalid_arg "Engine.Config: batch_max must be >= 1";
    if not (default_budget_s > 0.0) then
      invalid_arg "Engine.Config: default_budget_s must be > 0";
    if solver_jobs < 1 then
      invalid_arg "Engine.Config: solver_jobs must be >= 1";
    { workers; queue_depth; default_budget_s; batch_max; batch_window;
      reply_cache; solver_jobs; max_nodes; capacitance; levels; store_root;
      obs }

  let default = make ()
end

(* ---- warm model store ------------------------------------------------ *)

type model = {
  machine : Dvs_machine.Config.t;
  prog : Dvs_ir.Cfg.t;
  mem : int array;
  profile : Dvs_profile.Profile.t;
  session : Verify.Session.t;
  t_fast : float;
  t_slow : float;
}

(* ---- plumbing -------------------------------------------------------- *)

type ivar = {
  mutable value : P.reply option;
  imu : Mutex.t;
  icond : Condition.t;
}

let ivar () =
  { value = None; imu = Mutex.create (); icond = Condition.create () }

let resolve iv reply =
  Mutex.lock iv.imu;
  (match iv.value with None -> iv.value <- Some reply | Some _ -> ());
  Condition.broadcast iv.icond;
  Mutex.unlock iv.imu

let resolved iv = match iv.value with None -> false | Some _ -> true

let ivar_get iv =
  Mutex.lock iv.imu;
  let rec wait () =
    match iv.value with
    | Some r -> r
    | None ->
      Condition.wait iv.icond iv.imu;
      wait ()
  in
  let r = wait () in
  Mutex.unlock iv.imu;
  r

type handle = Now of P.reply | Later of ivar

type job = {
  req : P.request;
  budget : float;
  submitted : float;  (* Unix.gettimeofday at admission *)
  iv : ivar;
}

type t = {
  cfg : Config.t;
  obs : Dvs_obs.t;
  store : Dvs_store.Store.t option;
  lp_cache : Dvs_milp.Lp_cache.t;
  mu : Mutex.t;  (* guards queue, inflight, replies, flags *)
  nonempty : Condition.t;
  queue : job Queue.t;
  mutable stopping : bool;  (* stop: drain and join the pool *)
  mutable draining : bool;  (* shutdown seen: refuse new work *)
  mutable domains : unit Domain.t list;
  models_mu : Mutex.t;
  models : (string * string, model) Hashtbl.t;
  inflight : (string, ivar) Hashtbl.t;
  replies : (string, P.reply) Hashtbl.t;
  reply_order : string Queue.t;  (* FIFO eviction for [replies] *)
  c_requests : Metrics.Counter.t;
  c_accepted : Metrics.Counter.t;
  c_shed : Metrics.Counter.t;
  c_completed : Metrics.Counter.t;
  c_rejected_budget : Metrics.Counter.t;
  c_failed : Metrics.Counter.t;
  c_cache_replies : Metrics.Counter.t;
  c_batches : Metrics.Counter.t;
  c_batch_requests : Metrics.Counter.t;
  g_queue : Metrics.Gauge.t;
  h_queue_s : Metrics.Histogram.t;
  h_latency_s : Metrics.Histogram.t;
  h_savings : Metrics.Histogram.t;
}

let obs t = t.obs

let metrics_snapshot ?meta t =
  Metrics.snapshot ?meta (Dvs_obs.metrics t.obs)

let class_counter t cls =
  Metrics.counter (Dvs_obs.metrics t.obs) ~stability:Metrics.Volatile
    ("service.class." ^ P.class_name cls)

(* ---- warm store ------------------------------------------------------ *)

let machine_config (cfg : Config.t) =
  let mode_table =
    match cfg.levels with
    | None -> Dvs_power.Mode.xscale3
    | Some n ->
      Dvs_power.Mode.levels
        ~v_lo:
          (Dvs_power.Alpha_power.voltage Dvs_power.Alpha_power.default 200e6)
        ~v_hi:1.65 n
  in
  Workload.eval_config ~mode_table
    ~regulator:(Dvs_power.Switch_cost.regulator ~capacitance:cfg.capacitance ())
    ()

(* Compile + profile + record the verification session once per
   (workload, input); raises [Not_found] on an unknown workload name. *)
let model_for t ~workload ~input =
  let w = Workload.find workload in
  let input =
    match input with Some i -> i | None -> Workload.default_input w
  in
  let key = (workload, input) in
  Mutex.lock t.models_mu;
  let m =
    match Hashtbl.find_opt t.models key with
    | Some m -> m
    | None -> (
      match
        let machine = machine_config t.cfg in
        let prog, _, mem = Workload.load w ~input in
        (* Profiling is one pinned simulation per mode — the expensive
           part of warming a model.  With a store configured, a daemon
           restart rehydrates it from disk instead (DESIGN.md section
           14). *)
        let profile =
          Dvs_store.Exec.profile ?store:t.store
            ~source:(workload ^ ":" ^ input) machine prog ~memory:mem
        in
        let session = Verify.Session.create machine prog ~memory:mem in
        let n = Dvs_power.Mode.size machine.Dvs_machine.Config.mode_table in
        let t_fast = Dvs_profile.Profile.pinned_time profile ~mode:(n - 1) in
        let t_slow = Dvs_profile.Profile.pinned_time profile ~mode:0 in
        { machine; prog; mem; profile; session; t_fast; t_slow }
      with
      | m ->
        Hashtbl.replace t.models key m;
        m
      | exception e ->
        Mutex.unlock t.models_mu;
        raise e)
  in
  Mutex.unlock t.models_mu;
  m

let warm t pairs =
  List.iter
    (fun (workload, input) -> ignore (model_for t ~workload ~input))
    pairs

(* ---- chaos ----------------------------------------------------------- *)

(* The fault draw is a pure function of (chaos spec, request id): same
   request, same faults, whatever worker picks it up and in whatever
   order — this is what makes the seeded chaos legs replayable at any
   worker count. *)
let eval_chaos (c : P.chaos option) ~id =
  match c with
  | None -> (false, false, false)
  | Some c ->
    let rng =
      Dvs_workloads.Rng.create (c.P.chaos_seed lxor Hashtbl.hash id)
    in
    let draw rate =
      rate > 0.0
      && (rate >= 1.0
         || Dvs_workloads.Rng.int rng 1_000_000
            < int_of_float (rate *. 1_000_000.0))
    in
    let crash = draw c.P.crash_rate in
    let exhaust = draw c.P.exhaust_rate in
    let poison = draw c.P.poison_rate in
    (crash, exhaust, poison)

let fault_for ~crash ~exhaust =
  if crash || exhaust then
    Some
      (Dvs_milp.Fault.make
         ?crash_at_nodes:(if crash then Some [ 1 ] else None)
         ?exhaust_pivots_every:(if exhaust then Some 1 else None)
         ())
  else None

(* ---- reply bookkeeping ----------------------------------------------- *)

let cache_reply t (reply : P.reply) =
  if not (Hashtbl.mem t.replies reply.P.id) then begin
    Hashtbl.replace t.replies reply.P.id reply;
    Queue.push reply.P.id t.reply_order;
    while Hashtbl.length t.replies > t.cfg.Config.reply_cache do
      Hashtbl.remove t.replies (Queue.pop t.reply_order)
    done
  end

(* Final accounting for an accepted job: memoize the reply for retries,
   release the in-flight slot, bump the class/latency metrics, wake the
   waiter.  [Overloaded] never reaches here (shed at admission). *)
let finish t ~slot job (reply : P.reply) =
  Mutex.lock t.mu;
  Hashtbl.remove t.inflight job.req.P.id;
  cache_reply t reply;
  Mutex.unlock t.mu;
  Metrics.Counter.incr (class_counter t (P.class_of_reply reply)) ~slot;
  (match reply.P.body with
  | P.Rejected_budget _ -> Metrics.Counter.incr t.c_rejected_budget ~slot
  | P.Failed_reply _ -> Metrics.Counter.incr t.c_failed ~slot
  | _ -> Metrics.Counter.incr t.c_completed ~slot);
  Metrics.Histogram.observe t.h_queue_s (reply.P.queue_ms /. 1e3);
  Metrics.Histogram.observe t.h_latency_s
    ((reply.P.queue_ms +. reply.P.service_ms) /. 1e3);
  resolve job.iv reply

let reply_of job ~queue_ms ~service_ms ~batched body =
  { P.id = job.req.P.id; queue_ms; service_ms; batched; body }

(* ---- solving --------------------------------------------------------- *)

let solver_config t ~time_limit ~fault =
  let c =
    Dvs_milp.Solver.Config.make ~jobs:t.cfg.Config.solver_jobs
      ~max_nodes:t.cfg.Config.max_nodes ~time_limit ~cache:t.lp_cache
      ~obs:t.obs ()
  in
  match fault with
  | Some f -> Dvs_milp.Solver.Config.with_fault f c
  | None -> c

(* Map the remaining wall-clock budget onto the degradation ladder and
   remember whether that lowered the policy: a Time_degraded result whose
   descent was forced by the caller's budget (rather than a solver limit)
   is reported as Budget_degraded. *)
let policy_for ~budget ~remaining =
  let def = Pipeline.Resilience.default in
  let pol = Pipeline.Resilience.for_budget ~budget ~remaining def in
  let forced =
    pol.Pipeline.Resilience.entry <> Pipeline.Resilience.From_milp
    || pol.Pipeline.Resilience.max_retries
       <> def.Pipeline.Resilience.max_retries
  in
  (pol, forced)

let deadline_of model ~frac =
  model.t_fast +. (frac *. (model.t_slow -. model.t_fast))

let summarize t ~budget_forced model ~deadline (r : Pipeline.result) =
  let cls0 = P.class_of_pipeline (Pipeline.classify r) in
  let cls =
    match cls0 with
    | P.Time_degraded when budget_forced -> P.Budget_degraded
    | c -> c
  in
  let rung =
    Option.map (Format.asprintf "%a" Pipeline.pp_rung) r.Pipeline.rung
  in
  let predicted_uj =
    Option.map (fun e -> e *. 1e6) r.Pipeline.predicted_energy
  in
  let v = r.Pipeline.verification in
  let measured_j =
    Option.map
      (fun (v : Verify.report) -> v.Verify.stats.Dvs_machine.Cpu.energy)
      v
  in
  let measured_uj = Option.map (fun e -> e *. 1e6) measured_j in
  let measured_ms =
    Option.map
      (fun (v : Verify.report) ->
        v.Verify.stats.Dvs_machine.Cpu.time *. 1e3)
      v
  in
  let meets_deadline =
    Option.map (fun (v : Verify.report) -> v.Verify.meets_deadline) v
  in
  let savings_pct =
    match Dvs_core.Baselines.best_single_mode model.profile ~deadline with
    | Some (_, base) when base > 0.0 -> (
      match
        (match measured_j with
        | Some e -> Some e
        | None -> r.Pipeline.predicted_energy)
      with
      | Some e ->
        let s = 100.0 *. (1.0 -. (e /. base)) in
        Metrics.Histogram.observe t.h_savings s;
        Some s
      | None -> None)
    | _ -> None
  in
  { P.cls; rung; deadline_ms = deadline *. 1e3; predicted_uj; measured_uj;
    measured_ms; meets_deadline; savings_pct }

let optimize_point t model ~frac ~budget ~remaining ~fault =
  let deadline = deadline_of model ~frac in
  let pol, budget_forced = policy_for ~budget ~remaining in
  let time_limit = Float.max 0.05 (0.6 *. remaining) in
  let solver = solver_config t ~time_limit ~fault in
  let config = Pipeline.Config.make ~solver ~resilience:pol () in
  let r =
    Pipeline.optimize_multi ~config ~verify_config:model.machine
      ~session:model.session
      ~regulator:model.machine.Dvs_machine.Config.regulator
      ~memory:model.mem
      [ { Dvs_core.Formulation.profile = model.profile; weight = 1.0;
          deadline } ]
  in
  summarize t ~budget_forced model ~deadline r

(* One sweep solve over distinct deadlines through the parametric engine
   (shared compiled form, cut pool, warm verification session). *)
let sweep_points t model ~fracs ~remaining =
  let deadlines =
    List.map (fun f -> deadline_of model ~frac:f) fracs
    |> List.sort_uniq compare |> Array.of_list
  in
  let time_limit = Float.max 0.05 (0.6 *. remaining) in
  let solver = solver_config t ~time_limit ~fault:None in
  let config = Pipeline.Config.make ~solver () in
  let sw =
    Pipeline.optimize_sweep ~config ~verify_config:model.machine
      ~profile:model.profile ~session:model.session model.machine model.prog
      ~memory:model.mem ~deadlines
  in
  let point frac =
    let d = deadline_of model ~frac in
    let i = ref 0 in
    Array.iteri (fun k dk -> if dk = d then i := k) deadlines;
    summarize t ~budget_forced:false model ~deadline:d
      sw.Pipeline.results.(!i)
  in
  point

(* ---- request processing ---------------------------------------------- *)

let fail_reply job ~queue_ms msg =
  reply_of job ~queue_ms ~service_ms:0.0 ~batched:1 (P.Failed_reply msg)

let run_single t ~slot job ~waited ~remaining =
  let t0 = Unix.gettimeofday () in
  let queue_ms = waited *. 1e3 in
  let done_ body =
    let service_ms = (Unix.gettimeofday () -. t0) *. 1e3 in
    finish t ~slot job (reply_of job ~queue_ms ~service_ms ~batched:1 body)
  in
  let with_model ~workload ~input k =
    match model_for t ~workload ~input with
    | m -> k m
    | exception Not_found ->
      done_ (P.Failed_reply (Printf.sprintf "unknown workload %S" workload))
  in
  match job.req.P.body with
  | P.Optimize { workload; input; deadline_frac; chaos; _ } ->
    with_model ~workload ~input (fun model ->
        let crash, exhaust, poison = eval_chaos chaos ~id:job.req.P.id in
        if poison then raise (Poisoned job.req.P.id);
        let fault = fault_for ~crash ~exhaust in
        let s =
          optimize_point t model ~frac:deadline_frac ~budget:job.budget
            ~remaining ~fault
        in
        done_ (P.Scheduled s))
  | P.Sweep { workload; input; fracs; chaos; _ } ->
    with_model ~workload ~input (fun model ->
        let crash, exhaust, poison = eval_chaos chaos ~id:job.req.P.id in
        if poison then raise (Poisoned job.req.P.id);
        let pol, _ = policy_for ~budget:job.budget ~remaining in
        let points =
          if
            crash || exhaust
            || pol.Pipeline.Resilience.entry <> Pipeline.Resilience.From_milp
          then
            (* Chaos or a drained budget: solve each point through the
               ladder on its own, with a fresh injector per point so the
               fault ordinals replay identically. *)
            List.map
              (fun frac ->
                optimize_point t model ~frac ~budget:job.budget ~remaining
                  ~fault:(fault_for ~crash ~exhaust))
              fracs
          else
            let point = sweep_points t model ~fracs ~remaining in
            List.map point fracs
        in
        done_ (P.Sweep_points points))
  | P.Simulate { workload; input; mode } ->
    with_model ~workload ~input (fun model ->
        let runs = model.profile.Dvs_profile.Profile.runs in
        if mode < 0 || mode >= Array.length runs then
          done_
            (P.Failed_reply
               (Printf.sprintf "mode %d out of range (table has %d modes)"
                  mode (Array.length runs)))
        else
          let st = runs.(mode) in
          done_
            (P.Scheduled
               { P.cls = P.Full; rung = None; deadline_ms = 0.0;
                 predicted_uj = None;
                 measured_uj = Some (st.Dvs_machine.Cpu.energy *. 1e6);
                 measured_ms = Some (st.Dvs_machine.Cpu.time *. 1e3);
                 meets_deadline = None; savings_pct = None }))
  | P.Ping | P.Stats | P.Shutdown ->
    (* Control requests are answered at submit and never enqueued. *)
    assert false

(* A batch: near-duplicate chaos-free optimize jobs for one model, solved
   as a single parametric sweep over their distinct deadlines and demuxed
   per caller. *)
let run_batch t ~slot live =
  let t0 = Unix.gettimeofday () in
  let n = List.length live in
  Metrics.Counter.incr t.c_batches ~slot;
  Metrics.Counter.add t.c_batch_requests ~slot n;
  let job0, _, _ = List.hd live in
  let workload, input, frac_of =
    match job0.req.P.body with
    | P.Optimize { workload; input; _ } ->
      ( workload, input,
        fun (j : job) ->
          match j.req.P.body with
          | P.Optimize { deadline_frac; _ } -> deadline_frac
          | _ -> assert false )
    | _ -> assert false
  in
  match model_for t ~workload ~input with
  | exception Not_found ->
    let msg = Printf.sprintf "unknown workload %S" workload in
    List.iter
      (fun (j, waited, _) ->
        finish t ~slot j (fail_reply j ~queue_ms:(waited *. 1e3) msg))
      live
  | model ->
    let min_remaining =
      List.fold_left (fun acc (_, _, r) -> Float.min acc r) infinity live
    in
    let fracs = List.map (fun (j, _, _) -> frac_of j) live in
    let point = sweep_points t model ~fracs ~remaining:min_remaining in
    let service_ms = (Unix.gettimeofday () -. t0) *. 1e3 in
    List.iter
      (fun (j, waited, _) ->
        finish t ~slot j
          (reply_of j ~queue_ms:(waited *. 1e3) ~service_ms ~batched:n
             (P.Scheduled (point (frac_of j)))))
      live

let process t ~slot batch =
  let now = Unix.gettimeofday () in
  let live =
    List.filter_map
      (fun job ->
        let waited = now -. job.submitted in
        let remaining = job.budget -. waited in
        if remaining <= 0.0 then begin
          finish t ~slot job
            (reply_of job ~queue_ms:(waited *. 1e3) ~service_ms:0.0
               ~batched:1
               (P.Rejected_budget { budget_s = job.budget; waited_s = waited }));
          None
        end
        else Some (job, waited, remaining))
      batch
  in
  let guarded f job =
    try f () with
    | Poisoned id ->
      finish t ~slot job
        (fail_reply job
           ~queue_ms:((now -. job.submitted) *. 1e3)
           (Printf.sprintf "poisoned request %S contained by the worker" id))
    | exn ->
      if not (resolved job.iv) then
        finish t ~slot job
          (fail_reply job
             ~queue_ms:((now -. job.submitted) *. 1e3)
             ("contained worker failure: " ^ Printexc.to_string exn))
  in
  match live with
  | [] -> ()
  | [ (job, waited, remaining) ] ->
    guarded (fun () -> run_single t ~slot job ~waited ~remaining) job
  | many ->
    (* Batches are only formed from chaos-free optimize jobs; solve them
       together when every member's budget still allows a full MILP
       entry, otherwise peel them off individually so each one descends
       its own ladder. *)
    let all_full =
      List.for_all
        (fun (j, _, r) -> not (snd (policy_for ~budget:j.budget ~remaining:r)))
        many
    in
    if all_full then (
      let job0, _, _ = List.hd many in
      try run_batch t ~slot many
      with exn ->
        let msg = "contained worker failure: " ^ Printexc.to_string exn in
        ignore job0;
        List.iter
          (fun (j, waited, _) ->
            if not (resolved j.iv) then
              finish t ~slot j (fail_reply j ~queue_ms:(waited *. 1e3) msg))
          many)
    else
      List.iter
        (fun (j, waited, remaining) ->
          guarded (fun () -> run_single t ~slot j ~waited ~remaining) j)
        many

(* ---- batching -------------------------------------------------------- *)

let batch_key (job : job) =
  match job.req.P.body with
  | P.Optimize { workload; input; deadline_frac; chaos; _ } ->
    let chaos_free =
      match chaos with
      | None -> true
      | Some c ->
        c.P.crash_rate = 0.0 && c.P.exhaust_rate = 0.0
        && c.P.poison_rate = 0.0
    in
    if chaos_free then Some (workload, input, deadline_frac) else None
  | _ -> None

(* Called under [t.mu]: greedily pull near-duplicates of [leader] out of
   the queue (same model, deadline fraction within [batch_window]),
   preserving the order of everything left behind. *)
let collect_batch t leader =
  match batch_key leader with
  | None -> [ leader ]
  | Some _ when t.cfg.Config.batch_max <= 1 -> [ leader ]
  | Some (w, i, f0) ->
    let rest = List.rev (Queue.fold (fun acc j -> j :: acc) [] t.queue) in
    Queue.clear t.queue;
    let taken = ref [ leader ] in
    let n = ref 1 in
    List.iter
      (fun j ->
        let matches =
          !n < t.cfg.Config.batch_max
          &&
          match batch_key j with
          | Some (w', i', f') ->
            w' = w && i' = i
            && Float.abs (f' -. f0) <= t.cfg.Config.batch_window
          | None -> false
        in
        if matches then begin
          taken := j :: !taken;
          incr n
        end
        else Queue.push j t.queue)
      rest;
    List.rev !taken

(* ---- worker pool ----------------------------------------------------- *)

let worker_loop t ~slot =
  let rec loop () =
    Mutex.lock t.mu;
    while Queue.is_empty t.queue && not t.stopping do
      Condition.wait t.nonempty t.mu
    done;
    if Queue.is_empty t.queue then Mutex.unlock t.mu (* stopping: drain done *)
    else begin
      let leader = Queue.pop t.queue in
      let batch = collect_batch t leader in
      Metrics.Gauge.set t.g_queue (float_of_int (Queue.length t.queue));
      Mutex.unlock t.mu;
      (* Last-resort containment: [process] guards per job, but nothing
         that escapes may kill the domain. *)
      (try process t ~slot batch
       with exn ->
         let msg = "contained worker failure: " ^ Printexc.to_string exn in
         List.iter
           (fun j ->
             if not (resolved j.iv) then
               finish t ~slot j (fail_reply j ~queue_ms:0.0 msg))
           batch);
      loop ()
    end
  in
  loop ()

(* ---- lifecycle ------------------------------------------------------- *)

let create (cfg : Config.t) =
  let obs =
    if Dvs_obs.enabled cfg.Config.obs then cfg.Config.obs
    else Dvs_obs.metrics_only ()
  in
  let m = Dvs_obs.metrics obs in
  let counter name = Metrics.counter m ~stability:Metrics.Volatile name in
  let store =
    Option.map
      (fun root -> Dvs_store.Store.open_ ~obs ~root ())
      cfg.Config.store_root
  in
  let t =
    { cfg; obs; store;
      lp_cache = Dvs_milp.Lp_cache.create ~max_entries:16384 ();
      mu = Mutex.create (); nonempty = Condition.create ();
      queue = Queue.create (); stopping = false; draining = false;
      domains = []; models_mu = Mutex.create (); models = Hashtbl.create 8;
      inflight = Hashtbl.create 64; replies = Hashtbl.create 256;
      reply_order = Queue.create ();
      c_requests = counter "service.requests";
      c_accepted = counter "service.accepted";
      c_shed = counter "service.shed";
      c_completed = counter "service.completed";
      c_rejected_budget = counter "service.rejected_budget";
      c_failed = counter "service.failed";
      c_cache_replies = counter "service.cache_replies";
      c_batches = counter "service.batches";
      c_batch_requests = counter "service.batch_requests";
      g_queue =
        Metrics.gauge m ~stability:Metrics.Volatile "service.queue_depth";
      h_queue_s =
        Metrics.histogram m ~stability:Metrics.Volatile
          "service.queue_seconds";
      h_latency_s =
        Metrics.histogram m ~stability:Metrics.Volatile
          "service.latency_seconds";
      h_savings =
        Metrics.histogram m ~stability:Metrics.Volatile "service.savings_pct";
    }
  in
  t.domains <-
    List.init cfg.Config.workers (fun w ->
        Domain.spawn (fun () -> worker_loop t ~slot:(w + 1)));
  t

let queue_len t =
  Mutex.lock t.mu;
  let n = Queue.length t.queue in
  Mutex.unlock t.mu;
  n

let draining t =
  Mutex.lock t.mu;
  let d = t.draining in
  Mutex.unlock t.mu;
  d

let control_reply (req : P.request) body =
  { P.id = req.P.id; queue_ms = 0.0; service_ms = 0.0; batched = 1; body }

let budget_of t (body : P.request_body) =
  let b =
    match body with
    | P.Optimize { budget_s; _ } | P.Sweep { budget_s; _ } -> budget_s
    | _ -> None
  in
  match b with
  | Some b when b > 0.0 -> b
  | _ -> t.cfg.Config.default_budget_s

let submit t (req : P.request) =
  let slot = 0 in
  match req.P.body with
  | P.Ping -> Now (control_reply req P.Pong)
  | P.Stats -> Now (control_reply req (P.Stats_reply (metrics_snapshot t)))
  | P.Shutdown ->
    Mutex.lock t.mu;
    t.draining <- true;
    Mutex.unlock t.mu;
    Now (control_reply req P.Bye)
  | P.Optimize _ | P.Sweep _ | P.Simulate _ ->
    Metrics.Counter.incr t.c_requests ~slot;
    Mutex.lock t.mu;
    (match Hashtbl.find_opt t.replies req.P.id with
    | Some r ->
      Mutex.unlock t.mu;
      Metrics.Counter.incr t.c_cache_replies ~slot;
      Now r
    | None -> (
      match Hashtbl.find_opt t.inflight req.P.id with
      | Some iv ->
        Mutex.unlock t.mu;
        Later iv
      | None ->
        if t.draining || t.stopping then begin
          Mutex.unlock t.mu;
          Metrics.Counter.incr t.c_failed ~slot;
          Now
            (control_reply req (P.Failed_reply "daemon is shutting down"))
        end
        else if Queue.length t.queue >= t.cfg.Config.queue_depth then begin
          let queue_len = Queue.length t.queue in
          Mutex.unlock t.mu;
          Metrics.Counter.incr t.c_shed ~slot;
          Metrics.Counter.incr (class_counter t P.Overloaded) ~slot;
          Now
            (control_reply req
               (P.Rejected_overloaded
                  { queue_len; queue_cap = t.cfg.Config.queue_depth }))
        end
        else begin
          let job =
            { req; budget = budget_of t req.P.body;
              submitted = Unix.gettimeofday (); iv = ivar () }
          in
          Queue.push job t.queue;
          Hashtbl.replace t.inflight req.P.id job.iv;
          Metrics.Gauge.set t.g_queue (float_of_int (Queue.length t.queue));
          Condition.signal t.nonempty;
          Mutex.unlock t.mu;
          Metrics.Counter.incr t.c_accepted ~slot;
          Later job.iv
        end))

let await = function Now r -> r | Later iv -> ivar_get iv

let stop t =
  Mutex.lock t.mu;
  t.stopping <- true;
  t.draining <- true;
  Condition.broadcast t.nonempty;
  let ds = t.domains in
  t.domains <- [];
  Mutex.unlock t.mu;
  List.iter Domain.join ds
