module Json = Dvs_obs.Json

let max_frame = 1 lsl 20

(* ---- chaos ----------------------------------------------------------- *)

type chaos = {
  crash_rate : float;
  exhaust_rate : float;
  poison_rate : float;
  chaos_seed : int;
}

let chaos ?(crash_rate = 0.0) ?(exhaust_rate = 0.0) ?(poison_rate = 0.0)
    ?(seed = 1) () =
  List.iter
    (fun (name, r) ->
      if not (r >= 0.0 && r <= 1.0) then
        invalid_arg
          (Printf.sprintf "Protocol.chaos: %s must be in [0, 1]" name))
    [ ("crash_rate", crash_rate); ("exhaust_rate", exhaust_rate);
      ("poison_rate", poison_rate) ];
  { crash_rate; exhaust_rate; poison_rate; chaos_seed = seed }

(* ---- requests -------------------------------------------------------- *)

type request_body =
  | Optimize of {
      workload : string;
      input : string option;
      deadline_frac : float;
      budget_s : float option;
      chaos : chaos option;
    }
  | Sweep of {
      workload : string;
      input : string option;
      fracs : float list;
      budget_s : float option;
      chaos : chaos option;
    }
  | Simulate of { workload : string; input : string option; mode : int }
  | Ping
  | Stats
  | Shutdown

type request = { id : string; body : request_body }

(* ---- classification -------------------------------------------------- *)

type outcome_class =
  | Full
  | Time_degraded
  | Crash_degraded
  | Verify_degraded
  | Budget_degraded
  | Infeasible
  | No_schedule
  | Overloaded
  | Budget_exhausted
  | Failed

let class_name = function
  | Full -> "full"
  | Time_degraded -> "time_degraded"
  | Crash_degraded -> "crash_degraded"
  | Verify_degraded -> "verify_degraded"
  | Budget_degraded -> "budget_degraded"
  | Infeasible -> "infeasible"
  | No_schedule -> "no_schedule"
  | Overloaded -> "overloaded"
  | Budget_exhausted -> "budget_exhausted"
  | Failed -> "failed"

let all_classes =
  [ Full; Time_degraded; Crash_degraded; Verify_degraded; Budget_degraded;
    Infeasible; No_schedule; Overloaded; Budget_exhausted; Failed ]

let class_of_name s =
  List.find_opt (fun c -> class_name c = s) all_classes

let class_of_pipeline = function
  | Dvs_core.Pipeline.Full -> Full
  | Dvs_core.Pipeline.Time_degraded -> Time_degraded
  | Dvs_core.Pipeline.Crash_degraded -> Crash_degraded
  | Dvs_core.Pipeline.Verify_degraded -> Verify_degraded
  | Dvs_core.Pipeline.Problem_infeasible -> Infeasible
  | Dvs_core.Pipeline.No_schedule -> No_schedule

(* The PR 2 table (0/1/2, strict 3/4/5) extended with the service
   classes: 6 = strict budget-degraded (a schedule was delivered, just
   from a cheaper rung), and the hard failures 7/8/9 that never map to
   success because no schedule was delivered at all. *)
let exit_code ~strict = function
  | Full -> 0
  | Infeasible -> 1
  | No_schedule -> 2
  | Time_degraded -> if strict then 3 else 0
  | Crash_degraded -> if strict then 4 else 0
  | Verify_degraded -> if strict then 5 else 0
  | Budget_degraded -> if strict then 6 else 0
  | Overloaded -> 7
  | Budget_exhausted -> 8
  | Failed -> 9

(* Severity order for summarizing a sweep reply by its worst point. *)
let class_rank = function
  | Full -> 0
  | Time_degraded -> 1
  | Verify_degraded -> 2
  | Crash_degraded -> 3
  | Budget_degraded -> 4
  | Infeasible -> 5
  | No_schedule -> 6
  | Budget_exhausted -> 7
  | Overloaded -> 8
  | Failed -> 9

(* ---- replies --------------------------------------------------------- *)

type sched_summary = {
  cls : outcome_class;
  rung : string option;
  deadline_ms : float;
  predicted_uj : float option;
  measured_uj : float option;
  measured_ms : float option;
  meets_deadline : bool option;
  savings_pct : float option;
}

type reply_body =
  | Scheduled of sched_summary
  | Sweep_points of sched_summary list
  | Rejected_overloaded of { queue_len : int; queue_cap : int }
  | Rejected_budget of { budget_s : float; waited_s : float }
  | Failed_reply of string
  | Pong
  | Stats_reply of Json.t
  | Bye

type reply = {
  id : string;
  queue_ms : float;
  service_ms : float;
  batched : int;
  body : reply_body;
}

let class_of_reply r =
  match r.body with
  | Scheduled s -> s.cls
  | Sweep_points ps ->
    List.fold_left
      (fun worst (p : sched_summary) ->
        if class_rank p.cls > class_rank worst then p.cls else worst)
      Full ps
  | Rejected_overloaded _ -> Overloaded
  | Rejected_budget _ -> Budget_exhausted
  | Failed_reply _ -> Failed
  | Pong | Stats_reply _ | Bye -> Full

(* ---- JSON ------------------------------------------------------------ *)

let opt k enc = function None -> [] | Some v -> [ (k, enc v) ]

let chaos_to_json c =
  Json.Obj
    [ ("crash_rate", Json.Float c.crash_rate);
      ("exhaust_rate", Json.Float c.exhaust_rate);
      ("poison_rate", Json.Float c.poison_rate);
      ("seed", Json.Int c.chaos_seed) ]

let chaos_of_json j =
  let f k d = Option.value ~default:d (Option.bind (Json.member k j) Json.to_float) in
  let seed = Option.value ~default:1 (Option.bind (Json.member "seed" j) Json.to_int) in
  match
    chaos ~crash_rate:(f "crash_rate" 0.0) ~exhaust_rate:(f "exhaust_rate" 0.0)
      ~poison_rate:(f "poison_rate" 0.0) ~seed ()
  with
  | c -> Ok c
  | exception Invalid_argument m -> Error m

let request_to_json ({ id; body } : request) =
  let base op rest = Json.Obj (("id", Json.String id) :: ("op", Json.String op) :: rest) in
  match body with
  | Optimize { workload; input; deadline_frac; budget_s; chaos } ->
    base "optimize"
      ([ ("workload", Json.String workload) ]
      @ opt "input" (fun s -> Json.String s) input
      @ [ ("deadline_frac", Json.Float deadline_frac) ]
      @ opt "budget_s" (fun b -> Json.Float b) budget_s
      @ opt "chaos" chaos_to_json chaos)
  | Sweep { workload; input; fracs; budget_s; chaos } ->
    base "sweep"
      ([ ("workload", Json.String workload) ]
      @ opt "input" (fun s -> Json.String s) input
      @ [ ("fracs", Json.List (List.map (fun f -> Json.Float f) fracs)) ]
      @ opt "budget_s" (fun b -> Json.Float b) budget_s
      @ opt "chaos" chaos_to_json chaos)
  | Simulate { workload; input; mode } ->
    base "simulate"
      ([ ("workload", Json.String workload) ]
      @ opt "input" (fun s -> Json.String s) input
      @ [ ("mode", Json.Int mode) ])
  | Ping -> base "ping" []
  | Stats -> base "stats" []
  | Shutdown -> base "shutdown" []

let ( let* ) = Result.bind

let need_string j k =
  match Option.bind (Json.member k j) Json.to_string_opt with
  | Some s -> Ok s
  | None -> Error (Printf.sprintf "missing string field %S" k)

let opt_string j k = Option.bind (Json.member k j) Json.to_string_opt

let request_of_json j =
  let* id = need_string j "id" in
  let* op = need_string j "op" in
  let budget_s = Option.bind (Json.member "budget_s" j) Json.to_float in
  let* chaos =
    match Json.member "chaos" j with
    | None -> Ok None
    | Some cj -> Result.map Option.some (chaos_of_json cj)
  in
  let input = opt_string j "input" in
  match op with
  | "optimize" ->
    let* workload = need_string j "workload" in
    (match Option.bind (Json.member "deadline_frac" j) Json.to_float with
    | Some f when f >= 0.0 && f <= 1.0 ->
      Ok { id; body = Optimize { workload; input; deadline_frac = f; budget_s; chaos } }
    | Some _ -> Error "deadline_frac must be in [0, 1]"
    | None -> Error "missing number field \"deadline_frac\"")
  | "sweep" ->
    let* workload = need_string j "workload" in
    (match Option.bind (Json.member "fracs" j) Json.to_list with
    | Some l ->
      let fracs = List.filter_map Json.to_float l in
      if List.length fracs <> List.length l || fracs = [] then
        Error "fracs must be a non-empty list of numbers"
      else if List.exists (fun f -> f < 0.0 || f > 1.0) fracs then
        Error "fracs must lie in [0, 1]"
      else Ok { id; body = Sweep { workload; input; fracs; budget_s; chaos } }
    | None -> Error "missing list field \"fracs\"")
  | "simulate" ->
    let* workload = need_string j "workload" in
    (match Option.bind (Json.member "mode" j) Json.to_int with
    | Some mode when mode >= 0 ->
      Ok { id; body = Simulate { workload; input; mode } }
    | Some _ -> Error "mode must be >= 0"
    | None -> Error "missing integer field \"mode\"")
  | "ping" -> Ok { id; body = Ping }
  | "stats" -> Ok { id; body = Stats }
  | "shutdown" -> Ok { id; body = Shutdown }
  | op -> Error (Printf.sprintf "unknown op %S" op)

let summary_to_json (s : sched_summary) =
  Json.Obj
    ([ ("class", Json.String (class_name s.cls)) ]
    @ opt "rung" (fun r -> Json.String r) s.rung
    @ [ ("deadline_ms", Json.Float s.deadline_ms) ]
    @ opt "predicted_uj" (fun v -> Json.Float v) s.predicted_uj
    @ opt "measured_uj" (fun v -> Json.Float v) s.measured_uj
    @ opt "measured_ms" (fun v -> Json.Float v) s.measured_ms
    @ opt "meets_deadline" (fun b -> Json.Bool b) s.meets_deadline
    @ opt "savings_pct" (fun v -> Json.Float v) s.savings_pct)

let summary_of_json j =
  let* cls_s = need_string j "class" in
  let* cls =
    match class_of_name cls_s with
    | Some c -> Ok c
    | None -> Error (Printf.sprintf "unknown class %S" cls_s)
  in
  match Option.bind (Json.member "deadline_ms" j) Json.to_float with
  | None -> Error "missing number field \"deadline_ms\""
  | Some deadline_ms ->
    let f k = Option.bind (Json.member k j) Json.to_float in
    let b k =
      match Json.member k j with Some (Json.Bool v) -> Some v | _ -> None
    in
    Ok
      { cls; rung = opt_string j "rung"; deadline_ms;
        predicted_uj = f "predicted_uj"; measured_uj = f "measured_uj";
        measured_ms = f "measured_ms"; meets_deadline = b "meets_deadline";
        savings_pct = f "savings_pct" }

let reply_to_json (r : reply) =
  let base status rest =
    Json.Obj
      (("id", Json.String r.id)
      :: ("status", Json.String status)
      :: ("queue_ms", Json.Float r.queue_ms)
      :: ("service_ms", Json.Float r.service_ms)
      :: ("batched", Json.Int r.batched)
      :: rest)
  in
  match r.body with
  | Scheduled s -> base "scheduled" [ ("summary", summary_to_json s) ]
  | Sweep_points ps ->
    base "sweep" [ ("points", Json.List (List.map summary_to_json ps)) ]
  | Rejected_overloaded { queue_len; queue_cap } ->
    base "rejected"
      [ ("class", Json.String (class_name Overloaded));
        ("queue_len", Json.Int queue_len); ("queue_cap", Json.Int queue_cap) ]
  | Rejected_budget { budget_s; waited_s } ->
    base "rejected"
      [ ("class", Json.String (class_name Budget_exhausted));
        ("budget_s", Json.Float budget_s); ("waited_s", Json.Float waited_s) ]
  | Failed_reply msg -> base "error" [ ("message", Json.String msg) ]
  | Pong -> base "pong" []
  | Stats_reply m -> base "stats" [ ("metrics", m) ]
  | Bye -> base "bye" []

let reply_of_json j =
  let* id = need_string j "id" in
  let* status = need_string j "status" in
  let f k d = Option.value ~default:d (Option.bind (Json.member k j) Json.to_float) in
  let i k d = Option.value ~default:d (Option.bind (Json.member k j) Json.to_int) in
  let queue_ms = f "queue_ms" 0.0
  and service_ms = f "service_ms" 0.0
  and batched = i "batched" 1 in
  let* body =
    match status with
    | "scheduled" -> (
      match Json.member "summary" j with
      | Some s -> Result.map (fun s -> Scheduled s) (summary_of_json s)
      | None -> Error "scheduled reply without summary")
    | "sweep" -> (
      match Option.bind (Json.member "points" j) Json.to_list with
      | Some l ->
        List.fold_left
          (fun acc p ->
            let* acc = acc in
            let* s = summary_of_json p in
            Ok (s :: acc))
          (Ok []) l
        |> Result.map (fun ps -> Sweep_points (List.rev ps))
      | None -> Error "sweep reply without points")
    | "rejected" -> (
      let* cls_s = need_string j "class" in
      match class_of_name cls_s with
      | Some Overloaded ->
        Ok (Rejected_overloaded { queue_len = i "queue_len" 0; queue_cap = i "queue_cap" 0 })
      | Some Budget_exhausted ->
        Ok (Rejected_budget { budget_s = f "budget_s" 0.0; waited_s = f "waited_s" 0.0 })
      | _ -> Error (Printf.sprintf "unknown rejection class %S" cls_s))
    | "error" ->
      let* m = need_string j "message" in
      Ok (Failed_reply m)
    | "pong" -> Ok Pong
    | "stats" -> (
      match Json.member "metrics" j with
      | Some m -> Ok (Stats_reply m)
      | None -> Error "stats reply without metrics")
    | "bye" -> Ok Bye
    | s -> Error (Printf.sprintf "unknown status %S" s)
  in
  Ok { id; queue_ms; service_ms; batched; body }

(* ---- framing --------------------------------------------------------- *)

exception Closed

let really_write fd bytes =
  let len = Bytes.length bytes in
  let rec go ofs =
    if ofs < len then
      let n = Unix.write fd bytes ofs (len - ofs) in
      go (ofs + n)
  in
  go 0

let really_read fd len =
  let buf = Bytes.create len in
  let rec go ofs =
    if ofs < len then begin
      let n = Unix.read fd buf ofs (len - ofs) in
      if n = 0 then raise Closed;
      go (ofs + n)
    end
  in
  go 0;
  buf

let write_frame fd json =
  let payload = Bytes.of_string (Json.to_string json) in
  let len = Bytes.length payload in
  if len > max_frame then
    invalid_arg "Protocol.write_frame: frame exceeds max_frame";
  let header = Bytes.create 4 in
  Bytes.set_uint8 header 0 ((len lsr 24) land 0xff);
  Bytes.set_uint8 header 1 ((len lsr 16) land 0xff);
  Bytes.set_uint8 header 2 ((len lsr 8) land 0xff);
  Bytes.set_uint8 header 3 (len land 0xff);
  really_write fd header;
  really_write fd payload

let read_frame fd =
  let header = really_read fd 4 in
  let len =
    (Bytes.get_uint8 header 0 lsl 24)
    lor (Bytes.get_uint8 header 1 lsl 16)
    lor (Bytes.get_uint8 header 2 lsl 8)
    lor Bytes.get_uint8 header 3
  in
  if len > max_frame then
    Error (Printf.sprintf "frame of %d bytes exceeds the %d-byte limit" len max_frame)
  else
    let payload = really_read fd len in
    Json.of_string (Bytes.to_string payload)
