open Dvs_ir
open Dvs_machine

type path = {
  pred : Cfg.label option;
  node : Cfg.label;
  succ : Cfg.label;
}

type t = {
  cfg : Cfg.t;
  config : Config.t;
  exec_count : int array;
  edge_count : int array;
  entry_count : int;
  paths : (path * int) list;
  total_time : float array array;
  total_energy : float array array;
  runs : Cpu.run_stats array;
}

let collect ?fuel config cfg ~memory =
  let n_modes = Dvs_power.Mode.size config.Config.mode_table in
  let n_blocks = Cfg.num_blocks cfg in
  let n_edges = Array.length (Cfg.edges cfg) in
  let exec_count = Array.make n_blocks 0 in
  let edge_count = Array.make n_edges 0 in
  let entry_count = ref 0 in
  let path_tbl : (path, int) Hashtbl.t = Hashtbl.create 64 in
  let total_time = Array.make_matrix n_modes n_blocks 0.0 in
  let total_energy = Array.make_matrix n_modes n_blocks 0.0 in
  let runs =
    Array.init n_modes (fun m ->
        (* Per-block attribution state for this pinned run. *)
        let last : (Cfg.label * float * float) option ref = ref None in
        (* Structural counting only once (mode 0): logical behavior is
           frequency-invariant (assumption 1), which the test-suite
           cross-checks. *)
        let count_structural = m = 0 in
        let prev_block : Cfg.label option ref = ref None in
        let prev_prev : Cfg.label option ref = ref None in
        let observer label ~via ~time ~energy =
          (match !last with
          | Some (j, t0, e0) ->
            total_time.(m).(j) <- total_time.(m).(j) +. (time -. t0);
            total_energy.(m).(j) <- total_energy.(m).(j) +. (energy -. e0)
          | None -> ());
          last := Some (label, time, energy);
          if count_structural then begin
            exec_count.(label) <- exec_count.(label) + 1;
            (match via with
            | Some src ->
              let idx = Cfg.edge_index cfg { Cfg.src; dst = label } in
              edge_count.(idx) <- edge_count.(idx) + 1
            | None -> incr entry_count);
            (match !prev_block with
            | Some i ->
              let p = { pred = !prev_prev; node = i; succ = label } in
              let cur = Option.value ~default:0 (Hashtbl.find_opt path_tbl p) in
              Hashtbl.replace path_tbl p (cur + 1)
            | None -> ());
            prev_prev := !prev_block;
            prev_block := Some label
          end
        in
        let rc = Cpu.Run_config.make ?fuel ~initial_mode:m ~observer () in
        let r = Cpu.run ~rc config cfg ~memory in
        (* Attribute the tail (last block entry to end of run). *)
        (match !last with
        | Some (j, t0, e0) ->
          total_time.(m).(j) <- total_time.(m).(j) +. (r.Cpu.time -. t0);
          total_energy.(m).(j) <- total_energy.(m).(j) +. (r.Cpu.energy -. e0)
        | None -> ());
        r)
  in
  { cfg; config; exec_count; edge_count; entry_count = !entry_count;
    paths = Hashtbl.fold (fun p c acc -> (p, c) :: acc) path_tbl [];
    total_time; total_energy; runs }

let block_time p ~mode j =
  if p.exec_count.(j) = 0 then 0.0
  else p.total_time.(mode).(j) /. float_of_int p.exec_count.(j)

let block_energy p ~mode j =
  if p.exec_count.(j) = 0 then 0.0
  else p.total_energy.(mode).(j) /. float_of_int p.exec_count.(j)

let g_of_edge p e = p.edge_count.(Cfg.edge_index p.cfg e)

let pinned_time p ~mode = p.runs.(mode).Cpu.time

let pinned_energy p ~mode = p.runs.(mode).Cpu.energy

let pp_summary ppf p =
  let n_modes = Array.length p.runs in
  Format.fprintf ppf "@[<v>%d blocks, %d edges, %d paths@,"
    (Cfg.num_blocks p.cfg)
    (Array.length (Cfg.edges p.cfg))
    (List.length p.paths);
  for m = 0 to n_modes - 1 do
    let r = p.runs.(m) in
    Format.fprintf ppf "mode %d: %.3f ms, %.1f uJ, %d instrs@," m
      (r.Cpu.time *. 1e3) (r.Cpu.energy *. 1e6) r.Cpu.dyn_instrs
  done;
  Format.fprintf ppf "@]"
