let fractions = [| 0.01; 0.03; 0.12; 0.57; 0.98 |]

let of_times ~t_fast ~t_slow =
  if not (t_fast <= t_slow) then
    invalid_arg "Deadlines.of_times: t_fast must not exceed t_slow";
  Array.map (fun f -> t_fast +. (f *. (t_slow -. t_fast))) fractions

let of_profile p =
  let n = Array.length p.Dvs_profile.Profile.runs in
  of_times
    ~t_fast:(Dvs_profile.Profile.pinned_time p ~mode:(n - 1))
    ~t_slow:(Dvs_profile.Profile.pinned_time p ~mode:0)

(* Past the knee the savings plateau: every group sits at its
   minimum-energy mode and looser deadlines change nothing.  The first
   probe clears the all-slowest span with a 2% margin so the plateau
   schedule is strictly feasible; the second witnesses the plateau
   itself — its optimum is already proved by the continuous bound, which
   is what lets the sweep answer it without a solve. *)
let saturation_fractions = [| 1.02; 1.1 |]

let saturated ~t_fast ~t_slow ds =
  Array.append ds
    (Array.map
       (fun f -> t_fast +. (f *. (t_slow -. t_fast)))
       saturation_fractions)

let sweep_of_profile p =
  let n = Array.length p.Dvs_profile.Profile.runs in
  let t_fast = Dvs_profile.Profile.pinned_time p ~mode:(n - 1) in
  let t_slow = Dvs_profile.Profile.pinned_time p ~mode:0 in
  saturated ~t_fast ~t_slow (of_times ~t_fast ~t_slow)
