(** Deadline construction, Table 4 style: five application-specific
    points spanning the feasible range from "must run at the fastest
    mode" to "the slowest mode almost suffices".

    Convention used throughout this repo: deadline 1 is the most
    stringent, deadline 5 the most lax.  (The paper's Tables 1 and 6
    label the lax end "Deadline 1" while Table 4 and Figures 15-18 use
    the opposite order; we normalize to the Table 4 order and note this
    in EXPERIMENTS.md.) *)

val fractions : float array
(** [[| 0.01; 0.03; 0.12; 0.57; 0.98 |]] — positions inside
    [[t_fast, t_slow]], fitted to the paper's Table 4 choices. *)

val of_times : t_fast:float -> t_slow:float -> float array
(** Five deadlines; requires [t_fast <= t_slow]. *)

val of_profile : Dvs_profile.Profile.t -> float array
(** From the pinned fastest/slowest run times of a profile. *)

val saturation_fractions : float array
(** [[| 1.02; 1.1 |]] — two probes past the all-slowest knee, where the
    savings plateau: the first clears the slowest span with margin (the
    plateau schedule becomes strictly feasible), the second witnesses
    the plateau.  On plateau points the exact continuous bound meets the
    discrete optimum, so the sweep's pre-pruning certificate can answer
    them without an LP solve. *)

val saturated : t_fast:float -> t_slow:float -> float array -> float array
(** Append the saturation probes to a deadline grid. *)

val sweep_of_profile : Dvs_profile.Profile.t -> float array
(** The Table-4 grid of {!of_profile} plus the saturation probes — the
    grid the sweep experiments run. *)
