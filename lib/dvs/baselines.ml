open Dvs_ir

let best_single_mode (p : Dvs_profile.Profile.t) ~deadline =
  let n_modes = Array.length p.Dvs_profile.Profile.runs in
  let best = ref None in
  for m = 0 to n_modes - 1 do
    let t = Dvs_profile.Profile.pinned_time p ~mode:m in
    let e = Dvs_profile.Profile.pinned_energy p ~mode:m in
    if t <= deadline *. 1.000001 then
      match !best with
      | Some (_, e') when e' <= e -> ()
      | _ -> best := Some (m, e)
  done;
  !best

let hsu_kremer ?fuel config cfg ~memory ~profile ~deadline =
  let n_modes =
    Dvs_power.Mode.size config.Dvs_machine.Config.mode_table
  in
  let fast = n_modes - 1 and slow = 0 in
  let n_blocks = Cfg.num_blocks cfg in
  (* Memory-boundedness: a compute-bound block dilates by f_fast/f_slow
     when slowed; a memory-bound one barely dilates.  Rank by dilation
     ascending. *)
  let dilation j =
    let t_fast = Dvs_profile.Profile.block_time profile ~mode:fast j in
    let t_slow = Dvs_profile.Profile.block_time profile ~mode:slow j in
    if t_fast <= 0.0 then infinity else t_slow /. t_fast
  in
  let order =
    List.sort
      (fun a b -> Float.compare (dilation a) (dilation b))
      (List.init n_blocks Fun.id)
  in
  let schedule_of assignment =
    let edges = Cfg.edges cfg in
    { Schedule.edge_mode =
        Array.map (fun (e : Cfg.edge) -> assignment.(e.dst)) edges;
      entry_mode = assignment.(Cfg.entry cfg) }
  in
  let meets assignment =
    let s = schedule_of assignment in
    let rc =
      Dvs_machine.Cpu.Run_config.make ?fuel
        ~initial_mode:s.Schedule.entry_mode
        ~edge_modes:(Schedule.edge_modes s cfg) ()
    in
    let r = Dvs_machine.Cpu.run ~rc config cfg ~memory in
    r.Dvs_machine.Cpu.time <= deadline
  in
  let assignment = Array.make n_blocks fast in
  if not (meets assignment) then None
  else begin
    List.iter
      (fun j ->
        if profile.Dvs_profile.Profile.exec_count.(j) > 0 then begin
          assignment.(j) <- slow;
          if not (meets assignment) then assignment.(j) <- fast
        end)
      order;
    Some (schedule_of assignment)
  end

let weiser_governor ?(up_threshold = 0.9) ?(down_threshold = 0.65) ~interval
    () =
  if not (down_threshold < up_threshold) then
    invalid_arg "Baselines.weiser_governor: thresholds out of order";
  { Dvs_machine.Cpu.gov_interval = interval;
    gov_decide =
      (fun ~busy_fraction ~current_mode ->
        if busy_fraction > up_threshold then current_mode + 1
        else if busy_fraction < down_threshold then current_mode - 1
        else current_mode) }
