(** Concrete DVS schedules: one mode per CFG edge plus the start mode
    chosen by the virtual entry edge. *)

type t = {
  edge_mode : int array;  (** per {!Dvs_ir.Cfg.edge_index} *)
  entry_mode : int;
}

val of_solution : Formulation.t -> Dvs_lp.Simplex.solution -> t

val uniform : Dvs_ir.Cfg.t -> int -> t
(** Everything pinned at one mode (the single-frequency baselines). *)

val edge_modes : t -> Dvs_ir.Cfg.t -> Dvs_ir.Cfg.edge -> int option
(** Adapter for {!Dvs_machine.Cpu.run}'s [edge_modes]. *)

val equal : t -> t -> bool

val diff : t -> t -> bool * int list
(** [diff a b] is [(entry_changed, edges)]: whether the entry modes
    differ, and the {!Dvs_ir.Cfg.edge_index} list (ascending) where the
    edge modes differ.  Incremental re-verification
    ({!Verify.Session.check_incremental}) re-simulates only from the
    first traversal of a differing edge.  Raises [Invalid_argument] when
    the schedules have different edge counts. *)

val distinct_modes : t -> int list
(** Modes that actually appear. *)

val to_string : t -> string
(** Stable one-line-per-entry text form (for saving schedules to
    disk). *)

val of_string : string -> (t, string) result
(** Parse {!to_string} output. *)

val pp : Format.formatter -> t -> unit
