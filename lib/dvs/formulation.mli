(** The paper's MILP formulation (Section 4.2-4.3), built from profiles.

    Decision variables: for every {e independent} edge [(i,j)] (real edges
    plus one virtual entry edge that charges the entry block and chooses
    the start mode) and every mode [m], a binary [k_ijm]; exactly one mode
    per edge.  For every local path [(h,i,j)] a pair of continuous
    variables [e_hij >= |sum_m k_him Vm^2 - sum_m k_ijm Vm^2|] and
    [t_hij >= |sum_m k_him Vm - sum_m k_ijm Vm|] linearize the
    Burd-Brodersen transition costs.

    Objective (minimize, in microjoules):
    [sum_g w_g (sum_(ij) sum_m G^g_ij k_ijm E^g_jm
               + sum_(hij) D^g_hij CE e_hij)]

    Deadline constraint per input category [g] (in microseconds):
    [sum_(ij) sum_m G^g_ij k_ijm T^g_jm + sum_(hij) D^g_hij CT t_hij
     <= deadline_g]

    Edge filtering (Section 5.2) enters through [repr]: filtered edges
    reuse the variable group of their representative, shrinking the
    search space while keeping every energy/time term exact. *)

type category = {
  profile : Dvs_profile.Profile.t;
  weight : float;  (** the paper's [p_g]; weights should sum to 1 *)
  deadline : float;  (** seconds *)
}

type t = {
  model : Dvs_lp.Model.t;
  cfg : Dvs_ir.Cfg.t;
  n_real_edges : int;
  virtual_edge : int;  (** id of the virtual entry edge = [n_real_edges] *)
  repr : int array;  (** edge id -> representative edge id *)
  kvars : (int * Dvs_lp.Model.var array) list;
      (** representative edge id -> its mode variables *)
  modes : Dvs_power.Mode.table;
  n_binaries : int;  (** independent binary count, for reporting *)
}

val build :
  ?repr:int array ->
  regulator:Dvs_power.Switch_cost.regulator ->
  category list -> t
(** All categories must share the CFG and mode table.  [repr] defaults to
    the identity (no filtering).  Raises [Invalid_argument] on an empty
    category list or mismatched CFGs. *)

val implied_fixings :
  t -> category list -> (Dvs_lp.Model.var * float) list
(** Mode binaries that can be fixed to 0 before solving: a variable
    group's own block-time contribution at that mode already exceeds a
    category's deadline, and every other term in the deadline row is
    nonnegative, so the binary can never be 1 in a feasible schedule.
    Sorted by variable; feed to
    [Dvs_milp.Solver.Config.with_fixings] so the MILP presolve starts
    from them (and propagates through the one-mode groups).  Exact —
    never cuts a feasible schedule. *)

val mode_of_edge :
  t -> Dvs_lp.Simplex.solution -> int -> int
(** Chosen mode of an edge id (real or virtual), following [repr]. *)
