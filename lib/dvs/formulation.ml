open Dvs_lp
open Dvs_ir

type category = {
  profile : Dvs_profile.Profile.t;
  weight : float;
  deadline : float;
}

type t = {
  model : Model.t;
  cfg : Cfg.t;
  n_real_edges : int;
  virtual_edge : int;
  repr : int array;
  kvars : (int * Model.var array) list;
  modes : Dvs_power.Mode.table;
  n_binaries : int;
}

(* Work in microseconds / microjoules to keep the simplex well scaled. *)
let us = 1e6
let uj = 1e6

let build ?repr ~regulator categories =
  (match categories with
  | [] -> invalid_arg "Formulation.build: no categories"
  | { profile = p0; _ } :: rest ->
    List.iter
      (fun c ->
        if c.profile.Dvs_profile.Profile.cfg != p0.Dvs_profile.Profile.cfg
        then
          invalid_arg "Formulation.build: categories must share one CFG")
      rest);
  let p0 = (List.hd categories).profile in
  let cfg = p0.Dvs_profile.Profile.cfg in
  let modes = p0.Dvs_profile.Profile.config.Dvs_machine.Config.mode_table in
  let n_modes = Dvs_power.Mode.size modes in
  let edges = Cfg.edges cfg in
  let n_real_edges = Array.length edges in
  let virtual_edge = n_real_edges in
  let n_all = n_real_edges + 1 in
  let repr =
    match repr with
    | Some r ->
      if Array.length r <> n_all then
        invalid_arg "Formulation.build: repr has wrong length";
      r
    | None -> Array.init n_all Fun.id
  in
  (* Destination block of an edge id. *)
  let dst_of id =
    if id = virtual_edge then Cfg.entry cfg else edges.(id).Cfg.dst
  in
  let model = Model.create () in
  (* Mode variables per representative edge. *)
  let kvars_tbl = Hashtbl.create 64 in
  let n_binaries = ref 0 in
  for id = 0 to n_all - 1 do
    if repr.(id) = id && not (Hashtbl.mem kvars_tbl id) then begin
      let vars =
        Array.init n_modes (fun m ->
            Model.binary ~name:(Printf.sprintf "k_e%d_m%d" id m) model)
      in
      Hashtbl.replace kvars_tbl id vars;
      n_binaries := !n_binaries + n_modes;
      Model.add_constraint ~name:(Printf.sprintf "one_mode_e%d" id) model
        (Expr.of_terms (List.init n_modes (fun m -> (1.0, vars.(m)))))
        Model.Eq 1.0
    end
  done;
  let kvars_of id = Hashtbl.find kvars_tbl repr.(id) in
  (* Voltage-combination expressions of an edge: sum_m k_m * f(V_m). *)
  let vexpr id f =
    let vars = kvars_of id in
    Expr.of_terms
      (List.init n_modes (fun m ->
           (f (Dvs_power.Mode.get modes m).Dvs_power.Mode.voltage, vars.(m))))
  in
  (* Transition variables per (repr in-edge, repr out-edge) pair. *)
  let trans_tbl = Hashtbl.create 64 in
  let trans_vars ri ro =
    match Hashtbl.find_opt trans_tbl (ri, ro) with
    | Some pair -> pair
    | None ->
      let e =
        Model.add_var ~name:(Printf.sprintf "e_%d_%d" ri ro) model
      in
      let tv =
        Model.add_var ~name:(Printf.sprintf "t_%d_%d" ri ro) model
      in
      let dv2 =
        Expr.sub (vexpr ri (fun v -> v *. v)) (vexpr ro (fun v -> v *. v))
      in
      Model.add_constraint model (Expr.sub dv2 (Expr.var e)) Model.Le 0.0;
      Model.add_constraint model
        (Expr.sub (Expr.scale (-1.0) dv2) (Expr.var e))
        Model.Le 0.0;
      let dv = Expr.sub (vexpr ri (fun v -> v)) (vexpr ro (fun v -> v)) in
      Model.add_constraint model (Expr.sub dv (Expr.var tv)) Model.Le 0.0;
      Model.add_constraint model
        (Expr.sub (Expr.scale (-1.0) dv) (Expr.var tv))
        Model.Le 0.0;
      Hashtbl.replace trans_tbl (ri, ro) (e, tv);
      (e, tv)
  in
  let edge_id_of_path_in (p : Dvs_profile.Profile.path) =
    match p.Dvs_profile.Profile.pred with
    | None -> virtual_edge
    | Some h -> Cfg.edge_index cfg { Cfg.src = h; dst = p.Dvs_profile.Profile.node }
  in
  let ce = Dvs_power.Switch_cost.energy_coeff regulator *. uj in
  let ct = Dvs_power.Switch_cost.time_coeff regulator *. us in
  (* Objective and per-category deadline constraints. *)
  let objective = ref Expr.zero in
  List.iter
    (fun cat ->
      let p = cat.profile in
      let w = cat.weight in
      let time_lhs = ref Expr.zero in
      let add_edge_terms id count =
        if count > 0 then begin
          let j = dst_of id in
          let vars = kvars_of id in
          let c = float_of_int count in
          for m = 0 to n_modes - 1 do
            let e_jm = Dvs_profile.Profile.block_energy p ~mode:m j *. uj in
            let t_jm = Dvs_profile.Profile.block_time p ~mode:m j *. us in
            objective :=
              Expr.add_term !objective (w *. c *. e_jm) vars.(m);
            time_lhs := Expr.add_term !time_lhs (c *. t_jm) vars.(m)
          done
        end
      in
      Array.iteri
        (fun idx count -> add_edge_terms idx count)
        p.Dvs_profile.Profile.edge_count;
      add_edge_terms virtual_edge p.Dvs_profile.Profile.entry_count;
      List.iter
        (fun (path, count) ->
          let ri = repr.(edge_id_of_path_in path) in
          let ro =
            repr.(Cfg.edge_index cfg
                    { Cfg.src = path.Dvs_profile.Profile.node;
                      dst = path.Dvs_profile.Profile.succ })
          in
          if ri <> ro then begin
            let e, tv = trans_vars ri ro in
            let c = float_of_int count in
            objective := Expr.add_term !objective (w *. c *. ce) e;
            time_lhs := Expr.add_term !time_lhs (c *. ct) tv
          end)
        p.Dvs_profile.Profile.paths;
      Model.add_constraint ~name:"deadline" model !time_lhs Model.Le
        (cat.deadline *. us))
    categories;
  Model.set_objective model Model.Minimize !objective;
  { model; cfg; n_real_edges; virtual_edge; repr;
    kvars = Hashtbl.fold (fun k v acc -> (k, v) :: acc) kvars_tbl [];
    modes; n_binaries = !n_binaries }

(* A mode binary whose own block-time contribution already overruns a
   category deadline can never be selected: every other term in the
   deadline row (other groups' times, transition penalties) is
   nonnegative.  These fixings seed the MILP presolve, which then
   propagates them through the one-mode-per-edge groups. *)
let implied_fixings t categories =
  let n_modes = Dvs_power.Mode.size t.modes in
  let edges = Cfg.edges t.cfg in
  let dst_of id =
    if id = t.virtual_edge then Cfg.entry t.cfg else edges.(id).Cfg.dst
  in
  let fixed = Hashtbl.create 16 in
  List.iter
    (fun cat ->
      let p = cat.profile in
      (* Per representative group: total block time at each mode, summed
         over every edge the representative stands for (in seconds, same
         unit as the deadline). *)
      let acc = Hashtbl.create 64 in
      let add id count =
        if count > 0 then begin
          let r = t.repr.(id) in
          let arr =
            match Hashtbl.find_opt acc r with
            | Some a -> a
            | None ->
              let a = Array.make n_modes 0.0 in
              Hashtbl.add acc r a;
              a
          in
          let j = dst_of id in
          let c = float_of_int count in
          for m = 0 to n_modes - 1 do
            arr.(m) <-
              arr.(m) +. (c *. Dvs_profile.Profile.block_time p ~mode:m j)
          done
        end
      in
      Array.iteri (fun idx count -> add idx count) p.Dvs_profile.Profile.edge_count;
      add t.virtual_edge p.Dvs_profile.Profile.entry_count;
      Hashtbl.iter
        (fun r arr ->
          let vars = List.assoc r t.kvars in
          for m = 0 to n_modes - 1 do
            if arr.(m) > cat.deadline *. (1.0 +. 1e-9) then
              Hashtbl.replace fixed vars.(m) 0.0
          done)
        acc)
    categories;
  Hashtbl.fold (fun v x l -> (v, x) :: l) fixed [] |> List.sort compare

let mode_of_edge t (sol : Simplex.solution) id =
  let vars = List.assoc t.repr.(id) t.kvars in
  let best = ref 0 in
  Array.iteri
    (fun m v -> if sol.values.(v) > sol.values.(vars.(!best)) then best := m)
    vars;
  !best
