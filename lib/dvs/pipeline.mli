(** End-to-end compile-time DVS: profile -> (filter) -> MILP -> schedule
    -> verify.  The driver behind the experiments and the CLI. *)

(** Builder-style pipeline configuration; construct with {!Config.make}.
    The MILP leg is configured through a nested
    {!Dvs_milp.Solver.Config.t}, so callers control parallelism, limits
    and caching in one place. *)
module Config : sig
  type t = {
    filter : bool;  (** apply Section 5.2 edge filtering (default true) *)
    filter_threshold : float;  (** default 0.02 *)
    solver : Dvs_milp.Solver.Config.t;
    verify : bool;  (** re-simulate the chosen schedule (default true) *)
  }

  val make :
    ?filter:bool -> ?filter_threshold:float ->
    ?solver:Dvs_milp.Solver.Config.t -> ?verify:bool -> unit -> t
  (** [solver] defaults to [Dvs_milp.Solver.Config.make ()]. *)

  val default : t

  val with_solver : Dvs_milp.Solver.Config.t -> t -> t
end

(** Deprecated record API; use {!Config.make}.  Kept so existing callers
    compile — converted internally via {!config_of_options}. *)
type options = {
  filter : bool;
  filter_threshold : float;
  milp : Dvs_milp.Branch_bound.options;
  verify : bool;
}

val default_options : options
(** Deprecated: use {!Config.default}. *)

val config_of_options : options -> Config.t

type result = {
  categories : Formulation.category list;
  formulation : Formulation.t;
  milp : Dvs_milp.Solver.result;
      (** full solver result: outcome, solution, bound and
          {!Dvs_milp.Solver.stats} *)
  predicted_energy : float option;  (** joules (objective / 1e6) *)
  schedule : Schedule.t option;
  verification : Verify.report option;  (** against the first category *)
  solve_seconds : float;  (** wall-clock time in the MILP solver *)
  independent_edges : int;  (** after filtering, incl. the virtual edge *)
}

val optimize_multi :
  ?options:options ->
  ?config:Config.t ->
  ?verify_config:Dvs_machine.Config.t ->
  regulator:Dvs_power.Switch_cost.regulator ->
  memory:int array ->
  Formulation.category list -> result
(** [memory] is the input used for verification (normally the first
    category's).  [verify_config] overrides the machine used for the
    verification run (default: the first profile's config); pass a config
    carrying [regulator] when sweeping transition costs, so the simulator
    charges the same costs the MILP modeled.  [config] wins over the
    deprecated [options] when both are given. *)

val optimize :
  ?options:options ->
  ?config:Config.t ->
  Dvs_machine.Config.t -> Dvs_ir.Cfg.t -> memory:int array ->
  deadline:float -> result
(** Single input category: profiles, then runs {!optimize_multi} with the
    config's regulator. *)
