(** End-to-end compile-time DVS: profile -> (filter) -> MILP -> schedule
    -> verify.  The driver behind the experiments and the CLI.

    {b Degradation ladder.} With {!Resilience.t.ladder} on (the default)
    the pipeline is {e anytime}: instead of surfacing a failed or
    suspect MILP solve, it walks a ladder of progressively cheaper
    strategies until one produces a schedule that passes re-simulation —
    full MILP, then bounded cold retries without the warm start, then
    argmax rounding of the bare LP relaxation, then the rounded
    continuous schedule ({!Relaxation.round}), then the
    single-best-frequency baseline.  Every rung is post-checked with
    {!Verify.Session.check} (deadline met in simulation), degraded rungs are
    additionally rejected when they cost more energy than the
    single-mode baseline, and the result names the accepted rung plus
    every rejection on the way down ({!result.rung},
    {!result.descents}). *)

(** Retry/fallback policy for the degradation ladder. *)
module Resilience : sig
  (** Where the ladder starts.  Entering below {!From_milp} records the
      skipped rungs as [Limit_hit] descents, so the result still names
      why the cheaper strategy answered (a caller-imposed budget, not a
      solver failure at that rung). *)
  type entry = From_milp | From_rounded_lp | From_single_mode

  type t = {
    ladder : bool;
        (** walk the degradation ladder (default true); when false the
            pipeline reproduces the historic single-shot behavior *)
    max_retries : int;
        (** cold MILP retries before falling to the LP rung (default 2) *)
    retry_budget_factor : float;
        (** node budget multiplier per retry, in (0, 1] (default 0.5):
            retry [k] runs with [max_nodes *. factor^k] *)
    entry : entry;
        (** first rung attempted (default {!From_milp}); the [dvsd]
            service lowers it as a request's wall-clock budget drains
            ({!for_budget}) *)
  }

  val make :
    ?ladder:bool -> ?max_retries:int -> ?retry_budget_factor:float ->
    ?entry:entry -> unit -> t
  (** Raises [Invalid_argument] when [max_retries < 0] or
      [retry_budget_factor] is outside (0, 1]. *)

  val default : t
  (** [make ()]: ladder on, 2 retries, factor 0.5, entry {!From_milp}. *)

  val off : t
  (** Ladder disabled — historic single-shot pipeline. *)

  val for_budget : budget:float -> remaining:float -> t -> t
  (** Budget-to-ladder mapping: with [remaining/budget >= 0.5] the
      policy is unchanged; [>= 0.2] keeps the MILP but drops the cold
      retries; [>= 0.05] enters at the rounded-LP rung; anything less
      goes straight to the single-mode baseline.  Raises
      [Invalid_argument] when [budget <= 0]. *)
end

(** Builder-style pipeline configuration; construct with {!Config.make}.
    The MILP leg is configured through a nested
    {!Dvs_milp.Solver.Config.t}, so callers control parallelism, limits
    and caching in one place. *)
module Config : sig
  type t = {
    filter : bool;  (** apply Section 5.2 edge filtering (default true) *)
    filter_threshold : float;  (** default 0.02 *)
    solver : Dvs_milp.Solver.Config.t;
    verify : bool;  (** re-simulate the chosen schedule (default true);
                        with the ladder on, rungs are verified regardless
                        — this flag only controls whether the historic
                        single-shot path attaches a report *)
    resilience : Resilience.t;
    cold_verify : bool;
        (** force every verification through the cycle-accurate
            simulator instead of warm {!Verify.Session} tape replay
            (default false); the CI [--cold-verify] leg keeps this exact
            path alive *)
    continuous_bound : bool;
        (** run the exact continuous relaxation ({!Relaxation}) before
            solving (default true): its optimum becomes the MILP's root
            dual bound and the sweep's pre-pruning certificate, its
            rounding the incumbent seed and the
            {!rung.Continuous_rounded} ladder rung; [false] is the
            ablation switch ([--no-continuous-bound]) *)
  }

  val make :
    ?filter:bool -> ?filter_threshold:float ->
    ?solver:Dvs_milp.Solver.Config.t -> ?verify:bool ->
    ?resilience:Resilience.t -> ?cold_verify:bool ->
    ?continuous_bound:bool -> unit -> t
  (** [solver] defaults to [Dvs_milp.Solver.Config.make ()];
      [resilience] to {!Resilience.default}. *)

  val default : t

  val with_solver : Dvs_milp.Solver.Config.t -> t -> t

  val with_resilience : Resilience.t -> t -> t

  val with_obs : Dvs_obs.t -> t -> t
  (** Thread one observability bundle through all three layers: the MILP
      solver, the pipeline's degradation-ladder events
      ([pipeline.rung_accept] / [pipeline.rung_reject]) and the
      verification simulator.  Stored in the nested solver config. *)

  val obs : t -> Dvs_obs.t
end

(** Which strategy of the degradation ladder produced the schedule. *)
type rung =
  | Milp  (** first full MILP solve *)
  | Milp_retry of int
      (** [k]-th cold retry: no warm start, no shared cache, node budget
          scaled by [retry_budget_factor^k] *)
  | Rounded_lp
      (** argmax rounding of the bare LP relaxation (the one-binary-per
          SOS1-group structure makes fractional argmax a valid schedule) *)
  | Continuous_rounded
      (** {!Relaxation.round}: the exact continuous optimum snapped onto
          adjacent discrete modes — a deadline-admitted schedule that
          needs no LP at all, sitting just above the single-mode floor *)
  | Single_mode  (** {!Baselines.best_single_mode} pinned everywhere *)

val pp_rung : Format.formatter -> rung -> unit

(** Why a rung was rejected. *)
type cause =
  | Limit_hit  (** node/time budget exhausted without a usable incumbent *)
  | Worker_crash  (** solver outcome was [Degraded] *)
  | Numeric  (** simplex pivot exhaustion ([Iter_limit]) or LP failure *)
  | Verify_reject
      (** re-simulation missed the deadline, or a degraded answer cost
          more than the single-mode baseline *)

type descent = { rung_failed : rung; cause : cause; detail : string }

val pp_descent : Format.formatter -> descent -> unit

(** Coarse health of a pipeline result, for exit codes and reporting.
    Precedence when several apply: crash > verify > time. *)
type degradation_class =
  | Full  (** optimal MILP schedule, verified — nothing degraded *)
  | Time_degraded
      (** a limit forced a suboptimal (but verified) schedule *)
  | Crash_degraded  (** worker crashes were contained along the way *)
  | Verify_degraded  (** at least one rung was rejected by re-simulation *)
  | Problem_infeasible  (** no deadline-feasible schedule exists *)
  | No_schedule  (** every rung failed *)

val pp_class : Format.formatter -> degradation_class -> unit

type result = {
  categories : Formulation.category list;
  formulation : Formulation.t;
  milp : Dvs_milp.Solver.result;
      (** the accepted MILP attempt's solver result — or, when a lower
          rung answered, the {e first} attempt's (its outcome explains
          why the ladder descended) *)
  predicted_energy : float option;
      (** joules (objective / 1e6); for {!rung.Rounded_lp} this is the LP
          relaxation bound, a lower bound rather than a prediction *)
  schedule : Schedule.t option;
  verification : Verify.report option;  (** against the first category *)
  solve_seconds : float;  (** wall-clock seconds summed over MILP attempts *)
  independent_edges : int;  (** after filtering, incl. the virtual edge *)
  rung : rung option;  (** accepted rung; [None] iff [schedule] is [None] *)
  descents : descent list;  (** rejections on the way down, in order *)
  continuous_bound : float option;
      (** exact continuous-relaxation lower bound on the optimal energy,
          in joules; [None] when the feature is off or the relaxation is
          infeasible *)
}

val classify : result -> degradation_class

type prepared = {
  prep_formulation : Formulation.t;
  prep_independent_edges : int;
}
(** The deterministic model-building prefix of {!optimize_multi}:
    filtering and formulation, no solving.  Exposed so the experiment
    store ([Dvs_store]) can rebuild a cached result's formulation
    without paying for a solve or a simulation. *)

val prepare :
  ?config:Config.t ->
  regulator:Dvs_power.Switch_cost.regulator ->
  Formulation.category list ->
  prepared
(** Apply the config's edge filter and build the MILP formulation for
    [categories] — exactly the model {!optimize_multi} would solve. *)

val optimize_multi :
  ?config:Config.t ->
  ?verify_config:Dvs_machine.Config.t ->
  ?session:Verify.Session.t ->
  regulator:Dvs_power.Switch_cost.regulator ->
  memory:int array ->
  Formulation.category list -> result
(** [memory] is the input used for verification (normally the first
    category's).  [verify_config] overrides the machine used for the
    verification run (default: the first profile's config); pass a config
    carrying [regulator] when sweeping transition costs, so the simulator
    charges the same costs the MILP modeled.  [session] supplies a warm
    {!Verify.Session} for the (machine, program, memory) triple so
    repeated calls share the summary cache; without one, a session is
    created on first verification ([Config.t.cold_verify] makes it
    cycle-accurate).  Successive rung verifications within one call are
    incremental against each other. *)

val optimize :
  ?config:Config.t ->
  Dvs_machine.Config.t -> Dvs_ir.Cfg.t -> memory:int array ->
  deadline:float -> result
(** Single input category: profiles, then runs {!optimize_multi} with the
    config's regulator. *)

type sweep_result = {
  results : result array;  (** one per input deadline, in input order *)
  sweep : Dvs_milp.Sweep.stats;
}

val optimize_sweep :
  ?config:Config.t ->
  ?verify_config:Dvs_machine.Config.t ->
  ?profile:Dvs_profile.Profile.t ->
  ?session:Verify.Session.t ->
  ?instances:int ->
  ?cut_rounds:int ->
  Dvs_machine.Config.t -> Dvs_ir.Cfg.t -> memory:int array ->
  deadlines:float array -> sweep_result
(** [optimize_sweep machine cfg ~memory ~deadlines] runs the paper's
    deadline-sweep experiment through {!Dvs_milp.Sweep}: the program is
    profiled ([profile] supplies a pre-collected profile and skips that
    step) and formulated {e once} (at the loosest deadline, so the
    deadline-implied mode exclusions baked into the model stay exact
    everywhere), and each sweep point is an RHS delta on the shared
    compiled form — with tightest-first incumbent lifting, cross-point
    basis reuse and a shared cut pool.  Per-point implied fixings are
    recomputed at each deadline via [Sweep.run]'s [per_point] hook.

    A point whose sweep solve comes back [Optimal] and verifies against
    its own deadline is accepted at the {!rung.Milp} rung; [Infeasible]
    and [Unbounded] points are terminal (no schedule), and anything else
    falls back to the classic {!optimize_multi} degradation ladder for
    that point alone.  [instances] (default 1) solves that many sweep
    points concurrently; [cut_rounds] (default 3) bounds each point's
    root cutting loop.

    All per-point verifications run through one shared {!Verify.Session}
    ([session] if given, otherwise created internally — cycle-accurate
    when [Config.t.cold_verify]), so the whole sweep pays for one
    recording simulation; within each verification worker, consecutive
    points re-verify incrementally against each other.

    Raises [Invalid_argument] if [deadlines] is empty or contains a
    non-positive or non-finite value. *)
