(** Closing the loop: re-simulate a scheduled program and check it
    against the MILP's predictions.

    The paper's formulation predicts energy/time from per-block profile
    averages; the simulator replays the real thing with mode-sets applied
    on edges.  Agreement (within a small tolerance from cross-block cache
    and overlap interactions) is the evidence that the optimization is
    sound.

    The workhorse is {!Session}: create one per workload and it records
    the execution once, then re-costs every candidate schedule by tape
    replay ({!Dvs_machine.Summary}) — bit-identical to the cycle-accurate
    simulator, held so by the test suite — so a 30-point deadline sweep
    pays for one simulation, not thirty. *)

val deadline_tolerance : float
(** Relative slack allowed on the measured completion time: a schedule
    meets deadline [d] when [time <= d *. (1.0 +. deadline_tolerance)].
    Currently 0.005 (0.5%), absorbing cross-block cache and miss-overlap
    interactions the per-block MILP model cannot see.  This constant is
    the single source of truth — every checker in the repo goes through
    it. *)

type report = {
  stats : Dvs_machine.Cpu.run_stats;
  deadline : float;
  meets_deadline : bool;  (** within {!deadline_tolerance} *)
  predicted_energy : float;  (** joules, from the MILP objective *)
  energy_error : float;  (** |measured - predicted| / predicted *)
  token : int;
      (** names the verification's cached segments inside its session
          (pass the report to {!Session.check_incremental}'s [against]);
          [0] when the check did not run through a warm session *)
}

(** A verification session: owns the recorded workload and the summary
    cache, so repeated checks of different schedules share work.  Safe
    to share across domains. *)
module Session : sig
  type t

  val create :
    ?fuel:int ->
    ?cold:bool ->
    ?obs:Dvs_obs.t ->
    Dvs_machine.Config.t -> Dvs_ir.Cfg.t -> memory:int array -> t
  (** Record the workload once (a cycle-accurate {!Dvs_machine.Cpu.run};
      [obs] instruments that recording run only).  [cold] (default
      [false]) disables summarization entirely: every subsequent check
      re-runs the cycle-accurate simulator — the exact path CI keeps
      alive via [--cold-verify].  A cold session skips the recording
      run. *)

  val check :
    ?obs:Dvs_obs.t ->
    t -> schedule:Schedule.t -> deadline:float -> predicted_energy:float ->
    report
  (** Verify one schedule.  [obs] receives the simulator's instruments
      for this check (replayed or cycle-accurate). *)

  val check_incremental :
    ?obs:Dvs_obs.t ->
    t -> against:report -> schedule:Schedule.t -> deadline:float ->
    predicted_energy:float -> report
  (** Like {!check}, but splice against [against]'s cached segments:
      only the region from the first mode-set edge on which the two
      schedules differ is re-simulated ({!Schedule.diff}).  Results are
      bit-identical to {!check}; falls back to a full replay (or, cold,
      a full simulation) when [against]'s segments are no longer
      cached. *)

  val cold : t -> bool
end
