(** Closing the loop: re-simulate a scheduled program and check it
    against the MILP's predictions.

    The paper's formulation predicts energy/time from per-block profile
    averages; the simulator replays the real thing with mode-sets applied
    on edges.  Agreement (within a small tolerance from cross-block cache
    and overlap interactions) is the evidence that the optimization is
    sound. *)

type report = {
  stats : Dvs_machine.Cpu.run_stats;
  deadline : float;
  meets_deadline : bool;  (** with 0.5% tolerance *)
  predicted_energy : float;  (** joules, from the MILP objective *)
  energy_error : float;  (** |measured - predicted| / predicted *)
}

val run :
  ?fuel:int ->
  ?obs:Dvs_obs.t ->
  Dvs_machine.Config.t -> Dvs_ir.Cfg.t -> memory:int array ->
  schedule:Schedule.t -> deadline:float -> predicted_energy:float -> report
(** [obs] is handed to {!Dvs_machine.Cpu.run}, so the verification run's
    simulator events and counters land in the caller's registry. *)
