(* Formulation -> Liyao lowering.  See relaxation.mli for the validity
   argument; the group curves here accumulate exactly the same
   coefficient expressions Formulation.build puts into the objective and
   deadline rows, so "on the curve" and "in the model" agree. *)

open Dvs_ir

let us = 1e6
let uj = 1e6

type group = {
  grp : int;  (* representative edge id *)
  times : float array;  (* per mode, microseconds *)
  energies : float array;  (* per mode, weighted microjoules *)
}

type cat = {
  weight : float;
  groups : group array;
  transitions : (int * int * float) array;
      (* (repr in, repr out, count) over the category's profiled paths *)
}

type t = {
  form : Formulation.t;
  cats : cat array;
  ce : float;  (* regulator energy coefficient, microjoules per volt^2 *)
  ct : float;  (* regulator time coefficient, microseconds per volt *)
  n_modes : int;
}

let prepare (form : Formulation.t) ~regulator categories =
  let modes = form.Formulation.modes in
  let n_modes = Dvs_power.Mode.size modes in
  let edges = Cfg.edges form.Formulation.cfg in
  let dst_of id =
    if id = form.Formulation.virtual_edge then Cfg.entry form.Formulation.cfg
    else edges.(id).Cfg.dst
  in
  let cats =
    List.map
      (fun (c : Formulation.category) ->
        let p = c.Formulation.profile in
        let w = c.Formulation.weight in
        let acc = Hashtbl.create 64 in
        let add id count =
          if count > 0 then begin
            let r = form.Formulation.repr.(id) in
            let times, energies =
              match Hashtbl.find_opt acc r with
              | Some g -> g
              | None ->
                let g = (Array.make n_modes 0.0, Array.make n_modes 0.0) in
                Hashtbl.add acc r g;
                g
            in
            let j = dst_of id in
            let cnt = float_of_int count in
            for m = 0 to n_modes - 1 do
              times.(m) <-
                times.(m)
                +. (cnt *. (Dvs_profile.Profile.block_time p ~mode:m j *. us));
              energies.(m) <-
                energies.(m)
                +. (w *. cnt
                   *. (Dvs_profile.Profile.block_energy p ~mode:m j *. uj))
            done
          end
        in
        Array.iteri (fun id count -> add id count) p.Dvs_profile.Profile.edge_count;
        add form.Formulation.virtual_edge p.Dvs_profile.Profile.entry_count;
        let groups =
          Hashtbl.fold
            (fun grp (times, energies) l -> { grp; times; energies } :: l)
            acc []
          |> List.sort (fun a b -> compare a.grp b.grp)
          |> Array.of_list
        in
        let trans = Hashtbl.create 16 in
        List.iter
          (fun ((path : Dvs_profile.Profile.path), count) ->
            let in_id =
              match path.Dvs_profile.Profile.pred with
              | None -> form.Formulation.virtual_edge
              | Some h ->
                Cfg.edge_index form.Formulation.cfg
                  { Cfg.src = h; dst = path.Dvs_profile.Profile.node }
            in
            let ri = form.Formulation.repr.(in_id) in
            let ro =
              form.Formulation.repr.(Cfg.edge_index form.Formulation.cfg
                                       { Cfg.src = path.Dvs_profile.Profile.node;
                                         dst = path.Dvs_profile.Profile.succ })
            in
            if ri <> ro then
              let prev =
                Option.value ~default:0.0 (Hashtbl.find_opt trans (ri, ro))
              in
              Hashtbl.replace trans (ri, ro) (prev +. float_of_int count))
          p.Dvs_profile.Profile.paths;
        let transitions =
          Hashtbl.fold (fun (ri, ro) c l -> (ri, ro, c) :: l) trans []
          |> List.sort compare |> Array.of_list
        in
        { weight = w; groups; transitions })
      categories
    |> Array.of_list
  in
  { form; cats;
    ce = Dvs_power.Switch_cost.energy_coeff regulator *. uj;
    ct = Dvs_power.Switch_cost.time_coeff regulator *. us;
    n_modes }

let check_deadlines t deadlines_us =
  if Array.length deadlines_us <> Array.length t.cats then
    invalid_arg "Relaxation: one deadline per category expected"

(* One single-deadline kernel instance per category: regions are the
   category's groups, only the last carries the (prefix = total)
   deadline. *)
let cat_regions c ~deadline_us =
  let n = Array.length c.groups in
  Array.mapi
    (fun i g ->
      { Dvs_analytical.Liyao.points =
          Array.init (Array.length g.times) (fun m ->
              (g.times.(m), g.energies.(m)));
        deadline = (if i = n - 1 then Some deadline_us else None) })
    c.groups

let bound t ~deadlines_us =
  check_deadlines t deadlines_us;
  let total = ref 0.0 in
  let feasible = ref true in
  Array.iteri
    (fun k c ->
      if !feasible && Array.length c.groups > 0 then
        match
          Dvs_analytical.Liyao.bound (cat_regions c ~deadline_us:deadlines_us.(k))
        with
        | Some e -> total := !total +. e
        | None -> feasible := false)
    t.cats;
  if !feasible then Some !total else None

type rounded = {
  fixings : (Dvs_lp.Model.var * float) list;
  schedule : Schedule.t;
  objective : float;
}

let round t ~deadlines_us =
  check_deadlines t deadlines_us;
  let fastest = t.n_modes - 1 in
  (* Per-group snapped mode: the faster endpoint of each category's
     active envelope segment, fastest across categories (block times are
     nonincreasing in the mode index, so the max index is the safe
     one). *)
  let chosen = Hashtbl.create 64 in
  let feasible = ref true in
  Array.iteri
    (fun k c ->
      if !feasible && Array.length c.groups > 0 then
        match
          Dvs_analytical.Liyao.solve (cat_regions c ~deadline_us:deadlines_us.(k))
        with
        | None -> feasible := false
        | Some s ->
          Array.iteri
            (fun i (a : Dvs_analytical.Liyao.allocation) ->
              let g = c.groups.(i).grp in
              let m = a.Dvs_analytical.Liyao.lo in
              let prev =
                Option.value ~default:0 (Hashtbl.find_opt chosen g)
              in
              Hashtbl.replace chosen g (Int.max prev m))
            s.Dvs_analytical.Liyao.allocations)
    t.cats;
  if not !feasible then None
  else begin
    let per_group g =
      Option.value ~default:fastest (Hashtbl.find_opt chosen g)
    in
    let voltage m =
      (Dvs_power.Mode.get t.form.Formulation.modes m).Dvs_power.Mode.voltage
    in
    (* Transition-inclusive admission check, mirroring the model's
       deadline rows (block terms + ct * |dv| per transition count). *)
    let admit mode_of =
      let objective = ref 0.0 in
      let ok = ref true in
      Array.iteri
        (fun k c ->
          let time = ref 0.0 in
          Array.iter
            (fun g ->
              let m = mode_of g.grp in
              time := !time +. g.times.(m);
              objective := !objective +. g.energies.(m))
            c.groups;
          Array.iter
            (fun (ri, ro, cnt) ->
              let vi = voltage (mode_of ri) and vo = voltage (mode_of ro) in
              time := !time +. (cnt *. t.ct *. Float.abs (vi -. vo));
              objective :=
                !objective
                +. (c.weight *. cnt *. t.ce
                   *. Float.abs ((vi *. vi) -. (vo *. vo))))
            c.transitions;
          if !time > deadlines_us.(k) then ok := false)
        t.cats;
      if !ok then Some !objective else None
    in
    (* Per-group snapping first — the better energy — then the
       transition-free flatten: a uniform schedule at the fastest snapped
       mode runs no block slower than the snap did, so it inherits the
       snap's block-time feasibility and pays no transition time at all.
       Real programs cross group boundaries often enough that the snap's
       transition bill regularly overruns the deadline; the flatten keeps
       a continuous-informed seed alive there. *)
    let uniform =
      let m = Hashtbl.fold (fun _ m acc -> Int.max m acc) chosen 0 in
      fun _ -> m
    in
    let pick =
      match admit per_group with
      | Some objective -> Some (per_group, objective)
      | None -> (
        match admit uniform with
        | Some objective -> Some (uniform, objective)
        | None -> None)
    in
    match pick with
    | None -> None
    | Some (mode_of, objective) ->
      let fixings =
        List.concat_map
          (fun (g, vars) ->
            let m = mode_of g in
            List.init (Array.length vars) (fun i ->
                (vars.(i), if i = m then 1.0 else 0.0)))
          t.form.Formulation.kvars
        |> List.sort compare
      in
      let schedule =
        { Schedule.edge_mode =
            Array.init t.form.Formulation.n_real_edges (fun id ->
                mode_of t.form.Formulation.repr.(id));
          entry_mode =
            mode_of t.form.Formulation.repr.(t.form.Formulation.virtual_edge) }
      in
      Some { fixings; schedule; objective }
  end
