module Config = struct
  type t = {
    filter : bool;
    filter_threshold : float;
    solver : Dvs_milp.Solver.Config.t;
    verify : bool;
  }

  let make ?(filter = true) ?(filter_threshold = 0.02) ?solver
      ?(verify = true) () =
    let solver =
      match solver with
      | Some s -> s
      | None -> Dvs_milp.Solver.Config.make ()
    in
    { filter; filter_threshold; solver; verify }

  let default = make ()

  let with_solver solver t = { t with solver }
end

(* Deprecated record API, kept so existing callers compile; converted to
   a Config.t internally. *)
type options = {
  filter : bool;
  filter_threshold : float;
  milp : Dvs_milp.Branch_bound.options;
  verify : bool;
}

let default_options =
  { filter = true; filter_threshold = 0.02;
    milp = Dvs_milp.Branch_bound.default_options; verify = true }

let config_of_options (o : options) =
  { Config.filter = o.filter; filter_threshold = o.filter_threshold;
    solver = Dvs_milp.Branch_bound.to_config o.milp; verify = o.verify }

type result = {
  categories : Formulation.category list;
  formulation : Formulation.t;
  milp : Dvs_milp.Solver.result;
  predicted_energy : float option;
  schedule : Schedule.t option;
  verification : Verify.report option;
  solve_seconds : float;
  independent_edges : int;
}

let optimize_multi ?options ?config ?verify_config ~regulator ~memory
    categories =
  let config =
    match (config, options) with
    | Some c, _ -> c
    | None, Some o -> config_of_options o
    | None, None -> Config.default
  in
  let profiles =
    List.map (fun (c : Formulation.category) -> c.Formulation.profile)
      categories
  in
  let weights =
    List.map (fun (c : Formulation.category) -> c.Formulation.weight)
      categories
  in
  let repr =
    if config.Config.filter then
      Some
        (Filter.representatives ~threshold:config.Config.filter_threshold
           ~weights profiles)
    else None
  in
  let formulation = Formulation.build ?repr ~regulator categories in
  let independent_edges =
    match repr with
    | Some r -> Filter.independent_count r
    | None -> Array.length formulation.Formulation.repr
  in
  let n_modes =
    Dvs_power.Mode.size formulation.Formulation.modes
  in
  let solver_config =
    config.Config.solver
    |> Dvs_milp.Solver.Config.with_sos1
         (List.map
            (fun (_, vars) -> Array.to_list vars)
            formulation.Formulation.kvars)
    (* Every edge at the fastest mode is feasible whenever the instance
       is: seed the incumbent with it. *)
    |> Dvs_milp.Solver.Config.with_warm_start
         (List.concat_map
            (fun (_, vars) ->
              List.init n_modes (fun m ->
                  (vars.(m), if m = n_modes - 1 then 1.0 else 0.0)))
            formulation.Formulation.kvars)
  in
  let milp =
    Dvs_milp.Solver.solve ~config:solver_config formulation.Formulation.model
  in
  let solve_seconds = milp.Dvs_milp.Solver.stats.Dvs_milp.Solver.wall_seconds in
  let predicted_energy =
    Option.map
      (fun (s : Dvs_lp.Simplex.solution) -> s.Dvs_lp.Simplex.objective /. 1e6)
      milp.Dvs_milp.Solver.solution
  in
  let schedule =
    Option.map
      (Schedule.of_solution formulation)
      milp.Dvs_milp.Solver.solution
  in
  let verification =
    match (config.Config.verify, schedule, predicted_energy, categories) with
    | true, Some schedule, Some predicted_energy, cat0 :: _ ->
      let profile = cat0.Formulation.profile in
      let config =
        match verify_config with
        | Some c -> c
        | None -> profile.Dvs_profile.Profile.config
      in
      Some
        (Verify.run config profile.Dvs_profile.Profile.cfg ~memory ~schedule
           ~deadline:cat0.Formulation.deadline ~predicted_energy)
    | _ -> None
  in
  { categories; formulation; milp; predicted_energy; schedule; verification;
    solve_seconds; independent_edges }

let optimize ?options ?config machine cfg ~memory ~deadline =
  let profile = Dvs_profile.Profile.collect machine cfg ~memory in
  optimize_multi ?options ?config
    ~regulator:machine.Dvs_machine.Config.regulator ~memory
    [ { Formulation.profile; weight = 1.0; deadline } ]
