module Solver = Dvs_milp.Solver

(* Resilience policy for the degradation ladder: how hard to retry the
   MILP before falling back to cheaper, always-available schedules. *)
module Resilience = struct
  type entry = From_milp | From_rounded_lp | From_single_mode

  type t = {
    ladder : bool;
    max_retries : int;
    retry_budget_factor : float;
    entry : entry;
  }

  let make ?(ladder = true) ?(max_retries = 2) ?(retry_budget_factor = 0.5)
      ?(entry = From_milp) () =
    if max_retries < 0 then
      invalid_arg "Pipeline.Resilience.make: max_retries must be >= 0";
    if not (retry_budget_factor > 0.0 && retry_budget_factor <= 1.0) then
      invalid_arg
        "Pipeline.Resilience.make: retry_budget_factor must be in (0, 1]";
    { ladder; max_retries; retry_budget_factor; entry }

  let default = make ()

  let off = make ~ladder:false ~max_retries:0 ()

  (* Map a shrinking wall-clock budget onto ladder entry points: a
     request that has burned most of its budget queueing should not pay
     for a MILP attempt it can no longer afford.  Thresholds are
     fractions of the original budget, so the policy scales with the
     caller's patience rather than with absolute solve times. *)
  let for_budget ~budget ~remaining t =
    if not (budget > 0.0) then
      invalid_arg "Pipeline.Resilience.for_budget: budget must be > 0";
    let r = remaining /. budget in
    if r >= 0.5 then { t with entry = From_milp }
    else if r >= 0.2 then { t with entry = From_milp; max_retries = 0 }
    else if r >= 0.05 then { t with entry = From_rounded_lp }
    else { t with entry = From_single_mode }
end

module Config = struct
  type t = {
    filter : bool;
    filter_threshold : float;
    solver : Solver.Config.t;
    verify : bool;
    resilience : Resilience.t;
    cold_verify : bool;
    continuous_bound : bool;
  }

  let make ?(filter = true) ?(filter_threshold = 0.02) ?solver
      ?(verify = true) ?(resilience = Resilience.default)
      ?(cold_verify = false) ?(continuous_bound = true) () =
    let solver =
      match solver with
      | Some s -> s
      | None -> Solver.Config.make ()
    in
    { filter; filter_threshold; solver; verify; resilience; cold_verify;
      continuous_bound }

  let default = make ()

  let with_solver solver t = { t with solver }

  let with_resilience resilience t = { t with resilience }

  (* The obs bundle lives in the nested solver config; setting it here
     threads one registry through all three layers (solver, pipeline
     rungs, verification simulator). *)
  let with_obs obs t = { t with solver = Solver.Config.with_obs obs t.solver }

  let obs t = t.solver.Solver.Config.obs
end

(* ---- degradation ladder ------------------------------------------------ *)

type rung =
  | Milp
  | Milp_retry of int
  | Rounded_lp
  | Continuous_rounded
  | Single_mode

let pp_rung ppf = function
  | Milp -> Format.pp_print_string ppf "full MILP"
  | Milp_retry n -> Format.fprintf ppf "MILP cold retry %d" n
  | Rounded_lp -> Format.pp_print_string ppf "rounded LP relaxation"
  | Continuous_rounded ->
    Format.pp_print_string ppf "rounded continuous schedule"
  | Single_mode ->
    Format.pp_print_string ppf "single-best-frequency baseline"

type cause = Limit_hit | Worker_crash | Numeric | Verify_reject

let cause_name = function
  | Limit_hit -> "limit_hit"
  | Worker_crash -> "worker_crash"
  | Numeric -> "numeric"
  | Verify_reject -> "verify_reject"

type descent = { rung_failed : rung; cause : cause; detail : string }

let pp_descent ppf d =
  Format.fprintf ppf "%a rejected: %s" pp_rung d.rung_failed d.detail

type degradation_class =
  | Full
  | Time_degraded
  | Crash_degraded
  | Verify_degraded
  | Problem_infeasible
  | No_schedule

let pp_class ppf c =
  Format.pp_print_string ppf
    (match c with
    | Full -> "full (optimal, verified)"
    | Time_degraded -> "time-limit-degraded"
    | Crash_degraded -> "worker-crash-degraded"
    | Verify_degraded -> "verify-reject-degraded"
    | Problem_infeasible -> "infeasible"
    | No_schedule -> "no schedule")

type result = {
  categories : Formulation.category list;
  formulation : Formulation.t;
  milp : Solver.result;
  predicted_energy : float option;
  schedule : Schedule.t option;
  verification : Verify.report option;
  solve_seconds : float;
  independent_edges : int;
  rung : rung option;
  descents : descent list;
  continuous_bound : float option;
}

let classify (r : result) =
  match r.schedule with
  | None ->
    if r.milp.Solver.outcome = Solver.Infeasible then Problem_infeasible
    else No_schedule
  | Some _ ->
    let crash_in_accepted =
      match r.milp.Solver.outcome with
      | Solver.Degraded d -> d.Solver.crashes <> []
      | _ -> false
    in
    let has c = List.exists (fun d -> d.cause = c) r.descents in
    if crash_in_accepted || has Worker_crash then Crash_degraded
    else if has Verify_reject then Verify_degraded
    else if has Numeric || has Limit_hit then Time_degraded
    else (
      match r.milp.Solver.outcome with
      | Solver.Optimal -> Full
      | Solver.Feasible _ | Solver.Degraded _ | Solver.Infeasible
      | Solver.Unbounded | Solver.No_solution _ -> Time_degraded)

type prepared = {
  prep_formulation : Formulation.t;
  prep_independent_edges : int;
}

let prepare ?config ~regulator categories =
  let config = match config with Some c -> c | None -> Config.default in
  let profiles =
    List.map (fun (c : Formulation.category) -> c.Formulation.profile)
      categories
  in
  let weights =
    List.map (fun (c : Formulation.category) -> c.Formulation.weight)
      categories
  in
  let repr =
    if config.Config.filter then
      Some
        (Filter.representatives ~threshold:config.Config.filter_threshold
           ~weights profiles)
    else None
  in
  let formulation = Formulation.build ?repr ~regulator categories in
  let independent_edges =
    match repr with
    | Some r -> Filter.independent_count r
    | None -> Array.length formulation.Formulation.repr
  in
  { prep_formulation = formulation;
    prep_independent_edges = independent_edges }

let optimize_multi ?config ?verify_config ?session ~regulator ~memory
    categories =
  let config = match config with Some c -> c | None -> Config.default in
  let obs = Config.obs config in
  let tr = Dvs_obs.trace obs in
  let obs_on = Dvs_obs.enabled obs in
  let module Tr = Dvs_obs.Trace in
  let pipe_span =
    if obs_on then
      Tr.start tr ~stability:Tr.Stable "pipeline.optimize"
        ~attrs:[ ("categories", Tr.Int (List.length categories)) ]
    else Tr.start Tr.disabled "pipeline.optimize"
  in
  let { prep_formulation = formulation;
        prep_independent_edges = independent_edges } =
    prepare ~config ~regulator categories
  in
  let n_modes = Dvs_power.Mode.size formulation.Formulation.modes in
  (* Exact continuous relaxation of the instance: its optimum is a root
     dual bound, and its discrete rounding — when deadline-admissible —
     a better incumbent seed than the all-fastest schedule. *)
  let deadlines_us =
    Array.of_list
      (List.map
         (fun (c : Formulation.category) -> c.Formulation.deadline *. 1e6)
         categories)
  in
  let relax =
    if config.Config.continuous_bound then
      Some (Relaxation.prepare formulation ~regulator categories)
    else None
  in
  let cont_bound =
    match relax with
    | Some rx -> Relaxation.bound rx ~deadlines_us
    | None -> None
  in
  let rounded =
    match relax with
    | Some rx -> Relaxation.round rx ~deadlines_us
    | None -> None
  in
  let mx = Dvs_obs.metrics obs in
  let module Mc = Dvs_obs.Metrics.Counter in
  (* Deterministic (a pure function of the instance), hence Stable. *)
  let c_rounding =
    Dvs_obs.Metrics.counter mx ~stability:Stable "bb.rounding_incumbents"
  in
  (match rounded with
  | Some _ -> if obs_on then Mc.incr c_rounding ~slot:0
  | None -> ());
  let base_solver =
    config.Config.solver
    |> Solver.Config.with_sos1
         (List.map
            (fun (_, vars) -> Array.to_list vars)
            formulation.Formulation.kvars)
    (* Seed the incumbent: the rounded continuous schedule when it was
       admitted, else every edge at the fastest mode (feasible whenever
       the instance is). *)
    |> Solver.Config.with_warm_start
         (match rounded with
         | Some r -> r.Relaxation.fixings
         | None ->
           List.concat_map
             (fun (_, vars) ->
               List.init n_modes (fun m ->
                   (vars.(m), if m = n_modes - 1 then 1.0 else 0.0)))
             formulation.Formulation.kvars)
    (* Deadline-implied mode exclusions feed the MILP presolve. *)
    |> Solver.Config.with_fixings
         (Formulation.implied_fixings formulation categories)
    |> match cont_bound with
       | Some b -> Solver.Config.with_root_bound b
       | None -> Fun.id
  in
  let res = config.Config.resilience in
  let cat0 = List.hd categories in
  let profile0 = cat0.Formulation.profile in
  let cfg0 = profile0.Dvs_profile.Profile.cfg in
  let deadline0 = cat0.Formulation.deadline in
  let vconfig =
    match verify_config with
    | Some c -> c
    | None -> profile0.Dvs_profile.Profile.config
  in
  (* One warm session for the whole call (created at first use unless the
     caller shares one); successive rung verifications are incremental
     against each other, so a ladder descent replays only what its
     schedule change touches. *)
  let the_session =
    lazy
      (match session with
      | Some s -> s
      | None ->
        Verify.Session.create ~cold:config.Config.cold_verify vconfig cfg0
          ~memory)
  in
  let last_report = ref None in
  let verify_run schedule predicted =
    let sp =
      if obs_on then Tr.start tr ~stability:Tr.Stable "pipeline.verify"
      else Tr.start Tr.disabled "pipeline.verify"
    in
    let s = Lazy.force the_session in
    let v =
      match !last_report with
      | None ->
        Verify.Session.check ~obs s ~schedule ~deadline:deadline0
          ~predicted_energy:predicted
      | Some r ->
        Verify.Session.check_incremental ~obs s ~against:r ~schedule
          ~deadline:deadline0 ~predicted_energy:predicted
    in
    last_report := Some v;
    if obs_on then
      Tr.finish tr sp
        ~attrs:
          [ ("meets_deadline", Tr.Bool v.Verify.meets_deadline);
            ("energy_error", Tr.Float v.Verify.energy_error) ];
    v
  in
  let descents = ref [] in
  let note rung_failed cause detail =
    if obs_on then
      Tr.event tr ~stability:Tr.Stable "pipeline.rung_reject"
        ~attrs:
          [ ("rung", Tr.String (Format.asprintf "%a" pp_rung rung_failed));
            ("cause", Tr.String (cause_name cause));
            ("detail", Tr.String detail) ];
    descents := { rung_failed; cause; detail } :: !descents
  in
  let solve_seconds = ref 0.0 in
  let solve_attempt sc =
    let r = Solver.solve ~config:sc formulation.Formulation.model in
    solve_seconds :=
      !solve_seconds +. r.Solver.stats.Solver.wall_seconds;
    r
  in
  let finish milp rung schedule predicted verification =
    let r =
      { categories; formulation; milp; predicted_energy = predicted;
        schedule; verification; solve_seconds = !solve_seconds;
        independent_edges; rung; descents = List.rev !descents;
        continuous_bound = Option.map (fun b -> b /. 1e6) cont_bound }
    in
    if obs_on then begin
      let rung_name =
        match rung with
        | Some rg -> Format.asprintf "%a" pp_rung rg
        | None -> "none"
      in
      let cls = Format.asprintf "%a" pp_class (classify r) in
      Tr.event tr ~stability:Tr.Stable "pipeline.rung_accept"
        ~attrs:
          [ ("rung", Tr.String rung_name); ("class", Tr.String cls) ];
      Tr.finish tr pipe_span
        ~attrs:
          [ ("rung", Tr.String rung_name); ("class", Tr.String cls);
            ("descents", Tr.Int (List.length r.descents)) ]
    end;
    r
  in
  if not res.Resilience.ladder then begin
    (* Historic single-shot behavior: solve once, optionally verify,
       report whatever came out. *)
    let milp = solve_attempt base_solver in
    let predicted =
      Option.map
        (fun (s : Dvs_lp.Simplex.solution) ->
          s.Dvs_lp.Simplex.objective /. 1e6)
        milp.Solver.solution
    in
    let schedule =
      Option.map (Schedule.of_solution formulation) milp.Solver.solution
    in
    let verification =
      match (config.Config.verify, schedule, predicted) with
      | true, Some schedule, Some predicted ->
        Some (verify_run schedule predicted)
      | _ -> None
    in
    finish milp
      (Option.map (fun _ -> Milp) schedule)
      schedule predicted verification
  end
  else begin
    (* The single-best-frequency baseline doubles as the bottom rung and
       as the energy floor no degraded answer may exceed: an optimizer
       that returns something worse than "pick the one best frequency"
       has negative value (the paper's savings are relative to it). *)
    let baseline =
      lazy
        (match Baselines.best_single_mode profile0 ~deadline:deadline0 with
        | None -> None
        | Some (mode, e_model) ->
          let schedule = Schedule.uniform cfg0 mode in
          Some (e_model, schedule, verify_run schedule e_model))
    in
    let floor_exceeded (v : Verify.report) =
      match Lazy.force baseline with
      | Some (_, _, bv) when bv.Verify.meets_deadline ->
        v.Verify.stats.Dvs_machine.Cpu.energy
        > bv.Verify.stats.Dvs_machine.Cpu.energy *. 1.0000001
      | Some _ | None -> false
    in
    let baseline_rung milp0 =
      match Lazy.force baseline with
      | Some (e_model, schedule, v) when v.Verify.meets_deadline ->
        finish milp0 (Some Single_mode) (Some schedule) (Some e_model)
          (Some v)
      | Some _ ->
        note Single_mode Verify_reject
          "single-mode baseline missed the deadline in simulation";
        finish milp0 None None None None
      | None ->
        note Single_mode Verify_reject "no single mode meets the deadline";
        finish milp0 None None None None
    in
    (* The rounded continuous schedule sits between the rounded LP and
       the single-frequency floor: already admitted against the exact
       deadline row at rounding time, it only needs the simulator's and
       the floor's blessing.  Absent (feature off, or rounding was
       inadmissible) it steps straight down. *)
    let continuous_rung milp0 =
      match rounded with
      | None when not config.Config.continuous_bound -> baseline_rung milp0
      | None ->
        note Continuous_rounded Verify_reject
          "continuous rounding infeasible or missed the deadline";
        baseline_rung milp0
      | Some (r : Relaxation.rounded) ->
        let predicted = r.Relaxation.objective /. 1e6 in
        let v = verify_run r.Relaxation.schedule predicted in
        if not v.Verify.meets_deadline then begin
          note Continuous_rounded Verify_reject
            "continuous-rounded schedule missed the deadline in simulation";
          baseline_rung milp0
        end
        else if floor_exceeded v then begin
          note Continuous_rounded Verify_reject
            "continuous-rounded schedule costs more than the single-mode \
             baseline";
          baseline_rung milp0
        end
        else
          finish milp0 (Some Continuous_rounded)
            (Some r.Relaxation.schedule) (Some predicted) (Some v)
    in
    let rounded_rung milp0 =
      match Dvs_lp.Simplex.solve formulation.Formulation.model with
      | Dvs_lp.Simplex.Optimal s ->
        (* Argmax rounding of the fractional mode variables, SOS1 group
           by group — the same move the solver's rounding heuristic
           makes, available even when branch and bound is unusable.  The
           LP objective is only a lower bound on this schedule's energy,
           so acceptance rests on the simulation, not the prediction. *)
        let predicted = s.Dvs_lp.Simplex.objective /. 1e6 in
        let schedule = Schedule.of_solution formulation s in
        let v = verify_run schedule predicted in
        if not v.Verify.meets_deadline then begin
          note Rounded_lp Verify_reject
            "rounded-LP schedule missed the deadline in simulation";
          continuous_rung milp0
        end
        else if floor_exceeded v then begin
          note Rounded_lp Verify_reject
            "rounded-LP schedule costs more than the single-mode baseline";
          continuous_rung milp0
        end
        else
          finish milp0 (Some Rounded_lp) (Some schedule) (Some predicted)
            (Some v)
      | Dvs_lp.Simplex.Infeasible | Dvs_lp.Simplex.Unbounded
      | Dvs_lp.Simplex.Iter_limit _ ->
        note Rounded_lp Numeric "LP relaxation did not solve";
        continuous_rung milp0
    in
    let milp_cause (m : Solver.result) =
      match m.Solver.outcome with
      | Solver.Degraded _ -> Worker_crash
      | Solver.No_solution Solver.Iter_limit
      | Solver.Feasible Solver.Iter_limit -> Numeric
      | Solver.No_solution _ | Solver.Feasible _ | Solver.Optimal
      | Solver.Infeasible | Solver.Unbounded -> Limit_hit
    in
    let retry_budget attempt =
      Int.max 1
        (int_of_float
           (float_of_int base_solver.Solver.Config.max_nodes
           *. (res.Resilience.retry_budget_factor ** float_of_int attempt)))
    in
    let milp0 = ref None in
    let rec milp_rung attempt m =
      (match !milp0 with None -> milp0 := Some m | Some _ -> ());
      let first () = Option.value ~default:m !milp0 in
      let rung = if attempt = 0 then Milp else Milp_retry attempt in
      let reject cause detail =
        note rung cause detail;
        let retryable =
          match cause with
          | Numeric | Worker_crash | Verify_reject -> true
          | Limit_hit -> false
        in
        if retryable && attempt < res.Resilience.max_retries then begin
          (* Cold restart with a deterministically backed-off node
             budget: no warm start (it may be implicated in the numeric
             failure) and no shared cache (so a poisoned or stale entry
             cannot replay the failure). *)
          let sc =
            { base_solver with
              Solver.Config.warm_start = []; warm_solution = None;
              root_bound = None; cache = None;
              max_nodes = retry_budget (attempt + 1) }
          in
          milp_rung (attempt + 1) (solve_attempt sc)
        end
        else rounded_rung (first ())
      in
      match (m.Solver.outcome, m.Solver.solution) with
      | (Solver.Infeasible | Solver.Unbounded), _ ->
        (* Terminal: no deadline-feasible schedule exists (or the model
           is broken); no lower rung can manufacture one. *)
        finish m None None None None
      | _, Some s ->
        let predicted = s.Dvs_lp.Simplex.objective /. 1e6 in
        let schedule = Schedule.of_solution formulation s in
        let v = verify_run schedule predicted in
        if not v.Verify.meets_deadline then
          reject Verify_reject
            (Format.asprintf
               "MILP schedule missed the deadline in simulation (solver: \
                %a)"
               Solver.pp_outcome m.Solver.outcome)
        else if m.Solver.outcome <> Solver.Optimal && floor_exceeded v then
          reject (milp_cause m)
            "degraded incumbent costs more than the single-mode baseline"
        else finish m (Some rung) (Some schedule) (Some predicted) (Some v)
      | _, None ->
        reject (milp_cause m)
          (Format.asprintf "%a" Solver.pp_outcome m.Solver.outcome)
    in
    (* A placeholder result for ladders entered below the MILP rung (the
       caller's budget ruled the solve out): no solution, a trivial
       bound, zeroed stats — downstream consumers see an honest
       "time limit before any incumbent" outcome. *)
    let skipped_milp () =
      { Solver.outcome = Solver.No_solution Solver.Time_limit;
        solution = None;
        bound = Float.neg_infinity;
        stats =
          { Solver.nodes = 0; lp_solves = 0; lp_pivots = 0; cache_hits = 0;
            cache_misses = 0; cache_evictions = 0; steals = 0;
            wall_seconds = 0.0; cpu_seconds = 0.0; workers = 0;
            worker_nodes = [||] } }
    in
    match res.Resilience.entry with
    | Resilience.From_milp -> milp_rung 0 (solve_attempt base_solver)
    | Resilience.From_rounded_lp ->
      note Milp Limit_hit
        "skipped: caller budget too small for a MILP attempt";
      rounded_rung (skipped_milp ())
    | Resilience.From_single_mode ->
      note Milp Limit_hit
        "skipped: caller budget too small for a MILP attempt";
      note Rounded_lp Limit_hit
        "skipped: caller budget too small for an LP attempt";
      baseline_rung (skipped_milp ())
  end

let optimize ?config machine cfg ~memory ~deadline =
  let profile = Dvs_profile.Profile.collect machine cfg ~memory in
  optimize_multi ?config
    ~regulator:machine.Dvs_machine.Config.regulator ~memory
    [ { Formulation.profile; weight = 1.0; deadline } ]

type sweep_result = {
  results : result array;
  sweep : Dvs_milp.Sweep.stats;
}

let optimize_sweep ?config ?verify_config ?profile ?session ?(instances = 1)
    ?(cut_rounds = 3) machine cfg ~memory ~deadlines =
  let config = match config with Some c -> c | None -> Config.default in
  if Array.length deadlines = 0 then
    invalid_arg "Pipeline.optimize_sweep: empty deadlines";
  Array.iter
    (fun d ->
      if not (Float.is_finite d && d > 0.0) then
        invalid_arg "Pipeline.optimize_sweep: deadlines must be positive")
    deadlines;
  let obs = Config.obs config in
  let tr = Dvs_obs.trace obs in
  let obs_on = Dvs_obs.enabled obs in
  let module Tr = Dvs_obs.Trace in
  let regulator = machine.Dvs_machine.Config.regulator in
  (* Profile and formulate once, at the loosest deadline: deadline-implied
     mode exclusions derived there stay exact at every tighter point, and
     each sweep point is only an RHS delta on the shared model. *)
  let d_loosest = Array.fold_left Float.max neg_infinity deadlines in
  let profile =
    match profile with
    | Some p -> p
    | None -> Dvs_profile.Profile.collect machine cfg ~memory
  in
  let category d = { Formulation.profile; weight = 1.0; deadline = d } in
  let { prep_formulation = formulation;
        prep_independent_edges = independent_edges } =
    prepare ~config ~regulator [ category d_loosest ]
  in
  let n_modes = Dvs_power.Mode.size formulation.Formulation.modes in
  let base_solver =
    config.Config.solver
    |> Solver.Config.with_sos1
         (List.map
            (fun (_, vars) -> Array.to_list vars)
            formulation.Formulation.kvars)
    |> Solver.Config.with_warm_start
         (List.concat_map
            (fun (_, vars) ->
              List.init n_modes (fun m ->
                  (vars.(m), if m = n_modes - 1 then 1.0 else 0.0)))
            formulation.Formulation.kvars)
    |> Solver.Config.with_branching Solver.Config.Pseudocost_gub
  in
  let deadline_row =
    match
      Dvs_lp.Model.constraint_indices formulation.Formulation.model
        ~name:"deadline"
    with
    | [ i ] -> i
    | rows ->
        invalid_arg
          (Printf.sprintf
             "Pipeline.optimize_sweep: expected one deadline row, found %d"
             (List.length rows))
  in
  let sweep_span =
    if obs_on then
      Tr.start tr ~stability:Tr.Stable "pipeline.sweep"
        ~attrs:[ ("points", Tr.Int (Array.length deadlines)) ]
    else Tr.start Tr.disabled "pipeline.sweep"
  in
  (* One prepared relaxation serves every grid point: [Relaxation.bound]
     is a pure function of (instance, deadline), so the sweep's
     pre-pruning callback is thread-safe by construction. *)
  let relax =
    if config.Config.continuous_bound then
      Some (Relaxation.prepare formulation ~regulator [ category d_loosest ])
    else None
  in
  let point_bound =
    Option.map
      (fun rx _ d_us -> Relaxation.bound rx ~deadlines_us:[| d_us |])
      relax
  in
  (* Per-point primal rounding: at lax deadlines the lift from a much
     tighter point is a poor incumbent, while the rounded continuous
     schedule is near-optimal — the sweep materializes whichever has the
     better known objective. *)
  let point_seed =
    Option.map
      (fun rx _ d_us ->
        Option.map
          (fun (r : Relaxation.rounded) ->
            (r.Relaxation.fixings, r.Relaxation.objective))
          (Relaxation.round rx ~deadlines_us:[| d_us |]))
      relax
  in
  let bound_at d =
    match relax with
    | Some rx ->
      Option.map
        (fun b -> b /. 1e6)
        (Relaxation.bound rx ~deadlines_us:[| d *. 1e6 |])
    | None -> None
  in
  let sw =
    Dvs_milp.Sweep.run ~config:base_solver ~instances ~cut_rounds
      ~per_point:(fun _ d cfgp ->
        (* Per-point implied fixings: exclusions get stronger as the
           deadline tightens (d is the row RHS, in microseconds). *)
        Solver.Config.with_fixings
          (Formulation.implied_fixings formulation [ category (d /. 1e6) ])
          cfgp)
      ?point_bound ?point_seed
      ~model:formulation.Formulation.model ~deadline_row
      ~deadlines:(Array.map (fun d -> d *. 1e6) deadlines)
      ()
  in
  if obs_on then
    Tr.finish tr sweep_span
      ~attrs:
        [ ("warm_started", Tr.Int sw.Dvs_milp.Sweep.stats.Dvs_milp.Sweep.instances_warm_started);
          ("cuts_applied", Tr.Int sw.Dvs_milp.Sweep.stats.Dvs_milp.Sweep.cuts_applied);
          ( "points_pruned",
            Tr.Int
              sw.Dvs_milp.Sweep.stats.Dvs_milp.Sweep.points_pruned_by_bound
          ) ];
  let vconfig =
    match verify_config with
    | Some c -> c
    | None -> profile.Dvs_profile.Profile.config
  in
  let cfg0 = profile.Dvs_profile.Profile.cfg in
  (* One summary session shared by every point (and every ladder
     fallback): the whole 30-point sweep pays for one recorded
     simulation.  Sessions are domain-safe, so the verification fan-out
     below shares it freely. *)
  let session =
    match session with
    | Some s -> s
    | None ->
      Verify.Session.create ~cold:config.Config.cold_verify vconfig cfg0
        ~memory
  in
  let point_result ~last i (p : Dvs_milp.Sweep.point) =
    let d = deadlines.(i) in
    let m = p.Dvs_milp.Sweep.result in
    let accept (s : Dvs_lp.Simplex.solution) =
      let predicted = s.Dvs_lp.Simplex.objective /. 1e6 in
      let schedule = Schedule.of_solution formulation s in
      (* Adjacent sweep points differ on few mode-set edges, so chain
         each worker's verifications incrementally. *)
      let v =
        match !last with
        | None ->
          Verify.Session.check ~obs session ~schedule ~deadline:d
            ~predicted_energy:predicted
        | Some r ->
          Verify.Session.check_incremental ~obs session ~against:r ~schedule
            ~deadline:d ~predicted_energy:predicted
      in
      last := Some v;
      if v.Verify.meets_deadline then
        Some
          {
            categories = [ category d ];
            formulation;
            milp = m;
            predicted_energy = Some predicted;
            schedule = Some schedule;
            verification = Some v;
            solve_seconds = m.Solver.stats.Solver.wall_seconds;
            independent_edges;
            rung = Some Milp;
            descents = [];
            continuous_bound = bound_at d;
          }
      else None
    in
    let fallback () =
      (* Anything short of a verified optimum falls back to the classic
         per-point degradation ladder, full resilience included. *)
      if obs_on then
        Tr.event tr ~stability:Tr.Stable "pipeline.sweep_fallback"
          ~attrs:
            [ ("point", Tr.Int i);
              ("outcome",
               Tr.String (Format.asprintf "%a" Solver.pp_outcome
                            m.Solver.outcome)) ];
      optimize_multi ~config ?verify_config ~session ~regulator ~memory
        [ category d ]
    in
    match (m.Solver.outcome, m.Solver.solution) with
    | (Solver.Infeasible | Solver.Unbounded), _ ->
        (* Terminal exactly as in the ladder: no rung can manufacture a
           deadline-feasible schedule. *)
        {
          categories = [ category d ]; formulation; milp = m;
          predicted_energy = None; schedule = None; verification = None;
          solve_seconds = m.Solver.stats.Solver.wall_seconds;
          independent_edges; rung = None; descents = [];
          continuous_bound = bound_at d;
        }
    | Solver.Optimal, Some s -> (
        match accept s with Some r -> r | None -> fallback ())
    | _ -> fallback ()
  in
  (* Verification (a full simulator run per point) and any ladder
     fallbacks are independent across points, and their metrics are
     order-independent totals — so they always fan out across available
     cores, even when [instances = 1] keeps the solver-side sweep (whose
     basis chaining and incumbent lifting are order-sensitive)
     deterministic. *)
  let points = sw.Dvs_milp.Sweep.points in
  let np = Array.length points in
  let results = Array.make np None in
  let n_workers =
    Int.min np (Int.max instances (Domain.recommended_domain_count ()))
  in
  if n_workers <= 1 then begin
    let last = ref None in
    Array.iteri
      (fun i p -> results.(i) <- Some (point_result ~last i p))
      points
  end
  else begin
    let next = Atomic.make 0 in
    let worker () =
      let last = ref None in
      let rec drain () =
        let i = Atomic.fetch_and_add next 1 in
        if i < np then begin
          results.(i) <- Some (point_result ~last i points.(i));
          drain ()
        end
      in
      drain ()
    in
    let doms = Array.init (n_workers - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    Array.iter Domain.join doms
  end;
  let results =
    Array.map
      (function Some r -> r | None -> assert false (* every index drained *))
      results
  in
  { results; sweep = sw.Dvs_milp.Sweep.stats }
