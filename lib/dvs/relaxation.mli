(** Continuous-schedule relaxation of a MILP instance: the bridge between
    {!Formulation} and the exact {!Dvs_analytical.Liyao} kernel.

    [prepare] lowers a formulation onto the kernel's region form, one
    region per representative edge group and category: the group's
    per-mode operating points are its total block time and weighted block
    energy summed over every edge the representative stands for — the
    exact coefficients of the MILP's deadline row and objective, in the
    model's own units (microseconds / microjoules).  Mode-transition
    terms are dropped from the relaxation; both their energy and time
    contributions are nonnegative, so the bound stays valid and the
    relaxed deadline is no tighter than the real one.

    Because each category's deadline must hold on its own in any feasible
    MILP assignment, the multi-category bound is the sum of per-category
    kernel optima — each category solving its own single-deadline
    instance over the shared groups.

    [round] snaps the continuous schedule back onto the discrete mode
    set: each group takes the {e faster} endpoint of its active envelope
    segment (time rounds down, so block-time feasibility is preserved),
    the fastest candidate across categories wins, and the result is
    admitted only if its transition-inclusive time — recomputed exactly
    as the MILP's deadline row would — still meets every category
    deadline.  When the per-group snap's transition bill overruns a
    deadline (common on real programs, whose hot paths cross group
    boundaries constantly), the rounding flattens to a uniform schedule
    at the fastest snapped mode — transition-free and blockwise no
    slower than the snap, so it inherits the snap's block-time
    feasibility.  The rounded schedule seeds the branch-and-bound
    incumbent and serves as the degradation ladder's
    better-than-single-frequency floor rung. *)

type t

val prepare :
  Formulation.t -> regulator:Dvs_power.Switch_cost.regulator ->
  Formulation.category list -> t
(** Precompute the per-category group curves and transition lists.  The
    categories must be the ones the formulation was built from (same
    order); their deadlines are ignored here — [bound] and [round] take
    deadlines explicitly so one prepared instance serves a whole sweep. *)

val bound : t -> deadlines_us:float array -> float option
(** Exact continuous lower bound on the MILP objective, in model units
    (weighted microjoules), for one deadline per category (microseconds,
    aligned with the category list given to [prepare]).  [None] when
    even the all-fastest assignment overruns a deadline — then the MILP
    itself is infeasible.  Raises [Invalid_argument] on a deadline-count
    mismatch. *)

type rounded = {
  fixings : (Dvs_lp.Model.var * float) list;
      (** every mode binary fixed 0/1 — a complete integral assignment
          for {!Dvs_milp.Solver.Config.with_warm_start} *)
  schedule : Schedule.t;  (** the same assignment as mode-set edges *)
  objective : float;
      (** its exact model objective (weighted microjoules), transition
          energy included *)
}

val round : t -> deadlines_us:float array -> rounded option
(** Snap the continuous optimum to discrete modes as described above.
    [None] when the continuous problem is infeasible or the snapped
    schedule's transition-inclusive time misses a deadline (callers then
    fall back to the all-fastest warm start). *)
