open Dvs_ir

type t = { edge_mode : int array; entry_mode : int }

let of_solution (f : Formulation.t) sol =
  { edge_mode =
      Array.init f.Formulation.n_real_edges (fun id ->
          Formulation.mode_of_edge f sol id);
    entry_mode = Formulation.mode_of_edge f sol f.Formulation.virtual_edge }

let uniform cfg mode =
  { edge_mode = Array.make (Array.length (Cfg.edges cfg)) mode;
    entry_mode = mode }

let edge_modes t cfg e =
  match Cfg.edge_index cfg e with
  | idx -> Some t.edge_mode.(idx)
  | exception Not_found -> None

let equal a b =
  a.entry_mode = b.entry_mode && a.edge_mode = b.edge_mode

let diff a b =
  if Array.length a.edge_mode <> Array.length b.edge_mode then
    invalid_arg "Schedule.diff: schedules are for different CFGs";
  let edges = ref [] in
  for i = Array.length a.edge_mode - 1 downto 0 do
    if a.edge_mode.(i) <> b.edge_mode.(i) then edges := i :: !edges
  done;
  (a.entry_mode <> b.entry_mode, !edges)

let distinct_modes t =
  List.sort_uniq compare (t.entry_mode :: Array.to_list t.edge_mode)

let to_string t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "entry %d\n" t.entry_mode);
  Array.iteri
    (fun i m -> Buffer.add_string buf (Printf.sprintf "edge %d %d\n" i m))
    t.edge_mode;
  Buffer.contents buf

let of_string s =
  let lines =
    String.split_on_char '\n' s
    |> List.map String.trim
    |> List.filter (fun l -> l <> "")
  in
  let entry = ref None in
  let edges = ref [] in
  let error = ref None in
  List.iter
    (fun line ->
      if !error = None then
        match String.split_on_char ' ' line with
        | [ "entry"; m ] -> (
          match int_of_string_opt m with
          | Some m -> entry := Some m
          | None -> error := Some ("bad entry mode: " ^ line))
        | [ "edge"; i; m ] -> (
          match (int_of_string_opt i, int_of_string_opt m) with
          | Some i, Some m -> edges := (i, m) :: !edges
          | _ -> error := Some ("bad edge line: " ^ line))
        | _ -> error := Some ("unrecognized line: " ^ line))
    lines;
  match (!error, !entry) with
  | Some e, _ -> Error e
  | None, None -> Error "missing entry line"
  | None, Some entry_mode ->
    let edges = List.rev !edges in
    let n = List.length edges in
    let edge_mode = Array.make n 0 in
    let ok = ref true in
    List.iter
      (fun (i, m) ->
        if i < 0 || i >= n then ok := false else edge_mode.(i) <- m)
      edges;
    if !ok then Ok { edge_mode; entry_mode }
    else Error "edge indices must be dense 0..n-1"

let pp ppf t =
  Format.fprintf ppf "@[<v>entry mode: %d@," t.entry_mode;
  Array.iteri (fun i m -> Format.fprintf ppf "edge %d -> mode %d@," i m)
    t.edge_mode;
  Format.fprintf ppf "@]"
