let deadline_tolerance = 0.005

type report = {
  stats : Dvs_machine.Cpu.run_stats;
  deadline : float;
  meets_deadline : bool;
  predicted_energy : float;
  energy_error : float;
  token : int;
}

let make_report stats ~deadline ~predicted_energy ~token =
  let meets_deadline =
    stats.Dvs_machine.Cpu.time <= deadline *. (1.0 +. deadline_tolerance)
  in
  let energy_error =
    if predicted_energy > 0.0 then
      Float.abs (stats.Dvs_machine.Cpu.energy -. predicted_energy)
      /. predicted_energy
    else 0.0
  in
  { stats; deadline; meets_deadline; predicted_energy; energy_error; token }

let simulate ?fuel ?obs config cfg ~memory ~schedule =
  let rc =
    Dvs_machine.Cpu.Run_config.make ?fuel ?obs
      ~initial_mode:schedule.Schedule.entry_mode
      ~edge_modes:(Schedule.edge_modes schedule cfg)
      ()
  in
  Dvs_machine.Cpu.run ~rc config cfg ~memory

module Session = struct
  type t = {
    config : Dvs_machine.Config.t;
    cfg : Dvs_ir.Cfg.t;
    memory : int array;
    fuel : int option;
    cold : bool;
    summary : Dvs_machine.Summary.t option;  (* None iff cold *)
  }

  let create ?fuel ?(cold = false) ?obs config cfg ~memory =
    let memory = Array.copy memory in
    let summary =
      if cold then None
      else Some (Dvs_machine.Summary.create ?fuel ?obs config cfg ~memory)
    in
    { config; cfg; memory; fuel; cold; summary }

  let cold t = t.cold

  let edge_mode_of schedule =
    Array.map Option.some schedule.Schedule.edge_mode

  let check ?obs t ~schedule ~deadline ~predicted_energy =
    match t.summary with
    | None ->
      let stats =
        simulate ?fuel:t.fuel ?obs t.config t.cfg ~memory:t.memory ~schedule
      in
      make_report stats ~deadline ~predicted_energy ~token:0
    | Some s ->
      let r =
        Dvs_machine.Summary.replay ?obs s
          ~entry_mode:schedule.Schedule.entry_mode
          ~edge_mode:(edge_mode_of schedule)
      in
      make_report r.Dvs_machine.Summary.stats ~deadline ~predicted_energy
        ~token:r.Dvs_machine.Summary.token

  let check_incremental ?obs t ~against ~schedule ~deadline ~predicted_energy
      =
    match t.summary with
    | None ->
      let stats =
        simulate ?fuel:t.fuel ?obs t.config t.cfg ~memory:t.memory ~schedule
      in
      make_report stats ~deadline ~predicted_energy ~token:0
    | Some s ->
      let r =
        if against.token = 0 then
          Dvs_machine.Summary.replay ?obs s
            ~entry_mode:schedule.Schedule.entry_mode
            ~edge_mode:(edge_mode_of schedule)
        else
          Dvs_machine.Summary.replay_incremental ?obs s
            ~against:against.token
            ~entry_mode:schedule.Schedule.entry_mode
            ~edge_mode:(edge_mode_of schedule)
      in
      make_report r.Dvs_machine.Summary.stats ~deadline ~predicted_energy
        ~token:r.Dvs_machine.Summary.token
end
