type report = {
  stats : Dvs_machine.Cpu.run_stats;
  deadline : float;
  meets_deadline : bool;
  predicted_energy : float;
  energy_error : float;
}

let run ?fuel ?obs config cfg ~memory ~schedule ~deadline ~predicted_energy =
  let stats =
    Dvs_machine.Cpu.run ?fuel ?obs
      ~initial_mode:schedule.Schedule.entry_mode
      ~edge_modes:(Schedule.edge_modes schedule cfg)
      config cfg ~memory
  in
  let meets_deadline =
    stats.Dvs_machine.Cpu.time <= deadline *. 1.005
  in
  let energy_error =
    if predicted_energy > 0.0 then
      Float.abs (stats.Dvs_machine.Cpu.energy -. predicted_energy)
      /. predicted_energy
    else 0.0
  in
  { stats; deadline; meets_deadline; predicted_energy; energy_error }
