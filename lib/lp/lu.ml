(* Sparse LU with Markowitz ordering and threshold partial pivoting.

   LP bases are mostly triangular (slacks plus short structural
   columns), so the factorization runs in two phases.  A singleton
   phase first peels row and column singletons with two worklist
   queues: a column singleton contributes a U row and no arithmetic at
   all, a row singleton contributes an L column whose multipliers are
   exact divisions — neither creates fill or roundoff, and the whole
   phase is O(nnz).  What survives is the "bump", typically a small
   fraction of the basis, and only there does the right-looking
   Markowitz elimination run: each step scans the active entries to
   find the cheapest acceptable pivot ((r_i - 1)(c_j - 1) Markowitz
   cost, |a| >= tau * colmax threshold), then merges the pivot row
   into every active row that carries the pivot column, with
   exact-zero cancellations dropped so downstream solves see them as
   skips.  Permutations are recorded as they happen; the factors are
   remapped into permuted coordinates and transposed (counting sort)
   once at the end, so each factor exists in both column- and
   row-major form and all four triangular solves can run in scatter
   (push) order with zero-skip tests. *)

type t = {
  m : int;
  (* L: unit lower triangular, strict part, permuted coordinates. *)
  lc_ptr : int array;
  lc_idx : int array;
  lc_val : float array;
  lr_ptr : int array;
  lr_idx : int array;
  lr_val : float array;
  (* U: strict upper part plus a dense diagonal. *)
  uc_ptr : int array;
  uc_idx : int array;
  uc_val : float array;
  ur_ptr : int array;
  ur_idx : int array;
  ur_val : float array;
  udiag : float array;
  p : int array;  (* step -> original row *)
  q : int array;  (* step -> original column (basis position) *)
  nnz : int;
  flops : int;
}

let nnz t = t.nnz

let flops t = t.flops

let abs_tol = 1e-11 (* matches the dense Gauss-Jordan singularity test *)

let grow_i a used need =
  if Array.length a >= need then a
  else begin
    let b = Array.make (max need ((2 * Array.length a) + 8)) 0 in
    Array.blit a 0 b 0 used;
    b
  end

let grow_f a used need =
  if Array.length a >= need then a
  else begin
    let b = Array.make (max need ((2 * Array.length a) + 8)) 0.0 in
    Array.blit a 0 b 0 used;
    b
  end

(* Transpose a CSC-like (ptr, idx, val) of [m] columns into CSR over
   [m] rows, with column indices stored per row. *)
let transpose m ptr idx vals =
  let len = ptr.(m) in
  let cnt = Array.make (m + 1) 0 in
  for p = 0 to len - 1 do
    cnt.(idx.(p)) <- cnt.(idx.(p)) + 1
  done;
  let tptr = Array.make (m + 1) 0 in
  for i = 0 to m - 1 do
    tptr.(i + 1) <- tptr.(i) + cnt.(i)
  done;
  let pos = Array.copy tptr in
  let tidx = Array.make len 0 and tval = Array.make len 0.0 in
  for j = 0 to m - 1 do
    for p = ptr.(j) to ptr.(j + 1) - 1 do
      let i = idx.(p) in
      let q = pos.(i) in
      tidx.(q) <- j;
      tval.(q) <- vals.(p);
      pos.(i) <- q + 1
    done
  done;
  (tptr, tidx, tval)

let factor ~m ~ptr ~row ~vals ?(tau = 0.1) () =
  if m = 0 then
    Some
      {
        m = 0;
        lc_ptr = [| 0 |]; lc_idx = [||]; lc_val = [||];
        lr_ptr = [| 0 |]; lr_idx = [||]; lr_val = [||];
        uc_ptr = [| 0 |]; uc_idx = [||]; uc_val = [||];
        ur_ptr = [| 0 |]; ur_idx = [||]; ur_val = [||];
        udiag = [||];
        p = [||]; q = [||];
        nnz = 0;
        flops = 0;
      }
  else begin
    (* Static filtered copy of the basis (explicit zeros dropped): CSC
       plus its CSR transpose.  The singleton phase works on these with
       alive flags — it never creates fill, so nothing grows. *)
    let cptr = Array.make (m + 1) 0 in
    for j = 0 to m - 1 do
      let c = ref 0 in
      for p = ptr.(j) to ptr.(j + 1) - 1 do
        if vals.(p) <> 0.0 then incr c
      done;
      cptr.(j + 1) <- cptr.(j) + !c
    done;
    let len = cptr.(m) in
    let crow = Array.make (max 1 len) 0 in
    let cval = Array.make (max 1 len) 0.0 in
    let pos = ref 0 in
    for j = 0 to m - 1 do
      for p = ptr.(j) to ptr.(j + 1) - 1 do
        if vals.(p) <> 0.0 then begin
          crow.(!pos) <- row.(p);
          cval.(!pos) <- vals.(p);
          incr pos
        end
      done
    done;
    let rptr, rcol, rval = transpose m cptr crow cval in
    let arcnt = Array.make m 0 and accnt = Array.make m 0 in
    for j = 0 to m - 1 do
      accnt.(j) <- cptr.(j + 1) - cptr.(j)
    done;
    for i = 0 to m - 1 do
      arcnt.(i) <- rptr.(i + 1) - rptr.(i)
    done;
    let rowgone = Array.make m false and colgone = Array.make m false in
    let perm_p = Array.make m (-1) and perm_q = Array.make m (-1) in
    (* L columns and U rows accumulate in step order. *)
    let lc_ptr = Array.make (m + 1) 0 in
    let lc_idx = ref [||] and lc_val = ref [||] and lc_len = ref 0 in
    let ur_ptr = Array.make (m + 1) 0 in
    let ur_idx = ref [||] and ur_val = ref [||] and ur_len = ref 0 in
    let udiag = Array.make m 0.0 in
    let work = ref 0 in
    let step = ref 0 in
    (* ---- Phase 1: peel row/column singletons -------------------------- *)
    (* A row or column is pushed when its alive count drops to 1, which
       happens at most once (counts only decrease), so each queue needs
       at most m slots.  Entries are validated when popped — a stale one
       (already eliminated, or count changed) is skipped.  A singleton
       whose pivot is below [abs_tol] is left alone; the bump phase will
       refuse it too and report the basis singular if nothing else
       covers it. *)
    let qc = Array.make m 0 and qc_h = ref 0 and qc_t = ref 0 in
    let qr = Array.make m 0 and qr_h = ref 0 and qr_t = ref 0 in
    for j = 0 to m - 1 do
      if accnt.(j) = 1 then begin
        qc.(!qc_t) <- j;
        incr qc_t
      end
    done;
    for i = 0 to m - 1 do
      if arcnt.(i) = 1 then begin
        qr.(!qr_t) <- i;
        incr qr_t
      end
    done;
    while !qc_h < !qc_t || !qr_h < !qr_t do
      if !qc_h < !qc_t then begin
        (* Column singleton: its lone alive row pivots; the row's other
           entries become the U row; no L entries, no arithmetic. *)
        let j = qc.(!qc_h) in
        incr qc_h;
        if (not colgone.(j)) && accnt.(j) = 1 then begin
          let i = ref (-1) and piv = ref 0.0 in
          (try
             for p = cptr.(j) to cptr.(j + 1) - 1 do
               if not rowgone.(crow.(p)) then begin
                 i := crow.(p);
                 piv := cval.(p);
                 raise Exit
               end
             done
           with Exit -> ());
          if !i >= 0 && Float.abs !piv >= abs_tol then begin
            let i = !i in
            perm_p.(!step) <- i;
            perm_q.(!step) <- j;
            udiag.(!step) <- !piv;
            lc_ptr.(!step) <- !lc_len;
            ur_ptr.(!step) <- !ur_len;
            for p = rptr.(i) to rptr.(i + 1) - 1 do
              let c = rcol.(p) in
              if c <> j && not colgone.(c) then begin
                ur_idx := grow_i !ur_idx !ur_len (!ur_len + 1);
                ur_val := grow_f !ur_val !ur_len (!ur_len + 1);
                !ur_idx.(!ur_len) <- c;
                !ur_val.(!ur_len) <- rval.(p);
                incr ur_len;
                accnt.(c) <- accnt.(c) - 1;
                if accnt.(c) = 1 then begin
                  qc.(!qc_t) <- c;
                  incr qc_t
                end
              end
            done;
            rowgone.(i) <- true;
            colgone.(j) <- true;
            incr step
          end
        end
      end
      else begin
        (* Row singleton: pivot on its lone alive column; the column's
           other entries become exact L multipliers. *)
        let i = qr.(!qr_h) in
        incr qr_h;
        if (not rowgone.(i)) && arcnt.(i) = 1 then begin
          let jj = ref (-1) and piv = ref 0.0 in
          (try
             for p = rptr.(i) to rptr.(i + 1) - 1 do
               if not colgone.(rcol.(p)) then begin
                 jj := rcol.(p);
                 piv := rval.(p);
                 raise Exit
               end
             done
           with Exit -> ());
          if !jj >= 0 && Float.abs !piv >= abs_tol then begin
            let j = !jj and piv = !piv in
            perm_p.(!step) <- i;
            perm_q.(!step) <- j;
            udiag.(!step) <- piv;
            lc_ptr.(!step) <- !lc_len;
            ur_ptr.(!step) <- !ur_len;
            for p = cptr.(j) to cptr.(j + 1) - 1 do
              let r = crow.(p) in
              if r <> i && not rowgone.(r) then begin
                lc_idx := grow_i !lc_idx !lc_len (!lc_len + 1);
                lc_val := grow_f !lc_val !lc_len (!lc_len + 1);
                !lc_idx.(!lc_len) <- r;
                !lc_val.(!lc_len) <- cval.(p) /. piv;
                incr lc_len;
                incr work;
                arcnt.(r) <- arcnt.(r) - 1;
                if arcnt.(r) = 1 then begin
                  qr.(!qr_t) <- r;
                  incr qr_t
                end
              end
            done;
            rowgone.(i) <- true;
            colgone.(j) <- true;
            incr step
          end
        end
      end
    done;
    (* ---- Phase 2: Markowitz elimination on the bump ------------------- *)
    let singular = ref false in
    if !step < m then begin
      (* Bump rows become growable (cols, vals) pairs; alive column
         counts carry over in [accnt]. *)
      let nact = ref 0 in
      let act = Array.make (m - !step) 0 in
      for i = 0 to m - 1 do
        if not rowgone.(i) then begin
          act.(!nact) <- i;
          incr nact
        end
      done;
      let rcols = Array.make m [||] and rvals = Array.make m [||] in
      let rlen = Array.make m 0 in
      for ai = 0 to !nact - 1 do
        let i = act.(ai) in
        let nc = Array.make (max 4 arcnt.(i)) 0 in
        let nv = Array.make (max 4 arcnt.(i)) 0.0 in
        let l = ref 0 in
        for p = rptr.(i) to rptr.(i + 1) - 1 do
          let c = rcol.(p) in
          if not colgone.(c) then begin
            nc.(!l) <- c;
            nv.(!l) <- rval.(p);
            incr l
          end
        done;
        rcols.(i) <- nc;
        rvals.(i) <- nv;
        rlen.(i) <- !l
      done;
      let ccnt = accnt in
      (* Per-step scratch: column maxima (stamped), pivot-row scatter
         (stamped), per-target-row merge marks (stamped), and a shared
         merge row. *)
      let colmax = Array.make m 0.0 in
      let colstamp = Array.make m (-1) in
      let pval = Array.make m 0.0 in
      let pstamp = Array.make m (-1) in
      let used = Array.make m (-1) in
      let sc_cols = Array.make m 0 and sc_vals = Array.make m 0.0 in
      let tick = ref 0 in
      (try
         for step = !step to m - 1 do
           (* Pass 1: column maxima over the active submatrix. *)
           for ai = 0 to !nact - 1 do
             let i = act.(ai) in
             let cols = rcols.(i) and vs = rvals.(i) in
             for e = 0 to rlen.(i) - 1 do
               let c = cols.(e) in
               let a = Float.abs vs.(e) in
               if colstamp.(c) <> step then begin
                 colstamp.(c) <- step;
                 colmax.(c) <- a
               end
               else if a > colmax.(c) then colmax.(c) <- a
             done
           done;
           (* Pass 2: cheapest acceptable pivot (Markowitz cost,
              threshold acceptance, deterministic magnitude/index
              tie-breaks). *)
           let pi = ref (-1) and pj = ref (-1) in
           let best_cost = ref max_int and best_mag = ref 0.0 in
           for ai = 0 to !nact - 1 do
             let i = act.(ai) in
             let cols = rcols.(i) and vs = rvals.(i) in
             let ri = rlen.(i) - 1 in
             for e = 0 to rlen.(i) - 1 do
               let c = cols.(e) in
               let a = Float.abs vs.(e) in
               if a >= abs_tol && a >= tau *. colmax.(c) then begin
                 let cost = ri * (ccnt.(c) - 1) in
                 if
                   cost < !best_cost
                   || (cost = !best_cost
                      && (a > !best_mag
                         || (a = !best_mag
                            && (!pi < 0 || i < !pi || (i = !pi && c < !pj)))))
                 then begin
                   best_cost := cost;
                   best_mag := a;
                   pi := i;
                   pj := c
                 end
               end
             done
           done;
           if !pi < 0 then begin
             singular := true;
             raise Exit
           end;
           let pi = !pi and pj = !pj in
           perm_p.(step) <- pi;
           perm_q.(step) <- pj;
           (* Scatter the pivot row; record its U row. *)
           let pcols = rcols.(pi) and pvals_r = rvals.(pi) in
           let plen = rlen.(pi) in
           let piv = ref 0.0 in
           ur_ptr.(step) <- !ur_len;
           let need = !ur_len + plen - 1 in
           ur_idx := grow_i !ur_idx !ur_len need;
           ur_val := grow_f !ur_val !ur_len need;
           for e = 0 to plen - 1 do
             let c = pcols.(e) and v = pvals_r.(e) in
             if c = pj then piv := v
             else begin
               pstamp.(c) <- step;
               pval.(c) <- v;
               !ur_idx.(!ur_len) <- c;
               !ur_val.(!ur_len) <- v;
               incr ur_len
             end
           done;
           let piv = !piv in
           udiag.(step) <- piv;
           (* Pass 3: eliminate the pivot column from every other active
              row that carries it. *)
           lc_ptr.(step) <- !lc_len;
           for ai = 0 to !nact - 1 do
             let i = act.(ai) in
             if i <> pi then begin
               let cols = rcols.(i) and vs = rvals.(i) in
               let len = rlen.(i) in
               let hit = ref (-1) in
               for e = 0 to len - 1 do
                 if cols.(e) = pj then hit := e
               done;
               if !hit >= 0 then begin
                 let f = vs.(!hit) /. piv in
                 work := !work + 1;
                 lc_idx := grow_i !lc_idx !lc_len (!lc_len + 1);
                 lc_val := grow_f !lc_val !lc_len (!lc_len + 1);
                 !lc_idx.(!lc_len) <- i;
                 !lc_val.(!lc_len) <- f;
                 incr lc_len;
                 incr tick;
                 let tk = !tick in
                 (* Merge into the shared scratch row, then copy back,
                    growing the row's own storage only when it must. *)
                 let nl = ref 0 in
                 for e = 0 to len - 1 do
                   let c = cols.(e) in
                   if c = pj then ccnt.(pj) <- ccnt.(pj) - 1
                   else if pstamp.(c) = step then begin
                     used.(c) <- tk;
                     let v = vs.(e) -. (f *. pval.(c)) in
                     work := !work + 2;
                     if v <> 0.0 then begin
                       sc_cols.(!nl) <- c;
                       sc_vals.(!nl) <- v;
                       incr nl
                     end
                     else ccnt.(c) <- ccnt.(c) - 1
                   end
                   else begin
                     sc_cols.(!nl) <- c;
                     sc_vals.(!nl) <- vs.(e);
                     incr nl
                   end
                 done;
                 (* Fill-in: pivot-row columns absent from row i. *)
                 for e = 0 to plen - 1 do
                   let c = pcols.(e) in
                   if c <> pj && used.(c) <> tk then begin
                     sc_cols.(!nl) <- c;
                     sc_vals.(!nl) <- -.f *. pval.(c);
                     work := !work + 2;
                     incr nl;
                     ccnt.(c) <- ccnt.(c) + 1
                   end
                 done;
                 let nl = !nl in
                 if Array.length cols < nl then begin
                   let cap = min m (nl + (nl / 2)) in
                   rcols.(i) <- Array.make cap 0;
                   rvals.(i) <- Array.make cap 0.0
                 end;
                 Array.blit sc_cols 0 rcols.(i) 0 nl;
                 Array.blit sc_vals 0 rvals.(i) 0 nl;
                 rlen.(i) <- nl
               end
             end
           done;
           (* Retire the pivot row and column. *)
           let w = ref 0 in
           for ai = 0 to !nact - 1 do
             let i = act.(ai) in
             if i <> pi then begin
               act.(!w) <- i;
               incr w
             end
           done;
           nact := !w;
           for e = 0 to plen - 1 do
             let c = pcols.(e) in
             ccnt.(c) <- ccnt.(c) - 1
           done
         done
       with Exit -> ())
    end;
    if !singular then None
    else begin
      lc_ptr.(m) <- !lc_len;
      ur_ptr.(m) <- !ur_len;
      let pinv = Array.make m 0 and qinv = Array.make m 0 in
      for k = 0 to m - 1 do
        pinv.(perm_p.(k)) <- k;
        qinv.(perm_q.(k)) <- k
      done;
      (* Remap stored indices into permuted coordinates: L entries are
         original rows (pivoted at a later step), U entries original
         columns (ditto). *)
      let lc_idx = Array.sub !lc_idx 0 !lc_len in
      let lc_val = Array.sub !lc_val 0 !lc_len in
      for p = 0 to !lc_len - 1 do
        lc_idx.(p) <- pinv.(lc_idx.(p))
      done;
      let ur_idx = Array.sub !ur_idx 0 !ur_len in
      let ur_val = Array.sub !ur_val 0 !ur_len in
      for p = 0 to !ur_len - 1 do
        ur_idx.(p) <- qinv.(ur_idx.(p))
      done;
      let lr_ptr, lr_idx, lr_val = transpose m lc_ptr lc_idx lc_val in
      let uc_ptr, uc_idx, uc_val = transpose m ur_ptr ur_idx ur_val in
      Some
        {
          m;
          lc_ptr; lc_idx; lc_val;
          lr_ptr; lr_idx; lr_val;
          uc_ptr; uc_idx; uc_val;
          ur_ptr; ur_idx; ur_val;
          udiag;
          p = perm_p;
          q = perm_q;
          nnz = m + !lc_len + !ur_len;
          flops = 2 * !work;
        }
    end
  end

(* FTRAN: B w = a, i.e. w = Q U^-1 L^-1 P a.  Both triangular passes
   scatter: a component that is still exactly zero when its step comes
   up pushes nothing and is counted as a skip. *)
let ftran t ~x ~tmp =
  let m = t.m in
  let fl = ref 0 and skips = ref 0 in
  for k = 0 to m - 1 do
    tmp.(k) <- x.(t.p.(k))
  done;
  (* L z = Pa, forward. *)
  for k = 0 to m - 1 do
    let v = tmp.(k) in
    if v = 0.0 then incr skips
    else
      for p = t.lc_ptr.(k) to t.lc_ptr.(k + 1) - 1 do
        tmp.(t.lc_idx.(p)) <- tmp.(t.lc_idx.(p)) -. (t.lc_val.(p) *. v);
        fl := !fl + 2
      done
  done;
  (* U y = z, backward. *)
  for k = m - 1 downto 0 do
    let v = tmp.(k) in
    if v = 0.0 then incr skips
    else begin
      let v = v /. t.udiag.(k) in
      tmp.(k) <- v;
      incr fl;
      for p = t.uc_ptr.(k) to t.uc_ptr.(k + 1) - 1 do
        tmp.(t.uc_idx.(p)) <- tmp.(t.uc_idx.(p)) -. (t.uc_val.(p) *. v);
        fl := !fl + 2
      done
    end
  done;
  for k = 0 to m - 1 do
    x.(t.q.(k)) <- tmp.(k)
  done;
  (!fl, !skips)

(* BTRAN: B^T y = c, i.e. y = P^T L^-T U^-T Q^T c. *)
let btran t ~x ~tmp =
  let m = t.m in
  let fl = ref 0 and skips = ref 0 in
  for k = 0 to m - 1 do
    tmp.(k) <- x.(t.q.(k))
  done;
  (* U^T z = Q^T c, forward, scattering along U's rows. *)
  for k = 0 to m - 1 do
    let v = tmp.(k) in
    if v = 0.0 then incr skips
    else begin
      let v = v /. t.udiag.(k) in
      tmp.(k) <- v;
      incr fl;
      for p = t.ur_ptr.(k) to t.ur_ptr.(k + 1) - 1 do
        tmp.(t.ur_idx.(p)) <- tmp.(t.ur_idx.(p)) -. (t.ur_val.(p) *. v);
        fl := !fl + 2
      done
    end
  done;
  (* L^T w = z, backward, scattering along L's rows. *)
  for k = m - 1 downto 0 do
    let v = tmp.(k) in
    if v = 0.0 then incr skips
    else
      for p = t.lr_ptr.(k) to t.lr_ptr.(k + 1) - 1 do
        tmp.(t.lr_idx.(p)) <- tmp.(t.lr_idx.(p)) -. (t.lr_val.(p) *. v);
        fl := !fl + 2
      done
  done;
  for k = 0 to m - 1 do
    x.(t.p.(k)) <- tmp.(k)
  done;
  (!fl, !skips)
