(** Sparse LU factorization of a simplex basis.

    [factor] first peels row and column singletons in O(nnz) with
    worklist queues — LP bases are mostly triangular, so this usually
    eliminates nearly everything, exactly and without fill — then runs
    a right-looking sparse Gaussian elimination on the residual bump
    with Markowitz pivot ordering (minimize [(r_i - 1) * (c_j - 1)]
    over the active submatrix) under threshold partial pivoting: an
    entry is an acceptable pivot only if its magnitude is at least
    [tau] times the largest magnitude in its active column.  The
    result is a permuted factorization [P B Q = L U] with [L] unit
    lower triangular.

    Both factors are stored twice — by column and by row — so all four
    triangular solves (FTRAN and BTRAN, i.e. [B w = a] and
    [B^T y = c]) run in scatter form: each step reads one solved
    component and, only when it is nonzero, pushes updates into the
    components it feeds.  A zero component costs one load and one test,
    which is where right-hand-side hypersparsity (unit vectors, slack
    columns, sparse structural columns) turns into skipped work; the
    solves report those skips so callers can surface them as counters.

    This module knows nothing about eta files or the simplex: it
    factors one basis matrix handed to it in CSC form and solves
    against that factorization.  {!Simplex} layers product-form eta
    updates on top. *)

type t

val factor :
  m:int ->
  ptr:int array ->
  row:int array ->
  vals:float array ->
  ?tau:float ->
  unit ->
  t option
(** [factor ~m ~ptr ~row ~vals ()] factors the [m]x[m] matrix whose
    column [j] holds entries [row.(p), vals.(p)] for
    [p] in [ptr.(j) .. ptr.(j+1) - 1].  Explicit zeros are dropped.
    Returns [None] when the matrix is singular to working precision
    (no candidate pivot of magnitude at least [1e-11] in some step —
    the same tolerance the dense Gauss–Jordan path uses).  [tau]
    (default [0.1]) is the threshold-pivoting relative tolerance:
    smaller values favor sparsity over stability. *)

val nnz : t -> int
(** Entries in [L] plus [U] including the [m] pivots; compare against
    the basis nnz for fill-in accounting. *)

val flops : t -> int
(** Multiply–subtract work performed by the elimination (2 per entry
    updated), the honest sparse counterpart of the dense [m^3]. *)

val ftran : t -> x:float array -> tmp:float array -> int * int
(** [ftran lu ~x ~tmp] overwrites [x] (length [m]) with [B^-1 x],
    using caller scratch [tmp] (length >= [m]).  Returns
    [(flops, skips)]: work charged at 2 per entry touched, and the
    number of solve steps short-circuited because their running
    component was exactly [0.0]. *)

val btran : t -> x:float array -> tmp:float array -> int * int
(** [btran lu ~x ~tmp] overwrites [x] with [B^-T x]; same contract as
    {!ftran}. *)
