(** Mutable LP/MILP model builder: variables with bounds and integrality,
    linear constraints, a linear objective.

    Variables are identified by dense indices (also usable in {!Expr}).
    [copy] is cheap and is what the branch-and-bound search uses to fix
    variable bounds per node without disturbing siblings. *)

type sense = Minimize | Maximize

type cmp = Le | Ge | Eq

type var = int

type constr = { c_name : string; expr : Expr.t; cmp : cmp; rhs : float }

type t

val create : unit -> t

val add_var :
  ?lb:float -> ?ub:float -> ?integer:bool -> ?name:string -> t -> var
(** Defaults: [lb = 0.], [ub = infinity], continuous.  [lb] may be
    [neg_infinity] (free variables are split internally by the solver).
    Raises [Invalid_argument] if [lb > ub]. *)

val binary : ?name:string -> t -> var
(** Integer variable with bounds [0, 1]. *)

val num_vars : t -> int

val name : t -> var -> string

val bounds : t -> var -> float * float

val set_bounds : t -> var -> lb:float -> ub:float -> unit

val is_integer : t -> var -> bool

val integer_vars : t -> var list

val add_constraint : ?name:string -> t -> Expr.t -> cmp -> float -> unit
(** [add_constraint m e cmp rhs] adds [e cmp rhs].  The expression's
    constant is folded into the right-hand side. *)

val constraints : t -> constr list
(** In insertion order. *)

val num_constraints : t -> int

val set_constraint_rhs : t -> int -> float -> unit
(** [set_constraint_rhs m i rhs] replaces the right-hand side of the
    [i]-th constraint (insertion order).  Constraint records are shared
    with {!copy}ed models, so the update is copy-on-write: other copies
    keep the old value.  Raises [Invalid_argument] out of range. *)

val constraint_indices : t -> name:string -> int list
(** Insertion-order indices of every constraint with the given name
    (names are not unique: one per category for "deadline" rows). *)

val set_objective : t -> sense -> Expr.t -> unit

val objective : t -> sense * Expr.t

val copy : t -> t

val pp : Format.formatter -> t -> unit
(** Human-readable dump in an LP-file-like syntax. *)
