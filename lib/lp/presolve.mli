(** MILP-safe presolve: shrink a {!Model} before compiling it, with a
    postsolve map that recovers full solutions.

    Reductions applied (to a fixpoint, bounded rounds):
    - {b fixed-variable substitution}: variables with [lb = ub] leave
      the matrix; their contribution folds into row rhs and the
      objective constant.
    - {b singleton rows}: a one-variable row becomes a bound and is
      dropped.
    - {b bound tightening}: activity-based implied bounds, rounded
      inward for integer variables (which is what fixes binaries).
      Continuous bounds are only tightened through exact singleton
      rows, never through accumulated activity arithmetic, so the
      reduced LP optimum matches the original bit-for-bit modulo
      rounding noise well under 1e-9.
    - {b redundant rows}: rows satisfied by every point of the bound
      box are dropped.
    - {b GUB-implied fixings}: given one-of-a-group constraints
      ([groups], e.g. the per-edge mode selectors from
      [Dvs_core.Formulation]), a binary whose selection alone overruns
      a [<=] row given the other groups' best cases is fixed to 0, and
      group membership is propagated (one member at 1 zeroes the rest;
      all-but-one at 0 forces the survivor).
    - {b free column singletons}: a continuous, fully free variable
      appearing in exactly one equality row is substituted out together
      with the row.

    Every reduction is exact for the MILP (never cuts an integer
    optimum), so solving the reduced model and applying {!postsolve}
    yields an optimal solution of the original with the same objective
    value. *)

type t

val presolve :
  ?fixings:(Model.var * float) list ->
  ?groups:Model.var list list ->
  ?max_rounds:int ->
  Model.t ->
  t
(** [fixings] are externally implied variable fixings (e.g. from the
    edge filter) applied as bounds before the first round.  [groups]
    are one-of-these sets of binaries ([sum = 1] is expected to hold as
    a model row).  [max_rounds] bounds the fixpoint loop (default 10).
    The input model is not modified. *)

val infeasible : t -> bool
(** The reductions proved the model infeasible (no reduced model is
    worth solving; {!reduced} returns a trivially infeasible stub). *)

val reduced : t -> Model.t
(** The reduced model.  Variable indices are renumbered densely;
    {!var_map} translates. *)

val var_map : t -> int array
(** Original variable index -> reduced index, or [-1] if eliminated. *)

val rows_removed : t -> int

val cols_removed : t -> int

val postsolve : t -> float array -> float array
(** [postsolve t values] lifts a solution of {!reduced} (indexed by
    reduced vars) back to the original variable space, replaying
    eliminations in reverse order.  The objective value is unchanged:
    eliminated contributions were folded into the reduced objective. *)

val pp_summary : Format.formatter -> t -> unit
