let sanitize name =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '.' -> c
      | _ -> '_')
    name

let append_term buf first coeff name =
  if coeff <> 0.0 then begin
    if coeff >= 0.0 && not first then Buffer.add_string buf " + "
    else if coeff < 0.0 then Buffer.add_string buf (if first then "- " else " - ");
    let a = Float.abs coeff in
    if a = 1.0 then Buffer.add_string buf name
    else Buffer.add_string buf (Printf.sprintf "%.12g %s" a name)
  end

let append_expr buf m e =
  let terms = Expr.coeffs e in
  if terms = [] then Buffer.add_string buf "0 x0_unused"
  else
    List.iteri
      (fun i (v, c) ->
        append_term buf (i = 0) c (sanitize (Model.name m v)))
      terms

let to_lp_string m =
  let buf = Buffer.create 1024 in
  let sense, obj = Model.objective m in
  Buffer.add_string buf
    (match sense with
    | Model.Minimize -> "Minimize\n obj: "
    | Model.Maximize -> "Maximize\n obj: ");
  append_expr buf m obj;
  Buffer.add_string buf "\nSubject To\n";
  List.iter
    (fun (c : Model.constr) ->
      Buffer.add_string buf (Printf.sprintf " %s: " (sanitize c.c_name));
      append_expr buf m c.expr;
      Buffer.add_string buf
        (match c.cmp with
        | Model.Le -> " <= "
        | Model.Ge -> " >= "
        | Model.Eq -> " = ");
      Buffer.add_string buf (Printf.sprintf "%.12g\n" c.rhs))
    (Model.constraints m);
  Buffer.add_string buf "Bounds\n";
  for v = 0 to Model.num_vars m - 1 do
    let lb, ub = Model.bounds m v in
    let name = sanitize (Model.name m v) in
    let fmt_bound b =
      if b = infinity then "+inf"
      else if b = neg_infinity then "-inf"
      else Printf.sprintf "%.12g" b
    in
    if lb = neg_infinity && ub = infinity then
      Buffer.add_string buf (Printf.sprintf " %s free\n" name)
    else if not (lb = 0.0 && ub = infinity) then
      Buffer.add_string buf
        (Printf.sprintf " %s <= %s <= %s\n" (fmt_bound lb) name (fmt_bound ub))
  done;
  let ints = Model.integer_vars m in
  let binaries, generals =
    List.partition (fun v -> Model.bounds m v = (0.0, 1.0)) ints
  in
  if binaries <> [] then begin
    Buffer.add_string buf "Binary\n";
    List.iter
      (fun v ->
        Buffer.add_string buf
          (Printf.sprintf " %s\n" (sanitize (Model.name m v))))
      binaries
  end;
  if generals <> [] then begin
    Buffer.add_string buf "General\n";
    List.iter
      (fun v ->
        Buffer.add_string buf
          (Printf.sprintf " %s\n" (sanitize (Model.name m v))))
      generals
  end;
  Buffer.add_string buf "End\n";
  Buffer.contents buf

let write_file m path =
  let oc = open_out path in
  output_string oc (to_lp_string m);
  close_out oc

(* ------------------------------------------------------------------ *)
(* Parser: the subset of the CPLEX LP format the writer above emits
   (plus the usual syntactic latitude: case-insensitive keywords,
   [st]/[s.t.] for [Subject To], one-sided bounds, [free], [\ ]
   comments).  Round-trips [to_lp_string] exactly. *)

type token = Name of string | Num of float | Sym of string

exception Parse_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

let tokenize s =
  let n = String.length s in
  let toks = ref [] in
  let i = ref 0 in
  let is_name_char c =
    match c with
    | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '.' -> true
    | _ -> false
  in
  while !i < n do
    let c = s.[!i] in
    if c = ' ' || c = '\t' || c = '\n' || c = '\r' then incr i
    else if c = '\\' then begin
      (* comment to end of line *)
      while !i < n && s.[!i] <> '\n' do incr i done
    end
    else if c = '<' || c = '>' then begin
      incr i;
      if !i < n && s.[!i] = '=' then incr i;
      toks := Sym (if c = '<' then "<=" else ">=") :: !toks
    end
    else if c = '=' then begin
      incr i;
      if !i < n && (s.[!i] = '<' || s.[!i] = '>') then begin
        toks := Sym (if s.[!i] = '<' then "<=" else ">=") :: !toks;
        incr i
      end
      else toks := Sym "=" :: !toks
    end
    else if c = '+' || c = '-' || c = ':' then begin
      toks := Sym (String.make 1 c) :: !toks;
      incr i
    end
    else if (c >= '0' && c <= '9') || c = '.' then begin
      let start = !i in
      while
        !i < n
        && (match s.[!i] with
           | '0' .. '9' | '.' -> true
           | 'e' | 'E' ->
             (* exponent: may be followed by a sign *)
             !i + 1 < n
             && (match s.[!i + 1] with
                | '0' .. '9' -> true
                | '+' | '-' ->
                  !i + 2 < n && s.[!i + 2] >= '0' && s.[!i + 2] <= '9'
                | _ -> false)
           | _ -> false)
      do
        if s.[!i] = 'e' || s.[!i] = 'E' then begin
          incr i;
          if s.[!i] = '+' || s.[!i] = '-' then incr i
        end
        else incr i
      done;
      let lit = String.sub s start (!i - start) in
      match float_of_string_opt lit with
      | Some f -> toks := Num f :: !toks
      | None -> fail "bad number %S" lit
    end
    else if is_name_char c then begin
      let start = !i in
      while !i < n && is_name_char s.[!i] do incr i done;
      toks := Name (String.sub s start (!i - start)) :: !toks
    end
    else fail "unexpected character %C" c
  done;
  List.rev !toks

let lower = String.lowercase_ascii

(* Section keywords that terminate an expression or a list. *)
let is_keyword w =
  match lower w with
  | "minimize" | "maximise" | "minimise" | "maximize" | "min" | "max"
  | "subject" | "st" | "s.t." | "bounds" | "bound" | "binary" | "binaries"
  | "bin" | "general" | "generals" | "gen" | "free" | "end" -> true
  | _ -> false

(* Parse a linear expression: [+|-] [num] name ... with bare numbers
   folded into a constant.  Stops at a keyword, a comparison, or end of
   input.  Returns (terms, const, rest). *)
let parse_expr toks =
  let terms = ref [] and const = ref 0.0 in
  let rec go sign pending toks =
    match toks with
    | Sym "+" :: rest when pending = None -> go sign None rest
    | Sym "-" :: rest when pending = None -> go (-.sign) None rest
    | Num f :: rest -> (
      (match pending with
      | Some c -> const := !const +. c
      | None -> ());
      match rest with
      | Name w :: _ when not (is_keyword w) -> go sign (Some (sign *. f)) rest
      | _ ->
        const := !const +. (sign *. f);
        go 1.0 None rest)
    | Name w :: rest when not (is_keyword w) ->
      let c = match pending with Some c -> c | None -> sign in
      terms := (w, c) :: !terms;
      go 1.0 None rest
    | rest ->
      (match pending with Some c -> const := !const +. c | None -> ());
      (List.rev !terms, !const, rest)
  in
  go 1.0 None toks

let parse_cmp = function
  | Sym "<=" :: rest -> (Model.Le, rest)
  | Sym ">=" :: rest -> (Model.Ge, rest)
  | Sym "=" :: rest -> (Model.Eq, rest)
  | _ -> fail "expected <=, >= or ="

let parse_number toks =
  match toks with
  | Num f :: rest -> (f, rest)
  | Sym "+" :: Num f :: rest -> (f, rest)
  | Sym "-" :: Num f :: rest -> (-.f, rest)
  | Name w :: rest when lower w = "inf" || lower w = "infinity" ->
    (infinity, rest)
  | Sym "+" :: Name w :: rest when lower w = "inf" || lower w = "infinity" ->
    (infinity, rest)
  | Sym "-" :: Name w :: rest when lower w = "inf" || lower w = "infinity" ->
    (neg_infinity, rest)
  | _ -> fail "expected a number"

let of_lp_string s =
  let toks = tokenize s in
  (* Optional label: [name :] *)
  let strip_label toks =
    match toks with
    | Name _ :: Sym ":" :: rest -> rest
    | _ -> toks
  in
  let sense, toks =
    match toks with
    | Name w :: rest when List.mem (lower w) [ "minimize"; "minimise"; "min" ]
      -> (Model.Minimize, rest)
    | Name w :: rest when List.mem (lower w) [ "maximize"; "maximise"; "max" ]
      -> (Model.Maximize, rest)
    | _ -> fail "expected Minimize or Maximize"
  in
  let obj_terms, obj_const, toks = parse_expr (strip_label toks) in
  let toks =
    match toks with
    | Name w1 :: Name w2 :: rest
      when lower w1 = "subject" && lower w2 = "to" -> rest
    | Name w :: rest when lower w = "st" || lower w = "s.t." -> rest
    | _ -> fail "expected Subject To"
  in
  (* Constraints until a section keyword. *)
  let constrs = ref [] in
  let rec parse_constraints toks =
    match toks with
    | Name w :: _ when is_keyword w && lower w <> "subject" -> toks
    | [] -> []
    | _ ->
      let cname, toks =
        match toks with
        | Name l :: Sym ":" :: rest -> (Some l, rest)
        | _ -> (None, toks)
      in
      let terms, const, toks = parse_expr toks in
      let cmp, toks = parse_cmp toks in
      let rhs, toks = parse_number toks in
      constrs := (cname, terms, cmp, rhs -. const) :: !constrs;
      parse_constraints toks
  in
  let toks = parse_constraints toks in
  (* Bounds / Binary / General / End sections, any order. *)
  let bounds_tbl : (string, float * float) Hashtbl.t = Hashtbl.create 16 in
  let bound_of name = Option.value ~default:(0.0, infinity)
      (Hashtbl.find_opt bounds_tbl name)
  in
  let integers : (string, unit) Hashtbl.t = Hashtbl.create 16 in
  let binaries : (string, unit) Hashtbl.t = Hashtbl.create 16 in
  let rec parse_sections toks =
    match toks with
    | [] -> ()
    | Name w :: rest when lower w = "end" ->
      (match rest with
      | [] -> ()
      | _ -> fail "tokens after End")
    | Name w :: rest when lower w = "bounds" || lower w = "bound" ->
      parse_sections (parse_bounds rest)
    | Name w :: rest
      when List.mem (lower w) [ "binary"; "binaries"; "bin" ] ->
      parse_sections (parse_list binaries rest)
    | Name w :: rest
      when List.mem (lower w) [ "general"; "generals"; "gen" ] ->
      parse_sections (parse_list integers rest)
    | _ -> fail "expected a section keyword"
  and parse_bounds toks =
    match toks with
    | Name w :: _ when is_keyword w && lower w <> "free" -> toks
    | Name x :: Name w :: rest when lower w = "free" ->
      Hashtbl.replace bounds_tbl x (neg_infinity, infinity);
      parse_bounds rest
    | Name x :: Sym "<=" :: rest ->
      let u, rest = parse_number rest in
      let lb, _ = bound_of x in
      Hashtbl.replace bounds_tbl x (lb, u);
      parse_bounds rest
    | Name x :: Sym ">=" :: rest ->
      let l, rest = parse_number rest in
      let _, ub = bound_of x in
      Hashtbl.replace bounds_tbl x (l, ub);
      parse_bounds rest
    | Name x :: Sym "=" :: rest ->
      let v, rest = parse_number rest in
      Hashtbl.replace bounds_tbl x (v, v);
      parse_bounds rest
    | [] -> []
    | _ ->
      (* number <= name <= number *)
      let l, rest = parse_number toks in
      (match rest with
      | Sym "<=" :: Name x :: Sym "<=" :: rest ->
        let u, rest = parse_number rest in
        Hashtbl.replace bounds_tbl x (l, u);
        parse_bounds rest
      | Sym "<=" :: Name x :: rest ->
        let _, ub = bound_of x in
        Hashtbl.replace bounds_tbl x (l, ub);
        parse_bounds rest
      | _ -> fail "malformed bound line")
  and parse_list tbl toks =
    match toks with
    | Name w :: _ when is_keyword w -> toks
    | Name x :: rest ->
      Hashtbl.replace tbl x ();
      parse_list tbl rest
    | _ -> fail "expected a variable name"
  in
  parse_sections toks;
  (* Build the model: variables in first-appearance order (objective,
     then constraints, then bounds/integrality sections). *)
  let m = Model.create () in
  let vars : (string, Model.var) Hashtbl.t = Hashtbl.create 64 in
  let order = ref [] in
  let note name = if not (Hashtbl.mem vars name) then begin
      Hashtbl.add vars name (-1);
      order := name :: !order
    end
  in
  List.iter (fun (name, _) -> note name) obj_terms;
  List.iter (fun (_, terms, _, _) -> List.iter (fun (name, _) -> note name) terms)
    (List.rev !constrs);
  Hashtbl.iter (fun name _ -> note name) bounds_tbl;
  Hashtbl.iter (fun name _ -> note name) binaries;
  Hashtbl.iter (fun name _ -> note name) integers;
  List.iter
    (fun name ->
      let integer =
        Hashtbl.mem binaries name || Hashtbl.mem integers name
      in
      let lb, ub =
        match Hashtbl.find_opt bounds_tbl name with
        | Some b -> b
        | None -> if Hashtbl.mem binaries name then (0.0, 1.0) else (0.0, infinity)
      in
      Hashtbl.replace vars name (Model.add_var ~lb ~ub ~integer ~name m))
    (List.rev !order);
  let var_of name =
    match Hashtbl.find_opt vars name with
    | Some v when v >= 0 -> v
    | _ -> fail "unknown variable %S" name
  in
  let expr_of terms const =
    Expr.of_terms ~const (List.map (fun (name, c) -> (c, var_of name)) terms)
  in
  List.iter
    (fun (cname, terms, cmp, rhs) ->
      Model.add_constraint ?name:cname m (expr_of terms 0.0) cmp rhs)
    (List.rev !constrs);
  Model.set_objective m sense (expr_of obj_terms obj_const);
  m

let read_file path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  of_lp_string s
