(** One-time compilation of a {!Model} into flat sparse arrays.

    A compiled model is built once per MILP solve and shared (read-only,
    except for the bound arrays) across every node of the search: branch
    decisions only change variable bounds, never the constraint matrix,
    so the CSC/CSR structure, the row scaling and the objective stay
    valid for the whole tree.

    Layout: columns [0 .. n-1] are the model's structural variables (in
    model index order), columns [n .. n+m-1] are one slack per
    constraint row.  Every row is stored as the equality
    [a_i . x + s_i = rhs_i] with the inequality sense moved into the
    slack's bounds ([Le]: [0 <= s], [Ge]: [s <= 0], [Eq]: [s = 0]).
    Rows are equilibrated by their largest structural coefficient
    magnitude; the scale is positive so slack semantics and the
    comparison sense are unchanged. *)

type t = private {
  n : int;  (** structural variables (= [Model.num_vars]) *)
  m : int;  (** constraint rows *)
  nt : int;  (** total columns: [n + m] *)
  lb : float array;  (** current lower bounds, length [nt]; mutable via {!set_bounds} *)
  ub : float array;  (** current upper bounds, length [nt] *)
  lb0 : float array;  (** pristine lower bounds as compiled (never written) *)
  ub0 : float array;  (** pristine upper bounds as compiled (never written) *)
  integer : bool array;  (** length [n] *)
  obj : float array;  (** length [n], in the model's own sense *)
  obj_const : float;
  sense : Model.sense;
  (* Structural columns, CSC: column [j] occupies
     [col_ptr.(j) .. col_ptr.(j+1) - 1] of [col_row]/[col_val]. *)
  col_ptr : int array;
  col_row : int array;
  col_val : float array;
  (* The same entries, CSR: row [i] occupies
     [row_ptr.(i) .. row_ptr.(i+1) - 1] of [row_col]/[row_val]. *)
  row_ptr : int array;
  row_col : int array;
  row_val : float array;
  rhs : float array;  (** current right-hand sides, length [m], row-scaled;
                          mutable via {!set_rhs} *)
  rhs0 : float array;  (** pristine right-hand sides as compiled *)
  row_scale : float array;  (** equilibration scale per row (positive) *)
  fingerprint : int;  (** structural hash; see {!fingerprint} *)
}

val of_model : Model.t -> t
(** Compile.  O(vars + constraints + nonzeros). *)

val scratch : t -> t
(** A scratch view for one worker: fresh (pristine) bound and rhs arrays,
    every other field shared with the original.  Mutating the scratch's
    bounds or right-hand sides never affects the original or other
    scratches. *)

val set_bounds : t -> int -> lb:float -> ub:float -> unit
(** Override the current bounds of structural column [j].
    Raises [Invalid_argument] for slack columns. *)

val reset_bounds : t -> int -> unit
(** Restore column [j]'s bounds to their pristine compiled values. *)

val reset_all_bounds : t -> unit
(** Restore every column's bounds.  O(nt). *)

val set_rhs : t -> int -> float -> unit
(** [set_rhs t i v] overrides row [i]'s right-hand side with [v] given in
    {e model} units; the row's equilibration scale is applied internally.
    This is how a deadline sweep expresses each sweep point as an RHS
    delta on one shared compiled form.  Raises [Invalid_argument] out of
    range. *)

val rhs_value : t -> int -> float
(** Current right-hand side of row [i], unscaled back to model units. *)

val reset_rhs : t -> int -> unit
(** Restore row [i]'s right-hand side to its pristine compiled value. *)

val reset_all_rhs : t -> unit
(** Restore every row's right-hand side.  O(m). *)

val nnz : t -> int
(** Structural nonzeros (excludes the implicit slack identity). *)

val fingerprint : t -> int
(** Deterministic structural hash of the compiled form — pristine
    bounds, integrality, objective, sense, matrix and rhs.  Two models
    compiling to identical arrays share a fingerprint; current bound
    overrides do not participate (callers key caches with the
    fingerprint plus their bound deltas). *)
