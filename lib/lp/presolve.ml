(* Model-level presolve.  Works on a mutable scratch copy of the rows
   and bounds; eliminations are logged so postsolve can replay them in
   reverse.  All reductions are exact for the MILP: bounds only ever
   tighten toward implied values, rows are only dropped when every
   point of the bound box satisfies them, and objective contributions
   of eliminated variables fold into the reduced objective constant. *)

type elim =
  | Fix of int * float  (* variable, value *)
  | Subst of {
      s_var : int;
      s_coeff : float;
      s_rhs : float;
      s_terms : (int * float) list;  (* the row's other (var, coeff) *)
    }

type row = {
  r_name : string;
  r_cmp : Model.cmp;
  mutable r_rhs : float;
  mutable r_coeffs : (int * float) list;
  mutable r_live : bool;
}

type t = {
  orig_n : int;
  reduced : Model.t;
  var_map : int array;
  actions : elim list;  (* reverse chronological: head eliminated last *)
  rows_removed : int;
  cols_removed : int;
  infeasible : bool;
}

let infeasible t = t.infeasible

let reduced t = t.reduced

let var_map t = t.var_map

let rows_removed t = t.rows_removed

let cols_removed t = t.cols_removed

exception Proven_infeasible

let presolve ?(fixings = []) ?(groups = []) ?(max_rounds = 10) model =
  let orig_n = Model.num_vars model in
  let lb = Array.make orig_n 0.0 and ub = Array.make orig_n 0.0 in
  let integer = Array.make orig_n false in
  for j = 0 to orig_n - 1 do
    let l, u = Model.bounds model j in
    lb.(j) <- l;
    ub.(j) <- u;
    integer.(j) <- Model.is_integer model j
  done;
  let rows =
    Array.of_list
      (List.map
         (fun (c : Model.constr) ->
           {
             r_name = c.c_name;
             r_cmp = c.cmp;
             r_rhs = c.rhs -. Expr.const c.expr;
             r_coeffs = Expr.coeffs c.expr;
             r_live = true;
           })
         (Model.constraints model))
  in
  let nrows = Array.length rows in
  let col_rows = Array.make orig_n [] in
  Array.iteri
    (fun i r ->
      List.iter (fun (j, _) -> col_rows.(j) <- i :: col_rows.(j)) r.r_coeffs)
    rows;
  let sense, obj_expr = Model.objective model in
  let obj = Array.make orig_n 0.0 in
  List.iter (fun (j, v) -> obj.(j) <- v) (Expr.coeffs obj_expr);
  let obj_const = ref (Expr.const obj_expr) in
  let eliminated = Array.make orig_n false in
  let actions = ref [] in
  let rows_removed = ref 0 and cols_removed = ref 0 in
  let changed = ref true in
  let kill_row i =
    if rows.(i).r_live then begin
      rows.(i).r_live <- false;
      incr rows_removed
    end
  in
  (* Group bookkeeping: every group is a one-of set of binaries backed
     by a [sum = 1] row in the model.  Skip malformed groups. *)
  let groups =
    List.filter
      (fun g ->
        g <> []
        && List.for_all
             (fun j ->
               j >= 0 && j < orig_n && integer.(j) && lb.(j) >= 0.0
               && ub.(j) <= 1.0)
             g)
      groups
  in
  let group_of = Array.make orig_n (-1) in
  List.iteri
    (fun gi g -> List.iter (fun j -> group_of.(j) <- gi) g)
    groups;
  let groups = Array.of_list groups in
  (* Tighten bounds of [j]; raising on proven-empty boxes.  Integer
     bounds are rounded inward. *)
  let tighten j ~lo ~hi =
    let lo, hi =
      if integer.(j) then
        ( (if lo = neg_infinity then lo else Float.ceil (lo -. 1e-6)),
          if hi = infinity then hi else Float.floor (hi +. 1e-6) )
      else (lo, hi)
    in
    if lo > lb.(j) +. 1e-9 then begin
      lb.(j) <- lo;
      changed := true
    end;
    if hi < ub.(j) -. 1e-9 then begin
      ub.(j) <- hi;
      changed := true
    end;
    if lb.(j) > ub.(j) +. 1e-9 then raise Proven_infeasible;
    (* collapse near-equal integer bounds onto the integer *)
    if integer.(j) && ub.(j) -. lb.(j) < 1e-9 && lb.(j) <> ub.(j) then begin
      let v = Float.round lb.(j) in
      lb.(j) <- v;
      ub.(j) <- v
    end
  in
  (* Substitute a fixed variable out of every row and the objective. *)
  let eliminate_fixed j v =
    eliminated.(j) <- true;
    actions := Fix (j, v) :: !actions;
    incr cols_removed;
    obj_const := !obj_const +. (obj.(j) *. v);
    List.iter
      (fun i ->
        let r = rows.(i) in
        if r.r_live then
          match List.assoc_opt j r.r_coeffs with
          | None -> ()
          | Some a ->
            r.r_rhs <- r.r_rhs -. (a *. v);
            r.r_coeffs <- List.filter (fun (k, _) -> k <> j) r.r_coeffs;
            changed := true
      )
      col_rows.(j)
  in
  (* One member of a group fixed at 1 forces the rest to 0; all but one
     fixed at 0 forces the survivor to 1 (its own sum-row also implies
     this, but doing it here needs no row scan). *)
  let propagate_group gi =
    if gi >= 0 then begin
      let members = groups.(gi) in
      (* Bounds persist through elimination, so an already-eliminated
         member fixed at 1 still counts as the group's choice here. *)
      let chosen = List.exists (fun j -> lb.(j) >= 0.5) members in
      let live = List.filter (fun j -> not eliminated.(j)) members in
      if chosen then
        List.iter
          (fun j -> if lb.(j) < 0.5 && ub.(j) > 0.5 then tighten j ~lo:0.0 ~hi:0.0)
          live
      else begin
        match List.filter (fun j -> ub.(j) > 0.5) live with
        | [ last ] -> tighten last ~lo:1.0 ~hi:1.0
        | [] -> raise Proven_infeasible
        | _ -> ()
      end
    end
  in
  let run () =
    (* externally implied fixings (edge filter etc.) become bounds *)
    List.iter
      (fun (j, v) ->
        if j >= 0 && j < orig_n then begin
          tighten j ~lo:v ~hi:v;
          propagate_group group_of.(j)
        end)
      fixings;
    let rounds = ref 0 in
    while !changed && !rounds < max_rounds do
      changed := false;
      incr rounds;
      (* pass 1: fix variables whose bounds have collapsed *)
      for j = 0 to orig_n - 1 do
        if (not eliminated.(j)) && ub.(j) -. lb.(j) <= 1e-12 then begin
          eliminate_fixed j lb.(j);
          propagate_group group_of.(j)
        end
      done;
      (* pass 2: row-driven reductions *)
      for i = 0 to nrows - 1 do
        let r = rows.(i) in
        if r.r_live then begin
          match r.r_coeffs with
          | [] ->
            (* empty row: constant cmp rhs *)
            let viol =
              match r.r_cmp with
              | Model.Le -> 0.0 > r.r_rhs +. 1e-7
              | Model.Ge -> 0.0 < r.r_rhs -. 1e-7
              | Model.Eq -> Float.abs r.r_rhs > 1e-7
            in
            if viol then raise Proven_infeasible else kill_row i
          | [ (j, a) ] ->
            (* singleton row: becomes a bound, exactly *)
            let v = r.r_rhs /. a in
            (match (r.r_cmp, a > 0.0) with
            | Model.Le, true | Model.Ge, false ->
              tighten j ~lo:neg_infinity ~hi:v
            | Model.Le, false | Model.Ge, true ->
              tighten j ~lo:v ~hi:infinity
            | Model.Eq, _ -> tighten j ~lo:v ~hi:v);
            propagate_group group_of.(j);
            kill_row i;
            changed := true
          | coeffs ->
            (* activity bounds: min/max of a.x over the bound box *)
            let sum_min = ref 0.0
            and sum_max = ref 0.0
            and inf_min = ref 0
            and inf_max = ref 0 in
            List.iter
              (fun (j, a) ->
                let l = lb.(j) and u = ub.(j) in
                let cmin = if a > 0.0 then a *. l else a *. u in
                let cmax = if a > 0.0 then a *. u else a *. l in
                if cmin = neg_infinity then incr inf_min
                else sum_min := !sum_min +. cmin;
                if cmax = infinity then incr inf_max
                else sum_max := !sum_max +. cmax)
              coeffs;
            let minact =
              if !inf_min > 0 then neg_infinity else !sum_min
            and maxact = if !inf_max > 0 then infinity else !sum_max in
            let rtol = 1e-7 *. (1.0 +. Float.abs r.r_rhs) in
            let drop_tol = 1e-12 *. (1.0 +. Float.abs r.r_rhs) in
            (match r.r_cmp with
            | Model.Le ->
              if minact > r.r_rhs +. rtol then raise Proven_infeasible;
              if maxact <= r.r_rhs +. drop_tol then kill_row i
            | Model.Ge ->
              if maxact < r.r_rhs -. rtol then raise Proven_infeasible;
              if minact >= r.r_rhs -. drop_tol then kill_row i
            | Model.Eq ->
              if minact > r.r_rhs +. rtol || maxact < r.r_rhs -. rtol then
                raise Proven_infeasible;
              if
                maxact -. minact <= drop_tol
                && Float.abs (minact -. r.r_rhs) <= drop_tol
              then kill_row i);
            if r.r_live then begin
              (* integer bound tightening from residual activity *)
              List.iter
                (fun (j, a) ->
                  if integer.(j) && not eliminated.(j) then begin
                    let l = lb.(j) and u = ub.(j) in
                    let cmin = if a > 0.0 then a *. l else a *. u in
                    let resid_min =
                      if cmin = neg_infinity then
                        if !inf_min > 1 then neg_infinity else !sum_min
                      else if !inf_min > 0 then neg_infinity
                      else !sum_min -. cmin
                    in
                    let cmax = if a > 0.0 then a *. u else a *. l in
                    let resid_max =
                      if cmax = infinity then
                        if !inf_max > 1 then infinity else !sum_max
                      else if !inf_max > 0 then infinity
                      else !sum_max -. cmax
                    in
                    (* a*x <= rhs - resid_min (Le/Eq);
                       a*x >= rhs - resid_max (Ge/Eq) *)
                    (if
                       (r.r_cmp = Model.Le || r.r_cmp = Model.Eq)
                       && resid_min > neg_infinity
                     then
                       let room = r.r_rhs -. resid_min in
                       if a > 0.0 then
                         tighten j ~lo:neg_infinity ~hi:(room /. a)
                       else tighten j ~lo:(room /. a) ~hi:infinity);
                    if
                      (r.r_cmp = Model.Ge || r.r_cmp = Model.Eq)
                      && resid_max < infinity
                    then begin
                      let need = r.r_rhs -. resid_max in
                      if a > 0.0 then tighten j ~lo:(need /. a) ~hi:infinity
                      else tighten j ~lo:neg_infinity ~hi:(need /. a)
                    end;
                    if ub.(j) < u -. 0.5 || lb.(j) > l +. 0.5 then
                      propagate_group group_of.(j)
                  end)
                coeffs
            end
        end
      done;
      (* pass 3: GUB-implied fixings on <= rows.  Treat each one-of
         group as a unit: its best-case contribution is the cheapest
         selectable member (or 0 if some member is absent from the
         row), so a member whose own coefficient overruns the slack
         left by everyone else's best case can never be selected. *)
      if Array.length groups > 0 then
        for i = 0 to nrows - 1 do
          let r = rows.(i) in
          if r.r_live && r.r_cmp = Model.Le then begin
            let ngroups = Array.length groups in
            let gmin = Array.make ngroups infinity in
            let gpresent = Array.make ngroups 0 in
            let base = ref 0.0 and base_inf = ref false in
            List.iter
              (fun (j, a) ->
                let gi = if eliminated.(j) then -1 else group_of.(j) in
                if gi >= 0 then begin
                  if ub.(j) > 0.5 then gmin.(gi) <- Float.min gmin.(gi) a;
                  gpresent.(gi) <- gpresent.(gi) + 1
                end
                else begin
                  let cmin = if a > 0.0 then a *. lb.(j) else a *. ub.(j) in
                  if cmin = neg_infinity then base_inf := true
                  else base := !base +. cmin
                end)
              r.r_coeffs;
            (* groups with an absent (or zero-fixed) selectable member
               can contribute 0 *)
            Array.iteri
              (fun gi g ->
                if gpresent.(gi) > 0 then begin
                  let live =
                    List.filter (fun j -> not eliminated.(j)) g
                  in
                  let absent =
                    List.exists
                      (fun j ->
                        ub.(j) > 0.5
                        && not (List.mem_assoc j r.r_coeffs))
                      live
                  in
                  if absent then gmin.(gi) <- Float.min gmin.(gi) 0.0;
                  if gmin.(gi) = infinity then gmin.(gi) <- 0.0
                end)
              groups;
            if not !base_inf then begin
              let total = ref !base in
              Array.iteri
                (fun gi _ ->
                  if gpresent.(gi) > 0 then total := !total +. gmin.(gi))
                groups;
              let ftol = 1e-6 *. (1.0 +. Float.abs r.r_rhs) in
              List.iter
                (fun (j, a) ->
                  let gi = if eliminated.(j) then -1 else group_of.(j) in
                  if gi >= 0 && ub.(j) > 0.5 && lb.(j) < 0.5 then begin
                    let with_j = !total -. gmin.(gi) +. a in
                    if with_j > r.r_rhs +. ftol then begin
                      tighten j ~lo:0.0 ~hi:0.0;
                      propagate_group gi
                    end
                  end)
                r.r_coeffs
            end
          end
        done;
      (* pass 4: free column singletons in equality rows *)
      for j = 0 to orig_n - 1 do
        if
          (not eliminated.(j))
          && (not integer.(j))
          && lb.(j) = neg_infinity
          && ub.(j) = infinity
        then begin
          let occ =
            List.filter
              (fun i ->
                rows.(i).r_live && List.mem_assoc j rows.(i).r_coeffs)
              col_rows.(j)
          in
          match occ with
          | [ i ] when rows.(i).r_cmp = Model.Eq ->
            let r = rows.(i) in
            let a = List.assoc j r.r_coeffs in
            if Float.abs a > 1e-9 then begin
              let others =
                List.filter (fun (k, _) -> k <> j) r.r_coeffs
              in
              (* x_j = (rhs - others)/a, always in range: fold the
                 objective through and drop both row and column *)
              obj_const := !obj_const +. (obj.(j) *. r.r_rhs /. a);
              List.iter
                (fun (k, ak) ->
                  obj.(k) <- obj.(k) -. (obj.(j) *. ak /. a))
                others;
              actions :=
                Subst { s_var = j; s_coeff = a; s_rhs = r.r_rhs; s_terms = others }
                :: !actions;
              eliminated.(j) <- true;
              incr cols_removed;
              kill_row i;
              changed := true
            end
          | _ -> ()
        end
      done
    done
  in
  let infeasible =
    try
      run ();
      false
    with Proven_infeasible -> true
  in
  (* build the reduced model *)
  let var_map = Array.make orig_n (-1) in
  let red = Model.create () in
  if infeasible then begin
    (* stub: one variable trapped by contradictory rows, so solving the
       stub also reports infeasible if anyone tries *)
    let v = Model.add_var ~name:"infeasible" red in
    Model.add_constraint red (Expr.var v) Model.Le (-1.0);
    Model.add_constraint red (Expr.var v) Model.Ge 1.0;
    {
      orig_n;
      reduced = red;
      var_map;
      actions = !actions;
      rows_removed = !rows_removed;
      cols_removed = !cols_removed;
      infeasible;
    }
  end
  else begin
    for j = 0 to orig_n - 1 do
      if not eliminated.(j) then
        var_map.(j) <-
          Model.add_var ~lb:lb.(j) ~ub:ub.(j) ~integer:integer.(j)
            ~name:(Model.name model j) red
    done;
    Array.iter
      (fun r ->
        if r.r_live then begin
          match r.r_coeffs with
          | [] -> ()
          | coeffs ->
            let e =
              Expr.of_terms
                (List.map (fun (j, a) -> (a, var_map.(j))) coeffs)
            in
            Model.add_constraint ~name:r.r_name red e r.r_cmp r.r_rhs
        end)
      rows;
    let terms = ref [] in
    for j = orig_n - 1 downto 0 do
      if (not eliminated.(j)) && obj.(j) <> 0.0 then
        terms := (obj.(j), var_map.(j)) :: !terms
    done;
    Model.set_objective red sense (Expr.of_terms ~const:!obj_const !terms);
    {
      orig_n;
      reduced = red;
      var_map;
      actions = !actions;
      rows_removed = !rows_removed;
      cols_removed = !cols_removed;
      infeasible;
    }
  end

let postsolve t reduced_values =
  let out = Array.make t.orig_n 0.0 in
  for j = 0 to t.orig_n - 1 do
    if t.var_map.(j) >= 0 then out.(j) <- reduced_values.(t.var_map.(j))
  done;
  (* head of [actions] was eliminated last, so its dependencies (only
     ever variables still alive when it was eliminated) are already
     restored by the time we reach it *)
  List.iter
    (function
      | Fix (j, v) -> out.(j) <- v
      | Subst { s_var; s_coeff; s_rhs; s_terms } ->
        let s = ref s_rhs in
        List.iter (fun (k, a) -> s := !s -. (a *. out.(k))) s_terms;
        out.(s_var) <- !s /. s_coeff)
    t.actions;
  out

let pp_summary ppf t =
  Format.fprintf ppf "presolve: %d rows, %d cols removed%s" t.rows_removed
    t.cols_removed
    (if t.infeasible then " (proven infeasible)" else "")
