(** CPLEX-LP-format export and import of models.

    The paper's toolchain went through AMPL into CPLEX; the writer lets
    any model built here be fed to an external solver for cross-checking
    (and makes solver bug reports self-contained), and the reader brings
    externally prepared or previously exported instances back — the pair
    round-trips every model this library builds, including the
    presolved/compiled forms with free variables and negative or fixed
    bounds. *)

val to_lp_string : Model.t -> string
(** The model in LP file format: objective, constraints, a bounds section
    covering every non-default bound (free variables emit as [x free]),
    and a [General]/[Binary] integrality section. *)

val write_file : Model.t -> string -> unit

exception Parse_error of string

val of_lp_string : string -> Model.t
(** Parse the subset of the LP format {!to_lp_string} emits, with the
    usual latitude: case-insensitive keywords, [st]/[s.t.] for
    [Subject To], one-sided and [free] bound lines, [\ ] comments.
    Variables are created in first-appearance order (objective, then
    constraints, then the declaration sections), which may differ from
    the original model's index order — compare round-trips by name, not
    by index.  Raises {!Parse_error} on malformed input. *)

val read_file : string -> Model.t
(** {!of_lp_string} on the file's contents. *)
