type sense = Minimize | Maximize

type cmp = Le | Ge | Eq

type var = int

type constr = { c_name : string; expr : Expr.t; cmp : cmp; rhs : float }

type var_info = {
  v_name : string;
  mutable lb : float;
  mutable ub : float;
  integer : bool;
}

type t = {
  mutable vars : var_info array;
  mutable n_vars : int;
  mutable constrs : constr list;  (* reversed *)
  mutable n_constrs : int;
  mutable sense : sense;
  mutable obj : Expr.t;
}

let create () =
  { vars = [||]; n_vars = 0; constrs = []; n_constrs = 0; sense = Minimize;
    obj = Expr.zero }

let grow m =
  let cap = Array.length m.vars in
  if m.n_vars >= cap then begin
    let fresh =
      Array.make (Int.max 8 (2 * cap))
        { v_name = ""; lb = 0.0; ub = 0.0; integer = false }
    in
    Array.blit m.vars 0 fresh 0 m.n_vars;
    m.vars <- fresh
  end

let add_var ?(lb = 0.0) ?(ub = infinity) ?(integer = false) ?name m =
  if lb > ub then invalid_arg "Model.add_var: lb > ub";
  if Float.is_nan lb || Float.is_nan ub then
    invalid_arg "Model.add_var: NaN bound";
  grow m;
  let i = m.n_vars in
  let v_name = match name with Some n -> n | None -> Printf.sprintf "x%d" i in
  m.vars.(i) <- { v_name; lb; ub; integer };
  m.n_vars <- i + 1;
  i

let binary ?name m = add_var ~lb:0.0 ~ub:1.0 ~integer:true ?name m

let num_vars m = m.n_vars

let check m i =
  if i < 0 || i >= m.n_vars then invalid_arg "Model: variable out of range"

let name m i =
  check m i;
  m.vars.(i).v_name

let bounds m i =
  check m i;
  (m.vars.(i).lb, m.vars.(i).ub)

let set_bounds m i ~lb ~ub =
  check m i;
  if lb > ub then invalid_arg "Model.set_bounds: lb > ub";
  m.vars.(i).lb <- lb;
  m.vars.(i).ub <- ub

let is_integer m i =
  check m i;
  m.vars.(i).integer

let integer_vars m =
  let rec collect i acc =
    if i < 0 then acc
    else collect (i - 1) (if m.vars.(i).integer then i :: acc else acc)
  in
  collect (m.n_vars - 1) []

let add_constraint ?name m e cmp rhs =
  if Expr.max_var e >= m.n_vars then
    invalid_arg "Model.add_constraint: expression mentions unknown variable";
  let c_name =
    match name with Some n -> n | None -> Printf.sprintf "c%d" m.n_constrs
  in
  let rhs = rhs -. Expr.const e in
  let expr = Expr.sub e (Expr.constant (Expr.const e)) in
  m.constrs <- { c_name; expr; cmp; rhs } :: m.constrs;
  m.n_constrs <- m.n_constrs + 1

let constraints m = List.rev m.constrs

let num_constraints m = m.n_constrs

(* [constrs] is stored newest-first, so insertion index [i] lives at
   reversed position [n_constrs - 1 - i].  Constraint records are
   immutable and may be shared with copies of this model, so the update
   rebuilds the spine up to the target instead of mutating in place. *)
let set_constraint_rhs m i rhs =
  if i < 0 || i >= m.n_constrs then
    invalid_arg "Model.set_constraint_rhs: constraint out of range";
  if Float.is_nan rhs then invalid_arg "Model.set_constraint_rhs: NaN rhs";
  let pos = m.n_constrs - 1 - i in
  let rec go k = function
    | [] -> assert false
    | c :: rest ->
      if k = pos then { c with rhs } :: rest else c :: go (k + 1) rest
  in
  m.constrs <- go 0 m.constrs

let constraint_indices m ~name =
  let acc = ref [] in
  List.iteri
    (fun i (c : constr) -> if String.equal c.c_name name then acc := i :: !acc)
    (constraints m);
  List.rev !acc

let set_objective m sense e =
  if Expr.max_var e >= m.n_vars then
    invalid_arg "Model.set_objective: expression mentions unknown variable";
  m.sense <- sense;
  m.obj <- e

let objective m = (m.sense, m.obj)

let copy m =
  { m with
    vars = Array.init m.n_vars (fun i -> { (m.vars.(i)) with v_name = m.vars.(i).v_name });
    constrs = m.constrs }

let pp_cmp ppf = function
  | Le -> Format.pp_print_string ppf "<="
  | Ge -> Format.pp_print_string ppf ">="
  | Eq -> Format.pp_print_string ppf "="

let pp ppf m =
  let sense = match m.sense with Minimize -> "minimize" | Maximize -> "maximize" in
  Format.fprintf ppf "@[<v>%s: %a@,subject to:@," sense Expr.pp m.obj;
  List.iter
    (fun c ->
      Format.fprintf ppf "  %s: %a %a %g@," c.c_name Expr.pp c.expr pp_cmp
        c.cmp c.rhs)
    (constraints m);
  Format.fprintf ppf "bounds:@,";
  for i = 0 to m.n_vars - 1 do
    let v = m.vars.(i) in
    Format.fprintf ppf "  %g <= %s <= %g%s@," v.lb v.v_name v.ub
      (if v.integer then " (int)" else "")
  done;
  Format.fprintf ppf "@]"
