type t = {
  n : int;
  m : int;
  nt : int;
  lb : float array;
  ub : float array;
  lb0 : float array;
  ub0 : float array;
  integer : bool array;
  obj : float array;
  obj_const : float;
  sense : Model.sense;
  col_ptr : int array;
  col_row : int array;
  col_val : float array;
  row_ptr : int array;
  row_col : int array;
  row_val : float array;
  rhs : float array;
  rhs0 : float array;
  row_scale : float array;
  fingerprint : int;
}

let inf = infinity

(* FNV-1a over the compiled arrays, folding floats by their bit
   patterns so the hash is exact, not tolerance-based. *)
let fnv_prime = 0x100000001b3

let hash_init = 0x3bf29ce484222325 (* FNV offset basis, truncated to 62 bits *)

let mix h x = (h lxor x) * fnv_prime

let mix_float h f = mix h (Int64.to_int (Int64.bits_of_float f))

let compute_fingerprint ~n ~m ~lb0 ~ub0 ~integer ~obj ~obj_const ~sense
    ~row_ptr ~row_col ~row_val ~rhs =
  let h = ref hash_init in
  h := mix !h n;
  h := mix !h m;
  h := mix !h (match (sense : Model.sense) with Minimize -> 1 | Maximize -> 2);
  h := mix_float !h obj_const;
  for j = 0 to n - 1 do
    h := mix_float !h lb0.(j);
    h := mix_float !h ub0.(j);
    h := mix !h (if integer.(j) then 1 else 0);
    h := mix_float !h obj.(j)
  done;
  for i = 0 to m - 1 do
    h := mix_float !h lb0.(n + i);
    h := mix_float !h ub0.(n + i);
    h := mix_float !h rhs.(i);
    for k = row_ptr.(i) to row_ptr.(i + 1) - 1 do
      h := mix !h row_col.(k);
      h := mix_float !h row_val.(k)
    done
  done;
  !h land max_int

let of_model model =
  let n = Model.num_vars model in
  let constrs = Array.of_list (Model.constraints model) in
  let m = Array.length constrs in
  let nt = n + m in
  let lb0 = Array.make nt 0.0 and ub0 = Array.make nt inf in
  let integer = Array.make n false in
  for j = 0 to n - 1 do
    let l, u = Model.bounds model j in
    lb0.(j) <- l;
    ub0.(j) <- u;
    integer.(j) <- Model.is_integer model j
  done;
  (* Rows in insertion order.  Each is scaled by its largest structural
     coefficient magnitude (kept positive so Le/Ge semantics survive);
     the slack column keeps coefficient exactly 1 with scaled bounds
     folded into lb0/ub0 at [n + i]. *)
  let rhs = Array.make m 0.0 in
  let row_scale = Array.make m 1.0 in
  let row_coeffs = Array.make m [] in
  let nnz = ref 0 in
  Array.iteri
    (fun i (c : Model.constr) ->
      let terms = Expr.coeffs c.expr in
      (* add_constraint already folds the constant into rhs; fold again
         defensively for models built through other paths. *)
      let r = c.rhs -. Expr.const c.expr in
      let scale =
        List.fold_left (fun acc (_, v) -> Float.max acc (Float.abs v)) 0.0 terms
      in
      let scale = if scale > 0.0 then scale else 1.0 in
      let terms =
        List.filter_map
          (fun (j, v) ->
            let v = v /. scale in
            if v = 0.0 then None else Some (j, v))
          terms
      in
      nnz := !nnz + List.length terms;
      row_coeffs.(i) <- terms;
      row_scale.(i) <- scale;
      rhs.(i) <- r /. scale;
      let sl, su =
        match c.cmp with
        | Model.Le -> (0.0, inf)
        | Model.Ge -> (neg_infinity, 0.0)
        | Model.Eq -> (0.0, 0.0)
      in
      lb0.(n + i) <- sl;
      ub0.(n + i) <- su)
    constrs;
  let nnz = !nnz in
  let row_ptr = Array.make (m + 1) 0 in
  let row_col = Array.make nnz 0 in
  let row_val = Array.make nnz 0.0 in
  let k = ref 0 in
  for i = 0 to m - 1 do
    row_ptr.(i) <- !k;
    List.iter
      (fun (j, v) ->
        row_col.(!k) <- j;
        row_val.(!k) <- v;
        incr k)
      row_coeffs.(i)
  done;
  row_ptr.(m) <- !k;
  (* CSC from CSR by column counting; rows end up in increasing row
     order within each column. *)
  let col_ptr = Array.make (n + 1) 0 in
  for k = 0 to nnz - 1 do
    col_ptr.(row_col.(k) + 1) <- col_ptr.(row_col.(k) + 1) + 1
  done;
  for j = 1 to n do
    col_ptr.(j) <- col_ptr.(j) + col_ptr.(j - 1)
  done;
  let col_row = Array.make nnz 0 in
  let col_val = Array.make nnz 0.0 in
  let next = Array.copy col_ptr in
  for i = 0 to m - 1 do
    for k = row_ptr.(i) to row_ptr.(i + 1) - 1 do
      let j = row_col.(k) in
      let p = next.(j) in
      col_row.(p) <- i;
      col_val.(p) <- row_val.(k);
      next.(j) <- p + 1
    done
  done;
  let sense, obj_expr = Model.objective model in
  let obj = Array.make n 0.0 in
  List.iter (fun (j, v) -> obj.(j) <- v) (Expr.coeffs obj_expr);
  let obj_const = Expr.const obj_expr in
  let fingerprint =
    compute_fingerprint ~n ~m ~lb0 ~ub0 ~integer ~obj ~obj_const ~sense
      ~row_ptr ~row_col ~row_val ~rhs
  in
  {
    n;
    m;
    nt;
    lb = Array.copy lb0;
    ub = Array.copy ub0;
    lb0;
    ub0;
    integer;
    obj;
    obj_const;
    sense;
    col_ptr;
    col_row;
    col_val;
    row_ptr;
    row_col;
    row_val;
    rhs;
    rhs0 = Array.copy rhs;
    row_scale;
    fingerprint;
  }

let scratch t =
  { t with
    lb = Array.copy t.lb0;
    ub = Array.copy t.ub0;
    rhs = Array.copy t.rhs0 }

let set_bounds t j ~lb ~ub =
  if j < 0 || j >= t.n then
    invalid_arg "Compiled.set_bounds: not a structural column";
  if lb > ub then invalid_arg "Compiled.set_bounds: lb > ub";
  t.lb.(j) <- lb;
  t.ub.(j) <- ub

let reset_bounds t j =
  if j < 0 || j >= t.nt then invalid_arg "Compiled.reset_bounds";
  t.lb.(j) <- t.lb0.(j);
  t.ub.(j) <- t.ub0.(j)

let reset_all_bounds t =
  Array.blit t.lb0 0 t.lb 0 t.nt;
  Array.blit t.ub0 0 t.ub 0 t.nt

let set_rhs t i v =
  if i < 0 || i >= t.m then invalid_arg "Compiled.set_rhs: row out of range";
  if Float.is_nan v then invalid_arg "Compiled.set_rhs: NaN rhs";
  t.rhs.(i) <- v /. t.row_scale.(i)

let rhs_value t i =
  if i < 0 || i >= t.m then invalid_arg "Compiled.rhs_value: row out of range";
  t.rhs.(i) *. t.row_scale.(i)

let reset_rhs t i =
  if i < 0 || i >= t.m then invalid_arg "Compiled.reset_rhs: row out of range";
  t.rhs.(i) <- t.rhs0.(i)

let reset_all_rhs t = Array.blit t.rhs0 0 t.rhs 0 t.m

let nnz t = t.col_ptr.(t.n)

let fingerprint t = t.fingerprint
