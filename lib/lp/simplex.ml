(* Sparse revised simplex with bounded variables over Compiled.t.

   Column layout (all indices in one namespace):
     [0, n)        structural variables, in model order;
     [n, nt)       one slack per row (coefficient exactly 1);
     [nt, nt + m)  artificials, one per row, existing only where the
                   cold start needs them (coefficient [art_sign]).

   The basis representation is selectable ([basis_kind]):

   - [Lu] (default): a sparse LU factorization of the basis ({!Lu}:
     Markowitz ordering, threshold partial pivoting) plus a
     product-form eta file — one eta per pivot, capturing the FTRAN
     column B^-1 A_e so the factorization itself is never touched
     between refactorizations.  FTRAN applies the LU triangular solves
     then the etas in pivot order; BTRAN applies the transposed etas in
     reverse order then the transposed LU solves.  All four triangular
     passes run in scatter form and skip exactly-zero components, which
     is where right-hand-side hypersparsity (unit vectors, slack
     columns, short structural columns) pays off.

   - [Dense]: the historical kernel — B^-1 as a dense row-major m*m
     matrix updated by elementary row operations per pivot and rebuilt
     by full Gauss-Jordan with partial pivoting.  Kept as the
     correctness oracle and ablation leg.

   Refactorization is policy-driven ([refactor_policy]): a fixed pivot
   count, or (the LU default) whenever the eta file outgrows the
   factorization by a configured factor.  Both backends share the
   pricing/ratio-test/phase machinery and the final dense
   factorization in [finish] — so when the two backends walk the same
   pivot sequence (they do, apart from exact floating-point ties),
   their reported solutions are bit-identical, not merely close.
   Everything the iteration touches lives in a reusable workspace, so
   the pivot loop performs no allocation beyond eta-file growth. *)

module C = Compiled

type solution = { objective : float; values : float array }

type partial = { phase : int; iterations : int }

type status =
  | Optimal of solution
  | Infeasible
  | Unbounded
  | Iter_limit of partial

(* Column status markers (also the wire format inside [basis]). *)
let st_basic = 0

let st_lo = 1

let st_up = 2

let st_fr = 3

type basis = {
  b_n : int;
  b_m : int;
  b_stat : Bytes.t;  (* nt entries: status of every structural/slack column *)
  b_rows : int array;  (* basic column per row; nt + i marks a kept artificial *)
  b_sign : float array;  (* artificial sign per row, 0.0 where none *)
}

type pricing = Bland | Dantzig | Steepest_edge

type basis_kind = Lu | Dense

type refactor_policy =
  | Pivots of int
  | Eta_fill of { max_pivots : int; growth : float }

let default_refactor = function
  | Lu -> Eta_fill { max_pivots = 256; growth = 2.0 }
  | Dense -> Pivots 128

type stats = {
  pivots : int;
  phase1_pivots : int;
  dual_pivots : int;
  bound_flips : int;
  refactorizations : int;
  bland_pivots : int;
  flops : int;
  lu_refactorizations : int;
  lu_fill_in_nnz : int;
  lu_eta_nnz : int;
  ftran_sparse_hits : int;
  btran_sparse_hits : int;
}

let pp_status ppf = function
  | Optimal s -> Format.fprintf ppf "optimal(%g)" s.objective
  | Infeasible -> Format.pp_print_string ppf "infeasible"
  | Unbounded -> Format.pp_print_string ppf "unbounded"
  | Iter_limit p ->
    Format.fprintf ppf "iteration-limit(phase %d, %d pivots)" p.phase
      p.iterations

type workspace = {
  mutable cap_m : int;
  mutable cap_c : int;
  mutable binv : float array;  (* cap_m^2, row-major *)
  mutable fact : float array;  (* refactorization scratch, cap_m^2 *)
  mutable xb : float array;  (* basic values per row *)
  mutable y : float array;  (* BTRAN result: c_B B^-1 *)
  mutable w : float array;  (* FTRAN result: B^-1 A_e *)
  mutable rw : float array;  (* rhs scratch *)
  mutable basis : int array;  (* basic column per row *)
  mutable art_sign : float array;  (* per-row artificial sign, 0 = none *)
  mutable vstat : int array;  (* per-column status *)
  mutable xval : float array;  (* nonbasic column values *)
  mutable dj : float array;  (* reduced costs *)
  mutable alpha : float array;  (* pivot row *)
  mutable refw : float array;  (* devex reference weights *)
  mutable cost : float array;  (* current-phase costs *)
  (* LU backend state *)
  mutable lu : Lu.t option;  (* current factorization *)
  mutable lutmp : float array;  (* permuted solve scratch, cap_m *)
  mutable rho : float array;  (* BTRAN-of-unit-vector scratch, cap_m *)
  mutable bptr : int array;  (* basis assembly: column pointers, cap_m+1 *)
  mutable brow : int array;
  mutable bval : float array;
  (* Product-form eta file: eta k pivots on row eta_row.(k) with pivot
     element eta_piv.(k); off-pivot nonzeros of B^-1 A_e live in
     eta_idx/eta_val.(eta_ptr.(k) .. eta_ptr.(k+1) - 1). *)
  mutable eta_n : int;
  mutable eta_row : int array;
  mutable eta_piv : float array;
  mutable eta_ptr : int array;
  mutable eta_idx : int array;
  mutable eta_val : float array;
}

let grow_int a used need =
  if Array.length a >= need then a
  else begin
    let b = Array.make (max need ((2 * Array.length a) + 8)) 0 in
    Array.blit a 0 b 0 used;
    b
  end

let grow_flt a used need =
  if Array.length a >= need then a
  else begin
    let b = Array.make (max need ((2 * Array.length a) + 8)) 0.0 in
    Array.blit a 0 b 0 used;
    b
  end

let workspace () =
  {
    cap_m = 0;
    cap_c = 0;
    binv = [||];
    fact = [||];
    xb = [||];
    y = [||];
    w = [||];
    rw = [||];
    basis = [||];
    art_sign = [||];
    vstat = [||];
    xval = [||];
    dj = [||];
    alpha = [||];
    refw = [||];
    cost = [||];
    lu = None;
    lutmp = [||];
    rho = [||];
    bptr = [||];
    brow = [||];
    bval = [||];
    eta_n = 0;
    eta_row = [||];
    eta_piv = [||];
    eta_ptr = [| 0 |];
    eta_idx = [||];
    eta_val = [||];
  }

let ensure ws m ncols =
  if ws.cap_m < m then begin
    ws.cap_m <- m;
    ws.binv <- Array.make (m * m) 0.0;
    ws.fact <- Array.make (m * m) 0.0;
    ws.xb <- Array.make m 0.0;
    ws.y <- Array.make m 0.0;
    ws.w <- Array.make m 0.0;
    ws.rw <- Array.make m 0.0;
    ws.basis <- Array.make m 0;
    ws.art_sign <- Array.make m 0.0;
    ws.lutmp <- Array.make m 0.0;
    ws.rho <- Array.make m 0.0;
    ws.bptr <- Array.make (m + 1) 0
  end;
  if ws.cap_c < ncols then begin
    ws.cap_c <- ncols;
    ws.vstat <- Array.make ncols st_lo;
    ws.xval <- Array.make ncols 0.0;
    ws.dj <- Array.make ncols 0.0;
    ws.alpha <- Array.make ncols 0.0;
    ws.refw <- Array.make ncols 1.0;
    ws.cost <- Array.make ncols 0.0
  end;
  ws

exception Stop of status * basis option

exception Fallback (* abandon the warm-start attempt, re-solve cold *)

exception Stuck of int
(* numerically hopeless state (singular refactorization, or a forced
   pivot below tolerance on a fresh factorization) in the given phase.
   Distinct from budget exhaustion: a warm-started solve that gets stuck
   restarts cold (the hint led to a bad vertex, not the problem); only a
   cold solve that gets stuck reports {!Iter_limit}. *)

let solve_compiled ?(pricing = Steepest_edge) ?(max_iter = 100000)
    ?(eps = 1e-7) ?(backend = Lu) ?refactor ?basis:hint ?ws c =
  let n = c.C.n and m = c.C.m and nt = c.C.nt in
  let ncols = nt + m in
  let ws = ensure (match ws with Some w -> w | None -> workspace ()) m ncols in
  let binv = ws.binv and fact = ws.fact in
  let use_lu = backend = Lu in
  let policy =
    match refactor with Some p -> p | None -> default_refactor backend
  in
  let feas_tol = eps *. 0.01 in
  let piv_tol = 1e-9 in
  let rtol = 1e-9 in
  let rhs_scale =
    let s = ref 1.0 in
    for i = 0 to m - 1 do
      s := Float.max !s (Float.abs c.C.rhs.(i))
    done;
    !s
  in
  (* Artificials share one upper bound: +oo during phase 1, 0 after. *)
  let art_ub = ref infinity in
  let lbx j = if j < nt then c.C.lb.(j) else 0.0 in
  let ubx j = if j < nt then c.C.ub.(j) else !art_ub in
  let primal_pivots = ref 0
  and p1_pivots = ref 0
  and dual_pivots = ref 0
  and flips = ref 0
  and refacts = ref 0
  and blands = ref 0
  and flops = ref 0
  and since_refactor = ref 0
  and lu_refacts = ref 0
  and fill_nnz = ref 0
  and eta_total = ref 0
  and fhits = ref 0
  and bhits = ref 0
  and cur_lu_nnz = ref 0
  and cur_eta_nnz = ref 0 in
  let total_pivots () = !primal_pivots + !dual_pivots in
  let stats () =
    {
      pivots = total_pivots ();
      phase1_pivots = !p1_pivots;
      dual_pivots = !dual_pivots;
      bound_flips = !flips;
      refactorizations = !refacts;
      bland_pivots = !blands;
      flops = !flops;
      lu_refactorizations = !lu_refacts;
      lu_fill_in_nnz = !fill_nnz;
      lu_eta_nnz = !eta_total;
      ftran_sparse_hits = !fhits;
      btran_sparse_hits = !bhits;
    }
  in
  let limit phase = Stop (Iter_limit { phase; iterations = total_pivots () }, None) in
  (* ---- linear-algebra primitives ------------------------------------ *)
  (* Flop charging is "honest" on both backends: 2 per entry actually
     multiplied-and-accumulated (no dense m^2/m^3 formulas), so the
     counter is comparable across backends and measures real work. *)
  let dense_refactor () =
    incr refacts;
    since_refactor := 0;
    Array.fill fact 0 (m * m) 0.0;
    for i = 0 to m - 1 do
      let k = ws.basis.(i) in
      if k < n then
        for p = c.C.col_ptr.(k) to c.C.col_ptr.(k + 1) - 1 do
          fact.((c.C.col_row.(p) * m) + i) <- c.C.col_val.(p)
        done
      else if k < nt then fact.(((k - n) * m) + i) <- 1.0
      else fact.(((k - nt) * m) + i) <- ws.art_sign.(k - nt)
    done;
    Array.fill binv 0 (m * m) 0.0;
    for i = 0 to m - 1 do
      binv.((i * m) + i) <- 1.0
    done;
    let ok = ref true in
    (try
       for col = 0 to m - 1 do
         let best = ref col
         and bestv = ref (Float.abs fact.((col * m) + col)) in
         for r = col + 1 to m - 1 do
           let v = Float.abs fact.((r * m) + col) in
           if v > !bestv then begin
             best := r;
             bestv := v
           end
         done;
         if !bestv < 1e-11 then begin
           ok := false;
           raise Exit
         end;
         if !best <> col then begin
           let oa = col * m and ob = !best * m in
           for q = 0 to m - 1 do
             let t = fact.(oa + q) in
             fact.(oa + q) <- fact.(ob + q);
             fact.(ob + q) <- t;
             let t = binv.(oa + q) in
             binv.(oa + q) <- binv.(ob + q);
             binv.(ob + q) <- t
           done
         end;
         let off = col * m in
         let ipiv = 1.0 /. fact.(off + col) in
         flops := !flops + (4 * m);
         for q = 0 to m - 1 do
           fact.(off + q) <- fact.(off + q) *. ipiv;
           binv.(off + q) <- binv.(off + q) *. ipiv
         done;
         for r = 0 to m - 1 do
           if r <> col then begin
             let f = fact.((r * m) + col) in
             if f <> 0.0 then begin
               let offr = r * m in
               flops := !flops + (4 * m);
               for q = 0 to m - 1 do
                 fact.(offr + q) <- fact.(offr + q) -. (f *. fact.(off + q));
                 binv.(offr + q) <- binv.(offr + q) -. (f *. binv.(off + q))
               done
             end
           end
         done
       done
     with Exit -> ());
    !ok
  in
  (* ---- LU backend: factorization + product-form eta file ------------- *)
  let eta_reset () =
    ws.eta_n <- 0;
    if Array.length ws.eta_ptr = 0 then ws.eta_ptr <- Array.make 8 0;
    ws.eta_ptr.(0) <- 0;
    cur_eta_nnz := 0
  in
  (* Record ws.w (= B^-1 A_e) as the eta of a pivot on row [r]. *)
  let eta_append r =
    let k = ws.eta_n in
    ws.eta_row <- grow_int ws.eta_row k (k + 1);
    ws.eta_piv <- grow_flt ws.eta_piv k (k + 1);
    ws.eta_ptr <- grow_int ws.eta_ptr (k + 1) (k + 2);
    let base = ws.eta_ptr.(k) in
    let cnt = ref 0 in
    for i = 0 to m - 1 do
      if i <> r && ws.w.(i) <> 0.0 then incr cnt
    done;
    ws.eta_idx <- grow_int ws.eta_idx base (base + !cnt);
    ws.eta_val <- grow_flt ws.eta_val base (base + !cnt);
    let pos = ref base in
    for i = 0 to m - 1 do
      if i <> r && ws.w.(i) <> 0.0 then begin
        ws.eta_idx.(!pos) <- i;
        ws.eta_val.(!pos) <- ws.w.(i);
        incr pos
      end
    done;
    ws.eta_row.(k) <- r;
    ws.eta_piv.(k) <- ws.w.(r);
    ws.eta_ptr.(k + 1) <- !pos;
    ws.eta_n <- k + 1;
    cur_eta_nnz := !cur_eta_nnz + !cnt + 1;
    eta_total := !eta_total + !cnt + 1
  in
  (* FTRAN tail: apply E_1^-1 .. E_k^-1 in pivot order.  An eta whose
     pivot component is exactly zero is a no-op (skip). *)
  let eta_ftran v =
    for k = 0 to ws.eta_n - 1 do
      let r = ws.eta_row.(k) in
      let xr = v.(r) in
      if xr = 0.0 then incr fhits
      else begin
        let xr = xr /. ws.eta_piv.(k) in
        v.(r) <- xr;
        let b = ws.eta_ptr.(k) and e = ws.eta_ptr.(k + 1) in
        flops := !flops + 1 + (2 * (e - b));
        for p = b to e - 1 do
          let i = ws.eta_idx.(p) in
          v.(i) <- v.(i) -. (ws.eta_val.(p) *. xr)
        done
      end
    done
  in
  (* BTRAN head: apply E_k^-T .. E_1^-T (reverse order); each transposed
     eta only rewrites its pivot component. *)
  let eta_btran v =
    for k = ws.eta_n - 1 downto 0 do
      let r = ws.eta_row.(k) in
      let b = ws.eta_ptr.(k) and e = ws.eta_ptr.(k + 1) in
      let s = ref v.(r) in
      for p = b to e - 1 do
        s := !s -. (ws.eta_val.(p) *. v.(ws.eta_idx.(p)))
      done;
      flops := !flops + 1 + (2 * (e - b));
      v.(r) <- !s /. ws.eta_piv.(k)
    done
  in
  (* v := B^-1 v (factorization then etas); v := B^-T v (etas then
     transposed factorization). *)
  let lu_apply_ftran v =
    (match ws.lu with
    | Some lu ->
      let fl, sk = Lu.ftran lu ~x:v ~tmp:ws.lutmp in
      flops := !flops + fl;
      fhits := !fhits + sk
    | None -> assert false);
    eta_ftran v
  in
  let lu_apply_btran v =
    eta_btran v;
    match ws.lu with
    | Some lu ->
      let fl, sk = Lu.btran lu ~x:v ~tmp:ws.lutmp in
      flops := !flops + fl;
      bhits := !bhits + sk
    | None -> assert false
  in
  let lu_refactor () =
    (* Assemble the basis columns (basis position i = column i of B) in
       CSC form, reusing the workspace assembly buffers. *)
    let len = ref 0 in
    ws.bptr <- grow_int ws.bptr 0 (m + 1);
    ws.bptr.(0) <- 0;
    for i = 0 to m - 1 do
      let k = ws.basis.(i) in
      let need = if k < n then c.C.col_ptr.(k + 1) - c.C.col_ptr.(k) else 1 in
      ws.brow <- grow_int ws.brow !len (!len + need);
      ws.bval <- grow_flt ws.bval !len (!len + need);
      if k < n then
        for p = c.C.col_ptr.(k) to c.C.col_ptr.(k + 1) - 1 do
          ws.brow.(!len) <- c.C.col_row.(p);
          ws.bval.(!len) <- c.C.col_val.(p);
          incr len
        done
      else if k < nt then begin
        ws.brow.(!len) <- k - n;
        ws.bval.(!len) <- 1.0;
        incr len
      end
      else begin
        ws.brow.(!len) <- k - nt;
        ws.bval.(!len) <- ws.art_sign.(k - nt);
        incr len
      end;
      ws.bptr.(i + 1) <- !len
    done;
    match Lu.factor ~m ~ptr:ws.bptr ~row:ws.brow ~vals:ws.bval () with
    | None -> false
    | Some lu ->
      ws.lu <- Some lu;
      incr refacts;
      incr lu_refacts;
      since_refactor := 0;
      eta_reset ();
      cur_lu_nnz := Lu.nnz lu;
      fill_nnz := !fill_nnz + max 0 (Lu.nnz lu - !len);
      flops := !flops + Lu.flops lu;
      true
  in
  let refactor () = if use_lu then lu_refactor () else dense_refactor () in
  let need_refactor () =
    match policy with
    | Pivots k -> !since_refactor >= k
    | Eta_fill { max_pivots; growth } ->
      !since_refactor >= max_pivots
      || (use_lu
         && !since_refactor > 0
         && float_of_int !cur_eta_nnz > growth *. float_of_int (!cur_lu_nnz + m)
         )
  in
  (* ---- backend-dispatched kernel operations --------------------------- *)
  let load_residual () =
    (* ws.rw := rhs - N x_N, charged at the entries actually touched *)
    Array.blit c.C.rhs 0 ws.rw 0 m;
    let t = ref 0 in
    for j = 0 to nt - 1 do
      if ws.vstat.(j) <> st_basic && ws.xval.(j) <> 0.0 then begin
        let x = ws.xval.(j) in
        if j < n then begin
          t := !t + (2 * (c.C.col_ptr.(j + 1) - c.C.col_ptr.(j)));
          for p = c.C.col_ptr.(j) to c.C.col_ptr.(j + 1) - 1 do
            let r = c.C.col_row.(p) in
            ws.rw.(r) <- ws.rw.(r) -. (c.C.col_val.(p) *. x)
          done
        end
        else begin
          t := !t + 2;
          ws.rw.(j - n) <- ws.rw.(j - n) -. x
        end
      end
    done;
    flops := !flops + !t
  in
  let dense_compute_xb () =
    load_residual ();
    flops := !flops + (2 * m * m);
    for i = 0 to m - 1 do
      let off = i * m in
      let s = ref 0.0 in
      for k = 0 to m - 1 do
        s := !s +. (binv.(off + k) *. ws.rw.(k))
      done;
      ws.xb.(i) <- !s
    done
  in
  let compute_xb () =
    if use_lu then begin
      load_residual ();
      lu_apply_ftran ws.rw;
      Array.blit ws.rw 0 ws.xb 0 m
    end
    else dense_compute_xb ()
  in
  let btran () =
    if use_lu then begin
      for i = 0 to m - 1 do
        ws.y.(i) <- ws.cost.(ws.basis.(i))
      done;
      lu_apply_btran ws.y
    end
    else begin
      Array.fill ws.y 0 m 0.0;
      for i = 0 to m - 1 do
        let cb = ws.cost.(ws.basis.(i)) in
        if cb <> 0.0 then begin
          let off = i * m in
          flops := !flops + (2 * m);
          for k = 0 to m - 1 do
            ws.y.(k) <- ws.y.(k) +. (cb *. binv.(off + k))
          done
        end
      done
    end
  in
  let reduced_cost j =
    if j < n then begin
      let s = ref ws.cost.(j) in
      flops := !flops + (2 * (c.C.col_ptr.(j + 1) - c.C.col_ptr.(j)));
      for p = c.C.col_ptr.(j) to c.C.col_ptr.(j + 1) - 1 do
        s := !s -. (c.C.col_val.(p) *. ws.y.(c.C.col_row.(p)))
      done;
      !s
    end
    else begin
      flops := !flops + 1;
      ws.cost.(j) -. ws.y.(j - n)
    end
  in
  let ftran e =
    Array.fill ws.w 0 m 0.0;
    if use_lu then begin
      if e < n then
        for p = c.C.col_ptr.(e) to c.C.col_ptr.(e + 1) - 1 do
          ws.w.(c.C.col_row.(p)) <- c.C.col_val.(p)
        done
      else ws.w.(e - n) <- 1.0;
      lu_apply_ftran ws.w
    end
    else if e < n then begin
      flops := !flops + (2 * m * (c.C.col_ptr.(e + 1) - c.C.col_ptr.(e)));
      for p = c.C.col_ptr.(e) to c.C.col_ptr.(e + 1) - 1 do
        let r = c.C.col_row.(p) and v = c.C.col_val.(p) in
        for i = 0 to m - 1 do
          ws.w.(i) <- ws.w.(i) +. (binv.((i * m) + r) *. v)
        done
      done
    end
    else begin
      flops := !flops + (2 * m);
      let r = e - n in
      for i = 0 to m - 1 do
        ws.w.(i) <- ws.w.(i) +. binv.((i * m) + r)
      done
    end
  in
  (* Pivot row r of B^-1 N into ws.alpha (nonbasic columns only).  The
     dense backend reads row r of the explicit inverse; the LU backend
     computes rho = B^-T e_r (one hypersparse BTRAN) and prices the
     nonbasic columns against it. *)
  let pivot_row r =
    let t = ref 0 in
    if use_lu then begin
      Array.fill ws.rho 0 m 0.0;
      ws.rho.(r) <- 1.0;
      lu_apply_btran ws.rho;
      for j = 0 to nt - 1 do
        if ws.vstat.(j) <> st_basic then
          ws.alpha.(j) <-
            (if j < n then begin
               let s = ref 0.0 in
               t := !t + (2 * (c.C.col_ptr.(j + 1) - c.C.col_ptr.(j)));
               for p = c.C.col_ptr.(j) to c.C.col_ptr.(j + 1) - 1 do
                 s := !s +. (ws.rho.(c.C.col_row.(p)) *. c.C.col_val.(p))
               done;
               !s
             end
             else begin
               incr t;
               ws.rho.(j - n)
             end)
        else ws.alpha.(j) <- 0.0
      done
    end
    else begin
      let off = r * m in
      for j = 0 to nt - 1 do
        if ws.vstat.(j) <> st_basic then
          ws.alpha.(j) <-
            (if j < n then begin
               let s = ref 0.0 in
               t := !t + (2 * (c.C.col_ptr.(j + 1) - c.C.col_ptr.(j)));
               for p = c.C.col_ptr.(j) to c.C.col_ptr.(j + 1) - 1 do
                 s := !s +. (binv.(off + c.C.col_row.(p)) *. c.C.col_val.(p))
               done;
               !s
             end
             else begin
               incr t;
               binv.(off + (j - n))
             end)
        else ws.alpha.(j) <- 0.0
      done
    end;
    flops := !flops + !t
  in
  (* Replace row r's basic column with e (ws.w must hold B^-1 A_e).
     Dense: elementary row operations on the explicit inverse.
     LU: append one eta; the factorization is untouched. *)
  let apply_pivot r e ~ve ~leave_st ~leave_val =
    let k = ws.basis.(r) in
    ws.vstat.(k) <- leave_st;
    ws.xval.(k) <- leave_val;
    ws.basis.(r) <- e;
    ws.vstat.(e) <- st_basic;
    ws.xb.(r) <- ve;
    if use_lu then eta_append r
    else begin
      let offr = r * m in
      let ipiv = 1.0 /. ws.w.(r) in
      flops := !flops + (2 * m);
      for q = 0 to m - 1 do
        binv.(offr + q) <- binv.(offr + q) *. ipiv
      done;
      for i = 0 to m - 1 do
        if i <> r then begin
          let f = ws.w.(i) in
          if f <> 0.0 then begin
            let offi = i * m in
            flops := !flops + (2 * m);
            for q = 0 to m - 1 do
              binv.(offi + q) <- binv.(offi + q) -. (f *. binv.(offr + q))
            done
          end
        end
      done
    end;
    incr since_refactor
  in
  let devex_update r e =
    if pricing = Steepest_edge then begin
      pivot_row r;
      let ae = ws.w.(r) in
      if Float.abs ae > 1e-12 then begin
        let ge = ws.refw.(e) in
        for j = 0 to nt - 1 do
          if ws.vstat.(j) <> st_basic && j <> e then begin
            let aj = ws.alpha.(j) in
            if aj <> 0.0 then begin
              let q = aj /. ae in
              let cand = q *. q *. ge in
              if cand > ws.refw.(j) then ws.refw.(j) <- cand
            end
          end
        done;
        ws.refw.(ws.basis.(r)) <- Float.max (ge /. (ae *. ae)) 1.0
      end
    end
  in
  let current_z () =
    let s = ref 0.0 in
    for i = 0 to m - 1 do
      let cb = ws.cost.(ws.basis.(i)) in
      if cb <> 0.0 then s := !s +. (cb *. ws.xb.(i))
    done;
    for j = 0 to nt - 1 do
      if ws.vstat.(j) <> st_basic && ws.cost.(j) <> 0.0 && ws.xval.(j) <> 0.0
      then s := !s +. (ws.cost.(j) *. ws.xval.(j))
    done;
    !s
  in
  let choose_entering ~bland =
    let best = ref (-1) and best_score = ref 0.0 in
    (try
       for j = 0 to nt - 1 do
         let st = ws.vstat.(j) in
         if st <> st_basic && lbx j < ubx j then begin
           let d = reduced_cost j in
           ws.dj.(j) <- d;
           let elig =
             (d < -.eps && (st = st_lo || st = st_fr))
             || (d > eps && (st = st_up || st = st_fr))
           in
           if elig then
             if bland then begin
               best := j;
               raise Exit
             end
             else begin
               let score =
                 match pricing with
                 | Steepest_edge -> d *. d /. ws.refw.(j)
                 | Dantzig | Bland -> Float.abs d
               in
               if score > !best_score then begin
                 best_score := score;
                 best := j
               end
             end
         end
       done
     with Exit -> ());
    !best
  in
  (* ---- primal iteration --------------------------------------------- *)
  let primal_phase ~phase =
    let iters = ref 0 in
    let stall = ref 0 in
    let bland = ref (pricing = Bland) in
    let last_z = ref infinity in
    let finished = ref None in
    while !finished = None do
      if need_refactor () then begin
        if not (refactor ()) then raise (Stuck phase);
        compute_xb ()
      end;
      btran ();
      let e = choose_entering ~bland:!bland in
      if e < 0 then finished := Some `Optimal
      else if !iters >= max_iter then finished := Some `Limit
      else begin
        let z = current_z () in
        if z < !last_z -. (1e-12 *. (1.0 +. Float.abs !last_z)) then begin
          last_z := z;
          stall := 0
        end
        else begin
          incr stall;
          if !stall > 200 then bland := true
        end;
        let dir = if ws.dj.(e) < 0.0 then 1.0 else -1.0 in
        ftran e;
        let span = ubx e -. lbx e in
        let best_t = ref span and leave_r = ref (-1) and leave_up = ref false in
        for i = 0 to m - 1 do
          let a = dir *. ws.w.(i) in
          if a > piv_tol then begin
            let l = lbx ws.basis.(i) in
            if l > neg_infinity then begin
              let t = Float.max 0.0 ((ws.xb.(i) -. l) /. a) in
              if
                t < !best_t -. rtol
                || (t < !best_t +. rtol
                   && !leave_r >= 0
                   &&
                   if !bland then ws.basis.(i) < ws.basis.(!leave_r)
                   else Float.abs ws.w.(i) > Float.abs ws.w.(!leave_r))
              then begin
                if t < !best_t then best_t := t;
                leave_r := i;
                leave_up := false
              end
            end
          end
          else if a < -.piv_tol then begin
            let u = ubx ws.basis.(i) in
            if u < infinity then begin
              let t = Float.max 0.0 ((u -. ws.xb.(i)) /. -.a) in
              if
                t < !best_t -. rtol
                || (t < !best_t +. rtol
                   && !leave_r >= 0
                   &&
                   if !bland then ws.basis.(i) < ws.basis.(!leave_r)
                   else Float.abs ws.w.(i) > Float.abs ws.w.(!leave_r))
              then begin
                if t < !best_t then best_t := t;
                leave_r := i;
                leave_up := true
              end
            end
          end
        done;
        if !best_t = infinity then finished := Some `Unbounded
        else if !leave_r < 0 then begin
          (* entering variable runs to its opposite bound: no basis change *)
          let t = !best_t in
          ws.xval.(e) <- (if dir > 0.0 then ubx e else lbx e);
          ws.vstat.(e) <- (if dir > 0.0 then st_up else st_lo);
          flops := !flops + (2 * m);
          for i = 0 to m - 1 do
            ws.xb.(i) <- ws.xb.(i) -. (dir *. t *. ws.w.(i))
          done;
          incr flips;
          incr iters
        end
        else begin
          let r = !leave_r in
          if Float.abs ws.w.(r) < 1e-10 then begin
            (* numerically hopeless pivot: refresh the factorization and
               retry; if it is already fresh, give up (cold restart when
               warm-started, Iter_limit otherwise) *)
            if !since_refactor > 0 then begin
              if not (refactor ()) then raise (Stuck phase);
              compute_xb ()
            end
            else raise (Stuck phase)
          end
          else begin
            let t = !best_t in
            let k = ws.basis.(r) in
            let leave_st = if !leave_up then st_up else st_lo in
            let leave_val = if !leave_up then ubx k else lbx k in
            devex_update r e;
            flops := !flops + (2 * m);
            for i = 0 to m - 1 do
              if i <> r then ws.xb.(i) <- ws.xb.(i) -. (dir *. t *. ws.w.(i))
            done;
            let ve = ws.xval.(e) +. (dir *. t) in
            apply_pivot r e ~ve ~leave_st ~leave_val;
            incr iters;
            incr primal_pivots;
            if phase = 1 then incr p1_pivots;
            if !bland then incr blands
          end
        end
      end
    done;
    match !finished with Some r -> r | None -> assert false
  in
  (* ---- phase transitions -------------------------------------------- *)
  let set_phase2_cost () =
    Array.fill ws.cost 0 ncols 0.0;
    let sgn = match c.C.sense with Model.Minimize -> 1.0 | Maximize -> -1.0 in
    for j = 0 to n - 1 do
      ws.cost.(j) <- sgn *. c.C.obj.(j)
    done
  in
  let drive_out_artificials () =
    for i = 0 to m - 1 do
      if ws.basis.(i) >= nt then begin
        pivot_row i;
        let best = ref (-1) and bestv = ref 1e-7 in
        for j = 0 to nt - 1 do
          if ws.vstat.(j) <> st_basic then begin
            let a = Float.abs ws.alpha.(j) in
            if a > !bestv then begin
              bestv := a;
              best := j
            end
          end
        done;
        if !best >= 0 then begin
          (* degenerate pivot: swap the artificial out without moving x *)
          let e = !best in
          ftran e;
          apply_pivot i e ~ve:ws.xval.(e) ~leave_st:st_lo ~leave_val:0.0;
          incr primal_pivots;
          incr p1_pivots
        end
        (* else: redundant row; the artificial stays basic, pinned at 0
           once art_ub drops to 0 *)
      end
    done
  in
  let finish () =
    (* Both backends finish on the shared dense factorization: when the
       pivot sequences agree, the reported values and objective are
       bit-identical across backends, not merely within tolerance. *)
    if m > 0 then begin
      if not (dense_refactor ()) then raise (Stuck 2);
      dense_compute_xb ()
    end;
    let values = Array.make n 0.0 in
    for j = 0 to n - 1 do
      if ws.vstat.(j) <> st_basic then values.(j) <- ws.xval.(j)
    done;
    for i = 0 to m - 1 do
      let k = ws.basis.(i) in
      if k < n then values.(k) <- ws.xb.(i)
    done;
    let obj = ref c.C.obj_const in
    for j = 0 to n - 1 do
      obj := !obj +. (c.C.obj.(j) *. values.(j))
    done;
    let b_stat = Bytes.create nt in
    for j = 0 to nt - 1 do
      Bytes.unsafe_set b_stat j (Char.unsafe_chr ws.vstat.(j))
    done;
    let b =
      {
        b_n = n;
        b_m = m;
        b_stat;
        b_rows = Array.sub ws.basis 0 m;
        b_sign = Array.sub ws.art_sign 0 m;
      }
    in
    raise (Stop (Optimal { objective = !obj; values }, Some b))
  in
  let phase2_and_finish () =
    set_phase2_cost ();
    Array.fill ws.refw 0 ncols 1.0;
    match primal_phase ~phase:2 with
    | `Optimal -> finish ()
    | `Unbounded -> raise (Stop (Unbounded, None))
    | `Limit -> raise (limit 2)
  in
  (* ---- cold start ---------------------------------------------------- *)
  let cold () =
    art_ub := infinity;
    Array.fill ws.art_sign 0 m 0.0;
    Array.fill ws.vstat 0 ncols st_lo;
    Array.fill ws.xval 0 ncols 0.0;
    for j = 0 to nt - 1 do
      if c.C.lb.(j) > c.C.ub.(j) then raise (Stop (Infeasible, None))
    done;
    for j = 0 to n - 1 do
      let l = c.C.lb.(j) and u = c.C.ub.(j) in
      if l > neg_infinity then begin
        ws.vstat.(j) <- st_lo;
        ws.xval.(j) <- l
      end
      else if u < infinity then begin
        ws.vstat.(j) <- st_up;
        ws.xval.(j) <- u
      end
      else begin
        ws.vstat.(j) <- st_fr;
        ws.xval.(j) <- 0.0
      end
    done;
    (* residual of each row at the nonbasic point decides slack vs
       artificial start *)
    Array.blit c.C.rhs 0 ws.rw 0 m;
    for j = 0 to n - 1 do
      let x = ws.xval.(j) in
      if x <> 0.0 then
        for p = c.C.col_ptr.(j) to c.C.col_ptr.(j + 1) - 1 do
          let r = c.C.col_row.(p) in
          ws.rw.(r) <- ws.rw.(r) -. (c.C.col_val.(p) *. x)
        done
    done;
    let need_art = ref false in
    for i = 0 to m - 1 do
      let sj = n + i in
      let sl = c.C.lb.(sj) and su = c.C.ub.(sj) in
      let r = ws.rw.(i) in
      if r >= sl -. feas_tol && r <= su +. feas_tol then begin
        ws.vstat.(sj) <- st_basic;
        ws.basis.(i) <- sj;
        ws.xb.(i) <- r
      end
      else begin
        let sv = if r < sl then sl else su in
        ws.vstat.(sj) <- (if r < sl then st_lo else st_up);
        ws.xval.(sj) <- sv;
        let resid = r -. sv in
        ws.art_sign.(i) <- (if resid >= 0.0 then 1.0 else -1.0);
        ws.basis.(i) <- nt + i;
        ws.vstat.(nt + i) <- st_basic;
        ws.xb.(i) <- Float.abs resid;
        need_art := true
      end
    done;
    Array.fill binv 0 (m * m) 0.0;
    for i = 0 to m - 1 do
      binv.((i * m) + i) <-
        (if ws.basis.(i) >= nt then ws.art_sign.(i) else 1.0)
    done;
    since_refactor := 0;
    (* The LU backend factors the initial (diagonal) basis explicitly;
       a diagonal of +-1 entries cannot be singular. *)
    if use_lu && not (lu_refactor ()) then raise (Stuck 1);
    if !need_art then begin
      Array.fill ws.cost 0 ncols 0.0;
      for i = 0 to m - 1 do
        if ws.art_sign.(i) <> 0.0 then ws.cost.(nt + i) <- 1.0
      done;
      Array.fill ws.refw 0 ncols 1.0;
      (match primal_phase ~phase:1 with
      | `Optimal -> ()
      | `Unbounded ->
        (* a sum of nonnegative artificials cannot be unbounded below:
           numerical trouble, reported as a budget stop *)
        raise (limit 1)
      | `Limit -> raise (limit 1));
      let z1 = current_z () in
      if z1 > eps *. 10.0 *. rhs_scale then raise (Stop (Infeasible, None));
      drive_out_artificials ()
    end;
    art_ub := 0.0;
    phase2_and_finish ()
  in
  (* ---- warm start: dual reoptimization ------------------------------- *)
  let primal_feasible () =
    let ok = ref true in
    for i = 0 to m - 1 do
      let k = ws.basis.(i) in
      if ws.xb.(i) < lbx k -. feas_tol || ws.xb.(i) > ubx k +. feas_tol then
        ok := false
    done;
    !ok
  in
  let warm b =
    if b.b_n <> n || b.b_m <> m then raise Fallback;
    for j = 0 to nt - 1 do
      if c.C.lb.(j) > c.C.ub.(j) then raise (Stop (Infeasible, None))
    done;
    Array.fill ws.vstat 0 ncols st_lo;
    Array.fill ws.xval 0 ncols 0.0;
    Array.fill ws.art_sign 0 m 0.0;
    for j = 0 to nt - 1 do
      ws.vstat.(j) <- Char.code (Bytes.get b.b_stat j)
    done;
    for i = 0 to m - 1 do
      let k = b.b_rows.(i) in
      if k < 0 || k >= ncols then raise Fallback;
      if k >= nt then begin
        if k <> nt + i || b.b_sign.(i) = 0.0 then raise Fallback;
        ws.art_sign.(i) <- b.b_sign.(i)
      end;
      ws.basis.(i) <- k;
      ws.vstat.(k) <- st_basic
    done;
    art_ub := 0.0;
    (* snap nonbasics onto the current bounds *)
    for j = 0 to nt - 1 do
      let st = ws.vstat.(j) in
      if st <> st_basic then begin
        let l = c.C.lb.(j) and u = c.C.ub.(j) in
        let st =
          if l = neg_infinity && u = infinity then st_fr
          else if st = st_lo then if l > neg_infinity then st_lo else st_up
          else if st = st_up then if u < infinity then st_up else st_lo
          else if l > neg_infinity then st_lo
          else st_up
        in
        ws.vstat.(j) <- st;
        ws.xval.(j) <-
          (if st = st_lo then l else if st = st_up then u else 0.0)
      end
    done;
    if not (refactor ()) then raise Fallback;
    compute_xb ();
    set_phase2_cost ();
    Array.fill ws.refw 0 ncols 1.0;
    btran ();
    let dual_ok = ref true in
    for j = 0 to nt - 1 do
      let st = ws.vstat.(j) in
      if st <> st_basic && lbx j < ubx j then begin
        let d = reduced_cost j in
        ws.dj.(j) <- d;
        if
          (d < -.eps && (st = st_lo || st = st_fr))
          || (d > eps && (st = st_up || st = st_fr))
        then dual_ok := false
      end
    done;
    if not !dual_ok then
      if primal_feasible () then phase2_and_finish () else raise Fallback;
    (* dual simplex loop *)
    let max_dual = (2 * m) + 200 in
    let iters = ref 0 in
    let continue_dual = ref true in
    while !continue_dual do
      if !iters > max_dual then raise Fallback;
      if !iters >= max_iter then raise (limit 2);
      if need_refactor () then begin
        if not (refactor ()) then raise Fallback;
        compute_xb ()
      end;
      let r = ref (-1) and viol = ref feas_tol and need_up = ref false in
      for i = 0 to m - 1 do
        let k = ws.basis.(i) in
        let below = lbx k -. ws.xb.(i) and above = ws.xb.(i) -. ubx k in
        if below > !viol then begin
          viol := below;
          r := i;
          need_up := true
        end;
        if above > !viol then begin
          viol := above;
          r := i;
          need_up := false
        end
      done;
      if !r < 0 then continue_dual := false
      else begin
        let r = !r in
        btran ();
        for j = 0 to nt - 1 do
          if ws.vstat.(j) <> st_basic then ws.dj.(j) <- reduced_cost j
        done;
        pivot_row r;
        let e = ref (-1) and best = ref infinity in
        for j = 0 to nt - 1 do
          let st = ws.vstat.(j) in
          if st <> st_basic && lbx j < ubx j then begin
            let a = ws.alpha.(j) in
            let good =
              if !need_up then
                (a < -.piv_tol && (st = st_lo || st = st_fr))
                || (a > piv_tol && (st = st_up || st = st_fr))
              else
                (a > piv_tol && (st = st_lo || st = st_fr))
                || (a < -.piv_tol && (st = st_up || st = st_fr))
            in
            if good then begin
              let ratio = Float.abs ws.dj.(j) /. Float.abs a in
              if
                ratio < !best -. 1e-12
                || (ratio < !best +. 1e-12
                   && !e >= 0
                   && Float.abs a > Float.abs ws.alpha.(!e))
              then begin
                if ratio < !best then best := ratio;
                e := j
              end
            end
          end
        done;
        if !e < 0 then
          (* the violated row cannot be repaired within the nonbasic
             bounds: primal infeasible *)
          raise (Stop (Infeasible, None));
        let e = !e in
        ftran e;
        if Float.abs ws.w.(r) < 1e-10 then raise Fallback;
        let k = ws.basis.(r) in
        let target = if !need_up then lbx k else ubx k in
        let dx = (ws.xb.(r) -. target) /. ws.w.(r) in
        flops := !flops + (2 * m);
        for i = 0 to m - 1 do
          if i <> r then ws.xb.(i) <- ws.xb.(i) -. (dx *. ws.w.(i))
        done;
        let ve = ws.xval.(e) +. dx in
        let leave_st = if !need_up then st_lo else st_up in
        apply_pivot r e ~ve ~leave_st ~leave_val:target;
        incr dual_pivots;
        incr iters
      end
    done;
    (* primal feasible again; a (usually pivot-free) primal phase 2
       verifies optimality and covers residual dual infeasibility *)
    phase2_and_finish ()
  in
  let st, b =
    try
      match hint with
      | Some b -> ( try warm b with Fallback | Stuck _ -> cold ())
      | None -> cold ()
    with
    | Stop (st, b) -> (st, b)
    | Stuck phase -> (Iter_limit { phase; iterations = total_pivots () }, None)
  in
  (st, b, stats ())

(* ---- basis surgery ---------------------------------------------------- *)

(* Append [rows] fresh rows to a basis, each with its own slack basic:
   exactly the state a dual-simplex warm restart wants after cutting
   planes are appended to the model (the new slacks start primal
   infeasible when their cut is violated, and the dual iteration repairs
   them).  Column layout note: slack columns sit at [n + i], so appending
   rows at the end leaves every existing column index unchanged. *)
let extend_basis (b : basis) ~rows =
  if rows < 0 then invalid_arg "Simplex.extend_basis: negative row count";
  if rows = 0 then b
  else begin
    let nt = b.b_n + b.b_m in
    let nt' = nt + rows in
    let b_stat = Bytes.make nt' (Char.chr st_basic) in
    Bytes.blit b.b_stat 0 b_stat 0 nt;
    let b_rows =
      Array.append b.b_rows (Array.init rows (fun i -> nt + i))
    in
    let b_sign = Array.append b.b_sign (Array.make rows 0.0) in
    { b_n = b.b_n; b_m = b.b_m + rows; b_stat; b_rows; b_sign }
  end

(* ---- tableau extraction (cut separation) ------------------------------ *)

(* A factorized snapshot of a basis against a compiled model's current
   bounds and rhs.  Not a solving path: built once per separation round
   (root of the search), so a fresh dense inverse is fine. *)
type tableau = {
  t_c : C.t;
  t_binv : float array;  (* m*m row-major B^-1 *)
  t_rows : int array;  (* basic column per row *)
  t_stat : int array;  (* per-column status, nt entries *)
  t_xval : float array;  (* nonbasic column values, nt entries *)
  t_xb : float array;  (* basic values per row *)
}

type col_status = Col_basic | Col_lower | Col_upper | Col_free

let tableau c (b : basis) =
  let n = c.C.n and m = c.C.m and nt = c.C.nt in
  if b.b_n <> n || b.b_m <> m then None
  else if Array.exists (fun k -> k < 0 || k >= nt) b.b_rows then
    None (* kept artificials: no clean tableau over structural+slack *)
  else begin
    let stat = Array.make nt st_lo in
    for j = 0 to nt - 1 do
      stat.(j) <- Char.code (Bytes.get b.b_stat j)
    done;
    Array.iter (fun k -> stat.(k) <- st_basic) b.b_rows;
    (* Snap nonbasic columns onto the current bounds, exactly as the warm
       start does, so the tableau reproduces the vertex the caller's
       solve finished on. *)
    let xval = Array.make nt 0.0 in
    for j = 0 to nt - 1 do
      if stat.(j) <> st_basic then begin
        let l = c.C.lb.(j) and u = c.C.ub.(j) in
        let st =
          if l = neg_infinity && u = infinity then st_fr
          else if stat.(j) = st_lo then if l > neg_infinity then st_lo else st_up
          else if stat.(j) = st_up then if u < infinity then st_up else st_lo
          else if l > neg_infinity then st_lo
          else st_up
        in
        stat.(j) <- st;
        xval.(j) <- (if st = st_lo then l else if st = st_up then u else 0.0)
      end
    done;
    (* Dense B and Gauss-Jordan inverse with partial pivoting. *)
    let fact = Array.make (m * m) 0.0 in
    let binv = Array.make (m * m) 0.0 in
    for i = 0 to m - 1 do
      let k = b.b_rows.(i) in
      if k < n then
        for p = c.C.col_ptr.(k) to c.C.col_ptr.(k + 1) - 1 do
          fact.((c.C.col_row.(p) * m) + i) <- c.C.col_val.(p)
        done
      else fact.(((k - n) * m) + i) <- 1.0;
      binv.((i * m) + i) <- 1.0
    done;
    let singular = ref false in
    (try
       for col = 0 to m - 1 do
         let best = ref col
         and bestv = ref (Float.abs fact.((col * m) + col)) in
         for r = col + 1 to m - 1 do
           let v = Float.abs fact.((r * m) + col) in
           if v > !bestv then begin
             best := r;
             bestv := v
           end
         done;
         if !bestv < 1e-11 then begin
           singular := true;
           raise Exit
         end;
         if !best <> col then begin
           let oa = col * m and ob = !best * m in
           for q = 0 to m - 1 do
             let t = fact.(oa + q) in
             fact.(oa + q) <- fact.(ob + q);
             fact.(ob + q) <- t;
             let t = binv.(oa + q) in
             binv.(oa + q) <- binv.(ob + q);
             binv.(ob + q) <- t
           done
         end;
         let off = col * m in
         let ipiv = 1.0 /. fact.(off + col) in
         for q = 0 to m - 1 do
           fact.(off + q) <- fact.(off + q) *. ipiv;
           binv.(off + q) <- binv.(off + q) *. ipiv
         done;
         for r = 0 to m - 1 do
           if r <> col then begin
             let f = fact.((r * m) + col) in
             if f <> 0.0 then begin
               let offr = r * m in
               for q = 0 to m - 1 do
                 fact.(offr + q) <- fact.(offr + q) -. (f *. fact.(off + q));
                 binv.(offr + q) <- binv.(offr + q) -. (f *. binv.(off + q))
               done
             end
           end
         done
       done
     with Exit -> ());
    if !singular then None
    else begin
      (* xb = B^-1 (rhs - N x_N) *)
      let rw = Array.copy c.C.rhs in
      for j = 0 to nt - 1 do
        if stat.(j) <> st_basic && xval.(j) <> 0.0 then begin
          let x = xval.(j) in
          if j < n then
            for p = c.C.col_ptr.(j) to c.C.col_ptr.(j + 1) - 1 do
              let r = c.C.col_row.(p) in
              rw.(r) <- rw.(r) -. (c.C.col_val.(p) *. x)
            done
          else rw.(j - n) <- rw.(j - n) -. x
        end
      done;
      let xb = Array.make m 0.0 in
      for i = 0 to m - 1 do
        let off = i * m in
        let s = ref 0.0 in
        for k = 0 to m - 1 do
          s := !s +. (binv.(off + k) *. rw.(k))
        done;
        xb.(i) <- !s
      done;
      Some
        {
          t_c = c;
          t_binv = binv;
          t_rows = Array.copy b.b_rows;
          t_stat = stat;
          t_xval = xval;
          t_xb = xb;
        }
    end
  end

let tableau_rows t = t.t_c.C.m

let tableau_basic_var t r = t.t_rows.(r)

let tableau_basic_value t r = t.t_xb.(r)

let tableau_col_status t j =
  match t.t_stat.(j) with
  | s when s = st_basic -> Col_basic
  | s when s = st_lo -> Col_lower
  | s when s = st_up -> Col_upper
  | _ -> Col_free

let tableau_nonbasic_value t j = t.t_xval.(j)

(* Row [r] of B^-1 [A | I] over every column: entries for nonbasic
   columns, 0.0 for basic ones.  [alpha] must have length >= nt. *)
let tableau_row t r alpha =
  let c = t.t_c in
  let n = c.C.n and m = c.C.m and nt = c.C.nt in
  let off = r * m in
  for j = 0 to nt - 1 do
    if t.t_stat.(j) <> st_basic then
      alpha.(j) <-
        (if j < n then begin
           let s = ref 0.0 in
           for p = c.C.col_ptr.(j) to c.C.col_ptr.(j + 1) - 1 do
             s := !s +. (t.t_binv.(off + c.C.col_row.(p)) *. c.C.col_val.(p))
           done;
           !s
         end
         else t.t_binv.(off + (j - n)))
    else alpha.(j) <- 0.0
  done

(* ---- Model.t entry points -------------------------------------------- *)

let solve_ext ?max_iter ?eps ?backend ?refactor ?basis m =
  solve_compiled ?max_iter ?eps ?backend ?refactor ?basis
    (Compiled.of_model m)

let solve ?max_iter ?eps ?backend m =
  let st, _, _ = solve_ext ?max_iter ?eps ?backend m in
  st

let solve_from_basis ?max_iter ?eps ?backend basis m =
  let st, _, _ = solve_ext ?max_iter ?eps ?backend ~basis m in
  st
