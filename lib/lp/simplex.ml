type solution = { objective : float; values : float array }

type partial = { phase : int; iterations : int }

type status =
  | Optimal of solution
  | Infeasible
  | Unbounded
  | Iter_limit of partial

(* A basis snapshot at the model level: the variables whose structural
   columns were basic at the last optimum.  Deliberately coarse — column
   layouts differ between parent and child models (fixing a variable
   eliminates its column), so we record variables, not column indices,
   and re-derive columns on the warm solve. *)
type basis = { basic_vars : int array }

type stats = { pivots : int; phase1_pivots : int }

let no_stats = { pivots = 0; phase1_pivots = 0 }

let pp_status ppf = function
  | Optimal s -> Format.fprintf ppf "optimal(%g)" s.objective
  | Infeasible -> Format.pp_print_string ppf "infeasible"
  | Unbounded -> Format.pp_print_string ppf "unbounded"
  | Iter_limit p ->
    Format.fprintf ppf "iteration-limit(phase %d, %d pivots)" p.phase
      p.iterations

(* Structural columns.  A model variable becomes:
   - nothing, when its bounds pin it ([Fixed] handled via substitution);
   - [Shifted (i, lb)]:  x_i = lb + column,          column >= 0;
   - [Mirrored (i, ub)]: x_i = ub - column,          column >= 0
     (used when lb = -oo but ub is finite);
   - a [Pos i] / [Neg i] pair: x_i = pos - neg, both >= 0 (free vars). *)
type col_kind =
  | Shifted of int * float
  | Mirrored of int * float
  | Pos of int
  | Neg of int
  | Slack
  | Artificial

type row = { mutable coeffs : (int * float) list; mutable rhs : float;
             cmp : Model.cmp }

let solve_ext ?(max_iter = 100000) ?(eps = 1e-7) ?basis:hint (m : Model.t) =
  let n_model = Model.num_vars m in
  let fixed = Array.make n_model None in
  let cols = ref [] and n_cols = ref 0 in
  (* Column index of each model var: either one column or a (pos, neg)
     pair. *)
  let col_of_var = Array.make n_model `Absent in
  let push kind =
    let idx = !n_cols in
    cols := kind :: !cols;
    incr n_cols;
    idx
  in
  for i = 0 to n_model - 1 do
    let lb, ub = Model.bounds m i in
    if lb > ub then fixed.(i) <- Some nan (* caught below as infeasible *)
    else if Float.is_finite lb && Float.is_finite ub && ub -. lb <= 1e-12
    then fixed.(i) <- Some lb
    else if Float.is_finite lb then
      col_of_var.(i) <- `One (push (Shifted (i, lb)))
    else if Float.is_finite ub then
      col_of_var.(i) <- `One (push (Mirrored (i, ub)))
    else begin
      let p = push (Pos i) in
      let n = push (Neg i) in
      col_of_var.(i) <- `Pair (p, n)
    end
  done;
  if Array.exists (function Some v -> Float.is_nan v | None -> false) fixed
  then (Infeasible, None, no_stats)
  else begin
    let cols_arr = Array.of_list (List.rev !cols) in
    (* Translate an expression into structural-column coefficients plus a
       constant offset coming from shifts and fixed variables. *)
    let translate expr =
      let acc = Hashtbl.create 16 in
      let offset = ref (Expr.const expr) in
      let bump j c =
        let cur = try Hashtbl.find acc j with Not_found -> 0.0 in
        Hashtbl.replace acc j (cur +. c)
      in
      List.iter
        (fun (i, c) ->
          match fixed.(i) with
          | Some v -> offset := !offset +. (c *. v)
          | None -> (
            match col_of_var.(i) with
            | `Absent -> assert false
            | `One j -> (
              match cols_arr.(j) with
              | Shifted (_, lb) ->
                offset := !offset +. (c *. lb);
                bump j c
              | Mirrored (_, ub) ->
                offset := !offset +. (c *. ub);
                bump j (-.c)
              | _ -> assert false)
            | `Pair (p, n) ->
              bump p c;
              bump n (-.c)))
        (Expr.coeffs expr);
      let coeffs =
        Hashtbl.fold (fun j c l -> if c = 0.0 then l else (j, c) :: l) acc []
      in
      (List.sort (fun (a, _) (b, _) -> compare a b) coeffs, !offset)
    in
    (* Upper bounds already implied by a nonnegative equality row (e.g.
       one-mode-per-edge constraints imply k <= 1) don't need their own
       row; this prunes one heavily degenerate row per binary in the DVS
       MILPs. *)
    let implied_ub = Array.make n_model infinity in
    List.iter
      (fun (c : Model.constr) ->
        if c.cmp = Model.Eq then begin
          let coeffs = Expr.coeffs c.expr in
          (* Fold fixed variables into the right-hand side. *)
          let rhs =
            List.fold_left
              (fun rhs (i, k) ->
                match fixed.(i) with
                | Some v -> rhs -. (k *. v)
                | None -> rhs)
              c.rhs coeffs
          in
          let unfixed =
            List.filter (fun (i, _) -> fixed.(i) = None) coeffs
          in
          let sound =
            rhs >= 0.0
            && List.for_all
                 (fun (i, k) -> k >= 0.0 && fst (Model.bounds m i) >= 0.0)
                 unfixed
          in
          if sound then
            List.iter
              (fun (i, k) ->
                if k > 0.0 then
                  implied_ub.(i) <- Float.min implied_ub.(i) (rhs /. k))
              unfixed
        end)
      (Model.constraints m);
    (* Rows: model constraints plus upper-bound rows for shifted columns
       with a finite, non-implied upper bound. *)
    let rows = ref [] in
    let add_row coeffs rhs cmp = rows := { coeffs; rhs; cmp } :: !rows in
    List.iter
      (fun (c : Model.constr) ->
        let coeffs, offset = translate c.expr in
        add_row coeffs (c.rhs -. offset) c.cmp)
      (Model.constraints m);
    Array.iteri
      (fun i kind ->
        match kind with
        | Shifted (v, lb) ->
          let _, ub = Model.bounds m v in
          if Float.is_finite ub && not (implied_ub.(v) <= ub) then
            add_row [ (i, 1.0) ] (ub -. lb) Model.Le
        | Mirrored _ | Pos _ | Neg _ | Slack | Artificial -> ())
      cols_arr;
    let rows = Array.of_list (List.rev !rows) in
    let n_rows = Array.length rows in
    (* Row equilibration and rhs sign normalization. *)
    Array.iter
      (fun r ->
        let mx =
          List.fold_left (fun a (_, c) -> Float.max a (Float.abs c)) 0.0
            r.coeffs
        in
        if mx > 0.0 then begin
          r.coeffs <- List.map (fun (j, c) -> (j, c /. mx)) r.coeffs;
          r.rhs <- r.rhs /. mx
        end)
      rows;
    let flip cmp =
      match cmp with Model.Le -> Model.Ge | Model.Ge -> Model.Le | Eq -> Model.Eq
    in
    let rows =
      Array.map
        (fun r ->
          if r.rhs < 0.0 then
            { coeffs = List.map (fun (j, c) -> (j, -.c)) r.coeffs;
              rhs = -.r.rhs; cmp = flip r.cmp }
          else r)
        rows
    in
    (* Assign slack/surplus/artificial columns. *)
    let extra = ref [] in
    let n_struct = Array.length cols_arr in
    let next = ref n_struct in
    let basis = Array.make n_rows (-1) in
    let slack_of_row = Array.make n_rows None in
    let art_of_row = Array.make n_rows None in
    Array.iteri
      (fun i r ->
        match r.cmp with
        | Model.Le ->
          extra := Slack :: !extra;
          slack_of_row.(i) <- Some (!next, 1.0);
          basis.(i) <- !next;
          incr next
        | Model.Ge ->
          extra := Slack :: !extra;
          slack_of_row.(i) <- Some (!next, -1.0);
          incr next;
          extra := Artificial :: !extra;
          art_of_row.(i) <- Some !next;
          basis.(i) <- !next;
          incr next
        | Model.Eq ->
          extra := Artificial :: !extra;
          art_of_row.(i) <- Some !next;
          basis.(i) <- !next;
          incr next)
      rows;
    let all_cols = Array.append cols_arr (Array.of_list (List.rev !extra)) in
    let n_total = Array.length all_cols in
    (* Columns preferred by the warm-start hint: the structural columns of
       the variables basic in the parent solve.  Pricing enters these
       first, which re-pivots toward the parent basis instead of
       rediscovering it from the all-slack start. *)
    let preferred = Array.make (Int.max 1 n_total) false in
    let have_hint = ref false in
    (match hint with
    | None -> ()
    | Some h ->
      Array.iter
        (fun v ->
          if v >= 0 && v < n_model then
            match col_of_var.(v) with
            | `Absent -> ()
            | `One j ->
              preferred.(j) <- true;
              have_hint := true
            | `Pair (p, n) ->
              preferred.(p) <- true;
              preferred.(n) <- true;
              have_hint := true)
        h.basic_vars);
    (* Dense tableau. *)
    let tab = Array.make_matrix n_rows (n_total + 1) 0.0 in
    Array.iteri
      (fun i r ->
        List.iter (fun (j, c) -> tab.(i).(j) <- c) r.coeffs;
        (match slack_of_row.(i) with
        | Some (j, s) -> tab.(i).(j) <- s
        | None -> ());
        (match art_of_row.(i) with
        | Some j -> tab.(i).(j) <- 1.0
        | None -> ());
        tab.(i).(n_total) <- r.rhs)
      rows;
    let is_artificial j =
      j < n_total && (match all_cols.(j) with Artificial -> true | _ -> false)
    in
    (* Reduced costs for cost vector [c]. *)
    let reduced_costs c =
      let r = Array.copy c in
      let z = ref 0.0 in
      for i = 0 to n_rows - 1 do
        let cb = c.(basis.(i)) in
        if cb <> 0.0 then begin
          z := !z +. (cb *. tab.(i).(n_total));
          for j = 0 to n_total - 1 do
            r.(j) <- r.(j) -. (cb *. tab.(i).(j))
          done
        end
      done;
      (r, !z)
    in
    let pivot ~row ~col =
      let p = tab.(row).(col) in
      let trow = tab.(row) in
      for j = 0 to n_total do
        trow.(j) <- trow.(j) /. p
      done;
      for i = 0 to n_rows - 1 do
        if i <> row then begin
          let f = tab.(i).(col) in
          if f <> 0.0 then begin
            let ti = tab.(i) in
            for j = 0 to n_total do
              ti.(j) <- ti.(j) -. (f *. trow.(j))
            done;
            ti.(col) <- 0.0
          end
        end
      done;
      trow.(col) <- 1.0;
      basis.(row) <- col
    in
    let total_pivots = ref 0 and phase1_pivots = ref 0 in
    let stats () = { pivots = !total_pivots; phase1_pivots = !phase1_pivots } in
    (* One simplex phase on cost vector [c]; [allow j] filters entering
       candidates.  Returns [`Optimal], [`Unbounded] or [`Iter_limit]. *)
    let run_phase ~phase c ~allow =
      let iter = ref 0 in
      let result = ref `Running in
      (* Dantzig pricing while the objective makes progress; switch to
         Bland's rule permanently once it stalls (degeneracy), which
         guarantees termination. *)
      let bland = ref false in
      let best_z = ref infinity and stall = ref 0 in
      while !result = `Running do
        if !iter > max_iter then result := `Iter_limit
        else begin
          let redcost, z = reduced_costs c in
          if z < !best_z -. (1e-9 *. Float.max 1.0 (Float.abs !best_z))
          then begin
            best_z := z;
            stall := 0
          end
          else begin
            incr stall;
            if !stall > 200 then bland := true
          end;
          (* Entering column. *)
          let entering = ref (-1) in
          if not !bland then begin
            (* Warm start: enter the best improving hinted column when one
               exists; otherwise full Dantzig pricing. *)
            if !have_hint then begin
              let best = ref (-.eps) in
              for j = 0 to n_total - 1 do
                if preferred.(j) && allow j && redcost.(j) < !best then begin
                  best := redcost.(j);
                  entering := j
                end
              done
            end;
            if !entering < 0 then begin
              let best = ref (-.eps) in
              for j = 0 to n_total - 1 do
                if allow j && redcost.(j) < !best then begin
                  best := redcost.(j);
                  entering := j
                end
              done
            end
          end
          else begin
            (* Bland: first improving column. *)
            let j = ref 0 in
            while !entering < 0 && !j < n_total do
              if allow !j && redcost.(!j) < -.eps then entering := !j;
              incr j
            done
          end;
          if !entering < 0 then result := `Optimal
          else begin
            let e = !entering in
            (* Ratio test; ties broken by smallest basis column (Bland). *)
            let leave = ref (-1) and best_ratio = ref infinity in
            for i = 0 to n_rows - 1 do
              let a = tab.(i).(e) in
              if a > 1e-9 then begin
                let ratio = tab.(i).(n_total) /. a in
                if
                  ratio < !best_ratio -. 1e-12
                  || (ratio < !best_ratio +. 1e-12
                      && !leave >= 0
                      && basis.(i) < basis.(!leave))
                then begin
                  best_ratio := ratio;
                  leave := i
                end
              end
            done;
            if !leave < 0 then result := `Unbounded
            else begin
              pivot ~row:!leave ~col:e;
              incr iter;
              incr total_pivots;
              if phase = 1 then incr phase1_pivots
            end
          end
        end
      done;
      !result
    in
    let extract_basis () =
      let seen = Hashtbl.create 16 in
      Array.iter
        (fun col ->
          if col >= 0 && col < n_total then
            match all_cols.(col) with
            | Shifted (v, _) | Mirrored (v, _) | Pos v | Neg v ->
              Hashtbl.replace seen v ()
            | Slack | Artificial -> ())
        basis;
      let vars = Hashtbl.fold (fun v () acc -> v :: acc) seen [] in
      { basic_vars = Array.of_list (List.sort compare vars) }
    in
    (* Phase 1: minimize the sum of artificials. *)
    let c1 = Array.make n_total 0.0 in
    for j = 0 to n_total - 1 do
      if is_artificial j then c1.(j) <- 1.0
    done;
    let phase1_needed = Array.exists (fun k -> k = Artificial) all_cols in
    let phase1 =
      if not phase1_needed then `Feasible
      else begin
        match run_phase ~phase:1 c1 ~allow:(fun _ -> true) with
        | `Unbounded -> assert false (* phase-1 objective is bounded below *)
        | `Iter_limit -> `Iter_limit
        | `Optimal | `Running ->
          let _, z = reduced_costs c1 in
          let scale =
            Array.fold_left
              (fun a r -> Float.max a (Float.abs r.rhs))
              1.0 rows
          in
          if Float.abs z <= eps *. 10.0 *. scale then `Feasible
          else `Infeasible
      end
    in
    match phase1 with
    | `Iter_limit ->
      (Iter_limit { phase = 1; iterations = !total_pivots }, None, stats ())
    | `Infeasible -> (Infeasible, None, stats ())
    | `Feasible -> begin
      (* Drive basic artificials (at value 0) out where possible. *)
      for i = 0 to n_rows - 1 do
        if is_artificial basis.(i) then begin
          let j = ref 0 and found = ref false in
          while (not !found) && !j < n_total do
            if (not (is_artificial !j)) && Float.abs tab.(i).(!j) > 1e-7
            then begin
              pivot ~row:i ~col:!j;
              found := true
            end;
            incr j
          done
        end
      done;
      (* Phase 2. *)
      let sense, obj = Model.objective m in
      let obj_sign = match sense with Model.Minimize -> 1.0 | Maximize -> -1.0 in
      let c2 = Array.make n_total 0.0 in
      let obj_coeffs, _obj_offset = translate obj in
      List.iter (fun (j, c) -> c2.(j) <- obj_sign *. c) obj_coeffs;
      match run_phase ~phase:2 c2 ~allow:(fun j -> not (is_artificial j)) with
      | `Unbounded -> (Unbounded, None, stats ())
      | `Iter_limit ->
        (Iter_limit { phase = 2; iterations = !total_pivots }, None, stats ())
      | `Running -> assert false
      | `Optimal ->
        (* Recover structural values. *)
        let col_val = Array.make n_total 0.0 in
        for i = 0 to n_rows - 1 do
          col_val.(basis.(i)) <- tab.(i).(n_total)
        done;
        let values = Array.make n_model 0.0 in
        for i = 0 to n_model - 1 do
          values.(i) <-
            (match fixed.(i) with
            | Some v -> v
            | None -> (
              match col_of_var.(i) with
              | `Absent -> 0.0
              | `One j -> (
                match all_cols.(j) with
                | Shifted (_, lb) -> lb +. col_val.(j)
                | Mirrored (_, ub) -> ub -. col_val.(j)
                | _ -> assert false)
              | `Pair (p, n) -> col_val.(p) -. col_val.(n)))
        done;
        let objective = Expr.eval (fun i -> values.(i)) obj in
        (Optimal { objective; values }, Some (extract_basis ()), stats ())
    end
  end

let solve ?max_iter ?eps m =
  let st, _, _ = solve_ext ?max_iter ?eps m in
  st

let solve_from_basis ?max_iter ?eps basis m =
  let st, _, _ = solve_ext ?max_iter ?eps ~basis m in
  st
