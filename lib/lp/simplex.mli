(** Sparse revised simplex over a {!Compiled} model.

    The kernel is a bounded-variable revised simplex: every model
    variable keeps its own [lb, ub] range (branch-and-bound branch
    decisions are bound changes, which here cost a bound flip or a dual
    reoptimization, never a new row), the basis representation is
    maintained incrementally and refactorized by policy
    ({!refactor_policy}), and all per-iteration state lives in a
    caller-reusable {!workspace} so the pivot loop allocates nothing
    beyond eta-file growth.

    Two interchangeable basis backends ({!basis_kind}) carry the solve:
    the default {!Lu} keeps a sparse LU factorization of the basis
    (Markowitz pivot ordering with threshold partial pivoting, see
    {!Lu.factor}) plus a product-form eta file — one eta per pivot —
    with FTRAN/BTRAN as hypersparse scatter-form triangular solves;
    {!Dense} keeps the historical explicit dense inverse and survives
    as the correctness oracle and ablation leg.  Both backends share
    every pricing/ratio/phase decision and finish on the same dense
    factorization, so identical pivot sequences yield bit-identical
    solutions.

    Pricing is selectable ({!pricing}): devex-style steepest edge by
    default, Dantzig, or Bland; the first two fall back to Bland's rule
    automatically after a stretch of stalled (degenerate) iterations, so
    cycling cannot happen silently.

    Integrality markers on variables are ignored — this solves the
    relaxation; {!Dvs_milp} adds branch and bound on top.

    Termination trouble is a value, not an exception: hitting the pivot
    budget returns {!Iter_limit} instead of raising [Failure], so callers
    (notably {!Dvs_milp.Solver}) can surface it as a typed outcome.

    Re-solves of nearby models (branch-and-bound children differing from
    the parent by variable bounds only) warm start from the parent's
    {!basis} via {!solve_compiled}, {!solve_ext} or {!solve_from_basis}:
    the parent's optimal basis stays dual feasible under bound changes,
    so the warm solve is a dual-simplex reoptimization that typically
    needs a handful of pivots instead of a primal restart.  If the hint
    is unusable (dimension mismatch, singular basis, loss of dual
    feasibility), the kernel falls back to a cold solve — the hint can
    never affect correctness.

    Sized for the paper's instances (hundreds of rows/columns), not for
    industrial LPs. *)

type solution = {
  objective : float;
  values : float array;  (** indexed by {!Model.var} *)
}

type partial = {
  phase : int;  (** simplex phase that hit the budget (1 or 2) *)
  iterations : int;  (** pivots performed before stopping *)
}

type status =
  | Optimal of solution
  | Infeasible
  | Unbounded
  | Iter_limit of partial
      (** the per-phase pivot budget ran out before optimality was
          proven; no solution is available *)

type basis
(** Opaque snapshot of a simplex basis: the status (basic / at lower /
    at upper / free) of every column plus the basic column of every
    row.  Column layout is stable under bound changes (fixed variables
    keep their column), so a parent's basis applies verbatim to any
    child of the same compiled model — and to any model compiling to
    the same shape. *)

type pricing =
  | Bland  (** least-index; slow but cycle-proof *)
  | Dantzig  (** most-negative reduced cost *)
  | Steepest_edge  (** devex reference-weight approximation (default) *)

type basis_kind =
  | Lu
      (** sparse LU factorization + product-form eta file (default) *)
  | Dense  (** explicit dense inverse; correctness oracle / ablation *)

type refactor_policy =
  | Pivots of int
      (** refactorize after this many pivots (the historical behavior;
          the dense default is [Pivots 128]) *)
  | Eta_fill of { max_pivots : int; growth : float }
      (** refactorize when the eta file holds more than
          [growth * (factor nnz + m)] entries, or after [max_pivots]
          pivots, whichever comes first.  The LU default is
          [Eta_fill { max_pivots = 256; growth = 2.0 }]; on the dense
          backend (which has no eta file) only [max_pivots] applies. *)

val default_refactor : basis_kind -> refactor_policy
(** The refactorization policy each backend uses when none is given. *)

type stats = {
  pivots : int;  (** total basis changes (primal + dual) *)
  phase1_pivots : int;  (** pivots spent reaching feasibility *)
  dual_pivots : int;  (** pivots spent in dual reoptimization *)
  bound_flips : int;  (** ratio tests resolved without a basis change *)
  refactorizations : int;  (** basis rebuilds, either backend *)
  bland_pivots : int;  (** pivots taken under the Bland fallback *)
  flops : int;
      (** floating-point work actually performed (2 per entry touched
          on either backend — no dense m^2/m^3 formulas), comparable
          across backends *)
  lu_refactorizations : int;  (** sparse LU factorizations built *)
  lu_fill_in_nnz : int;
      (** total factor entries beyond the basis nnz, summed over LU
          refactorizations *)
  lu_eta_nnz : int;  (** total eta-file entries appended *)
  ftran_sparse_hits : int;
      (** FTRAN solve steps skipped because the running component was
          exactly zero (hypersparsity wins; LU backend only) *)
  btran_sparse_hits : int;  (** same, for BTRAN *)
}

type workspace
(** Reusable scratch buffers (basis inverse, pricing vectors, column
    states).  One per worker thread; grown on demand, never shrunk.
    Not thread-safe — do not share a workspace across domains. *)

val workspace : unit -> workspace

val solve :
  ?max_iter:int -> ?eps:float -> ?backend:basis_kind -> Model.t -> status
(** [eps] is the master tolerance (default [1e-7]): reduced-cost threshold
    and (scaled) feasibility threshold.  [max_iter] bounds pivots per phase
    (default 100000); Bland's rule engages after 200 stalled iterations,
    so running out of budget yields {!Iter_limit} rather than silently
    looping. *)

val solve_ext :
  ?max_iter:int ->
  ?eps:float ->
  ?backend:basis_kind ->
  ?refactor:refactor_policy ->
  ?basis:basis ->
  Model.t ->
  status * basis option * stats
(** Like {!solve}, additionally returning the optimal basis (when the
    status is [Optimal]) and pivot statistics.  [basis] warm starts the
    search from a previous solve's basis: correctness is unaffected (an
    unusable hint falls back to a cold solve), but related re-solves
    converge in far fewer pivots.  Compiles the model first; callers
    solving many related instances should compile once and use
    {!solve_compiled}. *)

val solve_compiled :
  ?pricing:pricing ->
  ?max_iter:int ->
  ?eps:float ->
  ?backend:basis_kind ->
  ?refactor:refactor_policy ->
  ?basis:basis ->
  ?ws:workspace ->
  Compiled.t ->
  status * basis option * stats
(** The core entry point: solve a compiled model under its {e current}
    bounds.  The compiled structure is read-only; only
    [Compiled.set_bounds] state distinguishes calls.  With [basis], the
    solve is a dual-simplex reoptimization from that basis.  With [ws],
    all scratch state is reused across calls (the intended mode for
    branch and bound: one workspace per worker).  [backend] selects the
    basis representation (default {!Lu}) and [refactor] overrides that
    backend's {!default_refactor} policy; neither affects which vertex
    is found, only how the linear algebra behind it is carried. *)

val solve_from_basis :
  ?max_iter:int ->
  ?eps:float ->
  ?backend:basis_kind ->
  basis ->
  Model.t ->
  status
(** [solve_from_basis b m] is [solve m] warm started from basis [b]
    (typically obtained from {!solve_ext} on a closely related model). *)

val extend_basis : basis -> rows:int -> basis
(** [extend_basis b ~rows] adapts a basis to a model that gained [rows]
    appended constraint rows (and nothing else): each new row's slack
    starts basic.  Appended rows leave every existing column index
    unchanged, so the result warm starts the grown model directly — when
    the new rows are violated cutting planes, the warm solve is exactly
    a dual-simplex reoptimization that prices the cuts in. *)

(** {2 Tableau extraction}

    Read-only access to the simplex tableau of a given basis against a
    compiled model's current bounds and rhs — what Gomory cut separation
    needs.  Built once per separation round via a fresh dense
    factorization; not a solving path. *)

type tableau

type col_status = Col_basic | Col_lower | Col_upper | Col_free

val tableau : Compiled.t -> basis -> tableau option
(** [None] if the basis does not fit the compiled model (dimension
    mismatch), still contains artificial columns, or is numerically
    singular. *)

val tableau_rows : tableau -> int
(** Number of rows [m]; rows are indexed [0 .. m-1] below. *)

val tableau_basic_var : tableau -> int -> int
(** Column basic in row [r]: structural in [0, n), slack in [n, n+m). *)

val tableau_basic_value : tableau -> int -> float
(** Current value of row [r]'s basic column. *)

val tableau_col_status : tableau -> int -> col_status

val tableau_nonbasic_value : tableau -> int -> float
(** Value a nonbasic column is pinned at (its active bound, 0 if free). *)

val tableau_row : tableau -> int -> float array -> unit
(** [tableau_row t r alpha] fills [alpha] (length >= [n + m]) with row
    [r] of [B^-1 [A | I]]: the tableau coefficient of every nonbasic
    column, 0.0 at basic columns. *)

val pp_status : Format.formatter -> status -> unit
