(** Dense two-phase primal simplex.

    Handles general bounds (finite lower bounds are shifted away, finite
    upper bounds become rows, free variables are split), row equilibration
    for numeric robustness, Dantzig pricing with a Bland's-rule fallback
    for anti-cycling.  Integrality markers on variables are ignored — this
    solves the relaxation; {!Dvs_milp} adds branch and bound on top.

    Termination trouble is a value, not an exception: hitting the pivot
    budget returns {!Iter_limit} instead of raising [Failure], so callers
    (notably {!Dvs_milp.Solver}) can surface it as a typed outcome.

    Re-solves of nearby models (branch-and-bound children differing from
    the parent by one variable's bounds) can warm start from the parent's
    {!basis} via {!solve_ext} or {!solve_from_basis}: pricing then pivots
    the parent's basic columns in first instead of rediscovering the basis
    from the all-slack start, which cuts phase-1 work sharply on the DVS
    instances.

    Sized for the paper's instances (hundreds of rows/columns), not for
    industrial LPs. *)

type solution = {
  objective : float;
  values : float array;  (** indexed by {!Model.var} *)
}

type partial = {
  phase : int;  (** simplex phase that hit the budget (1 or 2) *)
  iterations : int;  (** pivots performed before stopping *)
}

type status =
  | Optimal of solution
  | Infeasible
  | Unbounded
  | Iter_limit of partial
      (** the per-phase pivot budget ran out before optimality was
          proven; no solution is available *)

type basis
(** Opaque snapshot of the optimal basis, expressed at the model level
    (which variables were basic), so it remains meaningful for child
    models whose column layout differs (e.g. after fixing a variable). *)

type stats = {
  pivots : int;  (** total pivots across both phases *)
  phase1_pivots : int;  (** pivots spent reaching feasibility *)
}

val solve : ?max_iter:int -> ?eps:float -> Model.t -> status
(** [eps] is the master tolerance (default [1e-7]): reduced-cost threshold
    and (scaled) feasibility threshold.  [max_iter] bounds pivots per phase
    (default 100000); Bland's rule engages after 200 stalled iterations,
    so running out of budget yields {!Iter_limit} rather than silently
    looping. *)

val solve_ext :
  ?max_iter:int -> ?eps:float -> ?basis:basis -> Model.t ->
  status * basis option * stats
(** Like {!solve}, additionally returning the optimal basis (when the
    status is [Optimal]) and pivot statistics.  [basis] warm starts the
    search from a previous solve's basis: correctness is unaffected (the
    hint only reorders pricing), but related re-solves converge in far
    fewer pivots. *)

val solve_from_basis : ?max_iter:int -> ?eps:float -> basis -> Model.t -> status
(** [solve_from_basis b m] is [solve m] warm started from basis [b]
    (typically obtained from {!solve_ext} on a closely related model). *)

val pp_status : Format.formatter -> status -> unit
