(* MiniC functions and the inlining pass. *)

open Dvs_lang
open Dvs_ir

let run_scalar src name =
  let cfg, layout = Lower.compile_string src in
  let mem = Array.make (Int.max 1 layout.Lower.memory_words) 0 in
  let r = Interp.run cfg ~memory:mem in
  r.Interp.registers.(List.assoc name layout.Lower.scalars)

let test_simple_function () =
  let src = "int r;\nint sq(int x) { return x * x; }\nr = sq(7);" in
  Alcotest.(check int) "sq(7)" 49 (run_scalar src "r")

let test_multi_arg_and_globals () =
  let src =
    "int g; int r;\n\
     g = 10;\n\
     int addg(int a, int b) { return a + b + g; }\n\
     r = addg(1, 2);"
  in
  Alcotest.(check int) "uses globals" 13 (run_scalar src "r")

let test_function_modifies_global () =
  let src =
    "int count; int r;\n\
     int bump(int by) { count = count + by; return count; }\n\
     r = bump(5) + bump(3);"
  in
  (* Left-to-right evaluation: 5 then 8 -> 13; count ends at 8. *)
  Alcotest.(check int) "sum of results" 13 (run_scalar src "r");
  Alcotest.(check int) "global state" 8 (run_scalar src "count")

let test_nested_calls () =
  let src =
    "int r;\n\
     int double(int x) { return x * 2; }\n\
     int quad(int x) { return double(double(x)); }\n\
     r = quad(3);"
  in
  Alcotest.(check int) "quad" 12 (run_scalar src "r")

let test_call_in_loop_condition () =
  let src =
    "int r; int i;\n\
     int below(int x, int lim) { return x < lim; }\n\
     i = 0; r = 0;\n\
     while (below(i, 5)) { r = r + i; i = i + 1; }"
  in
  Alcotest.(check int) "loop via call" 10 (run_scalar src "r")

let test_call_in_for_parts () =
  let src =
    "int r; int i;\n\
     int next(int x) { return x + 2; }\n\
     r = 0;\n\
     for (i = 0; i < 10; i = next(i)) { r = r + 1; }"
  in
  Alcotest.(check int) "for with call step" 5 (run_scalar src "r")

let test_call_with_array_args () =
  let src =
    "int a[4]; int r;\n\
     int pick(int i) { return a[i % 4] * 10; }\n\
     a[2] = 7;\n\
     r = pick(6);"
  in
  Alcotest.(check int) "array in callee" 70 (run_scalar src "r")

let test_function_in_branches () =
  let src =
    "int r; int x;\n\
     int abs(int v) { if (v < 0) { v = 0 - v; } return v; }\n\
     x = 0 - 42;\n\
     if (abs(x) > 40) { r = 1; } else { r = 2; }"
  in
  Alcotest.(check int) "call in condition" 1 (run_scalar src "r")

let expect_type_error src =
  match Lower.compile_string src with
  | exception Typecheck.Error _ -> ()
  | _ -> Alcotest.failf "expected a type error for: %s" src

let test_function_errors () =
  (* Unknown function. *)
  expect_type_error "int r; r = f(1);";
  (* Recursion (self-call before definition completes). *)
  expect_type_error "int r;\nint f(int x) { return f(x - 1); }\nr = f(3);";
  (* Forward call. *)
  expect_type_error
    "int r;\nint g(int x) { return h(x); }\nint h(int x) { return x; }\nr = g(1);";
  (* Arity mismatch. *)
  expect_type_error "int r;\nint f(int x) { return x; }\nr = f(1, 2);";
  (* Missing return. *)
  expect_type_error "int r;\nint f(int x) { x = x + 1; }\nr = f(1);";
  (* Return not last. *)
  expect_type_error
    "int r;\nint f(int x) { return x; x = 2; }\nr = f(1);";
  (* Return at top level. *)
  expect_type_error "int r; return 3;";
  (* Parameter shadowing a global. *)
  expect_type_error "int g; int r;\nint f(int g) { return g; }\nr = f(1);"

let test_inline_expand_structure () =
  let src = "int r;\nint sq(int x) { return x * x; }\nr = sq(4) + sq(5);" in
  let p = Parser.parse src in
  let _ = Typecheck.check p in
  let expanded = Inline.expand p in
  Alcotest.(check int) "no functions left" 0 (List.length expanded.Ast.funcs);
  (* Two call sites -> fresh temps were declared. *)
  Alcotest.(check bool) "fresh decls added" true
    (List.length expanded.Ast.decls > List.length p.Ast.decls);
  let rec no_calls (e : Ast.expr) =
    match e with
    | Ast.Call _ -> false
    | Ast.Int _ | Ast.Var _ -> true
    | Ast.Index (_, i) -> no_calls i
    | Ast.Binop (_, a, b) -> no_calls a && no_calls b
    | Ast.Unop (_, a) -> no_calls a
  in
  let rec stmt_ok (s : Ast.stmt) =
    match s with
    | Ast.Assign (_, i, e) ->
      (match i with Some i -> no_calls i | None -> true) && no_calls e
    | Ast.If (c, t, e) ->
      no_calls c && List.for_all stmt_ok t && List.for_all stmt_ok e
    | Ast.While (c, b) -> no_calls c && List.for_all stmt_ok b
    | Ast.For (i, c, st, b) ->
      (match i with Some s -> stmt_ok s | None -> true)
      && (match c with Some c -> no_calls c | None -> true)
      && (match st with Some s -> stmt_ok s | None -> true)
      && List.for_all stmt_ok b
    | Ast.Return e -> no_calls e
  in
  Alcotest.(check bool) "no calls left" true
    (List.for_all stmt_ok expanded.Ast.body)

(* Functions against a hand-inlined equivalent on random arguments. *)
let qcheck_inlining_equivalence =
  QCheck.Test.make ~name:"inlined functions match manual expansion"
    ~count:100
    QCheck.(pair (int_range (-50) 50) (int_range 1 20))
    (fun (a, b) ->
      let with_fn =
        Printf.sprintf
          "int r;\n\
           int clamp(int v, int lim) {\n\
           \  if (v > lim) { v = lim; }\n\
           \  if (v < 0 - lim) { v = 0 - lim; }\n\
           \  return v;\n\
           }\n\
           r = clamp(%d, %d) * 3 + clamp(%d * 2, %d);"
          a b a b
      in
      let manual =
        let clamp v lim = max (-lim) (min lim v) in
        (clamp a b * 3) + clamp (a * 2) b
      in
      run_scalar with_fn "r" = manual)

let suite =
  [ Alcotest.test_case "simple function" `Quick test_simple_function;
    Alcotest.test_case "args and globals" `Quick test_multi_arg_and_globals;
    Alcotest.test_case "function modifies global" `Quick
      test_function_modifies_global;
    Alcotest.test_case "nested calls" `Quick test_nested_calls;
    Alcotest.test_case "call in loop condition" `Quick
      test_call_in_loop_condition;
    Alcotest.test_case "call in for parts" `Quick test_call_in_for_parts;
    Alcotest.test_case "array access in callee" `Quick
      test_call_with_array_args;
    Alcotest.test_case "call inside branch condition" `Quick
      test_function_in_branches;
    Alcotest.test_case "function type errors" `Quick test_function_errors;
    Alcotest.test_case "inline expansion structure" `Quick
      test_inline_expand_structure;
    QCheck_alcotest.to_alcotest qcheck_inlining_equivalence ]
