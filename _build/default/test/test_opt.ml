(* Liveness and the optional IR optimizer: semantics must be preserved
   exactly; instruction counts should drop on the naive lowering. *)

open Dvs_ir

let compile src = fst (Dvs_lang.Lower.compile_string src)

let test_liveness_straight_line () =
  let b = Cfg.Builder.create () in
  let l = Cfg.Builder.add_block b in
  Cfg.Builder.push b l (Instr.Li (0, 1));
  Cfg.Builder.push b l (Instr.Li (1, 2));
  Cfg.Builder.push b l (Instr.Binop (Instr.Add, 2, 0, 1));
  Cfg.Builder.set_term b l Cfg.Halt;
  let cfg = Cfg.Builder.finish b ~entry:l in
  (* Only r2 is observable at exit. *)
  let lv = Liveness.compute ~exit_live:[ 2 ] cfg in
  Alcotest.(check (list int)) "nothing live in" [] (Liveness.live_in lv l);
  Alcotest.(check bool) "r0 live after its def" true
    (Liveness.live_after lv l 0 0);
  Alcotest.(check bool) "r0 dead after the add" false
    (Liveness.live_after lv l 2 0);
  Alcotest.(check bool) "r2 live after its def (observable)" true
    (Liveness.live_after lv l 2 2);
  (* With the default conservative exit set, everything stays live. *)
  let lv_all = Liveness.compute cfg in
  Alcotest.(check bool) "r0 live at exit by default" true
    (Liveness.live_after lv_all l 2 0)

let test_liveness_loop_carried () =
  let cfg = compile "int s; int i; while (i < 3) { s = s + i; i = i + 1; }" in
  let lv = Liveness.compute cfg in
  (* The loop condition block must have the induction register live-in;
     find the block whose terminator is a branch. *)
  let cond_block =
    Array.to_list (Cfg.blocks cfg)
    |> List.find (fun (b : Cfg.block) ->
           match b.term with Cfg.Branch _ -> true | _ -> false)
  in
  Alcotest.(check bool) "something live into the loop" true
    (Liveness.live_in lv cond_block.label <> [])

let test_fold_constants () =
  let cfg, layout = Dvs_lang.Lower.compile_string "int r; r = 2 + 3 * 4;" in
  let rreg = List.assoc "r" layout.Dvs_lang.Lower.scalars in
  let folded = Opt.optimize ~exit_live:[ rreg ] cfg in
  Alcotest.(check bool) "fewer instructions" true
    (Opt.instruction_count folded < Opt.instruction_count cfg);
  let a = Interp.run cfg ~memory:[||] in
  let b = Interp.run folded ~memory:[||] in
  Alcotest.(check int) "same result" a.Interp.registers.(rreg)
    b.Interp.registers.(rreg)

let test_constant_branch_folds_to_jump () =
  let cfg = compile "int r; if (1 < 2) { r = 5; } else { r = 7; }" in
  let folded = Opt.constant_fold cfg in
  let branches g =
    Array.to_list (Cfg.blocks g)
    |> List.filter (fun (b : Cfg.block) ->
           match b.term with Cfg.Branch _ -> true | _ -> false)
    |> List.length
  in
  Alcotest.(check bool) "branch removed" true (branches folded < branches cfg);
  let r = Interp.run folded ~memory:[||] in
  let _, layout = Dvs_lang.Lower.compile_string "int r; if (1 < 2) { r = 5; } else { r = 7; }" in
  let reg = List.assoc "r" layout.Dvs_lang.Lower.scalars in
  Alcotest.(check int) "value" 5 r.Interp.registers.(reg)

let test_dce_keeps_stores_and_loads () =
  let cfg = compile "int a[4]; int t; a[0] = 9; t = a[0];" in
  let optimized = Opt.optimize cfg in
  let count pred =
    Array.fold_left
      (fun acc (b : Cfg.block) ->
        acc + Array.fold_left (fun a i -> if pred i then a + 1 else a) 0 b.body)
      0 (Cfg.blocks optimized)
  in
  Alcotest.(check bool) "store kept" true
    (count (function Instr.Store _ -> true | _ -> false) >= 1);
  Alcotest.(check bool) "load kept" true
    (count (function Instr.Load _ -> true | _ -> false) >= 1)

(* Random-program equivalence: optimize must never change architectural
   results. *)
let program_gen =
  QCheck.Gen.(
    let* a = int_range (-20) 20 in
    let* b = int_range 1 10 in
    let* c = int_range 0 5 in
    let* n = int_range 1 12 in
    return
      (Printf.sprintf
         "int a[16]; int s; int t; int i;\n\
          s = %d * 3 + 4;\n\
          t = s / %d;\n\
          for (i = 0; i < %d; i = i + 1) {\n\
          \  a[i %% 16] = s + i * %d;\n\
          \  if (a[i %% 16] %% 2 == 0) { t = t + a[(i + %d) %% 16]; }\n\
          \  else { t = t - 1; }\n\
          }\n\
          s = t * 2;"
         a b n b c))

let qcheck_optimize_preserves_semantics =
  QCheck.Test.make ~name:"optimizer preserves program results" ~count:120
    (QCheck.make program_gen)
    (fun src ->
      let cfg, layout = Dvs_lang.Lower.compile_string src in
      let exit_live = List.map snd layout.Dvs_lang.Lower.scalars in
      let optimized = Opt.optimize ~exit_live cfg in
      (match Cfg.validate optimized with Ok () -> () | Error m -> failwith m);
      let mem = Array.make layout.Dvs_lang.Lower.memory_words 0 in
      let a = Interp.run cfg ~memory:mem in
      let b = Interp.run optimized ~memory:mem in
      let sreg = List.assoc "s" layout.Dvs_lang.Lower.scalars in
      let treg = List.assoc "t" layout.Dvs_lang.Lower.scalars in
      a.Interp.memory = b.Interp.memory
      && a.Interp.registers.(sreg) = b.Interp.registers.(sreg)
      && a.Interp.registers.(treg) = b.Interp.registers.(treg))

let qcheck_optimize_never_grows =
  QCheck.Test.make ~name:"optimizer never grows programs" ~count:120
    (QCheck.make program_gen)
    (fun src ->
      let cfg, layout = Dvs_lang.Lower.compile_string src in
      let exit_live = List.map snd layout.Dvs_lang.Lower.scalars in
      Opt.instruction_count (Opt.optimize ~exit_live cfg)
      <= Opt.instruction_count cfg)

let test_optimizer_shrinks_workloads () =
  List.iter
    (fun name ->
      let w = Dvs_workloads.Workload.find name in
      let cfg, layout, _ =
        Dvs_workloads.Workload.load w
          ~input:(Dvs_workloads.Workload.default_input w)
      in
      let exit_live = List.map snd layout.Dvs_lang.Lower.scalars in
      let before = Opt.instruction_count cfg in
      let after = Opt.instruction_count (Opt.optimize ~exit_live cfg) in
      if not (after < before) then
        Alcotest.failf "%s: %d -> %d static instructions" name before after)
    [ "adpcm"; "gsm"; "mpg123" ]

let suite =
  [ Alcotest.test_case "liveness straight line" `Quick
      test_liveness_straight_line;
    Alcotest.test_case "liveness loop carried" `Quick
      test_liveness_loop_carried;
    Alcotest.test_case "fold constants" `Quick test_fold_constants;
    Alcotest.test_case "constant branch folds" `Quick
      test_constant_branch_folds_to_jump;
    Alcotest.test_case "dce keeps memory ops" `Quick
      test_dce_keeps_stores_and_loads;
    QCheck_alcotest.to_alcotest qcheck_optimize_preserves_semantics;
    QCheck_alcotest.to_alcotest qcheck_optimize_never_grows;
    Alcotest.test_case "optimizer shrinks workloads" `Quick
      test_optimizer_shrinks_workloads ]
