test/test_formulation.ml: Alcotest Array Cfg Dvs_core Dvs_ir Dvs_lp Dvs_machine Dvs_milp Dvs_power Dvs_profile Dvs_workloads Float Formulation Instr List Printf Schedule
