test/test_lang.ml: Alcotest Array Ast Cfg Dvs_ir Dvs_lang Format Int Interp Lexer List Lower Parser QCheck QCheck_alcotest String Token Typecheck
