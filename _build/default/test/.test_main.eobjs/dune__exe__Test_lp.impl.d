test/test_lp.ml: Alcotest Array Dvs_lp Expr Float Fun List Lp_io Model QCheck QCheck_alcotest Simplex Str
