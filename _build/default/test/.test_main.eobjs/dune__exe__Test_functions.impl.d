test/test_functions.ml: Alcotest Array Ast Dvs_ir Dvs_lang Inline Int Interp List Lower Parser Printf QCheck QCheck_alcotest Typecheck
