test/test_machine.ml: Alcotest Array Cache Cfg Config Cpu Cpu_ooo Dvs_ir Dvs_lang Dvs_machine Dvs_power Float Hierarchy Instr Interp List Mode Printf QCheck QCheck_alcotest Switch_cost
