test/test_workloads.ml: Alcotest Array Cpu Deadlines Dvs_ir Dvs_machine Dvs_profile Dvs_workloads List Printf Rng Workload
