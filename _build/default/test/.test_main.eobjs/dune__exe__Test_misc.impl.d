test/test_misc.ml: Alcotest Array Dvs_analytical Dvs_core Dvs_lang Dvs_lp Dvs_machine Dvs_milp Dvs_power Dvs_profile Dvs_report Dvs_workloads Expr List Printf QCheck QCheck_alcotest Str String
