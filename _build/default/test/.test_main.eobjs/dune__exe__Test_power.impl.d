test/test_power.ml: Alcotest Alpha_power Dvs_power Float List Mode QCheck QCheck_alcotest Switch_cost
