test/test_numeric.ml: Alcotest Array Dvs_numeric Float Gen Matrix Optimize QCheck QCheck_alcotest Vec
