test/test_milp.ml: Alcotest Array Branch_bound Dvs_lp Dvs_milp Expr Float Fun List Model QCheck QCheck_alcotest Simplex
