test/test_ooo.ml: Alcotest Array Cfg Config Cpu Cpu_ooo Dvs_ir Dvs_lang Dvs_machine Dvs_power Float Instr Interp Printf QCheck QCheck_alcotest
