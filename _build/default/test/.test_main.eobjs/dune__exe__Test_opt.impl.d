test/test_opt.ml: Alcotest Array Cfg Dvs_ir Dvs_lang Dvs_workloads Instr Interp List Liveness Opt Printf QCheck QCheck_alcotest
