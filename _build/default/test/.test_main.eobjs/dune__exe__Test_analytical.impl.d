test/test_analytical.ml: Alcotest Continuous Discrete Dvs_analytical Dvs_power Float Format List Mode Option Params QCheck QCheck_alcotest Savings
