(* The out-of-order core model: functional agreement with the reference
   interpreter, and the timing properties that distinguish it from the
   in-order core (ILP, MLP, window limits). *)

open Dvs_machine
open Dvs_ir

let config =
  Config.default
    ~l1d:{ Config.size_bytes = 256; assoc = 2; block_bytes = 16;
           latency_cycles = 1 }
    ~l2:{ Config.size_bytes = 1024; assoc = 2; block_bytes = 16;
          latency_cycles = 4 }
    ~dram_latency:1e-6 ()

(* A chain of [n] dependent adds vs [n] independent adds. *)
let dependent_chain n =
  let b = Cfg.Builder.create () in
  let l = Cfg.Builder.add_block b in
  Cfg.Builder.push b l (Instr.Li (0, 1));
  for _ = 1 to n do
    Cfg.Builder.push b l (Instr.Binop (Instr.Add, 0, 0, 0))
  done;
  Cfg.Builder.set_term b l Cfg.Halt;
  Cfg.Builder.finish b ~entry:l

let independent_ops n =
  let b = Cfg.Builder.create () in
  let l = Cfg.Builder.add_block b in
  Cfg.Builder.push b l (Instr.Li (0, 1));
  for i = 1 to n do
    Cfg.Builder.push b l (Instr.Binop (Instr.Add, i, 0, 0))
  done;
  Cfg.Builder.set_term b l Cfg.Halt;
  Cfg.Builder.finish b ~entry:l

let test_ilp_speedup () =
  let n = 400 in
  let dep = Cpu_ooo.run config (dependent_chain n) ~memory:[||] in
  let ind = Cpu_ooo.run config (independent_ops n) ~memory:[||] in
  (* Independent ops issue 4 per cycle; the dependent chain serializes. *)
  Alcotest.(check bool) "ILP speedup" true
    (ind.Cpu.time < dep.Cpu.time /. 2.5);
  (* And the in-order core can't tell them apart. *)
  let dep_io = Cpu.run config (dependent_chain n) ~memory:[||] in
  let ind_io = Cpu.run config (independent_ops n) ~memory:[||] in
  Alcotest.(check bool) "in-order is issue-limited" true
    (Float.abs (dep_io.Cpu.time -. ind_io.Cpu.time)
    < 0.01 *. dep_io.Cpu.time)

let test_dependent_chain_not_faster_than_inorder_cycles () =
  (* A fully serial chain runs at one op per latency on both cores. *)
  let n = 100 in
  let ooo = Cpu_ooo.run config (dependent_chain n) ~memory:[||] in
  let io = Cpu.run config (dependent_chain n) ~memory:[||] in
  Alcotest.(check bool) "chain not magically fast" true
    (ooo.Cpu.time >= (io.Cpu.time *. 0.9))

(* Memory-level parallelism: k independent miss loads overlap in the OoO
   core but serialize... in our in-order model they also overlap until a
   use; the distinguishing case is misses with *dependent uses between
   them*. *)
let mlp_with_uses k =
  let b = Cfg.Builder.create () in
  let l = Cfg.Builder.add_block b in
  Cfg.Builder.push b l (Instr.Li (0, 0));
  for i = 1 to k do
    (* Each load goes to a distinct 16-byte block (stride 4 words). *)
    Cfg.Builder.push b l (Instr.Li (1, (i - 1) * 4));
    Cfg.Builder.push b l (Instr.Load (i + 1, 1, 0));
    (* Dependent use right after each load. *)
    Cfg.Builder.push b l (Instr.Binop (Instr.Add, 0, 0, i + 1))
  done;
  Cfg.Builder.set_term b l Cfg.Halt;
  Cfg.Builder.finish b ~entry:l

let test_mlp () =
  let k = 8 in
  let mem = Array.make 64 5 in
  let ooo = Cpu_ooo.run config (mlp_with_uses k) ~memory:mem in
  let io = Cpu.run config (mlp_with_uses k) ~memory:mem in
  (* In-order: each use stalls the next load -> ~k serialized misses.
     OoO: the loads all issue early -> ~1 miss latency total. *)
  Alcotest.(check bool) "ooo overlaps misses" true
    (ooo.Cpu.time < 0.45 *. io.Cpu.time);
  Alcotest.(check int) "same result" io.Cpu.registers.(0)
    ooo.Cpu.registers.(0)

let test_window_limits_mlp () =
  let k = 8 in
  let mem = Array.make 64 5 in
  let wide = Cpu_ooo.run ~window:64 config (mlp_with_uses k) ~memory:mem in
  let narrow = Cpu_ooo.run ~window:2 config (mlp_with_uses k) ~memory:mem in
  Alcotest.(check bool) "narrow window serializes" true
    (narrow.Cpu.time > 2.0 *. wide.Cpu.time);
  Alcotest.(check bool) "window stall recorded" true
    (narrow.Cpu.stall_time > 0.0)

let test_issue_width_matters () =
  let n = 400 in
  let w4 = Cpu_ooo.run ~issue_width:4 config (independent_ops n) ~memory:[||] in
  let w1 = Cpu_ooo.run ~issue_width:1 config (independent_ops n) ~memory:[||] in
  Alcotest.(check bool) "4-wide faster" true (w1.Cpu.time > 3.0 *. w4.Cpu.time)

let test_modeset_drains_and_charges () =
  let b = Cfg.Builder.create () in
  let l = Cfg.Builder.add_block b in
  Cfg.Builder.push b l (Instr.Li (0, 1));
  Cfg.Builder.push b l (Instr.Modeset 0);
  Cfg.Builder.push b l (Instr.Li (1, 2));
  Cfg.Builder.set_term b l Cfg.Halt;
  let g = Cfg.Builder.finish b ~entry:l in
  let r = Cpu_ooo.run config g ~memory:[||] in
  Alcotest.(check int) "one transition" 1 r.Cpu.mode_transitions;
  let expected_st = Dvs_power.Switch_cost.time config.Config.regulator 1.65 0.7 in
  Alcotest.(check bool) "time includes transition" true
    (r.Cpu.time >= expected_st)

let qcheck_ooo_matches_interp =
  QCheck.Test.make ~name:"ooo core matches reference interpreter" ~count:40
    QCheck.(pair (int_range 1 15) (int_range 0 10000))
    (fun (n, seed) ->
      let src =
        Printf.sprintf
          "int a[64]; int s; int i;\n\
           s = %d;\n\
           for (i = 0; i < %d; i = i + 1) {\n\
           \  a[(i * 5) %% 64] = s + i;\n\
           \  s = s + a[(i * 11) %% 64] %% 7;\n\
           \  if (s %% 3 == 0) { s = s + 2; }\n\
           }"
          (seed mod 89) n
      in
      let g, layout = Dvs_lang.Lower.compile_string src in
      let mem = Array.make layout.Dvs_lang.Lower.memory_words 0 in
      let ref_r = Interp.run g ~memory:mem in
      let ooo_r = Cpu_ooo.run config g ~memory:mem in
      ref_r.Interp.memory = ooo_r.Cpu.memory
      && ref_r.Interp.registers = ooo_r.Cpu.registers
      && ref_r.Interp.dyn_instrs = ooo_r.Cpu.dyn_instrs)

let qcheck_ooo_never_slower_than_inorder =
  (* With the same machine parameters, the dataflow-limited model is an
     optimistic bound: it should not be slower than the in-order core
     (up to a small epsilon for accounting differences). *)
  QCheck.Test.make ~name:"ooo is not slower than in-order" ~count:30
    QCheck.(pair (int_range 1 20) (int_range 0 10000))
    (fun (n, seed) ->
      let src =
        Printf.sprintf
          "int a[128]; int s; int i;\n\
           for (i = 0; i < %d; i = i + 1) {\n\
           \  s = s + a[(i * %d) %% 128];\n\
           \  a[(i * 7) %% 128] = s;\n\
           }"
          (5 * n)
          (1 + (seed mod 13))
      in
      let g, layout = Dvs_lang.Lower.compile_string src in
      let mem = Array.make layout.Dvs_lang.Lower.memory_words 1 in
      let ooo = Cpu_ooo.run config g ~memory:mem in
      let io = Cpu.run config g ~memory:mem in
      ooo.Cpu.time <= io.Cpu.time *. 1.02)

let suite =
  [ Alcotest.test_case "ILP speedup" `Quick test_ilp_speedup;
    Alcotest.test_case "dependent chain serializes" `Quick
      test_dependent_chain_not_faster_than_inorder_cycles;
    Alcotest.test_case "memory-level parallelism" `Quick test_mlp;
    Alcotest.test_case "window limits MLP" `Quick test_window_limits_mlp;
    Alcotest.test_case "issue width matters" `Quick test_issue_width_matters;
    Alcotest.test_case "modeset drains and charges" `Quick
      test_modeset_drains_and_charges;
    QCheck_alcotest.to_alcotest qcheck_ooo_matches_interp;
    QCheck_alcotest.to_alcotest qcheck_ooo_never_slower_than_inorder ]
