open Dvs_analytical
open Dvs_power

let us = 1e-6

let mk ?(nov = 0.0) ?(ndep = 0.0) ?(ncache = 0.0) ?(tinv = 0.0) ~tdl () =
  Params.make ~n_overlap:nov ~n_dependent:ndep ~n_cache:ncache
    ~t_invariant:tinv ~t_deadline:tdl

(* A memory-dominated configuration (Ncache < Noverlap, finv < fideal). *)
let mem_dominated =
  mk ~nov:4e6 ~ndep:5.8e6 ~ncache:3e5 ~tinv:(3000. *. us) ~tdl:(5000. *. us) ()

(* A computation-dominated configuration (tiny miss window). *)
let comp_dominated =
  mk ~nov:4e6 ~ndep:5.8e6 ~ncache:3e5 ~tinv:(100. *. us) ~tdl:(5000. *. us) ()

(* Memory dominated with slack: Ncache >= Noverlap. *)
let slack =
  mk ~nov:1e6 ~ndep:3e6 ~ncache:2e6 ~tinv:(1000. *. us) ~tdl:(9000. *. us) ()

(* Scaled for the 200-800MHz XScale-like tables. *)
let mem_dominated_xscale =
  mk ~nov:1e6 ~ndep:2e6 ~ncache:2e5 ~tinv:(2500. *. us) ~tdl:(6000. *. us) ()

let test_classify () =
  Alcotest.(check bool) "mem" true
    (Params.classify mem_dominated = Params.Memory_dominated);
  Alcotest.(check bool) "comp" true
    (Params.classify comp_dominated = Params.Computation_dominated);
  Alcotest.(check bool) "slack" true
    (Params.classify slack = Params.Memory_dominated_with_slack)

let test_total_time_monotone () =
  let p = mem_dominated in
  let t1 = Params.total_time p 200e6 and t2 = Params.total_time p 800e6 in
  Alcotest.(check bool) "decreasing in f" true (t2 < t1);
  Alcotest.(check bool) "bounded below by tinv" true (t2 > p.Params.t_invariant)

let test_single_frequency_meets_deadline () =
  List.iter
    (fun p ->
      match Continuous.single_frequency p with
      | None -> Alcotest.fail "single_frequency: unexpectedly infeasible"
      | Some s ->
        let t = Params.total_time p s.Continuous.f1 in
        if Float.abs (t -. p.Params.t_deadline) > 1e-6 *. p.Params.t_deadline
        then
          Alcotest.failf "deadline not tight: t=%.6g tdl=%.6g" t
            p.Params.t_deadline)
    [ mem_dominated; comp_dominated; slack ]

let test_single_frequency_infeasible () =
  let p = mk ~nov:1e6 ~tinv:(2000. *. us) ~tdl:(1000. *. us) () in
  Alcotest.(check bool) "infeasible" true (Continuous.single_frequency p = None)

let test_memory_dominated_two_voltages () =
  match Continuous.optimize mem_dominated with
  | None -> Alcotest.fail "optimize failed"
  | Some s ->
    (* Slow overlap phase, fast dependent phase. *)
    Alcotest.(check bool) "f1 < f2" true (s.Continuous.f1 < s.Continuous.f2);
    let single = Option.get (Continuous.single_frequency mem_dominated) in
    Alcotest.(check bool) "beats single frequency" true
      (s.Continuous.energy < single.Continuous.energy *. 0.999)

let test_comp_dominated_no_savings () =
  match Savings.continuous comp_dominated with
  | None -> Alcotest.fail "infeasible"
  | Some r ->
    if r > 0.005 then Alcotest.failf "expected ~0 savings, got %.4f" r

let test_slack_no_savings () =
  match Savings.continuous slack with
  | None -> Alcotest.fail "infeasible"
  | Some r ->
    if r > 0.005 then Alcotest.failf "expected ~0 savings, got %.4f" r

let test_mem_dominated_savings_positive () =
  match Savings.continuous mem_dominated with
  | None -> Alcotest.fail "infeasible"
  | Some r ->
    if not (r > 0.01) then Alcotest.failf "expected >1%% savings, got %.4f" r

let test_energy_at_v1_envelope () =
  (* The v1 curve of Figure 3 must be minimized at (or above) the
     optimizer's energy. *)
  let opt = Option.get (Continuous.optimize mem_dominated) in
  let pts = Continuous.curve mem_dominated ~v_lo:0.6 ~v_hi:3.5 ~n:60 in
  Alcotest.(check bool) "curve nonempty" true (pts <> []);
  List.iter
    (fun (_, e) ->
      if e < opt.Continuous.energy *. (1.0 -. 1e-3) then
        Alcotest.failf "curve dips below optimum: %.6g < %.6g" e
          opt.Continuous.energy)
    pts

(* ------------------------------------------------------------------ *)
(* Discrete *)

let xscale = Mode.xscale3

let check_split_invariants tbl ~cycles ~time =
  match Discrete.split tbl ~cycles ~time with
  | None -> true
  | Some (e, assigns) ->
    let total_cycles =
      List.fold_left (fun a (x : Discrete.assignment) -> a +. x.cycles) 0.0
        assigns
    in
    let total_time =
      List.fold_left
        (fun a (x : Discrete.assignment) ->
          a +. (x.cycles /. x.mode.Mode.frequency))
        0.0 assigns
    in
    let e' =
      List.fold_left
        (fun a (x : Discrete.assignment) ->
          a +. (x.cycles *. x.mode.Mode.voltage *. x.mode.Mode.voltage))
        0.0 assigns
    in
    Float.abs (total_cycles -. cycles) <= 1e-6 *. Float.max 1.0 cycles
    && total_time <= time *. (1.0 +. 1e-6)
    && Float.abs (e -. e') <= 1e-9 *. Float.max 1.0 e
    && List.for_all (fun (x : Discrete.assignment) -> x.cycles >= 0.0) assigns

let test_split_exact_mode () =
  (* 600MHz worth of work in exactly the right time: single mode. *)
  match Discrete.split xscale ~cycles:6e5 ~time:1e-3 with
  | None -> Alcotest.fail "split failed"
  | Some (e, assigns) ->
    Alcotest.(check int) "one mode" 1 (List.length assigns);
    let m = (List.hd assigns).Discrete.mode in
    Alcotest.(check bool) "600MHz" true (m.Mode.frequency = 600e6);
    Alcotest.(check bool) "energy" true
      (Float.abs (e -. (6e5 *. 1.3 *. 1.3)) < 1e-3)

let test_split_infeasible () =
  Alcotest.(check bool) "too fast" true
    (Discrete.split xscale ~cycles:1e6 ~time:1e-3 = None)

let test_split_below_min () =
  (* Slower than the slowest mode: run at the slowest and idle. *)
  match Discrete.split xscale ~cycles:1e5 ~time:1e-2 with
  | None -> Alcotest.fail "split failed"
  | Some (_, assigns) ->
    Alcotest.(check int) "one mode" 1 (List.length assigns);
    Alcotest.(check bool) "200MHz" true
      ((List.hd assigns).Discrete.mode.Mode.frequency = 200e6)

let qcheck_split_invariants =
  QCheck.Test.make ~name:"discrete split conserves cycles within time"
    ~count:300
    QCheck.(pair (float_range 1e4 5e6) (float_range 1e-4 2e-2))
    (fun (cycles, time) -> check_split_invariants xscale ~cycles ~time)

let qcheck_split_neighbor_optimal =
  (* The neighbor split never loses to running everything in any single
     feasible mode. *)
  QCheck.Test.make ~name:"neighbor split beats any single mode" ~count:300
    QCheck.(pair (float_range 1e4 5e6) (float_range 1e-4 2e-2))
    (fun (cycles, time) ->
      match Discrete.split xscale ~cycles ~time with
      | None ->
        (* Infeasible: no single mode can do it either. *)
        List.for_all
          (fun (m : Mode.t) -> cycles /. m.frequency > time)
          (Mode.to_list xscale)
      | Some (e, _) ->
        List.for_all
          (fun (m : Mode.t) ->
            cycles /. m.frequency > time *. (1.0 +. 1e-9)
            || e <= (cycles *. m.voltage *. m.voltage) *. (1.0 +. 1e-9))
          (Mode.to_list xscale))

let test_discrete_optimize_beats_single () =
  let p = mem_dominated_xscale in
  let _, base = Option.get (Discrete.single_mode p xscale) in
  let opt = Option.get (Discrete.optimize p xscale) in
  Alcotest.(check bool) "opt <= single" true
    (opt.Discrete.energy <= base *. (1.0 +. 1e-9))

let test_discrete_above_continuous_bound () =
  let p = mem_dominated_xscale in
  let tbl = Mode.levels ~v_lo:0.7 ~v_hi:1.65 7 in
  let cont = Option.get (Continuous.optimize p) in
  let disc = Option.get (Discrete.optimize p tbl) in
  Alcotest.(check bool) "discrete >= continuous bound" true
    (disc.Discrete.energy >= cont.Continuous.energy *. (1.0 -. 1e-6))

let test_more_levels_lower_energy () =
  (* Finer tables can only help the optimizer (coarser tables are subsets
     in spirit; we check the trend on a nested pair built by halving the
     voltage step). *)
  let p = mem_dominated_xscale in
  let t3 = Mode.levels ~v_lo:0.7 ~v_hi:1.65 3 in
  let t13 = Mode.levels ~v_lo:0.7 ~v_hi:1.65 13 in
  let e3 = (Option.get (Discrete.optimize p t3)).Discrete.energy in
  let e13 = (Option.get (Discrete.optimize p t13)).Discrete.energy in
  Alcotest.(check bool) "13 levels <= 3 levels energy" true
    (e13 <= e3 *. (1.0 +. 1e-6))

let test_more_levels_less_savings () =
  (* The paper's headline discrete-case message. *)
  let p = mem_dominated_xscale in
  let s3 =
    Option.get (Savings.discrete p (Mode.levels ~v_lo:0.7 ~v_hi:1.65 3))
  in
  let s13 =
    Option.get (Savings.discrete p (Mode.levels ~v_lo:0.7 ~v_hi:1.65 13))
  in
  Alcotest.(check bool) "savings shrink with more levels" true (s13 <= s3)

let test_emin_of_y_contains_optimum () =
  let p = mem_dominated_xscale in
  let tbl = Mode.levels ~v_lo:0.7 ~v_hi:1.65 7 in
  let opt = Option.get (Discrete.optimize p tbl) in
  (* Scan y; the minimum of the Figure 8 curve should not beat the full
     optimizer by more than numerical slack. *)
  let best = ref infinity in
  let n = 400 in
  let span = p.Params.t_deadline -. p.Params.t_invariant in
  for i = 1 to n - 1 do
    let y = span *. float_of_int i /. float_of_int n in
    let e = Discrete.emin_of_y p tbl y in
    if e < !best then best := e
  done;
  Alcotest.(check bool) "emin(y) >= optimizer" true
    (!best >= opt.Discrete.energy *. (1.0 -. 1e-3))

let param_gen =
  QCheck.Gen.(
    let* nov = float_range 0.0 5e6 in
    let* ndep = float_range 0.0 5e6 in
    let* ncache = float_range 0.0 2e6 in
    let* tinv = float_range 0.0 3e-3 in
    (* Deadline with enough headroom to be feasible at 800MHz. *)
    let floor_t =
      Float.max ((tinv +. (ncache /. 800e6)) +. ((nov +. ndep) /. 800e6)) 1e-5
    in
    let* slackf = float_range 1.05 6.0 in
    return
      (Params.make ~n_overlap:nov ~n_dependent:ndep ~n_cache:ncache
         ~t_invariant:tinv ~t_deadline:(floor_t *. slackf)))

let param_arb = QCheck.make ~print:(Format.asprintf "%a" Params.pp) param_gen

let qcheck_savings_in_range =
  QCheck.Test.make ~name:"savings ratios lie in [0,1]" ~count:60 param_arb
    (fun p ->
      let ok_cont =
        match Savings.continuous p with
        | None -> true
        | Some r -> r >= 0.0 && r <= 1.0
      in
      let ok_disc =
        match Savings.discrete p xscale with
        | None -> true
        | Some r -> r >= 0.0 && r <= 1.0
      in
      ok_cont && ok_disc)

let qcheck_discrete_no_worse_than_continuous_energy =
  QCheck.Test.make
    ~name:"discrete optimum energy >= continuous optimum energy" ~count:40
    param_arb
    (fun p ->
      let tbl = Mode.levels ~v_lo:0.7 ~v_hi:1.65 7 in
      match (Continuous.optimize p, Discrete.optimize p tbl) with
      | Some c, Some d ->
        d.Discrete.energy >= c.Continuous.energy *. (1.0 -. 1e-6)
      | _ -> true)

let suite =
  [ Alcotest.test_case "classify" `Quick test_classify;
    Alcotest.test_case "total_time monotone" `Quick test_total_time_monotone;
    Alcotest.test_case "single frequency tight" `Quick
      test_single_frequency_meets_deadline;
    Alcotest.test_case "single frequency infeasible" `Quick
      test_single_frequency_infeasible;
    Alcotest.test_case "memory dominated uses two voltages" `Quick
      test_memory_dominated_two_voltages;
    Alcotest.test_case "computation dominated: no savings" `Quick
      test_comp_dominated_no_savings;
    Alcotest.test_case "slack case: no savings" `Quick test_slack_no_savings;
    Alcotest.test_case "memory dominated: positive savings" `Quick
      test_mem_dominated_savings_positive;
    Alcotest.test_case "v1 curve envelopes optimum" `Quick
      test_energy_at_v1_envelope;
    Alcotest.test_case "split exact mode" `Quick test_split_exact_mode;
    Alcotest.test_case "split infeasible" `Quick test_split_infeasible;
    Alcotest.test_case "split below min mode" `Quick test_split_below_min;
    QCheck_alcotest.to_alcotest qcheck_split_invariants;
    QCheck_alcotest.to_alcotest qcheck_split_neighbor_optimal;
    Alcotest.test_case "discrete optimize beats single" `Quick
      test_discrete_optimize_beats_single;
    Alcotest.test_case "discrete above continuous bound" `Quick
      test_discrete_above_continuous_bound;
    Alcotest.test_case "more levels: lower energy" `Quick
      test_more_levels_lower_energy;
    Alcotest.test_case "more levels: less savings" `Quick
      test_more_levels_less_savings;
    Alcotest.test_case "emin(y) envelopes optimizer" `Quick
      test_emin_of_y_contains_optimum;
    QCheck_alcotest.to_alcotest qcheck_savings_in_range;
    QCheck_alcotest.to_alcotest
      qcheck_discrete_no_worse_than_continuous_energy ]
