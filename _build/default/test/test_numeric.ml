open Dvs_numeric

let approx ?(eps = 1e-9) a b = Float.abs (a -. b) <= eps

let check_float ?(eps = 1e-9) what expected actual =
  if not (approx ~eps expected actual) then
    Alcotest.failf "%s: expected %.12g, got %.12g" what expected actual

(* ------------------------------------------------------------------ *)
(* Vec *)

let test_vec_dot () =
  check_float "dot" 32.0 (Vec.dot [| 1.0; 2.0; 3.0 |] [| 4.0; 5.0; 6.0 |]);
  Alcotest.check_raises "dot dim mismatch"
    (Invalid_argument "Vec.dot: dimension mismatch (2 vs 3)") (fun () ->
      ignore (Vec.dot [| 1.0; 2.0 |] [| 1.0; 2.0; 3.0 |]))

let test_vec_axpy () =
  let y = [| 1.0; 1.0 |] in
  Vec.axpy_inplace 2.0 [| 3.0; 4.0 |] y;
  check_float "axpy.0" 7.0 y.(0);
  check_float "axpy.1" 9.0 y.(1)

let test_vec_linspace () =
  let v = Vec.linspace 0.0 1.0 5 in
  Alcotest.(check int) "length" 5 (Vec.dim v);
  check_float "first" 0.0 v.(0);
  check_float "mid" 0.5 v.(2);
  check_float "last" 1.0 v.(4)

let test_vec_extremes () =
  let v = [| 3.0; -1.0; 7.0; 7.0; 0.0 |] in
  Alcotest.(check int) "max" 2 (Vec.max_index v);
  Alcotest.(check int) "min" 1 (Vec.min_index v);
  check_float "norm_inf" 7.0 (Vec.norm_inf v)

(* ------------------------------------------------------------------ *)
(* Matrix *)

let test_matrix_mul_vec () =
  let a = Matrix.init 2 3 (fun i j -> float_of_int ((i * 3) + j + 1)) in
  let y = Matrix.mul_vec a [| 1.0; 0.0; -1.0 |] in
  check_float "mul_vec.0" (-2.0) y.(0);
  check_float "mul_vec.1" (-2.0) y.(1)

let test_matrix_solve () =
  let a = Matrix.init 3 3 (fun i j ->
      match (i, j) with
      | 0, 0 -> 2.0 | 0, 1 -> 1.0 | 0, 2 -> -1.0
      | 1, 0 -> -3.0 | 1, 1 -> -1.0 | 1, 2 -> 2.0
      | 2, 0 -> -2.0 | 2, 1 -> 1.0 | _ -> 2.0)
  in
  match Matrix.solve a [| 8.0; -11.0; -3.0 |] with
  | None -> Alcotest.fail "solve: unexpectedly singular"
  | Some x ->
    check_float ~eps:1e-9 "x0" 2.0 x.(0);
    check_float ~eps:1e-9 "x1" 3.0 x.(1);
    check_float ~eps:1e-9 "x2" (-1.0) x.(2)

let test_matrix_solve_singular () =
  let a = Matrix.init 2 2 (fun _ _ -> 1.0) in
  Alcotest.(check bool) "singular" true (Matrix.solve a [| 1.0; 2.0 |] = None)

let qcheck_solve_roundtrip =
  QCheck.Test.make ~name:"matrix solve round-trips a*x"
    ~count:200
    QCheck.(
      let entry = float_range (-5.0) 5.0 in
      pair (array_of_size (Gen.return 9) entry)
        (array_of_size (Gen.return 3) entry))
    (fun (entries, x) ->
      let a = Matrix.init 3 3 (fun i j -> entries.((i * 3) + j)) in
      (* Make it safely diagonally dominant so the solve succeeds. *)
      for i = 0 to 2 do
        Matrix.set a i i (Matrix.get a i i +. 20.0)
      done;
      let b = Matrix.mul_vec a x in
      match Matrix.solve a b with
      | None -> false
      | Some x' ->
        Array.for_all2 (fun u v -> Float.abs (u -. v) < 1e-6) x x')

(* ------------------------------------------------------------------ *)
(* Optimize *)

let test_golden_quadratic () =
  let x, fx = Optimize.golden_section ~lo:(-10.0) ~hi:10.0
      (fun x -> ((x -. 3.0) ** 2.0) +. 1.0)
  in
  check_float ~eps:1e-6 "argmin" 3.0 x;
  check_float ~eps:1e-6 "min" 1.0 fx

let test_grid_multimodal () =
  (* Two local minima; the global one is at x = 4 with value -2. *)
  let f x = Float.min (((x -. 1.0) ** 2.0) -. 1.0) (((x -. 4.0) ** 2.0) -. 2.0) in
  let x, fx = Optimize.grid_minimize ~n:200 ~lo:0.0 ~hi:5.0 f in
  check_float ~eps:1e-4 "argmin" 4.0 x;
  check_float ~eps:1e-6 "min" (-2.0) fx

let test_bisect () =
  (match Optimize.bisect ~lo:0.0 ~hi:2.0 (fun x -> (x *. x) -. 2.0) with
  | None -> Alcotest.fail "bisect: no root found"
  | Some r -> check_float ~eps:1e-9 "sqrt2" (sqrt 2.0) r);
  Alcotest.(check bool) "no sign change" true
    (Optimize.bisect ~lo:0.0 ~hi:1.0 (fun _ -> 1.0) = None)

let test_invert_increasing () =
  let f x = x ** 3.0 in
  check_float ~eps:1e-8 "cbrt" 2.0 (Optimize.invert_increasing ~lo:0.0 ~hi:10.0 f 8.0);
  check_float "clamp low" 0.0 (Optimize.invert_increasing ~lo:0.0 ~hi:10.0 f (-1.0));
  check_float "clamp high" 10.0 (Optimize.invert_increasing ~lo:0.0 ~hi:10.0 f 1e9)

let qcheck_golden_beats_samples =
  QCheck.Test.make ~name:"golden section at least as good as endpoints/mid"
    ~count:200
    QCheck.(triple (float_range (-3.0) 3.0) (float_range 0.1 5.0)
              (float_range (-5.0) 5.0))
    (fun (center, scale, offset) ->
      let f x = (scale *. ((x -. center) ** 2.0)) +. offset in
      let _, fx = Optimize.golden_section ~lo:(-4.0) ~hi:4.0 f in
      fx <= f (-4.0) +. 1e-9 && fx <= f 4.0 +. 1e-9 && fx <= f 0.0 +. 1e-9)

let suite =
  [ Alcotest.test_case "vec dot" `Quick test_vec_dot;
    Alcotest.test_case "vec axpy" `Quick test_vec_axpy;
    Alcotest.test_case "vec linspace" `Quick test_vec_linspace;
    Alcotest.test_case "vec extremes" `Quick test_vec_extremes;
    Alcotest.test_case "matrix mul_vec" `Quick test_matrix_mul_vec;
    Alcotest.test_case "matrix solve 3x3" `Quick test_matrix_solve;
    Alcotest.test_case "matrix solve singular" `Quick test_matrix_solve_singular;
    QCheck_alcotest.to_alcotest qcheck_solve_roundtrip;
    Alcotest.test_case "golden section quadratic" `Quick test_golden_quadratic;
    Alcotest.test_case "grid minimize multimodal" `Quick test_grid_multimodal;
    Alcotest.test_case "bisect" `Quick test_bisect;
    Alcotest.test_case "invert increasing" `Quick test_invert_increasing;
    QCheck_alcotest.to_alcotest qcheck_golden_beats_samples ]
