open Dvs_power

let check_float ?(eps = 1e-9) what expected actual =
  if Float.abs (expected -. actual) > eps then
    Alcotest.failf "%s: expected %.12g, got %.12g" what expected actual

(* The default law is anchored at 1.65 V -> 800 MHz and should land close to
   the paper's other XScale pairs. *)
let test_default_law_anchors () =
  let law = Alpha_power.default in
  check_float ~eps:1.0 "anchor" 800e6 (Alpha_power.frequency law 1.65);
  let f13 = Alpha_power.frequency law 1.3 in
  Alcotest.(check bool) "1.3V near 600MHz" true
    (Float.abs (f13 -. 600e6) < 20e6);
  let f07 = Alpha_power.frequency law 0.7 in
  Alcotest.(check bool) "0.7V near 200MHz" true
    (Float.abs (f07 -. 200e6) < 30e6)

let test_law_below_threshold () =
  let law = Alpha_power.default in
  check_float "below vt" 0.0 (Alpha_power.frequency law 0.3);
  check_float "at vt" 0.0 (Alpha_power.frequency law 0.45)

let qcheck_voltage_roundtrip =
  QCheck.Test.make ~name:"alpha-power voltage/frequency round-trip" ~count:200
    QCheck.(float_range 0.5 3.0)
    (fun v ->
      let law = Alpha_power.default in
      let f = Alpha_power.frequency law v in
      let v' = Alpha_power.voltage law f in
      Float.abs (v -. v') < 1e-6)

let qcheck_law_monotone =
  QCheck.Test.make ~name:"alpha-power law is increasing" ~count:200
    QCheck.(pair (float_range 0.46 3.0) (float_range 0.001 1.0))
    (fun (v, dv) ->
      let law = Alpha_power.default in
      Alpha_power.frequency law (v +. dv) > Alpha_power.frequency law v)

let test_xscale3 () =
  let tbl = Mode.xscale3 in
  Alcotest.(check int) "size" 3 (Mode.size tbl);
  check_float "min f" 200e6 (Mode.min_mode tbl).frequency;
  check_float "max f" 800e6 (Mode.max_mode tbl).frequency;
  check_float "min v" 0.7 (Mode.min_mode tbl).voltage

let test_levels_spacing () =
  let tbl = Mode.levels ~v_lo:0.7 ~v_hi:1.65 7 in
  Alcotest.(check int) "size" 7 (Mode.size tbl);
  check_float "v lo" 0.7 (Mode.get tbl 0).voltage;
  check_float ~eps:1e-9 "v hi" 1.65 (Mode.get tbl 6).voltage;
  (* Frequencies strictly increasing is enforced by the table invariant. *)
  let fs = List.map (fun (m : Mode.t) -> m.frequency) (Mode.to_list tbl) in
  Alcotest.(check bool) "sorted" true (List.sort Float.compare fs = fs)

let test_neighbors () =
  let tbl = Mode.xscale3 in
  let a, b = Mode.neighbors tbl 400e6 in
  check_float "lo neighbor" 200e6 a.frequency;
  check_float "hi neighbor" 600e6 b.frequency;
  let a, b = Mode.neighbors tbl 600e6 in
  check_float "exact lo" 600e6 a.frequency;
  check_float "exact hi" 600e6 b.frequency;
  let a, b = Mode.neighbors tbl 100e6 in
  check_float "clamp lo" 200e6 a.frequency;
  check_float "clamp lo hi" 200e6 b.frequency;
  let a, b = Mode.neighbors tbl 1e9 in
  check_float "clamp hi" 800e6 a.frequency;
  check_float "clamp hi hi" 800e6 b.frequency

let test_table_validation () =
  Alcotest.check_raises "empty"
    (Invalid_argument "Mode.table_of_list: empty table") (fun () ->
      ignore (Mode.table_of_list []));
  Alcotest.check_raises "duplicate f"
    (Invalid_argument "Mode.table_of_list: duplicate frequencies") (fun () ->
      ignore
        (Mode.table_of_list
           [ Mode.make ~voltage:1.0 ~frequency:1e8;
             Mode.make ~voltage:1.2 ~frequency:1e8 ]))

(* Paper calibration: c = 10uF gives 12us / 1.2uJ for 1.3V <-> 0.7V. *)
let test_switch_cost_paper_values () =
  let r = Switch_cost.default in
  check_float ~eps:1e-12 "ST" 12e-6 (Switch_cost.time r 1.3 0.7);
  check_float ~eps:1e-12 "SE" 1.2e-6 (Switch_cost.energy r 1.3 0.7)

let test_switch_cost_symmetry_and_zero () =
  let r = Switch_cost.regulator ~capacitance:1e-6 () in
  check_float "zero energy" 0.0 (Switch_cost.energy r 1.1 1.1);
  check_float "zero time" 0.0 (Switch_cost.time r 1.1 1.1);
  check_float "sym energy" (Switch_cost.energy r 0.7 1.65)
    (Switch_cost.energy r 1.65 0.7);
  check_float "sym time" (Switch_cost.time r 0.7 1.65)
    (Switch_cost.time r 1.65 0.7)

let qcheck_switch_cost_scales_with_c =
  QCheck.Test.make ~name:"switch costs scale linearly with capacitance"
    ~count:100
    QCheck.(pair (float_range 0.5 2.0) (float_range 0.5 2.0))
    (fun (v1, v2) ->
      let r1 = Switch_cost.regulator ~capacitance:1e-6 () in
      let r10 = Switch_cost.regulator ~capacitance:10e-6 () in
      let e1 = Switch_cost.energy r1 v1 v2 in
      let e10 = Switch_cost.energy r10 v1 v2 in
      Float.abs (e10 -. (10.0 *. e1)) <= 1e-12 +. (1e-9 *. Float.abs e10))

let suite =
  [ Alcotest.test_case "default law anchors" `Quick test_default_law_anchors;
    Alcotest.test_case "law below threshold" `Quick test_law_below_threshold;
    QCheck_alcotest.to_alcotest qcheck_voltage_roundtrip;
    QCheck_alcotest.to_alcotest qcheck_law_monotone;
    Alcotest.test_case "xscale3 table" `Quick test_xscale3;
    Alcotest.test_case "levels spacing" `Quick test_levels_spacing;
    Alcotest.test_case "mode neighbors" `Quick test_neighbors;
    Alcotest.test_case "table validation" `Quick test_table_validation;
    Alcotest.test_case "switch cost paper values" `Quick
      test_switch_cost_paper_values;
    Alcotest.test_case "switch cost symmetry" `Quick
      test_switch_cost_symmetry_and_zero;
    QCheck_alcotest.to_alcotest qcheck_switch_cost_scales_with_c ]
