open Dvs_workloads
open Dvs_machine

let config = Workload.eval_config ()

let test_all_compile_and_run () =
  List.iter
    (fun (w : Workload.t) ->
      List.iter
        (fun input ->
          let cfg, _, mem = Workload.load w ~input in
          (match Dvs_ir.Cfg.validate cfg with
          | Ok () -> ()
          | Error m -> Alcotest.failf "%s: invalid CFG: %s" w.name m);
          let r = Cpu.run config cfg ~memory:mem in
          Alcotest.(check bool)
            (Printf.sprintf "%s/%s runs" w.Workload.name input)
            true
            (r.Cpu.dyn_instrs > 1000 || w.Workload.name = "ghostscript");
          Alcotest.(check bool)
            (Printf.sprintf "%s/%s takes time" w.Workload.name input)
            true (r.Cpu.time > 0.0))
        w.Workload.inputs)
    Workload.all

let test_inputs_deterministic () =
  let w = Workload.find "mpeg" in
  let _, _, m1 = Workload.load w ~input:"flwr" in
  let _, _, m2 = Workload.load w ~input:"flwr" in
  Alcotest.(check bool) "same memory" true (m1 = m2)

let test_inputs_differ () =
  let w = Workload.find "mpeg" in
  let _, _, m1 = Workload.load w ~input:"flwr" in
  let _, _, m2 = Workload.load w ~input:"bbc" in
  Alcotest.(check bool) "different memory" true (m1 <> m2)

let test_mpeg_categories_change_paths () =
  (* B-frame inputs execute the interpolation loop; edge profiles must
     differ structurally, which is what makes Figure 19 interesting. *)
  let w = Workload.find "mpeg" in
  let cfg, _, mem_b = Workload.load w ~input:"flwr" in
  let _, _, mem_nob = Workload.load w ~input:"bbc" in
  let p_b = Dvs_profile.Profile.collect config cfg ~memory:mem_b in
  let p_nob = Dvs_profile.Profile.collect config cfg ~memory:mem_nob in
  (* Some edge is taken in the B category and never in the other. *)
  let exclusive = ref false in
  Array.iteri
    (fun i c ->
      if c > 0 && p_nob.Dvs_profile.Profile.edge_count.(i) = 0 then
        exclusive := true)
    p_b.Dvs_profile.Profile.edge_count;
  Alcotest.(check bool) "B-only edges exist" true !exclusive

let test_memory_dominance_signatures () =
  (* mpeg must be the most memory-bound, gsm the most hit-dominated —
     the Table 7 shape. *)
  let signature name =
    let w = Workload.find name in
    let cfg, _, mem = Workload.load w ~input:(Workload.default_input w) in
    let r = Cpu.run config cfg ~memory:mem in
    (r.Cpu.miss_busy_time /. r.Cpu.time,
     float_of_int r.Cpu.overlap_cycles /. float_of_int (r.Cpu.cache_hit_cycles + 1))
  in
  let mpeg_mem, _ = signature "mpeg" in
  let gsm_mem, _ = signature "gsm" in
  Alcotest.(check bool) "mpeg more memory-bound than gsm" true
    (mpeg_mem > 2.0 *. gsm_mem);
  Alcotest.(check bool) "mpeg spends >20% in memory" true (mpeg_mem > 0.2)

let test_deadlines_ordering () =
  let ds = Deadlines.of_times ~t_fast:1.0 ~t_slow:5.0 in
  Alcotest.(check int) "five deadlines" 5 (Array.length ds);
  for i = 1 to 4 do
    Alcotest.(check bool) "increasing" true (ds.(i) > ds.(i - 1))
  done;
  Alcotest.(check bool) "d1 near fast" true (ds.(0) < 1.2);
  Alcotest.(check bool) "d5 near slow" true (ds.(4) > 4.5)

let test_rng_deterministic_and_bounded () =
  let r1 = Rng.create 42 and r2 = Rng.create 42 in
  let a = Array.init 100 (fun _ -> Rng.int r1 1000) in
  let b = Array.init 100 (fun _ -> Rng.int r2 1000) in
  Alcotest.(check bool) "same stream" true (a = b);
  Alcotest.(check bool) "bounded" true
    (Array.for_all (fun v -> v >= 0 && v < 1000) a);
  let r3 = Rng.create 43 in
  let c = Array.init 100 (fun _ -> Rng.int r3 1000) in
  Alcotest.(check bool) "different seed differs" true (a <> c)

let suite =
  [ Alcotest.test_case "all workloads compile and run" `Slow
      test_all_compile_and_run;
    Alcotest.test_case "inputs deterministic" `Quick
      test_inputs_deterministic;
    Alcotest.test_case "inputs differ" `Quick test_inputs_differ;
    Alcotest.test_case "mpeg categories change paths" `Slow
      test_mpeg_categories_change_paths;
    Alcotest.test_case "memory-dominance signatures" `Slow
      test_memory_dominance_signatures;
    Alcotest.test_case "deadline ordering" `Quick test_deadlines_ordering;
    Alcotest.test_case "rng deterministic" `Quick
      test_rng_deterministic_and_bounded ]
